/**
 * @file
 * Differential fuzzing CLI (DESIGN.md §7). Runs the three-way oracle
 * over seeded random homomorphic programs:
 *
 *   fuzz_hom --seeds 0..500                  # fixed seed range
 *   fuzz_hom --time-budget 60                # random sweep for 60 s
 *   fuzz_hom --seeds 0..100 --boot           # include ModRaise ops
 *   fuzz_hom --replay tests/fuzz/corpus/x.json
 *
 * On the first failure the seed is reported, the program is (with
 * --minimize) shrunk to a minimal failing program, and (with --json)
 * dumped in the corpus format so it can be pinned as a regression
 * test. Exits non-zero on any failure.
 */

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "cli_common.h"
#include "fuzz/fuzzer.h"

namespace {

void
usage()
{
    std::printf(
        "usage: fuzz_hom [options]\n"
        "  --seeds A..B       run seeds A through B inclusive "
        "(default: 0..99)\n"
        "  --time-budget S    keep drawing random seeds for S seconds\n"
        "  --config NAME      chip configuration for the structural "
        "leg,\n"
        "                     or 'all' (default: craterlake)\n"
        "  --ops N            target ops per program (default: 24)\n"
        "  --schedule MODE    none, list or both: schedule mode(s) "
        "for\n"
        "                     the structural leg (default: none)\n"
        "  --exec MODE        serial, graph or both: execution mode(s) "
        "for\n"
        "                     the ciphertext leg (default: serial)\n"
        "  --boot             also place bootstrap-entry ModRaise ops\n"
        "  --no-functional    skip the decrypt-check leg\n"
        "  --no-structural    skip the lower/simulate/verify leg\n"
        "  --minimize         shrink the first failing program\n"
        "  --json FILE        dump the (minimized) failure as corpus "
        "JSON\n"
        "  --replay FILE      replay one corpus file instead of "
        "generating\n"
        "configs: craterlake craterlake-128k no-kshgen no-crb crossbar "
        "f1plus rf<MB>\n");
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace cl;

    std::uint64_t seed_lo = 0, seed_hi = 99;
    double time_budget = 0;
    std::string json_path, replay_path;
    bool minimize = false;
    FuzzConfig fcfg;
    OracleOptions opts;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for %s\n",
                             arg.c_str());
                usage();
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--seeds") {
            const std::string v = value();
            const auto dots = v.find("..");
            if (dots == std::string::npos) {
                seed_lo = 0;
                seed_hi = std::stoull(v) - 1;
            } else {
                seed_lo = std::stoull(v.substr(0, dots));
                seed_hi = std::stoull(v.substr(dots + 2));
            }
        } else if (arg == "--time-budget") {
            time_budget = std::stod(value());
        } else if (arg == "--config") {
            const std::string v = value();
            opts.chipConfigs =
                v == "all" ? allConfigNames()
                           : std::vector<std::string>{v};
        } else if (arg == "--ops") {
            fcfg.maxOps = static_cast<unsigned>(std::stoul(value()));
        } else if (arg == "--schedule") {
            const std::string v = value();
            opts.scheduleModes =
                v == "both"
                    ? std::vector<ScheduleMode>{ScheduleMode::None,
                                                ScheduleMode::List}
                    : std::vector<ScheduleMode>{
                          scheduleModeByName(v)};
        } else if (arg == "--exec") {
            const std::string v = value();
            opts.execModes =
                v == "both"
                    ? std::vector<ExecMode>{ExecMode::Serial,
                                            ExecMode::Graph}
                    : std::vector<ExecMode>{execModeByName(v)};
        } else if (arg == "--boot") {
            fcfg.allowModRaise = true;
            fcfg.weights[static_cast<std::size_t>(GenKind::ModRaise)] =
                2;
        } else if (arg == "--no-functional") {
            opts.functional = false;
        } else if (arg == "--no-structural") {
            opts.structural = false;
        } else if (arg == "--minimize") {
            minimize = true;
        } else if (arg == "--json") {
            json_path = value();
        } else if (arg == "--replay") {
            replay_path = value();
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else {
            std::fprintf(stderr, "unknown option %s\n", arg.c_str());
            usage();
            return 2;
        }
    }

    FuzzEnv env;

    auto report_failure = [&](const GenProgram &prog,
                              const OracleResult &res) {
        std::printf("FAIL seed=%llu ops=%zu: %s\n",
                    static_cast<unsigned long long>(prog.seed),
                    prog.ops.size(), res.failure.c_str());
        GenProgram pinned = prog;
        if (minimize) {
            pinned = minimizeProgram(env, prog, opts);
            const OracleResult mres = runOracle(env, pinned, opts);
            std::printf("minimized to %zu op(s): %s\n",
                        pinned.ops.size(), mres.failure.c_str());
        }
        if (!json_path.empty()) {
            std::ofstream os(json_path);
            if (!os)
                CL_FATAL("cannot write ", json_path);
            os << toJson(pinned, runOracle(env, pinned, opts).failure);
            std::printf("wrote %s\n", json_path.c_str());
        }
    };

    if (!replay_path.empty()) {
        std::ifstream is(replay_path);
        if (!is)
            CL_FATAL("cannot read ", replay_path);
        std::stringstream ss;
        ss << is.rdbuf();
        const GenProgram prog = fromJson(ss.str());
        const OracleResult res = runOracle(env, prog, opts);
        if (!res.ok) {
            report_failure(prog, res);
            return 1;
        }
        std::printf("OK %s: %zu op(s), max decrypt error %.3g\n",
                    replay_path.c_str(), prog.ops.size(), res.maxError);
        return 0;
    }

    const auto t0 = std::chrono::steady_clock::now();
    auto elapsed = [&]() {
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - t0)
            .count();
    };

    std::uint64_t ran = 0, functional = 0;
    double worst_err = 0;
    std::uint64_t seed = seed_lo;
    FastRng sweep_rng(
        static_cast<std::uint64_t>(t0.time_since_epoch().count()));
    while (true) {
        if (time_budget > 0) {
            if (elapsed() >= time_budget)
                break;
            seed = sweep_rng.next64();
        } else if (ran > 0 && seed == seed_hi + 1) {
            break;
        }
        const GenProgram prog = generateProgram(env, fcfg, seed);
        const OracleResult res = runOracle(env, prog, opts);
        ++ran;
        functional += res.functionalRan ? 1 : 0;
        worst_err = std::max(worst_err, res.maxError);
        if (!res.ok) {
            report_failure(prog, res);
            return 1;
        }
        if (time_budget == 0)
            ++seed;
    }

    std::printf("OK: %llu program(s), %llu with decrypt checks, worst "
                "decrypt error %.3g, %.1fs\n",
                static_cast<unsigned long long>(ran),
                static_cast<unsigned long long>(functional), worst_err,
                elapsed());
    return 0;
}

/**
 * @file
 * Run one benchmark under a named ChipConfig with instruction-level
 * tracing, and write the observability artifacts:
 *
 *  - <out>/<benchmark>_<config>_trace.json   Chrome trace_event JSON
 *  - <out>/<benchmark>_<config>_report.txt   bottleneck report
 *  - <out>/BENCH_sim.json                    machine-readable snapshot
 *
 * The report is also printed to stdout. BENCH_sim.json is the
 * regression-comparable artifact perf PRs diff against.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "cli_common.h"
#include "core/craterlake.h"
#include "sim/trace.h"

namespace {

void
usage()
{
    std::printf(
        "usage: sim_trace <benchmark> [options]\n"
        "  --config NAME    chip configuration (default: craterlake)\n"
        "  --security BITS  80, 128 or 200 (default: 80)\n"
        "  --out DIR        output directory (default: .)\n"
        "  --top K          stalled instructions listed (default: 10)\n"
        "  --list           print benchmark slugs and exit\n");
    cl::printBenchmarksAndConfigs();
}

std::string
slugify(std::string s)
{
    for (char &c : s) {
        if (c == ' ' || c == '/')
            c = '-';
    }
    return s;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace cl;

    std::string bench_name, config_name = "craterlake", out_dir = ".";
    unsigned security = 80;
    std::size_t top_k = 10;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for %s\n",
                             arg.c_str());
                usage();
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--list") {
            usage();
            return 0;
        } else if (arg == "--config") {
            config_name = value();
        } else if (arg == "--security") {
            security = static_cast<unsigned>(std::stoul(value()));
        } else if (arg == "--out") {
            out_dir = value();
        } else if (arg == "--top") {
            top_k = static_cast<std::size_t>(std::stoul(value()));
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "unknown option %s\n", arg.c_str());
            usage();
            return 2;
        } else {
            bench_name = arg;
        }
    }
    if (bench_name.empty()) {
        usage();
        return 2;
    }

    const SecurityConfig sec = securityByBits(security);
    const ChipConfig cfg = ChipConfig::byName(config_name);
    const HomProgram hp = benchmarkByName(bench_name, sec);

    Lowering lower(cfg);
    const Program prog = lower.lower(hp);
    Simulator sim(cfg);
    TraceRecorder rec;
    const SimStats stats = sim.run(prog, &rec);

    const std::string stem =
        out_dir + "/" + slugify(bench_name) + "_" + slugify(cfg.name);

    {
        std::ofstream os(stem + "_trace.json");
        if (!os)
            CL_FATAL("cannot write ", stem, "_trace.json");
        rec.writeChromeTrace(os, cfg);
    }

    std::ostringstream report;
    rec.writeBottleneckReport(report, cfg, stats, top_k);
    std::fputs(report.str().c_str(), stdout);
    {
        std::ofstream os(stem + "_report.txt");
        if (!os)
            CL_FATAL("cannot write ", stem, "_report.txt");
        os << report.str();
    }

    {
        std::ofstream os(out_dir + "/BENCH_sim.json");
        if (!os)
            CL_FATAL("cannot write ", out_dir, "/BENCH_sim.json");
        char buf[256];
        os << "{\n";
        os << "  \"benchmark\": \"" << bench_name << "\",\n";
        os << "  \"config\": \"" << cfg.name << "\",\n";
        os << "  \"security\": \"" << sec.name << "\",\n";
        os << "  \"hom_ops\": " << hp.ops.size() << ",\n";
        os << "  \"instructions\": " << prog.size() << ",\n";
        os << "  \"cycles\": " << stats.cycles << ",\n";
        std::snprintf(buf, sizeof buf, "%.6f",
                      stats.seconds(cfg) * 1e3);
        os << "  \"ms\": " << buf << ",\n";
        std::snprintf(buf, sizeof buf, "%.6f",
                      stats.fuUtilization(cfg));
        os << "  \"fu_utilization\": " << buf << ",\n";
        std::snprintf(buf, sizeof buf, "%.6f", stats.memUtilization());
        os << "  \"mem_utilization\": " << buf << ",\n";
        std::snprintf(buf, sizeof buf, "%.3f",
                      stats.avgPowerWatts(cfg));
        os << "  \"avg_power_w\": " << buf << ",\n";
        os << "  \"traffic_words\": {\n";
        os << "    \"ksh_load\": " << stats.kshLoadWords << ",\n";
        os << "    \"input_load\": " << stats.inputLoadWords << ",\n";
        os << "    \"plain_load\": " << stats.plainLoadWords << ",\n";
        os << "    \"interm_load\": " << stats.intermLoadWords << ",\n";
        os << "    \"interm_store\": " << stats.intermStoreWords
           << ",\n";
        os << "    \"output_store\": " << stats.outputStoreWords
           << ",\n";
        os << "    \"total\": " << stats.totalTrafficWords() << "\n";
        os << "  },\n";
        os << "  \"rf_access_words\": " << stats.rfAccessWords << ",\n";
        os << "  \"network_words\": " << stats.networkWords << "\n";
        os << "}\n";
    }

    std::printf("\nwrote %s_trace.json, %s_report.txt, %s/BENCH_sim.json\n",
                stem.c_str(), stem.c_str(), out_dir.c_str());
    return 0;
}

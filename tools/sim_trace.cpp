/**
 * @file
 * Run one benchmark under a named ChipConfig with instruction-level
 * tracing, and write the observability artifacts:
 *
 *  - <out>/<benchmark>_<config>_trace.json   Chrome trace_event JSON
 *  - <out>/<benchmark>_<config>_report.txt   bottleneck report
 *  - <out>/BENCH_sim.json                    machine-readable snapshot
 *
 * The report is also printed to stdout. BENCH_sim.json is the
 * regression-comparable artifact perf PRs diff against.
 *
 * --matrix replaces the single run with the full snapshot sweep: all
 * workload benchmarks x {craterlake, f1plus} x {none, list} schedule
 * modes, written as one BENCH_sim.json with an "entries" array (no
 * per-run trace files). That file is the pinned, committed form.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "cli_common.h"
#include "core/craterlake.h"
#include "sim/trace.h"

namespace {

void
usage()
{
    std::printf(
        "usage: sim_trace <benchmark> [options]\n"
        "       sim_trace --matrix [--out DIR]\n"
        "  --config NAME    chip configuration (default: craterlake)\n"
        "  --security BITS  80, 128 or 200 (default: 80)\n"
        "  --schedule MODE  none or list (default: none)\n"
        "  --out DIR        output directory (default: .)\n"
        "  --top K          stalled instructions listed (default: 10)\n"
        "  --matrix         write the full benchmark x config x "
        "schedule\n"
        "                   snapshot to <out>/BENCH_sim.json and exit\n"
        "  --list           print benchmark slugs and exit\n");
    cl::printBenchmarksAndConfigs();
}

std::string
slugify(std::string s)
{
    for (char &c : s) {
        if (c == ' ' || c == '/')
            c = '-';
    }
    return s;
}

struct RunLine
{
    std::string benchmark, config, security, schedule;
    std::size_t homOps = 0, instructions = 0;
    cl::SimStats stats;
};

/** One snapshot object, shared by the single-run and matrix forms. */
void
writeEntry(std::ostream &os, const RunLine &r, const cl::ChipConfig &cfg,
           const char *indent)
{
    char buf[256];
    const std::string in = indent;
    os << in << "\"benchmark\": \"" << r.benchmark << "\",\n";
    os << in << "\"config\": \"" << r.config << "\",\n";
    os << in << "\"security\": \"" << r.security << "\",\n";
    os << in << "\"schedule\": \"" << r.schedule << "\",\n";
    os << in << "\"hom_ops\": " << r.homOps << ",\n";
    os << in << "\"instructions\": " << r.instructions << ",\n";
    os << in << "\"cycles\": " << r.stats.cycles << ",\n";
    std::snprintf(buf, sizeof buf, "%.6f", r.stats.seconds(cfg) * 1e3);
    os << in << "\"ms\": " << buf << ",\n";
    std::snprintf(buf, sizeof buf, "%.6f", r.stats.fuUtilization(cfg));
    os << in << "\"fu_utilization\": " << buf << ",\n";
    std::snprintf(buf, sizeof buf, "%.6f", r.stats.memUtilization());
    os << in << "\"mem_utilization\": " << buf << ",\n";
    std::snprintf(buf, sizeof buf, "%.3f", r.stats.avgPowerWatts(cfg));
    os << in << "\"avg_power_w\": " << buf << ",\n";
    os << in << "\"traffic_words\": {\n";
    os << in << "  \"ksh_load\": " << r.stats.kshLoadWords << ",\n";
    os << in << "  \"input_load\": " << r.stats.inputLoadWords << ",\n";
    os << in << "  \"plain_load\": " << r.stats.plainLoadWords << ",\n";
    os << in << "  \"interm_load\": " << r.stats.intermLoadWords
       << ",\n";
    os << in << "  \"interm_store\": " << r.stats.intermStoreWords
       << ",\n";
    os << in << "  \"output_store\": " << r.stats.outputStoreWords
       << ",\n";
    os << in << "  \"total\": " << r.stats.totalTrafficWords() << "\n";
    os << in << "},\n";
    os << in << "\"rf_access_words\": " << r.stats.rfAccessWords
       << ",\n";
    os << in << "\"network_words\": " << r.stats.networkWords << "\n";
}

int
runMatrix(const std::string &out_dir, unsigned security)
{
    using namespace cl;
    const SecurityConfig sec = securityByBits(security);
    const std::vector<std::string> configs = {"craterlake", "f1plus"};
    const ScheduleMode modes[] = {ScheduleMode::None,
                                  ScheduleMode::List};

    std::vector<std::pair<RunLine, ChipConfig>> lines;
    for (const std::string &bn : benchmarkNames()) {
        const HomProgram hp = benchmarkByName(bn, sec);
        for (const std::string &cn : configs) {
            const ChipConfig cfg = ChipConfig::byName(cn);
            for (ScheduleMode mode : modes) {
                Lowering lower(cfg, mode);
                const Program prog = lower.lower(hp);
                Simulator sim(cfg);
                RunLine r;
                r.benchmark = bn;
                r.config = cfg.name;
                r.security = sec.name;
                r.schedule = scheduleModeName(mode);
                r.homOps = hp.ops.size();
                r.instructions = prog.size();
                r.stats = sim.run(prog);
                std::printf("%-14s x %-10s x %-4s %8zu insts %12llu "
                            "cycles\n",
                            bn.c_str(), cn.c_str(), r.schedule.c_str(),
                            r.instructions,
                            static_cast<unsigned long long>(
                                r.stats.cycles));
                lines.emplace_back(std::move(r), cfg);
            }
        }
    }

    const std::string path = out_dir + "/BENCH_sim.json";
    std::ofstream os(path);
    if (!os)
        CL_FATAL("cannot write ", path);
    os << "{\n  \"entries\": [\n";
    for (std::size_t i = 0; i < lines.size(); ++i) {
        os << "    {\n";
        writeEntry(os, lines[i].first, lines[i].second, "      ");
        os << "    }" << (i + 1 < lines.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
    std::printf("\nwrote %s (%zu entries)\n", path.c_str(),
                lines.size());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace cl;

    std::string bench_name, config_name = "craterlake", out_dir = ".";
    unsigned security = 80;
    std::size_t top_k = 10;
    ScheduleMode schedule = ScheduleMode::None;
    bool matrix = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for %s\n",
                             arg.c_str());
                usage();
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--list") {
            usage();
            return 0;
        } else if (arg == "--config") {
            config_name = value();
        } else if (arg == "--security") {
            security = static_cast<unsigned>(std::stoul(value()));
        } else if (arg == "--schedule") {
            schedule = scheduleModeByName(value());
        } else if (arg == "--out") {
            out_dir = value();
        } else if (arg == "--top") {
            top_k = static_cast<std::size_t>(std::stoul(value()));
        } else if (arg == "--matrix") {
            matrix = true;
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "unknown option %s\n", arg.c_str());
            usage();
            return 2;
        } else {
            bench_name = arg;
        }
    }
    if (matrix)
        return runMatrix(out_dir, security);
    if (bench_name.empty()) {
        usage();
        return 2;
    }

    const SecurityConfig sec = securityByBits(security);
    const ChipConfig cfg = ChipConfig::byName(config_name);
    const HomProgram hp = benchmarkByName(bench_name, sec);

    Lowering lower(cfg, schedule);
    const Program prog = lower.lower(hp);
    Simulator sim(cfg);
    TraceRecorder rec;
    const SimStats stats = sim.run(prog, &rec);

    const std::string stem =
        out_dir + "/" + slugify(bench_name) + "_" + slugify(cfg.name);

    {
        std::ofstream os(stem + "_trace.json");
        if (!os)
            CL_FATAL("cannot write ", stem, "_trace.json");
        rec.writeChromeTrace(os, cfg);
    }

    std::ostringstream report;
    rec.writeBottleneckReport(report, cfg, stats, top_k);
    std::fputs(report.str().c_str(), stdout);
    {
        std::ofstream os(stem + "_report.txt");
        if (!os)
            CL_FATAL("cannot write ", stem, "_report.txt");
        os << report.str();
    }

    {
        std::ofstream os(out_dir + "/BENCH_sim.json");
        if (!os)
            CL_FATAL("cannot write ", out_dir, "/BENCH_sim.json");
        RunLine r;
        r.benchmark = bench_name;
        r.config = cfg.name;
        r.security = sec.name;
        r.schedule = scheduleModeName(schedule);
        r.homOps = hp.ops.size();
        r.instructions = prog.size();
        r.stats = stats;
        os << "{\n";
        writeEntry(os, r, cfg, "  ");
        os << "}\n";
    }

    std::printf("\nwrote %s_trace.json, %s_report.txt, %s/BENCH_sim.json\n",
                stem.c_str(), stem.c_str(), out_dir.c_str());
    return 0;
}

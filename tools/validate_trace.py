#!/usr/bin/env python3
"""Validate sim_trace artifacts against their schemas.

Usage: validate_trace.py <trace.json> <BENCH_sim.json>

Checks that the trace is well-formed Chrome trace_event JSON (the
subset sim_trace emits), that the serialized resources it models —
the memory channel (pid 1) and the inter-group network (pid 2) —
carry non-overlapping transfer windows, and that the BENCH_sim.json
snapshot carries every field perf regressions are diffed on, in both
its single-run form and the committed --matrix "entries" form. Exits
non-zero with a message on the first violation.
"""

import json
import sys

# Chrome-trace process ids, mirroring TraceRecorder::writeChromeTrace:
# pid 0 is compute (one tid per FU class, overlap expected); pids 1
# and 2 are single serialized timelines where overlap means the
# simulator double-booked the resource.
SERIALIZED_PIDS = {1: "memory channel", 2: "network"}


def fail(msg):
    print(f"validate_trace: {msg}", file=sys.stderr)
    sys.exit(1)


def validate_trace(path):
    with open(path) as f:
        doc = json.load(f)
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        fail(f"{path}: missing top-level traceEvents")
    events = doc["traceEvents"]
    if not isinstance(events, list) or not events:
        fail(f"{path}: traceEvents must be a non-empty list")
    n_complete = 0
    spans = {}  # (pid, tid) -> [(ts, dur, name)]
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            fail(f"{path}: event {i} is not an object")
        for key in ("ph", "pid", "name"):
            if key not in ev:
                fail(f"{path}: event {i} lacks '{key}'")
        if ev["ph"] == "X":
            n_complete += 1
            for key in ("tid", "ts", "dur", "args"):
                if key not in ev:
                    fail(f"{path}: X event {i} lacks '{key}'")
            if ev["ts"] < 0 or ev["dur"] < 0:
                fail(f"{path}: X event {i} has negative ts/dur")
            spans.setdefault((ev["pid"], ev["tid"]), []).append(
                (ev["ts"], ev["dur"], ev["name"]))
        elif ev["ph"] != "M":
            fail(f"{path}: event {i} has unexpected phase {ev['ph']!r}")
    if n_complete == 0:
        fail(f"{path}: no complete ('X') events")

    # Per-resource monotonicity: on a serialized timeline, events
    # sorted by start must not overlap (touching endpoints are fine).
    for (pid, tid), evs in sorted(spans.items()):
        if pid not in SERIALIZED_PIDS:
            continue
        evs.sort()
        for (ts0, dur0, name0), (ts1, _, name1) in zip(evs, evs[1:]):
            if ts1 < ts0 + dur0:
                fail(f"{path}: {SERIALIZED_PIDS[pid]} (pid {pid}/tid "
                     f"{tid}): '{name1}' starts at {ts1} before "
                     f"'{name0}' [{ts0}, {ts0 + dur0}) ends")
    n_serial = sum(len(v) for (p, _), v in spans.items()
                   if p in SERIALIZED_PIDS)
    print(f"{path}: OK ({len(events)} events, {n_complete} spans, "
          f"{n_serial} serialized-resource spans)")


def validate_entry(path, doc, where):
    required = {
        "benchmark": str,
        "config": str,
        "security": str,
        "schedule": str,
        "hom_ops": int,
        "instructions": int,
        "cycles": int,
        "ms": float,
        "fu_utilization": float,
        "mem_utilization": float,
        "avg_power_w": float,
        "traffic_words": dict,
        "rf_access_words": int,
        "network_words": int,
    }
    for key, typ in required.items():
        if key not in doc:
            fail(f"{path}: {where} missing '{key}'")
        if not isinstance(doc[key], typ):
            fail(f"{path}: {where} '{key}' must be {typ.__name__}")
    if doc["schedule"] not in ("none", "list"):
        fail(f"{path}: {where} schedule {doc['schedule']!r} not in "
             f"none/list")
    traffic = doc["traffic_words"]
    for key in ("ksh_load", "input_load", "plain_load", "interm_load",
                "interm_store", "output_store", "total"):
        if not isinstance(traffic.get(key), int):
            fail(f"{path}: {where} traffic_words.{key} missing or "
                 f"non-integer")
    parts = sum(v for k, v in traffic.items() if k != "total")
    if parts != traffic["total"]:
        fail(f"{path}: {where} traffic_words.total {traffic['total']} "
             f"!= sum of categories {parts}")
    if doc["cycles"] <= 0:
        fail(f"{path}: {where} cycles must be positive")
    if not 0.0 <= doc["fu_utilization"] <= 1.0:
        fail(f"{path}: {where} fu_utilization out of [0,1]")


def validate_bench(path):
    with open(path) as f:
        doc = json.load(f)
    if "entries" in doc:
        entries = doc["entries"]
        if not isinstance(entries, list) or not entries:
            fail(f"{path}: entries must be a non-empty list")
        seen = set()
        for i, e in enumerate(entries):
            validate_entry(path, e, f"entry {i}")
            key = (e["benchmark"], e["config"], e["schedule"])
            if key in seen:
                fail(f"{path}: duplicate entry {key}")
            seen.add(key)
        print(f"{path}: OK ({len(entries)} entries)")
    else:
        validate_entry(path, doc, "snapshot")
        print(f"{path}: OK")


def main():
    if len(sys.argv) != 3:
        fail("usage: validate_trace.py <trace.json> <BENCH_sim.json>")
    validate_trace(sys.argv[1])
    validate_bench(sys.argv[2])


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Validate sim_trace artifacts against their schemas.

Usage: validate_trace.py <trace.json> <BENCH_sim.json>

Checks that the trace is well-formed Chrome trace_event JSON (the
subset sim_trace emits) and that the BENCH_sim.json snapshot carries
every field perf regressions are diffed on. Exits non-zero with a
message on the first violation.
"""

import json
import sys


def fail(msg):
    print(f"validate_trace: {msg}", file=sys.stderr)
    sys.exit(1)


def validate_trace(path):
    with open(path) as f:
        doc = json.load(f)
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        fail(f"{path}: missing top-level traceEvents")
    events = doc["traceEvents"]
    if not isinstance(events, list) or not events:
        fail(f"{path}: traceEvents must be a non-empty list")
    n_complete = 0
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            fail(f"{path}: event {i} is not an object")
        for key in ("ph", "pid", "name"):
            if key not in ev:
                fail(f"{path}: event {i} lacks '{key}'")
        if ev["ph"] == "X":
            n_complete += 1
            for key in ("tid", "ts", "dur", "args"):
                if key not in ev:
                    fail(f"{path}: X event {i} lacks '{key}'")
            if ev["ts"] < 0 or ev["dur"] < 0:
                fail(f"{path}: X event {i} has negative ts/dur")
        elif ev["ph"] != "M":
            fail(f"{path}: event {i} has unexpected phase {ev['ph']!r}")
    if n_complete == 0:
        fail(f"{path}: no complete ('X') events")
    print(f"{path}: OK ({len(events)} events, {n_complete} spans)")


def validate_bench(path):
    with open(path) as f:
        doc = json.load(f)
    required = {
        "benchmark": str,
        "config": str,
        "security": str,
        "hom_ops": int,
        "instructions": int,
        "cycles": int,
        "ms": float,
        "fu_utilization": float,
        "mem_utilization": float,
        "avg_power_w": float,
        "traffic_words": dict,
        "rf_access_words": int,
        "network_words": int,
    }
    for key, typ in required.items():
        if key not in doc:
            fail(f"{path}: missing '{key}'")
        if not isinstance(doc[key], typ):
            fail(f"{path}: '{key}' must be {typ.__name__}")
    traffic = doc["traffic_words"]
    for key in ("ksh_load", "input_load", "plain_load", "interm_load",
                "interm_store", "output_store", "total"):
        if not isinstance(traffic.get(key), int):
            fail(f"{path}: traffic_words.{key} missing or non-integer")
    parts = sum(v for k, v in traffic.items() if k != "total")
    if parts != traffic["total"]:
        fail(f"{path}: traffic_words.total {traffic['total']} != "
             f"sum of categories {parts}")
    if doc["cycles"] <= 0:
        fail(f"{path}: cycles must be positive")
    if not 0.0 <= doc["fu_utilization"] <= 1.0:
        fail(f"{path}: fu_utilization out of [0,1]")
    print(f"{path}: OK")


def main():
    if len(sys.argv) != 3:
        fail("usage: validate_trace.py <trace.json> <BENCH_sim.json>")
    validate_trace(sys.argv[1])
    validate_bench(sys.argv[2])


if __name__ == "__main__":
    main()

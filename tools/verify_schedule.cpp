/**
 * @file
 * Static schedule verification CLI: lower one (or every) benchmark
 * under one (or every) named ChipConfig, simulate it with tracing,
 * and replay the emitted schedule through the independent verifier
 * (verify/verifier.h). Exits non-zero on any violation, so CI can
 * gate on schedule legality.
 *
 * With --inject, additionally mutates each clean schedule with every
 * applicable fault class (verify/faults.h) and *requires* the
 * verifier to flag each one with its expected diagnostic — proving
 * the checks are live, not vacuous.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "cli_common.h"
#include "compiler/lower.h"
#include "sim/simulator.h"
#include "verify/faults.h"
#include "verify/verifier.h"

namespace {

void
usage()
{
    std::printf(
        "usage: verify_schedule [benchmark|all] [options]\n"
        "  --config NAME|all  chip configuration(s) "
        "(default: craterlake)\n"
        "  --security BITS    80, 128 or 200 (default: 80)\n"
        "  --schedule MODE    none, list or both (default: none)\n"
        "  --inject           also fault-inject each clean schedule "
        "and\n"
        "                     require every mutation to be caught\n"
        "  --list             print benchmark slugs and exit\n");
    cl::printBenchmarksAndConfigs();
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace cl;

    std::string bench_name = "all", config_name = "craterlake";
    std::string schedule_name = "none";
    unsigned security = 80;
    bool inject = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for %s\n",
                             arg.c_str());
                usage();
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--list") {
            usage();
            return 0;
        } else if (arg == "--config") {
            config_name = value();
        } else if (arg == "--security") {
            security = static_cast<unsigned>(std::stoul(value()));
        } else if (arg == "--schedule") {
            schedule_name = value();
        } else if (arg == "--inject") {
            inject = true;
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "unknown option %s\n", arg.c_str());
            usage();
            return 2;
        } else {
            bench_name = arg;
        }
    }

    const SecurityConfig sec = securityByBits(security);

    const std::vector<std::string> benches =
        bench_name == "all" ? benchmarkNames()
                            : std::vector<std::string>{bench_name};
    const std::vector<std::string> configs =
        config_name == "all" ? allConfigNames()
                             : std::vector<std::string>{config_name};
    const std::vector<ScheduleMode> modes =
        schedule_name == "both"
            ? std::vector<ScheduleMode>{ScheduleMode::None,
                                        ScheduleMode::List}
            : std::vector<ScheduleMode>{
                  scheduleModeByName(schedule_name)};

    unsigned failures = 0, runs = 0, injected = 0;
    for (const std::string &bn : benches) {
        const HomProgram hp = benchmarkByName(bn, sec);
        for (const std::string &cn : configs) {
            const ChipConfig cfg = ChipConfig::byName(cn);
            for (ScheduleMode mode : modes) {
            Lowering lower(cfg, mode);
            const Program prog = lower.lower(hp);
            prog.validate();

            Simulator sim(cfg);
            TraceRecorder rec;
            const SimStats stats = sim.run(prog, &rec);
            ScheduleVerifier verifier(cfg, prog);
            const VerifyReport report =
                verifier.verify(rec.insts(), rec.residency(), stats);
            ++runs;
            std::printf("%-14s x %-12s x %-4s %7zu insts: %s\n",
                        bn.c_str(), cn.c_str(), scheduleModeName(mode),
                        prog.size(), report.summary().c_str());
            if (!report.ok())
                ++failures;

            if (!inject || !report.ok())
                continue;
            for (FaultClass f : allFaultClasses) {
                auto insts = rec.insts();
                auto events = rec.residency();
                SimStats mutated = stats;
                if (!injectFault(f, prog, cfg, insts, events, mutated))
                    continue;
                ++injected;
                const VerifyReport faulted =
                    verifier.verify(insts, events, mutated);
                const ViolationKind want = expectedViolation(f);
                if (!faulted.has(want)) {
                    std::printf("  inject %-18s MISSED (wanted %s)\n",
                                faultClassName(f),
                                violationKindName(want));
                    ++failures;
                } else {
                    std::printf("  inject %-18s caught: %s (+%zu "
                                "other)\n",
                                faultClassName(f),
                                violationKindName(want),
                                faulted.violations.size() -
                                    faulted.count(want));
                }
            }
            }
        }
    }

    std::printf("\n%u run(s), %u fault(s) injected, %u failure(s)\n",
                runs, injected, failures);
    return failures == 0 ? 0 : 1;
}

#!/usr/bin/env python3
"""Compare two google-benchmark JSON snapshots (BENCH_*.json).

Usage:
  tools/bench_diff.py OLD.json NEW.json [--threshold PCT] [--fail-on-regression]
  tools/bench_diff.py --check FILE.json [FILE.json ...]

Diff mode prints a per-benchmark table of real/cpu time deltas
(negative = NEW is faster), normalizing time units, plus benchmarks
added or removed between the snapshots. With --fail-on-regression the
exit status is 1 when any shared benchmark regressed by more than
--threshold percent (default 10).

--check mode validates snapshot hygiene instead of diffing: the context
must say cl_build_type Release, must not carry a debug benchmark
library without the cl_forced marker, and every entry must have a
positive real_time. Used by CI on the checked-in tables.
"""

import argparse
import json
import sys

_UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def load(path):
    with open(path) as f:
        data = json.load(f)
    if "benchmarks" not in data or "context" not in data:
        raise SystemExit(f"{path}: not a google-benchmark JSON file")
    return data


def entries(data):
    """name -> (real_ns, cpu_ns), aggregates and error runs skipped."""
    out = {}
    for b in data["benchmarks"]:
        if b.get("run_type") == "aggregate" or "error_occurred" in b:
            continue
        scale = _UNIT_NS.get(b.get("time_unit", "ns"))
        if scale is None:
            raise SystemExit(f"unknown time_unit {b['time_unit']!r} "
                             f"in {b['name']}")
        out[b["name"]] = (b["real_time"] * scale, b["cpu_time"] * scale)
    return out


def fmt_ns(ns):
    for unit, div in (("s", 1e9), ("ms", 1e6), ("us", 1e3)):
        if ns >= div:
            return f"{ns / div:.3g} {unit}"
    return f"{ns:.3g} ns"


def diff(old_path, new_path, threshold, fail_on_regression):
    old = entries(load(old_path))
    new = entries(load(new_path))
    shared = [n for n in old if n in new]
    added = [n for n in new if n not in old]
    removed = [n for n in old if n not in new]

    width = max((len(n) for n in shared), default=4)
    print(f"{'benchmark':<{width}}  {'old':>9}  {'new':>9}  "
          f"{'real':>8}  {'cpu':>8}")
    regressions = []
    for name in shared:
        o_real, o_cpu = old[name]
        n_real, n_cpu = new[name]
        d_real = 100.0 * (n_real - o_real) / o_real if o_real else 0.0
        d_cpu = 100.0 * (n_cpu - o_cpu) / o_cpu if o_cpu else 0.0
        flag = ""
        if d_real > threshold:
            flag = "  << regression"
            regressions.append((name, d_real))
        elif d_real < -threshold:
            flag = "  << improvement"
        print(f"{name:<{width}}  {fmt_ns(o_real):>9}  "
              f"{fmt_ns(n_real):>9}  {d_real:>+7.1f}%  "
              f"{d_cpu:>+7.1f}%{flag}")

    for name in added:
        print(f"{name:<{width}}  {'-':>9}  {fmt_ns(new[name][0]):>9}  "
              f"{'added':>8}")
    for name in removed:
        print(f"{name:<{width}}  {fmt_ns(old[name][0]):>9}  {'-':>9}  "
              f"{'removed':>8}")

    if not shared:
        print("warning: no shared benchmarks between the snapshots",
              file=sys.stderr)
    if regressions and fail_on_regression:
        print(f"\n{len(regressions)} benchmark(s) regressed more than "
              f"{threshold:g}%:", file=sys.stderr)
        for name, pct in regressions:
            print(f"  {name}  {pct:+.1f}%", file=sys.stderr)
        return 1
    return 0


def check(paths):
    """Hygiene checks on checked-in snapshots."""
    bad = 0
    for path in paths:
        data = load(path)
        ctx = data["context"]
        problems = []
        if ctx.get("cl_build_type") != "Release":
            problems.append(
                f"cl_build_type is {ctx.get('cl_build_type')!r}, "
                "expected 'Release'")
        lib = ctx.get("cl_library_build_type")
        if lib not in (None, "release") and ctx.get("cl_forced") != "true":
            problems.append(
                f"benchmark library build type is {lib!r} without a "
                "cl_forced marker")
        names = set()
        for b in data["benchmarks"]:
            if b.get("run_type") == "aggregate":
                continue
            if b["name"] in names:
                problems.append(f"duplicate benchmark {b['name']!r}")
            names.add(b["name"])
            if "error_occurred" in b:
                problems.append(f"{b['name']} recorded an error: "
                                f"{b.get('error_message', '?')}")
            elif b.get("real_time", 0) <= 0:
                problems.append(f"{b['name']} has non-positive real_time")
        if problems:
            bad += 1
            print(f"{path}: FAIL")
            for p in problems:
                print(f"  - {p}")
        else:
            forced = " (forced)" if ctx.get("cl_forced") == "true" else ""
            print(f"{path}: ok, {len(names)} benchmarks{forced}")
    return 1 if bad else 0


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("files", nargs="+",
                    help="OLD.json NEW.json, or snapshots with --check")
    ap.add_argument("--threshold", type=float, default=10.0,
                    help="percent change flagged as regression/improvement"
                         " (default 10)")
    ap.add_argument("--fail-on-regression", action="store_true",
                    help="exit 1 when a shared benchmark regresses past"
                         " the threshold")
    ap.add_argument("--check", action="store_true",
                    help="validate snapshot hygiene instead of diffing")
    args = ap.parse_args()

    if args.check:
        return check(args.files)
    if len(args.files) != 2:
        ap.error("diff mode takes exactly two files (OLD.json NEW.json)")
    return diff(args.files[0], args.files[1], args.threshold,
                args.fail_on_regression)


if __name__ == "__main__":
    sys.exit(main())

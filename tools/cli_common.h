/**
 * @file
 * Shared helpers for the developer CLIs: security-level selection,
 * the named-configuration list, and the benchmark/config listing that
 * every tool's usage text embeds. One definition keeps the tools'
 * error behavior identical — an unknown name always dies listing the
 * valid choices.
 */

#ifndef CL_TOOLS_CLI_COMMON_H
#define CL_TOOLS_CLI_COMMON_H

#include <cstdio>
#include <string>
#include <vector>

#include "workloads/benchmarks.h"

namespace cl {

/** SecurityConfig from a --security bits value; fatal on anything
 *  other than 80/128/200. */
inline SecurityConfig
securityByBits(unsigned bits)
{
    switch (bits) {
      case 80: return SecurityConfig::bits80();
      case 128: return SecurityConfig::bits128();
      case 200: return SecurityConfig::bits200();
    }
    CL_FATAL("unknown security level ", bits, "; use 80/128/200");
}

/** The named chip configurations "--config all" expands to. */
inline const std::vector<std::string> &
allConfigNames()
{
    static const std::vector<std::string> names = {
        "craterlake", "no-kshgen", "no-crb", "crossbar", "f1plus",
    };
    return names;
}

/** The benchmark/config listing shared by every tool's usage text. */
inline void
printBenchmarksAndConfigs()
{
    std::printf("benchmarks:");
    for (const std::string &n : benchmarkNames())
        std::printf(" %s", n.c_str());
    std::printf("\nconfigs: craterlake craterlake-128k no-kshgen "
                "no-crb crossbar f1plus rf<MB>\n");
}

} // namespace cl

#endif // CL_TOOLS_CLI_COMMON_H

/**
 * @file
 * Unbounded encrypted computation — the paper's title claim, live:
 * squares a ciphertext past its multiplicative budget by
 * bootstrapping whenever the budget runs out (Fig 2), using the
 * functional CKKS bootstrapper (ModRaise, CoeffToSlot, EvalMod,
 * SlotToCoeff).
 */

#include <cmath>
#include <cstdio>

#include "ckks/bootstrap.h"

int
main()
{
    using namespace cl;

    CkksParams p;
    p.logN = 9;
    p.l = 20;
    p.alpha = 20;
    p.firstModBits = 50;
    p.scaleBits = 55;
    p.specialBits = 55;
    p.secretHamming = 16; // sparse secret bounds the mod-raise term

    CkksContext ctx(p);
    CkksEncoder encoder(ctx);
    KeyGenerator keygen(ctx);
    PublicKey pk = keygen.genPublicKey();
    SwitchKey rlk = keygen.genRelinKey();
    Encryptor encryptor(ctx, pk);
    Decryptor decryptor(ctx, keygen.secretKey());
    Evaluator eval(ctx);

    std::printf("Setting up bootstrapping keys and transforms...\n");
    Bootstrapper boot(ctx, encoder, keygen);

    const double scale = 0x1p40;
    std::vector<Complex> vals(ctx.slots());
    FastRng rng(1);
    for (auto &v : vals)
        v = Complex(0.85 + 0.1 * rng.nextDouble(), 0); // near 0.9

    // Start with an EXHAUSTED ciphertext (level 1, Fig 2's red zone):
    // no further multiplication is possible without refreshing.
    Ciphertext ct =
        encryptor.encrypt(encoder.encode(vals, scale, 1), scale);
    std::vector<Complex> expect = vals;

    std::printf("input ciphertext at level %u of L=%u: budget "
                "exhausted\n",
                ct.level(), ctx.l());
    unsigned bootstraps = 0;
    for (int round = 0; round < 3; ++round) {
        std::printf("  bootstrap #%u...", ++bootstraps);
        ct = boot.bootstrap(ct);
        std::printf(" refreshed to level %u (depth used: %u)\n",
                    ct.level(), boot.depthUsed());
        ct = eval.square(ct, rlk);
        eval.rescale(ct);
        for (auto &v : expect)
            v *= v;
        std::printf("  squared under encryption: level %u\n",
                    ct.level());
        // Restore the working scale (squaring at a scale below the
        // prime width shrinks it), then drop to the bottom of the
        // chain to force the next refresh.
        const double boost = scale / ct.scale;
        if (boost > 1.5) {
            ct = eval.mulScalar(ct, boost);
            eval.rescale(ct);
            ct.scale = scale;
        }
        eval.levelDrop(ct, 1);
    }

    auto out = decryptor.decryptValues(encoder, ct);
    double max_err = 0;
    for (std::size_t i = 0; i < vals.size(); ++i)
        max_err = std::max(max_err, std::abs(out[i] - expect[i]));
    std::printf("\ncomputed x^8 through 3 bootstrap cycles; slot 0: "
                "%.5f (expected %.5f)\n",
                out[0].real(), expect[0].real());
    std::printf("max error: %.2e %s\n", max_err,
                max_err < 0.05 ? "(OK)" : "(TOO LARGE)");
    return max_err < 0.05 ? 0 : 1;
}

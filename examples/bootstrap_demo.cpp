/**
 * @file
 * Unbounded encrypted computation — the paper's title claim, live:
 * squares a ciphertext past its multiplicative budget by
 * bootstrapping whenever the budget runs out (Fig 2), using the
 * functional CKKS bootstrapper (ModRaise, CoeffToSlot, EvalMod,
 * SlotToCoeff). A second section refreshes a whole batch of
 * ciphertexts through the task-graph runtime (CL_EXEC selects
 * serial or parallel execution; the bytes are identical either way,
 * and the digest printed below proves it).
 */

#include <cmath>
#include <cstdio>

#include "ckks/bootstrap.h"
#include "runtime/hostrun.h"

int
main()
{
    using namespace cl;

    CkksParams p;
    p.logN = 9;
    p.l = 20;
    p.alpha = 20;
    p.firstModBits = 50;
    p.scaleBits = 55;
    p.specialBits = 55;
    p.secretHamming = 16; // sparse secret bounds the mod-raise term

    CkksContext ctx(p);
    CkksEncoder encoder(ctx);
    KeyGenerator keygen(ctx);
    PublicKey pk = keygen.genPublicKey();
    SwitchKey rlk = keygen.genRelinKey();
    Encryptor encryptor(ctx, pk);
    Decryptor decryptor(ctx, keygen.secretKey());
    Evaluator eval(ctx);

    std::printf("Setting up bootstrapping keys and transforms...\n");
    Bootstrapper boot(ctx, encoder, keygen);

    const double scale = 0x1p40;
    std::vector<Complex> vals(ctx.slots());
    FastRng rng(1);
    for (auto &v : vals)
        v = Complex(0.85 + 0.1 * rng.nextDouble(), 0); // near 0.9

    // Start with an EXHAUSTED ciphertext (level 1, Fig 2's red zone):
    // no further multiplication is possible without refreshing.
    Ciphertext ct =
        encryptor.encrypt(encoder.encode(vals, scale, 1), scale);
    std::vector<Complex> expect = vals;

    std::printf("input ciphertext at level %u of L=%u: budget "
                "exhausted\n",
                ct.level(), ctx.l());
    unsigned bootstraps = 0;
    for (int round = 0; round < 3; ++round) {
        std::printf("  bootstrap #%u...", ++bootstraps);
        ct = boot.bootstrap(ct);
        std::printf(" refreshed to level %u (depth used: %u)\n",
                    ct.level(), boot.depthUsed());
        ct = eval.square(ct, rlk);
        eval.rescale(ct);
        for (auto &v : expect)
            v *= v;
        std::printf("  squared under encryption: level %u\n",
                    ct.level());
        // Restore the working scale (squaring at a scale below the
        // prime width shrinks it), then drop to the bottom of the
        // chain to force the next refresh.
        const double boost = scale / ct.scale;
        if (boost > 1.5) {
            ct = eval.mulScalar(ct, boost);
            eval.rescale(ct);
            ct.scale = scale;
        }
        eval.levelDrop(ct, 1);
    }

    auto out = decryptor.decryptValues(encoder, ct);
    double max_err = 0;
    for (std::size_t i = 0; i < vals.size(); ++i)
        max_err = std::max(max_err, std::abs(out[i] - expect[i]));
    std::printf("\ncomputed x^8 through 3 bootstrap cycles; slot 0: "
                "%.5f (expected %.5f)\n",
                out[0].real(), expect[0].real());
    std::printf("max error: %.2e %s\n", max_err,
                max_err < 0.05 ? "(OK)" : "(TOO LARGE)");
    if (max_err >= 0.05)
        return 1;

    // ---- Batch refresh through the host runtime: independent
    //      sessions bootstrap concurrently under CL_EXEC=graph, one
    //      after another under CL_EXEC=serial — with byte-identical
    //      results, which is why the digest below is pinned in the
    //      golden file regardless of mode or thread count. ----
    // (The mode is deliberately not printed: the golden file pins
    // this output for every CL_EXEC setting.)
    const ExecMode mode = execModeFromEnv();
    std::printf("\nbatch refresh of 3 exhausted ciphertexts...\n");
    std::vector<Ciphertext> batch(3);
    for (std::size_t i = 0; i < batch.size(); ++i) {
        std::vector<Complex> bv(ctx.slots());
        FastRng brng(42 + i);
        for (auto &v : bv)
            v = Complex(brng.nextDouble() - 0.5, 0);
        Encryptor benc(ctx, pk, 1000 + i);
        batch[i] = benc.encrypt(encoder.encode(bv, scale, 1), scale);
    }
    std::vector<std::function<void()>> jobs;
    for (std::size_t i = 0; i < batch.size(); ++i)
        jobs.push_back([&, i] { batch[i] = boot.bootstrap(batch[i]); });
    runTaskBatch(jobs, mode);

    std::uint64_t digest = 1469598103934665603ull; // FNV offset
    bool refreshed = true;
    for (const Ciphertext &b : batch) {
        digest = digestCiphertext(digest, b);
        refreshed = refreshed && b.level() > 3;
    }
    std::printf("batch refreshed to level %u; digest %016llx %s\n",
                batch[0].level(),
                static_cast<unsigned long long>(digest),
                refreshed ? "(OK)" : "(LEVEL TOO LOW)");
    return refreshed ? 0 : 1;
}

/**
 * @file
 * Boosted keyswitching variants (Sec 3.1): runs the same encrypted
 * computation under 1-, 2-, 3-, and 6-digit hints, verifying
 * correctness functionally and reporting each variant's hint
 * footprint and operation counts — the performance/security tradeoff
 * knob CraterLake exposes.
 */

#include <cmath>
#include <cstdio>

#include "ckks/encryptor.h"
#include "ckks/evaluator.h"
#include "util/table.h"

int
main()
{
    using namespace cl;

    CkksParams params;
    params.logN = 12;
    params.l = 6;
    params.alpha = 6;
    params.firstModBits = 55;
    params.scaleBits = 40;
    params.specialBits = 55;
    CkksContext ctx(params);
    CkksEncoder encoder(ctx);
    KeyGenerator keygen(ctx);
    PublicKey pk = keygen.genPublicKey();
    Encryptor encryptor(ctx, pk);
    Decryptor decryptor(ctx, keygen.secretKey());
    Evaluator eval(ctx);

    std::vector<Complex> xs;
    for (int i = 0; i < 16; ++i)
        xs.emplace_back(std::sin(0.3 * i), 0.0);
    const double scale = params.scale();

    std::printf("=== Keyswitching variants on x^2 (L=%u, N=%zu) ===\n\n",
                ctx.l(), ctx.n());
    TextTable t({"Digits t", "alpha", "Hint size (x ciphertext)",
                 "NTTs", "CRB MACs", "max error"});

    for (unsigned alpha_ks : {6u, 3u, 2u, 1u}) {
        const unsigned digits =
            static_cast<unsigned>(ceilDiv(ctx.l(), alpha_ks));
        SwitchKey rlk = keygen.genRelinKey(alpha_ks);

        ctx.ops().reset();
        Ciphertext ct =
            encryptor.encryptValues(encoder, xs, scale, ctx.l());
        Ciphertext sq = eval.square(ct, rlk);
        eval.rescale(sq);
        auto out = decryptor.decryptValues(encoder, sq);

        double max_err = 0;
        for (std::size_t i = 0; i < xs.size(); ++i) {
            max_err = std::max(max_err, std::abs(out[i].real() -
                                                 xs[i].real() *
                                                     xs[i].real()));
        }

        const double ct_words =
            2.0 * ctx.l() * static_cast<double>(ctx.n());
        char err[32];
        std::snprintf(err, sizeof(err), "%.1e", max_err);
        t.addRow({std::to_string(digits), std::to_string(alpha_ks),
                  TextTable::num(rlk.storedWords(false) / ct_words, 2),
                  std::to_string(ctx.ops().ntts),
                  std::to_string(ctx.ops().polyMults), err});

        if (max_err > 1e-2) {
            std::printf("variant t=%u FAILED correctness\n", digits);
            return 1;
        }
    }
    t.print();
    std::printf("\nA t-digit hint costs ~(t+1) ciphertexts of storage "
                "(Sec 3.1) but allows a larger log Q at fixed N — the "
                "tradeoff the digit policies of Sec 9.4 navigate. "
                "t = L (alpha = 1) is the standard algorithm prior "
                "accelerators target.\nAll variants decrypt correctly.\n");
    return 0;
}

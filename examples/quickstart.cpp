/**
 * @file
 * Quickstart: encrypt a vector, compute (3x + 2)^2 homomorphically,
 * decrypt, and verify — the end-to-end CKKS flow of Fig 1.
 */

#include <cmath>
#include <cstdio>

#include "ckks/encryptor.h"
#include "ckks/evaluator.h"

int
main()
{
    using namespace cl;

    // 1. Parameters: N=4096, 4 levels of multiplicative budget.
    CkksParams params = CkksParams::testSmall();
    CkksContext ctx(params);
    CkksEncoder encoder(ctx);
    KeyGenerator keygen(ctx);

    PublicKey pk = keygen.genPublicKey();
    SwitchKey rlk = keygen.genRelinKey();
    Encryptor encryptor(ctx, pk);
    Decryptor decryptor(ctx, keygen.secretKey());
    Evaluator eval(ctx);

    // 2. Client side: encode and encrypt.
    std::printf("CraterLake quickstart: computing (3x + 2)^2 under "
                "encryption\n");
    std::vector<Complex> xs;
    for (int i = 0; i < 8; ++i)
        xs.emplace_back(0.1 * i, 0.0);
    const double scale = params.scale();
    Ciphertext ct = encryptor.encryptValues(encoder, xs, scale, ctx.l());
    std::printf("  encrypted %zu values at N=%zu, L=%u\n", xs.size(),
                ctx.n(), ct.level());

    // 3. Server side: compute on ciphertexts only.
    Ciphertext t = eval.mulScalar(ct, 3.0); // 3x
    eval.rescale(t);
    auto two = encoder.encode({{2.0, 0.0}, {2.0, 0.0}, {2.0, 0.0},
                               {2.0, 0.0}, {2.0, 0.0}, {2.0, 0.0},
                               {2.0, 0.0}, {2.0, 0.0}},
                              t.scale, t.level());
    t = eval.addPlain(t, two);          // 3x + 2
    Ciphertext result = eval.square(t, rlk); // (3x + 2)^2
    eval.rescale(result);
    std::printf("  computed on the server; result level %u, scale 2^%.1f\n",
                result.level(), std::log2(result.scale));

    // 4. Client side: decrypt and check.
    auto out = decryptor.decryptValues(encoder, result);
    double max_err = 0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
        const double expect = std::pow(3 * xs[i].real() + 2, 2.0);
        max_err = std::max(max_err, std::abs(out[i].real() - expect));
        std::printf("  x=%.2f  ->  %.6f  (expected %.6f)\n", xs[i].real(),
                    out[i].real(), expect);
    }
    std::printf("max error: %.2e %s\n", max_err,
                max_err < 1e-3 ? "(OK)" : "(TOO LARGE)");
    return max_err < 1e-3 ? 0 : 1;
}

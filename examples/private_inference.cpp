/**
 * @file
 * Private inference: a one-layer neural network (dense layer +
 * squared activation) evaluated on an encrypted input, using
 * rotations for the matrix-vector product — the privacy-preserving
 * ML pattern the paper's benchmarks are built from (Sec 2.1).
 * Weights stay in plaintext (the LoLa "unencrypted weights" model):
 * the server learns nothing about the input or result.
 */

#include <cmath>
#include <cstdio>
#include <vector>

#include "ckks/encryptor.h"
#include "ckks/evaluator.h"

int
main()
{
    using namespace cl;

    constexpr std::size_t dim = 8; // 8x8 dense layer

    CkksParams params = CkksParams::testSmall();
    CkksContext ctx(params);
    CkksEncoder encoder(ctx);
    KeyGenerator keygen(ctx);
    PublicKey pk = keygen.genPublicKey();
    SwitchKey rlk = keygen.genRelinKey();

    // Rotation keys for the diagonal method: steps 1 .. dim-1.
    std::vector<int> steps;
    for (std::size_t i = 1; i < dim; ++i)
        steps.push_back(static_cast<int>(i));
    GaloisKeys gk = keygen.genRotationKeys(steps);

    Encryptor encryptor(ctx, pk);
    Decryptor decryptor(ctx, keygen.secretKey());
    Evaluator eval(ctx);

    // The model (plaintext weights) and the client's input.
    FastRng rng(7);
    std::vector<std::vector<double>> w(dim, std::vector<double>(dim));
    for (auto &row : w) {
        for (auto &v : row)
            v = rng.nextDouble() - 0.5;
    }
    std::vector<double> x(dim);
    for (auto &v : x)
        v = rng.nextDouble() - 0.5;

    // Client encrypts the input, replicated to fill the slots.
    const std::size_t slots = ctx.slots();
    std::vector<Complex> packed(slots);
    for (std::size_t i = 0; i < slots; ++i)
        packed[i] = Complex(x[i % dim], 0);
    const double scale = params.scale();
    Ciphertext ct = encryptor.encrypt(
        encoder.encode(packed, scale, ctx.l()), scale);
    std::printf("client: encrypted %zu-dim input (replicated across %zu "
                "slots)\n",
                dim, slots);

    // Server: y = W x by the diagonal method — dim rotations, each
    // multiplied by the matching plaintext diagonal (Sec 2.1's
    // "careful replication" made concrete).
    Ciphertext acc;
    bool first = true;
    for (std::size_t d = 0; d < dim; ++d) {
        std::vector<Complex> diag(slots);
        for (std::size_t i = 0; i < slots; ++i)
            diag[i] = Complex(w[i % dim][(i + d) % dim], 0);
        Ciphertext rot = d == 0 ? ct
                                : eval.rotate(ct, static_cast<int>(d), gk);
        Ciphertext term = eval.mulPlain(
            rot, encoder.encode(diag, scale, rot.level()), scale);
        acc = first ? term : eval.add(acc, term);
        first = false;
    }
    eval.rescale(acc);

    // Squared activation (the CryptoNets/LoLa nonlinearity).
    Ciphertext out_ct = eval.square(acc, rlk);
    eval.rescale(out_ct);
    std::printf("server: dense layer (%zu rotations) + square "
                "activation done at level %u\n",
                dim - 1, out_ct.level());

    // Client decrypts.
    auto out = decryptor.decryptValues(encoder, out_ct);
    double max_err = 0;
    for (std::size_t i = 0; i < dim; ++i) {
        double y = 0;
        for (std::size_t j = 0; j < dim; ++j)
            y += w[i][j] * x[j];
        const double expect = y * y;
        max_err = std::max(max_err, std::abs(out[i].real() - expect));
        std::printf("  y[%zu] = %.6f (expected %.6f)\n", i,
                    out[i].real(), expect);
    }
    std::printf("max error: %.2e %s\n", max_err,
                max_err < 1e-2 ? "(OK)" : "(TOO LARGE)");
    return max_err < 1e-2 ? 0 : 1;
}

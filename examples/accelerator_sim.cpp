/**
 * @file
 * Accelerator walkthrough: build an FHE program with the compiler
 * DSL, lower it for CraterLake, simulate it cycle-by-cycle, and
 * inspect the run — the full hardware-evaluation flow the paper's
 * methodology uses (Sec 6, Sec 8).
 */

#include <cstdio>

#include "core/craterlake.h"
#include "workloads/benchmarks.h"

int
main()
{
    using namespace cl;

    std::printf("=== CraterLake accelerator walkthrough ===\n\n");

    // A small deep program: encrypted dot products with a bootstrap
    // in the middle, written against the builder DSL.
    HomBuilder b("demo", 16, 57);
    auto x = b.input(24);
    auto w = b.input(24);
    auto prod = b.mul(x, w, 2);
    for (int r = 0; r < 8; ++r)
        prod = b.add(prod, b.rotate(prod, 1 << r));
    // Burn the rest of the budget, then refresh.
    while (prod.level > 4)
        prod = b.mul(prod, prod, 2);
    std::printf("budget exhausted at level %u -> bootstrapping\n",
                prod.level);
    prod = b.bootstrap(prod);
    std::printf("refreshed to level %u\n", prod.level);
    prod = b.mul(prod, prod, 2); // keep computing: unbounded depth
    b.output(prod);

    const HomProgram prog = b.take();
    std::printf("\nprogram: %zu homomorphic ops (%zu rotations, %zu "
                "ct-ct muls, %zu pt muls)\n",
                prog.ops.size(), prog.countKind(HomOpKind::Rotate),
                prog.countKind(HomOpKind::Mul),
                prog.countKind(HomOpKind::MulPlain));

    // Compile + simulate on CraterLake and the F1+ baseline.
    for (const ChipConfig &cfg :
         {ChipConfig::craterLake(), ChipConfig::f1plus()}) {
        Accelerator accel(cfg);
        const RunResult r = accel.execute(prog);
        std::printf("\n--- %s ---\n", cfg.name.c_str());
        std::printf("  instructions:   %zu\n", r.instructions);
        std::printf("  cycles:         %llu (%.3f ms at %.1f GHz)\n",
                    static_cast<unsigned long long>(r.stats.cycles),
                    r.milliseconds(), cfg.freqGhz);
        std::printf("  FU utilization: %.0f%%\n",
                    100 * r.stats.fuUtilization(cfg));
        std::printf("  DRAM traffic:   %.2f GB (%.0f%% BW utilization)\n",
                    r.stats.totalTrafficWords() * cfg.wordBytes() / 1e9,
                    100 * r.stats.memUtilization());
        std::printf("  keyswitches:    %llu\n",
                    static_cast<unsigned long long>(
                        r.lowering.keyswitches));
        std::printf("  avg power:      %.0f W\n",
                    r.stats.avgPowerWatts(cfg));
    }

    std::printf("\nCraterLake executes the same program with far fewer "
                "stalls: the CRB and chained pipelines keep its wide "
                "datapath busy where F1+ bottlenecks on register-file "
                "ports (Sec 2.5, Sec 5).\n");
    return 0;
}

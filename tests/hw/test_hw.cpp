/** Tests for the hardware configuration, area, and energy models. */

#include <gtest/gtest.h>

#include "hw/area.h"
#include "hw/energy.h"

namespace cl {
namespace {

TEST(ChipConfig, CraterLakeDefaults)
{
    const ChipConfig c = ChipConfig::craterLake();
    EXPECT_EQ(c.lanes, 2048u);
    EXPECT_EQ(c.laneGroups, 8u);
    EXPECT_EQ(c.fuCount(FuType::Ntt), 2u);
    EXPECT_EQ(c.fuCount(FuType::Multiply), 5u);
    EXPECT_EQ(c.fuCount(FuType::Add), 5u);
    EXPECT_EQ(c.fuCount(FuType::Crb), 1u);
    EXPECT_EQ(c.fuCount(FuType::KshGen), 1u);
    EXPECT_EQ(c.rfBytes, 256ull << 20);
    EXPECT_EQ(c.wordBits, 28u);
}

TEST(ChipConfig, VectorCycles)
{
    const ChipConfig c = ChipConfig::craterLake();
    // A 64K-element vector takes N/E = 32 cycles (Sec 4.1).
    EXPECT_EQ(c.vectorCycles(1 << 16), 32u);
    EXPECT_EQ(c.vectorCycles(1 << 11), 1u);
}

TEST(ChipConfig, MemoryBandwidthWordsPerCycle)
{
    const ChipConfig c = ChipConfig::craterLake();
    // 2 x 512 GB/s at 1 GHz over 3.5-byte words: ~292 words/cycle.
    EXPECT_NEAR(c.memWordsPerCycle(), 292.57, 1.0);
}

TEST(ChipConfig, NetworkBandwidth)
{
    const ChipConfig c = ChipConfig::craterLake();
    // 4E elements/cycle = 8192; at 28 bits and 1 GHz that is the
    // paper's 29 TB/s (Sec 4.2).
    EXPECT_EQ(c.networkWordsPerCycle(), 8192.0);
    const double tbps = 8192 * 3.5 * 1e9 / 1e12;
    EXPECT_NEAR(tbps, 28.7, 0.5);
}

TEST(ChipConfig, AblationsToggleUnits)
{
    EXPECT_EQ(ChipConfig::noCrbNoChain().fuCount(FuType::Crb), 0u);
    EXPECT_FALSE(ChipConfig::noCrbNoChain().hasChaining);
    EXPECT_EQ(ChipConfig::noKshGen().fuCount(FuType::KshGen), 0u);
    EXPECT_EQ(ChipConfig::crossbarNetwork().network,
              NetworkType::Crossbar);
}

TEST(ChipConfig, F1PlusOrganization)
{
    const ChipConfig f1 = ChipConfig::f1plus();
    EXPECT_EQ(f1.lanes, 256u);
    EXPECT_EQ(f1.laneGroups, 32u);
    EXPECT_EQ(f1.fuCount(FuType::Ntt), 32u);
    EXPECT_EQ(f1.fuCount(FuType::Multiply), 64u);
    EXPECT_EQ(f1.fuCount(FuType::Crb), 0u);
    // Per-cluster vectors: a 64K vector takes 256 cycles.
    EXPECT_EQ(f1.vectorCycles(1 << 16), 256u);
}

TEST(AreaModel, MatchesTable2)
{
    const AreaBreakdown a = areaModel(ChipConfig::craterLake());
    EXPECT_NEAR(a.crb, 158.8, 1.0);
    EXPECT_NEAR(a.ntt, 2 * 28.1, 1.0);
    EXPECT_NEAR(a.automorphism, 9.0, 0.5);
    EXPECT_NEAR(a.kshGen, 3.3, 0.2);
    EXPECT_NEAR(a.multiply, 5 * 2.2, 0.5);
    EXPECT_NEAR(a.add, 5 * 0.8, 0.5);
    EXPECT_NEAR(a.registerFile, 192.0, 1.0);
    EXPECT_NEAR(a.interconnect, 10.0, 0.5);
    EXPECT_NEAR(a.memPhy, 29.8, 0.5);
    EXPECT_NEAR(a.total(), 472.3, 15.0);
}

TEST(AreaModel, CrossbarIs16xLarger)
{
    const AreaBreakdown fixed = areaModel(ChipConfig::craterLake());
    const AreaBreakdown xbar = areaModel(ChipConfig::crossbarNetwork());
    EXPECT_NEAR(xbar.interconnect / fixed.interconnect, 16.0, 0.1);
}

TEST(AreaModel, RfScalesWithCapacity)
{
    const AreaBreakdown big = areaModel(ChipConfig::withRfMB(512));
    const AreaBreakdown small = areaModel(ChipConfig::withRfMB(128));
    EXPECT_NEAR(big.registerFile / small.registerFile, 4.0, 0.01);
}

TEST(AreaModel, N128kAddsSec94Delta)
{
    const double base = areaModel(ChipConfig::craterLake()).total();
    const double big = areaModel(ChipConfig::craterLake128k()).total();
    // Sec 9.4: ~27.4 mm^2, under 6% of chip area.
    EXPECT_GT(big - base, 15.0);
    EXPECT_LT(big - base, 30.0);
    EXPECT_LT((big - base) / base, 0.06);
}

TEST(EnergyModel, PerOpEnergiesOrdered)
{
    const EnergyParams p;
    // NTT butterflies (mul + 2 adds) cost more than a bare multiply,
    // which costs far more than an add or a permutation move.
    EXPECT_GT(fuEnergyPerLaneOp(p, FuType::Ntt),
              fuEnergyPerLaneOp(p, FuType::Multiply) * 0.9);
    EXPECT_GT(fuEnergyPerLaneOp(p, FuType::Multiply),
              10 * fuEnergyPerLaneOp(p, FuType::Add));
    EXPECT_GT(fuEnergyPerLaneOp(p, FuType::Multiply),
              fuEnergyPerLaneOp(p, FuType::Automorphism));
}

} // namespace
} // namespace cl

/**
 * @file
 * Evaluator-level contracts for the fused kernel pipelines (CL_FUSE,
 * DESIGN.md §5e):
 *  - every fused pipeline (rescale, keyswitch inner product, hoisted
 *    rotation, modDown) is byte-identical to the composed multi-pass
 *    sequence it replaces, on every available SIMD backend;
 *  - the OpCounter model and the instrumented kernel counts are both
 *    invariant under fusion — fusing changes memory passes, never the
 *    modular-arithmetic work;
 *  - the memory-traffic counters record strictly fewer passes and
 *    bytes for the fused pipelines on the same workload.
 */

#include <gtest/gtest.h>

#include <memory>

#include "ckks/encryptor.h"
#include "ckks/evaluator.h"
#include "rns/simd/kernels.h"
#include "util/instrument.h"

namespace cl {
namespace {

class BackendGuard
{
  public:
    BackendGuard() : saved_(activeSimdBackend()) {}
    ~BackendGuard() { setSimdBackend(saved_); }

  private:
    SimdBackend saved_;
};

class FusionGuard
{
  public:
    FusionGuard() : saved_(fusionEnabled()) {}
    ~FusionGuard() { setFusionEnabled(saved_); }

  private:
    bool saved_;
};

class TileGuard
{
  public:
    TileGuard() : saved_(fusionTileMinBytes()) {}
    ~TileGuard() { setFusionTileMinBytes(saved_); }

  private:
    u64 saved_;
};

std::vector<SimdBackend>
availableBackends()
{
    std::vector<SimdBackend> v{SimdBackend::Scalar};
    for (SimdBackend b : {SimdBackend::Avx2, SimdBackend::Avx512}) {
        if (kernelTableFor(b))
            v.push_back(b);
    }
    return v;
}

bool
sameCiphertext(const Ciphertext &a, const Ciphertext &b)
{
    return a.c0.data() == b.c0.data() && a.c1.data() == b.c1.data() &&
           a.scale == b.scale;
}

class FusionTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        // The test parameters are far below the adaptive tile floor
        // (the digit image fits in cache); force the tiled inner
        // product on so the fused path under test actually runs.
        setFusionTileMinBytes(0);
        ctx_ = std::make_unique<CkksContext>(CkksParams::testSmall());
        enc_ = std::make_unique<CkksEncoder>(*ctx_);
        keygen_ = std::make_unique<KeyGenerator>(*ctx_);
        pk_ = keygen_->genPublicKey();
        encryptor_ = std::make_unique<Encryptor>(*ctx_, pk_);
        eval_ = std::make_unique<Evaluator>(*ctx_);
        relin_ = keygen_->genRelinKey();
        galois_ = keygen_->genRotationKeys({1}, /*conjugate=*/false);
    }

    Ciphertext
    encryptRandom(std::uint64_t seed)
    {
        FastRng rng(seed);
        std::vector<Complex> v(ctx_->slots());
        for (auto &z : v)
            z = Complex(rng.nextDouble() * 2 - 1, 0);
        const double scale = ctx_->params().scale();
        return encryptor_->encrypt(
            enc_->encode(v, scale, ctx_->params().l), scale);
    }

    /** The pipeline under test: exercises tensor + relinearize
     *  (keyswitch inner product + modDown), rescale on both the NTT
     *  and coefficient paths, and a rotation (automorphism-fused
     *  inner product). Deterministic given the inputs. */
    Ciphertext
    runPipeline(const Ciphertext &a, const Ciphertext &b) const
    {
        Ciphertext prod = eval_->multiply(a, b, relin_);
        eval_->rescale(prod);
        Ciphertext rot = eval_->rotate(prod, 1, galois_);
        Ciphertext sum = eval_->add(rot, prod);
        Ciphertext sq = eval_->square(sum, relin_);
        eval_->rescale(sq);
        return sq;
    }

    TileGuard tile_guard_;
    std::unique_ptr<CkksContext> ctx_;
    std::unique_ptr<CkksEncoder> enc_;
    std::unique_ptr<KeyGenerator> keygen_;
    PublicKey pk_;
    std::unique_ptr<Encryptor> encryptor_;
    std::unique_ptr<Evaluator> eval_;
    SwitchKey relin_;
    GaloisKeys galois_;
};

TEST_F(FusionTest, PipelineByteIdenticalAcrossFusionAndBackends)
{
    BackendGuard backend_guard;
    FusionGuard fusion_guard;
    const Ciphertext a = encryptRandom(101);
    const Ciphertext b = encryptRandom(202);

    setFusionEnabled(false);
    ASSERT_TRUE(setSimdBackend(SimdBackend::Scalar));
    const Ciphertext composed = runPipeline(a, b);

    for (SimdBackend backend : availableBackends()) {
        ASSERT_TRUE(setSimdBackend(backend));
        setFusionEnabled(true);
        const Ciphertext fused = runPipeline(a, b);
        EXPECT_TRUE(sameCiphertext(fused, composed))
            << "fused != composed on " << simdBackendName(backend);

        setFusionEnabled(false);
        const Ciphertext composed_b = runPipeline(a, b);
        EXPECT_TRUE(sameCiphertext(composed_b, composed))
            << "composed drifted on " << simdBackendName(backend);
    }
}

TEST_F(FusionTest, HoistedRotationFusedMatchesComposed)
{
    // The 3-arg innerProduct (automorphism fused into the tower-tiled
    // MAC sweep) against the explicit automorphismDigits + composed
    // inner product, via the public hoisted-rotation API.
    FusionGuard fusion_guard;
    const Ciphertext ct = encryptRandom(303);
    const std::size_t galois = eval_->galoisFromSteps(1);
    const KeySwitchDigits digits =
        eval_->decompose(ct.c1, ctx_->alpha());

    setFusionEnabled(false);
    const Ciphertext composed = eval_->rotateByGaloisHoisted(
        ct, galois, galois_.at(galois), digits);

    setFusionEnabled(true);
    const Ciphertext fused = eval_->rotateByGaloisHoisted(
        ct, galois, galois_.at(galois), digits);

    EXPECT_TRUE(sameCiphertext(fused, composed));
}

TEST_F(FusionTest, OpCountsInvariantUnderFusion)
{
    // Fusion reorganizes memory passes; it must not change the modular
    // arithmetic. Both the model (OpCounter) and the measurement
    // (kernel counters) must be identical between the two paths, and
    // model must equal measurement on each.
    FusionGuard fusion_guard;
    const Ciphertext a = encryptRandom(404);
    const Ciphertext b = encryptRandom(505);

    auto measure = [&](bool fuse) {
        setFusionEnabled(fuse);
        ctx_->ops().reset();
        kernelCounters().reset();
        runPipeline(a, b);
        return std::make_pair(OpCounter(ctx_->ops()),
                              kernelCounters().snapshot());
    };

    const auto [model_f, meas_f] = measure(true);
    const auto [model_c, meas_c] = measure(false);

    EXPECT_EQ(model_f.polyMults, model_c.polyMults);
    EXPECT_EQ(model_f.polyAdds, model_c.polyAdds);
    EXPECT_EQ(model_f.ntts, model_c.ntts);
    EXPECT_EQ(model_f.automorphisms, model_c.automorphisms);
    EXPECT_EQ(model_f.decomposes, model_c.decomposes);
    EXPECT_EQ(model_f.innerProducts, model_c.innerProducts);
    EXPECT_EQ(model_f.modDowns, model_c.modDowns);

    EXPECT_EQ(meas_f.mults, meas_c.mults);
    EXPECT_EQ(meas_f.adds, meas_c.adds);
    EXPECT_EQ(meas_f.ntts, meas_c.ntts);
    EXPECT_EQ(meas_f.automorphisms, meas_c.automorphisms);

    for (const auto &[model, meas] :
         {std::make_pair(model_f, meas_f),
          std::make_pair(model_c, meas_c)}) {
        EXPECT_EQ(model.polyMults, meas.mults);
        EXPECT_EQ(model.polyAdds, meas.adds);
        EXPECT_EQ(model.ntts, meas.ntts);
        EXPECT_EQ(model.automorphisms, meas.automorphisms);
    }
}

TEST_F(FusionTest, TileFloorFallsBackToComposed)
{
    // Above the floor the 3-arg innerProduct must route to the
    // composed per-digit path even with fusion on — and produce the
    // same bytes, so the adaptive crossover is invisible to callers.
    FusionGuard fusion_guard;
    const Ciphertext ct = encryptRandom(808);
    const std::size_t galois = eval_->galoisFromSteps(1);
    const KeySwitchDigits digits =
        eval_->decompose(ct.c1, ctx_->alpha());

    setFusionEnabled(true);
    setFusionTileMinBytes(0); // tiled
    const Ciphertext tiled = eval_->rotateByGaloisHoisted(
        ct, galois, galois_.at(galois), digits);

    setFusionTileMinBytes(~u64{0} - 1); // unreachably high: composed
    const Ciphertext untiled = eval_->rotateByGaloisHoisted(
        ct, galois, galois_.at(galois), digits);

    EXPECT_TRUE(sameCiphertext(tiled, untiled));
}

TEST(FusionTile, FloorSetAndRestore)
{
    const u64 saved = fusionTileMinBytes();
    setFusionTileMinBytes(12345);
    EXPECT_EQ(fusionTileMinBytes(), 12345u);
    setFusionTileMinBytes(saved);
    EXPECT_EQ(fusionTileMinBytes(), saved);
}

TEST_F(FusionTest, MemTrafficStrictlySmallerFused)
{
    // The point of the whole exercise: the fused pipelines must move
    // fewer bytes in fewer passes on the same workload.
    FusionGuard fusion_guard;
    const Ciphertext a = encryptRandom(606);
    const Ciphertext b = encryptRandom(707);

    auto measure = [&](bool fuse) {
        setFusionEnabled(fuse);
        memTraffic().reset();
        runPipeline(a, b);
        return memTraffic().snapshot();
    };

    const MemTraffic fused = measure(true);
    const MemTraffic composed = measure(false);

    EXPECT_GT(fused.passes, 0u);
    EXPECT_LT(fused.passes, composed.passes);
    EXPECT_LT(fused.bytes, composed.bytes);
}

} // namespace
} // namespace cl

/** Tests for boosted keyswitching across digit variants (Sec 3). */

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "ckks/encryptor.h"
#include "ckks/evaluator.h"

namespace cl {
namespace {

/**
 * Parameter: digit size alphaKs. alphaKs = L is 1-digit boosted;
 * alphaKs = 1 degenerates to standard keyswitching; intermediate
 * values are the t-digit variants of Sec 3.1.
 */
class KeySwitchTest : public ::testing::TestWithParam<unsigned>
{
  protected:
    void
    SetUp() override
    {
        CkksParams p = CkksParams::testSmall();
        p.l = 6;
        p.alpha = 6; // enough special moduli for every digit size
        p.firstModBits = 55;
        p.scaleBits = 40;
        p.specialBits = 55;
        ctx_ = std::make_unique<CkksContext>(p);
        enc_ = std::make_unique<CkksEncoder>(*ctx_);
        keygen_ = std::make_unique<KeyGenerator>(*ctx_);
        pk_ = keygen_->genPublicKey();
        encryptor_ = std::make_unique<Encryptor>(*ctx_, pk_);
        decryptor_ =
            std::make_unique<Decryptor>(*ctx_, keygen_->secretKey());
        eval_ = std::make_unique<Evaluator>(*ctx_);
    }

    std::vector<Complex>
    randomReals(std::uint64_t seed)
    {
        FastRng rng(seed);
        std::vector<Complex> v(ctx_->slots());
        for (auto &z : v)
            z = Complex(rng.nextDouble() * 2 - 1, 0);
        return v;
    }

    double
    maxError(const std::vector<Complex> &a, const std::vector<Complex> &b)
    {
        double m = 0;
        for (std::size_t i = 0; i < a.size(); ++i)
            m = std::max(m, std::abs(a[i] - b[i]));
        return m;
    }

    std::unique_ptr<CkksContext> ctx_;
    std::unique_ptr<CkksEncoder> enc_;
    std::unique_ptr<KeyGenerator> keygen_;
    PublicKey pk_;
    std::unique_ptr<Encryptor> encryptor_;
    std::unique_ptr<Decryptor> decryptor_;
    std::unique_ptr<Evaluator> eval_;
};

TEST_P(KeySwitchTest, MultiplicationCorrectUnderVariant)
{
    const unsigned alpha_ks = GetParam();
    auto a = randomReals(1), b = randomReals(2);
    const double s = ctx_->params().scale();
    auto rlk = keygen_->genRelinKey(alpha_ks);
    EXPECT_EQ(rlk.alphaKs, alpha_ks);
    EXPECT_EQ(rlk.digits(), ceilDiv(ctx_->l(), alpha_ks));

    auto ca = encryptor_->encryptValues(*enc_, a, s, ctx_->l());
    auto cb = encryptor_->encryptValues(*enc_, b, s, ctx_->l());
    auto prod = eval_->multiply(ca, cb, rlk);
    eval_->rescale(prod);
    auto back = decryptor_->decryptValues(*enc_, prod);
    std::vector<Complex> expect(a.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        expect[i] = a[i] * b[i];
    EXPECT_LT(maxError(expect, back), 1e-3);
}

TEST_P(KeySwitchTest, RotationCorrectUnderVariant)
{
    const unsigned alpha_ks = GetParam();
    auto a = randomReals(3);
    const double s = ctx_->params().scale();
    auto key = keygen_->genRotationKey(3, alpha_ks);
    auto ct = encryptor_->encryptValues(*enc_, a, s, ctx_->l());
    auto rot = eval_->rotateByGalois(ct, eval_->galoisFromSteps(3), key);
    auto back = decryptor_->decryptValues(*enc_, rot);
    const std::size_t n = ctx_->slots();
    std::vector<Complex> expect(n);
    for (std::size_t i = 0; i < n; ++i)
        expect[i] = a[(i + 3) % n];
    EXPECT_LT(maxError(expect, back), 1e-3);
}

TEST_P(KeySwitchTest, WorksAtReducedLevels)
{
    // The same hint serves every level: digits shrink with the basis.
    const unsigned alpha_ks = GetParam();
    auto a = randomReals(4), b = randomReals(5);
    const double s = ctx_->params().scale();
    auto rlk = keygen_->genRelinKey(alpha_ks);
    auto ca = encryptor_->encryptValues(*enc_, a, s, ctx_->l());
    auto cb = encryptor_->encryptValues(*enc_, b, s, ctx_->l());
    eval_->levelDrop(ca, 3);
    eval_->levelDrop(cb, 3);
    auto prod = eval_->multiply(ca, cb, rlk);
    eval_->rescale(prod);
    auto back = decryptor_->decryptValues(*enc_, prod);
    std::vector<Complex> expect(a.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        expect[i] = a[i] * b[i];
    EXPECT_LT(maxError(expect, back), 1e-3);
}

TEST_P(KeySwitchTest, HintFootprintMatchesPaperFormula)
{
    // Sec 3.1: a t-digit hint takes t+1 ciphertexts. In words:
    // dnum pairs over (L + alpha) moduli ≈ (t+1) * (2 L N) when
    // alpha = L/t.
    const unsigned alpha_ks = GetParam();
    auto rlk = keygen_->genRelinKey(alpha_ks);
    const unsigned l = ctx_->l();
    const unsigned t = rlk.digits();
    const std::size_t words = rlk.storedWords(false);
    const std::size_t expect =
        2ull * t * (l + alpha_ks) * ctx_->n();
    EXPECT_EQ(words, expect);
    // KSHGen halves stored hint data.
    EXPECT_EQ(rlk.storedWords(true), expect / 2);
}

TEST_P(KeySwitchTest, SeededHalvesRegenerateExactly)
{
    // The pseudo-random a_j can be re-expanded from (seed, domain) —
    // the KSHGen property (Sec 5.2).
    const unsigned alpha_ks = GetParam();
    auto rlk = keygen_->genRelinKey(alpha_ks);
    for (unsigned j = 0; j < rlk.digits(); ++j) {
        const RnsPoly &a = rlk.a[j];
        for (std::size_t t = 0; t < a.towers(); ++t) {
            const u64 q = a.modulus(t);
            RejectionSampler sampler(
                rlk.seed, (rlk.domain << 8) + j,
                q); // must match KeyGenerator's domain layout
            std::vector<u64> regen(ctx_->n());
            // Domain includes the chain index; recompute it.
            RejectionSampler sampler2(
                rlk.seed,
                ((rlk.domain << 8) + j) * 0x10000 + a.modIdx()[t], q);
            sampler2.fill(regen.data(), ctx_->n());
            EXPECT_TRUE(std::ranges::equal(regen, a.residue(t)))
                << "digit " << j << " tower " << t;
            break; // one tower per digit suffices
        }
    }
}

INSTANTIATE_TEST_SUITE_P(DigitSizes, KeySwitchTest,
                         ::testing::Values(1u, 2u, 3u, 6u));

} // namespace
} // namespace cl

/**
 * @file
 * Hoisted keyswitching and lazy-accumulation BSGS tests.
 *
 * Contracts pinned here:
 *  - rotateByGaloisHoisted over shared digits is bit-identical to
 *    rotateByGalois (which lifts the digits freshly) for every digit
 *    variant, SIMD backend, and worker count;
 *  - the Naive and HoistedEager linear-transform modes produce
 *    byte-identical ciphertexts, and the hoisted mode saves exactly
 *    (baby rotations - 1) digit decomposes — the predicted mod-up
 *    savings, checked against a measured per-decompose cost;
 *  - the HoistedLazy mode decrypts to the same transform result and is
 *    itself deterministic across backends and worker counts;
 *  - whole-ring rotations are identity at zero cost.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "ckks/bootstrap.h"
#include "ckks/encryptor.h"
#include "rns/simd/kernels.h"
#include "util/threadpool.h"

namespace cl {
namespace {

std::vector<SimdBackend>
availableBackends()
{
    std::vector<SimdBackend> v{SimdBackend::Scalar};
    for (SimdBackend b : {SimdBackend::Avx2, SimdBackend::Avx512}) {
        if (kernelTableFor(b))
            v.push_back(b);
    }
    return v;
}

class BackendGuard
{
  public:
    BackendGuard() : saved_(activeSimdBackend()) {}
    ~BackendGuard() { setSimdBackend(saved_); }

  private:
    SimdBackend saved_;
};

bool
sameCiphertext(const Ciphertext &a, const Ciphertext &b)
{
    return a.c0.data() == b.c0.data() && a.c1.data() == b.c1.data() &&
           a.scale == b.scale;
}

/** Parameter: digit size alphaKs, covering the boosted variants. */
class HoistedRotationTest : public ::testing::TestWithParam<unsigned>
{
  protected:
    void
    SetUp() override
    {
        CkksParams p = CkksParams::testSmall();
        p.l = 6;
        p.alpha = 6;
        p.firstModBits = 55;
        p.scaleBits = 40;
        p.specialBits = 55;
        ctx_ = std::make_unique<CkksContext>(p);
        enc_ = std::make_unique<CkksEncoder>(*ctx_);
        keygen_ = std::make_unique<KeyGenerator>(*ctx_);
        pk_ = keygen_->genPublicKey();
        encryptor_ = std::make_unique<Encryptor>(*ctx_, pk_);
        decryptor_ =
            std::make_unique<Decryptor>(*ctx_, keygen_->secretKey());
        eval_ = std::make_unique<Evaluator>(*ctx_);
    }

    void
    TearDown() override
    {
        ThreadPool::setGlobalThreads(1);
    }

    Ciphertext
    encryptRandom(std::uint64_t seed)
    {
        FastRng rng(seed);
        std::vector<Complex> v(ctx_->slots());
        for (auto &z : v)
            z = Complex(rng.nextDouble() * 2 - 1, 0);
        return encryptor_->encryptValues(*enc_, v,
                                         ctx_->params().scale(),
                                         ctx_->l());
    }

    std::unique_ptr<CkksContext> ctx_;
    std::unique_ptr<CkksEncoder> enc_;
    std::unique_ptr<KeyGenerator> keygen_;
    PublicKey pk_;
    std::unique_ptr<Encryptor> encryptor_;
    std::unique_ptr<Decryptor> decryptor_;
    std::unique_ptr<Evaluator> eval_;
};

TEST_P(HoistedRotationTest, MatchesFreshRotationBitExact)
{
    const unsigned alpha_ks = GetParam();
    const Ciphertext ct = encryptRandom(7);
    const KeySwitchDigits digits = eval_->decompose(ct.c1, alpha_ks);

    for (int steps : {1, 3, 5}) {
        auto key = keygen_->genRotationKey(steps, alpha_ks);
        const std::size_t g = eval_->galoisFromSteps(steps);
        const Ciphertext fresh = eval_->rotateByGalois(ct, g, key);
        const Ciphertext hoisted =
            eval_->rotateByGaloisHoisted(ct, g, key, digits);
        EXPECT_TRUE(sameCiphertext(fresh, hoisted)) << "steps=" << steps;
    }
}

TEST_P(HoistedRotationTest, DecryptsToRotatedSlots)
{
    const unsigned alpha_ks = GetParam();
    FastRng rng(11);
    std::vector<Complex> v(ctx_->slots());
    for (auto &z : v)
        z = Complex(rng.nextDouble() * 2 - 1, 0);
    const double s = ctx_->params().scale();
    const Ciphertext ct =
        encryptor_->encryptValues(*enc_, v, s, ctx_->l());
    const KeySwitchDigits digits = eval_->decompose(ct.c1, alpha_ks);

    const int steps = 3;
    auto key = keygen_->genRotationKey(steps, alpha_ks);
    const Ciphertext rot = eval_->rotateByGaloisHoisted(
        ct, eval_->galoisFromSteps(steps), key, digits);
    const auto back = decryptor_->decryptValues(*enc_, rot);
    const std::size_t n = ctx_->slots();
    double err = 0;
    for (std::size_t i = 0; i < n; ++i)
        err = std::max(err, std::abs(back[i] - v[(i + steps) % n]));
    EXPECT_LT(err, 1e-3);
}

TEST_P(HoistedRotationTest, SavesOneDecomposePerExtraRotation)
{
    const unsigned alpha_ks = GetParam();
    const Ciphertext ct = encryptRandom(13);
    const std::vector<int> rotations{1, 2, 3, 5};
    std::vector<SwitchKey> keys;
    for (int steps : rotations)
        keys.push_back(keygen_->genRotationKey(steps, alpha_ks));

    OpCounter &ops = ctx_->ops();

    // Per-decompose cost at this level, measured once.
    ops.reset();
    const KeySwitchDigits digits = eval_->decompose(ct.c1, alpha_ks);
    const OpCounter per_decompose = ops;
    ASSERT_EQ(per_decompose.decomposes, 1u);
    ASSERT_GT(per_decompose.ntts, 0u);

    // Naive: every rotation lifts the digits itself.
    ops.reset();
    for (std::size_t i = 0; i < rotations.size(); ++i) {
        eval_->rotateByGalois(ct, eval_->galoisFromSteps(rotations[i]),
                              keys[i]);
    }
    const OpCounter naive = ops;

    // Hoisted: one shared lift.
    ops.reset();
    const KeySwitchDigits shared = eval_->decompose(ct.c1, alpha_ks);
    for (std::size_t i = 0; i < rotations.size(); ++i) {
        eval_->rotateByGaloisHoisted(
            ct, eval_->galoisFromSteps(rotations[i]), keys[i], shared);
    }
    const OpCounter hoisted = ops;

    // The savings are exactly (rotations - 1) decompose stages — the
    // mod-up NTTs and base-conversion multiplies — and nothing else.
    const auto extra = static_cast<std::uint64_t>(rotations.size() - 1);
    EXPECT_EQ(naive.decomposes - hoisted.decomposes, extra);
    EXPECT_EQ(naive.ntts - hoisted.ntts, extra * per_decompose.ntts);
    EXPECT_EQ(naive.polyMults - hoisted.polyMults,
              extra * per_decompose.polyMults);
    EXPECT_EQ(naive.polyAdds - hoisted.polyAdds,
              extra * per_decompose.polyAdds);
    EXPECT_EQ(naive.innerProducts, hoisted.innerProducts);
    EXPECT_EQ(naive.modDowns, hoisted.modDowns);
    EXPECT_EQ(naive.automorphisms, hoisted.automorphisms);
}

TEST_P(HoistedRotationTest, BitIdenticalAcrossBackendsAndThreads)
{
    const unsigned alpha_ks = GetParam();
    const Ciphertext ct = encryptRandom(17);
    auto key = keygen_->genRotationKey(2, alpha_ks);
    const std::size_t g = eval_->galoisFromSteps(2);

    BackendGuard guard;
    ASSERT_TRUE(setSimdBackend(SimdBackend::Scalar));
    ThreadPool::setGlobalThreads(1);
    const KeySwitchDigits d0 = eval_->decompose(ct.c1, alpha_ks);
    const Ciphertext baseline =
        eval_->rotateByGaloisHoisted(ct, g, key, d0);

    for (SimdBackend b : availableBackends()) {
        for (unsigned threads : {1u, 4u}) {
            ASSERT_TRUE(setSimdBackend(b));
            ThreadPool::setGlobalThreads(threads);
            const KeySwitchDigits d = eval_->decompose(ct.c1, alpha_ks);
            for (std::size_t j = 0; j < d.u.size(); ++j) {
                EXPECT_TRUE(d.u[j].data() == d0.u[j].data())
                    << "digit " << j << " diverged on "
                    << simdBackendName(b) << "/" << threads;
            }
            const Ciphertext rot =
                eval_->rotateByGaloisHoisted(ct, g, key, d);
            EXPECT_TRUE(sameCiphertext(baseline, rot))
                << simdBackendName(b) << "/" << threads;
        }
    }
}

TEST_P(HoistedRotationTest, WholeRingRotationIsIdentityAtZeroCost)
{
    const unsigned alpha_ks = GetParam();
    const Ciphertext ct = encryptRandom(19);
    auto key = keygen_->genRotationKey(1, alpha_ks);
    const KeySwitchDigits digits = eval_->decompose(ct.c1, alpha_ks);
    const auto slots = static_cast<int>(ctx_->slots());

    OpCounter &ops = ctx_->ops();
    ops.reset();
    GaloisKeys gk;
    gk.keys.emplace(eval_->galoisFromSteps(1), key);
    for (int steps : {0, slots, -slots, 2 * slots}) {
        const Ciphertext r = eval_->rotate(ct, steps, gk);
        EXPECT_TRUE(sameCiphertext(ct, r)) << "steps=" << steps;
    }
    const Ciphertext r1 = eval_->rotateByGalois(ct, 1, key);
    const Ciphertext r2 = eval_->rotateByGaloisHoisted(ct, 1, key, digits);
    EXPECT_TRUE(sameCiphertext(ct, r1));
    EXPECT_TRUE(sameCiphertext(ct, r2));
    EXPECT_EQ(ops.decomposes, 0u);
    EXPECT_EQ(ops.innerProducts, 0u);
    EXPECT_EQ(ops.modDowns, 0u);
    EXPECT_EQ(ops.ntts, 0u);
    EXPECT_EQ(ops.automorphisms, 0u);
}

INSTANTIATE_TEST_SUITE_P(DigitSizes, HoistedRotationTest,
                         ::testing::Values(1u, 2u, 3u, 6u));

/** BSGS linear-transform equivalence on the real bootstrap matrices. */
class HoistedTransformTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        CkksParams p;
        p.logN = 9;
        p.l = 20;
        p.alpha = 20;
        p.firstModBits = 50;
        p.scaleBits = 55;
        p.specialBits = 55;
        p.secretHamming = 16;
        ctx_ = std::make_unique<CkksContext>(p);
        enc_ = std::make_unique<CkksEncoder>(*ctx_);
        keygen_ = std::make_unique<KeyGenerator>(*ctx_);
        pk_ = keygen_->genPublicKey();
        encryptor_ = std::make_unique<Encryptor>(*ctx_, pk_);
        decryptor_ =
            std::make_unique<Decryptor>(*ctx_, keygen_->secretKey());
        // Pin the square split: the op-count arithmetic below assumes
        // n1 = 16, independent of the auto-widened default.
        BootstrapParams bp;
        bp.ltBabySteps = 16;
        boot_ = std::make_unique<Bootstrapper>(*ctx_, *enc_, *keygen_, bp);
    }

    void
    TearDown() override
    {
        ThreadPool::setGlobalThreads(1);
    }

    Ciphertext
    encryptRandom(std::uint64_t seed)
    {
        FastRng rng(seed);
        std::vector<Complex> v(ctx_->slots());
        for (auto &z : v)
            z = Complex(rng.nextDouble() - 0.5, rng.nextDouble() - 0.5);
        return encryptor_->encryptValues(*enc_, v,
                                         ctx_->params().scale(),
                                         ctx_->l());
    }

    std::unique_ptr<CkksContext> ctx_;
    std::unique_ptr<CkksEncoder> enc_;
    std::unique_ptr<KeyGenerator> keygen_;
    PublicKey pk_;
    std::unique_ptr<Encryptor> encryptor_;
    std::unique_ptr<Decryptor> decryptor_;
    std::unique_ptr<Bootstrapper> boot_;
};

TEST_F(HoistedTransformTest, EagerMatchesNaiveBitExact)
{
    const Ciphertext ct = encryptRandom(23);
    const Ciphertext naive =
        boot_->applyCoeffToSlot(ct, LinearTransformMode::Naive);
    const Ciphertext eager =
        boot_->applyCoeffToSlot(ct, LinearTransformMode::HoistedEager);
    EXPECT_TRUE(sameCiphertext(naive, eager));
}

TEST_F(HoistedTransformTest, HoistingSavesDecomposesOnRealMatrix)
{
    const Ciphertext ct = encryptRandom(29);
    const unsigned n1 = 16; // babySteps at these parameters
    OpCounter &ops = ctx_->ops();

    // Warm the diagonal cache so both measured passes see cache hits.
    boot_->applyCoeffToSlot(ct, LinearTransformMode::Naive);

    Evaluator eval(*ctx_);
    ops.reset();
    eval.decompose(ct.c1, ctx_->alpha()); // measure the stage cost
    const OpCounter per_decompose = ops;

    ops.reset();
    const Ciphertext naive =
        boot_->applyCoeffToSlot(ct, LinearTransformMode::Naive);
    const OpCounter naive_ops = ops;

    ops.reset();
    const Ciphertext eager =
        boot_->applyCoeffToSlot(ct, LinearTransformMode::HoistedEager);
    const OpCounter eager_ops = ops;

    EXPECT_TRUE(sameCiphertext(naive, eager));
    // The FFT-derived matrices are dense: all n1 - 1 rotated babies
    // run, and hoisting collapses their digit lifts into one.
    const std::uint64_t extra = (n1 - 1) - 1;
    EXPECT_EQ(naive_ops.decomposes - eager_ops.decomposes, extra);
    EXPECT_EQ(naive_ops.ntts - eager_ops.ntts,
              extra * per_decompose.ntts);
    EXPECT_EQ(naive_ops.polyMults - eager_ops.polyMults,
              extra * per_decompose.polyMults);
    EXPECT_EQ(naive_ops.modDowns, eager_ops.modDowns);
}

TEST_F(HoistedTransformTest, LazyDecryptsToSameTransform)
{
    const Ciphertext ct = encryptRandom(31);
    const Ciphertext naive =
        boot_->applyCoeffToSlot(ct, LinearTransformMode::Naive);
    const Ciphertext lazy =
        boot_->applyCoeffToSlot(ct, LinearTransformMode::HoistedLazy);
    ASSERT_EQ(naive.level(), lazy.level());
    ASSERT_DOUBLE_EQ(naive.scale, lazy.scale);

    const auto a = decryptor_->decryptValues(*enc_, naive);
    const auto b = decryptor_->decryptValues(*enc_, lazy);
    double err = 0;
    for (std::size_t i = 0; i < a.size(); ++i)
        err = std::max(err, std::abs(a[i] - b[i]));
    // Same transform; only mod-down rounding noise differs (the lazy
    // path rounds once per giant step instead of once per rotation).
    EXPECT_LT(err, 1e-3);
}

TEST_F(HoistedTransformTest, AutoWideSplitMatchesSquareTransform)
{
    // The default (auto) split widens the baby dimension to
    // 4*sqrt(n): hoisted babies are cheap, so trading giant steps for
    // baby steps cuts full keyswitches and deferred mod-downs. The
    // wide lazy transform must compute the same map as the square
    // naive one, with strictly fewer keyswitch stages.
    const Ciphertext ct = encryptRandom(41);
    Bootstrapper wide(*ctx_, *enc_, *keygen_); // ltBabySteps = auto
    OpCounter &ops = ctx_->ops();

    // Warm both diagonal caches.
    boot_->applyCoeffToSlot(ct, LinearTransformMode::HoistedLazy);
    wide.applyCoeffToSlot(ct, LinearTransformMode::HoistedLazy);

    ops.reset();
    const Ciphertext square =
        boot_->applyCoeffToSlot(ct, LinearTransformMode::HoistedLazy);
    const OpCounter square_ops = ops;

    ops.reset();
    const Ciphertext lazy =
        wide.applyCoeffToSlot(ct, LinearTransformMode::HoistedLazy);
    const OpCounter wide_ops = ops;

    ASSERT_EQ(square.level(), lazy.level());
    ASSERT_DOUBLE_EQ(square.scale, lazy.scale);
    const auto a = decryptor_->decryptValues(*enc_, square);
    const auto b = decryptor_->decryptValues(*enc_, lazy);
    double err = 0;
    for (std::size_t i = 0; i < a.size(); ++i)
        err = std::max(err, std::abs(a[i] - b[i]));
    EXPECT_LT(err, 1e-3);

    // n = 256: square 16x16 pays 15 giant keyswitches + 32 deferred
    // mod-downs; wide 64x4 pays 3 + 8.
    EXPECT_LT(wide_ops.modDowns, square_ops.modDowns);
    EXPECT_LT(wide_ops.decomposes, square_ops.decomposes);
}

TEST_F(HoistedTransformTest, LazyBitIdenticalAcrossBackendsAndThreads)
{
    const Ciphertext ct = encryptRandom(37);
    BackendGuard guard;
    ASSERT_TRUE(setSimdBackend(SimdBackend::Scalar));
    ThreadPool::setGlobalThreads(1);
    const Ciphertext baseline =
        boot_->applyCoeffToSlot(ct, LinearTransformMode::HoistedLazy);

    for (SimdBackend b : availableBackends()) {
        for (unsigned threads : {1u, 4u}) {
            if (b == SimdBackend::Scalar && threads == 1)
                continue; // the baseline itself
            ASSERT_TRUE(setSimdBackend(b));
            ThreadPool::setGlobalThreads(threads);
            const Ciphertext out = boot_->applyCoeffToSlot(
                ct, LinearTransformMode::HoistedLazy);
            EXPECT_TRUE(sameCiphertext(baseline, out))
                << simdBackendName(b) << "/" << threads;
        }
    }
}

} // namespace
} // namespace cl

/** Functional bootstrapping tests: the unbounded-computation core. */

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "ckks/bootstrap.h"

namespace cl {
namespace {

class BootstrapTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        CkksParams p;
        p.logN = 9; // small ring: the math is size-generic
        p.l = 20;
        p.alpha = 20;
        p.firstModBits = 50; // 2K*q0 == 2^55 == prime size: no scale drift
        p.scaleBits = 55;
        p.specialBits = 55;
        p.secretHamming = 16;
        ctx_ = std::make_unique<CkksContext>(p);
        enc_ = std::make_unique<CkksEncoder>(*ctx_);
        keygen_ = std::make_unique<KeyGenerator>(*ctx_);
        pk_ = keygen_->genPublicKey();
        encryptor_ = std::make_unique<Encryptor>(*ctx_, pk_);
        decryptor_ =
            std::make_unique<Decryptor>(*ctx_, keygen_->secretKey());
        eval_ = std::make_unique<Evaluator>(*ctx_);
        boot_ = std::make_unique<Bootstrapper>(*ctx_, *enc_, *keygen_);
    }

    std::vector<Complex>
    randomReals(std::uint64_t seed, double mag)
    {
        FastRng rng(seed);
        std::vector<Complex> v(ctx_->slots());
        for (auto &z : v)
            z = Complex((rng.nextDouble() * 2 - 1) * mag, 0);
        return v;
    }

    double
    maxError(const std::vector<Complex> &a, const std::vector<Complex> &b)
    {
        double m = 0;
        for (std::size_t i = 0; i < a.size(); ++i)
            m = std::max(m, std::abs(a[i] - b[i]));
        return m;
    }

    static constexpr double appScale = 1099511627776.0; // 2^40

    std::unique_ptr<CkksContext> ctx_;
    std::unique_ptr<CkksEncoder> enc_;
    std::unique_ptr<KeyGenerator> keygen_;
    PublicKey pk_;
    std::unique_ptr<Encryptor> encryptor_;
    std::unique_ptr<Decryptor> decryptor_;
    std::unique_ptr<Evaluator> eval_;
    std::unique_ptr<Bootstrapper> boot_;
};

TEST_F(BootstrapTest, RefreshesExhaustedCiphertext)
{
    auto vals = randomReals(1, 0.5);
    // Encrypt at the *bottom* of the chain: multiplicative budget
    // exhausted, exactly the Fig 2 situation.
    auto ct = encryptor_->encrypt(enc_->encode(vals, appScale, 1),
                                  appScale);
    ASSERT_EQ(ct.level(), 1u);

    Ciphertext fresh = boot_->bootstrap(ct);
    EXPECT_GT(fresh.level(), 3u) << "bootstrap must restore budget";

    auto out = decryptor_->decryptValues(*enc_, fresh);
    EXPECT_LT(maxError(vals, out), 0.02);
}

TEST_F(BootstrapTest, RefreshedCiphertextSupportsMultiplication)
{
    // The point of bootstrapping: computation continues after the
    // refresh (unbounded multiplicative depth).
    auto vals = randomReals(2, 0.5);
    auto ct = encryptor_->encrypt(enc_->encode(vals, appScale, 1),
                                  appScale);
    Ciphertext fresh = boot_->bootstrap(ct);
    ASSERT_GT(fresh.level(), 1u);

    auto rlk = keygen_->genRelinKey();
    Ciphertext sq = eval_->square(fresh, rlk);
    eval_->rescale(sq);
    auto out = decryptor_->decryptValues(*enc_, sq);
    std::vector<Complex> expect(vals.size());
    for (std::size_t i = 0; i < vals.size(); ++i)
        expect[i] = vals[i] * vals[i];
    EXPECT_LT(maxError(expect, out), 0.05);
}

TEST_F(BootstrapTest, DepthUsedIsReasonable)
{
    auto vals = randomReals(3, 0.3);
    auto ct = encryptor_->encrypt(enc_->encode(vals, appScale, 1),
                                  appScale);
    boot_->bootstrap(ct);
    // The pipeline burns most of the chain but must leave usable
    // levels on a 20-level chain.
    EXPECT_GE(boot_->depthUsed(), 8u);
    EXPECT_LE(boot_->depthUsed(), 18u);
}

TEST(BootstrapUnits, ChebyshevFitApproximatesSine)
{
    // Numerical check of the EvalMod polynomial machinery: evaluate
    // the fitted series directly (Clenshaw) against sin.
    const unsigned k = 16, degree = 159;
    const double a = 2.0 * M_PI * k;
    // Reuse the internals indirectly: fit here with the same method.
    const unsigned m = 4096;
    std::vector<double> c(degree + 1, 0.0);
    for (unsigned i = 0; i < m; ++i) {
        const double theta = M_PI * (i + 0.5) / m;
        const double fv = std::sin(a * std::cos(theta)) / (2 * M_PI);
        for (unsigned j = 0; j <= degree; ++j)
            c[j] += fv * std::cos(j * theta);
    }
    for (unsigned j = 0; j <= degree; ++j)
        c[j] *= (j == 0 ? 1.0 : 2.0) / m;

    for (double u = -0.9; u <= 0.9; u += 0.05) {
        // Clenshaw evaluation.
        double b1 = 0, b2 = 0;
        for (unsigned j = degree; j >= 1; --j) {
            const double b0 = c[j] + 2 * u * b1 - b2;
            b2 = b1;
            b1 = b0;
        }
        const double val = c[0] + u * b1 - b2;
        EXPECT_NEAR(val, std::sin(a * u) / (2 * M_PI), 1e-9)
            << "u=" << u;
    }
}

} // namespace
} // namespace cl

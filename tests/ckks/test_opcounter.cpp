/**
 * Pins the Evaluator's OpCounter model against the instrumented
 * kernel-level counts (util/instrument.h): the accounting the compiler
 * and cost model rely on must match, operation for operation, what the
 * kernels actually execute. Also covers the operand scale guards and
 * the wide-scale encoder path, all originally flushed out by the
 * differential fuzzer (DESIGN.md §7).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "ckks/encryptor.h"
#include "ckks/evaluator.h"
#include "util/instrument.h"

namespace cl {
namespace {

class OpCounterTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        ctx_ = std::make_unique<CkksContext>(CkksParams::testSmall());
        enc_ = std::make_unique<CkksEncoder>(*ctx_);
        keygen_ = std::make_unique<KeyGenerator>(*ctx_);
        pk_ = keygen_->genPublicKey();
        encryptor_ = std::make_unique<Encryptor>(*ctx_, pk_);
        decryptor_ =
            std::make_unique<Decryptor>(*ctx_, keygen_->secretKey());
        eval_ = std::make_unique<Evaluator>(*ctx_);
        relin_ = keygen_->genRelinKey();
        galois_ = keygen_->genRotationKeys({1}, /*conjugate=*/false);
    }

    Ciphertext
    encryptRandom(std::uint64_t seed)
    {
        FastRng rng(seed);
        std::vector<Complex> v(ctx_->slots());
        for (auto &z : v)
            z = Complex(rng.nextDouble() * 2 - 1, 0);
        const double scale = ctx_->params().scale();
        return encryptor_->encrypt(
            enc_->encode(v, scale, ctx_->params().l), scale);
    }

    std::unique_ptr<CkksContext> ctx_;
    std::unique_ptr<CkksEncoder> enc_;
    std::unique_ptr<KeyGenerator> keygen_;
    PublicKey pk_;
    std::unique_ptr<Encryptor> encryptor_;
    std::unique_ptr<Decryptor> decryptor_;
    std::unique_ptr<Evaluator> eval_;
    SwitchKey relin_;
    GaloisKeys galois_;
};

/**
 * The headline pin: a mult -> rescale -> rotate chain, the shape every
 * real CKKS circuit is built from, must charge the OpCounter exactly
 * what the instrumented kernels record. Any drift here means the cost
 * model silently diverges from the hardware-relevant op counts.
 */
TEST_F(OpCounterTest, MultRescaleRotateMatchesInstrumentedKernels)
{
    Ciphertext a = encryptRandom(11);
    Ciphertext b = encryptRandom(22);

    ctx_->ops().reset();
    kernelCounters().reset();

    Ciphertext prod = eval_->multiply(a, b, relin_);
    eval_->rescale(prod);
    Ciphertext rot = eval_->rotate(prod, 1, galois_);

    const OpCounter &model = ctx_->ops();
    const KernelCounts meas = kernelCounters().snapshot();
    EXPECT_EQ(model.polyMults, meas.mults);
    EXPECT_EQ(model.polyAdds, meas.adds);
    EXPECT_EQ(model.ntts, meas.ntts);
    EXPECT_EQ(model.automorphisms, meas.automorphisms);
    // The chain really did something: all four classes were exercised.
    EXPECT_GT(meas.mults, 0u);
    EXPECT_GT(meas.adds, 0u);
    EXPECT_GT(meas.ntts, 0u);
    EXPECT_GT(meas.automorphisms, 0u);
}

/** Same pin for the plain-operand path (encode/align + add). */
TEST_F(OpCounterTest, PlainOpsMatchInstrumentedKernels)
{
    Ciphertext a = encryptRandom(33);
    const double scale = a.scale;
    std::vector<Complex> ones(ctx_->slots(), Complex(0.5, 0));
    RnsPoly plain = enc_->encode(ones, scale, ctx_->params().l);

    ctx_->ops().reset();
    kernelCounters().reset();

    Ciphertext s = eval_->addPlain(a, plain, scale);
    Ciphertext m = eval_->mulPlain(a, plain, scale);
    Ciphertext n = eval_->negate(s);

    const OpCounter &model = ctx_->ops();
    const KernelCounts meas = kernelCounters().snapshot();
    EXPECT_EQ(model.polyMults, meas.mults);
    EXPECT_EQ(model.polyAdds, meas.adds);
    EXPECT_EQ(model.ntts, meas.ntts);
    EXPECT_EQ(model.automorphisms, meas.automorphisms);
}

/** Ciphertext-ciphertext add with incompatible scales must assert,
 *  not silently produce a wrongly-scaled sum. */
TEST_F(OpCounterTest, AddScaleMismatchDies)
{
    Ciphertext a = encryptRandom(44);
    Ciphertext sq = eval_->square(a, relin_); // scale is now delta^2
    EXPECT_DEATH(eval_->add(sq, a), "scale mismatch");
}

/** The scale-checked plain-add overload must reject a plaintext
 *  encoded at the wrong scale and accept a matching one. */
TEST_F(OpCounterTest, AddPlainScaleGuard)
{
    Ciphertext a = encryptRandom(55);
    std::vector<Complex> v(ctx_->slots(), Complex(0.25, 0));
    RnsPoly good = enc_->encode(v, a.scale, ctx_->params().l);
    Ciphertext ok = eval_->addPlain(a, good, a.scale); // within tol
    EXPECT_DOUBLE_EQ(ok.scale, a.scale);

    RnsPoly bad = enc_->encode(v, a.scale * 2, ctx_->params().l);
    EXPECT_DEATH(eval_->addPlain(a, bad, a.scale * 2),
                 "plaintext scale mismatch");
}

/**
 * Regression for the wide-scale encoder overflow the fuzzer found
 * (tests/fuzz/corpus/encoder-wide-scale-overflow.json): coefficients
 * at scale 2^80 exceed the old long-long cast's range and every
 * residue came out garbage. The mantissa-exact reduction must round-
 * trip through encode/decode with full double precision.
 */
TEST_F(OpCounterTest, EncoderWideScaleRoundTrip)
{
    FastRng rng(66);
    std::vector<Complex> v(ctx_->slots());
    for (auto &z : v)
        z = Complex(rng.nextDouble() * 2 - 1,
                    rng.nextDouble() * 2 - 1);
    const double wide = std::ldexp(1.0, 80); // 2^80 > 2^63
    RnsPoly p = enc_->encode(v, wide, ctx_->params().l);
    const auto got = enc_->decode(p, wide);
    double err = 0;
    for (std::size_t i = 0; i < v.size(); ++i)
        err = std::max(err, std::abs(got[i] - v[i]));
    EXPECT_LT(err, 1e-9);
}

/**
 * Regression for the level-drop capacity hazard the fuzzer found
 * (seed 208): dropping a ciphertext whose scale exceeds the target
 * basis wraps the message mod Q. The evaluator must refuse.
 */
TEST_F(OpCounterTest, LevelDropBelowScaleCapacityDies)
{
    Ciphertext a = encryptRandom(77);
    Ciphertext sq = eval_->square(a, relin_); // scale 2^80
    EXPECT_DEATH(eval_->levelDrop(sq, 1), "cannot hold scale");
}

} // namespace
} // namespace cl

/**
 * Determinism of the parallel execution layer: every tower-parallel
 * kernel must produce byte-identical ciphertexts at any worker count.
 * parallelFor only partitions which thread runs a tower, never what
 * the tower computes, so CL_THREADS=1 and CL_THREADS=8 must agree
 * exactly — this is the guarantee that lets servers scale worker
 * counts without changing results.
 */

#include <algorithm>
#include <memory>

#include <gtest/gtest.h>

#include "ckks/encryptor.h"
#include "ckks/evaluator.h"
#include "util/threadpool.h"

namespace cl {
namespace {

class ParallelDeterminismTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        ctx_ = std::make_unique<CkksContext>(CkksParams::testSmall());
        enc_ = std::make_unique<CkksEncoder>(*ctx_);
        keygen_ = std::make_unique<KeyGenerator>(*ctx_);
        pk_ = keygen_->genPublicKey();
        encryptor_ = std::make_unique<Encryptor>(*ctx_, pk_);
        eval_ = std::make_unique<Evaluator>(*ctx_);
        relin_ = keygen_->genRelinKey();
        galois_ = keygen_->genRotationKeys({1}, /*conjugate=*/false);
    }

    void
    TearDown() override
    {
        ThreadPool::setGlobalThreads(1); // leave no workers behind
    }

    /**
     * The chain under test: multiply + relinearize, rescale, rotate,
     * then modRaise (the bootstrap primitive) back to the top. This
     * exercises every parallelized kernel: NTTs, element-wise ops,
     * automorphism, rescale, base conversion, and keyswitching.
     */
    Ciphertext
    runChain(const Ciphertext &a, const Ciphertext &b)
    {
        Ciphertext prod = eval_->multiply(a, b, relin_);
        eval_->rescale(prod);
        Ciphertext rot = eval_->rotate(prod, 1, galois_);
        return eval_->modRaise(rot, ctx_->l());
    }

    std::unique_ptr<CkksContext> ctx_;
    std::unique_ptr<CkksEncoder> enc_;
    std::unique_ptr<KeyGenerator> keygen_;
    PublicKey pk_;
    std::unique_ptr<Encryptor> encryptor_;
    std::unique_ptr<Evaluator> eval_;
    SwitchKey relin_;
    GaloisKeys galois_;
};

TEST_F(ParallelDeterminismTest, ChainIsBitIdenticalAcrossWorkerCounts)
{
    FastRng rng(17);
    std::vector<Complex> va(ctx_->slots()), vb(ctx_->slots());
    for (std::size_t i = 0; i < ctx_->slots(); ++i) {
        va[i] = Complex(rng.nextDouble() * 2 - 1, 0);
        vb[i] = Complex(rng.nextDouble() * 2 - 1, 0);
    }
    const double s = ctx_->params().scale();
    const Ciphertext ca =
        encryptor_->encryptValues(*enc_, va, s, ctx_->l());
    const Ciphertext cb =
        encryptor_->encryptValues(*enc_, vb, s, ctx_->l());

    ThreadPool::setGlobalThreads(1);
    const Ciphertext serial = runChain(ca, cb);

    ThreadPool::setGlobalThreads(8);
    const Ciphertext parallel = runChain(ca, cb);

    ASSERT_EQ(serial.c0.towers(), parallel.c0.towers());
    EXPECT_TRUE(serial.c0.data() == parallel.c0.data())
        << "c0 diverged between 1 and 8 workers";
    EXPECT_TRUE(serial.c1.data() == parallel.c1.data())
        << "c1 diverged between 1 and 8 workers";
    EXPECT_EQ(serial.scale, parallel.scale);
}

TEST_F(ParallelDeterminismTest, RepeatedParallelRunsAgree)
{
    // Same worker count twice: guards against any hidden scheduling
    // dependence inside a single configuration.
    FastRng rng(23);
    std::vector<Complex> v(ctx_->slots());
    for (auto &z : v)
        z = Complex(rng.nextDouble() * 2 - 1, 0);
    const double s = ctx_->params().scale();
    const Ciphertext ct =
        encryptor_->encryptValues(*enc_, v, s, ctx_->l());

    ThreadPool::setGlobalThreads(8);
    const Ciphertext r1 = runChain(ct, ct);
    const Ciphertext r2 = runChain(ct, ct);
    EXPECT_TRUE(r1.c0.data() == r2.c0.data());
    EXPECT_TRUE(r1.c1.data() == r2.c1.data());
}

} // namespace
} // namespace cl

/** Tests for the CKKS canonical-embedding encoder. */

#include <gtest/gtest.h>

#include <cmath>

#include "ckks/encoder.h"
#include "util/prng.h"

namespace cl {
namespace {

class EncoderTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        ctx_ = std::make_unique<CkksContext>(CkksParams::testSmall());
        enc_ = std::make_unique<CkksEncoder>(*ctx_);
    }

    std::vector<Complex>
    randomValues(std::size_t count, std::uint64_t seed)
    {
        FastRng rng(seed);
        std::vector<Complex> v(count);
        for (auto &z : v)
            z = Complex(rng.nextDouble() * 2 - 1, rng.nextDouble() * 2 - 1);
        return v;
    }

    std::unique_ptr<CkksContext> ctx_;
    std::unique_ptr<CkksEncoder> enc_;
};

TEST_F(EncoderTest, EncodeDecodeRoundTrip)
{
    auto vals = randomValues(ctx_->slots(), 1);
    auto plain = enc_->encode(vals, ctx_->params().scale(), ctx_->l());
    auto back = enc_->decode(plain, ctx_->params().scale());
    ASSERT_EQ(back.size(), ctx_->slots());
    for (std::size_t i = 0; i < vals.size(); ++i)
        EXPECT_NEAR(std::abs(back[i] - vals[i]), 0.0, 1e-6);
}

TEST_F(EncoderTest, EncodingIsAdditive)
{
    auto a = randomValues(ctx_->slots(), 2);
    auto b = randomValues(ctx_->slots(), 3);
    const double scale = ctx_->params().scale();
    auto pa = enc_->encode(a, scale, ctx_->l());
    auto pb = enc_->encode(b, scale, ctx_->l());
    pa += pb;
    auto sum = enc_->decode(pa, scale);
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_NEAR(std::abs(sum[i] - (a[i] + b[i])), 0.0, 1e-5);
}

TEST_F(EncoderTest, PolynomialMultIsSlotwiseMult)
{
    // The defining property of the canonical embedding: ring multiply
    // == element-wise slot multiply.
    auto a = randomValues(ctx_->slots(), 4);
    auto b = randomValues(ctx_->slots(), 5);
    const double scale = ctx_->params().scale();
    auto pa = enc_->encode(a, scale, ctx_->l());
    auto pb = enc_->encode(b, scale, ctx_->l());
    pa.toNtt();
    pb.toNtt();
    pa *= pb;
    auto prod = enc_->decode(pa, scale * scale);
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_NEAR(std::abs(prod[i] - a[i] * b[i]), 0.0, 1e-4);
}

TEST_F(EncoderTest, AutomorphismRotatesSlots)
{
    // x -> x^5 should rotate the packed vector by one slot.
    auto a = randomValues(ctx_->slots(), 6);
    const double scale = ctx_->params().scale();
    auto p = enc_->encode(a, scale, ctx_->l());
    auto r = p.automorphism(5);
    auto rot = enc_->decode(r, scale);
    const std::size_t n = a.size();
    // Determine rotation direction empirically but require it to be a
    // rotation by exactly one position one way or the other.
    double err_left = 0, err_right = 0;
    for (std::size_t i = 0; i < n; ++i) {
        err_left += std::abs(rot[i] - a[(i + 1) % n]);
        err_right += std::abs(rot[i] - a[(i + n - 1) % n]);
    }
    EXPECT_LT(std::min(err_left, err_right) / n, 1e-5);
    // Document the convention: galois element 5 = rotate left by 1.
    EXPECT_LT(err_left, err_right);
}

TEST_F(EncoderTest, ConjugationAutomorphism)
{
    auto a = randomValues(ctx_->slots(), 7);
    const double scale = ctx_->params().scale();
    auto p = enc_->encode(a, scale, ctx_->l());
    auto r = p.automorphism(2 * ctx_->n() - 1);
    auto conj = enc_->decode(r, scale);
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_NEAR(std::abs(conj[i] - std::conj(a[i])), 0.0, 1e-5);
}

TEST_F(EncoderTest, PartialPackingReplicates)
{
    // Encoding fewer values packs them into a smaller orbit; decode
    // returns the full-slot view with replication.
    std::vector<Complex> vals = {Complex(1.5, 0), Complex(-2.25, 0),
                                 Complex(0.5, 0), Complex(3.0, 0)};
    const double scale = ctx_->params().scale();
    auto p = enc_->encode(vals, scale, 1);
    auto full = enc_->decode(p, scale);
    const std::size_t reps = ctx_->slots() / 4;
    for (std::size_t r = 0; r < reps; ++r) {
        for (std::size_t i = 0; i < 4; ++i) {
            EXPECT_NEAR(std::abs(full[r * 4 + i] - vals[i]), 0.0, 1e-5)
                << "replica " << r << " slot " << i;
        }
    }
}

TEST_F(EncoderTest, CoeffEncodeDecodeRoundTrip)
{
    std::vector<double> coeffs = {1.0, -2.5, 3.25, 0.0, 7.75};
    auto p = enc_->encodeCoeffs(coeffs, 1 << 20, 2);
    auto back = enc_->decodeCoeffs(p, 1 << 20);
    for (std::size_t i = 0; i < coeffs.size(); ++i)
        EXPECT_NEAR(back[i], coeffs[i], 1e-5);
}

TEST_F(EncoderTest, FftSpecialInverseIsInverse)
{
    auto vals = randomValues(ctx_->slots(), 8);
    auto copy = vals;
    enc_->fftSpecialInv(copy);
    enc_->fftSpecial(copy);
    for (std::size_t i = 0; i < vals.size(); ++i)
        EXPECT_NEAR(std::abs(copy[i] - vals[i]), 0.0, 1e-9);
}

} // namespace
} // namespace cl

/** End-to-end CKKS scheme tests: encrypt/evaluate/decrypt. */

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "ckks/encryptor.h"
#include "ckks/evaluator.h"

namespace cl {
namespace {

class SchemeTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        ctx_ = std::make_unique<CkksContext>(CkksParams::testSmall());
        enc_ = std::make_unique<CkksEncoder>(*ctx_);
        keygen_ = std::make_unique<KeyGenerator>(*ctx_);
        pk_ = keygen_->genPublicKey();
        encryptor_ = std::make_unique<Encryptor>(*ctx_, pk_);
        decryptor_ =
            std::make_unique<Decryptor>(*ctx_, keygen_->secretKey());
        eval_ = std::make_unique<Evaluator>(*ctx_);
    }

    std::vector<Complex>
    randomReals(std::uint64_t seed, double mag = 1.0)
    {
        FastRng rng(seed);
        std::vector<Complex> v(ctx_->slots());
        for (auto &z : v)
            z = Complex((rng.nextDouble() * 2 - 1) * mag, 0);
        return v;
    }

    double
    maxError(const std::vector<Complex> &a, const std::vector<Complex> &b)
    {
        double m = 0;
        for (std::size_t i = 0; i < a.size(); ++i)
            m = std::max(m, std::abs(a[i] - b[i]));
        return m;
    }

    std::unique_ptr<CkksContext> ctx_;
    std::unique_ptr<CkksEncoder> enc_;
    std::unique_ptr<KeyGenerator> keygen_;
    PublicKey pk_;
    std::unique_ptr<Encryptor> encryptor_;
    std::unique_ptr<Decryptor> decryptor_;
    std::unique_ptr<Evaluator> eval_;
};

TEST_F(SchemeTest, EncryptDecryptRoundTrip)
{
    auto vals = randomReals(1);
    auto ct = encryptor_->encryptValues(*enc_, vals, ctx_->params().scale(),
                                        ctx_->l());
    auto back = decryptor_->decryptValues(*enc_, ct);
    EXPECT_LT(maxError(vals, back), 1e-5);
}

TEST_F(SchemeTest, HomomorphicAddition)
{
    auto a = randomReals(2), b = randomReals(3);
    const double s = ctx_->params().scale();
    auto ca = encryptor_->encryptValues(*enc_, a, s, ctx_->l());
    auto cb = encryptor_->encryptValues(*enc_, b, s, ctx_->l());
    auto sum = eval_->add(ca, cb);
    auto back = decryptor_->decryptValues(*enc_, sum);
    std::vector<Complex> expect(a.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        expect[i] = a[i] + b[i];
    EXPECT_LT(maxError(expect, back), 1e-5);
}

TEST_F(SchemeTest, HomomorphicSubtractionAndNegate)
{
    auto a = randomReals(4), b = randomReals(5);
    const double s = ctx_->params().scale();
    auto ca = encryptor_->encryptValues(*enc_, a, s, ctx_->l());
    auto cb = encryptor_->encryptValues(*enc_, b, s, ctx_->l());
    auto diff = eval_->sub(ca, cb);
    auto back = decryptor_->decryptValues(*enc_, diff);
    std::vector<Complex> expect(a.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        expect[i] = a[i] - b[i];
    EXPECT_LT(maxError(expect, back), 1e-5);

    auto neg = eval_->negate(ca);
    back = decryptor_->decryptValues(*enc_, neg);
    for (std::size_t i = 0; i < a.size(); ++i)
        expect[i] = -a[i];
    EXPECT_LT(maxError(expect, back), 1e-5);
}

TEST_F(SchemeTest, PlaintextOperations)
{
    auto a = randomReals(6), b = randomReals(7);
    const double s = ctx_->params().scale();
    auto ca = encryptor_->encryptValues(*enc_, a, s, ctx_->l());
    auto pb = enc_->encode(b, s, ctx_->l());

    auto sum = eval_->addPlain(ca, pb);
    auto back = decryptor_->decryptValues(*enc_, sum);
    std::vector<Complex> expect(a.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        expect[i] = a[i] + b[i];
    EXPECT_LT(maxError(expect, back), 1e-5);

    auto prod = eval_->mulPlain(ca, pb, s);
    eval_->rescale(prod);
    back = decryptor_->decryptValues(*enc_, prod);
    for (std::size_t i = 0; i < a.size(); ++i)
        expect[i] = a[i] * b[i];
    EXPECT_LT(maxError(expect, back), 1e-4);
}

TEST_F(SchemeTest, ScalarMultiplication)
{
    auto a = randomReals(8);
    const double s = ctx_->params().scale();
    auto ca = encryptor_->encryptValues(*enc_, a, s, ctx_->l());
    auto scaled = eval_->mulScalar(ca, 2.5);
    eval_->rescale(scaled);
    auto back = decryptor_->decryptValues(*enc_, scaled);
    std::vector<Complex> expect(a.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        expect[i] = a[i] * 2.5;
    EXPECT_LT(maxError(expect, back), 1e-4);
}

TEST_F(SchemeTest, HomomorphicMultiplication)
{
    auto a = randomReals(9), b = randomReals(10);
    const double s = ctx_->params().scale();
    auto ca = encryptor_->encryptValues(*enc_, a, s, ctx_->l());
    auto cb = encryptor_->encryptValues(*enc_, b, s, ctx_->l());
    auto rlk = keygen_->genRelinKey();
    auto prod = eval_->multiply(ca, cb, rlk);
    eval_->rescale(prod);
    auto back = decryptor_->decryptValues(*enc_, prod);
    std::vector<Complex> expect(a.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        expect[i] = a[i] * b[i];
    EXPECT_LT(maxError(expect, back), 1e-3);
}

TEST_F(SchemeTest, MultiplicationChainToDepth)
{
    // Consume the whole multiplicative budget: L-1 rescales.
    auto a = randomReals(11, 0.9);
    const double s = ctx_->params().scale();
    auto rlk = keygen_->genRelinKey();
    auto ct = encryptor_->encryptValues(*enc_, a, s, ctx_->l());
    std::vector<Complex> expect = a;
    for (unsigned depth = 0; depth + 1 < ctx_->l(); ++depth) {
        ct = eval_->square(ct, rlk);
        eval_->rescale(ct);
        for (auto &v : expect)
            v *= v;
    }
    auto back = decryptor_->decryptValues(*enc_, ct);
    EXPECT_LT(maxError(expect, back), 1e-2);
}

TEST_F(SchemeTest, RotationBySeveralSteps)
{
    auto a = randomReals(12);
    const double s = ctx_->params().scale();
    auto gk = keygen_->genRotationKeys({1, 2, 5, -1});
    auto ct = encryptor_->encryptValues(*enc_, a, s, ctx_->l());
    const std::size_t n = ctx_->slots();

    for (int steps : {1, 2, 5, -1}) {
        auto rot = eval_->rotate(ct, steps, gk);
        auto back = decryptor_->decryptValues(*enc_, rot);
        std::vector<Complex> expect(n);
        for (std::size_t i = 0; i < n; ++i)
            expect[i] = a[(i + n + steps) % n];
        EXPECT_LT(maxError(expect, back), 1e-4) << "steps=" << steps;
    }
}

TEST_F(SchemeTest, ConjugationOfComplexData)
{
    FastRng rng(13);
    std::vector<Complex> a(ctx_->slots());
    for (auto &z : a)
        z = Complex(rng.nextDouble() - 0.5, rng.nextDouble() - 0.5);
    const double s = ctx_->params().scale();
    auto gk = keygen_->genRotationKeys({}, /*conjugate=*/true);
    auto ct = encryptor_->encryptValues(*enc_, a, s, ctx_->l());
    auto conj = eval_->conjugate(ct, gk);
    auto back = decryptor_->decryptValues(*enc_, conj);
    std::vector<Complex> expect(a.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        expect[i] = std::conj(a[i]);
    EXPECT_LT(maxError(expect, back), 1e-4);
}

TEST_F(SchemeTest, LevelDropPreservesMessage)
{
    auto a = randomReals(14);
    const double s = ctx_->params().scale();
    auto ct = encryptor_->encryptValues(*enc_, a, s, ctx_->l());
    eval_->levelDrop(ct, 2);
    EXPECT_EQ(ct.level(), 2u);
    auto back = decryptor_->decryptValues(*enc_, ct);
    EXPECT_LT(maxError(a, back), 1e-5);
}

TEST_F(SchemeTest, ModRaisePreservesMessageModQ0)
{
    // After mod-raise, decryption differs from the message by a
    // multiple of q0 per coefficient — the bootstrapping premise.
    auto a = randomReals(15, 0.1);
    const double s = ctx_->params().scale();
    auto ct = encryptor_->encryptValues(*enc_, a, s, ctx_->l());
    eval_->levelDrop(ct, 1);
    auto raised = eval_->modRaise(ct, ctx_->l());
    EXPECT_EQ(raised.level(), ctx_->l());

    // Decrypt without decoding and reduce coefficients mod q0: they
    // must match the level-1 decryption.
    Decryptor dec(*ctx_, keygen_->secretKey());
    auto m_low = dec.decrypt(ct);
    m_low.toCoeff();
    auto m_high = dec.decrypt(raised);
    m_high.toCoeff();
    const u64 q0 = ctx_->chain().modulus(0);
    for (std::size_t i = 0; i < ctx_->n(); ++i) {
        EXPECT_EQ(m_high.residue(0)[i] % q0, m_low.residue(0)[i] % q0);
    }
}

TEST_F(SchemeTest, DepthExhaustionDetected)
{
    auto a = randomReals(16);
    const double s = ctx_->params().scale();
    auto ct = encryptor_->encryptValues(*enc_, a, s, ctx_->l());
    eval_->levelDrop(ct, 1);
    // Rescaling at level 1 must die: the budget is exhausted.
    EXPECT_DEATH(eval_->rescale(ct), "");
}

} // namespace
} // namespace cl

/** Tests for the pooled slab allocator behind RnsPoly: reuse, live
 *  buffers never aliased, stats bookkeeping, leak-free trim, and
 *  clean pass-through when disabled. */

#include <cstring>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "poly/polypool.h"
#include "poly/rnspoly.h"
#include "rns/primes.h"

namespace cl {
namespace {

/** Save/restore the enable flag and trim around each test so the
 *  assertions see only their own traffic. */
class PolyPoolTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        prev_ = polyPoolEnabled();
        polyPoolSetEnabled(true);
        polyPoolTrim();
        polyPoolResetStats();
    }
    void
    TearDown() override
    {
        polyPoolTrim();
        polyPoolSetEnabled(prev_);
    }
    bool prev_ = false;
};

// Large enough to be pooled (the pool passes tiny blocks through).
constexpr std::size_t kBytes = 1 << 16;

TEST_F(PolyPoolTest, FreedBlockIsReusedSameThread)
{
    void *a = polyPoolAllocate(kBytes);
    polyPoolDeallocate(a, kBytes);
    void *b = polyPoolAllocate(kBytes);
    EXPECT_EQ(a, b) << "same-size realloc must hit the free list";
    polyPoolDeallocate(b, kBytes);

    const PolyPoolStats s = polyPoolStats();
    EXPECT_EQ(s.allocs, 2u);
    EXPECT_EQ(s.hits, 1u);
    EXPECT_EQ(s.misses, 1u);
    EXPECT_EQ(s.frees, 2u);
}

TEST_F(PolyPoolTest, LiveBlocksAreNeverAliased)
{
    // Allocate many same-size blocks while all stay live: every
    // pointer must be distinct, and bytes written through one must
    // survive churn on the others.
    constexpr int kBlocks = 32;
    std::vector<unsigned char *> blocks;
    for (int i = 0; i < kBlocks; ++i) {
        auto *p = static_cast<unsigned char *>(polyPoolAllocate(kBytes));
        std::memset(p, i + 1, kBytes);
        blocks.push_back(p);
    }
    for (int i = 0; i < kBlocks; ++i)
        for (int j = i + 1; j < kBlocks; ++j)
            ASSERT_NE(blocks[i], blocks[j]);
    // Churn: recycle scratch blocks between integrity checks.
    for (int round = 0; round < 8; ++round) {
        void *scratch = polyPoolAllocate(kBytes);
        std::memset(scratch, 0xEE, kBytes);
        polyPoolDeallocate(scratch, kBytes);
    }
    for (int i = 0; i < kBlocks; ++i) {
        for (std::size_t b = 0; b < kBytes; b += kBytes / 7)
            ASSERT_EQ(blocks[i][b], static_cast<unsigned char>(i + 1));
        polyPoolDeallocate(blocks[i], kBytes);
    }
}

TEST_F(PolyPoolTest, TrimReleasesEverythingAndNothingLeaks)
{
    const PolyPoolStats before = polyPoolStats();
    std::vector<void *> blocks;
    for (int i = 0; i < 16; ++i)
        blocks.push_back(polyPoolAllocate(kBytes));
    EXPECT_EQ(polyPoolStats().liveBytes, before.liveBytes + 16 * kBytes);
    for (void *p : blocks)
        polyPoolDeallocate(p, kBytes);

    PolyPoolStats s = polyPoolStats();
    EXPECT_EQ(s.liveBytes, before.liveBytes) << "every byte returned";
    EXPECT_GT(s.cachedBytes, before.cachedBytes) << "frees parked";

    polyPoolTrim();
    s = polyPoolStats();
    EXPECT_EQ(s.cachedBytes, 0u) << "trim releases all parked blocks";
    EXPECT_EQ(s.liveBytes, before.liveBytes);
}

TEST_F(PolyPoolTest, DisabledPoolPassesThrough)
{
    polyPoolSetEnabled(false);
    polyPoolResetStats();
    void *a = polyPoolAllocate(kBytes);
    polyPoolDeallocate(a, kBytes);
    const PolyPoolStats s = polyPoolStats();
    EXPECT_EQ(s.hits, 0u);
    EXPECT_EQ(s.parked, 0u);
    EXPECT_EQ(s.cachedBytes, 0u);

    // A block parked while enabled must still free cleanly when the
    // pool is disabled before the next allocation (blocks always come
    // from operator new, so toggling mid-run is safe).
    polyPoolSetEnabled(true);
    void *b = polyPoolAllocate(kBytes);
    polyPoolDeallocate(b, kBytes);
    polyPoolSetEnabled(false);
    void *c = polyPoolAllocate(kBytes);
    polyPoolDeallocate(c, kBytes);
    polyPoolSetEnabled(true);
    polyPoolTrim();
    EXPECT_EQ(polyPoolStats().cachedBytes, 0u);
}

TEST_F(PolyPoolTest, OtherThreadsHaveTheirOwnLists)
{
    // A block parked on another thread must not satisfy this thread's
    // allocations (per-thread lists need no locks), and the worker's
    // trim-on-exit must leave nothing cached.
    const PolyPoolStats before = polyPoolStats();
    std::thread t([&] {
        void *p = polyPoolAllocate(kBytes);
        polyPoolDeallocate(p, kBytes);
        polyPoolTrim();
    });
    t.join();
    const PolyPoolStats s = polyPoolStats();
    EXPECT_EQ(s.cachedBytes, before.cachedBytes)
        << "worker trim released its list";
    EXPECT_EQ(s.liveBytes, before.liveBytes);
}

TEST_F(PolyPoolTest, RnsPolyRoundTripsThroughThePool)
{
    // End-to-end: RnsPoly's allocator must draw from the pool, and a
    // destroyed polynomial's slab must be recycled into the next
    // same-shape polynomial.
    const std::size_t n = 128;
    RnsChain chain(n, generateNttPrimes(40, n, 4));
    const std::vector<unsigned> idx = {0, 1, 2, 3};
    polyPoolResetStats();
    {
        RnsPoly p(chain, idx, false);
        (void)p;
    }
    const PolyPoolStats mid = polyPoolStats();
    EXPECT_GE(mid.parked, 1u) << "slab parked on destruction";
    {
        RnsPoly q(chain, idx, false);
        (void)q;
        EXPECT_GE(polyPoolStats().hits, 1u) << "slab reused";
    }
}

} // namespace
} // namespace cl

/** Tests for the double-CRT polynomial type. */

#include <algorithm>

#include <gtest/gtest.h>

#include "poly/rnspoly.h"
#include "rns/primes.h"
#include "util/prng.h"

namespace cl {
namespace {

class RnsPolyTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        n_ = 128;
        auto primes = generateNttPrimes(40, n_, 4);
        chain_ = std::make_unique<RnsChain>(n_, primes);
        idx_ = {0, 1, 2, 3};
    }

    RnsPoly
    randomPoly(std::uint64_t seed)
    {
        FastRng rng(seed);
        RnsPoly p(*chain_, idx_, false);
        for (std::size_t t = 0; t < p.towers(); ++t) {
            for (auto &c : p.residue(t))
                c = rng.nextBelow(p.modulus(t));
        }
        return p;
    }

    /** Embed a small integer polynomial in all towers. */
    RnsPoly
    embed(const std::vector<std::int64_t> &coeffs)
    {
        RnsPoly p(*chain_, idx_, false);
        for (std::size_t t = 0; t < p.towers(); ++t) {
            for (std::size_t i = 0; i < coeffs.size(); ++i)
                p.residue(t)[i] = reduceSigned(coeffs[i], p.modulus(t));
        }
        return p;
    }

    std::size_t n_;
    std::unique_ptr<RnsChain> chain_;
    std::vector<unsigned> idx_;
};

TEST_F(RnsPolyTest, NttRoundTrip)
{
    auto p = randomPoly(1);
    auto q = p;
    p.toNtt();
    EXPECT_TRUE(p.isNtt());
    p.toCoeff();
    EXPECT_EQ(p.data(), q.data());
}

TEST_F(RnsPolyTest, AddSubCancel)
{
    auto a = randomPoly(2);
    auto b = randomPoly(3);
    auto c = a + b - b;
    EXPECT_EQ(c.data(), a.data());
}

TEST_F(RnsPolyTest, MultiplicationViaSmallIntegers)
{
    // (1 + 2x) * (3 + x) = 3 + 7x + 2x^2 in every tower.
    auto a = embed({1, 2});
    auto b = embed({3, 1});
    a.toNtt();
    b.toNtt();
    a *= b;
    a.toCoeff();
    for (std::size_t t = 0; t < a.towers(); ++t) {
        EXPECT_EQ(a.residue(t)[0], 3u);
        EXPECT_EQ(a.residue(t)[1], 7u);
        EXPECT_EQ(a.residue(t)[2], 2u);
        EXPECT_EQ(a.residue(t)[3], 0u);
    }
}

TEST_F(RnsPolyTest, NegatePlusOriginalIsZero)
{
    auto a = randomPoly(4);
    auto b = a;
    b.negate();
    auto c = a + b;
    for (std::size_t t = 0; t < c.towers(); ++t) {
        for (auto v : c.residue(t))
            EXPECT_EQ(v, 0u);
    }
}

TEST_F(RnsPolyTest, ScalarMultiplication)
{
    auto a = embed({5, 0, 1});
    a.mulScalar(3);
    for (std::size_t t = 0; t < a.towers(); ++t) {
        EXPECT_EQ(a.residue(t)[0], 15u);
        EXPECT_EQ(a.residue(t)[2], 3u);
    }
}

TEST_F(RnsPolyTest, RescaleDividesSmallValues)
{
    // Embed v = c * q_last; rescaling yields c in all towers.
    const u64 q_last = chain_->modulus(3);
    RnsPoly p(*chain_, idx_, false);
    for (std::size_t t = 0; t < p.towers(); ++t) {
        const u64 q = p.modulus(t);
        // coefficient 0 = 7 * q_last (mod q), coefficient 1 = 0.
        p.residue(t)[0] = mulMod(7 % q, q_last % q, q);
    }
    p.rescaleLastTower();
    EXPECT_EQ(p.towers(), 3u);
    for (std::size_t t = 0; t < p.towers(); ++t)
        EXPECT_EQ(p.residue(t)[0], 7u);
}

TEST_F(RnsPolyTest, RescaleRoundsToNearest)
{
    // v = 2*q_last + (q_last-1)  rounds to 3 (since remainder is
    // nearly q_last).
    const u64 q_last = chain_->modulus(3);
    RnsPoly p(*chain_, idx_, false);
    for (std::size_t t = 0; t < p.towers(); ++t) {
        const u64 q = p.modulus(t);
        const u64 v = mulMod(2, q_last % q, q);
        p.residue(t)[0] = addMod(v, (q_last - 1) % q, q);
    }
    p.rescaleLastTower();
    for (std::size_t t = 0; t < p.towers(); ++t)
        EXPECT_EQ(p.residue(t)[0], 3u);
}

TEST_F(RnsPolyTest, RescalePreservesNttDomain)
{
    auto p = randomPoly(5);
    p.toNtt();
    p.rescaleLastTower();
    EXPECT_TRUE(p.isNtt());
    EXPECT_EQ(p.towers(), 3u);
}

TEST_F(RnsPolyTest, SubsetExtractsRequestedTowers)
{
    auto p = randomPoly(6);
    auto s = p.subset({1, 3});
    EXPECT_EQ(s.towers(), 2u);
    EXPECT_TRUE(std::ranges::equal(s.residue(0), p.residue(1)));
    EXPECT_TRUE(std::ranges::equal(s.residue(1), p.residue(3)));
}

TEST_F(RnsPolyTest, AutomorphismMatchesPerTowerMap)
{
    auto p = embed({0, 1}); // x
    auto r = p.automorphism(5);
    // x -> x^5.
    for (std::size_t t = 0; t < r.towers(); ++t) {
        EXPECT_EQ(r.residue(t)[5], 1u);
        EXPECT_EQ(r.residue(t)[1], 0u);
    }
}

TEST_F(RnsPolyTest, FootprintWords)
{
    auto p = randomPoly(7);
    EXPECT_EQ(p.footprintWords(), 4u * n_);
}

} // namespace
} // namespace cl

/**
 * @file
 * Task-graph runtime tests. Contracts pinned here:
 *
 *  - TaskGraph runs every task exactly once, never before its
 *    predecessors, at any worker count, and its stats (edges,
 *    critical path) match the graph structure;
 *  - a graph task that reaches a tower-parallel kernel runs the
 *    kernel's parallelFor inline on its own worker (no pool-on-pool
 *    deadlock, no oversubscription);
 *  - HostRunner's graph execution is *byte-identical* to serial
 *    execution on the full Sec 8 benchmark suite, at every worker
 *    count and every available SIMD backend;
 *  - a batch of concurrent bootstrap() calls over one Bootstrapper
 *    is byte-identical to bootstrapping the batch serially.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "ckks/bootstrap.h"
#include "ckks/encryptor.h"
#include "rns/simd/kernels.h"
#include "runtime/hostrun.h"
#include "util/threadpool.h"
#include "workloads/benchmarks.h"

// Sanitizer builds run every instruction ~10x slower; keep the deep
// benchmark programs (tens of thousands of ops) out of those runs.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define CL_TEST_SANITIZED 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define CL_TEST_SANITIZED 1
#endif
#endif

namespace cl {
namespace {

// ---------------------------------------------------------------
// TaskGraph
// ---------------------------------------------------------------

TEST(ExecMode, NamesRoundTrip)
{
    EXPECT_STREQ(execModeName(ExecMode::Serial), "serial");
    EXPECT_STREQ(execModeName(ExecMode::Graph), "graph");
    EXPECT_EQ(execModeByName("serial"), ExecMode::Serial);
    EXPECT_EQ(execModeByName("graph"), ExecMode::Graph);
}

/** Layered random-ish DAG: `width` tasks per layer, each depending on
 *  two tasks of the previous layer. Every task checks its
 *  predecessors retired first. */
void
runLayeredDag(ExecMode mode, unsigned threads)
{
    constexpr std::uint32_t kLayers = 8, kWidth = 16;
    TaskGraph g;
    std::vector<std::atomic<int>> done(kLayers * kWidth);
    std::vector<TaskGraph::TaskId> prev;
    std::atomic<int> violations{0};
    for (std::uint32_t layer = 0; layer < kLayers; ++layer) {
        std::vector<TaskGraph::TaskId> cur;
        for (std::uint32_t w = 0; w < kWidth; ++w) {
            std::vector<TaskGraph::TaskId> deps;
            if (layer > 0) {
                deps.push_back(prev[w]);
                deps.push_back(prev[(w + 7) % kWidth]);
            }
            const std::uint32_t slot = layer * kWidth + w;
            std::vector<TaskGraph::TaskId> deps_copy = deps;
            cur.push_back(g.add(
                [&, slot, deps_copy] {
                    for (TaskGraph::TaskId d : deps_copy) {
                        if (done[d].load(std::memory_order_acquire) != 1)
                            violations.fetch_add(1);
                    }
                    done[slot].fetch_add(1, std::memory_order_release);
                },
                std::move(deps), 1 + slot % 5));
        }
        prev = std::move(cur);
    }
    const TaskGraphStats stats = g.run(mode, threads);
    EXPECT_EQ(violations.load(), 0) << "a task ran before a predecessor";
    for (auto &d : done)
        EXPECT_EQ(d.load(), 1);
    EXPECT_EQ(stats.tasks, std::size_t{kLayers} * kWidth);
    EXPECT_EQ(stats.edges, std::size_t{kLayers - 1} * kWidth * 2);
}

TEST(TaskGraph, SerialRunsEveryTaskOnceInOrder)
{
    runLayeredDag(ExecMode::Serial, 1);
}

TEST(TaskGraph, GraphRunsEveryTaskOnceAtAnyWorkerCount)
{
    for (unsigned threads : {1u, 4u, 8u})
        runLayeredDag(ExecMode::Graph, threads);
}

TEST(TaskGraph, DuplicateDependenciesAreDeduped)
{
    TaskGraph g;
    std::atomic<int> ran{0};
    const auto a = g.add([&] { ran.fetch_add(1); });
    g.add([&] { ran.fetch_add(1); }, {a, a, a});
    const TaskGraphStats stats = g.run(ExecMode::Graph, 4);
    EXPECT_EQ(ran.load(), 2);
    EXPECT_EQ(stats.edges, 1u);
}

TEST(TaskGraph, CriticalPathIsWeightInclusive)
{
    // Diamond: a(2) -> {b(3), c(10)} -> d(4). Longest chain a,c,d = 16.
    TaskGraph g;
    const auto a = g.add([] {}, {}, 2);
    const auto b = g.add([] {}, {a}, 3);
    const auto c = g.add([] {}, {a}, 10);
    g.add([] {}, {b, c}, 4);
    const TaskGraphStats stats = g.run(ExecMode::Serial);
    EXPECT_EQ(stats.criticalPath, 16u);
    EXPECT_EQ(stats.edges, 4u);
}

TEST(TaskGraph, SerialModeStaysOnCallerInInsertionOrder)
{
    TaskGraph g;
    const auto self = std::this_thread::get_id();
    std::vector<int> order;
    for (int i = 0; i < 16; ++i) {
        g.add([&, i] {
            EXPECT_EQ(std::this_thread::get_id(), self);
            order.push_back(i); // no races: single-threaded by contract
        });
    }
    g.run(ExecMode::Serial, 8); // thread count must be ignored
    ASSERT_EQ(order.size(), 16u);
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(TaskGraph, RunTaskBatchRunsEveryClosure)
{
    for (ExecMode mode : {ExecMode::Serial, ExecMode::Graph}) {
        std::vector<std::atomic<int>> hits(32);
        std::vector<std::function<void()>> fns;
        for (std::size_t i = 0; i < hits.size(); ++i)
            fns.push_back([&hits, i] { hits[i].fetch_add(1); });
        const TaskGraphStats stats = runTaskBatch(fns, mode, 4);
        for (auto &h : hits)
            EXPECT_EQ(h.load(), 1);
        EXPECT_EQ(stats.tasks, hits.size());
        EXPECT_EQ(stats.edges, 0u);
    }
}

TEST(TaskGraph, NestedParallelForInsideGraphTaskInlines)
{
    // Regression for the pool-on-pool hazard: a graph task reaching a
    // tower-parallel kernel must run the kernel's parallelFor inline
    // on its own worker, not contend for the global pool.
    ThreadPool::setGlobalThreads(4);
    TaskGraph g;
    constexpr std::size_t kTasks = 16, kInner = 256;
    std::vector<std::atomic<int>> hits(kTasks * kInner);
    for (std::size_t t = 0; t < kTasks; ++t) {
        g.add([&, t] {
            EXPECT_TRUE(ThreadPool::inWorkerContext());
            const auto self = std::this_thread::get_id();
            parallelFor(0, kInner, [&](std::size_t i) {
                EXPECT_EQ(std::this_thread::get_id(), self);
                hits[t * kInner + i].fetch_add(1);
            });
        });
    }
    g.run(ExecMode::Graph, 4);
    for (auto &h : hits)
        EXPECT_EQ(h.load(), 1);
    ThreadPool::setGlobalThreads(1);
}

// ---------------------------------------------------------------
// HostRunner byte-identity on the benchmark suite
// ---------------------------------------------------------------

/** Small host context the benchmark programs are projected onto (the
 *  runner clamps levels; the math is size-generic). */
class HostRunnerTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        CkksParams p;
        p.logN = 8;
        p.l = 4;
        p.alpha = 4;
        ctx_ = std::make_unique<CkksContext>(p);
        enc_ = std::make_unique<CkksEncoder>(*ctx_);
        keygen_ = std::make_unique<KeyGenerator>(*ctx_);
    }

    /** Serial digest once, then graph digests at 1/4/8 workers; all
     *  must match bit-for-bit. Returns the serial digest. */
    std::uint64_t
    expectModeIdentity(const HomProgram &prog)
    {
        HostRunner runner(*ctx_, *enc_, *keygen_, prog);
        HostRunOptions opts;
        opts.mode = ExecMode::Serial;
        const HostRunResult ref = runner.run(prog, opts);
        EXPECT_EQ(ref.stats.tasks, prog.ops.size());
        EXPECT_FALSE(ref.outputs.empty()) << prog.name;
        for (unsigned threads : {1u, 4u, 8u}) {
            opts.mode = ExecMode::Graph;
            opts.threads = threads;
            const HostRunResult got = runner.run(prog, opts);
            EXPECT_EQ(got.digest, ref.digest)
                << prog.name << " diverged at " << threads << " workers";
            EXPECT_EQ(got.outputs.size(), ref.outputs.size());
        }
        return ref.digest;
    }

    std::unique_ptr<CkksContext> ctx_;
    std::unique_ptr<CkksEncoder> enc_;
    std::unique_ptr<KeyGenerator> keygen_;
};

/** The Sec 8 suite, iteration knobs turned down where the generators
 *  have them (the dataflow/op mix is unchanged; only repetition
 *  shrinks). Sanitizer builds keep the shallow half. */
std::vector<HomProgram>
testPrograms()
{
    const SecurityConfig sec = SecurityConfig::bits80();
    std::vector<HomProgram> progs;
    progs.push_back(unpackedBootstrapping());
    progs.push_back(lolaMnist(false));
    progs.push_back(lolaMnist(true));
    progs.push_back(packedBootstrapping(sec));
    progs.push_back(logisticRegression(sec, 2));
#if !defined(CL_TEST_SANITIZED)
    progs.push_back(lstm(sec, 2));
    progs.push_back(resnet20(sec));
    progs.push_back(lolaCifar());
#endif
    return progs;
}

TEST_F(HostRunnerTest, GraphMatchesSerialOnBenchmarkSuite)
{
    for (const HomProgram &prog : testPrograms()) {
        SCOPED_TRACE(prog.name);
        expectModeIdentity(prog);
    }
}

TEST_F(HostRunnerTest, RepeatedRunsAreDeterministic)
{
    const HomProgram prog = wideMultiplyGraph(57, 3, 8);
    HostRunner runner(*ctx_, *enc_, *keygen_, prog);
    HostRunOptions opts;
    opts.mode = ExecMode::Serial;
    const std::uint64_t first = runner.run(prog, opts).digest;
    EXPECT_EQ(runner.run(prog, opts).digest, first);
    opts.mode = ExecMode::Graph;
    opts.threads = 4;
    EXPECT_EQ(runner.run(prog, opts).digest, first);
}

TEST_F(HostRunnerTest, SeedChangesTheProgramInputs)
{
    const HomProgram prog = lolaMnist(false);
    HostRunner runner(*ctx_, *enc_, *keygen_, prog);
    HostRunOptions a, b;
    a.seed = 1;
    b.seed = 2;
    EXPECT_NE(runner.run(prog, a).digest, runner.run(prog, b).digest);
}

TEST_F(HostRunnerTest, ByteIdentityHoldsAcrossSimdBackends)
{
    // The determinism contract composes with the kernel backends: the
    // digest must not depend on the backend *or* the exec mode.
    std::vector<SimdBackend> backends{SimdBackend::Scalar};
    for (SimdBackend b : {SimdBackend::Avx2, SimdBackend::Avx512})
        if (kernelTableFor(b))
            backends.push_back(b);

    for (bool encrypted : {false, true}) {
        const HomProgram prog = lolaMnist(encrypted);
        HostRunner runner(*ctx_, *enc_, *keygen_, prog);
        const SimdBackend saved = activeSimdBackend();
        std::uint64_t ref = 0;
        for (std::size_t i = 0; i < backends.size(); ++i) {
            ASSERT_TRUE(setSimdBackend(backends[i]));
            HostRunOptions opts;
            opts.mode = ExecMode::Serial;
            const std::uint64_t serial = runner.run(prog, opts).digest;
            opts.mode = ExecMode::Graph;
            opts.threads = 4;
            const std::uint64_t graph = runner.run(prog, opts).digest;
            EXPECT_EQ(serial, graph);
            if (i == 0)
                ref = serial;
            else
                EXPECT_EQ(serial, ref) << "backend changed the bytes";
        }
        setSimdBackend(saved);
    }
}

// ---------------------------------------------------------------
// Concurrent bootstrapping through runTaskBatch
// ---------------------------------------------------------------

TEST(RuntimeBootstrap, BatchMatchesSerialByteForByte)
{
    // Deliberately NOT skipped under TSan: concurrent bootstrap()
    // calls sharing one diagonal cache are exactly the surface the
    // race detector should watch.
    CkksParams p;
    p.logN = 9;
    p.l = 20;
    p.alpha = 20;
    p.firstModBits = 50;
    p.scaleBits = 55;
    p.specialBits = 55;
    p.secretHamming = 16;
    CkksContext ctx(p);
    CkksEncoder enc(ctx);
    KeyGenerator keygen(ctx);
    const PublicKey pk = keygen.genPublicKey();
    Bootstrapper boot(ctx, enc, keygen);

    constexpr std::size_t kBatch = 3;
    const double app_scale = 1099511627776.0; // 2^40
    std::vector<Ciphertext> in(kBatch);
    for (std::size_t i = 0; i < kBatch; ++i) {
        FastRng rng(100 + i);
        std::vector<Complex> vals(ctx.slots());
        for (auto &z : vals)
            z = Complex(rng.nextDouble() - 0.5, 0);
        Encryptor encryptor(ctx, pk, 7 * i + 1);
        in[i] = encryptor.encrypt(enc.encode(vals, app_scale, 1),
                                  app_scale);
    }

    std::vector<Ciphertext> serial(kBatch), graph(kBatch);
    std::vector<std::function<void()>> jobs;
    for (std::size_t i = 0; i < kBatch; ++i)
        jobs.push_back([&, i] { serial[i] = boot.bootstrap(in[i]); });
    runTaskBatch(jobs, ExecMode::Serial);
    jobs.clear();
    for (std::size_t i = 0; i < kBatch; ++i)
        jobs.push_back([&, i] { graph[i] = boot.bootstrap(in[i]); });
    runTaskBatch(jobs, ExecMode::Graph, 4);

    for (std::size_t i = 0; i < kBatch; ++i) {
        const std::uint64_t a =
            digestCiphertext(1469598103934665603ull, serial[i]);
        const std::uint64_t b =
            digestCiphertext(1469598103934665603ull, graph[i]);
        EXPECT_EQ(a, b) << "batch element " << i;
    }
}

} // namespace
} // namespace cl

/**
 * Tests for the differential fuzzing harness (src/fuzz, DESIGN.md §7):
 * generation determinism, corpus JSON round-tripping, oracle verdict
 * stability, minimizer idempotence, and clean replay of every pinned
 * regression in tests/fuzz/corpus/.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "fuzz/fuzzer.h"

namespace cl {
namespace {

/** One env for the whole binary: key generation dominates setup. */
FuzzEnv &
sharedEnv()
{
    static FuzzEnv env;
    return env;
}

std::string
readFile(const std::filesystem::path &p)
{
    std::ifstream is(p);
    EXPECT_TRUE(is) << "cannot read " << p;
    std::stringstream ss;
    ss << is.rdbuf();
    return ss.str();
}

/** Same seed, same config -> byte-identical program. */
TEST(Fuzz, GenerationIsDeterministic)
{
    FuzzEnv &env = sharedEnv();
    const FuzzConfig cfg;
    for (std::uint64_t seed : {0ULL, 7ULL, 123ULL}) {
        const GenProgram p1 = generateProgram(env, cfg, seed);
        const GenProgram p2 = generateProgram(env, cfg, seed);
        EXPECT_EQ(toJson(p1, ""), toJson(p2, "")) << "seed " << seed;
        EXPECT_FALSE(p1.ops.empty());
    }
}

/** Corpus JSON survives a dump/parse/dump cycle bit-for-bit. */
TEST(Fuzz, JsonRoundTrip)
{
    FuzzEnv &env = sharedEnv();
    const GenProgram p = generateProgram(env, FuzzConfig{}, 3);
    const std::string j1 = toJson(p, "some failure text");
    const GenProgram q = fromJson(j1);
    EXPECT_EQ(toJson(p, ""), toJson(q, ""));
}

/** Two oracle runs of the same program agree exactly — verdict and
 *  measured error — so a pinned corpus verdict is reproducible. */
TEST(Fuzz, OracleVerdictIsDeterministic)
{
    FuzzEnv &env = sharedEnv();
    const GenProgram p = generateProgram(env, FuzzConfig{}, 5);
    const OracleResult r1 = runOracle(env, p);
    const OracleResult r2 = runOracle(env, p);
    EXPECT_EQ(r1.ok, r2.ok);
    EXPECT_EQ(r1.failure, r2.failure);
    EXPECT_EQ(r1.maxError, r2.maxError); // bitwise: same kernels ran
}

/**
 * Minimizer reaches a fixed point: re-minimizing an already-minimal
 * failing program changes nothing. The failure is synthetic — an
 * absurdly strict error bound makes any program with an output fail —
 * so the test is independent of which real bugs currently exist.
 */
TEST(Fuzz, MinimizerIsIdempotent)
{
    FuzzEnv &env = sharedEnv();
    OracleOptions opts;
    opts.structural = false;
    opts.tolScale = 1e-9; // decrypt noise alone exceeds the bound
    const GenProgram p = generateProgram(env, FuzzConfig{}, 9);
    ASSERT_FALSE(runOracle(env, p, opts).ok);

    const GenProgram m1 = minimizeProgram(env, p, opts);
    EXPECT_LE(m1.ops.size(), p.ops.size());
    EXPECT_FALSE(runOracle(env, m1, opts).ok); // still failing
    const GenProgram m2 = minimizeProgram(env, m1, opts);
    EXPECT_EQ(toJson(m1, ""), toJson(m2, ""));
}

/** Every pinned regression in tests/fuzz/corpus replays clean. */
TEST(Fuzz, CorpusReplaysClean)
{
    FuzzEnv &env = sharedEnv();
    std::size_t replayed = 0;
    for (const auto &entry :
         std::filesystem::directory_iterator(CL_CORPUS_DIR)) {
        if (entry.path().extension() != ".json")
            continue;
        const GenProgram p = fromJson(readFile(entry.path()));
        const OracleResult res = runOracle(env, p);
        EXPECT_TRUE(res.ok)
            << entry.path() << ": " << res.failure;
        ++replayed;
    }
    EXPECT_GT(replayed, 0u) << "corpus directory is empty";
}

/**
 * Pin for fuzzer seed 208: a levelDrop chain that carried a 2^80
 * scale down to the single-tower basis, wrapping the message mod Q.
 * The legality checker must now reject the program outright (and
 * Evaluator::levelDrop independently asserts; see
 * tests/ckks/test_opcounter.cpp).
 */
TEST(Fuzz, LevelDropCapacityOverflowIsRejected)
{
    static const char *kSeed208Minimal = R"({
  "seed": "208",
  "ops": [
    {"kind": "input", "a": -1, "b": -1, "level": 4, "scaleOf": -1, "steps": 0, "valueSeed": "12585469953200406844"},
    {"kind": "levelDrop", "a": 0, "b": -1, "level": 0, "scaleOf": -1, "steps": 0, "valueSeed": "0"},
    {"kind": "mulPlain", "a": 1, "b": -1, "level": 0, "scaleOf": -1, "steps": 0, "valueSeed": "10514817291616508840"},
    {"kind": "levelDrop", "a": 2, "b": -1, "level": 0, "scaleOf": -1, "steps": 0, "valueSeed": "0"},
    {"kind": "levelDrop", "a": 3, "b": -1, "level": 0, "scaleOf": -1, "steps": 0, "valueSeed": "0"},
    {"kind": "output", "a": 4, "b": -1, "level": 0, "scaleOf": -1, "steps": 0, "valueSeed": "0"}
  ]
})";
    FuzzEnv &env = sharedEnv();
    const GenProgram p = fromJson(kSeed208Minimal);
    std::string why;
    EXPECT_FALSE(checkLegal(env, p, &why).has_value());
    EXPECT_NE(why.find("levelDrop would overflow"), std::string::npos)
        << why;
}

/** Short pinned-seed sweep: the full three-way oracle stays green. */
TEST(Fuzz, SmokeSweep)
{
    FuzzEnv &env = sharedEnv();
    for (std::uint64_t seed = 0; seed < 8; ++seed) {
        const GenProgram p = generateProgram(env, FuzzConfig{}, seed);
        const OracleResult res = runOracle(env, p);
        EXPECT_TRUE(res.ok) << "seed " << seed << ": " << res.failure;
    }
}

/** The differential exec leg: every seed must execute byte-identically
 *  through the serial loop and the task-graph runtime, with equal
 *  counter totals (the oracle enforces both internally). */
TEST(Fuzz, ExecModesAgree)
{
    FuzzEnv &env = sharedEnv();
    OracleOptions opts;
    opts.execModes = {ExecMode::Serial, ExecMode::Graph};
    for (std::uint64_t seed = 0; seed < 6; ++seed) {
        const GenProgram p = generateProgram(env, FuzzConfig{}, seed);
        const OracleResult res = runOracle(env, p, opts);
        EXPECT_TRUE(res.ok) << "seed " << seed << ": " << res.failure;
    }
    // ModRaise programs exercise the graph over bootstrap-entry ops.
    FuzzConfig boot;
    boot.allowModRaise = true;
    boot.weights[static_cast<std::size_t>(GenKind::ModRaise)] = 2;
    for (std::uint64_t seed = 0; seed < 4; ++seed) {
        const GenProgram p = generateProgram(env, boot, seed);
        const OracleResult res = runOracle(env, p, opts);
        EXPECT_TRUE(res.ok) << "boot seed " << seed << ": "
                            << res.failure;
    }
}

/**
 * The verdict must not depend on the execution backend: re-run a few
 * seeds through the CLI under a pinned thread count and the scalar
 * SIMD kernels and require the same green verdict the in-process
 * sweep above produced. Spawns the fuzz_hom tool, so it is skipped if
 * the binary is missing (e.g. a test-only build).
 */
TEST(Fuzz, VerdictStableAcrossBackends)
{
    if (!std::filesystem::exists(CL_FUZZ_HOM))
        GTEST_SKIP() << CL_FUZZ_HOM << " not built";
    const std::string base = std::string("\"") + CL_FUZZ_HOM +
                             "\" --seeds 0..3 >/dev/null 2>&1";
    EXPECT_EQ(std::system(
                  ("CL_THREADS=1 CL_SIMD=scalar " + base).c_str()),
              0);
    EXPECT_EQ(std::system(("CL_THREADS=3 " + base).c_str()), 0);
}

} // namespace
} // namespace cl

/**
 * Tests for the static schedule verifier (verify/verifier.h) and its
 * fault injector (verify/faults.h).
 *
 * Two layers: every benchmark x configuration pair must verify clean
 * (the simulator emits only legal schedules), and on a hand-built
 * program with at least one injection site per fault class, every
 * mutated schedule must be flagged with the expected diagnostic (the
 * checks are live, not vacuously green).
 */

#include <gtest/gtest.h>

#include "compiler/lower.h"
#include "sim/simulator.h"
#include "verify/faults.h"
#include "verify/verifier.h"
#include "workloads/benchmarks.h"

namespace cl {
namespace {

// --- Clean verification across the benchmark suite -------------------

using BenchConfig = std::tuple<std::string, std::string>;

class VerifyBenchmarks : public ::testing::TestWithParam<BenchConfig>
{
};

TEST_P(VerifyBenchmarks, ScheduleIsLegal)
{
    const auto &[bench, config] = GetParam();
    const ChipConfig cfg = ChipConfig::byName(config);
    Lowering lower(cfg);
    const Program prog = lower.lower(
        benchmarkByName(bench, SecurityConfig::bits80()));
    prog.validate();

    Simulator sim(cfg);
    TraceRecorder rec;
    const SimStats stats = sim.run(prog, &rec);
    const VerifyReport report = ScheduleVerifier(cfg, prog).verify(
        rec.insts(), rec.residency(), stats);
    EXPECT_TRUE(report.ok()) << report.summary();
    EXPECT_EQ(report.instsChecked, prog.size());
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, VerifyBenchmarks,
    ::testing::Combine(
        ::testing::ValuesIn(benchmarkNames()),
        ::testing::Values("craterlake", "f1plus", "no-kshgen")),
    [](const ::testing::TestParamInfo<BenchConfig> &info) {
        std::string s = std::get<0>(info.param) + "_" +
                        std::get<1>(info.param);
        for (char &c : s)
            if (c == '-')
                c = '_';
        return s;
    });

// --- Fault injection --------------------------------------------------

/** 4096-word register file, 256 words/cycle (see exactConfig in
 *  test_simulator.cpp). */
ChipConfig
smallRfConfig()
{
    ChipConfig cfg = ChipConfig::craterLake();
    cfg.rfBytes = static_cast<std::uint64_t>(4096 * 3.5);
    cfg.hbmPhys = 2;
    cfg.hbmGBpsPerPhy = 448.0;
    cfg.freqGhz = 1.0;
    return cfg;
}

/**
 * A program whose schedule contains an injection site for every fault
 * class: a producer->consumer dependency (T: i0 -> i3), a spill of T
 * and a clean eviction of A at i1 (both reloaded later), network
 * traffic on two instructions, FU claims and RF ports everywhere.
 */
Program
faultSiteProgram()
{
    Program p;
    p.name = "fault-sites";
    p.n = 1 << 16;
    const auto A = p.addValue(ValueKind::Input, 1024, "A");
    const auto T = p.addValue(ValueKind::Intermediate, 2560, "T");
    const auto K = p.addValue(ValueKind::KeySwitchHint, 2560, "K");
    const auto B = p.addValue(ValueKind::Input, 2560, "B");
    const auto o1 = p.addValue(ValueKind::Output, 256, "o1");
    const auto o2 = p.addValue(ValueKind::Output, 256, "o2");

    auto inst = [&](std::vector<std::uint32_t> reads,
                    std::vector<std::uint32_t> writes,
                    const char *mnemonic, std::uint64_t net) {
        PolyInst i;
        i.mnemonic = mnemonic;
        i.n = p.n;
        i.fus = {{FuType::Add, 1, 16}};
        i.reads = std::move(reads);
        i.writes = std::move(writes);
        i.duration = 10;
        i.rfPorts = 2;
        i.networkWords = net;
        p.addInst(std::move(i));
    };
    inst({A}, {T}, "i0", 512);   // A loads; T produced.
    inst({K}, {}, "i1", 0);      // evicts A (clean), spills T.
    inst({B}, {}, "i2", 512);    // K dead-freed; B loads.
    inst({T}, {o1}, "i3", 0);    // T reloaded after its spill.
    inst({A}, {o2}, "i4", 0);    // A reloaded after its eviction.
    p.validate();
    return p;
}

class VerifyFaults : public ::testing::TestWithParam<FaultClass>
{
};

TEST_P(VerifyFaults, InjectedFaultIsCaught)
{
    const FaultClass fault = GetParam();
    const ChipConfig cfg = smallRfConfig();
    const Program prog = faultSiteProgram();

    Simulator sim(cfg);
    TraceRecorder rec;
    const SimStats stats = sim.run(prog, &rec);
    const ScheduleVerifier verifier(cfg, prog);
    ASSERT_TRUE(
        verifier.verify(rec.insts(), rec.residency(), stats).ok())
        << "clean schedule must verify before injection";

    auto insts = rec.insts();
    auto events = rec.residency();
    SimStats mutated = stats;
    ASSERT_TRUE(
        injectFault(fault, prog, cfg, insts, events, mutated))
        << faultClassName(fault) << " found no injection site";

    const VerifyReport report =
        verifier.verify(insts, events, mutated);
    EXPECT_FALSE(report.ok());
    EXPECT_TRUE(report.has(expectedViolation(fault)))
        << faultClassName(fault) << " expected "
        << violationKindName(expectedViolation(fault)) << ", got:\n"
        << report.summary();
}

INSTANTIATE_TEST_SUITE_P(
    AllClasses, VerifyFaults,
    ::testing::ValuesIn(allFaultClasses),
    [](const ::testing::TestParamInfo<FaultClass> &info) {
        std::string s = faultClassName(info.param);
        for (char &c : s)
            if (c == '-')
                c = '_';
        return s;
    });

// --- API odds and ends ------------------------------------------------

TEST(Verifier, ConvenienceWrapperRunsEndToEnd)
{
    const ChipConfig cfg = ChipConfig::craterLake();
    Lowering lower(cfg);
    const Program prog = lower.lower(
        benchmarkByName("lola-mnist", SecurityConfig::bits80()));
    SimStats stats;
    const VerifyReport report = verifySchedule(cfg, prog, &stats);
    EXPECT_TRUE(report.ok()) << report.summary();
    EXPECT_GT(stats.cycles, 0u);
}

TEST(Verifier, TamperedStatsAreAnAccountingMismatch)
{
    const ChipConfig cfg = smallRfConfig();
    const Program prog = faultSiteProgram();
    Simulator sim(cfg);
    TraceRecorder rec;
    SimStats stats = sim.run(prog, &rec);
    stats.intermLoadWords += 1; // claim traffic that never moved
    const VerifyReport report = ScheduleVerifier(cfg, prog).verify(
        rec.insts(), rec.residency(), stats);
    EXPECT_TRUE(report.has(ViolationKind::AccountingMismatch));
}

TEST(Verifier, SummaryListsKindCounts)
{
    const ChipConfig cfg = smallRfConfig();
    const Program prog = faultSiteProgram();
    Simulator sim(cfg);
    TraceRecorder rec;
    const SimStats stats = sim.run(prog, &rec);
    auto insts = rec.insts();
    insts.front().finish += 7;
    const VerifyReport report = ScheduleVerifier(cfg, prog).verify(
        insts, rec.residency(), stats);
    EXPECT_FALSE(report.ok());
    EXPECT_NE(report.summary().find("duration-mismatch"),
              std::string::npos);
}

} // namespace
} // namespace cl

/** Tests for the benchmark generators and end-to-end compile+simulate
 *  integration on the CraterLake and F1+ configurations. */

#include <gtest/gtest.h>

#include "baseline/cpumodel.h"
#include "core/craterlake.h"
#include "workloads/benchmarks.h"

namespace cl {
namespace {

TEST(Workloads, PackedBootstrappingStructure)
{
    const HomProgram p = packedBootstrapping();
    EXPECT_EQ(p.logN, 16u);
    EXPECT_EQ(p.lMax, 57u);
    EXPECT_EQ(p.countKind(HomOpKind::ModRaise), 1u);
    EXPECT_EQ(p.countKind(HomOpKind::Input), 1u);
    EXPECT_EQ(p.countKind(HomOpKind::Output), 1u);
    // Sec 8: bootstrapping consumes 35 levels (57 -> 22 usable).
    const HomOp &out = p.ops[p.ops.size() - 1];
    EXPECT_NEAR(out.level, 22.0, 3.0);
}

TEST(Workloads, UnpackedBootstrappingIsShallower)
{
    const HomProgram packed = packedBootstrapping();
    const HomProgram unpacked = unpackedBootstrapping();
    EXPECT_LE(unpacked.lMax, 23u);
    EXPECT_LT(unpacked.ops.size(), packed.ops.size() / 3);
}

TEST(Workloads, LstmBootstrapsOncePerStep)
{
    const SecurityConfig sec = SecurityConfig::bits80();
    const HomProgram p = lstm(sec, 10);
    // 10 steps -> ~10-13 bootstraps (one per step, phases may split).
    const std::size_t raises = p.countKind(HomOpKind::ModRaise);
    EXPECT_GE(raises, 5u);
    EXPECT_LE(raises, 14u);
}

TEST(Workloads, Lstm128BitBootstrapsMoreOften)
{
    const HomProgram p80 = lstm(SecurityConfig::bits80(), 10);
    const HomProgram p128 = lstm(SecurityConfig::bits128(), 10);
    EXPECT_GT(p128.countKind(HomOpKind::ModRaise),
              p80.countKind(HomOpKind::ModRaise));
}

TEST(Workloads, ResNetHasTwentyConvLayers)
{
    const HomProgram p = resnet20();
    // conv1 + 18 block convs + fc: >= 20 linear transforms worth of
    // plaintext mults; bootstraps throughout.
    EXPECT_GT(p.countKind(HomOpKind::ModRaise), 10u);
    EXPECT_GT(p.countKind(HomOpKind::MulPlain), 500u);
    EXPECT_GT(p.countKind(HomOpKind::Mul), 200u); // poly ReLU
}

TEST(Workloads, ShallowProgramsHaveNoBootstrapping)
{
    for (const HomProgram &p :
         {lolaMnist(false), lolaMnist(true), lolaCifar()}) {
        EXPECT_EQ(p.countKind(HomOpKind::ModRaise), 0u) << p.name;
        EXPECT_LE(p.lMax, 8u) << p.name;
        EXPECT_EQ(p.logN, 14u) << p.name;
    }
}

TEST(Workloads, EncryptedWeightsUseCtCtMults)
{
    const HomProgram uw = lolaMnist(false);
    const HomProgram ew = lolaMnist(true);
    EXPECT_GT(ew.countKind(HomOpKind::Mul), uw.countKind(HomOpKind::Mul));
    EXPECT_GT(uw.countKind(HomOpKind::MulPlain),
              ew.countKind(HomOpKind::MulPlain));
}

TEST(Workloads, SuiteHasEightBenchmarks)
{
    auto suite = benchmarkSuite();
    ASSERT_EQ(suite.size(), 8u);
    int deep = 0;
    for (const auto &b : suite)
        deep += b.deep ? 1 : 0;
    EXPECT_EQ(deep, 4);
}

TEST(Workloads, SyntheticGraphsScaleWithWidth)
{
    const HomProgram narrow = multiplicationChain(45, 10);
    const HomProgram wide = wideMultiplyGraph(45, 10, 50);
    // Both share the bootstrap muls; the wide graph adds ~width x
    // depth application multiplies on top.
    EXPECT_GE(wide.countKind(HomOpKind::Mul),
              narrow.countKind(HomOpKind::Mul) + 45 * 10);
}

class EndToEnd : public ::testing::Test
{
};

TEST_F(EndToEnd, PackedBootstrappingOnAllConfigs)
{
    const HomProgram p = packedBootstrapping();
    for (const ChipConfig &cfg :
         {ChipConfig::craterLake(), ChipConfig::f1plus(),
          ChipConfig::noCrbNoChain(), ChipConfig::noKshGen(),
          ChipConfig::crossbarNetwork()}) {
        Accelerator accel(cfg);
        const RunResult r = accel.execute(p);
        EXPECT_GT(r.stats.cycles, 0u) << cfg.name;
        EXPECT_GT(r.instructions, 100u) << cfg.name;
        EXPECT_LE(r.stats.fuUtilization(cfg), 1.0) << cfg.name;
        EXPECT_LE(r.stats.memUtilization(), 1.0) << cfg.name;
    }
}

TEST_F(EndToEnd, CraterLakeBeatsF1PlusOnDeep)
{
    const SecurityConfig sec = SecurityConfig::bits80();
    SecurityConfig sec_f1 = sec;
    sec_f1.policy = f1plusPolicy(sec.policy);

    const HomProgram p = packedBootstrapping(sec);
    const HomProgram p_f1 = packedBootstrapping(sec_f1);
    const double t_cl =
        Accelerator(ChipConfig::craterLake()).execute(p).seconds();
    const double t_f1 =
        Accelerator(ChipConfig::f1plus()).execute(p_f1).seconds();
    // Table 3: 14.9x on packed bootstrapping; require a wide margin.
    EXPECT_GT(t_f1 / t_cl, 4.0);
}

TEST_F(EndToEnd, CrbAblationHurtsDeep)
{
    const HomProgram p = packedBootstrapping();
    const double base =
        Accelerator(ChipConfig::craterLake()).execute(p).seconds();
    const double nocrb =
        Accelerator(ChipConfig::noCrbNoChain()).execute(p).seconds();
    EXPECT_GT(nocrb / base, 2.0); // Table 4: 27.4x in the paper
}

TEST_F(EndToEnd, DeterministicSimulation)
{
    const HomProgram p = lolaMnist(false);
    Accelerator accel(ChipConfig::craterLake());
    const RunResult a = accel.execute(p);
    const RunResult b = accel.execute(p);
    EXPECT_EQ(a.stats.cycles, b.stats.cycles);
    EXPECT_EQ(a.stats.totalTrafficWords(), b.stats.totalTrafficWords());
}

TEST_F(EndToEnd, TrafficBreakdownSumsToTotal)
{
    const HomProgram p = lolaCifar();
    Accelerator accel(ChipConfig::craterLake());
    const SimStats s = accel.execute(p).stats;
    EXPECT_EQ(s.totalTrafficWords(),
              s.kshLoadWords + s.inputLoadWords + s.plainLoadWords +
                  s.intermLoadWords + s.intermStoreWords +
                  s.outputStoreWords);
}

TEST(CpuModel, ScalesWithProgramSize)
{
    const CpuKernelRates rates{3e8, 6e8, 6e8};
    const CpuModel cpu(rates);
    const double small = cpu.run(lolaMnist(false));
    const double big = cpu.run(lolaCifar());
    EXPECT_GT(big, 10 * small);
}

TEST(CpuModel, KernelMeasurementSane)
{
    const CpuKernelRates r = measureCpuKernels();
    EXPECT_GT(r.modmulPerSec, 1e7);
    EXPECT_GT(r.nttButterflyPerSec, 1e7);
    EXPECT_GT(r.macPerSec, 1e7);
}

TEST(KeyswitchCost, BoostedBeatsStandardAtHighL)
{
    // Sec 8: boosted keyswitching wins for L > 14.
    const std::size_t n = 1 << 16;
    auto mults = [&](const KswOpCount &k) {
        return k.ntts * 8.0 * n + (k.macVecs + k.mulVecs) * n;
    };
    const double b30 = mults(keyswitchCost(30, 1, n));
    const double s30 = mults(keyswitchCost(30, 30, n));
    EXPECT_LT(b30, s30);
    const double b6 = mults(keyswitchCost(6, 1, n));
    const double s6 = mults(keyswitchCost(6, 6, n));
    EXPECT_LT(s6, b6 * 2); // comparable at low L
}

} // namespace
} // namespace cl

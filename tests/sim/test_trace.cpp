/** Tests for the instruction-level trace/observability layer. */

#include <gtest/gtest.h>

#include <sstream>

#include "compiler/lower.h"
#include "sim/simulator.h"
#include "sim/trace.h"

namespace cl {
namespace {

/** Small but non-trivial workload: a multiply and a rotation exercise
 *  keyswitching, rescale, network transfers, and the memory channel. */
Program
smallProgram(const ChipConfig &cfg)
{
    HomBuilder b("trace-test", 14, 12, [](unsigned) { return 1u; });
    auto a = b.input(12);
    auto c = b.mul(a, a, 2);
    auto d = b.rotate(c, 3);
    b.output(d);
    Lowering lower(cfg);
    return lower.lower(b.take());
}

TEST(Trace, RecordsEveryInstruction)
{
    const ChipConfig cfg = ChipConfig::craterLake();
    const Program p = smallProgram(cfg);
    Simulator sim(cfg);
    TraceRecorder rec;
    sim.run(p, &rec);
    ASSERT_EQ(rec.insts().size(), p.size());
    for (std::size_t i = 0; i < p.size(); ++i) {
        const InstTrace &t = rec.insts()[i];
        EXPECT_EQ(t.id, p.insts[i].id);
        EXPECT_EQ(t.mnemonic, p.insts[i].mnemonic);
        EXPECT_LE(t.issueReady, t.start);
        EXPECT_LE(t.operandsAt, t.start);
        EXPECT_EQ(t.finish, t.start + p.insts[i].duration);
    }
}

TEST(Trace, FuBusyAgreesWithSimStats)
{
    const ChipConfig cfg = ChipConfig::craterLake();
    const Program p = smallProgram(cfg);
    Simulator sim(cfg);
    TraceRecorder rec;
    const SimStats stats = sim.run(p, &rec);
    const auto busy = rec.fuBusyFromTrace();
    for (unsigned t = 0; t < numFuTypes; ++t)
        EXPECT_EQ(busy[t], stats.fuBusy[t])
            << fuTypeName(static_cast<FuType>(t));
    EXPECT_NEAR(rec.fuUtilization(cfg, stats.cycles),
                stats.fuUtilization(cfg), 1e-12);
}

TEST(Trace, DisabledTracingIsBitIdentical)
{
    const ChipConfig cfg = ChipConfig::craterLake();
    const Program p = smallProgram(cfg);
    Simulator sim(cfg);
    TraceRecorder rec;
    const SimStats traced = sim.run(p, &rec);
    const SimStats untraced = sim.run(p);
    const SimStats again = sim.run(p, nullptr);
    EXPECT_EQ(traced, untraced);
    EXPECT_EQ(untraced, again);
}

TEST(Trace, ChromeTraceWellFormed)
{
    const ChipConfig cfg = ChipConfig::craterLake();
    const Program p = smallProgram(cfg);
    Simulator sim(cfg);
    TraceRecorder rec;
    sim.run(p, &rec);
    std::ostringstream os;
    rec.writeChromeTrace(os, cfg);
    const std::string json = os.str();
    EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
    // Track metadata for compute, memory, and network processes.
    EXPECT_NE(json.find("compute (craterlake)"), std::string::npos);
    EXPECT_NE(json.find("memory channel"), std::string::npos);
    EXPECT_NE(json.find("\"pid\":2"), std::string::npos);
    // At least one complete event with stall attribution.
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\"binding\":"), std::string::npos);
    // Brace balance (no truncated emission).
    EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
              std::count(json.begin(), json.end(), '}'));
    EXPECT_EQ(json.back(), '\n');
}

TEST(Trace, BottleneckReportSections)
{
    const ChipConfig cfg = ChipConfig::craterLake();
    const Program p = smallProgram(cfg);
    Simulator sim(cfg);
    TraceRecorder rec;
    const SimStats stats = sim.run(p, &rec);
    std::ostringstream os;
    rec.writeBottleneckReport(os, cfg, stats, 5, 8);
    const std::string report = os.str();
    EXPECT_NE(report.find("Bottleneck report"), std::string::npos);
    EXPECT_NE(report.find("aggregate FU util"), std::string::npos);
    EXPECT_NE(report.find("Issue-stall attribution"), std::string::npos);
    EXPECT_NE(report.find("stalled instructions"), std::string::npos);
    EXPECT_NE(report.find("Utilization over time"), std::string::npos);
}

TEST(Trace, ResidencyEventsCoverLifecycle)
{
    // Reuse the spill/reload program shape: produce a large dirty
    // intermediate, force it out with a hint, reread it.
    ChipConfig cfg = ChipConfig::withRfMB(16);
    const std::uint64_t big = cfg.rfWords() * 6 / 10;
    Program p;
    p.n = 1 << 16;
    const auto in = p.addValue(ValueKind::Input, 16, "in");
    const auto t1 = p.addValue(ValueKind::Intermediate, big, "t1");
    const auto k = p.addValue(ValueKind::KeySwitchHint, big, "k");
    const auto t2 = p.addValue(ValueKind::Intermediate, 16, "t2");
    const auto t3 = p.addValue(ValueKind::Intermediate, 16, "t3");
    auto mk = [&](std::vector<std::uint32_t> r,
                  std::vector<std::uint32_t> w) {
        PolyInst inst;
        inst.mnemonic = "op";
        inst.n = p.n;
        inst.fus = {{FuType::Add, 1, 16}};
        inst.reads = std::move(r);
        inst.writes = std::move(w);
        inst.duration = 10;
        inst.rfPorts = 2;
        p.addInst(std::move(inst));
    };
    mk({in}, {t1});
    mk({k}, {t2});
    mk({t1}, {t3});

    Simulator sim(cfg);
    TraceRecorder rec;
    sim.run(p, &rec);
    unsigned loads = 0, t1_spills = 0, t2_spills = 0, frees = 0;
    for (const ResidencyEvent &e : rec.residency()) {
        switch (e.action) {
          case ResidencyAction::Load:
            ++loads;
            break;
          case ResidencyAction::Spill:
            // Two write-backs: t1 (live, rereads later) and t2
            // (dirty, never read — its bits exist nowhere else).
            if (e.valueId == t1) {
                ++t1_spills;
                EXPECT_EQ(e.words, big);
            } else {
                ++t2_spills;
                EXPECT_EQ(e.valueId, t2);
                EXPECT_EQ(e.words, 16u);
            }
            EXPECT_GT(e.memEnd, e.memStart);
            break;
          case ResidencyAction::DeadFree:
            ++frees;
            break;
          default:
            break;
        }
    }
    EXPECT_EQ(loads, 3u); // in, k, t1 reload
    EXPECT_EQ(t1_spills, 1u);
    EXPECT_EQ(t2_spills, 1u);
    EXPECT_GE(frees, 1u); // t1 freed after its last use
}

TEST(Trace, StreamedOperandsEmitStreamEvents)
{
    ChipConfig cfg = ChipConfig::craterLake();
    cfg.rfBytes = 3584; // 1024 words: a 2560-word operand never fits
    Program p;
    p.n = 1 << 16;
    const auto S = p.addValue(ValueKind::Input, 2560, "S");
    const auto o = p.addValue(ValueKind::Intermediate, 256, "o");
    PolyInst inst;
    inst.mnemonic = "use";
    inst.n = p.n;
    inst.fus = {{FuType::Add, 1, 16}};
    inst.reads = {S};
    inst.writes = {o};
    inst.duration = 10;
    inst.rfPorts = 2;
    p.addInst(std::move(inst));

    Simulator sim(cfg);
    TraceRecorder rec;
    sim.run(p, &rec);
    bool streamed = false;
    for (const ResidencyEvent &e : rec.residency())
        streamed |= e.action == ResidencyAction::Stream && e.valueId == S;
    EXPECT_TRUE(streamed);
}

TEST(Trace, StallAttributionFindsOperandWait)
{
    // A dependent chain with a long producer: the consumer's binding
    // resource must be the operand wait, not an FU.
    Program p;
    p.n = 1 << 16;
    const auto in = p.addValue(ValueKind::Input, 1024, "in");
    const auto t = p.addValue(ValueKind::Intermediate, 1024, "t");
    const auto o = p.addValue(ValueKind::Intermediate, 1024, "o");
    auto mk = [&](std::vector<std::uint32_t> r,
                  std::vector<std::uint32_t> w, std::uint64_t dur) {
        PolyInst inst;
        inst.mnemonic = "op";
        inst.n = p.n;
        inst.fus = {{FuType::Add, 1, 16}};
        inst.reads = std::move(r);
        inst.writes = std::move(w);
        inst.duration = dur;
        inst.rfPorts = 2;
        p.addInst(std::move(inst));
    };
    mk({in}, {t}, 10000);
    mk({t}, {o}, 10);

    Simulator sim(ChipConfig::craterLake());
    TraceRecorder rec;
    sim.run(p, &rec);
    ASSERT_EQ(rec.insts().size(), 2u);
    const InstTrace &consumer = rec.insts()[1];
    EXPECT_EQ(consumer.binding, StallReason::Operand);
    EXPECT_GE(consumer.stall(), 9000u);
}

} // namespace
} // namespace cl

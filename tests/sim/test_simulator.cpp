/** Tests for the cycle-level simulator's resource and memory models. */

#include <gtest/gtest.h>

#include "sim/simulator.h"

namespace cl {
namespace {

Program
singleInstProgram(std::uint64_t duration, unsigned fu_units = 1)
{
    Program p;
    p.name = "single";
    p.n = 1 << 16;
    const auto in = p.addValue(ValueKind::Input, 1 << 20, "in");
    const auto out = p.addValue(ValueKind::Output, 1 << 20, "out");
    PolyInst inst;
    inst.mnemonic = "op";
    inst.n = p.n;
    inst.fus = {{FuType::Add, fu_units, 1 << 20}};
    inst.reads = {in};
    inst.writes = {out};
    inst.duration = duration;
    inst.rfPorts = 2;
    p.addInst(std::move(inst));
    return p;
}

TEST(Simulator, SingleInstructionLatency)
{
    const ChipConfig cfg = ChipConfig::craterLake();
    Simulator sim(cfg);
    auto stats = sim.run(singleInstProgram(1000));
    // Total time = input load + compute (+ output store on the
    // decoupled memory timeline).
    EXPECT_GE(stats.cycles, 1000u);
    EXPECT_EQ(stats.fuBusy[static_cast<unsigned>(FuType::Add)], 1000u);
    EXPECT_EQ(stats.inputLoadWords, 1u << 20);
    EXPECT_EQ(stats.outputStoreWords, 1u << 20);
}

TEST(Simulator, IndependentOpsOverlapOnDifferentUnits)
{
    Program p;
    p.n = 1 << 16;
    const auto in = p.addValue(ValueKind::Input, 1024, "in");
    for (int i = 0; i < 2; ++i) {
        const auto out = p.addValue(ValueKind::Intermediate, 1024, "t");
        PolyInst inst;
        inst.mnemonic = "op";
        inst.n = p.n;
        inst.fus = {{FuType::Add, 1, 1024}};
        inst.reads = {in};
        inst.writes = {out};
        inst.duration = 10000;
        inst.rfPorts = 2;
        p.addInst(std::move(inst));
    }
    ChipConfig cfg = ChipConfig::craterLake(); // 5 add units
    Simulator sim(cfg);
    auto stats = sim.run(p);
    // Two independent 10000-cycle ops on 5 units: ~10000, not 20000.
    EXPECT_LT(stats.cycles, 15000u);
}

TEST(Simulator, SameUnitSerializes)
{
    Program p;
    p.n = 1 << 16;
    const auto in = p.addValue(ValueKind::Input, 1024, "in");
    for (int i = 0; i < 3; ++i) {
        const auto out = p.addValue(ValueKind::Intermediate, 1024, "t");
        PolyInst inst;
        inst.mnemonic = "crb";
        inst.n = p.n;
        inst.fus = {{FuType::Crb, 1, 1024}}; // only one CRB exists
        inst.reads = {in};
        inst.writes = {out};
        inst.duration = 10000;
        inst.rfPorts = 2;
        p.addInst(std::move(inst));
    }
    Simulator sim(ChipConfig::craterLake());
    auto stats = sim.run(p);
    EXPECT_GE(stats.cycles, 30000u);
}

TEST(Simulator, PortPressureThrottles)
{
    // Ops needing 12 ports cannot overlap on a 12-port register file
    // even though FU units are available.
    Program p;
    p.n = 1 << 16;
    const auto in = p.addValue(ValueKind::Input, 1024, "in");
    for (int i = 0; i < 2; ++i) {
        const auto out = p.addValue(ValueKind::Intermediate, 1024, "t");
        PolyInst inst;
        inst.mnemonic = "wide";
        inst.n = p.n;
        inst.fus = {{FuType::Add, 2, 1024}};
        inst.reads = {in};
        inst.writes = {out};
        inst.duration = 10000;
        inst.rfPorts = 12;
        p.addInst(std::move(inst));
    }
    Simulator sim(ChipConfig::craterLake());
    auto stats = sim.run(p);
    EXPECT_GE(stats.cycles, 20000u);
}

TEST(Simulator, MissingFuIsFatal)
{
    Program p = singleInstProgram(100);
    p.insts[0].fus = {{FuType::Crb, 1, 100}};
    ChipConfig cfg = ChipConfig::noCrbNoChain();
    Simulator sim(cfg);
    EXPECT_DEATH(sim.run(p), "absent FU");
}

TEST(Simulator, ReusedOperandLoadsOnce)
{
    Program p;
    p.n = 1 << 16;
    const auto ksh =
        p.addValue(ValueKind::KeySwitchHint, 1 << 20, "ksh");
    for (int i = 0; i < 5; ++i) {
        const auto out = p.addValue(ValueKind::Intermediate, 1024, "t");
        PolyInst inst;
        inst.mnemonic = "use";
        inst.n = p.n;
        inst.fus = {{FuType::Multiply, 1, 1024}};
        inst.reads = {ksh};
        inst.writes = {out};
        inst.duration = 100;
        inst.rfPorts = 2;
        p.addInst(std::move(inst));
    }
    Simulator sim(ChipConfig::craterLake());
    auto stats = sim.run(p);
    EXPECT_EQ(stats.kshLoadWords, 1u << 20); // loaded exactly once
}

TEST(Simulator, CapacityEvictionCausesReload)
{
    // Two large hints that cannot both fit alternate -> reloads.
    ChipConfig cfg = ChipConfig::withRfMB(16);
    const std::uint64_t big = cfg.rfWords() * 6 / 10;
    Program p;
    p.n = 1 << 16;
    const auto a = p.addValue(ValueKind::KeySwitchHint, big, "a");
    const auto b = p.addValue(ValueKind::KeySwitchHint, big, "b");
    for (int i = 0; i < 4; ++i) {
        const auto out = p.addValue(ValueKind::Intermediate, 16, "t");
        PolyInst inst;
        inst.mnemonic = "use";
        inst.n = p.n;
        inst.fus = {{FuType::Multiply, 1, 16}};
        inst.reads = {i % 2 == 0 ? a : b};
        inst.writes = {out};
        inst.duration = 10;
        inst.rfPorts = 2;
        p.addInst(std::move(inst));
    }
    Simulator sim(cfg);
    auto stats = sim.run(p);
    EXPECT_EQ(stats.kshLoadWords, 4 * big); // reloaded every time
}

TEST(Simulator, DirtyIntermediateSpills)
{
    // A live intermediate evicted under pressure must be written back.
    ChipConfig cfg = ChipConfig::withRfMB(16);
    const std::uint64_t big = cfg.rfWords() * 6 / 10;
    Program p;
    p.n = 1 << 16;
    const auto in = p.addValue(ValueKind::Input, 16, "in");
    const auto t1 = p.addValue(ValueKind::Intermediate, big, "t1");
    const auto k = p.addValue(ValueKind::KeySwitchHint, big, "k");
    const auto t2 = p.addValue(ValueKind::Intermediate, 16, "t2");
    const auto t3 = p.addValue(ValueKind::Intermediate, 16, "t3");

    PolyInst produce;
    produce.mnemonic = "produce";
    produce.n = p.n;
    produce.fus = {{FuType::Add, 1, 16}};
    produce.reads = {in};
    produce.writes = {t1};
    produce.duration = 10;
    p.addInst(std::move(produce));

    PolyInst other; // forces t1 out
    other.mnemonic = "other";
    other.n = p.n;
    other.fus = {{FuType::Add, 1, 16}};
    other.reads = {k};
    other.writes = {t2};
    other.duration = 10;
    p.addInst(std::move(other));

    PolyInst consume; // t1 reloaded
    consume.mnemonic = "consume";
    consume.n = p.n;
    consume.fus = {{FuType::Add, 1, 16}};
    consume.reads = {t1};
    consume.writes = {t3};
    consume.duration = 10;
    p.addInst(std::move(consume));

    Simulator sim(cfg);
    auto stats = sim.run(p);
    EXPECT_EQ(stats.intermStoreWords, big);
    EXPECT_EQ(stats.intermLoadWords, big);
}

TEST(Simulator, NetworkBandwidthLimits)
{
    // An op moving many network words is stretched by network time.
    Program p;
    p.n = 1 << 16;
    const auto in = p.addValue(ValueKind::Input, 1024, "in");
    const auto out = p.addValue(ValueKind::Intermediate, 1024, "out");
    PolyInst inst;
    inst.mnemonic = "ntt";
    inst.n = p.n;
    inst.fus = {{FuType::Ntt, 1, 1024}};
    inst.reads = {in};
    inst.writes = {out};
    inst.duration = 10;
    inst.networkWords = 1 << 24;
    p.addInst(std::move(inst));
    // A second network op must wait for the first transfer.
    const auto out2 = p.addValue(ValueKind::Intermediate, 1024, "out2");
    PolyInst inst2 = p.insts[0];
    inst2.writes = {out2};
    inst2.id = 0;
    p.addInst(std::move(inst2));

    ChipConfig cfg = ChipConfig::craterLake();
    Simulator sim(cfg);
    auto stats = sim.run(p);
    const auto net_cycles = static_cast<std::uint64_t>(
        (1 << 24) / cfg.networkWordsPerCycle());
    EXPECT_GE(stats.cycles, net_cycles);
    EXPECT_EQ(stats.networkWords, 2u << 24);
}

TEST(Simulator, CrossbarInflatesTraffic)
{
    Program p;
    p.n = 1 << 16;
    const auto in = p.addValue(ValueKind::Input, 1024, "in");
    const auto out = p.addValue(ValueKind::Intermediate, 1024, "out");
    PolyInst inst;
    inst.mnemonic = "ntt";
    inst.n = p.n;
    inst.fus = {{FuType::Ntt, 1, 1024}};
    inst.reads = {in};
    inst.writes = {out};
    inst.duration = 10;
    inst.networkWords = 1000000;
    p.addInst(std::move(inst));

    Simulator fixed(ChipConfig::craterLake());
    Simulator xbar(ChipConfig::crossbarNetwork());
    const auto s1 = fixed.run(p);
    const auto s2 = xbar.run(p);
    // Residue-polynomial tiling incurs 2.4x the traffic (Sec 4.3).
    EXPECT_NEAR(static_cast<double>(s2.networkWords) / s1.networkWords,
                2.4, 0.01);
}

TEST(Simulator, EnergyAccountingConsistent)
{
    const ChipConfig cfg = ChipConfig::craterLake();
    Simulator sim(cfg);
    auto stats = sim.run(singleInstProgram(1000));
    const EnergyBreakdown e = stats.energy(cfg);
    EXPECT_GT(e.total(), 0.0);
    EXPECT_GT(e.hbm, 0.0);
    EXPECT_GT(stats.avgPowerWatts(cfg), 0.0);
}

} // namespace
} // namespace cl

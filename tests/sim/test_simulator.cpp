/** Tests for the cycle-level simulator's resource and memory models. */

#include <gtest/gtest.h>

#include "sim/simulator.h"

namespace cl {
namespace {

Program
singleInstProgram(std::uint64_t duration, unsigned fu_units = 1)
{
    Program p;
    p.name = "single";
    p.n = 1 << 16;
    const auto in = p.addValue(ValueKind::Input, 1 << 20, "in");
    const auto out = p.addValue(ValueKind::Output, 1 << 20, "out");
    PolyInst inst;
    inst.mnemonic = "op";
    inst.n = p.n;
    inst.fus = {{FuType::Add, fu_units, 1 << 20}};
    inst.reads = {in};
    inst.writes = {out};
    inst.duration = duration;
    inst.rfPorts = 2;
    p.addInst(std::move(inst));
    return p;
}

TEST(Simulator, SingleInstructionLatency)
{
    const ChipConfig cfg = ChipConfig::craterLake();
    Simulator sim(cfg);
    auto stats = sim.run(singleInstProgram(1000));
    // Total time = input load + compute (+ output store on the
    // decoupled memory timeline).
    EXPECT_GE(stats.cycles, 1000u);
    EXPECT_EQ(stats.fuBusy[static_cast<unsigned>(FuType::Add)], 1000u);
    EXPECT_EQ(stats.inputLoadWords, 1u << 20);
    EXPECT_EQ(stats.outputStoreWords, 1u << 20);
}

TEST(Simulator, IndependentOpsOverlapOnDifferentUnits)
{
    Program p;
    p.n = 1 << 16;
    const auto in = p.addValue(ValueKind::Input, 1024, "in");
    for (int i = 0; i < 2; ++i) {
        const auto out = p.addValue(ValueKind::Intermediate, 1024, "t");
        PolyInst inst;
        inst.mnemonic = "op";
        inst.n = p.n;
        inst.fus = {{FuType::Add, 1, 1024}};
        inst.reads = {in};
        inst.writes = {out};
        inst.duration = 10000;
        inst.rfPorts = 2;
        p.addInst(std::move(inst));
    }
    ChipConfig cfg = ChipConfig::craterLake(); // 5 add units
    Simulator sim(cfg);
    auto stats = sim.run(p);
    // Two independent 10000-cycle ops on 5 units: ~10000, not 20000.
    EXPECT_LT(stats.cycles, 15000u);
}

TEST(Simulator, SameUnitSerializes)
{
    Program p;
    p.n = 1 << 16;
    const auto in = p.addValue(ValueKind::Input, 1024, "in");
    for (int i = 0; i < 3; ++i) {
        const auto out = p.addValue(ValueKind::Intermediate, 1024, "t");
        PolyInst inst;
        inst.mnemonic = "crb";
        inst.n = p.n;
        inst.fus = {{FuType::Crb, 1, 1024}}; // only one CRB exists
        inst.reads = {in};
        inst.writes = {out};
        inst.duration = 10000;
        inst.rfPorts = 2;
        p.addInst(std::move(inst));
    }
    Simulator sim(ChipConfig::craterLake());
    auto stats = sim.run(p);
    EXPECT_GE(stats.cycles, 30000u);
}

TEST(Simulator, PortPressureThrottles)
{
    // Ops needing 12 ports cannot overlap on a 12-port register file
    // even though FU units are available.
    Program p;
    p.n = 1 << 16;
    const auto in = p.addValue(ValueKind::Input, 1024, "in");
    for (int i = 0; i < 2; ++i) {
        const auto out = p.addValue(ValueKind::Intermediate, 1024, "t");
        PolyInst inst;
        inst.mnemonic = "wide";
        inst.n = p.n;
        inst.fus = {{FuType::Add, 2, 1024}};
        inst.reads = {in};
        inst.writes = {out};
        inst.duration = 10000;
        inst.rfPorts = 12;
        p.addInst(std::move(inst));
    }
    Simulator sim(ChipConfig::craterLake());
    auto stats = sim.run(p);
    EXPECT_GE(stats.cycles, 20000u);
}

TEST(Simulator, MissingFuIsFatal)
{
    Program p = singleInstProgram(100);
    p.insts[0].fus = {{FuType::Crb, 1, 100}};
    ChipConfig cfg = ChipConfig::noCrbNoChain();
    Simulator sim(cfg);
    EXPECT_DEATH(sim.run(p), "absent FU");
}

TEST(Simulator, ReusedOperandLoadsOnce)
{
    Program p;
    p.n = 1 << 16;
    const auto ksh =
        p.addValue(ValueKind::KeySwitchHint, 1 << 20, "ksh");
    for (int i = 0; i < 5; ++i) {
        const auto out = p.addValue(ValueKind::Intermediate, 1024, "t");
        PolyInst inst;
        inst.mnemonic = "use";
        inst.n = p.n;
        inst.fus = {{FuType::Multiply, 1, 1024}};
        inst.reads = {ksh};
        inst.writes = {out};
        inst.duration = 100;
        inst.rfPorts = 2;
        p.addInst(std::move(inst));
    }
    Simulator sim(ChipConfig::craterLake());
    auto stats = sim.run(p);
    EXPECT_EQ(stats.kshLoadWords, 1u << 20); // loaded exactly once
}

TEST(Simulator, CapacityEvictionCausesReload)
{
    // Two large hints that cannot both fit alternate -> reloads.
    ChipConfig cfg = ChipConfig::withRfMB(16);
    const std::uint64_t big = cfg.rfWords() * 6 / 10;
    Program p;
    p.n = 1 << 16;
    const auto a = p.addValue(ValueKind::KeySwitchHint, big, "a");
    const auto b = p.addValue(ValueKind::KeySwitchHint, big, "b");
    for (int i = 0; i < 4; ++i) {
        const auto out = p.addValue(ValueKind::Intermediate, 16, "t");
        PolyInst inst;
        inst.mnemonic = "use";
        inst.n = p.n;
        inst.fus = {{FuType::Multiply, 1, 16}};
        inst.reads = {i % 2 == 0 ? a : b};
        inst.writes = {out};
        inst.duration = 10;
        inst.rfPorts = 2;
        p.addInst(std::move(inst));
    }
    Simulator sim(cfg);
    auto stats = sim.run(p);
    EXPECT_EQ(stats.kshLoadWords, 4 * big); // reloaded every time
}

TEST(Simulator, DirtyIntermediateSpills)
{
    // A live intermediate evicted under pressure must be written back.
    ChipConfig cfg = ChipConfig::withRfMB(16);
    const std::uint64_t big = cfg.rfWords() * 6 / 10;
    Program p;
    p.n = 1 << 16;
    const auto in = p.addValue(ValueKind::Input, 16, "in");
    const auto t1 = p.addValue(ValueKind::Intermediate, big, "t1");
    const auto k = p.addValue(ValueKind::KeySwitchHint, big, "k");
    const auto t2 = p.addValue(ValueKind::Intermediate, 16, "t2");
    const auto t3 = p.addValue(ValueKind::Intermediate, 16, "t3");

    PolyInst produce;
    produce.mnemonic = "produce";
    produce.n = p.n;
    produce.fus = {{FuType::Add, 1, 16}};
    produce.reads = {in};
    produce.writes = {t1};
    produce.duration = 10;
    p.addInst(std::move(produce));

    PolyInst other; // forces t1 out
    other.mnemonic = "other";
    other.n = p.n;
    other.fus = {{FuType::Add, 1, 16}};
    other.reads = {k};
    other.writes = {t2};
    other.duration = 10;
    p.addInst(std::move(other));

    PolyInst consume; // t1 reloaded
    consume.mnemonic = "consume";
    consume.n = p.n;
    consume.fus = {{FuType::Add, 1, 16}};
    consume.reads = {t1};
    consume.writes = {t3};
    consume.duration = 10;
    p.addInst(std::move(consume));

    Simulator sim(cfg);
    auto stats = sim.run(p);
    // t1 spills when k arrives; t2 — dirty and never read again —
    // is also written back when t1 is reloaded (its bits exist
    // nowhere off-chip, so dropping it would discard a result).
    EXPECT_EQ(stats.intermStoreWords, big + 16);
    EXPECT_EQ(stats.intermLoadWords, big);
}

TEST(Simulator, NetworkBandwidthLimits)
{
    // An op moving many network words is stretched by network time.
    Program p;
    p.n = 1 << 16;
    const auto in = p.addValue(ValueKind::Input, 1024, "in");
    const auto out = p.addValue(ValueKind::Intermediate, 1024, "out");
    PolyInst inst;
    inst.mnemonic = "ntt";
    inst.n = p.n;
    inst.fus = {{FuType::Ntt, 1, 1024}};
    inst.reads = {in};
    inst.writes = {out};
    inst.duration = 10;
    inst.networkWords = 1 << 24;
    p.addInst(std::move(inst));
    // A second network op must wait for the first transfer.
    const auto out2 = p.addValue(ValueKind::Intermediate, 1024, "out2");
    PolyInst inst2 = p.insts[0];
    inst2.writes = {out2};
    inst2.id = 0;
    p.addInst(std::move(inst2));

    ChipConfig cfg = ChipConfig::craterLake();
    Simulator sim(cfg);
    auto stats = sim.run(p);
    const auto net_cycles = static_cast<std::uint64_t>(
        (1 << 24) / cfg.networkWordsPerCycle());
    EXPECT_GE(stats.cycles, net_cycles);
    EXPECT_EQ(stats.networkWords, 2u << 24);
}

TEST(Simulator, CrossbarInflatesTraffic)
{
    Program p;
    p.n = 1 << 16;
    const auto in = p.addValue(ValueKind::Input, 1024, "in");
    const auto out = p.addValue(ValueKind::Intermediate, 1024, "out");
    PolyInst inst;
    inst.mnemonic = "ntt";
    inst.n = p.n;
    inst.fus = {{FuType::Ntt, 1, 1024}};
    inst.reads = {in};
    inst.writes = {out};
    inst.duration = 10;
    inst.networkWords = 1000000;
    p.addInst(std::move(inst));

    Simulator fixed(ChipConfig::craterLake());
    Simulator xbar(ChipConfig::crossbarNetwork());
    const auto s1 = fixed.run(p);
    const auto s2 = xbar.run(p);
    // Residue-polynomial tiling incurs 2.4x the traffic (Sec 4.3).
    EXPECT_NEAR(static_cast<double>(s2.networkWords) / s1.networkWords,
                2.4, 0.01);
}

// --- Belady eviction order with streamed operands --------------------

namespace {

/** Config with an exactly-known register file and memory bandwidth:
 *  capacity rf_words (wordBytes = 3.5) and 256 words/cycle, so every
 *  transfer of w words takes floor(w/256)+1 cycles. */
ChipConfig
exactConfig(std::uint64_t rf_words)
{
    ChipConfig cfg = ChipConfig::craterLake();
    cfg.rfBytes = static_cast<std::uint64_t>(rf_words * 3.5);
    cfg.hbmPhys = 2;
    cfg.hbmGBpsPerPhy = 448.0; // 896 B/cy / 3.5 B = 256 words/cy
    cfg.freqGhz = 1.0;
    return cfg;
}

PolyInst
simpleInst(std::vector<std::uint32_t> reads,
           std::vector<std::uint32_t> writes, const char *mnemonic)
{
    PolyInst inst;
    inst.mnemonic = mnemonic;
    inst.n = 1 << 16;
    inst.fus = {{FuType::Add, 1, 16}};
    inst.reads = std::move(reads);
    inst.writes = std::move(writes);
    inst.duration = 10;
    inst.rfPorts = 2;
    return inst;
}

} // namespace

TEST(Simulator, BeladyStreamedReadAdvancesNextUse)
{
    // A value that was STREAMED (read while not resident) must still
    // consume that use: when it later becomes resident again, its
    // Belady key has to point at a future consumer, not a past one.
    // Otherwise the eviction order inverts — the stale entry looks
    // maximally urgent and the replacement policy evicts a value with
    // a genuinely nearer use instead.
    //
    // 2000-word register file. Values (creation order):
    //   F: Input, 900 w, consumers {0, 1, 5}
    //   G: Input, 800 w, consumers {0, 1, 2, 4}
    //   S: Intermediate, 600 w, produced by i0, rewritten in place by
    //      i2 (which does NOT read it), consumers {1, 6}
    //   A: Input, 700 w, consumers {3}
    //
    //   i0 reads {F,G} writes {S}: F, G load (1700 w); S stream-stores.
    //   i1 reads {S,F,G}:          S streams (F, G pinned).
    //   i2 reads {G}  writes {S}:  F evicted; S inserted. Its key is
    //                              consumer 6 if i1's streamed use was
    //                              consumed — stale consumer 1 if not.
    //   i3 reads {A}:              room for A needs one eviction.
    //                                fixed: S (next use 6) spills;
    //                                buggy: stale S looks urgent, G
    //                                (next use 4) is evicted instead.
    //   i4 reads {G}, i5 reads {F}, i6 reads {S}: pay for the choice.
    Program p;
    p.n = 1 << 16;
    const auto F = p.addValue(ValueKind::Input, 900, "F");
    const auto G = p.addValue(ValueKind::Input, 800, "G");
    const auto S = p.addValue(ValueKind::Intermediate, 600, "S");
    const auto A = p.addValue(ValueKind::Input, 700, "A");
    p.addInst(simpleInst({F, G}, {S}, "i0"));
    p.addInst(simpleInst({S, F, G}, {}, "i1"));
    p.addInst(simpleInst({G}, {S}, "i2"));
    p.addInst(simpleInst({A}, {}, "i3"));
    p.addInst(simpleInst({G}, {}, "i4"));
    p.addInst(simpleInst({F}, {}, "i5"));
    p.addInst(simpleInst({S}, {}, "i6"));

    Simulator sim(exactConfig(2000));
    const SimStats stats = sim.run(p);
    // Fixed eviction order: F+G+A loaded once plus one F reload
    // (buggy order reloads G and A too: 4100 input words).
    EXPECT_EQ(stats.inputLoadWords, 3300u);
    // S: streamed once at i1, reloaded once at i6 (buggy: 600).
    EXPECT_EQ(stats.intermLoadWords, 1200u);
    // S: stream-stored at i0, spilled live at i3 (buggy: 600).
    EXPECT_EQ(stats.intermStoreWords, 1200u);
}

// --- Deterministic pins for every traffic counter --------------------
//
// Each test fixes an exact configuration (see exactConfig) and a
// hand-built program whose timeline is computed in the comments, then
// pins `cycles` and the full SimStats counter set so that any change
// to issue, residency, or memory accounting shows up as a diff here.

TEST(Simulator, RegressionPinOutputStore)
{
    // in(2560 w) loads in 11 cy; compute 1000 cy; output store starts
    // at finish (1011) and holds the channel 11 cy -> cycles 1022.
    Program p;
    p.n = 1 << 16;
    const auto in = p.addValue(ValueKind::Input, 2560, "in");
    const auto out = p.addValue(ValueKind::Output, 2560, "out");
    PolyInst inst = simpleInst({in}, {out}, "op");
    inst.duration = 1000;
    p.addInst(std::move(inst));

    Simulator sim(exactConfig(8192));
    const SimStats stats = sim.run(p);
    EXPECT_EQ(stats.cycles, 1022u);
    EXPECT_EQ(stats.inputLoadWords, 2560u);
    EXPECT_EQ(stats.outputStoreWords, 2560u);
    EXPECT_EQ(stats.intermLoadWords, 0u);
    EXPECT_EQ(stats.intermStoreWords, 0u);
    EXPECT_EQ(stats.kshLoadWords, 0u);
    EXPECT_EQ(stats.plainLoadWords, 0u);
    EXPECT_EQ(stats.memBusyCycles, 22u);
    EXPECT_EQ(stats.fuBusy[static_cast<unsigned>(FuType::Add)], 1000u);
    EXPECT_EQ(stats.networkWords, 0u);
}

TEST(Simulator, RegressionPinSpillReload)
{
    // 4096-word register file. i0 loads in(256, 2 cy), produces
    // t1(2560, dirty). i1 needs k(2560): evicts in (clean) then
    // spills t1 (2-13), loads k (13-24). i2 rereads t1: spills t2 —
    // dirty and never consumed, so its bits must be written back
    // (24-26) — evicts the exhausted k (clean), reloads t1 (26-37).
    // Timeline: ready 24 at i1, ready 37 at i2; finish 47.
    Program p;
    p.n = 1 << 16;
    const auto in = p.addValue(ValueKind::Input, 256, "in");
    const auto t1 = p.addValue(ValueKind::Intermediate, 2560, "t1");
    const auto k = p.addValue(ValueKind::KeySwitchHint, 2560, "k");
    const auto t2 = p.addValue(ValueKind::Intermediate, 256, "t2");
    const auto t3 = p.addValue(ValueKind::Intermediate, 256, "t3");
    p.addInst(simpleInst({in}, {t1}, "produce"));
    p.addInst(simpleInst({k}, {t2}, "other"));
    p.addInst(simpleInst({t1}, {t3}, "consume"));

    Simulator sim(exactConfig(4096));
    const SimStats stats = sim.run(p);
    EXPECT_EQ(stats.cycles, 47u);
    EXPECT_EQ(stats.inputLoadWords, 256u);
    EXPECT_EQ(stats.kshLoadWords, 2560u);
    EXPECT_EQ(stats.intermStoreWords, 2816u); // t1 + t2 spills
    EXPECT_EQ(stats.intermLoadWords, 2560u);  // t1 reload
    EXPECT_EQ(stats.outputStoreWords, 0u);
    EXPECT_EQ(stats.memBusyCycles, 37u);
    EXPECT_EQ(stats.fuBusy[static_cast<unsigned>(FuType::Add)], 30u);
}

TEST(Simulator, RegressionPinStreaming)
{
    // 1024-word register file, 2560-word operand: never fits, streams
    // on both uses (11 cy each on the memory channel). use1's
    // make_room empties the RF before falling back to streaming,
    // which flushes o0 — dirty and never read, so written back
    // (256 words, 2 cy) rather than silently dropped.
    Program p;
    p.n = 1 << 16;
    const auto S = p.addValue(ValueKind::Input, 2560, "S");
    const auto o0 = p.addValue(ValueKind::Intermediate, 256, "o0");
    const auto o1 = p.addValue(ValueKind::Intermediate, 256, "o1");
    p.addInst(simpleInst({S}, {o0}, "use0"));
    p.addInst(simpleInst({S}, {o1}, "use1"));

    Simulator sim(exactConfig(1024));
    const SimStats stats = sim.run(p);
    EXPECT_EQ(stats.cycles, 34u);
    EXPECT_EQ(stats.inputLoadWords, 5120u); // streamed twice
    EXPECT_EQ(stats.intermLoadWords, 0u);
    EXPECT_EQ(stats.intermStoreWords, 256u); // o0 written back
    EXPECT_EQ(stats.outputStoreWords, 0u);
    EXPECT_EQ(stats.memBusyCycles, 24u);
}

TEST(Simulator, RegressionPinDeadDirtyWriteback)
{
    // A dirty intermediate with *no* remaining use still owns the
    // only copy of its bits: evicting it must write it back, not
    // silently drop it. (The original make_room skipped the
    // writeback whenever next_use == noUse, so a program whose
    // result was computed but never re-read lost the data and
    // under-charged store traffic.)
    //
    // 4096-word RF. i0 loads in(256, 0-2), produces t1(2560, dirty,
    // never read again). i1 needs k(2560): in alone is too small to
    // free, so t1 is the victim — spilled 2-13, k loads 13-24,
    // ready 24, finish 34.
    Program p;
    p.n = 1 << 16;
    const auto in = p.addValue(ValueKind::Input, 256, "in");
    const auto t1 = p.addValue(ValueKind::Intermediate, 2560, "t1");
    const auto k = p.addValue(ValueKind::KeySwitchHint, 2560, "k");
    const auto t2 = p.addValue(ValueKind::Intermediate, 256, "t2");
    p.addInst(simpleInst({in}, {t1}, "produce"));
    p.addInst(simpleInst({k}, {t2}, "other"));

    Simulator sim(exactConfig(4096));
    const SimStats stats = sim.run(p);
    EXPECT_EQ(stats.cycles, 34u);
    EXPECT_EQ(stats.inputLoadWords, 256u);
    EXPECT_EQ(stats.kshLoadWords, 2560u);
    EXPECT_EQ(stats.intermStoreWords, 2560u); // t1 written back
    EXPECT_EQ(stats.intermLoadWords, 0u);
    EXPECT_EQ(stats.memBusyCycles, 24u);
}

TEST(Simulator, RegressionPinInPlaceRmw)
{
    // v is produced, rewritten in place (read+write), then consumed
    // into an output. No spill traffic; one input load, one output
    // store, and a dead-free of v at its last use.
    Program p;
    p.n = 1 << 16;
    const auto in = p.addValue(ValueKind::Input, 256, "in");
    const auto v = p.addValue(ValueKind::Intermediate, 256, "v");
    const auto o = p.addValue(ValueKind::Output, 256, "o");
    p.addInst(simpleInst({in}, {v}, "produce"));
    p.addInst(simpleInst({v}, {v}, "rmw"));
    p.addInst(simpleInst({v}, {o}, "store"));

    Simulator sim(exactConfig(4096));
    const SimStats stats = sim.run(p);
    EXPECT_EQ(stats.cycles, 34u);
    EXPECT_EQ(stats.inputLoadWords, 256u);
    EXPECT_EQ(stats.outputStoreWords, 256u);
    EXPECT_EQ(stats.intermLoadWords, 0u);
    EXPECT_EQ(stats.intermStoreWords, 0u);
    EXPECT_EQ(stats.memBusyCycles, 4u);
    EXPECT_EQ(stats.fuBusy[static_cast<unsigned>(FuType::Add)], 30u);
}

TEST(Simulator, RegressionPinSpilledProducerGatesConsumer)
{
    // Same shape as RegressionPinSpillReload but the producer runs
    // 1000 cycles. Its result t1 is spilled (memory timeline, cycles
    // 2-13) and reloaded (26-37, after t2's writeback) long before
    // the producer finishes at 1002 — the transfers only move the
    // *space*; the data exists at the producer's finish. The consumer
    // must start at max(reload done, producer finish) = 1002, not 37.
    // (Before the fix, ensure_resident returned the pure
    // memory-timeline time and the consumer read its operand
    // hundreds of cycles before it was written.)
    Program p;
    p.n = 1 << 16;
    const auto in = p.addValue(ValueKind::Input, 256, "in");
    const auto t1 = p.addValue(ValueKind::Intermediate, 2560, "t1");
    const auto k = p.addValue(ValueKind::KeySwitchHint, 2560, "k");
    const auto t2 = p.addValue(ValueKind::Intermediate, 256, "t2");
    const auto t3 = p.addValue(ValueKind::Intermediate, 256, "t3");
    PolyInst produce = simpleInst({in}, {t1}, "produce");
    produce.duration = 1000;
    p.addInst(std::move(produce));
    p.addInst(simpleInst({k}, {t2}, "other"));
    p.addInst(simpleInst({t1}, {t3}, "consume"));

    Simulator sim(exactConfig(4096));
    const SimStats stats = sim.run(p);
    // consume: operands at max(37, 1002) = 1002, finish 1012.
    EXPECT_EQ(stats.cycles, 1012u);
    // Traffic is unchanged from the short-producer variant.
    EXPECT_EQ(stats.inputLoadWords, 256u);
    EXPECT_EQ(stats.kshLoadWords, 2560u);
    EXPECT_EQ(stats.intermStoreWords, 2816u);
    EXPECT_EQ(stats.intermLoadWords, 2560u);
    EXPECT_EQ(stats.memBusyCycles, 37u);
    EXPECT_EQ(stats.fuBusy[static_cast<unsigned>(FuType::Add)], 1020u);
}

TEST(Simulator, RegressionPinDuplicateReadChargedOnce)
{
    // An operand listed twice in one instruction's reads is one
    // operand: it occupies the memory channel (and the traffic
    // counters) once, not once per mention. S (2560 w) never fits the
    // 1024-word register file, so i1's double mention streams it:
    // stream-store holds the channel 2-13, one streamed reload 13-24,
    // start max(24, producer finish 12) = 24, finish 34. (Before the
    // fix the second mention streamed S again: 5120 intermediate load
    // words and 11 extra cycles.)
    Program p;
    p.n = 1 << 16;
    const auto in = p.addValue(ValueKind::Input, 256, "in");
    const auto S = p.addValue(ValueKind::Intermediate, 2560, "S");
    const auto o = p.addValue(ValueKind::Intermediate, 256, "o");
    p.addInst(simpleInst({in}, {S}, "produce"));
    p.addInst(simpleInst({S, S}, {o}, "square"));

    Simulator sim(exactConfig(1024));
    const SimStats stats = sim.run(p);
    EXPECT_EQ(stats.intermLoadWords, 2560u);
    EXPECT_EQ(stats.intermStoreWords, 2560u);
    EXPECT_EQ(stats.inputLoadWords, 256u);
    EXPECT_EQ(stats.memBusyCycles, 24u);
    EXPECT_EQ(stats.cycles, 34u);
}

TEST(Simulator, SameTypeFuUsesCompose)
{
    // An instruction may split one FU class across several FuUse
    // entries (distinct lane groups). The claims must be merged: on a
    // 2-adder chip with one adder busy for 1000 cycles, an
    // independent {Add x1, Add x1} instruction needs both adders and
    // waits. (Before the fix each entry probed the pool
    // independently, both picked the one free adder, and the second
    // acquire tripped the "unit busy" assertion — a crash on a legal
    // program.)
    Program p;
    p.n = 1 << 16;
    const auto in = p.addValue(ValueKind::Input, 1024, "in");
    const auto t0 = p.addValue(ValueKind::Intermediate, 1024, "t0");
    const auto t1 = p.addValue(ValueKind::Intermediate, 1024, "t1");
    PolyInst slow = simpleInst({in}, {t0}, "slow");
    slow.duration = 1000;
    p.addInst(std::move(slow));
    PolyInst split = simpleInst({in}, {t1}, "split");
    split.fus = {{FuType::Add, 1, 16}, {FuType::Add, 1, 16}};
    p.addInst(std::move(split));

    ChipConfig cfg = ChipConfig::craterLake();
    cfg.addUnits = 2;
    Simulator sim(cfg);
    const SimStats stats = sim.run(p);
    // split waits for slow's adder: finish >= 1000 + 10.
    EXPECT_GE(stats.cycles, 1010u);
    EXPECT_EQ(stats.fuBusy[static_cast<unsigned>(FuType::Add)], 1020u);
}

TEST(Simulator, EnergyAccountingConsistent)
{
    const ChipConfig cfg = ChipConfig::craterLake();
    Simulator sim(cfg);
    auto stats = sim.run(singleInstProgram(1000));
    const EnergyBreakdown e = stats.energy(cfg);
    EXPECT_GT(e.total(), 0.0);
    EXPECT_GT(e.hbm, 0.0);
    EXPECT_GT(stats.avgPowerWatts(cfg), 0.0);
}

} // namespace
} // namespace cl

/** Tests for the accelerator program representation. */

#include <gtest/gtest.h>

#include "isa/program.h"

namespace cl {
namespace {

TEST(Program, ValueAndInstLinking)
{
    Program p;
    p.n = 1 << 12;
    const auto a = p.addValue(ValueKind::Input, 100, "a");
    const auto b = p.addValue(ValueKind::Intermediate, 100, "b");
    PolyInst inst;
    inst.mnemonic = "op";
    inst.n = p.n;
    inst.fus = {{FuType::Add, 1, 100}};
    inst.reads = {a};
    inst.writes = {b};
    inst.duration = 10;
    const auto id = p.addInst(std::move(inst));
    EXPECT_EQ(p.values[a].consumers.size(), 1u);
    EXPECT_EQ(p.values[a].consumers[0], id);
    EXPECT_EQ(p.values[b].producer, static_cast<std::int64_t>(id));
    p.validate();
}

TEST(Program, ValidateDiesOnUseBeforeDef)
{
    Program p;
    p.n = 1 << 12;
    const auto a = p.addValue(ValueKind::Intermediate, 100, "a");
    const auto b = p.addValue(ValueKind::Intermediate, 100, "b");
    PolyInst inst;
    inst.mnemonic = "op";
    inst.n = p.n;
    inst.fus = {{FuType::Add, 1, 100}};
    inst.reads = {a}; // a has no producer and is Intermediate
    inst.writes = {b};
    inst.duration = 10;
    p.addInst(std::move(inst));
    EXPECT_DEATH(p.validate(), "before production");
}

TEST(Program, FuTypeNames)
{
    EXPECT_STREQ(fuTypeName(FuType::Ntt), "NTT");
    EXPECT_STREQ(fuTypeName(FuType::Crb), "CRB");
    EXPECT_STREQ(fuTypeName(FuType::KshGen), "KSHGen");
    EXPECT_STREQ(fuTypeName(FuType::Automorphism), "Aut");
}

TEST(Program, SeededHalfMarksKshGenHints)
{
    Program p;
    const auto k = p.addValue(ValueKind::KeySwitchHint, 1000, "ksh");
    p.values[k].seededHalf = true;
    EXPECT_TRUE(p.values[k].seededHalf);
    EXPECT_EQ(p.values[k].kind, ValueKind::KeySwitchHint);
}

} // namespace
} // namespace cl

/** Tests for the Keccak/SHAKE PRNG and rejection sampler (KSHGen twin). */

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <map>

#include "util/prng.h"

namespace cl {
namespace {

TEST(Keccak, KnownAnswerAllZeroState)
{
    // Keccak-f[1600] applied to the all-zero state; first lane of the
    // result is the well-known constant 0xF1258F7940E1DDE7.
    std::array<std::uint64_t, 25> st{};
    keccakF1600(st);
    EXPECT_EQ(st[0], 0xF1258F7940E1DDE7ULL);
    EXPECT_EQ(st[1], 0x84D5CCF933C0478AULL);
    EXPECT_EQ(st[2], 0xD598261EA65AA9EEULL);
}

TEST(Shake128Stream, DeterministicForSameSeed)
{
    Shake128Stream a(123, 7), b(123, 7);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next64(), b.next64());
}

TEST(Shake128Stream, DomainsSeparateStreams)
{
    Shake128Stream a(123, 7), b(123, 8);
    bool all_equal = true;
    for (int i = 0; i < 16; ++i)
        all_equal &= a.next64() == b.next64();
    EXPECT_FALSE(all_equal);
}

TEST(Shake128Stream, SeedsSeparateStreams)
{
    Shake128Stream a(1, 0), b(2, 0);
    EXPECT_NE(a.next64(), b.next64());
}

TEST(Shake128Stream, CrossesBlockBoundary)
{
    Shake128Stream a(9, 9);
    // 168-byte rate = 21 words; squeeze well past several blocks.
    std::uint64_t acc = 0;
    for (int i = 0; i < 100; ++i)
        acc ^= a.next64();
    EXPECT_NE(acc, 0u);
    EXPECT_EQ(a.wordsSqueezed(), 100u);
}

TEST(Shake128Stream, NextBitsMasks)
{
    Shake128Stream a(5, 5);
    for (int i = 0; i < 50; ++i)
        EXPECT_LT(a.nextBits(28), 1ULL << 28);
}

TEST(RejectionSampler, UniformModPrime)
{
    const std::uint64_t q = 268369921; // 28-bit NTT prime
    RejectionSampler s(1, 1, q);
    const int n = 50000;
    double sum = 0;
    for (int i = 0; i < n; ++i) {
        std::uint64_t v = s.next();
        ASSERT_LT(v, q);
        sum += static_cast<double>(v);
    }
    // Mean should be close to q/2 (within 2% for n=50k).
    EXPECT_NEAR(sum / n, q / 2.0, 0.02 * q);
}

TEST(RejectionSampler, RejectionRateMatchesExtraBits)
{
    // With 2 extra bits, rejection probability < 2^-2.
    const std::uint64_t q = (1ULL << 27) + 29; // just above a power of 2
    RejectionSampler s(3, 3, q, 2);
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        s.next();
    const double reject_rate =
        1.0 - static_cast<double>(s.accepted()) /
                  static_cast<double>(s.attempts());
    EXPECT_LT(reject_rate, 0.25);
}

TEST(RejectionSampler, Deterministic)
{
    RejectionSampler a(7, 9, 268369921), b(7, 9, 268369921);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(FastRng, TernaryBalanced)
{
    FastRng rng(11);
    std::map<int, int> counts;
    const int n = 30000;
    for (int i = 0; i < n; ++i)
        counts[rng.nextTernary()]++;
    for (int v : {-1, 0, 1})
        EXPECT_NEAR(counts[v], n / 3.0, n * 0.03);
}

TEST(FastRng, CbdMeanAndVariance)
{
    FastRng rng(13);
    const int n = 50000;
    double sum = 0, sum2 = 0;
    for (int i = 0; i < n; ++i) {
        int v = rng.nextCbd(21);
        sum += v;
        sum2 += static_cast<double>(v) * v;
    }
    const double mean = sum / n;
    const double var = sum2 / n - mean * mean;
    EXPECT_NEAR(mean, 0.0, 0.2);
    EXPECT_NEAR(var, 21.0 / 2.0, 0.8);
}

TEST(FastRng, NextBelowRange)
{
    FastRng rng(17);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.nextBelow(97), 97u);
}

} // namespace
} // namespace cl

/** Tests for the minimal big-integer used in keyswitch-hint setup. */

#include <gtest/gtest.h>

#include "util/biguint.h"
#include "util/prng.h"

namespace cl {
namespace {

TEST(BigUint, SmallValues)
{
    BigUint a(5);
    a.mulU64(7);
    EXPECT_EQ(a.modU64(100), 35u);
    a.addU64(65);
    EXPECT_EQ(a.modU64(1000), 100u);
}

TEST(BigUint, ProductAndMod)
{
    std::vector<std::uint64_t> primes = {1000003, 1000033, 1000037,
                                         1000039};
    BigUint q = BigUint::product(primes);
    // q mod each factor is zero.
    for (auto p : primes)
        EXPECT_EQ(q.modU64(p), 0u);
    // q mod a coprime modulus matches a direct 128-bit computation
    // done pairwise.
    const std::uint64_t m = 998244353;
    unsigned __int128 r = 1;
    for (auto p : primes)
        r = r * (p % m) % m;
    EXPECT_EQ(q.modU64(m), static_cast<std::uint64_t>(r));
}

TEST(BigUint, AddSubRoundTrip)
{
    BigUint a = BigUint::product({0xffffffffffffffc5ULL, 0xfffffffbULL});
    BigUint b = BigUint::product({12345678901234567ULL});
    BigUint c = a;
    c += b;
    c -= b;
    EXPECT_TRUE(c == a);
}

TEST(BigUint, CompareOrdering)
{
    BigUint a(100), b(200);
    EXPECT_TRUE(a < b);
    EXPECT_TRUE(b >= a);
    BigUint big = BigUint::product({1ULL << 40, 1ULL << 40});
    EXPECT_TRUE(a < big);
    EXPECT_TRUE(big >= b);
}

TEST(BigUint, CarryPropagation)
{
    BigUint a(~0ULL);
    a.addU64(1); // now exactly 2^64
    const std::uint64_t m = (1ULL << 62) - 57;
    // 2^64 mod m computed via 128-bit arithmetic.
    const std::uint64_t expect =
        static_cast<std::uint64_t>(((unsigned __int128)1 << 64) % m);
    EXPECT_EQ(a.modU64(m), expect);
    EXPECT_EQ(a.log2Floor(), 64);
}

TEST(BigUint, BitLengthOfPrimeProducts)
{
    // Product of eight ~2^28 primes has ~224 bits.
    std::vector<std::uint64_t> ps(8, (1ULL << 28) - 57);
    BigUint q = BigUint::product(ps);
    EXPECT_NEAR(q.bitLength(), 8 * 28.0, 0.1);
}

TEST(BigUint, ModularReductionBySubtraction)
{
    // Mimics the keyswitch setup: reduce a sum below a big modulus.
    BigUint qj = BigUint::product({1000003, 1000033});
    BigUint v = BigUint::product({1000003, 1000033});
    v.mulU64(3);
    v.addU64(12345);
    while (v >= qj)
        v -= qj;
    EXPECT_EQ(v.modU64(1000003), 12345u % 1000003);
    EXPECT_EQ(v.modU64(1000033), 12345u % 1000033);
}

TEST(BigUint, HexRendering)
{
    BigUint a(0xdeadbeefULL);
    EXPECT_EQ(a.toHex(), "0xdeadbeef");
    EXPECT_EQ(BigUint(0).toHex(), "0x0");
}

} // namespace
} // namespace cl

/** Tests for the console table renderer. */

#include <gtest/gtest.h>

#include "util/table.h"

namespace cl {
namespace {

TEST(TextTable, AlignsColumns)
{
    TextTable t({"name", "value"});
    t.addRow({"a", "1"});
    t.addRow({"long-name", "22"});
    const std::string out = t.render();
    // Header present, separator present, both rows present.
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("long-name"), std::string::npos);
    EXPECT_NE(out.find("----"), std::string::npos);
    // Each line has the same position for the second column start.
    const auto first_line_end = out.find('\n');
    EXPECT_NE(first_line_end, std::string::npos);
}

TEST(TextTable, SeparatorRows)
{
    TextTable t({"xyz"});
    t.addRow({"1"});
    t.addSeparator();
    t.addRow({"2"});
    const std::string out = t.render();
    // Two separator lines total (header + explicit), each a run of
    // dashes spanning the column width.
    std::size_t count = 0, pos = 0;
    while ((pos = out.find("---", pos)) != std::string::npos) {
        ++count;
        pos = out.find('\n', pos);
        if (pos == std::string::npos)
            break;
    }
    EXPECT_EQ(count, 2u);
}

TEST(TextTable, NumberFormatting)
{
    EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
    EXPECT_EQ(TextTable::num(1000.0, 0), "1000");
    EXPECT_EQ(TextTable::speedup(11.24), "11.24x");
    EXPECT_EQ(TextTable::speedup(4611.0), "4611x");
}

} // namespace
} // namespace cl

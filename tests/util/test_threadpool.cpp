/** Tests for the parallel execution layer: coverage, nesting,
 *  serial fallback, and global-pool reconfiguration. */

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "util/threadpool.h"

namespace cl {
namespace {

TEST(ThreadPool, EveryIndexRunsExactlyOnce)
{
    ThreadPool pool(4);
    const std::size_t n = 10000;
    std::vector<std::atomic<int>> hits(n);
    pool.parallelFor(0, n, [&](std::size_t i) {
        hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPool, NonZeroBeginAndEmptyRange)
{
    ThreadPool pool(3);
    std::vector<std::atomic<int>> hits(16);
    pool.parallelFor(4, 12, [&](std::size_t i) {
        hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < 16; ++i)
        EXPECT_EQ(hits[i].load(), (i >= 4 && i < 12) ? 1 : 0);

    bool ran = false;
    pool.parallelFor(5, 5, [&](std::size_t) { ran = true; });
    pool.parallelFor(7, 3, [&](std::size_t) { ran = true; });
    EXPECT_FALSE(ran);
}

TEST(ThreadPool, SerialPoolNeverSpawns)
{
    ThreadPool pool(1);
    EXPECT_EQ(pool.threads(), 1u);
    std::size_t sum = 0; // no atomics needed: everything is inline
    pool.parallelFor(0, 100, [&](std::size_t i) { sum += i; });
    EXPECT_EQ(sum, 4950u);
}

TEST(ThreadPool, NestedCallsRunSeriallyWithoutDeadlock)
{
    ThreadPool pool(4);
    const std::size_t outer = 16, inner = 64;
    std::vector<std::atomic<int>> hits(outer * inner);
    pool.parallelFor(0, outer, [&](std::size_t i) {
        // A tower kernel that itself calls parallelFor must degrade
        // to a serial loop on the same worker, not deadlock.
        pool.parallelFor(0, inner, [&](std::size_t j) {
            hits[i * inner + j].fetch_add(1, std::memory_order_relaxed);
        });
    });
    for (auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ReusableAcrossManyJobs)
{
    ThreadPool pool(4);
    for (int round = 0; round < 50; ++round) {
        std::atomic<std::size_t> sum{0};
        pool.parallelFor(0, 97, [&](std::size_t i) {
            sum.fetch_add(i, std::memory_order_relaxed);
        });
        ASSERT_EQ(sum.load(), 97u * 96u / 2);
    }
}

TEST(ThreadPool, GrainInlinesShortRanges)
{
    ThreadPool pool(4);
    // Trip count at or below the grain: every index must run on the
    // calling thread, with no pool dispatch.
    const auto self = std::this_thread::get_id();
    std::vector<std::thread::id> ran_on(8);
    pool.parallelFor(
        0, 8, [&](std::size_t i) { ran_on[i] = std::this_thread::get_id(); },
        8);
    for (std::size_t i = 0; i < 8; ++i)
        EXPECT_EQ(ran_on[i], self) << "index " << i;

    // One past the grain: the pool engages again (every index still
    // runs exactly once; placement is unspecified).
    std::vector<std::atomic<int>> hits(9);
    pool.parallelFor(
        0, 9, [&](std::size_t i) {
            hits[i].fetch_add(1, std::memory_order_relaxed);
        },
        8);
    for (auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, GrainDoesNotChangeResults)
{
    ThreadPool pool(4);
    const std::size_t n = 1000;
    std::vector<std::uint64_t> expect(n);
    for (std::size_t i = 0; i < n; ++i)
        expect[i] = i * i + 7;
    for (std::size_t grain : {std::size_t{0}, std::size_t{1},
                              std::size_t{64}, n, 2 * n}) {
        std::vector<std::uint64_t> out(n, 0);
        pool.parallelFor(
            0, n, [&](std::size_t i) { out[i] = i * i + 7; }, grain);
        ASSERT_EQ(out, expect) << "grain " << grain;
    }
}

TEST(ParallelGrain, MapsFootprintToTripCount)
{
    // Heavy per-index work (>= one grain of words) degenerates to
    // grain 1 — the pre-grain behavior.
    EXPECT_EQ(parallelGrain(kParallelGrainWords), 1u);
    EXPECT_EQ(parallelGrain(kParallelGrainWords * 4), 1u);
    // Light work inlines until the range holds a full grain.
    EXPECT_EQ(parallelGrain(kParallelGrainWords / 2), 2u);
    EXPECT_EQ(parallelGrain(1), kParallelGrainWords);
    EXPECT_EQ(parallelGrain(0), kParallelGrainWords);
}

TEST(ThreadPool, NestedCallRestoresWorkerFlag)
{
    // Regression: runIndices used to clear the in-pool-work flag
    // unconditionally on exit, so after a *nested* parallelFor the
    // worker forgot it was a worker and the next nested call tried to
    // fan out from inside the pool (deadlock on the job lock).
    ThreadPool pool(4);
    std::vector<std::atomic<int>> hits(8 * 32);
    pool.parallelFor(0, 8, [&](std::size_t i) {
        pool.parallelFor(0, 1, [](std::size_t) {});
        // Still inside pool work here; this second nested call must
        // inline too.
        EXPECT_TRUE(ThreadPool::inWorkerContext());
        pool.parallelFor(0, 32, [&](std::size_t j) {
            hits[i * 32 + j].fetch_add(1, std::memory_order_relaxed);
        });
    });
    EXPECT_FALSE(ThreadPool::inWorkerContext());
    for (auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, WorkerScopeInlinesParallelFor)
{
    ThreadPool pool(4);
    EXPECT_FALSE(ThreadPool::inWorkerContext());
    {
        ThreadPool::WorkerScope scope;
        EXPECT_TRUE(ThreadPool::inWorkerContext());
        // Everything must run on this thread: the scope marks it as a
        // graph worker, so tower fan-out degrades to an inline loop.
        const auto self = std::this_thread::get_id();
        std::vector<std::thread::id> ran_on(64);
        pool.parallelFor(0, 64, [&](std::size_t i) {
            ran_on[i] = std::this_thread::get_id();
        });
        for (std::size_t i = 0; i < 64; ++i)
            EXPECT_EQ(ran_on[i], self) << "index " << i;
        {
            ThreadPool::WorkerScope nested;
            EXPECT_TRUE(ThreadPool::inWorkerContext());
        }
        EXPECT_TRUE(ThreadPool::inWorkerContext()); // restored, not cleared
    }
    EXPECT_FALSE(ThreadPool::inWorkerContext());
}

TEST(ThreadPool, WorkerScopeThreadsActIndependently)
{
    // The scope is thread-local: marking one external thread must not
    // change how other threads' parallelFor calls behave.
    ThreadPool pool(4);
    std::atomic<int> scoped_hits{0}, free_hits{0};
    std::thread scoped([&] {
        ThreadPool::WorkerScope scope;
        pool.parallelFor(0, 100, [&](std::size_t) {
            scoped_hits.fetch_add(1, std::memory_order_relaxed);
        });
    });
    std::thread free_caller([&] {
        EXPECT_FALSE(ThreadPool::inWorkerContext());
        pool.parallelFor(0, 100, [&](std::size_t) {
            free_hits.fetch_add(1, std::memory_order_relaxed);
        });
    });
    scoped.join();
    free_caller.join();
    EXPECT_EQ(scoped_hits.load(), 100);
    EXPECT_EQ(free_hits.load(), 100);
}

TEST(ThreadPool, GlobalPoolResize)
{
    ThreadPool::setGlobalThreads(2);
    EXPECT_EQ(ThreadPool::global().threads(), 2u);
    std::atomic<int> count{0};
    parallelFor(0, 32, [&](std::size_t) {
        count.fetch_add(1, std::memory_order_relaxed);
    });
    EXPECT_EQ(count.load(), 32);

    ThreadPool::setGlobalThreads(1);
    EXPECT_EQ(ThreadPool::global().threads(), 1u);
    count = 0;
    parallelFor(0, 32, [&](std::size_t) {
        count.fetch_add(1, std::memory_order_relaxed);
    });
    EXPECT_EQ(count.load(), 32);
}

} // namespace
} // namespace cl

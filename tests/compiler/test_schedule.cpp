/**
 * Tests for the static list scheduler (compiler/schedule.h): the
 * reordered program must be a permutation of the emission order with
 * identical per-instruction semantics, verify clean under the
 * independent schedule verifier, never cost cycles relative to the
 * emission order, and come out byte-identical regardless of the host
 * thread count.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <map>
#include <set>
#include <sstream>
#include <string>

#include "compiler/lower.h"
#include "sim/simulator.h"
#include "sim/trace.h"
#include "verify/verifier.h"
#include "workloads/benchmarks.h"

namespace cl {
namespace {

Program
lowerBench(const std::string &bench, const ChipConfig &cfg,
           ScheduleMode mode)
{
    const HomProgram hp =
        benchmarkByName(bench, SecurityConfig::bits80());
    Lowering lower(cfg, mode);
    return lower.lower(hp);
}

/** Memoized lowering: scheduling the large benchmarks is the
 *  expensive part of this suite, so each (bench, config, mode)
 *  triple is lowered once and shared across tests. */
const Program &
cached(const std::string &bench, const std::string &config,
       ScheduleMode mode)
{
    static std::map<std::string, Program> cache;
    const std::string key =
        bench + "/" + config + "/" + scheduleModeName(mode);
    auto it = cache.find(key);
    if (it == cache.end()) {
        it = cache
                 .emplace(key, lowerBench(bench,
                                          ChipConfig::byName(config),
                                          mode))
                 .first;
    }
    return it->second;
}

/** Order-independent key of one instruction's semantics. Value ids
 *  are stable across scheduling (only instructions move), so the
 *  reads/writes lists are directly comparable. */
std::string
instKey(const PolyInst &pi)
{
    std::ostringstream os;
    os << pi.mnemonic << '|' << pi.n << '|' << pi.duration << '|'
       << pi.networkWords << '|' << pi.rfPorts << '|' << pi.rfWords;
    os << "|r";
    for (std::uint32_t v : pi.reads)
        os << ':' << v;
    os << "|w";
    for (std::uint32_t v : pi.writes)
        os << ':' << v;
    os << "|f";
    for (const FuUse &f : pi.fus)
        os << ':' << static_cast<unsigned>(f.type) << ','
           << f.units << ',' << f.laneOps;
    return os.str();
}

std::multiset<std::string>
semantics(const Program &p)
{
    std::multiset<std::string> keys;
    for (const PolyInst &pi : p.insts)
        keys.insert(instKey(pi));
    return keys;
}

/** Exact serialization of the instruction *stream* (order matters),
 *  for determinism checks. */
std::string
streamKey(const Program &p)
{
    std::ostringstream os;
    for (const PolyInst &pi : p.insts)
        os << pi.id << '!' << instKey(pi) << '\n';
    return os.str();
}

TEST(Schedule, PreservesInstructionSemantics)
{
    // The scheduler may only permute instructions: same count, same
    // multiset of (mnemonic, operands, FU usage), same value table.
    for (const std::string &bn : benchmarkNames()) {
        const Program &none = cached(bn, "craterlake",
                                     ScheduleMode::None);
        const Program &list = cached(bn, "craterlake",
                                     ScheduleMode::List);
        ASSERT_EQ(none.size(), list.size()) << bn;
        EXPECT_EQ(semantics(none), semantics(list)) << bn;
        ASSERT_EQ(none.values.size(), list.values.size()) << bn;
        for (std::size_t v = 0; v < none.values.size(); ++v) {
            EXPECT_EQ(none.values[v].kind, list.values[v].kind);
            EXPECT_EQ(none.values[v].words, list.values[v].words);
        }
        list.validate();
    }
}

TEST(Schedule, VerifierCleanAcrossConfigs)
{
    // Every scheduled benchmark must replay through the independent
    // verifier with zero violations, on the paper config and the
    // ablated ones (different RF sizes and FU mixes stress different
    // reorderings).
    for (const std::string &bn : benchmarkNames()) {
        for (const std::string &cn :
             {std::string("craterlake"), std::string("f1plus"),
              std::string("no-kshgen")}) {
            const Program &prog = cached(bn, cn, ScheduleMode::List);
            const ChipConfig cfg = ChipConfig::byName(cn);
            Simulator sim(cfg);
            TraceRecorder rec;
            const SimStats stats = sim.run(prog, &rec);
            ScheduleVerifier verifier(cfg, prog);
            const VerifyReport report =
                verifier.verify(rec.insts(), rec.residency(), stats);
            EXPECT_TRUE(report.ok())
                << bn << " x " << cn << ": " << report.summary();
        }
    }
}

TEST(Schedule, CyclesNeverRegress)
{
    // scheduleProgram measures both the emission order and its
    // candidates on the real simulator and ships the minimum, so
    // List must never cost cycles — and must actually win on
    // several craterlake benchmarks (the rest are proven stuck at
    // the memory-traffic floor; see EXPERIMENTS.md).
    unsigned improved = 0;
    for (const std::string &bn : benchmarkNames()) {
        const ChipConfig cfg = ChipConfig::craterLake();
        Simulator simN(cfg), simL(cfg);
        const std::uint64_t none =
            simN.run(cached(bn, "craterlake", ScheduleMode::None))
                .cycles;
        const std::uint64_t list =
            simL.run(cached(bn, "craterlake", ScheduleMode::List))
                .cycles;
        EXPECT_LE(list, none) << bn;
        improved += list < none;
    }
    EXPECT_GE(improved, 3u);
}

TEST(Schedule, DeterministicAcrossThreadCount)
{
    // The scheduler is single-threaded by design: the emitted stream
    // must be byte-identical whatever CL_THREADS says.
    setenv("CL_THREADS", "1", 1);
    const Program a =
        lowerBench("lola-mnist", ChipConfig::craterLake(),
                   ScheduleMode::List);
    setenv("CL_THREADS", "7", 1);
    const Program b =
        lowerBench("lola-mnist", ChipConfig::craterLake(),
                   ScheduleMode::List);
    unsetenv("CL_THREADS");
    EXPECT_EQ(streamKey(a), streamKey(b));
    // And re-running the identical lowering is also a fixed point.
    const Program c =
        lowerBench("lola-mnist", ChipConfig::craterLake(),
                   ScheduleMode::List);
    EXPECT_EQ(streamKey(a), streamKey(c));
}

TEST(Schedule, StatsReportReordering)
{
    const HomProgram hp =
        benchmarkByName("lola-mnist", SecurityConfig::bits80());
    Lowering lower(ChipConfig::craterLake(), ScheduleMode::List);
    const Program prog = lower.lower(hp);
    const ScheduleStats &ss = lower.scheduleStats();
    EXPECT_GT(ss.depEdges, prog.size()); // denser than a chain
    EXPECT_GT(ss.criticalPathCycles, 0u);
    EXPECT_LE(ss.moved, prog.size());
}

TEST(Schedule, ConsumerOrderViolationCaught)
{
    // The verifier cross-checks the value table's consumer lists and
    // producer links against the instruction stream — the data the
    // simulator's Belady manager plans future uses from. Scrambling
    // either must be flagged.
    const ChipConfig cfg = ChipConfig::craterLake();
    Program prog = cached("lola-mnist", "craterlake",
                          ScheduleMode::List);
    Simulator sim(cfg);
    TraceRecorder rec;
    const SimStats stats = sim.run(prog, &rec);

    // Reverse the consumer list of a multi-consumer value: Belady
    // would now see its uses in the wrong order.
    bool mutated = false;
    for (Value &v : prog.values) {
        if (v.consumers.size() >= 2 &&
            v.consumers.front() != v.consumers.back()) {
            std::reverse(v.consumers.begin(), v.consumers.end());
            mutated = true;
            break;
        }
    }
    ASSERT_TRUE(mutated);
    {
        ScheduleVerifier verifier(cfg, prog);
        const VerifyReport report =
            verifier.verify(rec.insts(), rec.residency(), stats);
        EXPECT_TRUE(report.has(ViolationKind::ConsumerOrder))
            << report.summary();
    }

    // And a stale producer link on a written value.
    Program prog2 = cached("lola-mnist", "craterlake",
                           ScheduleMode::List);
    bool relinked = false;
    for (Value &v : prog2.values) {
        if (v.producer >= 1) {
            v.producer -= 1;
            relinked = true;
            break;
        }
    }
    ASSERT_TRUE(relinked);
    {
        ScheduleVerifier verifier(cfg, prog2);
        const VerifyReport report =
            verifier.verify(rec.insts(), rec.residency(), stats);
        EXPECT_TRUE(report.has(ViolationKind::ConsumerOrder))
            << report.summary();
    }
}

} // namespace
} // namespace cl

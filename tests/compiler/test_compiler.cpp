/** Tests for the hom-op builder and lowering pass. */

#include <gtest/gtest.h>

#include "compiler/lower.h"
#include "sim/simulator.h"

namespace cl {
namespace {

TEST(HomBuilder, LevelTracking)
{
    HomBuilder b("t", 12, 10);
    auto a = b.input(10);
    auto c = b.mul(a, a, 2);
    EXPECT_EQ(c.level, 8u);
    auto d = b.mulPlain(c, "w", 1);
    EXPECT_EQ(d.level, 7u);
    auto e = b.rotate(d, 3);
    EXPECT_EQ(e.level, 7u);
    b.output(e);
    const HomProgram p = b.take();
    EXPECT_EQ(p.countKind(HomOpKind::Mul), 1u);
    EXPECT_EQ(p.countKind(HomOpKind::Rotate), 1u);
}

TEST(HomBuilder, RotateByZeroIsNoOp)
{
    HomBuilder b("t", 12, 10);
    auto a = b.input(10);
    auto r = b.rotate(a, 0);
    EXPECT_EQ(r.op, a.op);
    EXPECT_EQ(b.program().countKind(HomOpKind::Rotate), 0u);
}

TEST(HomBuilder, DigitPolicyAppliedPerLevel)
{
    HomBuilder b("t", 16, 57, digitPolicy80());
    auto a = b.input(57);
    auto m1 = b.mul(a, a, 2); // at level 57 > 52: 2 digits
    auto m2 = b.mul(m1, m1, 2); // at 55 > 52: 2 digits
    b.levelDrop(m2, 40);
    const HomProgram p = b.program();
    EXPECT_EQ(p.ops[1].digits, 2u);
    auto low = b.input(40);
    auto m3 = b.mul(low, low, 2); // below 52: 1 digit
    EXPECT_EQ(b.program().ops[m3.op].digits, 1u);
}

TEST(HomBuilder, BootstrapRestoresBudget)
{
    HomBuilder b("t", 16, 57);
    auto a = b.input(3);
    auto r = b.bootstrap(a);
    EXPECT_GT(r.level, 15u);
    EXPECT_LE(r.level, 57u - b.bootLevels() + b.stcStages * 2 + 4);
    // The graph contains ModRaise, rotations, and multiplies.
    const HomProgram p = b.program();
    EXPECT_EQ(p.countKind(HomOpKind::ModRaise), 1u);
    EXPECT_GT(p.countKind(HomOpKind::Rotate), 20u);
    EXPECT_GT(p.countKind(HomOpKind::Mul), 5u);
}

TEST(HomBuilder, BudgetExhaustionDies)
{
    HomBuilder b("t", 12, 4);
    auto a = b.input(2);
    EXPECT_DEATH(b.mul(a, a, 2), "budget");
}

TEST(Lowering, ProgramValidates)
{
    HomBuilder b("t", 14, 12);
    auto a = b.input(12);
    auto c = b.mul(a, a, 2);
    auto d = b.rotate(c, 5);
    b.output(d);
    Lowering lower(ChipConfig::craterLake());
    Program p = lower.lower(b.take());
    EXPECT_GT(p.size(), 5u);
    p.validate(); // dies on inconsistency
    EXPECT_EQ(lower.stats().keyswitches, 2u);
}

TEST(Lowering, Table1OpCountsAtL60)
{
    // A single ct-ct multiply at L=60 with a 1-digit hint must show
    // Table 1's boosted keyswitching counts: 3L^2 CRB MACs, 6L NTTs.
    HomBuilder b("t", 16, 60, [](unsigned) { return 1u; });
    auto a = b.input(60);
    b.mul(a, a, 2);
    Lowering lower(ChipConfig::craterLake());
    lower.lower(b.take());
    const LowerStats &s = lower.stats();
    EXPECT_EQ(s.crbMacVectors, 3u * 60 * 60);
    // 6L keyswitch NTTs plus the rescale's domain round trips.
    EXPECT_GE(s.nttVectors, 6u * 60);
    EXPECT_LE(s.nttVectors, 6u * 60 + 4u * 60 + 8);
}

TEST(Lowering, KshFootprintHalvedByKshGen)
{
    HomBuilder b("t", 14, 12, [](unsigned) { return 1u; });
    auto a = b.input(12);
    b.rotate(a, 1);
    auto count_ksh_words = [&](const ChipConfig &cfg) {
        Lowering lower(cfg);
        Program p = lower.lower(b.program());
        std::uint64_t words = 0;
        for (const auto &v : p.values) {
            if (v.kind == ValueKind::KeySwitchHint)
                words += v.words;
        }
        return words;
    };
    const auto with = count_ksh_words(ChipConfig::craterLake());
    const auto without = count_ksh_words(ChipConfig::noKshGen());
    EXPECT_EQ(without, 2 * with);
}

TEST(Lowering, HintSharedAcrossUses)
{
    HomBuilder b("t", 14, 12, [](unsigned) { return 1u; });
    auto a = b.input(12);
    auto r1 = b.rotate(a, 1);
    auto r2 = b.rotate(r1, 1); // same key
    b.rotate(r2, 2);           // different key
    Lowering lower(ChipConfig::craterLake());
    Program p = lower.lower(b.take());
    std::size_t hints = 0;
    for (const auto &v : p.values)
        hints += v.kind == ValueKind::KeySwitchHint ? 1 : 0;
    EXPECT_EQ(hints, 2u);
}

TEST(Lowering, UnchainedConfigEmitsPortHungryMacs)
{
    HomBuilder b("t", 14, 12, [](unsigned) { return 1u; });
    auto a = b.input(12);
    b.mul(a, a, 2);
    Lowering chained(ChipConfig::craterLake());
    Lowering unchained(ChipConfig::noCrbNoChain());
    Program pc = chained.lower(b.program());
    Program pu = unchained.lower(b.program());
    // The unchained program has more instructions (split stages).
    EXPECT_GT(pu.size(), pc.size());
    // And its MAC instructions request 3 ports per parallel stream.
    bool found_wide = false;
    for (const auto &inst : pu.insts)
        found_wide |= inst.rfPorts >= 9;
    EXPECT_TRUE(found_wide);
}

TEST(Lowering, StandardKeyswitchSkipsCrbMacs)
{
    // t = l (single-prime digits) is the standard algorithm: only
    // the mod-down conversion uses MACs.
    HomBuilder b("t", 14, 8, [](unsigned l) { return l; });
    auto a = b.input(8);
    b.rotate(a, 1);
    Lowering lower(ChipConfig::craterLake());
    lower.lower(b.take());
    EXPECT_EQ(lower.stats().crbMacVectors, 2u * 1 * 8); // mod-down only
}

namespace {

/**
 * Audit every emitted instruction against the throughput invariant:
 * an FU stage of V vectors on U acquired units cannot finish in fewer
 * than ceil(V/U) vector-issue slots, and no stage may request more
 * units than the configuration has. Catches any site that computes
 * `duration` from more parallelism than its FuUse actually acquires.
 */
void
checkThroughputInvariant(const ChipConfig &cfg, const Program &p)
{
    const std::uint64_t vc = cfg.vectorCycles(p.n);
    const std::uint64_t bfly =
        static_cast<std::uint64_t>(p.n) * log2Exact(p.n) / 2;
    for (const PolyInst &inst : p.insts) {
        for (const FuUse &use : inst.fus) {
            EXPECT_LE(use.units, cfg.fuCount(use.type))
                << inst.mnemonic << " oversubscribes "
                << fuTypeName(use.type);
            std::uint64_t vecs = 0;
            switch (use.type) {
              case FuType::Ntt:
                vecs = use.laneOps / bfly;
                break;
              case FuType::Multiply:
              case FuType::Add:
              case FuType::Automorphism:
                vecs = use.laneOps / p.n;
                break;
              default:
                continue; // CRB/KSHGen/transpose: pipelined units
            }
            EXPECT_GE(inst.duration, ceilDiv(vecs, use.units) * vc)
                << inst.mnemonic << " underestimates "
                << fuTypeName(use.type) << " (" << vecs << " vecs on "
                << use.units << " units)";
        }
    }
}

/** Workload covering every lowering path: adds, plaintext ops, fused
 *  and explicit rescales, keyswitches, and a mod-raise. */
HomProgram
auditProgram()
{
    HomBuilder b("audit", 14, 16, [](unsigned l) { return l > 10 ? 2u
                                                                 : 1u; });
    auto a = b.input(14);
    auto c = b.mul(a, a, 2);
    auto d = b.addPlain(c, "w0");
    auto e = b.mulPlain(d, "w1", 1);
    auto f = b.rotate(e, 3);
    auto g = b.add(f, b.levelDrop(c, f.level));
    auto low = b.levelDrop(g, 2);
    auto raised = b.modRaise(low, 12);
    b.output(raised);
    return b.take();
}

} // namespace

TEST(Lowering, ThroughputInvariantAcrossConfigs)
{
    const HomProgram hp = auditProgram();
    std::vector<ChipConfig> cfgs = {
        ChipConfig::craterLake(), ChipConfig::noCrbNoChain(),
        ChipConfig::f1plus()};
    ChipConfig one_mul = ChipConfig::craterLake();
    one_mul.name = "craterlake-1mul";
    one_mul.mulUnits = 1;
    cfgs.push_back(one_mul);
    ChipConfig one_add = ChipConfig::craterLake();
    one_add.name = "craterlake-1add";
    one_add.addUnits = 1;
    cfgs.push_back(one_add);
    for (const ChipConfig &cfg : cfgs) {
        SCOPED_TRACE(cfg.name);
        Lowering lower(cfg);
        checkThroughputInvariant(cfg, lower.lower(hp));
    }
}

TEST(Lowering, HintMacDurationMatchesAcquiredUnits)
{
    // On a 1-multiplier chained config the hint MAC can only acquire
    // one multiply unit, so its latency is the full mac_vecs sweep —
    // not the 2-way-split wish the chained dataflow would prefer.
    ChipConfig cfg = ChipConfig::craterLake();
    cfg.mulUnits = 1;
    HomBuilder b("t", 14, 12, [](unsigned) { return 1u; });
    auto a = b.input(12);
    b.rotate(a, 1);
    Lowering lower(cfg);
    const Program p = lower.lower(b.take());
    const std::uint64_t vc = cfg.vectorCycles(p.n);
    bool found = false;
    for (const PolyInst &inst : p.insts) {
        if (inst.mnemonic.find(".ksw.mac") == std::string::npos)
            continue;
        found = true;
        std::uint64_t mac_vecs = 0;
        for (const FuUse &use : inst.fus) {
            if (use.type == FuType::Multiply) {
                EXPECT_EQ(use.units, 1u);
                mac_vecs = use.laneOps / p.n;
            }
        }
        ASSERT_GT(mac_vecs, 0u);
        EXPECT_EQ(inst.duration, ceilDiv(mac_vecs, 1) * vc);
    }
    EXPECT_TRUE(found);
}

TEST(Lowering, HintCacheKeysOnDigitCount)
{
    // The same key identity used with different digit counts needs
    // differently shaped hints; caching on the key alone would hand
    // the second keyswitch a hint of the wrong size.
    HomProgram hp;
    hp.name = "ksh-digits";
    hp.logN = 14;
    hp.lMax = 12;
    HomOp in;
    in.id = 0;
    in.kind = HomOpKind::Input;
    in.level = in.outLevel = 12;
    hp.ops.push_back(in);
    HomOp r1;
    r1.id = 1;
    r1.kind = HomOpKind::Rotate;
    r1.args = {0};
    r1.level = r1.outLevel = 12;
    r1.rotateBy = 1;
    r1.keyId = "k";
    r1.digits = 2;
    hp.ops.push_back(r1);
    HomOp r2 = r1;
    r2.id = 2;
    r2.args = {1};
    r2.digits = 1;
    hp.ops.push_back(r2);

    const ChipConfig cfg = ChipConfig::craterLake();
    Lowering lower(cfg);
    const Program p = lower.lower(hp);

    // Two distinct hints: t=2 -> dnum 2, ext 18; t=1 -> dnum 1,
    // ext 24. With KSHGen, dnum*ext*N words each (b-halves only).
    const std::uint64_t n = p.n;
    std::vector<std::uint64_t> hint_words;
    for (const Value &v : p.values) {
        if (v.kind == ValueKind::KeySwitchHint)
            hint_words.push_back(v.words);
    }
    ASSERT_EQ(hint_words.size(), 2u);
    EXPECT_EQ(hint_words[0], 2u * 18 * n);
    EXPECT_EQ(hint_words[1], 1u * 24 * n);

    // The corrected hint traffic: each hint loaded exactly once.
    Simulator sim(cfg);
    const SimStats stats = sim.run(p);
    EXPECT_EQ(stats.kshLoadWords, 2u * 18 * n + 1u * 24 * n);
}

TEST(Lowering, NetworkWordsMatchSec43)
{
    // A homomorphic mult at level l moves ~8 N l words between lane
    // groups; a rotation ~10 N l (Sec 4.3).
    const unsigned l = 12;
    HomBuilder b("t", 14, l, [](unsigned) { return 1u; });
    auto a = b.input(l);
    b.mul(a, a, 2);
    Lowering lower(ChipConfig::craterLake());
    Program p = lower.lower(b.take());
    std::uint64_t net = 0;
    for (const auto &inst : p.insts)
        net += inst.networkWords;
    const double nl = static_cast<double>(p.n) * l;
    EXPECT_GT(net, 6.0 * nl);
    EXPECT_LT(net, 11.0 * nl);
}

} // namespace
} // namespace cl

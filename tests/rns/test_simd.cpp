/**
 * @file
 * Property tests for the SIMD kernel backends: every vector backend
 * available on this host must be bit-identical to the scalar
 * reference on every kernel, for every named prime width (28-bit
 * hardware primes and the 40/50/60-bit CKKS primes), on random
 * inputs and on the lazy-reduction boundary values q-1, 2q-1, 4q-1.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "poly/rnspoly.h"
#include "rns/ntt.h"
#include "rns/primes.h"
#include "rns/simd/kernels.h"
#include "util/prng.h"

namespace {

using namespace cl;

/** Restores the active backend on scope exit, so a failing test can't
 *  leak its backend override into later tests. */
class BackendGuard
{
  public:
    BackendGuard() : saved_(activeSimdBackend()) {}
    ~BackendGuard() { setSimdBackend(saved_); }

  private:
    SimdBackend saved_;
};

std::vector<SimdBackend>
vectorBackends()
{
    std::vector<SimdBackend> v;
    for (SimdBackend b : {SimdBackend::Avx2, SimdBackend::Avx512}) {
        if (kernelTableFor(b))
            v.push_back(b);
    }
    return v;
}

/** The named prime widths used across the repo: the 28-bit hardware
 *  datapath width plus the wide CKKS scale/first/special widths. */
const unsigned kPrimeWidths[] = {28, 40, 50, 60};

u64
primeOfWidth(unsigned bits, std::size_t n = 1 << 10)
{
    return generateNttPrimes(bits, n, 1)[0];
}

/** Random values < bound, with the boundary values salted in at the
 *  front so every run exercises them at multiple lane positions. */
std::vector<u64>
randomVec(std::size_t n, u64 bound, u64 seed,
          std::initializer_list<u64> boundary = {})
{
    std::vector<u64> v(n);
    FastRng rng(seed);
    for (auto &x : v)
        x = rng.nextBelow(bound);
    std::size_t i = 0;
    for (u64 b : boundary) {
        if (i < n)
            v[i++] = b;
        // A second copy at an odd offset lands the boundary value in
        // a different vector lane (and in the scalar tail for small n).
        if (i + 5 < n)
            v[i + 5] = b;
    }
    return v;
}

class SimdBackendTest : public ::testing::TestWithParam<SimdBackend>
{
  protected:
    const KernelTable &vec() { return *kernelTableFor(GetParam()); }
    const KernelTable &ref()
    {
        return *kernelTableFor(SimdBackend::Scalar);
    }
};

// Odd lengths force every kernel's scalar tail path.
const std::size_t kLens[] = {1, 7, 64, 259};

TEST_P(SimdBackendTest, AddSubMulNegateMatchScalar)
{
    for (unsigned bits : kPrimeWidths) {
        const u64 q = primeOfWidth(bits);
        for (std::size_t n : kLens) {
            const auto a0 = randomVec(n, q, 11 * bits + n, {0, q - 1});
            const auto b = randomVec(n, q, 13 * bits + n, {q - 1, 0});

            for (int op = 0; op < 4; ++op) {
                auto x = a0, y = a0;
                switch (op) {
                case 0:
                    ref().addModVec(x.data(), b.data(), n, q);
                    vec().addModVec(y.data(), b.data(), n, q);
                    break;
                case 1:
                    ref().subModVec(x.data(), b.data(), n, q);
                    vec().subModVec(y.data(), b.data(), n, q);
                    break;
                case 2:
                    ref().mulModVec(x.data(), b.data(), n, q);
                    vec().mulModVec(y.data(), b.data(), n, q);
                    break;
                case 3:
                    ref().negateVec(x.data(), n, q);
                    vec().negateVec(y.data(), n, q);
                    break;
                }
                ASSERT_EQ(x, y) << "op=" << op << " bits=" << bits
                                << " n=" << n;
            }
        }
    }
}

TEST_P(SimdBackendTest, MulAddMatchesScalar)
{
    // The fused MAC of the keyswitch inner product: acc += a*b mod q,
    // checked against the scalar table and against the unfused
    // mul-then-add composition it must equal bit for bit.
    for (unsigned bits : kPrimeWidths) {
        const u64 q = primeOfWidth(bits);
        for (std::size_t n : kLens) {
            const auto acc0 = randomVec(n, q, 47 * bits + n, {q - 1, 0});
            const auto a = randomVec(n, q, 53 * bits + n, {q - 1, q - 1});
            const auto b = randomVec(n, q, 59 * bits + n, {q - 1, 0});

            auto r1 = acc0, r2 = acc0;
            ref().mulAddModVec(r1.data(), a.data(), b.data(), n, q);
            vec().mulAddModVec(r2.data(), a.data(), b.data(), n, q);
            ASSERT_EQ(r1, r2) << "bits=" << bits << " n=" << n;

            auto prod = a;
            ref().mulModVec(prod.data(), b.data(), n, q);
            auto composed = acc0;
            ref().addModVec(composed.data(), prod.data(), n, q);
            ASSERT_EQ(r1, composed) << "bits=" << bits << " n=" << n;
        }
    }
}

TEST_P(SimdBackendTest, ShoupKernelsMatchScalar)
{
    for (unsigned bits : kPrimeWidths) {
        const u64 q = primeOfWidth(bits);
        for (std::size_t n : kLens) {
            const auto x = randomVec(n, q, 17 * bits + n, {0, q - 1});
            const auto lo = randomVec(n, q, 19 * bits + n, {q - 1, 0});
            for (u64 wv : {u64{1}, q - 1, q / 3 + 1}) {
                const ShoupMul w(wv, q);
                std::vector<u64> r1(n), r2(n);

                ref().mulModShoupVec(r1.data(), x.data(), n, w.w,
                                     w.wPrec, q);
                vec().mulModShoupVec(r2.data(), x.data(), n, w.w,
                                     w.wPrec, q);
                ASSERT_EQ(r1, r2) << "bits=" << bits << " n=" << n;

                // In-place aliasing (y == x), as mulScalarTower uses.
                auto a1 = x, a2 = x;
                ref().mulModShoupVec(a1.data(), a1.data(), n, w.w,
                                     w.wPrec, q);
                vec().mulModShoupVec(a2.data(), a2.data(), n, w.w,
                                     w.wPrec, q);
                ASSERT_EQ(a1, a2);

                ref().subMulShoupVec(r1.data(), x.data(), lo.data(), n,
                                     w.w, w.wPrec, q);
                vec().subMulShoupVec(r2.data(), x.data(), lo.data(), n,
                                     w.w, w.wPrec, q);
                ASSERT_EQ(r1, r2) << "bits=" << bits << " n=" << n;
            }
        }
    }
}

TEST_P(SimdBackendTest, NttButterflyKernelsMatchScalar)
{
    for (unsigned bits : kPrimeWidths) {
        const u64 q = primeOfWidth(bits);
        const ShoupMul w(q - 2, q);
        for (std::size_t n : kLens) {
            // Forward butterflies take operands anywhere in [0, 4q);
            // the boundaries hit both conditional-subtract edges.
            auto x1 = randomVec(n, 4 * q, 23 * bits + n,
                                {q - 1, 2 * q - 1, 4 * q - 1});
            auto y1 = randomVec(n, 4 * q, 29 * bits + n,
                                {4 * q - 1, 2 * q - 1, q - 1});
            auto x2 = x1, y2 = y1;
            ref().nttFwdButterflyVec(x1.data(), y1.data(), n, w.w,
                                     w.wPrec, q);
            vec().nttFwdButterflyVec(x2.data(), y2.data(), n, w.w,
                                     w.wPrec, q);
            ASSERT_EQ(x1, x2) << "fwd bits=" << bits << " n=" << n;
            ASSERT_EQ(y1, y2) << "fwd bits=" << bits << " n=" << n;

            // Inverse butterflies take operands in [0, 2q).
            x1 = randomVec(n, 2 * q, 31 * bits + n, {q - 1, 2 * q - 1});
            y1 = randomVec(n, 2 * q, 37 * bits + n, {2 * q - 1, q - 1});
            x2 = x1;
            y2 = y1;
            ref().nttInvButterflyVec(x1.data(), y1.data(), n, w.w,
                                     w.wPrec, q);
            vec().nttInvButterflyVec(x2.data(), y2.data(), n, w.w,
                                     w.wPrec, q);
            ASSERT_EQ(x1, x2) << "inv bits=" << bits << " n=" << n;
            ASSERT_EQ(y1, y2) << "inv bits=" << bits << " n=" << n;

            // Correction + scaling passes.
            auto c1 = randomVec(n, 4 * q, 41 * bits + n,
                                {q - 1, 2 * q - 1, 4 * q - 1});
            auto c2 = c1;
            ref().nttCorrectVec(c1.data(), n, q);
            vec().nttCorrectVec(c2.data(), n, q);
            ASSERT_EQ(c1, c2) << "correct bits=" << bits << " n=" << n;

            auto s1 = randomVec(n, 2 * q, 43 * bits + n,
                                {q - 1, 2 * q - 1});
            auto s2 = s1;
            ref().nttScaleInvVec(s1.data(), n, w.w, w.wPrec, q);
            vec().nttScaleInvVec(s2.data(), n, w.w, w.wPrec, q);
            ASSERT_EQ(s1, s2) << "scale bits=" << bits << " n=" << n;
        }
    }
}

TEST_P(SimdBackendTest, BaseconvMacMatchesScalar)
{
    // Narrow/narrow engages the vector MAC; a wide source or wide
    // destination modulus must take the (identical) scalar fallback.
    struct Shape
    {
        unsigned src_bits, dst_bits;
    };
    for (Shape s : {Shape{28, 28}, Shape{28, 50}, Shape{50, 28},
                    Shape{50, 50}, Shape{60, 60}}) {
        const std::size_t n = 200; // not a multiple of 8: tail coverage
        const std::size_t ls = 9;  // forces >1 accumulator flush at 28b
        auto src = generateNttPrimes(s.src_bits, 1 << 10, ls);
        const u64 q = primeOfWidth(s.dst_bits);
        const u64 x_bound = *std::max_element(src.begin(), src.end());

        std::vector<std::vector<u64>> x(ls);
        std::vector<const u64 *> xs(ls);
        std::vector<u64> cs(ls);
        FastRng rng(71 * s.src_bits + s.dst_bits);
        for (std::size_t i = 0; i < ls; ++i) {
            x[i] = randomVec(n, src[i], rng.next64(), {src[i] - 1, 0});
            xs[i] = x[i].data();
            cs[i] = rng.nextBelow(q);
        }
        std::vector<u64> y1(n), y2(n);
        ref().baseconvMacVec(y1.data(), xs.data(), cs.data(), ls, n, q,
                             x_bound);
        vec().baseconvMacVec(y2.data(), xs.data(), cs.data(), ls, n, q,
                             x_bound);
        ASSERT_EQ(y1, y2) << "src_bits=" << s.src_bits
                          << " dst_bits=" << s.dst_bits;
    }
}

TEST_P(SimdBackendTest, GatherMatchesScalar)
{
    FastRng rng(97);
    for (std::size_t n : kLens) {
        std::vector<u64> src = randomVec(n, ~u64{0}, 101 + n);
        std::vector<std::uint32_t> idx(n);
        std::iota(idx.begin(), idx.end(), 0u);
        for (std::size_t i = n; i > 1; --i)
            std::swap(idx[i - 1], idx[rng.nextBelow(i)]);
        std::vector<u64> d1(n), d2(n);
        ref().gatherVec(d1.data(), src.data(), idx.data(), n);
        vec().gatherVec(d2.data(), src.data(), idx.data(), n);
        ASSERT_EQ(d1, d2) << "n=" << n;
    }
}

TEST_P(SimdBackendTest, WholeNttTransformMatchesScalar)
{
    // End-to-end: the backend under test must reproduce the scalar
    // forward and inverse transforms bit-for-bit, including the lazy
    // intermediate representatives (checked implicitly: any divergence
    // inside a stage propagates to the output).
    BackendGuard guard;
    const std::size_t n = 1 << 12;
    for (unsigned bits : {28u, 50u}) {
        const u64 q = generateNttPrimes(bits, n, 1)[0];
        NttTables tables(n, q);
        const auto input = randomVec(n, q, 1000 + bits, {0, q - 1});

        ASSERT_TRUE(setSimdBackend(SimdBackend::Scalar));
        auto a = input;
        tables.forward(a.data());
        auto a_rt = a;
        tables.inverse(a_rt.data());
        EXPECT_EQ(a_rt, input);

        ASSERT_TRUE(setSimdBackend(GetParam()));
        auto b = input;
        tables.forward(b.data());
        ASSERT_EQ(a, b) << "forward bits=" << bits;
        tables.inverse(b.data());
        ASSERT_EQ(b, input) << "round trip bits=" << bits;
    }
}

TEST_P(SimdBackendTest, RnsPolyOpsMatchScalar)
{
    // A realistic operation chain through RnsPoly under each backend:
    // NTT, multiply, scalar multiply, automorphism, add, inverse NTT.
    BackendGuard guard;
    const std::size_t n = 1 << 10;
    auto primes = generateNttPrimes(28, n, 2);
    auto wide = generateNttPrimes(50, n, 1);
    primes.push_back(wide[0]); // mixed widths in one chain
    RnsChain chain(n, primes);
    const std::vector<unsigned> idx{0, 1, 2};

    auto run = [&](SimdBackend backend) {
        EXPECT_TRUE(setSimdBackend(backend));
        RnsPoly p(chain, idx, false);
        RnsPoly r(chain, idx, false);
        FastRng rng(2026);
        for (std::size_t t = 0; t < 3; ++t) {
            for (auto &v : p.residue(t))
                v = rng.nextBelow(p.modulus(t));
            for (auto &v : r.residue(t))
                v = rng.nextBelow(r.modulus(t));
        }
        p.toNtt();
        r.toNtt();
        p *= r;
        p.mulScalar(123456789);
        p = p.automorphism(5);
        p += r;
        p -= r;
        p.negate();
        p.toCoeff();
        return p.data();
    };

    const auto scalar_out = run(SimdBackend::Scalar);
    const auto vec_out = run(GetParam());
    ASSERT_EQ(scalar_out, vec_out);
}

INSTANTIATE_TEST_SUITE_P(
    AvailableBackends, SimdBackendTest,
    ::testing::ValuesIn(vectorBackends()),
    [](const ::testing::TestParamInfo<SimdBackend> &info) {
        return simdBackendName(info.param);
    });

// GTest flags an empty ValuesIn; on hosts with no vector backend the
// suite legitimately has nothing to check.
GTEST_ALLOW_UNINSTANTIATED_PARAMETERIZED_TEST(SimdBackendTest);

TEST(SimdDispatch, ScalarTableAlwaysAvailable)
{
    ASSERT_NE(kernelTableFor(SimdBackend::Scalar), nullptr);
    EXPECT_EQ(kernelTableFor(SimdBackend::Scalar)->id,
              SimdBackend::Scalar);
}

TEST(SimdDispatch, SetAndRestoreBackend)
{
    BackendGuard guard;
    ASSERT_TRUE(setSimdBackend(SimdBackend::Scalar));
    EXPECT_EQ(activeSimdBackend(), SimdBackend::Scalar);
    EXPECT_STREQ(kernels().name, "scalar");
    for (SimdBackend b : vectorBackends()) {
        ASSERT_TRUE(setSimdBackend(b));
        EXPECT_EQ(activeSimdBackend(), b);
    }
}

TEST(SimdDispatch, BackendNames)
{
    EXPECT_STREQ(simdBackendName(SimdBackend::Scalar), "scalar");
    EXPECT_STREQ(simdBackendName(SimdBackend::Avx2), "avx2");
    EXPECT_STREQ(simdBackendName(SimdBackend::Avx512), "avx512");
}

} // namespace

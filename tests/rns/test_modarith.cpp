/** Tests for scalar modular arithmetic. */

#include <gtest/gtest.h>

#include "rns/modarith.h"
#include "rns/primes.h"
#include "util/prng.h"

namespace cl {
namespace {

std::vector<u64>
testPrimes()
{
    // One prime per width class: 28-bit (hardware), 40-bit (scale),
    // 59-bit (wide/test precision).
    std::vector<u64> out;
    for (unsigned bits : {28u, 40u, 59u})
        out.push_back(generateNttPrimes(bits, 1 << 12, 1)[0]);
    return out;
}

class ModArithTest : public ::testing::TestWithParam<u64>
{
};

TEST_P(ModArithTest, AddSubInverse)
{
    const u64 q = GetParam();
    FastRng rng(1);
    for (int i = 0; i < 200; ++i) {
        const u64 a = rng.nextBelow(q), b = rng.nextBelow(q);
        EXPECT_EQ(subMod(addMod(a, b, q), b, q), a);
        EXPECT_EQ(addMod(subMod(a, b, q), b, q), a);
    }
}

TEST_P(ModArithTest, MulMatchesWideProduct)
{
    const u64 q = GetParam();
    FastRng rng(2);
    for (int i = 0; i < 200; ++i) {
        const u64 a = rng.nextBelow(q), b = rng.nextBelow(q);
        EXPECT_EQ(mulMod(a, b, q),
                  static_cast<u64>((unsigned __int128)a * b % q));
    }
}

TEST_P(ModArithTest, ShoupMatchesMulMod)
{
    const u64 q = GetParam();
    FastRng rng(3);
    for (int i = 0; i < 100; ++i) {
        const u64 w = rng.nextBelow(q);
        const ShoupMul s(w, q);
        for (int j = 0; j < 20; ++j) {
            const u64 x = rng.nextBelow(q);
            EXPECT_EQ(s.mul(x, q), mulMod(x, w, q));
        }
    }
}

TEST_P(ModArithTest, PowAndInverse)
{
    const u64 q = GetParam();
    FastRng rng(4);
    for (int i = 0; i < 50; ++i) {
        const u64 a = 1 + rng.nextBelow(q - 1);
        EXPECT_EQ(mulMod(a, invMod(a, q), q), 1u);
        EXPECT_EQ(powMod(a, q - 1, q), 1u); // Fermat
    }
}

TEST_P(ModArithTest, CenteredRepresentative)
{
    const u64 q = GetParam();
    EXPECT_EQ(centered(0, q), 0);
    EXPECT_EQ(centered(1, q), 1);
    EXPECT_EQ(centered(q - 1, q), -1);
    EXPECT_EQ(reduceSigned(-1, q), q - 1);
    EXPECT_EQ(reduceSigned(-(std::int64_t)q - 5, q), q - 5);
}

INSTANTIATE_TEST_SUITE_P(Widths, ModArithTest,
                         ::testing::ValuesIn(testPrimes()));

TEST(ModArith, PowEdgeCases)
{
    EXPECT_EQ(powMod(5, 0, 97), 1u);
    EXPECT_EQ(powMod(0, 5, 97), 0u);
    EXPECT_EQ(powMod(96, 2, 97), 1u);
}

} // namespace
} // namespace cl

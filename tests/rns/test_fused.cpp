/**
 * @file
 * Property tests for the fused pipeline kernels (DESIGN.md §5e):
 * every fused kernel must be bit-identical to the composed sequence
 * of primitive kernels it replaces — including the Harvey lazy
 * representatives — on every available backend, for every named
 * prime width, on random inputs and on the lazy-reduction boundary
 * values q-1, 2q-1, 4q-1.
 */

#include <gtest/gtest.h>

#include <vector>

#include "rns/ntt.h"
#include "rns/primes.h"
#include "rns/simd/kernels.h"
#include "util/prng.h"

namespace {

using namespace cl;

/** Restores the active backend on scope exit. */
class BackendGuard
{
  public:
    BackendGuard() : saved_(activeSimdBackend()) {}
    ~BackendGuard() { setSimdBackend(saved_); }

  private:
    SimdBackend saved_;
};

/** Restores the fusion gate on scope exit. */
class FusionGuard
{
  public:
    FusionGuard() : saved_(fusionEnabled()) {}
    ~FusionGuard() { setFusionEnabled(saved_); }

  private:
    bool saved_;
};

std::vector<SimdBackend>
allBackends()
{
    std::vector<SimdBackend> v{SimdBackend::Scalar};
    for (SimdBackend b : {SimdBackend::Avx2, SimdBackend::Avx512}) {
        if (kernelTableFor(b))
            v.push_back(b);
    }
    return v;
}

const unsigned kPrimeWidths[] = {28, 40, 50, 60};

u64
primeOfWidth(unsigned bits, std::size_t n = 1 << 10)
{
    return generateNttPrimes(bits, n, 1)[0];
}

/** Two distinct primes of the same width (q and the dropped ql). */
std::pair<u64, u64>
primePair(unsigned bits, std::size_t n = 1 << 10)
{
    const auto p = generateNttPrimes(bits, n, 2);
    return {p[0], p[1]};
}

std::vector<u64>
randomVec(std::size_t n, u64 bound, u64 seed,
          std::initializer_list<u64> boundary = {})
{
    std::vector<u64> v(n);
    FastRng rng(seed);
    for (auto &x : v)
        x = rng.nextBelow(bound);
    std::size_t i = 0;
    for (u64 b : boundary) {
        if (i < n)
            v[i++] = b;
        if (i + 5 < n)
            v[i + 5] = b;
    }
    return v;
}

// Odd lengths force every kernel's scalar tail path.
const std::size_t kLens[] = {1, 7, 64, 259};

/** Rescale constants for dropping tower ql, correcting residues mod q.
 *  With @p with_scale the nInv pair is a real N^-1 Shoup pair (NTT
 *  path); otherwise the exact identity pair {1, 2^64/q} (coeff path,
 *  mulLazy(x, 1) == x for x < q). */
RescaleConsts
makeConsts(u64 q, u64 ql, u64 n_inv_value)
{
    const ShoupMul n_inv(n_inv_value, q);
    const ShoupMul ql_inv(invMod(ql % q, q), q);
    return RescaleConsts{n_inv.w,  n_inv.wPrec,  ql,
                         ql / 2,   ql_inv.w,     ql_inv.wPrec};
}

/** The composed rescale correction, built only from the primitive
 *  scalar kernels the fused path replaces: iNTT-scale fold to
 *  canonical, centered last-tower subtract, q_l^-1 Shoup multiply. */
std::vector<u64>
composedRescale(std::vector<u64> a, const std::vector<u64> &xl,
                const RescaleConsts &rc, u64 q)
{
    const KernelTable &R = *kernelTableFor(SimdBackend::Scalar);
    const std::size_t n = a.size();
    R.nttScaleInvVec(a.data(), n, rc.nInvW, rc.nInvPrec, q);
    std::vector<u64> xm(n);
    for (std::size_t i = 0; i < n; ++i) {
        const u64 xs = addMod(xl[i], rc.half, rc.ql);
        xm[i] = subMod(xs % q, rc.half % q, q);
    }
    R.subModVec(a.data(), xm.data(), n, q);
    R.mulModShoupVec(a.data(), a.data(), n, rc.qlInvW, rc.qlInvPrec, q);
    return a;
}

class FusedKernelTest : public ::testing::TestWithParam<SimdBackend>
{
  protected:
    const KernelTable &vec() { return *kernelTableFor(GetParam()); }
};

TEST_P(FusedKernelTest, InvScaleButterflyMatchesComposed)
{
    // Fused last-GS-stage + N^-1 scale vs. nttInvButterflyVec followed
    // by nttScaleInvVec on both halves.
    const KernelTable &R = *kernelTableFor(SimdBackend::Scalar);
    for (unsigned bits : kPrimeWidths) {
        const u64 q = primeOfWidth(bits);
        const ShoupMul w(q - 2, q);
        const ShoupMul n_inv(invMod(1024 % q, q), q);
        for (std::size_t t : kLens) {
            // GS inputs live in [0, 2q); salt both lazy boundaries.
            auto x1 = randomVec(t, 2 * q, 211 * bits + t,
                                {q - 1, 2 * q - 1, 0});
            auto y1 = randomVec(t, 2 * q, 223 * bits + t,
                                {2 * q - 1, 0, q - 1});
            auto x2 = x1, y2 = y1;

            R.nttInvButterflyVec(x1.data(), y1.data(), t, w.w, w.wPrec,
                                 q);
            R.nttScaleInvVec(x1.data(), t, n_inv.w, n_inv.wPrec, q);
            R.nttScaleInvVec(y1.data(), t, n_inv.w, n_inv.wPrec, q);

            vec().nttInvScaleButterflyVec(x2.data(), y2.data(), t, w.w,
                                          w.wPrec, n_inv.w, n_inv.wPrec,
                                          q);
            ASSERT_EQ(x1, x2) << "bits=" << bits << " t=" << t;
            ASSERT_EQ(y1, y2) << "bits=" << bits << " t=" << t;
        }
    }
}

TEST_P(FusedKernelTest, RescaleEpilogueMatchesComposed)
{
    for (unsigned bits : kPrimeWidths) {
        const auto [q, ql] = primePair(bits);
        for (std::size_t n : kLens) {
            const auto xl =
                randomVec(n, ql, 227 * bits + n, {ql - 1, 0});

            // NTT path: lazy iNTT output in [0, 2q), real N^-1 pair.
            {
                const auto rc = makeConsts(q, ql, invMod(1024 % q, q));
                auto a = randomVec(n, 2 * q, 229 * bits + n,
                                   {q - 1, 2 * q - 1, 0});
                const auto expect = composedRescale(a, xl, rc, q);
                vec().rescaleEpilogueVec(a.data(), xl.data(), n, &rc, q);
                ASSERT_EQ(a, expect)
                    << "ntt path bits=" << bits << " n=" << n;
            }

            // Coeff path: canonical input, identity Shoup pair {1, .}.
            {
                const auto rc = makeConsts(q, ql, 1);
                auto a = randomVec(n, q, 233 * bits + n, {q - 1, 0});
                const auto a0 = a;
                const auto expect = composedRescale(a, xl, rc, q);
                vec().rescaleEpilogueVec(a.data(), xl.data(), n, &rc, q);
                ASSERT_EQ(a, expect)
                    << "coeff path bits=" << bits << " n=" << n;

                // The identity pair really is the identity: the fold
                // step of composedRescale must not have changed a.
                auto ident = a0;
                kernelTableFor(SimdBackend::Scalar)
                    ->nttScaleInvVec(ident.data(), n, rc.nInvW,
                                     rc.nInvPrec, q);
                ASSERT_EQ(ident, a0);
            }
        }
    }
}

TEST_P(FusedKernelTest, RescaleNttFwdButterflyMatchesComposed)
{
    // Fused correction + first CT stage vs. the composed correction of
    // both halves followed by nttFwdButterflyVec (whose [0,4q)->[0,2q)
    // fold is a no-op on the canonical corrected values).
    const KernelTable &R = *kernelTableFor(SimdBackend::Scalar);
    for (unsigned bits : kPrimeWidths) {
        const auto [q, ql] = primePair(bits);
        const ShoupMul w(q / 5 + 3, q);
        const auto rc = makeConsts(q, ql, invMod(1024 % q, q));
        for (std::size_t t : kLens) {
            auto x1 = randomVec(t, 2 * q, 239 * bits + t,
                                {q - 1, 2 * q - 1, 0});
            auto y1 = randomVec(t, 2 * q, 241 * bits + t,
                                {2 * q - 1, 0, q - 1});
            const auto xlx =
                randomVec(t, ql, 251 * bits + t, {ql - 1, 0});
            const auto xly =
                randomVec(t, ql, 257 * bits + t, {0, ql - 1});
            auto x2 = x1, y2 = y1;

            x1 = composedRescale(x1, xlx, rc, q);
            y1 = composedRescale(y1, xly, rc, q);
            R.nttFwdButterflyVec(x1.data(), y1.data(), t, w.w, w.wPrec,
                                 q);

            vec().rescaleNttFwdButterflyVec(x2.data(), y2.data(),
                                            xlx.data(), xly.data(), t,
                                            &rc, w.w, w.wPrec, q);
            ASSERT_EQ(x1, x2) << "bits=" << bits << " t=" << t;
            ASSERT_EQ(y1, y2) << "bits=" << bits << " t=" << t;
        }
    }
}

TEST_P(FusedKernelTest, CorrectSubMulShoupMatchesComposed)
{
    // Fused forward-NTT correction + modDown epilogue vs.
    // nttCorrectVec followed by subMulShoupVec.
    const KernelTable &R = *kernelTableFor(SimdBackend::Scalar);
    for (unsigned bits : kPrimeWidths) {
        const u64 q = primeOfWidth(bits);
        const ShoupMul w(q - 7, q);
        for (std::size_t n : kLens) {
            // Forward-NTT output lives in [0, 4q): salt every fold
            // boundary.
            auto x1 = randomVec(n, 4 * q, 263 * bits + n,
                                {q - 1, 2 * q - 1, 4 * q - 1});
            const auto acc =
                randomVec(n, q, 269 * bits + n, {q - 1, 0});
            auto x2 = x1;
            std::vector<u64> d1(n), d2(n);

            R.nttCorrectVec(x1.data(), n, q);
            R.subMulShoupVec(d1.data(), acc.data(), x1.data(), n, w.w,
                             w.wPrec, q);

            vec().nttCorrectSubMulShoupVec(d2.data(), acc.data(),
                                           x2.data(), n, w.w, w.wPrec,
                                           q);
            ASSERT_EQ(d1, d2) << "bits=" << bits << " n=" << n;
        }
    }
}

TEST_P(FusedKernelTest, WholeInverseNttFusedMatchesComposed)
{
    // NttTables::inverse with fusion on (last GS stage fused with the
    // scale) must be bit-identical to the composed inverse, and both
    // must round-trip forward.
    BackendGuard backend_guard;
    FusionGuard fusion_guard;
    ASSERT_TRUE(setSimdBackend(GetParam()));
    const std::size_t n = 1 << 12;
    for (unsigned bits : {28u, 50u}) {
        const u64 q = generateNttPrimes(bits, n, 1)[0];
        NttTables tables(n, q);
        const auto input = randomVec(n, q, 2000 + bits, {0, q - 1});

        auto fwd = input;
        tables.forward(fwd.data());

        setFusionEnabled(false);
        auto composed = fwd;
        tables.inverse(composed.data());
        EXPECT_EQ(composed, input) << "composed round trip bits=" << bits;

        setFusionEnabled(true);
        auto fused = fwd;
        tables.inverse(fused.data());
        ASSERT_EQ(fused, composed) << "bits=" << bits;
    }
}

TEST_P(FusedKernelTest, ForwardRescaleMatchesComposedPipeline)
{
    // The whole fused rescale tower pipeline: inverseLazy +
    // forwardRescale must equal inverse (canonical), composed
    // correction, forward — the exact sequence the unfused
    // rescaleLastTower runs per tower.
    BackendGuard backend_guard;
    FusionGuard fusion_guard;
    ASSERT_TRUE(setSimdBackend(GetParam()));
    const std::size_t n = 1 << 12;
    for (unsigned bits : {28u, 50u}) {
        auto primes = generateNttPrimes(bits, n, 2);
        const u64 q = primes[0], ql = primes[1];
        NttTables tables(n, q);
        const ShoupMul ql_inv(invMod(ql % q, q), q);
        const RescaleConsts rc{tables.nInv().w, tables.nInv().wPrec,
                               ql, ql / 2, ql_inv.w, ql_inv.wPrec};

        const auto input = randomVec(n, q, 3000 + bits, {q - 1, 0});
        const auto xl = randomVec(n, ql, 3100 + bits, {ql - 1, 0});

        // Composed: canonical inverse (unfused), identity-pair
        // correction, canonical forward.
        setFusionEnabled(false);
        auto composed = input;
        tables.inverse(composed.data());
        composed = composedRescale(composed, xl, makeConsts(q, ql, 1), q);
        tables.forward(composed.data());

        // Fused: lazy inverse, correction with the real N^-1 pair
        // folded into the forward transform's first CT stage.
        auto fused = input;
        tables.inverseLazy(fused.data());
        tables.forwardRescale(fused.data(), xl.data(), rc);

        ASSERT_EQ(fused, composed) << "bits=" << bits;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AvailableBackends, FusedKernelTest,
    ::testing::ValuesIn(allBackends()),
    [](const ::testing::TestParamInfo<SimdBackend> &info) {
        return simdBackendName(info.param);
    });

TEST(FusionGate, SetAndRestore)
{
    FusionGuard guard;
    setFusionEnabled(false);
    EXPECT_FALSE(fusionEnabled());
    setFusionEnabled(true);
    EXPECT_TRUE(fusionEnabled());
}

} // namespace

/** Tests for changeRNSBase: exactness on small values, bounded error. */

#include <gtest/gtest.h>

#include "rns/baseconv.h"
#include "rns/primes.h"
#include "util/biguint.h"
#include "util/prng.h"

namespace cl {
namespace {

class BaseConvTest : public ::testing::TestWithParam<std::tuple<unsigned,
                                                                unsigned>>
{
  protected:
    void
    SetUp() override
    {
        ls_ = std::get<0>(GetParam());
        ld_ = std::get<1>(GetParam());
        n_ = 64;
        auto primes = generateNttPrimes(30, n_, ls_ + ld_);
        chain_ = std::make_unique<RnsChain>(n_, primes);
        for (unsigned i = 0; i < ls_; ++i)
            src_.push_back(i);
        for (unsigned i = 0; i < ld_; ++i)
            dst_.push_back(ls_ + i);
    }

    unsigned ls_, ld_;
    std::size_t n_;
    std::unique_ptr<RnsChain> chain_;
    std::vector<unsigned> src_, dst_;
};

TEST_P(BaseConvTest, ZeroMapsToZero)
{
    BaseConverter conv(*chain_, src_, dst_);
    std::vector<std::vector<u64>> in(ls_, std::vector<u64>(n_, 0));
    std::vector<std::vector<u64>> out;
    conv.convert(in, out);
    ASSERT_EQ(out.size(), ld_);
    for (unsigned j = 0; j < ld_; ++j) {
        for (std::size_t c = 0; c < n_; ++c)
            EXPECT_EQ(out[j][c], 0u);
    }
}

TEST_P(BaseConvTest, ExactWhenScaledResiduesAreSmall)
{
    // The conversion's k*Q error term is Σ floor-error of the scaled
    // residues; constructing the input from small *scaled* residues
    // (x ≡ c_i * (Q/q_i)·... i.e., x'_i = c_i directly) makes it
    // exact. We pick x = Σ c_i·(Q/q_i) with tiny c_i, whose scaled
    // residues are exactly c_i.
    BaseConverter conv(*chain_, src_, dst_);
    FastRng rng(1);
    std::vector<u64> c(ls_);
    for (auto &v : c)
        v = rng.nextBelow(4);

    std::vector<std::vector<u64>> in(ls_, std::vector<u64>(n_, 0));
    for (unsigned i = 0; i < ls_; ++i) {
        const u64 qi = chain_->modulus(src_[i]);
        // x mod q_i = c_i * (Q/q_i) mod q_i (other terms vanish).
        u64 qhat = 1;
        for (unsigned m = 0; m < ls_; ++m) {
            if (m != i)
                qhat = mulMod(qhat, chain_->modulus(src_[m]) % qi, qi);
        }
        in[i][0] = mulMod(c[i], qhat, qi);
    }
    std::vector<std::vector<u64>> out;
    conv.convert(in, out);

    // Expected exact value: Σ c_i·(Q/q_i) mod p_j.
    for (unsigned j = 0; j < ld_; ++j) {
        const u64 pj = chain_->modulus(dst_[j]);
        u64 expect = 0;
        for (unsigned i = 0; i < ls_; ++i) {
            u64 qhat = 1;
            for (unsigned m = 0; m < ls_; ++m) {
                if (m != i)
                    qhat = mulMod(qhat,
                                  chain_->modulus(src_[m]) % pj, pj);
            }
            expect = addMod(expect, mulMod(c[i] % pj, qhat, pj), pj);
        }
        EXPECT_EQ(out[j][0], expect);
    }
}

TEST_P(BaseConvTest, ErrorIsMultipleOfQ)
{
    // For arbitrary values the output equals the input plus k*Q with
    // 0 <= k <= ls (the approximate-conversion error bound).
    BaseConverter conv(*chain_, src_, dst_);
    std::vector<u64> src_primes;
    for (unsigned i : src_)
        src_primes.push_back(chain_->modulus(i));
    const BigUint q_prod = BigUint::product(src_primes);

    FastRng rng(2);
    std::vector<std::vector<u64>> in(ls_, std::vector<u64>(n_));
    std::vector<BigUint> truth;
    for (std::size_t c = 0; c < n_; ++c) {
        // Build a random value < Q via CRT of random residues, using
        // the exact CRT from the converter applied to a huge modulus
        // set... instead: take v = random 64-bit times random 64-bit,
        // reduced by construction below Q only when small ls. Use
        // direct per-residue randoms and verify congruences instead.
        for (unsigned i = 0; i < ls_; ++i)
            in[i][c] = rng.nextBelow(chain_->modulus(src_[i]));
    }
    std::vector<std::vector<u64>> out;
    conv.convert(in, out);

    // Verify congruence: out must equal some lift x with
    // x ≡ in (mod q_i) for all i and x < (ls+1)*Q. We check this by
    // exhaustively testing the k in [0, ls]: exists k such that for
    // all destination moduli, out_j ≡ x0 + k*Q (mod p_j), where x0 is
    // the exact CRT lift.
    // Exact CRT lift via BigUint.
    for (std::size_t c = 0; c < n_; ++c) {
        BigUint x0(0);
        for (unsigned i = 0; i < ls_; ++i) {
            const u64 qi = chain_->modulus(src_[i]);
            u64 qhat_mod = 1;
            std::vector<u64> others;
            for (unsigned m = 0; m < ls_; ++m) {
                if (m == i)
                    continue;
                others.push_back(chain_->modulus(src_[m]));
                qhat_mod = mulMod(qhat_mod,
                                  chain_->modulus(src_[m]) % qi, qi);
            }
            const u64 ci = mulMod(in[i][c], invMod(qhat_mod, qi), qi);
            BigUint term = BigUint::product(others);
            term.mulU64(ci);
            x0 += term;
        }
        while (x0 >= q_prod)
            x0 -= q_prod;

        bool found = false;
        for (unsigned k = 0; k <= ls_ && !found; ++k) {
            bool all = true;
            for (unsigned j = 0; j < ld_; ++j) {
                const u64 pj = chain_->modulus(dst_[j]);
                const u64 expect =
                    addMod(x0.modU64(pj),
                           mulMod(k, q_prod.modU64(pj), pj), pj);
                all &= out[j][c] == expect;
            }
            found = all;
        }
        EXPECT_TRUE(found) << "coefficient " << c
                           << " not within k*Q of the exact lift";
    }
}

TEST_P(BaseConvTest, MultiplyCountMatchesFormula)
{
    BaseConverter conv(*chain_, src_, dst_);
    EXPECT_EQ(conv.multipliesPerCoeff(), ls_ + ls_ * ld_);
}

INSTANTIATE_TEST_SUITE_P(Shapes, BaseConvTest,
                         ::testing::Combine(::testing::Values(1u, 2u, 4u,
                                                              8u),
                                            ::testing::Values(1u, 3u, 8u)));

TEST(BaseConv, SingleSourceBroadcast)
{
    // Lifting a single residue is a plain broadcast mod each dest —
    // this is the inner step of *standard* keyswitching.
    const std::size_t n = 32;
    auto primes = generateNttPrimes(30, n, 4);
    RnsChain chain(n, primes);
    BaseConverter conv(chain, {0}, {1, 2, 3});
    FastRng rng(3);
    std::vector<std::vector<u64>> in(1, std::vector<u64>(n));
    for (auto &v : in[0])
        v = rng.nextBelow(chain.modulus(0));
    std::vector<std::vector<u64>> out;
    conv.convert(in, out);
    for (unsigned j = 0; j < 3; ++j) {
        for (std::size_t c = 0; c < n; ++c)
            EXPECT_EQ(out[j][c], in[0][c] % chain.modulus(j + 1));
    }
}

} // namespace
} // namespace cl

/** Tests for automorphism maps in both domains. */

#include <gtest/gtest.h>

#include "rns/automorphism.h"
#include "rns/primes.h"
#include "util/prng.h"

namespace cl {
namespace {

/** Brute-force automorphism in coefficient domain. */
std::vector<u64>
bruteAuto(const std::vector<u64> &a, std::size_t k, u64 q)
{
    const std::size_t n = a.size();
    std::vector<u64> out(n, 0);
    for (std::size_t i = 0; i < n; ++i) {
        const std::size_t e = (i * k) % (2 * n);
        if (e < n)
            out[e] = a[i];
        else
            out[e - n] = a[i] == 0 ? 0 : q - a[i];
    }
    return out;
}

class AutoTest : public ::testing::TestWithParam<std::size_t>
{
  protected:
    void
    SetUp() override
    {
        n_ = 256;
        q_ = generateNttPrimes(30, n_, 1)[0];
        tables_ = std::make_unique<NttTables>(n_, q_);
    }

    std::size_t n_;
    u64 q_;
    std::unique_ptr<NttTables> tables_;
};

TEST_P(AutoTest, CoeffDomainMatchesBruteForce)
{
    const std::size_t k = GetParam();
    AutomorphismMap map(n_, k, *tables_);
    FastRng rng(1);
    std::vector<u64> a(n_);
    for (auto &c : a)
        c = rng.nextBelow(q_);
    std::vector<u64> out(n_);
    map.applyCoeff(a.data(), out.data(), q_);
    EXPECT_EQ(out, bruteAuto(a, k, q_));
}

TEST_P(AutoTest, NttDomainCommutesWithTransform)
{
    // NTT(auto(a)) == autoNtt(NTT(a)) — the defining property of the
    // slot-domain permutation (what CraterLake's automorphism FU
    // exploits to avoid domain switches).
    const std::size_t k = GetParam();
    AutomorphismMap map(n_, k, *tables_);
    FastRng rng(2);
    std::vector<u64> a(n_);
    for (auto &c : a)
        c = rng.nextBelow(q_);

    std::vector<u64> path1(n_); // coeff-domain auto then NTT
    map.applyCoeff(a.data(), path1.data(), q_);
    tables_->forward(path1.data());

    std::vector<u64> a_ntt = a; // NTT then slot permutation
    tables_->forward(a_ntt.data());
    std::vector<u64> path2(n_);
    map.applyNtt(a_ntt.data(), path2.data());

    EXPECT_EQ(path1, path2);
}

// Odd exponents: 5^j values, the conjugation 2N-1, and others.
INSTANTIATE_TEST_SUITE_P(Exponents, AutoTest,
                         ::testing::Values(1u, 3u, 5u, 25u, 125u, 511u,
                                           127u));

TEST(Automorphism, CompositionLaw)
{
    // auto_j(auto_k(a)) == auto_{jk mod 2N}(a).
    const std::size_t n = 128;
    const u64 q = generateNttPrimes(28, n, 1)[0];
    NttTables t(n, q);
    AutomorphismMap m5(n, 5, t), m25(n, 25, t);
    FastRng rng(3);
    std::vector<u64> a(n);
    for (auto &c : a)
        c = rng.nextBelow(q);
    std::vector<u64> tmp(n), twice(n), once(n);
    m5.applyCoeff(a.data(), tmp.data(), q);
    m5.applyCoeff(tmp.data(), twice.data(), q);
    m25.applyCoeff(a.data(), once.data(), q);
    EXPECT_EQ(twice, once);
}

TEST(Automorphism, IdentityExponent)
{
    const std::size_t n = 64;
    const u64 q = generateNttPrimes(28, n, 1)[0];
    NttTables t(n, q);
    AutomorphismMap m1(n, 1, t);
    FastRng rng(4);
    std::vector<u64> a(n), out(n);
    for (auto &c : a)
        c = rng.nextBelow(q);
    m1.applyCoeff(a.data(), out.data(), q);
    EXPECT_EQ(out, a);
    m1.applyNtt(a.data(), out.data());
    EXPECT_EQ(out, a);
}

TEST(Automorphism, SlotExponentsAreOddAndDistinct)
{
    const std::size_t n = 512;
    const u64 q = generateNttPrimes(28, n, 1)[0];
    NttTables t(n, q);
    auto exps = nttSlotExponents(t);
    ASSERT_EQ(exps.size(), n);
    std::vector<bool> seen(2 * n, false);
    for (auto e : exps) {
        EXPECT_EQ(e % 2, 1u);
        EXPECT_FALSE(seen[e]);
        seen[e] = true;
    }
}

} // namespace
} // namespace cl

/** Tests for the negacyclic NTT: round trips and convolution theorem. */

#include <gtest/gtest.h>

#include "rns/ntt.h"
#include "rns/primes.h"
#include "util/prng.h"

namespace cl {
namespace {

/** Schoolbook negacyclic multiplication, the ground truth. */
std::vector<u64>
negacyclicMul(const std::vector<u64> &a, const std::vector<u64> &b, u64 q)
{
    const std::size_t n = a.size();
    std::vector<u64> out(n, 0);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            const u64 p = mulMod(a[i], b[j], q);
            const std::size_t k = i + j;
            if (k < n)
                out[k] = addMod(out[k], p, q);
            else
                out[k - n] = subMod(out[k - n], p, q); // x^n = -1
        }
    }
    return out;
}

class NttTest : public ::testing::TestWithParam<std::tuple<unsigned, unsigned>>
{
  protected:
    void
    SetUp() override
    {
        logn_ = std::get<0>(GetParam());
        bits_ = std::get<1>(GetParam());
        n_ = std::size_t{1} << logn_;
        q_ = generateNttPrimes(bits_, n_, 1)[0];
        tables_ = std::make_unique<NttTables>(n_, q_);
    }

    std::vector<u64>
    randomPoly(std::uint64_t seed)
    {
        FastRng rng(seed);
        std::vector<u64> p(n_);
        for (auto &c : p)
            c = rng.nextBelow(q_);
        return p;
    }

    unsigned logn_, bits_;
    std::size_t n_;
    u64 q_;
    std::unique_ptr<NttTables> tables_;
};

TEST_P(NttTest, RoundTripIdentity)
{
    auto a = randomPoly(1);
    auto orig = a;
    tables_->forward(a.data());
    tables_->inverse(a.data());
    EXPECT_EQ(a, orig);
}

TEST_P(NttTest, InverseThenForwardIdentity)
{
    auto a = randomPoly(2);
    auto orig = a;
    tables_->inverse(a.data());
    tables_->forward(a.data());
    EXPECT_EQ(a, orig);
}

TEST_P(NttTest, ConvolutionTheorem)
{
    // Keep schoolbook cost bounded.
    if (n_ > 512)
        GTEST_SKIP() << "schoolbook too slow at this size";
    auto a = randomPoly(3);
    auto b = randomPoly(4);
    const auto expect = negacyclicMul(a, b, q_);

    tables_->forward(a.data());
    tables_->forward(b.data());
    std::vector<u64> c(n_);
    for (std::size_t i = 0; i < n_; ++i)
        c[i] = mulMod(a[i], b[i], q_);
    tables_->inverse(c.data());
    EXPECT_EQ(c, expect);
}

TEST_P(NttTest, Linearity)
{
    auto a = randomPoly(5);
    auto b = randomPoly(6);
    std::vector<u64> sum(n_);
    for (std::size_t i = 0; i < n_; ++i)
        sum[i] = addMod(a[i], b[i], q_);

    tables_->forward(a.data());
    tables_->forward(b.data());
    tables_->forward(sum.data());
    for (std::size_t i = 0; i < n_; ++i)
        EXPECT_EQ(sum[i], addMod(a[i], b[i], q_));
}

TEST_P(NttTest, ConstantPolynomialIsConstantSpectrum)
{
    std::vector<u64> a(n_, 0);
    a[0] = 7;
    tables_->forward(a.data());
    for (std::size_t i = 0; i < n_; ++i)
        EXPECT_EQ(a[i], 7u);
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndWidths, NttTest,
    ::testing::Combine(::testing::Values(3u, 8u, 9u, 12u),
                       ::testing::Values(28u, 40u, 59u)));

TEST(Ntt, LazyReductionRoundTripAllSizes)
{
    // The Harvey lazy-reduction kernels must (a) round-trip exactly
    // and (b) emit fully reduced values, for the 28-bit hardware
    // primes and for wide CKKS-precision primes, at every ring size
    // the library supports (2^10 .. 2^16).
    for (const unsigned bits : {28u, 59u}) {
        for (unsigned logn = 10; logn <= 16; ++logn) {
            const std::size_t n = std::size_t{1} << logn;
            const u64 q = generateNttPrimes(bits, n, 1)[0];
            NttTables t(n, q);
            FastRng rng(1000 * bits + logn);
            std::vector<u64> a(n);
            for (auto &c : a)
                c = rng.nextBelow(q);
            const auto orig = a;

            t.forward(a.data());
            for (std::size_t i = 0; i < n; ++i) {
                ASSERT_LT(a[i], q) << "unreduced forward output at "
                                   << i << " (bits=" << bits
                                   << ", logN=" << logn << ")";
            }
            t.inverse(a.data());
            for (std::size_t i = 0; i < n; ++i) {
                ASSERT_LT(a[i], q) << "unreduced inverse output at "
                                   << i;
            }
            ASSERT_EQ(a, orig) << "round trip failed (bits=" << bits
                               << ", logN=" << logn << ")";
        }
    }
}

TEST(Ntt, MonomialShiftProperty)
{
    // Multiplying by x rotates coefficients negacyclically; verified
    // via NTT pointwise multiply at N=16.
    const std::size_t n = 16;
    const u64 q = generateNttPrimes(28, n, 1)[0];
    NttTables t(n, q);
    std::vector<u64> a(n), x(n, 0);
    FastRng rng(7);
    for (auto &c : a)
        c = rng.nextBelow(q);
    x[1] = 1;
    auto af = a, xf = x;
    t.forward(af.data());
    t.forward(xf.data());
    std::vector<u64> c(n);
    for (std::size_t i = 0; i < n; ++i)
        c[i] = mulMod(af[i], xf[i], q);
    t.inverse(c.data());
    // Expect (a * x): coefficient i+1 = a_i, coefficient 0 = -a_{n-1}.
    EXPECT_EQ(c[0], a[n - 1] == 0 ? 0 : q - a[n - 1]);
    for (std::size_t i = 1; i < n; ++i)
        EXPECT_EQ(c[i], a[i - 1]);
}

} // namespace
} // namespace cl

/** Tests for NTT-friendly prime generation. */

#include <gtest/gtest.h>

#include "rns/primes.h"

namespace cl {
namespace {

TEST(Primes, MillerRabinKnownValues)
{
    EXPECT_TRUE(isPrime(2));
    EXPECT_TRUE(isPrime(3));
    EXPECT_TRUE(isPrime(998244353));          // 119 * 2^23 + 1
    EXPECT_TRUE(isPrime(576460752303423619)); // large prime
    EXPECT_FALSE(isPrime(1));
    EXPECT_FALSE(isPrime(0));
    EXPECT_FALSE(isPrime(998244353ULL * 7));
    EXPECT_FALSE(isPrime(3215031751ULL)); // strong pseudoprime to 2,3,5,7
}

TEST(Primes, GeneratedPrimesSatisfyCongruence)
{
    const std::size_t n = 1 << 13;
    auto primes = generateNttPrimes(30, n, 10);
    ASSERT_EQ(primes.size(), 10u);
    for (u64 q : primes) {
        EXPECT_TRUE(isPrime(q));
        EXPECT_EQ((q - 1) % (2 * n), 0u);
        EXPECT_GE(q, 1ULL << 29);
        EXPECT_LT(q, 1ULL << 30);
    }
    // Distinct and descending.
    for (std::size_t i = 1; i < primes.size(); ++i)
        EXPECT_LT(primes[i], primes[i - 1]);
}

TEST(Primes, PaperClaim28BitPrimesSuffientFor64K)
{
    // Sec 5.5: CraterLake needs 2*Lmax = 120 NTT-friendly 28-bit
    // moduli for N up to 64K; 28 bits is the narrowest width where
    // enough exist. Verify both directions of the claim.
    const std::size_t n64k = 1 << 16;
    const std::size_t available28 = countNttPrimes(28, n64k);
    EXPECT_GE(available28, 120u);
    const std::size_t available24 = countNttPrimes(24, n64k);
    EXPECT_LT(available24, 120u);
}

TEST(Primes, PrimitiveRootHasExactOrder)
{
    const std::size_t n = 1 << 10;
    auto primes = generateNttPrimes(28, n, 3);
    for (u64 q : primes) {
        const u64 psi = findPrimitiveRoot(q, 2 * n);
        EXPECT_EQ(powMod(psi, 2 * n, q), 1u);
        EXPECT_NE(powMod(psi, n, q), 1u);
        // psi^n must be -1 for the negacyclic embedding.
        EXPECT_EQ(powMod(psi, n, q), q - 1);
    }
}

TEST(Primes, FatalWhenNotEnoughExist)
{
    // Asking for far more 14-bit primes than exist for N=4096 dies.
    EXPECT_DEATH(generateNttPrimes(14, 1 << 12, 100), "fatal");
}

} // namespace
} // namespace cl

#include "simulator.h"

#include <algorithm>
#include <limits>
#include <memory>
#include <set>

#include "sim/trace.h"

namespace cl {

namespace {

constexpr std::uint32_t noUse = std::numeric_limits<std::uint32_t>::max();

/** A pool of identical units with per-unit busy-until times. */
class UnitPool
{
  public:
    explicit UnitPool(unsigned count) : freeAt_(count, 0) {}

    unsigned count() const { return static_cast<unsigned>(freeAt_.size()); }

    /** Earliest time >= ready at which @p k units are simultaneously
     *  free (unit availability is monotonic, so the k-th smallest
     *  free time works). */
    std::uint64_t
    earliest(unsigned k, std::uint64_t ready) const
    {
        CL_ASSERT(k <= freeAt_.size(), "pool oversubscribed: need ", k,
                  " of ", freeAt_.size());
        if (k == 0)
            return ready;
        std::vector<std::uint64_t> sorted(freeAt_);
        std::nth_element(sorted.begin(), sorted.begin() + (k - 1),
                         sorted.end());
        return std::max(ready, sorted[k - 1]);
    }

    /** Occupy @p k units from @p start for @p duration cycles. */
    void
    acquire(unsigned k, std::uint64_t start, std::uint64_t duration)
    {
        // Take the k units with the earliest free times.
        std::vector<std::size_t> order(freeAt_.size());
        for (std::size_t i = 0; i < order.size(); ++i)
            order[i] = i;
        std::sort(order.begin(), order.end(), [&](auto a, auto b) {
            return freeAt_[a] < freeAt_[b];
        });
        for (unsigned i = 0; i < k; ++i) {
            CL_ASSERT(freeAt_[order[i]] <= start, "unit busy at acquire");
            freeAt_[order[i]] = start + duration;
        }
    }

  private:
    std::vector<std::uint64_t> freeAt_;
};

} // namespace

SimStats
Simulator::run(const Program &prog, TraceSink *trace)
{
    SimStats stats;

    // Instruction currently being issued (for trace attribution).
    std::uint32_t cur_inst = 0;
    auto note = [&](ResidencyAction action, std::uint32_t vid,
                    std::uint64_t mem_start, std::uint64_t mem_end) {
        if (!trace)
            return;
        const Value &v = prog.values[vid];
        trace->onResidency({action, vid, cur_inst, v.kind, v.label,
                            v.words, mem_start, mem_end});
    };

    // --- Resource pools ---
    std::array<std::unique_ptr<UnitPool>, numFuTypes> fuPools;
    for (unsigned t = 0; t < numFuTypes; ++t) {
        fuPools[t] = std::make_unique<UnitPool>(
            std::max(1u, cfg_.fuCount(static_cast<FuType>(t))));
    }
    UnitPool ports(cfg_.rfPorts);

    // Network: bandwidth-limited single resource.
    std::uint64_t networkFreeAt = 0;
    const double net_bw = cfg_.networkWordsPerCycle();
    const double net_traffic_scale =
        cfg_.network == NetworkType::Crossbar ? 2.4 : 1.0;

    // Memory channel: decoupled timeline (Sec 4.1: decoupled data
    // orchestration — transfers run ahead of compute).
    std::uint64_t memFreeAt = 0;
    const double mem_bw = cfg_.memWordsPerCycle();

    // --- Register-file residency with Belady MIN eviction (Sec 6) ---
    const std::uint64_t capacity = cfg_.rfWords();
    std::uint64_t used = 0;
    struct Resident
    {
        bool resident = false;
        std::uint64_t readyAt = 0;
        bool dirty = false;  ///< On-chip-produced; eviction spills it.
        std::size_t usePtr = 0; ///< Next index into consumers.
    };
    std::vector<Resident> res(prog.values.size());

    auto next_use = [&](std::uint32_t vid) -> std::uint32_t {
        const auto &v = prog.values[vid];
        const auto &r = res[vid];
        return r.usePtr < v.consumers.size() ? v.consumers[r.usePtr]
                                             : noUse;
    };

    // Resident values ordered by next use (latest use = best victim).
    std::set<std::pair<std::uint32_t, std::uint32_t>> byUse;

    auto resident_insert = [&](std::uint32_t vid) {
        byUse.emplace(next_use(vid), vid);
    };
    auto resident_erase = [&](std::uint32_t vid, std::uint32_t old_use) {
        byUse.erase({old_use, vid});
    };

    auto account_load = [&](const Value &v) {
        switch (v.kind) {
          case ValueKind::KeySwitchHint:
            stats.kshLoadWords += v.words;
            break;
          case ValueKind::Input:
            stats.inputLoadWords += v.words;
            break;
          case ValueKind::Plaintext:
            stats.plainLoadWords += v.words;
            break;
          default:
            stats.intermLoadWords += v.words;
            break;
        }
    };

    // Evict furthest-next-use resident values until `need` words fit.
    // Returns false when nothing evictable remains (the instruction's
    // working set exceeds the register file — operands then stream
    // from memory, the regime small register files fall into, Fig 11).
    auto make_room = [&](std::uint64_t need,
                         const std::vector<std::uint32_t> &pinned) {
        while (used + need > capacity) {
            // Walk from the furthest next use down, skipping pinned.
            auto it = byUse.rbegin();
            while (it != byUse.rend() &&
                   std::find(pinned.begin(), pinned.end(), it->second) !=
                       pinned.end())
                ++it;
            if (it == byUse.rend())
                return false;
            const std::uint32_t victim = it->second;
            const std::uint32_t victim_use = it->first;
            const Value &v = prog.values[victim];
            if (res[victim].dirty) {
                // Spill a still-live intermediate. A dirty victim
                // with no next use is one the program never reads:
                // its bits exist nowhere off-chip, so dropping it
                // without writeback would silently discard a result
                // (and under-charge store traffic). Consumed-out
                // intermediates never reach this path dirty — retire
                // dead-frees them the moment their last reader runs.
                stats.intermStoreWords += v.words;
                const std::uint64_t dur =
                    static_cast<std::uint64_t>(v.words / mem_bw) + 1;
                note(ResidencyAction::Spill, victim, memFreeAt,
                     memFreeAt + dur);
                memFreeAt += dur;
                stats.memBusyCycles += dur;
            } else {
                // Clean copy: dropped without writeback.
                note(ResidencyAction::Evict, victim, memFreeAt,
                     memFreeAt);
            }
            resident_erase(victim, victim_use);
            res[victim].resident = false;
            res[victim].dirty = false;
            used -= v.words;
        }
        return true;
    };

    // Ensure a value is (or will be) resident; returns its ready time.
    auto ensure_resident = [&](std::uint32_t vid,
                               const std::vector<std::uint32_t> &pinned)
        -> std::uint64_t {
        Resident &r = res[vid];
        const Value &v = prog.values[vid];
        if (r.resident)
            return r.readyAt;
        const bool fits = make_room(v.words, pinned);
        account_load(v);
        const std::uint64_t dur =
            static_cast<std::uint64_t>(v.words / mem_bw) + 1;
        note(fits ? ResidencyAction::Load : ResidencyAction::Stream, vid,
             memFreeAt, memFreeAt + dur);
        memFreeAt += dur;
        stats.memBusyCycles += dur;
        // The value's bits exist only once its producer has finished:
        // readyAt carries the last writer's finish even while the
        // value is off-chip (spilled or stream-stored), so a reload
        // can never hand data to a consumer before it was computed.
        const std::uint64_t data_at = std::max(memFreeAt, r.readyAt);
        if (fits) {
            r.resident = true;
            r.readyAt = data_at;
            r.dirty = false;
            used += v.words;
            resident_insert(vid);
            return r.readyAt;
        }
        // Streamed: consumed directly from the memory interface;
        // future uses reload.
        return data_at;
    };

    // --- Main in-order issue loop ---
    std::uint64_t prev_issue = 0;
    std::uint64_t last_finish = 0;

    for (const PolyInst &inst : prog.insts) {
        cur_inst = inst.id;
        std::uint64_t ready = prev_issue;

        // Pin everything this instruction touches.
        std::vector<std::uint32_t> pinned = inst.reads;
        pinned.insert(pinned.end(), inst.writes.begin(), inst.writes.end());

        // Operand residency (prefetched on the memory timeline). A
        // value listed twice in `reads` is one operand: it is fetched
        // — and its transfer charged — exactly once per instruction.
        std::vector<std::uint32_t> unique_reads;
        unique_reads.reserve(inst.reads.size());
        for (std::uint32_t vid : inst.reads) {
            if (std::find(unique_reads.begin(), unique_reads.end(),
                          vid) == unique_reads.end())
                unique_reads.push_back(vid);
        }
        for (std::uint32_t vid : unique_reads)
            ready = std::max(ready, ensure_resident(vid, pinned));
        const std::uint64_t operands_at = ready;

        // Space for results.
        for (std::uint32_t vid : inst.writes) {
            if (!res[vid].resident) {
                if (make_room(prog.values[vid].words, pinned)) {
                    res[vid].resident = true;
                    used += prog.values[vid].words;
                    resident_insert(vid);
                    note(ResidencyAction::Alloc, vid, memFreeAt,
                         memFreeAt);
                } else {
                    // Result streams straight back to memory.
                    stats.intermStoreWords += prog.values[vid].words;
                    const std::uint64_t dur = static_cast<std::uint64_t>(
                                                  prog.values[vid].words /
                                                  mem_bw) + 1;
                    note(ResidencyAction::StreamStore, vid, memFreeAt,
                         memFreeAt + dur);
                    memFreeAt += dur;
                    stats.memBusyCycles += dur;
                }
            }
        }

        // Resource acquisition. Track which resource bound the start
        // time (the instruction's binding resource, for the trace).
        std::uint64_t start = ready;
        StallReason binding = operands_at > prev_issue
                                  ? StallReason::Operand
                                  : StallReason::None;
        FuType binding_fu = FuType::Ntt;
        // Same-type FuUse entries compose: the pool must have the
        // *sum* of their units simultaneously free. Querying each use
        // independently would let two batches claim overlapping units.
        std::array<unsigned, numFuTypes> fu_need{};
        for (const FuUse &use : inst.fus) {
            CL_ASSERT(cfg_.fuCount(use.type) > 0, "inst ", inst.id, " (",
                      inst.mnemonic, ") needs absent FU ",
                      fuTypeName(use.type));
            fu_need[static_cast<unsigned>(use.type)] += use.units;
        }
        for (unsigned t = 0; t < numFuTypes; ++t) {
            if (fu_need[t] == 0)
                continue;
            const std::uint64_t at = fuPools[t]->earliest(fu_need[t],
                                                          start);
            if (at > start) {
                binding = StallReason::Fu;
                binding_fu = static_cast<FuType>(t);
                start = at;
            }
        }
        {
            const std::uint64_t at = ports.earliest(inst.rfPorts, start);
            if (at > start) {
                binding = StallReason::RfPorts;
                start = at;
            }
        }

        std::uint64_t net_cycles = 0;
        if (inst.networkWords > 0) {
            net_cycles = static_cast<std::uint64_t>(
                             inst.networkWords * net_traffic_scale /
                             net_bw) + 1;
            if (networkFreeAt > start) {
                binding = StallReason::Network;
                start = networkFreeAt;
            }
        }

        const std::uint64_t finish = start + inst.duration;

        for (unsigned t = 0; t < numFuTypes; ++t) {
            if (fu_need[t] > 0)
                fuPools[t]->acquire(fu_need[t], start, inst.duration);
        }
        for (const FuUse &use : inst.fus) {
            stats.fuBusy[static_cast<unsigned>(use.type)] +=
                use.units * inst.duration;
            stats.fuLaneOps[static_cast<unsigned>(use.type)] += use.laneOps;
        }
        ports.acquire(inst.rfPorts, start, inst.duration);
        if (inst.networkWords > 0) {
            networkFreeAt = start + std::max(net_cycles, inst.duration);
            stats.networkWords += static_cast<std::uint64_t>(
                inst.networkWords * net_traffic_scale);
        }
        stats.rfAccessWords += inst.rfWords;

        // Retire: mark writes available, advance read-use pointers.
        for (std::uint32_t vid : inst.writes) {
            res[vid].readyAt = finish;
            res[vid].dirty =
                prog.values[vid].kind == ValueKind::Intermediate;
            if (prog.values[vid].kind == ValueKind::Output) {
                // Stream results straight out (Sec 7: bulk transfers).
                stats.outputStoreWords += prog.values[vid].words;
                const std::uint64_t dur = static_cast<std::uint64_t>(
                                              prog.values[vid].words /
                                              mem_bw) + 1;
                const std::uint64_t at = std::max(memFreeAt, finish);
                note(ResidencyAction::StoreOut, vid, at, at + dur);
                memFreeAt = at + dur;
                stats.memBusyCycles += dur;
            }
        }
        for (std::uint32_t vid : unique_reads) {
            Resident &r = res[vid];
            const auto &cons = prog.values[vid].consumers;
            if (!r.resident) {
                // Streamed operand (or a duplicate already freed):
                // still consume this use, so that a later reload or
                // in-place rewrite keys its Belady entry on a future
                // consumer instead of one already in the past.
                while (r.usePtr < cons.size() && cons[r.usePtr] <= inst.id)
                    ++r.usePtr;
                continue;
            }
            const std::uint32_t old_use = next_use(vid);
            while (r.usePtr < cons.size() && cons[r.usePtr] <= inst.id)
                ++r.usePtr;
            resident_erase(vid, old_use);
            if (r.usePtr >= cons.size() &&
                prog.values[vid].kind == ValueKind::Intermediate) {
                // Dead: free without writeback.
                note(ResidencyAction::DeadFree, vid, finish, finish);
                r.resident = false;
                r.dirty = false;
                used -= prog.values[vid].words;
            } else {
                resident_insert(vid);
            }
        }

        if (trace) {
            InstTrace t;
            t.id = inst.id;
            t.mnemonic = inst.mnemonic;
            t.issueReady = prev_issue;
            t.operandsAt = operands_at;
            t.start = start;
            t.finish = finish;
            t.binding = binding;
            t.bindingFu = binding_fu;
            t.fus = inst.fus;
            t.rfPorts = inst.rfPorts;
            t.networkWords = inst.networkWords;
            if (inst.networkWords > 0)
                t.netBusyUntil = start + std::max(net_cycles,
                                                  inst.duration);
            trace->onInst(t);
        }

        prev_issue = start;
        last_finish = std::max(last_finish, finish);
    }

    stats.cycles = std::max(last_finish, memFreeAt);
    return stats;
}

} // namespace cl

#include "trace.h"

#include <algorithm>
#include <ostream>

#include "util/table.h"

namespace cl {

const char *
stallReasonName(StallReason r)
{
    switch (r) {
      case StallReason::None:
        return "none";
      case StallReason::Operand:
        return "operand";
      case StallReason::Fu:
        return "fu";
      case StallReason::RfPorts:
        return "rf-ports";
      case StallReason::Network:
        return "network";
      default:
        CL_PANIC("bad stall reason");
    }
}

const char *
residencyActionName(ResidencyAction a)
{
    switch (a) {
      case ResidencyAction::Load:
        return "load";
      case ResidencyAction::Stream:
        return "stream";
      case ResidencyAction::Spill:
        return "spill";
      case ResidencyAction::StreamStore:
        return "stream-store";
      case ResidencyAction::StoreOut:
        return "store-out";
      case ResidencyAction::DeadFree:
        return "dead-free";
      case ResidencyAction::Alloc:
        return "alloc";
      case ResidencyAction::Evict:
        return "evict";
      default:
        CL_PANIC("bad residency action");
    }
}

namespace {

/** Minimal JSON string escaping (quotes, backslash, control chars). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += ' ';
            else
                out += c;
        }
    }
    return out;
}

std::string
pct(double v)
{
    return TextTable::num(100.0 * v, 1) + "%";
}

} // namespace

std::array<std::uint64_t, numFuTypes>
TraceRecorder::fuBusyFromTrace() const
{
    std::array<std::uint64_t, numFuTypes> busy{};
    for (const InstTrace &t : insts_) {
        for (const FuUse &use : t.fus) {
            busy[static_cast<unsigned>(use.type)] +=
                use.units * (t.finish - t.start);
        }
    }
    return busy;
}

double
TraceRecorder::fuUtilization(const ChipConfig &cfg,
                             std::uint64_t cycles) const
{
    const auto busy = fuBusyFromTrace();
    std::uint64_t total = 0;
    unsigned units = 0;
    for (unsigned t = 0; t < numFuTypes; ++t) {
        if (static_cast<FuType>(t) == FuType::Transpose)
            continue;
        total += busy[t];
        units += cfg.fuCount(static_cast<FuType>(t));
    }
    if (cycles == 0 || units == 0)
        return 0;
    return static_cast<double>(total) /
           (static_cast<double>(cycles) * units);
}

void
TraceRecorder::writeChromeTrace(std::ostream &os,
                                const ChipConfig &cfg) const
{
    // pid 0: compute, one track (tid) per FU class;
    // pid 1: memory channel; pid 2: inter-group network.
    os << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n";
    bool first = true;
    auto emit = [&](const std::string &body) {
        os << (first ? " " : ",") << "{" << body << "}\n";
        first = false;
    };

    emit("\"ph\":\"M\",\"pid\":0,\"tid\":0,\"name\":\"process_name\","
         "\"args\":{\"name\":\"compute (" +
         jsonEscape(cfg.name) + ")\"}");
    for (unsigned t = 0; t < numFuTypes; ++t) {
        emit("\"ph\":\"M\",\"pid\":0,\"tid\":" + std::to_string(t) +
             ",\"name\":\"thread_name\",\"args\":{\"name\":\"" +
             std::string(fuTypeName(static_cast<FuType>(t))) + "\"}");
    }
    emit("\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\","
         "\"args\":{\"name\":\"memory channel\"}");
    emit("\"ph\":\"M\",\"pid\":2,\"tid\":0,\"name\":\"process_name\","
         "\"args\":{\"name\":\"network\"}");

    for (const InstTrace &t : insts_) {
        std::string binding = stallReasonName(t.binding);
        if (t.binding == StallReason::Fu)
            binding += std::string(":") + fuTypeName(t.bindingFu);
        for (const FuUse &use : t.fus) {
            emit("\"ph\":\"X\",\"pid\":0,\"tid\":" +
                 std::to_string(static_cast<unsigned>(use.type)) +
                 ",\"ts\":" + std::to_string(t.start) +
                 ",\"dur\":" + std::to_string(t.finish - t.start) +
                 ",\"name\":\"" + jsonEscape(t.mnemonic) +
                 "\",\"args\":{\"inst\":" + std::to_string(t.id) +
                 ",\"units\":" + std::to_string(use.units) +
                 ",\"stall\":" + std::to_string(t.stall()) +
                 ",\"binding\":\"" + binding + "\"}");
        }
        if (t.networkWords > 0 && t.netBusyUntil > t.start) {
            emit("\"ph\":\"X\",\"pid\":2,\"tid\":0,\"ts\":" +
                 std::to_string(t.start) + ",\"dur\":" +
                 std::to_string(t.netBusyUntil - t.start) +
                 ",\"name\":\"" + jsonEscape(t.mnemonic) +
                 "\",\"args\":{\"words\":" +
                 std::to_string(t.networkWords) + "}");
        }
    }
    for (const ResidencyEvent &e : residency_) {
        if (e.memEnd <= e.memStart)
            continue; // bookkeeping-only event (dead-free)
        emit("\"ph\":\"X\",\"pid\":1,\"tid\":0,\"ts\":" +
             std::to_string(e.memStart) + ",\"dur\":" +
             std::to_string(e.memEnd - e.memStart) + ",\"name\":\"" +
             std::string(residencyActionName(e.action)) + " " +
             jsonEscape(e.label.empty() ? "v" + std::to_string(e.valueId)
                                        : e.label) +
             "\",\"args\":{\"value\":" + std::to_string(e.valueId) +
             ",\"inst\":" + std::to_string(e.instId) + ",\"kind\":\"" +
             valueKindName(e.kind) + "\",\"words\":" +
             std::to_string(e.words) + "}");
    }
    os << "]}\n";
}

void
TraceRecorder::writeBottleneckReport(std::ostream &os,
                                     const ChipConfig &cfg,
                                     const SimStats &stats,
                                     std::size_t top_k,
                                     std::size_t buckets) const
{
    os << "=== Bottleneck report (" << cfg.name << ") ===\n";
    os << "cycles: " << stats.cycles << "  ("
       << TextTable::num(stats.seconds(cfg) * 1e3, 3) << " ms @ "
       << TextTable::num(cfg.freqGhz, 1) << " GHz), instructions: "
       << insts_.size() << "\n\n";

    // --- Per-FU utilization (Fig 9 rows). ---
    const auto busy = fuBusyFromTrace();
    TextTable fu({"FU class", "units", "busy unit-cycles", "util"});
    for (unsigned t = 0; t < numFuTypes; ++t) {
        const FuType ft = static_cast<FuType>(t);
        if (cfg.fuCount(ft) == 0 || ft == FuType::Transpose)
            continue;
        fu.addRow({fuTypeName(ft), std::to_string(cfg.fuCount(ft)),
                   std::to_string(busy[t]),
                   pct(stats.fuUtilizationOf(cfg, ft))});
    }
    os << fu.render();
    os << "aggregate FU util (Fig 9): "
       << pct(fuUtilization(cfg, stats.cycles)) << ", memory channel: "
       << pct(stats.memUtilization()) << " busy\n\n";

    // --- Stall attribution by binding resource. ---
    std::uint64_t by_reason[5] = {};
    std::array<std::uint64_t, numFuTypes> by_fu{};
    std::uint64_t total_stall = 0;
    for (const InstTrace &t : insts_) {
        by_reason[static_cast<unsigned>(t.binding)] += t.stall();
        if (t.binding == StallReason::Fu)
            by_fu[static_cast<unsigned>(t.bindingFu)] += t.stall();
        total_stall += t.stall();
    }
    os << "Issue-stall attribution (" << total_stall
       << " cycles lost at issue):\n";
    TextTable st({"binding resource", "cycles", "share"});
    auto share = [&](std::uint64_t c) {
        return total_stall
                   ? pct(static_cast<double>(c) / total_stall)
                   : std::string("-");
    };
    for (unsigned r = 1; r < 5; ++r) { // skip None
        const StallReason sr = static_cast<StallReason>(r);
        if (sr == StallReason::Fu) {
            for (unsigned t = 0; t < numFuTypes; ++t) {
                if (by_fu[t] == 0)
                    continue;
                st.addRow({std::string("fu:") +
                               fuTypeName(static_cast<FuType>(t)),
                           std::to_string(by_fu[t]), share(by_fu[t])});
            }
        } else if (by_reason[r] > 0) {
            st.addRow({stallReasonName(sr),
                       std::to_string(by_reason[r]),
                       share(by_reason[r])});
        }
    }
    os << st.render() << "\n";

    // --- Top-k instructions by stall. ---
    std::vector<const InstTrace *> order;
    order.reserve(insts_.size());
    for (const InstTrace &t : insts_)
        order.push_back(&t);
    std::stable_sort(order.begin(), order.end(),
                     [](const InstTrace *a, const InstTrace *b) {
                         return a->stall() > b->stall();
                     });
    if (order.size() > top_k)
        order.resize(top_k);
    os << "Top " << order.size() << " stalled instructions:\n";
    TextTable tk({"inst", "mnemonic", "stall", "binding", "start",
                  "finish"});
    for (const InstTrace *t : order) {
        std::string binding = stallReasonName(t->binding);
        if (t->binding == StallReason::Fu)
            binding += std::string(":") + fuTypeName(t->bindingFu);
        tk.addRow({std::to_string(t->id), t->mnemonic,
                   std::to_string(t->stall()), binding,
                   std::to_string(t->start),
                   std::to_string(t->finish)});
    }
    os << tk.render() << "\n";

    // --- Utilization over time (Fig 9's shape). ---
    if (stats.cycles == 0 || buckets == 0)
        return;
    unsigned fu_units = 0;
    for (unsigned t = 0; t < numFuTypes; ++t) {
        if (static_cast<FuType>(t) != FuType::Transpose)
            fu_units += cfg.fuCount(static_cast<FuType>(t));
    }
    std::vector<double> fu_busy(buckets, 0), mem_busy(buckets, 0);
    const double width =
        static_cast<double>(stats.cycles) / static_cast<double>(buckets);
    auto accumulate = [&](std::vector<double> &acc, std::uint64_t s,
                          std::uint64_t e, double weight) {
        if (e <= s)
            return;
        const std::size_t b0 =
            std::min(buckets - 1, static_cast<std::size_t>(s / width));
        const std::size_t b1 = std::min(
            buckets - 1, static_cast<std::size_t>((e - 1) / width));
        for (std::size_t b = b0; b <= b1; ++b) {
            const double lo = std::max<double>(s, b * width);
            const double hi = std::min<double>(e, (b + 1) * width);
            if (hi > lo)
                acc[b] += weight * (hi - lo);
        }
    };
    for (const InstTrace &t : insts_) {
        for (const FuUse &use : t.fus) {
            if (use.type == FuType::Transpose)
                continue;
            accumulate(fu_busy, t.start, t.finish, use.units);
        }
    }
    for (const ResidencyEvent &e : residency_)
        accumulate(mem_busy, e.memStart, e.memEnd, 1.0);
    os << "Utilization over time (" << buckets << " buckets of "
       << static_cast<std::uint64_t>(width) << " cycles):\n";
    TextTable tl({"bucket", "FU util", "mem util"});
    for (std::size_t b = 0; b < buckets; ++b) {
        tl.addRow({std::to_string(b),
                   fu_units ? pct(fu_busy[b] / (width * fu_units))
                            : std::string("-"),
                   pct(std::min(1.0, mem_busy[b] / width))});
    }
    os << tl.render();
}

} // namespace cl

/**
 * @file
 * Simulation statistics: cycles, per-FU utilization, memory traffic
 * by category (Fig 10a), and activity-based energy (Fig 10b).
 */

#ifndef CL_SIM_STATS_H
#define CL_SIM_STATS_H

#include <array>
#include <cstdint>

#include "hw/energy.h"

namespace cl {

struct SimStats
{
    std::uint64_t cycles = 0;

    /** Busy unit-cycles per FU class. */
    std::array<std::uint64_t, numFuTypes> fuBusy{};
    /** Scalar lane operations per FU class. */
    std::array<std::uint64_t, numFuTypes> fuLaneOps{};

    std::uint64_t memBusyCycles = 0;

    // Off-chip traffic in words (Fig 10a categories).
    std::uint64_t kshLoadWords = 0;
    std::uint64_t inputLoadWords = 0;
    std::uint64_t plainLoadWords = 0;
    std::uint64_t intermLoadWords = 0;
    std::uint64_t intermStoreWords = 0;
    std::uint64_t outputStoreWords = 0;

    std::uint64_t rfAccessWords = 0;
    std::uint64_t networkWords = 0;

    /** Bit-exact equality, used to check that tracing is inert. */
    bool operator==(const SimStats &) const = default;

    std::uint64_t
    totalTrafficWords() const
    {
        return kshLoadWords + inputLoadWords + plainLoadWords +
               intermLoadWords + intermStoreWords + outputStoreWords;
    }

    /** Wall-clock seconds at the configuration's frequency. */
    double
    seconds(const ChipConfig &cfg) const
    {
        return static_cast<double>(cycles) / (cfg.freqGhz * 1e9);
    }

    /**
     * Average FU utilization: fraction of cycles FUs consume inputs,
     * averaged across all FU instances (Fig 9's definition).
     */
    double
    fuUtilization(const ChipConfig &cfg) const
    {
        std::uint64_t busy = 0;
        unsigned units = 0;
        for (unsigned t = 0; t < numFuTypes; ++t) {
            if (static_cast<FuType>(t) == FuType::Transpose)
                continue;
            busy += fuBusy[t];
            units += cfg.fuCount(static_cast<FuType>(t));
        }
        if (cycles == 0 || units == 0)
            return 0;
        return static_cast<double>(busy) /
               (static_cast<double>(cycles) * units);
    }

    /** Utilization of a single FU class (per-row data of Fig 9). */
    double
    fuUtilizationOf(const ChipConfig &cfg, FuType t) const
    {
        const unsigned units = cfg.fuCount(t);
        if (cycles == 0 || units == 0)
            return 0;
        return static_cast<double>(fuBusy[static_cast<unsigned>(t)]) /
               (static_cast<double>(cycles) * units);
    }

    /** Fraction of cycles the memory channel is active. */
    double
    memUtilization() const
    {
        return cycles ? static_cast<double>(memBusyCycles) / cycles : 0;
    }

    /** Activity-based energy breakdown. */
    EnergyBreakdown
    energy(const ChipConfig &cfg, const EnergyParams &p = {}) const
    {
        EnergyBreakdown e;
        for (unsigned t = 0; t < numFuTypes; ++t) {
            if (static_cast<FuType>(t) == FuType::Transpose)
                continue;
            e.funcUnits += fuLaneOps[t] *
                           fuEnergyPerLaneOp(p, static_cast<FuType>(t)) *
                           1e-12;
        }
        e.registerFile = rfAccessWords * p.rfAccessWord * 1e-12;
        e.network = networkWords * p.networkWord * 1e-12;
        e.hbm = totalTrafficWords() * p.hbmWord * 1e-12;
        e.staticEnergy = p.staticWatts * seconds(cfg);
        return e;
    }

    /** Average power in watts. */
    double
    avgPowerWatts(const ChipConfig &cfg, const EnergyParams &p = {}) const
    {
        const double s = seconds(cfg);
        return s > 0 ? energy(cfg, p).total() / s : 0;
    }
};

} // namespace cl

#endif // CL_SIM_STATS_H

/**
 * @file
 * Instruction-level observability for the cycle simulator.
 *
 * The simulator optionally drives a TraceSink with one record per
 * PolyInst (issue/start/finish times plus the resource that bound the
 * start) and one record per register-file residency event (load,
 * spill, stream, dead-free, output store). The default TraceRecorder
 * keeps everything and renders two artifacts:
 *
 *  - a Chrome trace_event JSON (chrome://tracing / Perfetto) with one
 *    track per FU class plus memory-channel and network tracks;
 *  - a plain-text bottleneck report: per-FU and memory utilization
 *    (the data behind Fig 9), stall attribution by binding resource,
 *    the top-k stalled instructions, and utilization over time.
 *
 * Tracing is strictly observational: a null sink keeps Simulator::run
 * on the untraced code path and its results bit-identical.
 */

#ifndef CL_SIM_TRACE_H
#define CL_SIM_TRACE_H

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "hw/config.h"
#include "isa/program.h"
#include "sim/stats.h"

namespace cl {

/** The resource that determined an instruction's start time. */
enum class StallReason
{
    None,    ///< Issued at the in-order point; nothing blocked it.
    Operand, ///< Waited for an operand load or producer.
    Fu,      ///< All requested units of an FU class were busy.
    RfPorts, ///< Register-file ports exhausted.
    Network, ///< Inter-group network still draining a transfer.
};

const char *stallReasonName(StallReason r);

/** What happened to a value on the memory channel / register file.
 *  Together these cover *every* resident-set mutation, so a replay of
 *  the event stream reconstructs register-file occupancy exactly
 *  (verify/verifier.h leans on this). */
enum class ResidencyAction
{
    Load,        ///< Fetched into the register file.
    Stream,      ///< Consumed straight from memory (no capacity).
    Spill,       ///< Live intermediate written back under pressure.
    StreamStore, ///< Result streamed back to memory (no capacity).
    StoreOut,    ///< Output streamed to the host.
    DeadFree,    ///< Freed without writeback after the last use.
    Alloc,       ///< Result space reserved in the register file.
    Evict,       ///< Clean (or dead) copy dropped without writeback.
};

const char *residencyActionName(ResidencyAction a);

/** Timing record for one instruction. */
struct InstTrace
{
    std::uint32_t id = 0;
    std::string mnemonic;
    std::uint64_t issueReady = 0; ///< In-order issue point.
    std::uint64_t operandsAt = 0; ///< All reads resident or streamed.
    std::uint64_t start = 0;
    std::uint64_t finish = 0;
    StallReason binding = StallReason::None;
    FuType bindingFu = FuType::Ntt; ///< Valid iff binding == Fu.
    std::vector<FuUse> fus;         ///< Units actually acquired.
    unsigned rfPorts = 0;
    std::uint64_t networkWords = 0;
    std::uint64_t netBusyUntil = 0; ///< Network occupancy end (if any).

    /** Cycles lost between the in-order point and issue. */
    std::uint64_t stall() const { return start - issueReady; }
};

/** One residency / memory-channel event. */
struct ResidencyEvent
{
    ResidencyAction action = ResidencyAction::Load;
    std::uint32_t valueId = 0;
    std::uint32_t instId = 0; ///< Instruction on whose behalf.
    ValueKind kind = ValueKind::Intermediate;
    std::string label;
    std::uint64_t words = 0;
    std::uint64_t memStart = 0; ///< Memory-channel window; equal
    std::uint64_t memEnd = 0;   ///< start/end means no transfer.
};

/** Observer interface driven by Simulator::run when tracing is on. */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;
    virtual void onInst(const InstTrace &t) = 0;
    virtual void onResidency(const ResidencyEvent &e) = 0;
};

/** Default sink: records the full trace and renders the artifacts. */
class TraceRecorder : public TraceSink
{
  public:
    void onInst(const InstTrace &t) override { insts_.push_back(t); }
    void
    onResidency(const ResidencyEvent &e) override
    {
        residency_.push_back(e);
    }

    const std::vector<InstTrace> &insts() const { return insts_; }
    const std::vector<ResidencyEvent> &
    residency() const
    {
        return residency_;
    }

    /** Busy unit-cycles per FU class reconstructed from the trace;
     *  must agree exactly with SimStats::fuBusy. */
    std::array<std::uint64_t, numFuTypes> fuBusyFromTrace() const;

    /** Aggregate FU utilization over @p cycles, per Fig 9's
     *  definition (must match SimStats::fuUtilization). */
    double fuUtilization(const ChipConfig &cfg,
                         std::uint64_t cycles) const;

    /** Chrome trace_event JSON: compute tracks per FU class, plus
     *  memory-channel and network tracks. */
    void writeChromeTrace(std::ostream &os, const ChipConfig &cfg) const;

    /** Plain-text critical-path/bottleneck report. */
    void writeBottleneckReport(std::ostream &os, const ChipConfig &cfg,
                               const SimStats &stats,
                               std::size_t top_k = 10,
                               std::size_t buckets = 16) const;

  private:
    std::vector<InstTrace> insts_;
    std::vector<ResidencyEvent> residency_;
};

} // namespace cl

#endif // CL_SIM_TRACE_H

/**
 * @file
 * Cycle-level simulator for the statically scheduled accelerator.
 *
 * Models (Sec 4, Sec 8):
 *  - in-order issue of the compiler's instruction stream;
 *  - per-class FU pools with full pipelining (one vector element per
 *    lane per cycle) and multi-FU occupancy for chained pipelines;
 *  - the banked register file as a pool of effective ports;
 *  - the inter-lane-group network as a bandwidth-limited resource
 *    (fixed permutation network, or the crossbar ablation with the
 *    2.4x traffic of residue-polynomial tiling, Sec 4.3);
 *  - HBM with decoupled data orchestration: loads are prefetched on
 *    an independent memory timeline, and on-chip residency is managed
 *    with Belady's MIN eviction using the static schedule's future
 *    use information (Sec 6).
 */

#ifndef CL_SIM_SIMULATOR_H
#define CL_SIM_SIMULATOR_H

#include "isa/program.h"
#include "sim/stats.h"

namespace cl {

class TraceSink;

class Simulator
{
  public:
    explicit Simulator(ChipConfig cfg) : cfg_(std::move(cfg)) {}

    /**
     * Execute a program, returning its statistics. When @p trace is
     * non-null, every instruction and residency event is reported to
     * it (sim/trace.h); a null sink adds no work and leaves results
     * bit-identical.
     */
    SimStats run(const Program &prog, TraceSink *trace = nullptr);

  private:
    ChipConfig cfg_;
};

} // namespace cl

#endif // CL_SIM_SIMULATOR_H

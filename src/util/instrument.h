/**
 * @file
 * Ground-truth kernel instrumentation: global counters incremented at
 * the point where work is actually performed (NTT transforms, the
 * elementwise kernel passes in RnsPoly, base-conversion MACs, and
 * automorphism gathers), independently of the OpCounter charges the
 * Evaluator files.
 *
 * The OpCounter is an *accounting model* — each Evaluator method
 * charges what it believes it spends, and those totals feed the
 * Table 1 / Fig 4 cross-checks. These counters are the *measurement*:
 * the differential fuzzer (src/fuzz) and the pinned OpCounter tests
 * assert that model == measurement exactly, so a refactor that changes
 * what a method really does without updating its charges is caught
 * immediately.
 *
 * ## Unit convention
 *
 * One count = one pass over one residue vector (N coefficients):
 *
 *  - `ntts`: one forward or inverse NTT of one residue.
 *  - `mults`: one multiply-class pass — mulModVec, a Shoup multiply,
 *    the multiply half of a fused MAC, one source row of a
 *    change-RNS-base inner product, or the scale-correction multiply
 *    of a rescale.
 *  - `adds`: one add-class pass — add/sub/negate, the accumulate half
 *    of a fused MAC, one accumulated row of a change-RNS-base inner
 *    product, or the subtract pass of a rescale.
 *  - `automorphisms`: one slot gather/permutation of one residue.
 *
 * Increments use relaxed atomics and are amortized (one increment per
 * tower batch, not per coefficient), so the overhead is noise even on
 * the hot paths; the counters are always on.
 */

#ifndef CL_UTIL_INSTRUMENT_H
#define CL_UTIL_INSTRUMENT_H

#include <atomic>
#include <cstdint>

namespace cl {

/** Plain-integer snapshot of the kernel counters. */
struct KernelCounts
{
    std::uint64_t ntts = 0;
    std::uint64_t mults = 0;
    std::uint64_t adds = 0;
    std::uint64_t automorphisms = 0;

    friend KernelCounts
    operator-(const KernelCounts &a, const KernelCounts &b)
    {
        return {a.ntts - b.ntts, a.mults - b.mults, a.adds - b.adds,
                a.automorphisms - b.automorphisms};
    }

    friend bool operator==(const KernelCounts &,
                           const KernelCounts &) = default;
};

/** The global counters (one instance per process). */
struct KernelCounters
{
    std::atomic<std::uint64_t> ntts{0};
    std::atomic<std::uint64_t> mults{0};
    std::atomic<std::uint64_t> adds{0};
    std::atomic<std::uint64_t> automorphisms{0};

    KernelCounts
    snapshot() const
    {
        return {ntts.load(std::memory_order_relaxed),
                mults.load(std::memory_order_relaxed),
                adds.load(std::memory_order_relaxed),
                automorphisms.load(std::memory_order_relaxed)};
    }

    void
    reset()
    {
        ntts.store(0, std::memory_order_relaxed);
        mults.store(0, std::memory_order_relaxed);
        adds.store(0, std::memory_order_relaxed);
        automorphisms.store(0, std::memory_order_relaxed);
    }
};

inline KernelCounters &
kernelCounters()
{
    static KernelCounters counters;
    return counters;
}

inline void
countNtts(std::uint64_t k)
{
    kernelCounters().ntts.fetch_add(k, std::memory_order_relaxed);
}

inline void
countMults(std::uint64_t k)
{
    kernelCounters().mults.fetch_add(k, std::memory_order_relaxed);
}

inline void
countAdds(std::uint64_t k)
{
    kernelCounters().adds.fetch_add(k, std::memory_order_relaxed);
}

inline void
countAutomorphisms(std::uint64_t k)
{
    kernelCounters().automorphisms.fetch_add(k, std::memory_order_relaxed);
}

/**
 * Memory-traffic counters, kept separate from KernelCounts so the
 * model-vs-measurement comparisons above stay exactly four fields.
 *
 * CraterLake's thesis is that FHE kernels are bound by data movement,
 * not arithmetic (Sec 3); these counters make the host-side analog
 * visible. A *pass* is one streaming sweep of a kernel over its
 * operand arrays; *bytes* is 8x the operand words the sweep touches
 * (each read or written array counts once per sweep). Fused kernels
 * charge one pass over the union of their operands where the composed
 * sequence charges one pass per constituent kernel, so
 * fused < composed in both fields on the same workload. Scratch that
 * stays cache-resident inside a fused/tiled pipeline (e.g. the
 * per-block scaled residues of the tiled base conversion) is
 * deliberately not charged: the whole point of fusion is that those
 * words never round-trip DRAM.
 */
struct MemTraffic
{
    std::uint64_t passes = 0;
    std::uint64_t bytes = 0;

    friend MemTraffic
    operator-(const MemTraffic &a, const MemTraffic &b)
    {
        return {a.passes - b.passes, a.bytes - b.bytes};
    }

    friend bool operator==(const MemTraffic &, const MemTraffic &) = default;
};

/** Global memory-traffic counters (one instance per process). */
struct MemTrafficCounters
{
    std::atomic<std::uint64_t> passes{0};
    std::atomic<std::uint64_t> bytes{0};

    MemTraffic
    snapshot() const
    {
        return {passes.load(std::memory_order_relaxed),
                bytes.load(std::memory_order_relaxed)};
    }

    void
    reset()
    {
        passes.store(0, std::memory_order_relaxed);
        bytes.store(0, std::memory_order_relaxed);
    }
};

inline MemTrafficCounters &
memTraffic()
{
    static MemTrafficCounters counters;
    return counters;
}

/** Charge @p p kernel sweeps moving @p b bytes total. */
inline void
countMemPass(std::uint64_t p, std::uint64_t b)
{
    memTraffic().passes.fetch_add(p, std::memory_order_relaxed);
    memTraffic().bytes.fetch_add(b, std::memory_order_relaxed);
}

} // namespace cl

#endif // CL_UTIL_INSTRUMENT_H

/**
 * @file
 * Ground-truth kernel instrumentation: global counters incremented at
 * the point where work is actually performed (NTT transforms, the
 * elementwise kernel passes in RnsPoly, base-conversion MACs, and
 * automorphism gathers), independently of the OpCounter charges the
 * Evaluator files.
 *
 * The OpCounter is an *accounting model* — each Evaluator method
 * charges what it believes it spends, and those totals feed the
 * Table 1 / Fig 4 cross-checks. These counters are the *measurement*:
 * the differential fuzzer (src/fuzz) and the pinned OpCounter tests
 * assert that model == measurement exactly, so a refactor that changes
 * what a method really does without updating its charges is caught
 * immediately.
 *
 * ## Unit convention
 *
 * One count = one pass over one residue vector (N coefficients):
 *
 *  - `ntts`: one forward or inverse NTT of one residue.
 *  - `mults`: one multiply-class pass — mulModVec, a Shoup multiply,
 *    the multiply half of a fused MAC, one source row of a
 *    change-RNS-base inner product, or the scale-correction multiply
 *    of a rescale.
 *  - `adds`: one add-class pass — add/sub/negate, the accumulate half
 *    of a fused MAC, one accumulated row of a change-RNS-base inner
 *    product, or the subtract pass of a rescale.
 *  - `automorphisms`: one slot gather/permutation of one residue.
 *
 * Increments use relaxed atomics and are amortized (one increment per
 * tower batch, not per coefficient), so the overhead is noise even on
 * the hot paths; the counters are always on.
 */

#ifndef CL_UTIL_INSTRUMENT_H
#define CL_UTIL_INSTRUMENT_H

#include <atomic>
#include <cstdint>

namespace cl {

/** Plain-integer snapshot of the kernel counters. */
struct KernelCounts
{
    std::uint64_t ntts = 0;
    std::uint64_t mults = 0;
    std::uint64_t adds = 0;
    std::uint64_t automorphisms = 0;

    friend KernelCounts
    operator-(const KernelCounts &a, const KernelCounts &b)
    {
        return {a.ntts - b.ntts, a.mults - b.mults, a.adds - b.adds,
                a.automorphisms - b.automorphisms};
    }

    friend bool operator==(const KernelCounts &,
                           const KernelCounts &) = default;
};

/** The global counters (one instance per process). */
struct KernelCounters
{
    std::atomic<std::uint64_t> ntts{0};
    std::atomic<std::uint64_t> mults{0};
    std::atomic<std::uint64_t> adds{0};
    std::atomic<std::uint64_t> automorphisms{0};

    KernelCounts
    snapshot() const
    {
        return {ntts.load(std::memory_order_relaxed),
                mults.load(std::memory_order_relaxed),
                adds.load(std::memory_order_relaxed),
                automorphisms.load(std::memory_order_relaxed)};
    }

    void
    reset()
    {
        ntts.store(0, std::memory_order_relaxed);
        mults.store(0, std::memory_order_relaxed);
        adds.store(0, std::memory_order_relaxed);
        automorphisms.store(0, std::memory_order_relaxed);
    }
};

inline KernelCounters &
kernelCounters()
{
    static KernelCounters counters;
    return counters;
}

inline void
countNtts(std::uint64_t k)
{
    kernelCounters().ntts.fetch_add(k, std::memory_order_relaxed);
}

inline void
countMults(std::uint64_t k)
{
    kernelCounters().mults.fetch_add(k, std::memory_order_relaxed);
}

inline void
countAdds(std::uint64_t k)
{
    kernelCounters().adds.fetch_add(k, std::memory_order_relaxed);
}

inline void
countAutomorphisms(std::uint64_t k)
{
    kernelCounters().automorphisms.fetch_add(k, std::memory_order_relaxed);
}

} // namespace cl

#endif // CL_UTIL_INSTRUMENT_H

/**
 * @file
 * Minimal arbitrary-precision unsigned integer.
 *
 * The RNS representation keeps all hot-path arithmetic word-sized
 * (Sec 2.4), but a few setup-time constants are integers modulo the
 * full ciphertext modulus Q (products of up to ~120 primes): the
 * per-digit keyswitch-hint factors and CRT reconstructions used by
 * tests. This class supports exactly the operations those need.
 */

#ifndef CL_UTIL_BIGUINT_H
#define CL_UTIL_BIGUINT_H

#include <cstdint>
#include <string>
#include <vector>

namespace cl {

class BigUint
{
  public:
    BigUint() = default;
    explicit BigUint(std::uint64_t v);

    /** Product of the given factors. */
    static BigUint product(const std::vector<std::uint64_t> &factors);

    bool isZero() const { return limbs_.empty(); }

    BigUint &operator+=(const BigUint &other);
    BigUint &operator-=(const BigUint &other); ///< Requires *this >= other.
    BigUint &mulU64(std::uint64_t m);
    BigUint &addU64(std::uint64_t v);

    /** Three-way comparison. */
    int compare(const BigUint &other) const;
    bool operator<(const BigUint &o) const { return compare(o) < 0; }
    bool operator>=(const BigUint &o) const { return compare(o) >= 0; }
    bool operator==(const BigUint &o) const { return compare(o) == 0; }

    /** Remainder modulo a word-sized modulus (m < 2^63). */
    std::uint64_t modU64(std::uint64_t m) const;

    /** Floor of log2; -inf represented as -1 for zero. */
    int log2Floor() const;

    /** Bit length as a real number (log2 with fractional part). */
    double bitLength() const;

    /** Nearest double (loses precision past 53 bits, as expected). */
    double toDouble() const;

    /** Decimal-free hex rendering for diagnostics. */
    std::string toHex() const;

  private:
    void trim();

    std::vector<std::uint64_t> limbs_; // little-endian, no trailing zeros
};

} // namespace cl

#endif // CL_UTIL_BIGUINT_H

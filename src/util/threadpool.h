/**
 * @file
 * Fixed-size thread pool with a parallelFor primitive — the software
 * execution layer mirroring CraterLake's spatial parallelism: RNS
 * residue polynomials are independent across moduli (one per hardware
 * vector, Sec 4.1), so tower loops fan out across workers exactly as
 * towers fan out across lanes/FUs in the accelerator.
 *
 * Design constraints (and why):
 *  - No work stealing, no futures: every use site is a dense index
 *    range [begin, end) of equal-cost tower kernels; a shared atomic
 *    cursor is optimal and keeps the pool ~200 lines.
 *  - Determinism: parallelFor only partitions *which thread* runs an
 *    index, never what the index computes or where it writes, so
 *    parallel and serial execution are bit-identical by construction.
 *  - Nested calls run serially on the calling worker (tower kernels
 *    may themselves hit parallelized RnsPoly ops), so the pool can
 *    never deadlock on itself.
 *  - `CL_THREADS` environment override; `nthreads <= 1` never spawns
 *    a thread and costs one branch per call.
 */

#ifndef CL_UTIL_THREADPOOL_H
#define CL_UTIL_THREADPOOL_H

#include <cstddef>
#include <functional>
#include <memory>

namespace cl {

class ThreadPool
{
  public:
    /** @param nthreads Total workers including the calling thread;
     *  0 means "use the hardware concurrency". */
    explicit ThreadPool(unsigned nthreads);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Total workers (calling thread included). */
    unsigned threads() const { return nthreads_; }

    /**
     * Invoke fn(i) exactly once for every i in [begin, end), blocking
     * until all indices complete. Falls back to a plain serial loop
     * when the pool is size 1, the range has a single index, or the
     * caller is itself a pool worker (nested use).
     */
    void parallelFor(std::size_t begin, std::size_t end,
                     const std::function<void(std::size_t)> &fn);

    /**
     * Process-wide pool, created on first use. Size: the CL_THREADS
     * environment variable if set, else the hardware concurrency.
     */
    static ThreadPool &global();

    /** Replace the global pool (tests/benchmarks sweeping worker
     *  counts). Must not race with in-flight parallelFor calls. */
    static void setGlobalThreads(unsigned nthreads);

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_; // null when nthreads_ <= 1
    unsigned nthreads_;
};

/** Shorthand for ThreadPool::global().parallelFor(...). */
void parallelFor(std::size_t begin, std::size_t end,
                 const std::function<void(std::size_t)> &fn);

} // namespace cl

#endif // CL_UTIL_THREADPOOL_H

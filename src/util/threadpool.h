/**
 * @file
 * Fixed-size thread pool with a parallelFor primitive — the software
 * execution layer mirroring CraterLake's spatial parallelism: RNS
 * residue polynomials are independent across moduli (one per hardware
 * vector, Sec 4.1), so tower loops fan out across workers exactly as
 * towers fan out across lanes/FUs in the accelerator.
 *
 * Design constraints (and why):
 *  - No work stealing, no futures: every use site is a dense index
 *    range [begin, end) of equal-cost tower kernels; a shared atomic
 *    cursor is optimal and keeps the pool ~200 lines.
 *  - Determinism: parallelFor only partitions *which thread* runs an
 *    index, never what the index computes or where it writes, so
 *    parallel and serial execution are bit-identical by construction.
 *  - Nested calls run serially on the calling worker (tower kernels
 *    may themselves hit parallelized RnsPoly ops), so the pool can
 *    never deadlock on itself.
 *  - `CL_THREADS` environment override; `nthreads <= 1` never spawns
 *    a thread and costs one branch per call.
 */

#ifndef CL_UTIL_THREADPOOL_H
#define CL_UTIL_THREADPOOL_H

#include <cstddef>
#include <functional>
#include <memory>

namespace cl {

class ThreadPool
{
  public:
    /** @param nthreads Total workers including the calling thread;
     *  0 means "use the hardware concurrency". */
    explicit ThreadPool(unsigned nthreads);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Total workers (calling thread included). */
    unsigned threads() const { return nthreads_; }

    /**
     * Invoke fn(i) exactly once for every i in [begin, end), blocking
     * until all indices complete. Falls back to a plain serial loop
     * when the pool is size 1, the caller is itself a pool worker
     * (nested use), or the trip count is at most @p grain — short
     * ranges run inline on the caller with no enqueue, no wakeup, and
     * no synchronization, so callers whose per-index work is tiny
     * (e.g. one short SIMD-accelerated tower) don't pay pool overhead.
     * Inline and fanned-out execution are bit-identical by
     * construction.
     */
    void parallelFor(std::size_t begin, std::size_t end,
                     const std::function<void(std::size_t)> &fn,
                     std::size_t grain = 1);

    /**
     * True while the current thread is inside pool work or inside a
     * registered WorkerScope: any parallelFor call from such a thread
     * degrades to an inline serial loop instead of fanning out.
     */
    static bool inWorkerContext();

    /**
     * RAII marker registering the current thread as an execution-layer
     * worker for its lifetime. The task-graph runtime (src/runtime)
     * wraps each of its workers in one: a graph worker that reaches a
     * tower-parallel kernel then runs the kernel's parallelFor inline
     * on itself — inter-op parallelism replaces intra-op parallelism —
     * instead of contending for the global pool's job lock and
     * oversubscribing the machine with pool workers on top of graph
     * workers. Nests: the previous state is restored on destruction.
     */
    class WorkerScope
    {
      public:
        WorkerScope();
        ~WorkerScope();
        WorkerScope(const WorkerScope &) = delete;
        WorkerScope &operator=(const WorkerScope &) = delete;

      private:
        bool prev_;
    };

    /**
     * Process-wide pool, created on first use. Size: the CL_THREADS
     * environment variable if set, else the hardware concurrency.
     */
    static ThreadPool &global();

    /** Replace the global pool (tests/benchmarks sweeping worker
     *  counts). Must not race with in-flight parallelFor calls. */
    static void setGlobalThreads(unsigned nthreads);

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_; // null when nthreads_ <= 1
    unsigned nthreads_;
};

/** Shorthand for ThreadPool::global().parallelFor(...). */
void parallelFor(std::size_t begin, std::size_t end,
                 const std::function<void(std::size_t)> &fn,
                 std::size_t grain = 1);

/** One "grain" of work: ranges whose total footprint is below this
 *  many words run inline rather than waking the pool. */
constexpr std::size_t kParallelGrainWords = std::size_t{1} << 14;

/**
 * Trip-count grain for a kernel touching ~@p words_per_index memory
 * words per index: parallelFor(..., parallelGrain(n)) runs inline
 * unless the range holds more than one grain of total work. Heavy
 * per-index kernels (a whole residue polynomial at production N) get
 * grain 1 — identical to the pre-grain behavior — while short towers
 * stay on the calling thread.
 */
constexpr std::size_t
parallelGrain(std::size_t words_per_index)
{
    return words_per_index >= kParallelGrainWords
               ? 1
               : kParallelGrainWords /
                     (words_per_index == 0 ? 1 : words_per_index);
}

} // namespace cl

#endif // CL_UTIL_THREADPOOL_H

/**
 * @file
 * Cryptographic pseudo-random generation used for keyswitch-hint
 * expansion (the software twin of CraterLake's KSHGen unit, Sec 5.2).
 *
 * The paper generates the pseudo-random half of each keyswitch hint
 * from a small seed with a Keccak-based PRNG (KangarooTwelve) followed
 * by rejection sampling modulo each RNS prime. We implement the
 * sponge core (Keccak-f[1600], SHAKE-128 parameters) and the same
 * rejection-sampling discipline, so the hardware KSHGen model and the
 * functional CKKS library expand identical hint data from a seed.
 */

#ifndef CL_UTIL_PRNG_H
#define CL_UTIL_PRNG_H

#include <array>
#include <cstdint>
#include <vector>

namespace cl {

/** One Keccak-f[1600] permutation over the 25-word sponge state. */
void keccakF1600(std::array<std::uint64_t, 25> &state);

/**
 * SHAKE-128 extendable-output function used as a seeded stream of
 * uniform 64-bit words. Deterministic for a given (seed, domain) pair.
 */
class Shake128Stream
{
  public:
    /**
     * @param seed Arbitrary caller seed (e.g., per-key master seed).
     * @param domain Domain-separation tag so independent hints drawn
     *        from one master seed never share a stream.
     */
    Shake128Stream(std::uint64_t seed, std::uint64_t domain);

    /** Next 64 uniformly random bits. */
    std::uint64_t next64();

    /** Next @p bits uniformly random low-order bits (bits <= 64). */
    std::uint64_t nextBits(unsigned bits);

    /** Total 64-bit words squeezed so far (for modeling throughput). */
    std::uint64_t wordsSqueezed() const { return wordsSqueezed_; }

  private:
    void squeezeBlock();

    static constexpr unsigned rateWords = 168 / 8; // SHAKE-128 rate

    std::array<std::uint64_t, 25> state_{};
    std::array<std::uint64_t, rateWords> block_{};
    unsigned blockPos_;
    std::uint64_t wordsSqueezed_;
};

/**
 * Rejection sampler producing values uniform in [0, q) from a
 * Shake128Stream, mirroring the KSHGen pipeline: it draws
 * ceil(log2 q) + extraBits random bits per attempt, which reduces the
 * rejection probability below 2^-extraBits (Sec 5.2 "sampling
 * additional random bits per generated word").
 */
class RejectionSampler
{
  public:
    RejectionSampler(std::uint64_t seed, std::uint64_t domain,
                     std::uint64_t q, unsigned extra_bits = 2);

    /** Next uniform value modulo q. */
    std::uint64_t next();

    /** Fill @p out with n uniform values modulo q. */
    void fill(std::uint64_t *out, std::size_t n);

    /** Attempts made (accepted + rejected), for throughput modeling. */
    std::uint64_t attempts() const { return attempts_; }

    /** Values accepted so far. */
    std::uint64_t accepted() const { return accepted_; }

  private:
    Shake128Stream stream_;
    std::uint64_t q_;
    unsigned sampleBits_;
    std::uint64_t bound_; // largest multiple of q below 2^sampleBits
    std::uint64_t attempts_;
    std::uint64_t accepted_;
};

/**
 * Fast non-cryptographic PRNG (xoshiro256**) for test inputs and
 * noise sampling in the functional scheme, where reproducibility
 * matters but cryptographic strength is exercised elsewhere.
 */
class FastRng
{
  public:
    explicit FastRng(std::uint64_t seed);

    std::uint64_t next64();

    /** Uniform in [0, bound). */
    std::uint64_t nextBelow(std::uint64_t bound);

    /** Centered binomial sample with parameter eta (variance eta/2). */
    int nextCbd(unsigned eta = 21);

    /** Uniform ternary sample in {-1, 0, 1}. */
    int nextTernary();

    /** Uniform double in [0, 1). */
    double nextDouble();

  private:
    std::array<std::uint64_t, 4> s_;
};

} // namespace cl

#endif // CL_UTIL_PRNG_H

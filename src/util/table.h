/**
 * @file
 * Minimal aligned-text table printer used by the benchmark harnesses
 * to render paper tables next to measured results.
 */

#ifndef CL_UTIL_TABLE_H
#define CL_UTIL_TABLE_H

#include <string>
#include <vector>

namespace cl {

/** Column-aligned console table with a header row and separator. */
class TextTable
{
  public:
    explicit TextTable(std::vector<std::string> header);

    /** Append a data row; must match the header width. */
    void addRow(std::vector<std::string> row);

    /** Insert a horizontal separator before the next row. */
    void addSeparator();

    /** Render to a string with 2-space column gaps. */
    std::string render() const;

    /** Render and print to stdout. */
    void print() const;

    /** Format a double with @p precision fractional digits. */
    static std::string num(double v, int precision = 2);

    /** Format as "x.yz×" speedup notation. */
    static std::string speedup(double v, int precision = 2);

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_; // empty row == separator
};

} // namespace cl

#endif // CL_UTIL_TABLE_H

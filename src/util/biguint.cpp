#include "biguint.h"

#include <cmath>

#include "common.h"

namespace cl {

using u128 = unsigned __int128;

BigUint::BigUint(std::uint64_t v)
{
    if (v)
        limbs_.push_back(v);
}

BigUint
BigUint::product(const std::vector<std::uint64_t> &factors)
{
    BigUint r(1);
    for (std::uint64_t f : factors)
        r.mulU64(f);
    return r;
}

void
BigUint::trim()
{
    while (!limbs_.empty() && limbs_.back() == 0)
        limbs_.pop_back();
}

BigUint &
BigUint::operator+=(const BigUint &other)
{
    const std::size_t n = std::max(limbs_.size(), other.limbs_.size());
    limbs_.resize(n, 0);
    std::uint64_t carry = 0;
    for (std::size_t i = 0; i < n; ++i) {
        u128 s = (u128)limbs_[i] + carry;
        if (i < other.limbs_.size())
            s += other.limbs_[i];
        limbs_[i] = static_cast<std::uint64_t>(s);
        carry = static_cast<std::uint64_t>(s >> 64);
    }
    if (carry)
        limbs_.push_back(carry);
    return *this;
}

BigUint &
BigUint::operator-=(const BigUint &other)
{
    CL_ASSERT(*this >= other, "BigUint underflow");
    std::uint64_t borrow = 0;
    for (std::size_t i = 0; i < limbs_.size(); ++i) {
        u128 lhs = limbs_[i];
        u128 rhs = borrow;
        if (i < other.limbs_.size())
            rhs += other.limbs_[i];
        if (lhs >= rhs) {
            limbs_[i] = static_cast<std::uint64_t>(lhs - rhs);
            borrow = 0;
        } else {
            limbs_[i] =
                static_cast<std::uint64_t>(((u128)1 << 64) + lhs - rhs);
            borrow = 1;
        }
    }
    CL_ASSERT(borrow == 0, "BigUint underflow");
    trim();
    return *this;
}

BigUint &
BigUint::mulU64(std::uint64_t m)
{
    if (m == 0 || isZero()) {
        limbs_.clear();
        return *this;
    }
    std::uint64_t carry = 0;
    for (auto &limb : limbs_) {
        u128 p = (u128)limb * m + carry;
        limb = static_cast<std::uint64_t>(p);
        carry = static_cast<std::uint64_t>(p >> 64);
    }
    if (carry)
        limbs_.push_back(carry);
    return *this;
}

BigUint &
BigUint::addU64(std::uint64_t v)
{
    BigUint b(v);
    return *this += b;
}

int
BigUint::compare(const BigUint &other) const
{
    if (limbs_.size() != other.limbs_.size())
        return limbs_.size() < other.limbs_.size() ? -1 : 1;
    for (std::size_t i = limbs_.size(); i-- > 0;) {
        if (limbs_[i] != other.limbs_[i])
            return limbs_[i] < other.limbs_[i] ? -1 : 1;
    }
    return 0;
}

std::uint64_t
BigUint::modU64(std::uint64_t m) const
{
    CL_ASSERT(m != 0);
    u128 r = 0;
    for (std::size_t i = limbs_.size(); i-- > 0;)
        r = ((r << 64) | limbs_[i]) % m;
    return static_cast<std::uint64_t>(r);
}

int
BigUint::log2Floor() const
{
    if (isZero())
        return -1;
    const std::uint64_t top = limbs_.back();
    return static_cast<int>(limbs_.size() - 1) * 64 + 63 -
           __builtin_clzll(top);
}

double
BigUint::bitLength() const
{
    if (isZero())
        return 0.0;
    // Use the top two limbs for a fractional log2.
    const std::size_t k = limbs_.size();
    double top = static_cast<double>(limbs_.back());
    if (k >= 2)
        top += static_cast<double>(limbs_[k - 2]) * 0x1.0p-64;
    return std::log2(top) + 64.0 * static_cast<double>(k - 1);
}

double
BigUint::toDouble() const
{
    double v = 0;
    for (std::size_t i = limbs_.size(); i-- > 0;)
        v = v * 0x1.0p64 + static_cast<double>(limbs_[i]);
    return v;
}

std::string
BigUint::toHex() const
{
    if (isZero())
        return "0x0";
    std::string s = "0x";
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%llx",
                  static_cast<unsigned long long>(limbs_.back()));
    s += buf;
    for (std::size_t i = limbs_.size() - 1; i-- > 0;) {
        std::snprintf(buf, sizeof(buf), "%016llx",
                      static_cast<unsigned long long>(limbs_[i]));
        s += buf;
    }
    return s;
}

} // namespace cl

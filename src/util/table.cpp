#include "table.h"

#include <cstdio>
#include <sstream>

#include "common.h"

namespace cl {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header))
{
    CL_ASSERT(!header_.empty());
}

void
TextTable::addRow(std::vector<std::string> row)
{
    CL_ASSERT(row.size() == header_.size(), "row width ", row.size(),
              " != header width ", header_.size());
    rows_.push_back(std::move(row));
}

void
TextTable::addSeparator()
{
    rows_.emplace_back(); // sentinel
}

std::string
TextTable::render() const
{
    std::vector<std::size_t> widths(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c)
        widths[c] = header_[c].size();
    for (const auto &row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    auto emit_row = [&](std::ostringstream &oss,
                        const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            oss << row[c];
            if (c + 1 < row.size())
                oss << std::string(widths[c] - row[c].size() + 2, ' ');
        }
        oss << '\n';
    };

    std::size_t total = 0;
    for (std::size_t c = 0; c < widths.size(); ++c)
        total += widths[c] + (c + 1 < widths.size() ? 2 : 0);

    std::ostringstream oss;
    emit_row(oss, header_);
    oss << std::string(total, '-') << '\n';
    for (const auto &row : rows_) {
        if (row.empty())
            oss << std::string(total, '-') << '\n';
        else
            emit_row(oss, row);
    }
    return oss.str();
}

void
TextTable::print() const
{
    std::fputs(render().c_str(), stdout);
}

std::string
TextTable::num(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
TextTable::speedup(double v, int precision)
{
    char buf[64];
    if (v >= 100)
        std::snprintf(buf, sizeof(buf), "%.0fx", v);
    else
        std::snprintf(buf, sizeof(buf), "%.*fx", precision, v);
    return buf;
}

} // namespace cl

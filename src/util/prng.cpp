#include "prng.h"

#include "common.h"

namespace cl {

namespace {

constexpr std::array<std::uint64_t, 24> roundConstants = {
    0x0000000000000001ULL, 0x0000000000008082ULL, 0x800000000000808aULL,
    0x8000000080008000ULL, 0x000000000000808bULL, 0x0000000080000001ULL,
    0x8000000080008081ULL, 0x8000000000008009ULL, 0x000000000000008aULL,
    0x0000000000000088ULL, 0x0000000080008009ULL, 0x000000008000000aULL,
    0x000000008000808bULL, 0x800000000000008bULL, 0x8000000000008089ULL,
    0x8000000000008003ULL, 0x8000000000008002ULL, 0x8000000000000080ULL,
    0x000000000000800aULL, 0x800000008000000aULL, 0x8000000080008081ULL,
    0x8000000000008080ULL, 0x0000000080000001ULL, 0x8000000080008008ULL,
};

constexpr std::array<unsigned, 24> rhoOffsets = {
    1, 3, 6, 10, 15, 21, 28, 36, 45, 55, 2, 14,
    27, 41, 56, 8, 25, 43, 62, 18, 39, 61, 20, 44,
};

constexpr std::array<unsigned, 24> piLanes = {
    10, 7, 11, 17, 18, 3, 5, 16, 8, 21, 24, 4,
    15, 23, 19, 13, 12, 2, 20, 14, 22, 9, 6, 1,
};

inline std::uint64_t
rotl64(std::uint64_t x, unsigned s)
{
    return (x << s) | (x >> (64 - s));
}

} // namespace

void
keccakF1600(std::array<std::uint64_t, 25> &state)
{
    for (unsigned round = 0; round < 24; ++round) {
        // Theta
        std::uint64_t c[5];
        for (unsigned x = 0; x < 5; ++x) {
            c[x] = state[x] ^ state[x + 5] ^ state[x + 10] ^ state[x + 15] ^
                   state[x + 20];
        }
        for (unsigned x = 0; x < 5; ++x) {
            std::uint64_t d = c[(x + 4) % 5] ^ rotl64(c[(x + 1) % 5], 1);
            for (unsigned y = 0; y < 5; ++y)
                state[x + 5 * y] ^= d;
        }
        // Rho and Pi
        std::uint64_t current = state[1];
        for (unsigned i = 0; i < 24; ++i) {
            unsigned lane = piLanes[i];
            std::uint64_t tmp = state[lane];
            state[lane] = rotl64(current, rhoOffsets[i]);
            current = tmp;
        }
        // Chi
        for (unsigned y = 0; y < 5; ++y) {
            std::uint64_t row[5];
            for (unsigned x = 0; x < 5; ++x)
                row[x] = state[x + 5 * y];
            for (unsigned x = 0; x < 5; ++x) {
                state[x + 5 * y] =
                    row[x] ^ (~row[(x + 1) % 5] & row[(x + 2) % 5]);
            }
        }
        // Iota
        state[0] ^= roundConstants[round];
    }
}

Shake128Stream::Shake128Stream(std::uint64_t seed, std::uint64_t domain)
    : blockPos_(rateWords), wordsSqueezed_(0)
{
    // Absorb a single 16-byte message (seed || domain) into the rate
    // portion, then apply SHAKE padding (0x1F ... 0x80) in-block.
    state_[0] ^= seed;
    state_[1] ^= domain;
    state_[2] ^= 0x1fULL;                  // SHAKE domain + pad10*1 start
    state_[rateWords - 1] ^= 0x8000000000000000ULL; // pad end
    keccakF1600(state_);
    for (unsigned i = 0; i < rateWords; ++i)
        block_[i] = state_[i];
    blockPos_ = 0;
}

void
Shake128Stream::squeezeBlock()
{
    keccakF1600(state_);
    for (unsigned i = 0; i < rateWords; ++i)
        block_[i] = state_[i];
    blockPos_ = 0;
}

std::uint64_t
Shake128Stream::next64()
{
    if (blockPos_ == rateWords)
        squeezeBlock();
    ++wordsSqueezed_;
    return block_[blockPos_++];
}

std::uint64_t
Shake128Stream::nextBits(unsigned bits)
{
    CL_ASSERT(bits >= 1 && bits <= 64, "bits=", bits);
    std::uint64_t w = next64();
    if (bits == 64)
        return w;
    return w & ((1ULL << bits) - 1);
}

RejectionSampler::RejectionSampler(std::uint64_t seed, std::uint64_t domain,
                                   std::uint64_t q, unsigned extra_bits)
    : stream_(seed, domain), q_(q), attempts_(0), accepted_(0)
{
    CL_ASSERT(q >= 2, "modulus too small: q=", q);
    unsigned qbits = 64 - __builtin_clzll(q - 1);
    sampleBits_ = qbits + extra_bits;
    if (sampleBits_ > 63)
        sampleBits_ = 63;
    std::uint64_t range = 1ULL << sampleBits_;
    bound_ = range - (range % q);
}

std::uint64_t
RejectionSampler::next()
{
    for (;;) {
        ++attempts_;
        std::uint64_t w = stream_.nextBits(sampleBits_);
        if (w < bound_) {
            ++accepted_;
            return w % q_;
        }
    }
}

void
RejectionSampler::fill(std::uint64_t *out, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        out[i] = next();
}

FastRng::FastRng(std::uint64_t seed)
{
    // SplitMix64 seeding, as recommended for xoshiro.
    std::uint64_t x = seed;
    for (auto &word : s_) {
        x += 0x9e3779b97f4a7c15ULL;
        std::uint64_t z = x;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        word = z ^ (z >> 31);
    }
}

std::uint64_t
FastRng::next64()
{
    std::uint64_t result = rotl64(s_[1] * 5, 7) * 9;
    std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl64(s_[3], 45);
    return result;
}

std::uint64_t
FastRng::nextBelow(std::uint64_t bound)
{
    CL_ASSERT(bound > 0);
    // Rejection to avoid modulo bias.
    std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
        std::uint64_t r = next64();
        if (r >= threshold)
            return r % bound;
    }
}

int
FastRng::nextCbd(unsigned eta)
{
    CL_ASSERT(eta <= 32, "eta too large: ", eta);
    std::uint64_t w = next64();
    int a = __builtin_popcountll(w & ((1ULL << eta) - 1));
    int b = __builtin_popcountll((w >> 32) & ((1ULL << eta) - 1));
    return a - b;
}

int
FastRng::nextTernary()
{
    return static_cast<int>(nextBelow(3)) - 1;
}

double
FastRng::nextDouble()
{
    return static_cast<double>(next64() >> 11) * 0x1.0p-53;
}

} // namespace cl

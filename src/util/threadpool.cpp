#include "threadpool.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <mutex>
#include <thread>
#include <vector>

#include "util/common.h"

namespace cl {

namespace {

/** Set while a thread is executing pool work; nested parallelFor
 *  calls from inside a kernel degrade to serial loops. */
thread_local bool t_inPoolWork = false;

unsigned
envThreads()
{
    if (const char *env = std::getenv("CL_THREADS")) {
        char *end = nullptr;
        const long v = std::strtol(env, &end, 10);
        if (end != env && v >= 1)
            return static_cast<unsigned>(v);
        warn(std::string("ignoring malformed CL_THREADS='") + env + "'");
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

} // namespace

struct ThreadPool::Impl
{
    std::vector<std::thread> workers;

    std::mutex jobMutex; // serializes concurrent parallelFor callers

    std::mutex m;
    std::condition_variable cvStart;
    std::condition_variable cvDone;
    const std::function<void(std::size_t)> *fn = nullptr;
    std::size_t end = 0;
    std::atomic<std::size_t> next{0};
    unsigned active = 0;   // workers still inside the current job
    std::uint64_t gen = 0; // bumped per job so workers see new work
    bool stop = false;

    void
    runIndices(const std::function<void(std::size_t)> &f)
    {
        // Save/restore rather than set/clear: the caller thread that
        // acts as worker #0 may already be marked (a WorkerScope
        // worker can only reach here through a future code path that
        // bypasses the inline check), and clearing its mark here
        // would let a later nested parallelFor on the same thread fan
        // out and deadlock on the jobMutex it already holds.
        const bool prev = t_inPoolWork;
        t_inPoolWork = true;
        std::size_t i;
        while ((i = next.fetch_add(1, std::memory_order_relaxed)) < end)
            f(i);
        t_inPoolWork = prev;
    }

    void
    workerLoop()
    {
        std::uint64_t seen = 0;
        for (;;) {
            const std::function<void(std::size_t)> *f;
            {
                std::unique_lock<std::mutex> lk(m);
                cvStart.wait(lk,
                             [&] { return stop || gen != seen; });
                if (stop)
                    return;
                seen = gen;
                f = fn;
            }
            runIndices(*f);
            {
                std::lock_guard<std::mutex> lk(m);
                if (--active == 0)
                    cvDone.notify_all();
            }
        }
    }
};

ThreadPool::ThreadPool(unsigned nthreads)
    : nthreads_(nthreads == 0 ? envThreads() : nthreads)
{
    if (nthreads_ <= 1)
        return;
    impl_ = std::make_unique<Impl>();
    impl_->workers.reserve(nthreads_ - 1);
    for (unsigned i = 0; i + 1 < nthreads_; ++i)
        impl_->workers.emplace_back([this] { impl_->workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    if (!impl_)
        return;
    {
        std::lock_guard<std::mutex> lk(impl_->m);
        impl_->stop = true;
    }
    impl_->cvStart.notify_all();
    for (auto &w : impl_->workers)
        w.join();
}

void
ThreadPool::parallelFor(std::size_t begin, std::size_t end,
                        const std::function<void(std::size_t)> &fn,
                        std::size_t grain)
{
    if (begin >= end)
        return;
    if (!impl_ || end - begin <= std::max<std::size_t>(grain, 1) ||
        t_inPoolWork) {
        for (std::size_t i = begin; i < end; ++i)
            fn(i);
        return;
    }

    std::lock_guard<std::mutex> job(impl_->jobMutex);
    {
        std::lock_guard<std::mutex> lk(impl_->m);
        impl_->fn = &fn;
        impl_->end = end;
        impl_->next.store(begin, std::memory_order_relaxed);
        impl_->active =
            static_cast<unsigned>(impl_->workers.size());
        ++impl_->gen;
    }
    impl_->cvStart.notify_all();
    impl_->runIndices(fn); // the caller is worker #0
    std::unique_lock<std::mutex> lk(impl_->m);
    impl_->cvDone.wait(lk, [&] { return impl_->active == 0; });
    impl_->fn = nullptr;
}

bool
ThreadPool::inWorkerContext()
{
    return t_inPoolWork;
}

ThreadPool::WorkerScope::WorkerScope() : prev_(t_inPoolWork)
{
    t_inPoolWork = true;
}

ThreadPool::WorkerScope::~WorkerScope()
{
    t_inPoolWork = prev_;
}

namespace {

std::unique_ptr<ThreadPool> g_pool;
std::mutex g_poolMutex;

} // namespace

ThreadPool &
ThreadPool::global()
{
    std::lock_guard<std::mutex> lk(g_poolMutex);
    if (!g_pool)
        g_pool = std::make_unique<ThreadPool>(0);
    return *g_pool;
}

void
ThreadPool::setGlobalThreads(unsigned nthreads)
{
    std::lock_guard<std::mutex> lk(g_poolMutex);
    g_pool = std::make_unique<ThreadPool>(nthreads == 0 ? 1 : nthreads);
}

void
parallelFor(std::size_t begin, std::size_t end,
            const std::function<void(std::size_t)> &fn,
            std::size_t grain)
{
    ThreadPool::global().parallelFor(begin, end, fn, grain);
}

} // namespace cl

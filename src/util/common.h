/**
 * @file
 * Common error-handling and status-message helpers, in the spirit of
 * gem5's logging.hh: panic() for internal invariant violations, fatal()
 * for unusable user configuration, warn()/inform() for status.
 */

#ifndef CL_UTIL_COMMON_H
#define CL_UTIL_COMMON_H

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace cl {

namespace detail {

[[noreturn]] inline void
abortWith(const char *kind, const std::string &msg, const char *file,
          int line)
{
    std::fprintf(stderr, "%s: %s (%s:%d)\n", kind, msg.c_str(), file, line);
    std::abort();
}

template <typename... Args>
std::string
formatMsg(Args &&...args)
{
    if constexpr (sizeof...(Args) == 0) {
        return {};
    } else {
        std::ostringstream oss;
        (oss << ... << args);
        return oss.str();
    }
}

} // namespace detail

/** Abort due to an internal bug: a condition that should never happen. */
#define CL_PANIC(...)                                                        \
    ::cl::detail::abortWith("panic", ::cl::detail::formatMsg(__VA_ARGS__),   \
                            __FILE__, __LINE__)

/** Abort due to an unusable configuration supplied by the caller. */
#define CL_FATAL(...)                                                        \
    ::cl::detail::abortWith("fatal", ::cl::detail::formatMsg(__VA_ARGS__),   \
                            __FILE__, __LINE__)

/** Invariant check; active in all build types (models are cheap to check). */
#define CL_ASSERT(cond, ...)                                                 \
    do {                                                                     \
        if (!(cond)) {                                                       \
            ::cl::detail::abortWith(                                         \
                "assert(" #cond ")",                                         \
                ::cl::detail::formatMsg(__VA_ARGS__), __FILE__, __LINE__);   \
        }                                                                    \
    } while (0)

/** Non-fatal warning to stderr. */
inline void
warn(const std::string &msg)
{
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

/** Informational status message to stderr. */
inline void
inform(const std::string &msg)
{
    std::fprintf(stderr, "info: %s\n", msg.c_str());
}

/** Integer ceil-division for non-negative operands. */
constexpr std::uint64_t
ceilDiv(std::uint64_t a, std::uint64_t b)
{
    return (a + b - 1) / b;
}

/** True iff @p x is a power of two (and nonzero). */
constexpr bool
isPowerOfTwo(std::uint64_t x)
{
    return x != 0 && (x & (x - 1)) == 0;
}

/** Log base 2 of a power of two. */
constexpr unsigned
log2Exact(std::uint64_t x)
{
    unsigned l = 0;
    while (x > 1) {
        x >>= 1;
        ++l;
    }
    return l;
}

} // namespace cl

#endif // CL_UTIL_COMMON_H

/**
 * @file
 * Top-level public API: compile an FHE program for an accelerator
 * configuration and execute it on the cycle-level simulator.
 *
 * This is the facade a downstream user interacts with:
 *
 *   auto prog = cl::resnet20();
 *   cl::Accelerator accel(cl::ChipConfig::craterLake());
 *   auto result = accel.execute(prog);
 *   std::cout << result.milliseconds() << " ms\n";
 */

#ifndef CL_CORE_CRATERLAKE_H
#define CL_CORE_CRATERLAKE_H

#include "compiler/lower.h"
#include "sim/simulator.h"

namespace cl {

struct RunResult
{
    ChipConfig config;
    SimStats stats;
    LowerStats lowering;
    std::size_t instructions = 0;
    std::size_t homOps = 0;

    double seconds() const { return stats.seconds(config); }
    double milliseconds() const { return seconds() * 1e3; }
};

class Accelerator
{
  public:
    explicit Accelerator(ChipConfig cfg,
                         ScheduleMode schedule = ScheduleMode::None)
        : cfg_(std::move(cfg)), schedule_(schedule)
    {
    }

    const ChipConfig &config() const { return cfg_; }

    /** Compile (lower + schedule) and simulate a program. */
    RunResult
    execute(const HomProgram &hp) const
    {
        Lowering lower(cfg_, schedule_);
        Program prog = lower.lower(hp);
        Simulator sim(cfg_);
        RunResult r;
        r.config = cfg_;
        r.stats = sim.run(prog);
        r.lowering = lower.stats();
        r.instructions = prog.size();
        r.homOps = hp.ops.size();
        return r;
    }

  private:
    ChipConfig cfg_;
    ScheduleMode schedule_ = ScheduleMode::None;
};

/**
 * F1+'s algorithm selection (Sec 8): standard keyswitching where it
 * is more efficient (L <= 14), boosted above.
 */
inline DigitPolicy
f1plusPolicy(DigitPolicy base = digitPolicy80())
{
    return [base](unsigned level) -> unsigned {
        return level <= 14 ? level : base(level);
    };
}

} // namespace cl

#endif // CL_CORE_CRATERLAKE_H

#include "context.h"

#include <algorithm>

#include "rns/primes.h"

namespace cl {

namespace {

/**
 * Generate the full modulus chain. Widths may coincide (e.g., the
 * 28-bit hardware configuration), so primes are drawn from shared
 * descending streams per width to guarantee distinctness.
 */
std::vector<u64>
buildModuli(const CkksParams &p)
{
    std::map<unsigned, std::size_t> need;
    need[p.firstModBits] += 1;
    if (p.l > 1)
        need[p.scaleBits] += p.l - 1;
    need[p.specialBits] += p.alpha;

    std::map<unsigned, std::vector<u64>> pool;
    for (auto &[bits, count] : need)
        pool[bits] = generateNttPrimes(bits, p.n(), count);

    std::map<unsigned, std::size_t> used;
    auto take = [&](unsigned bits) {
        return pool[bits][used[bits]++];
    };

    std::vector<u64> moduli;
    moduli.push_back(take(p.firstModBits));
    for (unsigned i = 1; i < p.l; ++i)
        moduli.push_back(take(p.scaleBits));
    for (unsigned i = 0; i < p.alpha; ++i)
        moduli.push_back(take(p.specialBits));
    return moduli;
}

} // namespace

CkksContext::CkksContext(const CkksParams &params) : params_(params)
{
    CL_ASSERT(params_.l >= 1, "need at least one data modulus");
    CL_ASSERT(params_.alpha >= 1, "need at least one special modulus");
    chain_ = std::make_unique<RnsChain>(params_.n(), buildModuli(params_));

    pModQ_.resize(chain_->size());
    for (std::size_t i = 0; i < chain_->size(); ++i) {
        const u64 qi = chain_->modulus(i);
        u64 prod = 1;
        for (unsigned s = 0; s < params_.alpha; ++s)
            prod = mulMod(prod, chain_->modulus(params_.l + s) % qi, qi);
        pModQ_[i] = prod;
    }
}

std::vector<unsigned>
CkksContext::dataIdx(unsigned l_cur) const
{
    CL_ASSERT(l_cur >= 1 && l_cur <= params_.l, "bad level ", l_cur);
    std::vector<unsigned> idx(l_cur);
    for (unsigned i = 0; i < l_cur; ++i)
        idx[i] = i;
    return idx;
}

std::vector<unsigned>
CkksContext::specialIdx() const
{
    std::vector<unsigned> idx(params_.alpha);
    for (unsigned i = 0; i < params_.alpha; ++i)
        idx[i] = params_.l + i;
    return idx;
}

const BaseConverter &
CkksContext::converter(const std::vector<unsigned> &src,
                       const std::vector<unsigned> &dst) const
{
    auto key = std::make_pair(src, dst);
    std::lock_guard<std::mutex> lk(convertersMutex_);
    auto it = converters_.find(key);
    if (it == converters_.end()) {
        it = converters_
                 .emplace(std::move(key),
                          std::make_unique<BaseConverter>(*chain_, src, dst))
                 .first;
    }
    return *it->second;
}

} // namespace cl

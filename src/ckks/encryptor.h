/**
 * @file
 * Encryption and decryption (Sec 2.2): m -> ct = (-a·s + e + m, a).
 */

#ifndef CL_CKKS_ENCRYPTOR_H
#define CL_CKKS_ENCRYPTOR_H

#include "ckks/ciphertext.h"
#include "ckks/encoder.h"
#include "ckks/keys.h"

namespace cl {

class Encryptor
{
  public:
    Encryptor(const CkksContext &ctx, const PublicKey &pk,
              std::uint64_t seed = 42);

    /** Encrypt a plaintext polynomial (NTT or coeff form) at its level. */
    Ciphertext encrypt(const RnsPoly &plain, double scale) const;

    /** Encode-and-encrypt convenience. */
    Ciphertext encryptValues(const CkksEncoder &encoder,
                             const std::vector<Complex> &values,
                             double scale, unsigned level) const;

  private:
    const CkksContext &ctx_;
    PublicKey pk_;
    mutable FastRng rng_;
};

class Decryptor
{
  public:
    Decryptor(const CkksContext &ctx, const SecretKey &sk);

    /** Decrypt to a plaintext polynomial (NTT form). */
    RnsPoly decrypt(const Ciphertext &ct) const;

    /** Decrypt-and-decode convenience. */
    std::vector<Complex> decryptValues(const CkksEncoder &encoder,
                                       const Ciphertext &ct) const;

  private:
    const CkksContext &ctx_;
    const SecretKey &sk_;
};

} // namespace cl

#endif // CL_CKKS_ENCRYPTOR_H

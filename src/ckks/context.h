/**
 * @file
 * CkksContext: owns the RNS chain, encoder tables, base-converter
 * caches, and the operation counters used to cross-check the paper's
 * cost formulas (Table 1, Fig 4).
 */

#ifndef CL_CKKS_CONTEXT_H
#define CL_CKKS_CONTEXT_H

#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "ckks/params.h"
#include "poly/rnspoly.h"

namespace cl {

/**
 * Running counts of the scalar/vector operations performed by the
 * functional library, mirroring Table 1's accounting: element-wise
 * multiplies/adds (in units of residue polynomials) and NTTs.
 */
struct OpCounter
{
    std::uint64_t polyMults = 0; ///< Residue-poly element-wise multiplies.
    std::uint64_t polyAdds = 0;  ///< Residue-poly element-wise adds.
    std::uint64_t ntts = 0;      ///< Forward + inverse NTTs.
    std::uint64_t automorphisms = 0;

    // Staged-keyswitch stage counts (the hoisted path shares one
    // decompose across many rotations; these make the sharing visible
    // so per-stage costs can be pinned against the naive path).
    std::uint64_t decomposes = 0;    ///< Digit-lift + mod-up passes.
    std::uint64_t innerProducts = 0; ///< Hint inner products.
    std::uint64_t modDowns = 0;      ///< Extended-basis mod-downs.

    void
    reset()
    {
        *this = OpCounter{};
    }
};

class CkksContext
{
  public:
    explicit CkksContext(const CkksParams &params);

    const CkksParams &params() const { return params_; }
    const RnsChain &chain() const { return *chain_; }
    std::size_t n() const { return params_.n(); }
    std::size_t slots() const { return params_.slots(); }

    /** Number of data moduli (max level L). */
    unsigned l() const { return params_.l; }
    /** Number of special moduli. */
    unsigned alpha() const { return params_.alpha; }

    /** Chain indices [0, l_cur) of the data basis at a level. */
    std::vector<unsigned> dataIdx(unsigned l_cur) const;
    /** Chain indices of the special basis P. */
    std::vector<unsigned> specialIdx() const;

    /** Product of the special moduli reduced mod chain modulus i. */
    u64 pModQ(unsigned i) const { return pModQ_[i]; }

    /**
     * Cached base converter between two index sets (built lazily;
     * keyswitching reuses a handful of conversions per level).
     */
    const BaseConverter &converter(const std::vector<unsigned> &src,
                                   const std::vector<unsigned> &dst) const;

    /** Mutable op counter (shared by evaluator and keyswitching). */
    OpCounter &ops() const { return ops_; }

  private:
    CkksParams params_;
    std::unique_ptr<RnsChain> chain_;
    std::vector<u64> pModQ_;
    mutable std::mutex convertersMutex_;
    mutable std::map<std::pair<std::vector<unsigned>, std::vector<unsigned>>,
                     std::unique_ptr<BaseConverter>>
        converters_;
    mutable OpCounter ops_;
};

} // namespace cl

#endif // CL_CKKS_CONTEXT_H

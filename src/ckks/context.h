/**
 * @file
 * CkksContext: owns the RNS chain, encoder tables, base-converter
 * caches, and the operation counters used to cross-check the paper's
 * cost formulas (Table 1, Fig 4).
 */

#ifndef CL_CKKS_CONTEXT_H
#define CL_CKKS_CONTEXT_H

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "ckks/params.h"
#include "poly/rnspoly.h"

namespace cl {

/**
 * Relaxed atomic counter with value semantics. The task-graph runtime
 * (src/runtime) executes independent Evaluator ops concurrently, and
 * every op charges the shared OpCounter; wrapping each field keeps the
 * charges race-free while every existing call site — `+=`, `++`,
 * copies like `OpCounter model = ctx.ops()`, and plain u64 reads —
 * compiles unchanged. Relaxed ordering is enough: totals are only read
 * after the parallel region joins, and addition commutes, so the
 * counts are exact and order-independent.
 */
class AtomicCount
{
  public:
    AtomicCount() = default;
    AtomicCount(std::uint64_t v) : v_(v) {}
    AtomicCount(const AtomicCount &o) : v_(o.value()) {}

    AtomicCount &
    operator=(const AtomicCount &o)
    {
        v_.store(o.value(), std::memory_order_relaxed);
        return *this;
    }
    AtomicCount &
    operator=(std::uint64_t v)
    {
        v_.store(v, std::memory_order_relaxed);
        return *this;
    }
    AtomicCount &
    operator+=(std::uint64_t d)
    {
        v_.fetch_add(d, std::memory_order_relaxed);
        return *this;
    }
    AtomicCount &
    operator++()
    {
        v_.fetch_add(1, std::memory_order_relaxed);
        return *this;
    }
    std::uint64_t
    operator++(int)
    {
        return v_.fetch_add(1, std::memory_order_relaxed);
    }

    operator std::uint64_t() const { return value(); }
    std::uint64_t
    value() const
    {
        return v_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<std::uint64_t> v_{0};
};

/**
 * Running counts of the scalar/vector operations performed by the
 * functional library, mirroring Table 1's accounting: element-wise
 * multiplies/adds (in units of residue polynomials) and NTTs.
 * Fields are individually atomic (see AtomicCount) so concurrent
 * Evaluator calls under the task-graph runtime account correctly.
 */
struct OpCounter
{
    AtomicCount polyMults; ///< Residue-poly element-wise multiplies.
    AtomicCount polyAdds;  ///< Residue-poly element-wise adds.
    AtomicCount ntts;      ///< Forward + inverse NTTs.
    AtomicCount automorphisms;

    // Staged-keyswitch stage counts (the hoisted path shares one
    // decompose across many rotations; these make the sharing visible
    // so per-stage costs can be pinned against the naive path).
    AtomicCount decomposes;    ///< Digit-lift + mod-up passes.
    AtomicCount innerProducts; ///< Hint inner products.
    AtomicCount modDowns;      ///< Extended-basis mod-downs.

    void
    reset()
    {
        *this = OpCounter{};
    }
};

class CkksContext
{
  public:
    explicit CkksContext(const CkksParams &params);

    const CkksParams &params() const { return params_; }
    const RnsChain &chain() const { return *chain_; }
    std::size_t n() const { return params_.n(); }
    std::size_t slots() const { return params_.slots(); }

    /** Number of data moduli (max level L). */
    unsigned l() const { return params_.l; }
    /** Number of special moduli. */
    unsigned alpha() const { return params_.alpha; }

    /** Chain indices [0, l_cur) of the data basis at a level. */
    std::vector<unsigned> dataIdx(unsigned l_cur) const;
    /** Chain indices of the special basis P. */
    std::vector<unsigned> specialIdx() const;

    /** Product of the special moduli reduced mod chain modulus i. */
    u64 pModQ(unsigned i) const { return pModQ_[i]; }

    /**
     * Cached base converter between two index sets (built lazily;
     * keyswitching reuses a handful of conversions per level).
     */
    const BaseConverter &converter(const std::vector<unsigned> &src,
                                   const std::vector<unsigned> &dst) const;

    /** Mutable op counter (shared by evaluator and keyswitching). */
    OpCounter &ops() const { return ops_; }

  private:
    CkksParams params_;
    std::unique_ptr<RnsChain> chain_;
    std::vector<u64> pModQ_;
    mutable std::mutex convertersMutex_;
    mutable std::map<std::pair<std::vector<unsigned>, std::vector<unsigned>>,
                     std::unique_ptr<BaseConverter>>
        converters_;
    mutable OpCounter ops_;
};

} // namespace cl

#endif // CL_CKKS_CONTEXT_H

/**
 * @file
 * Key material for the CKKS scheme.
 *
 * Ciphertext convention: ct = (c0, c1) decrypts as m ≈ c0 + c1·s.
 *
 * A keyswitch hint (KSH, the paper's term; "switching key" in library
 * parlance) converts an encryption component under a source key into
 * one under the canonical secret s. It consists of `digits` pairs of
 * polynomials over the extended basis Q ∪ P. The a-halves are
 * pseudo-random and regenerable from (seed, domain) — exactly the
 * property CraterLake's KSHGen unit exploits to halve KSH storage and
 * bandwidth (Sec 5.2).
 */

#ifndef CL_CKKS_KEYS_H
#define CL_CKKS_KEYS_H

#include <map>
#include <vector>

#include "ckks/context.h"
#include "util/prng.h"

namespace cl {

struct SecretKey
{
    RnsPoly s; ///< Ternary secret over the full chain, NTT form.
};

struct PublicKey
{
    RnsPoly b; ///< -a·s + e over the data basis, NTT form.
    RnsPoly a; ///< Uniform, NTT form.
};

/**
 * One keyswitch hint: per-digit (b, a) pairs over Q ∪ P.
 *
 * The digit size alphaKs selects the boosted-keyswitching variant
 * (Sec 3.1): alphaKs = L is the 1-digit variant; alphaKs = ceil(L/t)
 * is the t-digit variant; alphaKs = 1 degenerates to the standard
 * (per-prime) keyswitching algorithm that prior accelerators target.
 */
struct SwitchKey
{
    std::vector<RnsPoly> b; ///< b_j = -a_j·s + e_j + W_j·s_src.
    std::vector<RnsPoly> a; ///< Pseudo-random halves.
    unsigned alphaKs = 0;   ///< Digit size (special moduli used).
    std::uint64_t seed = 0; ///< Seed regenerating every a_j.
    std::uint64_t domain = 0;

    unsigned digits() const { return static_cast<unsigned>(b.size()); }

    /** KSH footprint in residue-polynomial words when the
     *  pseudo-random half is regenerated on the fly. */
    std::size_t
    storedWords(bool kshgen) const
    {
        std::size_t words = 0;
        for (const auto &poly : b)
            words += poly.footprintWords();
        if (!kshgen) {
            for (const auto &poly : a)
                words += poly.footprintWords();
        }
        return words;
    }
};

/** Rotation keys indexed by automorphism exponent. */
struct GaloisKeys
{
    std::map<std::size_t, SwitchKey> keys;

    const SwitchKey &
    at(std::size_t galois) const
    {
        auto it = keys.find(galois);
        CL_ASSERT(it != keys.end(), "missing galois key for k=", galois);
        return it->second;
    }

    bool has(std::size_t galois) const { return keys.count(galois) != 0; }
};

/** Generates all key material from the context's master seed. */
class KeyGenerator
{
  public:
    explicit KeyGenerator(const CkksContext &ctx);

    const SecretKey &secretKey() const { return sk_; }

    PublicKey genPublicKey();

    /** Relinearization hint: s^2 -> s. Digit size 0 means "context
     *  default" (alpha special moduli, i.e., the most boosted form). */
    SwitchKey genRelinKey(unsigned alpha_ks = 0);

    /** Rotation hint for slot rotation by @p steps (may be negative). */
    SwitchKey genRotationKey(int steps, unsigned alpha_ks = 0);

    /** Conjugation hint (automorphism x -> x^{-1}). */
    SwitchKey genConjugationKey(unsigned alpha_ks = 0);

    /** Hints for a set of rotations, keyed by automorphism exponent. */
    GaloisKeys genRotationKeys(const std::vector<int> &steps,
                               bool conjugate = false);

    /** Galois exponent implementing rotation by @p steps. */
    std::size_t galoisFromSteps(int steps) const;

    /** General hint from an arbitrary source key to s. */
    SwitchKey genSwitchKey(const RnsPoly &s_src, std::uint64_t domain,
                           unsigned alpha_ks = 0);

  private:
    RnsPoly sampleError(const std::vector<unsigned> &idx);
    RnsPoly sampleUniformSeeded(std::uint64_t seed, std::uint64_t domain,
                                const std::vector<unsigned> &idx);

    const CkksContext &ctx_;
    SecretKey sk_;
    FastRng noiseRng_;
    std::uint64_t domainCounter_;

    friend class Encryptor; // shares the sampling helpers
};

} // namespace cl

#endif // CL_CKKS_KEYS_H

#include "evaluator.h"

#include <algorithm>
#include <cmath>

#include "rns/simd/kernels.h"
#include "util/instrument.h"
#include "util/threadpool.h"

namespace cl {

Evaluator::Evaluator(const CkksContext &ctx) : ctx_(ctx) {}

void
Evaluator::checkSameShape(const Ciphertext &a, const Ciphertext &b) const
{
    CL_ASSERT(a.level() == b.level(), "level mismatch: ", a.level(), " vs ",
              b.level());
    // Scale guard: operands within kScaleRelTol are auto-aligned (the
    // result takes a.scale, absorbing the relative error into the
    // message noise); anything wider is a program bug — the caller
    // must rescale or mulPlain-align first.
    const double rel = std::abs(a.scale - b.scale) / a.scale;
    CL_ASSERT(rel < kScaleRelTol, "scale mismatch: ", a.scale, " vs ",
              b.scale, " (rel ", rel, " > ", kScaleRelTol, ")");
}

void
Evaluator::checkPlainScale(const Ciphertext &a, double plain_scale) const
{
    const double rel = std::abs(a.scale - plain_scale) / a.scale;
    CL_ASSERT(rel < kScaleRelTol, "plaintext scale mismatch: ct ", a.scale,
              " vs plain ", plain_scale, " (rel ", rel, " > ",
              kScaleRelTol, ")");
}

Ciphertext
Evaluator::add(const Ciphertext &a, const Ciphertext &b) const
{
    checkSameShape(a, b);
    Ciphertext r = a;
    r.c0 += b.c0;
    r.c1 += b.c1;
    ctx_.ops().polyAdds += 2 * r.c0.towers();
    return r;
}

Ciphertext
Evaluator::sub(const Ciphertext &a, const Ciphertext &b) const
{
    checkSameShape(a, b);
    Ciphertext r = a;
    r.c0 -= b.c0;
    r.c1 -= b.c1;
    ctx_.ops().polyAdds += 2 * r.c0.towers();
    return r;
}

RnsPoly
Evaluator::alignPlain(const RnsPoly &plain, std::size_t ct_towers) const
{
    // Drop surplus towers *before* the NTT so the conversion only
    // touches residues that survive, and charge the conversion — the
    // encoder hands out coefficient-form plaintexts, so this is real
    // NTT work the accounting previously missed.
    RnsPoly p = plain;
    if (p.towers() > ct_towers)
        p.dropTowers(p.towers() - ct_towers);
    if (!p.isNtt()) {
        p.toNtt();
        ctx_.ops().ntts += p.towers();
    }
    return p;
}

Ciphertext
Evaluator::addPlain(const Ciphertext &a, const RnsPoly &plain) const
{
    RnsPoly p = alignPlain(plain, a.c0.towers());
    Ciphertext r = a;
    r.c0 += p;
    ctx_.ops().polyAdds += r.c0.towers();
    return r;
}

Ciphertext
Evaluator::addPlain(const Ciphertext &a, const RnsPoly &plain,
                    double plain_scale) const
{
    checkPlainScale(a, plain_scale);
    return addPlain(a, plain);
}

Ciphertext
Evaluator::subPlain(const Ciphertext &a, const RnsPoly &plain) const
{
    RnsPoly p = alignPlain(plain, a.c0.towers());
    Ciphertext r = a;
    r.c0 -= p;
    ctx_.ops().polyAdds += r.c0.towers();
    return r;
}

Ciphertext
Evaluator::subPlain(const Ciphertext &a, const RnsPoly &plain,
                    double plain_scale) const
{
    checkPlainScale(a, plain_scale);
    return subPlain(a, plain);
}

Ciphertext
Evaluator::negate(const Ciphertext &a) const
{
    Ciphertext r = a;
    r.c0.negate();
    r.c1.negate();
    ctx_.ops().polyAdds += 2 * r.c0.towers();
    return r;
}

Ciphertext
Evaluator::mulPlain(const Ciphertext &a, const RnsPoly &plain,
                    double plain_scale) const
{
    RnsPoly p = alignPlain(plain, a.c0.towers());
    Ciphertext r = a;
    r.c0 *= p;
    r.c1 *= p;
    r.scale = a.scale * plain_scale;
    ctx_.ops().polyMults += 2 * r.c0.towers();
    return r;
}

Ciphertext
Evaluator::mulScalar(const Ciphertext &a, double scalar) const
{
    // Encode the scalar at the scale of the last live prime so that a
    // subsequent rescale restores the input scale exactly.
    const unsigned level = a.level();
    const u64 q_last = a.c0.modulus(level - 1);
    const double scale = static_cast<double>(q_last);
    Ciphertext r = a;
    const auto v = static_cast<long long>(std::nearbyint(scalar * scale));
    for (std::size_t t = 0; t < r.c0.towers(); ++t) {
        const u64 q = r.c0.modulus(t);
        const u64 w = reduceSigned(v, q);
        r.c0.mulScalarTower(t, w);
        r.c1.mulScalarTower(t, w);
    }
    r.scale = a.scale * scale;
    ctx_.ops().polyMults += 2 * r.c0.towers();
    return r;
}

KeySwitchDigits
Evaluator::decompose(const RnsPoly &d, unsigned alpha_ks) const
{
    CL_ASSERT(d.isNtt(), "keyswitch input must be in NTT form");
    const unsigned l = static_cast<unsigned>(d.towers());
    const unsigned a = alpha_ks;
    CL_ASSERT(a >= 1, "digit size must be at least 1");
    OpCounter &ops = ctx_.ops();
    ops.decomposes++;

    KeySwitchDigits out;
    out.level = l;
    out.alphaKs = a;
    for (unsigned i = 0; i < l; ++i)
        out.extIdx.push_back(i);
    for (unsigned i = 0; i < a; ++i)
        out.extIdx.push_back(ctx_.l() + i);
    const std::vector<unsigned> &ext_idx = out.extIdx;

    // Listing 1, line 2: the digits are lifted from the coefficient
    // domain.
    RnsPoly d_coeff = d;
    d_coeff.toCoeff();
    ops.ntts += l;

    const unsigned dnum = static_cast<unsigned>(ceilDiv(l, a));
    out.u.reserve(dnum);

    for (unsigned j = 0; j < dnum; ++j) {
        std::vector<unsigned> digit_idx;
        for (unsigned i = j * a; i < std::min(l, (j + 1) * a); ++i)
            digit_idx.push_back(i);
        std::vector<unsigned> comp_idx;
        for (unsigned i : ext_idx) {
            if (i < j * a || i >= (j + 1) * a)
                comp_idx.push_back(i);
        }

        // Listing 1, lines 3-4: changeRNSBase to the complement, then
        // NTT the raised residues (one worker per tower).
        const BaseConverter &conv = ctx_.converter(digit_idx, comp_idx);
        std::vector<BaseConverter::ResidueView> digit_res;
        for (unsigned i : digit_idx)
            digit_res.push_back(d_coeff.residue(i));
        std::vector<std::vector<u64>> raised;
        conv.convert(digit_res, raised);
        ops.polyMults += digit_idx.size() +
                         digit_idx.size() * comp_idx.size();
        ops.polyAdds += digit_idx.size() * comp_idx.size();
        ops.ntts += comp_idx.size();

        RnsPoly u(RnsPoly::Uninit{}, ctx_.chain(), ext_idx, true);
        parallelFor(0, ext_idx.size(), [&](std::size_t t) {
            const unsigned ci = ext_idx[t];
            bool in_digit = std::find(digit_idx.begin(), digit_idx.end(),
                                      ci) != digit_idx.end();
            if (in_digit) {
                // The digit's own residues stay as in the (NTT-form)
                // input — Listing 1 reuses p[0:L] directly.
                u.setResidue(t, d.residue(ci));
            } else {
                std::size_t k = 0;
                while (comp_idx[k] != ci)
                    ++k;
                u.setResidue(t, raised[k]);
                ctx_.chain().ntt(ci).forward(u.residue(t).data());
            }
        });
        out.u.push_back(std::move(u));
    }
    return out;
}

KeySwitchDigits
Evaluator::automorphismDigits(const KeySwitchDigits &digits,
                              std::size_t galois) const
{
    CL_ASSERT(digits.valid(), "automorphismDigits on empty digits");
    KeySwitchDigits out;
    out.extIdx = digits.extIdx;
    out.level = digits.level;
    out.alphaKs = digits.alphaKs;
    out.u.reserve(digits.u.size());
    for (const RnsPoly &u : digits.u)
        out.u.push_back(u.automorphism(galois));
    ctx_.ops().automorphisms += digits.u.size() * digits.extIdx.size();
    return out;
}

std::pair<RnsPoly, RnsPoly>
Evaluator::innerProduct(const KeySwitchDigits &digits,
                        const SwitchKey &ksk) const
{
    CL_ASSERT(digits.valid(), "innerProduct on empty digits");
    CL_ASSERT(ksk.alphaKs == digits.alphaKs,
              "digit size mismatch: digits use ", digits.alphaKs,
              ", hint uses ", ksk.alphaKs);
    const unsigned dnum = static_cast<unsigned>(digits.u.size());
    CL_ASSERT(dnum <= ksk.digits(), "hint has ", ksk.digits(),
              " digits, need ", dnum);
    OpCounter &ops = ctx_.ops();
    ops.innerProducts++;

    RnsPoly acc0(ctx_.chain(), digits.extIdx, true);
    RnsPoly acc1(ctx_.chain(), digits.extIdx, true);
    for (unsigned j = 0; j < dnum; ++j) {
        // Listing 1, line 6: fused MAC with the hint pair; the hint
        // towers are selected by chain index, no subset copies.
        acc0.addMulAssign(ksk.b[j], digits.u[j]);
        acc1.addMulAssign(ksk.a[j], digits.u[j]);
        ops.polyMults += 2 * digits.extIdx.size();
        ops.polyAdds += 2 * digits.extIdx.size();
    }
    return {std::move(acc0), std::move(acc1)};
}

std::pair<RnsPoly, RnsPoly>
Evaluator::innerProduct(const KeySwitchDigits &digits, const SwitchKey &ksk,
                        std::size_t galois) const
{
    // Tiling is a bandwidth optimization: it pays once one
    // extended-basis digit image outgrows the cache-resident regime.
    // Below the floor every operand is already cache-hot and the tile
    // bookkeeping is pure overhead, so fall through to the composed
    // per-digit path (bit-identical either way; DESIGN.md §5e).
    const bool tiled = fusionEnabled() &&
                       !digits.extIdx.empty() &&
                       u64{digits.extIdx.size()} * ctx_.n() * 8 >=
                           fusionTileMinBytes();
    if (!tiled) {
        if (galois != 1) {
            const KeySwitchDigits rot = automorphismDigits(digits, galois);
            return innerProduct(rot, ksk);
        }
        return innerProduct(digits, ksk);
    }

    // Tower-tiled fused path (DESIGN.md §5e): iterate tower-major so
    // each extended-basis tower's pair of accumulators stays
    // cache-resident across all dnum digit MACs, and the optional
    // digit automorphism gathers into per-thread scratch instead of
    // materializing rotated digit polynomials. The MACs run in the
    // same digit order with the same canonical kernels as the composed
    // loop, so the accumulators are bit-identical.
    CL_ASSERT(digits.valid(), "innerProduct on empty digits");
    CL_ASSERT(ksk.alphaKs == digits.alphaKs,
              "digit size mismatch: digits use ", digits.alphaKs,
              ", hint uses ", ksk.alphaKs);
    const unsigned dnum = static_cast<unsigned>(digits.u.size());
    CL_ASSERT(dnum <= ksk.digits(), "hint has ", ksk.digits(),
              " digits, need ", dnum);
    OpCounter &ops = ctx_.ops();
    ops.innerProducts++;
    const std::size_t ext = digits.extIdx.size();
    const std::size_t n = ctx_.n();
    if (galois != 1) // the gather passes charge the measurement side
        ops.automorphisms += u64{dnum} * ext;
    ops.polyMults += 2 * u64{dnum} * ext;
    ops.polyAdds += 2 * u64{dnum} * ext;
    countMults(2 * u64{dnum} * ext);
    countAdds(2 * u64{dnum} * ext);
    // Per tower: each MAC pass streams only its hint tower (the digit
    // residue is read once and then cache-resident, the accumulators
    // are written back once at the end); gathers charge themselves.
    countMemPass(2 * u64{dnum} * ext,
                 u64{ext} * n *
                     (16 * u64{dnum} + (galois == 1 ? 8 * u64{dnum} : 0) +
                      16));

    const AutomorphismMap *map =
        galois != 1 ? &ctx_.chain().automorphism(galois) : nullptr;

    // Per-digit position maps from our chain indices into the hint
    // towers (the same mapping addMulAssign builds per call).
    auto posOf = [&](const RnsPoly &p) {
        std::vector<std::size_t> pos(ext);
        for (std::size_t t = 0; t < ext; ++t) {
            const unsigned ci = digits.extIdx[t];
            const std::vector<unsigned> &mi = p.modIdx();
            std::size_t s = 0;
            while (s < mi.size() && mi[s] != ci)
                ++s;
            CL_ASSERT(s < mi.size(), "innerProduct: chain index ", ci,
                      " missing from hint");
            pos[t] = s;
        }
        return pos;
    };
    std::vector<std::vector<std::size_t>> bpos, apos;
    bpos.reserve(dnum);
    apos.reserve(dnum);
    for (unsigned j = 0; j < dnum; ++j) {
        bpos.push_back(posOf(ksk.b[j]));
        apos.push_back(posOf(ksk.a[j]));
    }

    RnsPoly acc0(RnsPoly::Uninit{}, ctx_.chain(), digits.extIdx, true);
    RnsPoly acc1(RnsPoly::Uninit{}, ctx_.chain(), digits.extIdx, true);
    const KernelTable &K = kernels();
    parallelFor(0, ext, [&](std::size_t t) {
        const u64 q = ctx_.chain().modulus(digits.extIdx[t]);
        u64 *a0 = acc0.residue(t).data();
        u64 *a1 = acc1.residue(t).data();
        std::fill_n(a0, n, u64{0});
        std::fill_n(a1, n, u64{0});
        static thread_local std::vector<u64> buf;
        if (map)
            buf.resize(n);
        for (unsigned j = 0; j < dnum; ++j) {
            const u64 *u = digits.u[j].residue(t).data();
            if (map) {
                map->applyNtt(u, buf.data());
                u = buf.data();
            }
            K.mulAddModVec(a0, ksk.b[j].residue(bpos[j][t]).data(), u, n,
                           q);
            K.mulAddModVec(a1, ksk.a[j].residue(apos[j][t]).data(), u, n,
                           q);
        }
    });
    return {std::move(acc0), std::move(acc1)};
}

RnsPoly
Evaluator::modDown(const RnsPoly &acc) const
{
    CL_ASSERT(acc.isNtt(), "modDown input must be in NTT form");
    std::vector<unsigned> special_idx;
    unsigned l = 0;
    for (unsigned i : acc.modIdx()) {
        if (i < ctx_.l())
            ++l;
        else
            special_idx.push_back(i);
    }
    CL_ASSERT(!special_idx.empty(), "modDown needs special towers");
    CL_ASSERT(acc.modIdx()[0] == 0 && acc.modIdx()[l - 1] == l - 1,
              "modDown expects data towers first");
    const unsigned a = static_cast<unsigned>(special_idx.size());
    OpCounter &ops = ctx_.ops();
    ops.modDowns++;

    // Listing 1, lines 7-10 (mod-down): divide by P.
    const BaseConverter &down =
        ctx_.converter(special_idx, ctx_.dataIdx(l));
    RnsPoly special = acc.subset(special_idx);
    special.toCoeff();
    ops.ntts += a;
    std::vector<std::vector<u64>> conv_out;
    down.convert(special.residueViews(), conv_out);
    ops.polyMults += a + a * l;
    ops.polyAdds += a * l;
    ops.ntts += l;
    ops.polyMults += l;
    ops.polyAdds += l;

    // The fused subtract-multiply below is a direct kernel call, not an
    // RnsPoly operator, so instrument it here: one mult + one add pass
    // per data tower.
    countMults(l);
    countAdds(l);
    countMemPass(l, u64{l} * 24 * ctx_.n());
    const bool fuse = fusionEnabled();
    RnsPoly out(RnsPoly::Uninit{}, ctx_.chain(), ctx_.dataIdx(l), true);
    parallelFor(0, l, [&](std::size_t t) {
        const u64 q = ctx_.chain().modulus(t);
        // P^{-1} for the special primes this hint uses.
        u64 p_mod_q = 1;
        for (unsigned i : special_idx)
            p_mod_q = mulMod(p_mod_q, ctx_.chain().modulus(i) % q, q);
        const ShoupMul p_inv(invMod(p_mod_q, q), q);
        if (fuse) {
            // Single-pass epilogue (DESIGN.md §5e): leave the forward
            // NTT in its lazy [0, 4q) window and fold the correction
            // into the subtract-multiply sweep.
            ctx_.chain().ntt(t).forwardLazy(conv_out[t].data());
            kernels().nttCorrectSubMulShoupVec(
                out.residue(t).data(), acc.residue(t).data(),
                conv_out[t].data(), ctx_.n(), p_inv.w, p_inv.wPrec, q);
        } else {
            ctx_.chain().ntt(t).forward(conv_out[t].data());
            kernels().subMulShoupVec(out.residue(t).data(),
                                     acc.residue(t).data(),
                                     conv_out[t].data(), ctx_.n(),
                                     p_inv.w, p_inv.wPrec, q);
        }
    });
    return out;
}

std::pair<RnsPoly, RnsPoly>
Evaluator::keySwitch(const RnsPoly &d, const SwitchKey &ksk) const
{
    CL_ASSERT(ksk.alphaKs >= 1, "uninitialized switch key");
    const KeySwitchDigits digits = decompose(d, ksk.alphaKs);
    auto [acc0, acc1] = innerProduct(digits, ksk, /*galois=*/1);
    return {modDown(acc0), modDown(acc1)};
}

Ciphertext
Evaluator::multiply(const Ciphertext &a, const Ciphertext &b,
                    const SwitchKey &relin) const
{
    CL_ASSERT(a.level() == b.level(), "multiply level mismatch");

    RnsPoly t0 = a.c0;
    t0 *= b.c0;
    RnsPoly t2 = a.c1;
    t2 *= b.c1;
    RnsPoly t1a = a.c0;
    t1a *= b.c1;
    RnsPoly t1b = a.c1;
    t1b *= b.c0;
    t1a += t1b;
    ctx_.ops().polyMults += 4 * a.level();
    ctx_.ops().polyAdds += a.level();

    auto [k0, k1] = keySwitch(t2, relin);
    Ciphertext r;
    r.c0 = std::move(t0);
    r.c0 += k0;
    r.c1 = std::move(t1a);
    r.c1 += k1;
    ctx_.ops().polyAdds += 2 * a.level();
    r.scale = a.scale * b.scale;
    return r;
}

Ciphertext
Evaluator::square(const Ciphertext &a, const SwitchKey &relin) const
{
    RnsPoly t0 = a.c0;
    t0 *= a.c0;
    RnsPoly t2 = a.c1;
    t2 *= a.c1;
    RnsPoly t1 = a.c0;
    t1 *= a.c1;
    t1 += t1; // 2*c0*c1
    ctx_.ops().polyMults += 3 * a.level();
    ctx_.ops().polyAdds += a.level();

    auto [k0, k1] = keySwitch(t2, relin);
    Ciphertext r;
    r.c0 = std::move(t0);
    r.c0 += k0;
    r.c1 = std::move(t1);
    r.c1 += k1;
    ctx_.ops().polyAdds += 2 * a.level();
    r.scale = a.scale * a.scale;
    return r;
}

void
Evaluator::rescale(Ciphertext &ct) const
{
    // Charge against the PRE-drop level l: each polynomial does l
    // inverse NTTs (all towers enter the coefficient domain), the
    // correction pass over the l-1 kept towers, and l-1 forward NTTs
    // back. Charging after rescaleLastTower() undercounts the domain
    // round trip by one tower per direction per polynomial.
    const unsigned l = ct.level();
    const u64 q_last = ct.c0.modulus(l - 1);
    ct.c0.rescaleLastTower();
    ct.c1.rescaleLastTower();
    ct.scale /= static_cast<double>(q_last);
    ctx_.ops().ntts += 2 * (2 * l - 1); // l down + (l-1) up, per poly
    ctx_.ops().polyMults += 2 * (l - 1);
    ctx_.ops().polyAdds += 2 * (l - 1);
}

void
Evaluator::levelDrop(Ciphertext &ct, unsigned target_level) const
{
    CL_ASSERT(target_level >= 1 && target_level <= ct.level(),
              "bad target level ", target_level);
    // A ciphertext whose scale alone exceeds the target basis is
    // unconditionally destroyed by the drop: the scaled message wraps
    // mod Q and decrypts to noise. (The message magnitude on top of
    // the scale is the caller's headroom to manage.)
    double cap_bits = 0;
    for (unsigned t = 0; t < target_level; ++t)
        cap_bits += std::log2(
            static_cast<double>(ctx_.chain().modulus(t)));
    CL_ASSERT(std::log2(ct.scale) < cap_bits,
              "levelDrop to level ", target_level, " cannot hold scale ",
              ct.scale);
    const std::size_t drop = ct.level() - target_level;
    if (drop) {
        ct.c0.dropTowers(drop);
        ct.c1.dropTowers(drop);
    }
}

std::size_t
Evaluator::galoisFromSteps(int steps) const
{
    const std::size_t m = 2 * ctx_.n();
    const std::size_t slots = ctx_.slots();
    long r = steps % static_cast<long>(slots);
    if (r < 0)
        r += static_cast<long>(slots);
    std::size_t g = 1;
    for (long i = 0; i < r; ++i)
        g = (g * 5) % m;
    return g;
}

Ciphertext
Evaluator::rotateByGalois(const Ciphertext &a, std::size_t galois,
                          const SwitchKey &key) const
{
    if (galois == 1)
        return a; // identity automorphism: no keyswitch needed
    // Staged form: lift the digits of c1 once, then permute them in
    // the raised basis. Equivalent to decompose-after-automorphism up
    // to base-conversion rounding (automorphism is a ring hom, and the
    // digit constants W_j are integers, invariant under it), and it is
    // exactly what the hoisted path computes — so single rotations and
    // hoisted rotations agree bit for bit.
    const KeySwitchDigits digits = decompose(a.c1, key.alphaKs);
    return rotateByGaloisHoisted(a, galois, key, digits);
}

Ciphertext
Evaluator::rotateByGaloisHoisted(const Ciphertext &a, std::size_t galois,
                                 const SwitchKey &key,
                                 const KeySwitchDigits &digits) const
{
    if (galois == 1)
        return a;
    RnsPoly c0_rot = a.c0.automorphism(galois);
    ctx_.ops().automorphisms += a.level();

    // Digit rotation fused into the inner product: the permuted digit
    // residues are gathered tower by tower inside the MAC sweep
    // instead of materializing a rotated KeySwitchDigits.
    auto [acc0, acc1] = innerProduct(digits, key, galois);
    RnsPoly k0 = modDown(acc0);
    RnsPoly k1 = modDown(acc1);
    Ciphertext r;
    r.c0 = std::move(c0_rot);
    r.c0 += k0;
    r.c1 = std::move(k1);
    r.scale = a.scale;
    ctx_.ops().polyAdds += a.level();
    return r;
}

Ciphertext
Evaluator::rotate(const Ciphertext &a, int steps, const GaloisKeys &gk) const
{
    if (steps % static_cast<long>(ctx_.slots()) == 0)
        return a;
    const std::size_t g = galoisFromSteps(steps);
    return rotateByGalois(a, g, gk.at(g));
}

Ciphertext
Evaluator::conjugate(const Ciphertext &a, const GaloisKeys &gk) const
{
    const std::size_t g = 2 * ctx_.n() - 1;
    return rotateByGalois(a, g, gk.at(g));
}

Ciphertext
Evaluator::modRaise(const Ciphertext &ct, unsigned target_level) const
{
    CL_ASSERT(target_level > ct.level(), "modRaise must increase level");
    const std::vector<unsigned> src_idx = ct.c0.modIdx();
    std::vector<unsigned> add_idx;
    for (unsigned i = static_cast<unsigned>(src_idx.size());
         i < target_level; ++i)
        add_idx.push_back(i);

    const BaseConverter &conv = ctx_.converter(src_idx, add_idx);
    auto raise = [&](const RnsPoly &p) {
        RnsPoly coeff = p;
        coeff.toCoeff();
        std::vector<std::vector<u64>> out;
        conv.convert(coeff.residueViews(), out);
        RnsPoly r(RnsPoly::Uninit{}, ctx_.chain(),
                  ctx_.dataIdx(target_level), false);
        for (std::size_t t = 0; t < src_idx.size(); ++t)
            r.setResidue(t, coeff.residue(t));
        for (std::size_t t = 0; t < add_idx.size(); ++t)
            r.setResidue(src_idx.size() + t, out[t]);
        r.toNtt();
        return r;
    };

    Ciphertext r;
    r.c0 = raise(ct.c0);
    r.c1 = raise(ct.c1);
    r.scale = ct.scale;
    const std::size_t ls = src_idx.size();
    const std::size_t ld = add_idx.size();
    ctx_.ops().ntts += 2 * (ls + target_level);
    // The change-RNS-base itself: per polynomial, one Shoup multiply
    // per source tower plus an ls-term MAC row per raised tower.
    ctx_.ops().polyMults += 2 * (ls + ls * ld);
    ctx_.ops().polyAdds += 2 * (ls * ld);
    return r;
}

} // namespace cl

/**
 * @file
 * Functional CKKS bootstrapping — the procedure that makes FHE
 * computation unbounded (Sec 2.3, Fig 2), and the computation the
 * paper's deep benchmarks revolve around.
 *
 * Pipeline (the packed algorithm of [11, 14, 53] that Sec 6 tunes):
 *
 *  1. ModRaise: lift the exhausted ciphertext to the top of the
 *     modulus chain. Decryption becomes m + q0*k for a small integer
 *     polynomial k (bounded by the secret's Hamming weight).
 *  2. CoeffToSlot: homomorphically apply the inverse canonical
 *     embedding so the coefficients of m + q0*k appear in slots
 *     (one BSGS linear transform; its matrix is derived numerically
 *     from the encoder's own special FFT, so it matches the slot
 *     ordering by construction).
 *  3. EvalMod: remove the q0*k term by evaluating
 *     (1/2pi) sin(2pi x / q0) via a Chebyshev polynomial, using a
 *     depth-logarithmic Paterson-Stockmeyer evaluation in the
 *     Chebyshev basis.
 *  4. SlotToCoeff: apply the forward embedding to return the cleaned
 *     coefficients to their places.
 *
 * Functional at small N (the mathematics is size-generic); the
 * accelerator-side cost of the same pipeline is modeled by
 * HomBuilder::bootstrap for the full-scale benchmarks.
 */

#ifndef CL_CKKS_BOOTSTRAP_H
#define CL_CKKS_BOOTSTRAP_H

#include <atomic>
#include <functional>
#include <map>
#include <mutex>
#include <vector>

#include "ckks/encryptor.h"
#include "ckks/evaluator.h"

namespace cl {

/**
 * How the BSGS linear transforms execute:
 *
 *  - Naive: every baby-step rotation is an independent keyswitch
 *    (digit lift + mod-up + inner product + mod-down per rotation) —
 *    the pre-hoisting behavior, kept as the correctness and
 *    performance baseline.
 *  - HoistedEager: one shared digit decompose for all baby rotations;
 *    each rotation still mods down immediately. Bit-identical to
 *    Naive (a single rotation computes exactly these stages).
 *  - HoistedLazy: shared decompose plus lazy accumulation — the
 *    per-rotation inner products stay in the extended basis and each
 *    giant step performs a single mod-down per ciphertext component.
 *    Same message, different (smaller) rounding noise: the mod-down's
 *    base-conversion rounding is applied once per giant step instead
 *    of once per rotation, so the output is not bit-identical to
 *    Naive (see DESIGN.md §Hoisted keyswitching).
 */
enum class LinearTransformMode
{
    Naive,
    HoistedEager,
    HoistedLazy,
};

struct BootstrapParams
{
    /** Range bound K: EvalMod handles |m + q0 k| < K*q0. Requires a
     *  sparse secret with Hamming weight <= ~2(K-1). */
    unsigned k = 16;
    /** Chebyshev degree of the sine approximation. */
    unsigned chebDegree = 159;
    /** Baby-step count for the polynomial evaluation (power of 2). */
    unsigned babySteps = 16;
    /** BSGS execution strategy for CoeffToSlot/SlotToCoeff. */
    LinearTransformMode ltMode = LinearTransformMode::HoistedLazy;
    /**
     * Baby dimension n1 of the transform BSGS split (power of 2;
     * 0 = auto). Hoisted baby rotations cost only an inner product —
     * no digit lift, and under HoistedLazy no mod-down either — while
     * every giant step still pays a full keyswitch plus the deferred
     * mod-downs, so the hoisted modes want n1 well above the square
     * split sqrt(n) that minimizes plain rotation count. Auto picks
     * min(slots, 4*sqrt(slots)).
     */
    unsigned ltBabySteps = 0;
    /** Cache encoded diagonal plaintexts per (matrix, level). Off
     *  reproduces the historical re-encode-every-call behavior (the
     *  benchmark baseline). */
    bool cacheDiagonals = true;
};

class Bootstrapper
{
  public:
    /**
     * Precomputes the CoeffToSlot/SlotToCoeff matrices, the Chebyshev
     * coefficients, and all rotation/relinearization keys.
     */
    Bootstrapper(const CkksContext &ctx, const CkksEncoder &encoder,
                 KeyGenerator &keygen, BootstrapParams params = {});

    /**
     * Refresh an exhausted ciphertext: input at level >= 1, output at
     * a high level with the same (approximate) message.
     */
    Ciphertext bootstrap(const Ciphertext &ct) const;

    /** Levels the pipeline consumes from the top of the chain. */
    unsigned depthUsed() const { return depthUsed_; }

    /** The two BSGS linear transforms, exposed with an explicit
     *  execution mode for equivalence tests and benchmarks. */
    Ciphertext applyCoeffToSlot(const Ciphertext &ct,
                                LinearTransformMode mode) const;
    Ciphertext applySlotToCoeff(const Ciphertext &ct,
                                LinearTransformMode mode) const;

  private:
    using Matrix = std::vector<std::vector<Complex>>; // row-major n x n

    /**
     * Encoded diagonals of one transform matrix at one level, built
     * lazily on first use and reused across bootstrap() calls (the
     * matrices and the levels they are applied at never change).
     * ptData: NTT form over the data basis (multiplies ciphertexts);
     * ptExt: NTT form over Q_level ∪ P (multiplies lazy ext-basis
     * accumulators; only built for HoistedLazy).
     */
    struct DiagCache
    {
        std::vector<char> nonzero;
        std::vector<RnsPoly> ptData;
        std::vector<RnsPoly> ptExt;
        bool hasExt = false;
    };

    /** Homomorphic slot-linear transform by dense matrix M (BSGS).
     *  @p which identifies M for the diagonal cache (0 = CoeffToSlot,
     *  1 = SlotToCoeff). */
    Ciphertext linearTransform(const Ciphertext &ct, const Matrix &m,
                               int which,
                               LinearTransformMode mode) const;

    /** Diagonal plaintexts of matrix @p which at @p level (cached). */
    const DiagCache &diagonals(const Matrix &m, int which,
                               unsigned level, bool need_ext) const;

    /** Encode all (pre-rotated) diagonals of M at @p level. */
    DiagCache buildDiagonals(const Matrix &m, unsigned level,
                             bool need_ext) const;

    /** Rotation diagonal d of M, pre-rotated for giant step g. */
    std::vector<Complex> rotatedDiagonal(const Matrix &m,
                                         std::size_t d) const;

    /** Evaluate the Chebyshev-basis polynomial at ct (slots in
     *  [-1,1]); returns sum_j coeffs[j] T_j(ct). */
    Ciphertext evalChebyshev(const Ciphertext &u) const;

    /** Align a ciphertext to (level, scale), spending spare levels. */
    Ciphertext alignTo(const Ciphertext &ct, unsigned level,
                       double scale) const;

    /** Bring two ciphertexts to a common (level, scale) pair,
     *  spending a level of whichever operand can afford it. */
    void alignPair(Ciphertext &a, Ciphertext &b) const;

    Ciphertext mulConst(const Ciphertext &ct, Complex c) const;

    const CkksContext &ctx_;
    const CkksEncoder &encoder_;
    Evaluator eval_;
    BootstrapParams params_;

    Matrix coeffToSlot_; // inverse special FFT
    Matrix slotToCoeff_; // forward special FFT
    std::vector<double> chebCoeffs_;
    SwitchKey relin_;
    GaloisKeys galois_;
    unsigned ltN1_ = 0; // resolved transform baby dimension
    // bootstrap() is const and the task-graph runtime calls it from
    // many workers at once: the depth record is atomic (every call
    // stores the same value) and the lazily built diagonal cache is
    // mutex-guarded (map nodes are stable, so references handed out
    // under the lock stay valid after it is released).
    mutable std::atomic<unsigned> depthUsed_{0};
    mutable std::mutex diagMutex_;
    mutable std::map<std::pair<int, unsigned>, DiagCache> diagCache_;
};

} // namespace cl

#endif // CL_CKKS_BOOTSTRAP_H

/**
 * @file
 * Functional CKKS bootstrapping — the procedure that makes FHE
 * computation unbounded (Sec 2.3, Fig 2), and the computation the
 * paper's deep benchmarks revolve around.
 *
 * Pipeline (the packed algorithm of [11, 14, 53] that Sec 6 tunes):
 *
 *  1. ModRaise: lift the exhausted ciphertext to the top of the
 *     modulus chain. Decryption becomes m + q0*k for a small integer
 *     polynomial k (bounded by the secret's Hamming weight).
 *  2. CoeffToSlot: homomorphically apply the inverse canonical
 *     embedding so the coefficients of m + q0*k appear in slots
 *     (one BSGS linear transform; its matrix is derived numerically
 *     from the encoder's own special FFT, so it matches the slot
 *     ordering by construction).
 *  3. EvalMod: remove the q0*k term by evaluating
 *     (1/2pi) sin(2pi x / q0) via a Chebyshev polynomial, using a
 *     depth-logarithmic Paterson-Stockmeyer evaluation in the
 *     Chebyshev basis.
 *  4. SlotToCoeff: apply the forward embedding to return the cleaned
 *     coefficients to their places.
 *
 * Functional at small N (the mathematics is size-generic); the
 * accelerator-side cost of the same pipeline is modeled by
 * HomBuilder::bootstrap for the full-scale benchmarks.
 */

#ifndef CL_CKKS_BOOTSTRAP_H
#define CL_CKKS_BOOTSTRAP_H

#include <functional>
#include <vector>

#include "ckks/encryptor.h"
#include "ckks/evaluator.h"

namespace cl {

struct BootstrapParams
{
    /** Range bound K: EvalMod handles |m + q0 k| < K*q0. Requires a
     *  sparse secret with Hamming weight <= ~2(K-1). */
    unsigned k = 16;
    /** Chebyshev degree of the sine approximation. */
    unsigned chebDegree = 159;
    /** Baby-step count for the polynomial evaluation (power of 2). */
    unsigned babySteps = 16;
};

class Bootstrapper
{
  public:
    /**
     * Precomputes the CoeffToSlot/SlotToCoeff matrices, the Chebyshev
     * coefficients, and all rotation/relinearization keys.
     */
    Bootstrapper(const CkksContext &ctx, const CkksEncoder &encoder,
                 KeyGenerator &keygen, BootstrapParams params = {});

    /**
     * Refresh an exhausted ciphertext: input at level >= 1, output at
     * a high level with the same (approximate) message.
     */
    Ciphertext bootstrap(const Ciphertext &ct) const;

    /** Levels the pipeline consumes from the top of the chain. */
    unsigned depthUsed() const { return depthUsed_; }

  private:
    using Matrix = std::vector<std::vector<Complex>>; // row-major n x n

    /** Homomorphic slot-linear transform by dense matrix M (BSGS). */
    Ciphertext linearTransform(const Ciphertext &ct,
                               const Matrix &m) const;

    /** Evaluate the Chebyshev-basis polynomial at ct (slots in
     *  [-1,1]); returns sum_j coeffs[j] T_j(ct). */
    Ciphertext evalChebyshev(const Ciphertext &u) const;

    /** Align a ciphertext to (level, scale), spending spare levels. */
    Ciphertext alignTo(const Ciphertext &ct, unsigned level,
                       double scale) const;

    /** Bring two ciphertexts to a common (level, scale) pair,
     *  spending a level of whichever operand can afford it. */
    void alignPair(Ciphertext &a, Ciphertext &b) const;

    Ciphertext mulConst(const Ciphertext &ct, Complex c) const;

    const CkksContext &ctx_;
    const CkksEncoder &encoder_;
    Evaluator eval_;
    BootstrapParams params_;

    Matrix coeffToSlot_; // inverse special FFT
    Matrix slotToCoeff_; // forward special FFT
    std::vector<double> chebCoeffs_;
    SwitchKey relin_;
    GaloisKeys galois_;
    mutable unsigned depthUsed_ = 0;
};

} // namespace cl

#endif // CL_CKKS_BOOTSTRAP_H

#include "encryptor.h"

namespace cl {

namespace {

RnsPoly
sampleSmall(const CkksContext &ctx, const std::vector<unsigned> &idx,
            FastRng &rng, bool ternary)
{
    const std::size_t n = ctx.n();
    std::vector<int> coeff(n);
    for (auto &c : coeff)
        c = ternary ? rng.nextTernary() : rng.nextCbd();
    RnsPoly p(ctx.chain(), idx, false);
    for (std::size_t t = 0; t < p.towers(); ++t) {
        const u64 q = p.modulus(t);
        for (std::size_t i = 0; i < n; ++i)
            p.residue(t)[i] = reduceSigned(coeff[i], q);
    }
    p.toNtt();
    return p;
}

} // namespace

Encryptor::Encryptor(const CkksContext &ctx, const PublicKey &pk,
                     std::uint64_t seed)
    : ctx_(ctx), pk_(pk), rng_(seed)
{
}

Ciphertext
Encryptor::encrypt(const RnsPoly &plain, double scale) const
{
    RnsPoly m = plain;
    m.toNtt();
    const std::vector<unsigned> &idx = m.modIdx();
    // The public key lives at the top level; restrict it to the
    // plaintext's basis (a prefix of the data moduli).
    RnsPoly b = pk_.b.subset(idx);
    RnsPoly a = pk_.a.subset(idx);

    RnsPoly v = sampleSmall(ctx_, idx, rng_, true);
    RnsPoly e0 = sampleSmall(ctx_, idx, rng_, false);
    RnsPoly e1 = sampleSmall(ctx_, idx, rng_, false);

    Ciphertext ct;
    ct.c0 = b;
    ct.c0 *= v;
    ct.c0 += e0;
    ct.c0 += m;
    ct.c1 = a;
    ct.c1 *= v;
    ct.c1 += e1;
    ct.scale = scale;
    return ct;
}

Ciphertext
Encryptor::encryptValues(const CkksEncoder &encoder,
                         const std::vector<Complex> &values, double scale,
                         unsigned level) const
{
    return encrypt(encoder.encode(values, scale, level), scale);
}

Decryptor::Decryptor(const CkksContext &ctx, const SecretKey &sk)
    : ctx_(ctx), sk_(sk)
{
}

RnsPoly
Decryptor::decrypt(const Ciphertext &ct) const
{
    RnsPoly s = sk_.s.subset(ct.c0.modIdx());
    RnsPoly m = ct.c1;
    CL_ASSERT(m.isNtt(), "ciphertexts are kept in NTT form");
    m *= s;
    m += ct.c0;
    return m;
}

std::vector<Complex>
Decryptor::decryptValues(const CkksEncoder &encoder,
                         const Ciphertext &ct) const
{
    return encoder.decode(decrypt(ct), ct.scale);
}

} // namespace cl

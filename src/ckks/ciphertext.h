/**
 * @file
 * CKKS ciphertext: two ring elements (c0, c1) over the data basis at
 * the current level, decrypting as m ≈ c0 + c1·s. Tracks the exact
 * scale (which drifts slightly from 2^scaleBits because RNS primes
 * are not exact powers of two) so decode stays precise.
 */

#ifndef CL_CKKS_CIPHERTEXT_H
#define CL_CKKS_CIPHERTEXT_H

#include "poly/rnspoly.h"

namespace cl {

struct Ciphertext
{
    RnsPoly c0;
    RnsPoly c1;
    double scale = 0.0;

    /** Current level = number of live data towers. */
    unsigned
    level() const
    {
        return static_cast<unsigned>(c0.towers());
    }

    /** Ciphertext footprint in machine words (2 polys x towers x N). */
    std::size_t
    footprintWords() const
    {
        return c0.footprintWords() + c1.footprintWords();
    }
};

} // namespace cl

#endif // CL_CKKS_CIPHERTEXT_H

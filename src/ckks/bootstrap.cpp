#include "bootstrap.h"

#include <cmath>
#include <map>

namespace cl {

namespace {

/**
 * Chebyshev-basis division: rewrite p = sum b_j T_j as
 * p = q(u) * T_g(u) + r(u) using T_{a+g} = 2 T_a T_g - T_{|a-g|}.
 * Returns (q, r) coefficient vectors (also in the T basis).
 */
std::pair<std::vector<double>, std::vector<double>>
chebDivide(std::vector<double> b, unsigned g)
{
    const std::size_t d = b.size() - 1;
    CL_ASSERT(d >= g, "division degree too small");
    std::vector<double> q(d - g + 1, 0.0);
    for (std::size_t j = d; j > g; --j) {
        if (b[j] == 0.0)
            continue;
        q[j - g] += 2.0 * b[j];
        const std::size_t idx = j >= 2 * g ? j - 2 * g : 2 * g - j;
        b[idx] -= b[j];
        b[j] = 0.0;
    }
    // T_g * T_0 = T_g.
    q[0] += b[g];
    b[g] = 0.0;
    b.resize(g);
    return {std::move(q), std::move(b)};
}

/** Chebyshev coefficients of f on [-1, 1] by cosine projection. */
std::vector<double>
chebyshevFit(const std::function<double(double)> &f, unsigned degree)
{
    const unsigned m = 4096;
    std::vector<double> c(degree + 1, 0.0);
    for (unsigned k = 0; k < m; ++k) {
        const double theta = M_PI * (k + 0.5) / m;
        const double fv = f(std::cos(theta));
        for (unsigned j = 0; j <= degree; ++j)
            c[j] += fv * std::cos(j * theta);
    }
    for (unsigned j = 0; j <= degree; ++j)
        c[j] *= (j == 0 ? 1.0 : 2.0) / m;
    return c;
}

} // namespace

Bootstrapper::Bootstrapper(const CkksContext &ctx,
                           const CkksEncoder &encoder, KeyGenerator &keygen,
                           BootstrapParams params)
    : ctx_(ctx), encoder_(encoder), eval_(ctx), params_(params)
{
    const std::size_t n = ctx.slots();
    CL_ASSERT(isPowerOfTwo(params_.babySteps), "babySteps power of two");
    CL_ASSERT(ctx.params().secretHamming > 0 &&
                  ctx.params().secretHamming <= 2 * (params_.k - 2),
              "bootstrapping needs a sparse secret with ||s||_1 <= "
              "2(K-2); got h=",
              ctx.params().secretHamming, " for K=", params_.k);

    // --- CoeffToSlot / SlotToCoeff matrices, probed directly from
    //     the encoder's special FFT so slot ordering matches. ---
    coeffToSlot_.assign(n, std::vector<Complex>(n));
    slotToCoeff_.assign(n, std::vector<Complex>(n));
    for (std::size_t k = 0; k < n; ++k) {
        std::vector<Complex> e(n, Complex(0, 0));
        e[k] = Complex(1, 0);
        auto inv = e;
        encoder_.fftSpecialInv(inv); // column k of the inverse map
        auto fwd = e;
        encoder_.fftSpecial(fwd); // column k of the forward map
        for (std::size_t j = 0; j < n; ++j) {
            coeffToSlot_[j][k] = inv[j];
            slotToCoeff_[j][k] = fwd[j];
        }
    }

    // --- EvalMod polynomial: (1/2pi) sin(2 pi K u) on [-1, 1]. ---
    const double a = 2.0 * M_PI * params_.k;
    chebCoeffs_ = chebyshevFit(
        [a](double u) { return std::sin(a * u) / (2.0 * M_PI); },
        params_.chebDegree);

    // --- Keys: relinearization, conjugation, BSGS rotations. ---
    relin_ = keygen.genRelinKey();
    ltN1_ = params_.ltBabySteps;
    if (ltN1_ == 0) {
        // Auto split: 4x wider than the square root. Hoisted baby
        // rotations are cheap (no digit lift; under HoistedLazy no
        // mod-down either), so trading giant steps for baby steps
        // cuts the expensive full keyswitches and deferred mod-downs.
        unsigned sq = 1;
        while (static_cast<std::size_t>(sq) * sq < n)
            sq <<= 1;
        ltN1_ = std::min<unsigned>(static_cast<unsigned>(n), 4 * sq);
    }
    CL_ASSERT(isPowerOfTwo(ltN1_), "ltBabySteps power of two");
    const unsigned n1 = std::min<unsigned>(ltN1_, static_cast<unsigned>(n));
    ltN1_ = n1;
    const unsigned n2 =
        static_cast<unsigned>(ceilDiv(n, n1));
    std::vector<int> steps;
    for (unsigned b = 1; b < n1; ++b)
        steps.push_back(static_cast<int>(b));
    for (unsigned g = 1; g < n2; ++g)
        steps.push_back(static_cast<int>(g * n1));
    galois_ = keygen.genRotationKeys(steps, /*conjugate=*/true);
}

Ciphertext
Bootstrapper::alignTo(const Ciphertext &ct, unsigned level,
                      double scale) const
{
    Ciphertext r = ct;
    const double rel = std::abs(r.scale - scale) / scale;
    if (rel > 1e-9) {
        CL_ASSERT(r.level() > level,
                  "no spare level for scale alignment at level ",
                  r.level());
        r = eval_.mulScalar(r, scale / r.scale);
        eval_.rescale(r);
        r.scale = scale; // absorb the 2^-50 rounding mismatch
    }
    eval_.levelDrop(r, level);
    return r;
}

void
Bootstrapper::alignPair(Ciphertext &a, Ciphertext &b) const
{
    if (std::abs(a.scale - b.scale) / b.scale > 1e-9) {
        // Correct the operand with more headroom (higher level).
        Ciphertext &c = a.level() >= b.level() ? a : b;
        Ciphertext &o = a.level() >= b.level() ? b : a;
        c = eval_.mulScalar(c, o.scale / c.scale);
        eval_.rescale(c);
        c.scale = o.scale;
    }
    const unsigned lvl = std::min(a.level(), b.level());
    eval_.levelDrop(a, lvl);
    eval_.levelDrop(b, lvl);
}

Ciphertext
Bootstrapper::mulConst(const Ciphertext &ct, Complex c) const
{
    const std::size_t n = ctx_.slots();
    const double p_scale =
        static_cast<double>(ct.c0.modulus(ct.level() - 1));
    std::vector<Complex> v(n, c);
    RnsPoly pt = encoder_.encode(v, p_scale, ct.level());
    Ciphertext r = eval_.mulPlain(ct, pt, p_scale);
    eval_.rescale(r);
    return r;
}

std::vector<Complex>
Bootstrapper::rotatedDiagonal(const Matrix &m, std::size_t d) const
{
    const std::size_t n = ctx_.slots();
    const unsigned n1 = ltN1_;
    // Diagonal d of M, pre-rotated by -g*n1 for the BSGS giant-step
    // rotation that follows (g = d / n1).
    const std::size_t rot = (d / n1) * n1 % n;
    std::vector<Complex> diag(n);
    for (std::size_t j = 0; j < n; ++j) {
        const std::size_t jj = (j + n - rot) % n;
        diag[j] = m[jj][(jj + d) % n];
    }
    return diag;
}

Bootstrapper::DiagCache
Bootstrapper::buildDiagonals(const Matrix &m, unsigned level,
                             bool need_ext) const
{
    const std::size_t n = ctx_.slots();
    const double p_scale =
        static_cast<double>(ctx_.chain().modulus(level - 1));
    DiagCache dc;
    dc.nonzero.assign(n, 0);
    dc.ptData.resize(n);
    if (need_ext)
        dc.ptExt.resize(n);
    dc.hasExt = need_ext;

    // Extended basis Q_level ∪ P, matching Evaluator::decompose for
    // the context-default digit size every hint here is built with.
    std::vector<unsigned> ext_idx;
    if (need_ext) {
        ext_idx = ctx_.dataIdx(level);
        for (unsigned i : ctx_.specialIdx())
            ext_idx.push_back(i);
    }

    for (std::size_t d = 0; d < n; ++d) {
        const std::vector<Complex> diag = rotatedDiagonal(m, d);
        bool nonzero = false;
        for (const Complex &c : diag)
            nonzero |= std::abs(c) > 1e-14;
        if (!nonzero)
            continue;
        dc.nonzero[d] = 1;
        RnsPoly pt = encoder_.encode(diag, p_scale, level);
        pt.toNtt();
        ctx_.ops().ntts += pt.towers();
        dc.ptData[d] = std::move(pt);
        if (need_ext) {
            RnsPoly pe = encoder_.encode(diag, p_scale, ext_idx);
            pe.toNtt();
            ctx_.ops().ntts += pe.towers();
            dc.ptExt[d] = std::move(pe);
        }
    }
    return dc;
}

const Bootstrapper::DiagCache &
Bootstrapper::diagonals(const Matrix &m, int which, unsigned level,
                        bool need_ext) const
{
    // Serializes concurrent first builds of the same (matrix, level)
    // entry; after warmup every call is a map lookup under the lock.
    // Returned references stay valid outside the lock because map
    // nodes are stable. The one rebuild case — an entry built without
    // ext-basis plaintexts upgraded by a need_ext caller — replaces
    // the mapped value, so concurrent transforms must agree on the
    // execution mode (bootstrap() always uses params_.ltMode; mixing
    // modes concurrently via applyCoeffToSlot is a test-only pattern
    // and tests do it serially).
    std::lock_guard<std::mutex> lock(diagMutex_);
    const auto key = std::make_pair(which, level);
    auto it = diagCache_.find(key);
    if (it == diagCache_.end() || (need_ext && !it->second.hasExt)) {
        it = diagCache_
                 .insert_or_assign(key, buildDiagonals(m, level, need_ext))
                 .first;
    }
    return it->second;
}

Ciphertext
Bootstrapper::linearTransform(const Ciphertext &ct, const Matrix &m,
                              int which, LinearTransformMode mode) const
{
    const std::size_t n = ctx_.slots();
    const unsigned n1 = ltN1_;
    const unsigned n2 = static_cast<unsigned>(ceilDiv(n, n1));
    const unsigned level = ct.level();
    const double p_scale =
        static_cast<double>(ct.c0.modulus(level - 1));
    const bool lazy = mode == LinearTransformMode::HoistedLazy;
    OpCounter &ops = ctx_.ops();

    DiagCache local;
    const DiagCache *dc;
    if (params_.cacheDiagonals) {
        dc = &diagonals(m, which, level, lazy);
    } else {
        local = buildDiagonals(m, level, lazy);
        dc = &local;
    }

    // Which baby offsets carry at least one nonzero diagonal.
    std::vector<char> baby_used(n1, 0);
    for (std::size_t d = 0; d < n; ++d) {
        if (dc->nonzero[d])
            baby_used[d % n1] = 1;
    }
    bool any_rotated_baby = false;
    for (unsigned b = 1; b < n1; ++b)
        any_rotated_baby |= baby_used[b];

    // Hoisted modes: lift the digits of c1 once; every baby rotation
    // reuses them. All hints share the context-default digit size.
    KeySwitchDigits digits;
    if (mode != LinearTransformMode::Naive && any_rotated_baby) {
        const unsigned alpha_ks = galois_.keys.begin()->second.alphaKs;
        digits = eval_.decompose(ct.c1, alpha_ks);
    }

    // Per-baby precomputation. Naive/HoistedEager materialize rotated
    // ciphertexts; HoistedLazy keeps the keyswitch inner products in
    // the extended basis (k0/k1, still carrying the P factor) plus the
    // exact rotated c0, deferring every mod-down to the giant steps.
    std::vector<Ciphertext> baby;
    std::vector<RnsPoly> k0(n1), k1(n1), c0rot(n1);
    if (!lazy) {
        baby.resize(n1);
        baby[0] = ct;
    }
    for (unsigned b = 1; b < n1; ++b) {
        if (!baby_used[b])
            continue;
        const std::size_t gal =
            eval_.galoisFromSteps(static_cast<int>(b));
        switch (mode) {
        case LinearTransformMode::Naive:
            baby[b] = eval_.rotate(ct, static_cast<int>(b), galois_);
            break;
        case LinearTransformMode::HoistedEager:
            baby[b] = eval_.rotateByGaloisHoisted(ct, gal,
                                                  galois_.at(gal), digits);
            break;
        case LinearTransformMode::HoistedLazy: {
            // Digit rotation fused into the inner product (tower-tiled
            // under CL_FUSE; composed sequence otherwise).
            auto ip = eval_.innerProduct(digits, galois_.at(gal), gal);
            k0[b] = std::move(ip.first);
            k1[b] = std::move(ip.second);
            c0rot[b] = ct.c0.automorphism(gal);
            ops.automorphisms += level;
            break;
        }
        }
    }

    Ciphertext acc;
    bool first = true;
    for (unsigned g = 0; g < n2; ++g) {
        Ciphertext inner;
        bool inner_first = true;
        if (!lazy) {
            for (unsigned b = 0; b < n1; ++b) {
                const std::size_t d = static_cast<std::size_t>(g) * n1 + b;
                if (d >= n)
                    break;
                if (!dc->nonzero[d])
                    continue;
                Ciphertext term =
                    eval_.mulPlain(baby[b], dc->ptData[d], p_scale);
                inner = inner_first ? term : eval_.add(inner, term);
                inner_first = false;
            }
        } else {
            // Lazy accumulation: data-basis MACs for the exact parts
            // (c0 rotations, the unrotated b = 0 term) and ext-basis
            // MACs for the keyswitch products; one mod-down per
            // component per giant step instead of one per rotation.
            RnsPoly ext0, ext1;
            bool ext_first = true;
            for (unsigned b = 0; b < n1; ++b) {
                const std::size_t d = static_cast<std::size_t>(g) * n1 + b;
                if (d >= n)
                    break;
                if (!dc->nonzero[d])
                    continue;
                if (inner_first) {
                    inner.c0 =
                        RnsPoly(ctx_.chain(), ctx_.dataIdx(level), true);
                    inner.c1 =
                        RnsPoly(ctx_.chain(), ctx_.dataIdx(level), true);
                    inner_first = false;
                }
                if (b == 0) {
                    inner.c0.addMulAssign(dc->ptData[d], ct.c0);
                    inner.c1.addMulAssign(dc->ptData[d], ct.c1);
                    ops.polyMults += 2 * level;
                    ops.polyAdds += 2 * level;
                } else {
                    if (ext_first) {
                        ext0 = RnsPoly(ctx_.chain(), digits.extIdx, true);
                        ext1 = RnsPoly(ctx_.chain(), digits.extIdx, true);
                        ext_first = false;
                    }
                    inner.c0.addMulAssign(dc->ptData[d], c0rot[b]);
                    ext0.addMulAssign(dc->ptExt[d], k0[b]);
                    ext1.addMulAssign(dc->ptExt[d], k1[b]);
                    ops.polyMults += level + 2 * digits.extIdx.size();
                    ops.polyAdds += level + 2 * digits.extIdx.size();
                }
            }
            if (!inner_first) {
                if (!ext_first) {
                    inner.c0 += eval_.modDown(ext0);
                    inner.c1 += eval_.modDown(ext1);
                    ops.polyAdds += 2 * level;
                }
                inner.scale = ct.scale * p_scale;
            }
        }
        if (inner_first)
            continue;
        if (g > 0) {
            inner = eval_.rotate(
                inner, static_cast<int>(static_cast<std::size_t>(g) * n1),
                galois_);
        }
        acc = first ? inner : eval_.add(acc, inner);
        first = false;
    }
    CL_ASSERT(!first, "linear transform with all-zero matrix");
    eval_.rescale(acc);
    return acc;
}

Ciphertext
Bootstrapper::applyCoeffToSlot(const Ciphertext &ct,
                               LinearTransformMode mode) const
{
    return linearTransform(ct, coeffToSlot_, 0, mode);
}

Ciphertext
Bootstrapper::applySlotToCoeff(const Ciphertext &ct,
                               LinearTransformMode mode) const
{
    return linearTransform(ct, slotToCoeff_, 1, mode);
}

Ciphertext
Bootstrapper::evalChebyshev(const Ciphertext &u) const
{
    // Chebyshev ciphertexts T_j(u), built with the depth-logarithmic
    // recurrence T_{a+b} = 2 T_a T_b - T_{|a-b|}.
    std::map<unsigned, Ciphertext> cache;
    cache.emplace(1, u);

    std::function<const Ciphertext &(unsigned)> get_t =
        [&](unsigned j) -> const Ciphertext & {
        auto it = cache.find(j);
        if (it != cache.end())
            return it->second;
        const unsigned a = (j + 1) / 2;
        const unsigned b = j / 2;
        Ciphertext ta = get_t(a);
        Ciphertext tb = get_t(b);
        const unsigned lvl = std::min(ta.level(), tb.level());
        eval_.levelDrop(ta, lvl);
        eval_.levelDrop(tb, lvl);
        Ciphertext prod = eval_.multiply(ta, tb, relin_);
        eval_.rescale(prod);
        prod = eval_.add(prod, prod); // 2 T_a T_b
        if (a == b) {
            // T_{2a} = 2 T_a^2 - 1.
            std::vector<Complex> one(ctx_.slots(), Complex(1, 0));
            prod = eval_.subPlain(
                prod, encoder_.encode(one, prod.scale, prod.level()));
        } else {
            // a - b == 1: subtract T_1 aligned to the product.
            Ciphertext t1 = cache.at(1);
            alignPair(prod, t1);
            prod = eval_.sub(prod, t1);
        }
        return cache.emplace(j, std::move(prod)).first->second;
    };

    const unsigned m = params_.babySteps;

    // Multiply a ciphertext's slots by a real factor while declaring
    // an explicit output scale — one integer scalar multiply, no
    // rescale, no level consumed. Used to give every term of a
    // linear combination an identical (level, scale) pair exactly.
    auto mul_scalar_raw = [&](const Ciphertext &ct, double factor,
                              double target_scale) {
        Ciphertext r = ct;
        const double w_real = factor * target_scale / ct.scale;
        const auto w = static_cast<long long>(std::llround(w_real));
        CL_ASSERT(std::abs(w_real) < 9e18, "scalar overflow");
        for (std::size_t t = 0; t < r.c0.towers(); ++t) {
            const u64 q = r.c0.modulus(t);
            const u64 wq = reduceSigned(w, q);
            r.c0.mulScalarTower(t, wq);
            r.c1.mulScalarTower(t, wq);
        }
        r.scale = target_scale;
        return r;
    };

    std::function<Ciphertext(const std::vector<double> &)> eval_rec =
        [&](const std::vector<double> &b) -> Ciphertext {
        const std::size_t deg = b.size() - 1;
        if (deg < m) {
            // Direct combination sum_j b_j T_j: every term is raised
            // to a shared target scale with one raw scalar multiply,
            // summed, and rescaled once.
            std::vector<unsigned> idx;
            for (std::size_t j = 1; j <= deg; ++j) {
                if (std::abs(b[j]) > 1e-13)
                    idx.push_back(static_cast<unsigned>(j));
            }
            if (idx.empty()) {
                // Constant block: zero out a copy of u, add b[0].
                Ciphertext z = mul_scalar_raw(u, 0.0, u.scale);
                std::vector<Complex> c0(ctx_.slots(),
                                        Complex(b[0], 0));
                return eval_.addPlain(
                    z, encoder_.encode(c0, z.scale, z.level()));
            }
            unsigned lvl = u.level();
            for (unsigned j : idx)
                lvl = std::min(lvl, get_t(j).level());
            const double q_last = static_cast<double>(
                ctx_.chain().modulus(lvl - 1));
            const double ref = get_t(idx[0]).scale;
            const double target = ref * q_last;

            Ciphertext acc;
            bool first = true;
            for (unsigned j : idx) {
                Ciphertext t = get_t(j);
                eval_.levelDrop(t, lvl);
                t = mul_scalar_raw(t, b[j], target);
                acc = first ? std::move(t) : eval_.add(acc, t);
                first = false;
            }
            eval_.rescale(acc); // target / q_last == ref
            if (std::abs(b[0]) > 1e-13) {
                std::vector<Complex> c0(ctx_.slots(), Complex(b[0], 0));
                acc = eval_.addPlain(
                    acc, encoder_.encode(c0, acc.scale, acc.level()));
            }
            return acc;
        }
        unsigned g = m;
        while (2 * g <= deg)
            g *= 2;
        auto [q, r] = chebDivide(b, g);
        Ciphertext cq = eval_rec(q);
        Ciphertext cr = eval_rec(r);
        Ciphertext tg = get_t(g);
        const unsigned lvl = std::min(cq.level(), tg.level());
        eval_.levelDrop(cq, lvl);
        eval_.levelDrop(tg, lvl);
        Ciphertext prod = eval_.multiply(cq, tg, relin_);
        eval_.rescale(prod);
        alignPair(prod, cr);
        return eval_.add(prod, cr);
    };

    return eval_rec(chebCoeffs_);
}

Ciphertext
Bootstrapper::bootstrap(const Ciphertext &ct) const
{
    CL_ASSERT(ct.level() >= 1, "nothing to bootstrap");
    const unsigned l_top = ctx_.l();
    CL_ASSERT(ct.level() < l_top, "ciphertext already at the top");
    const double d_app = ct.scale;
    const double q0 = static_cast<double>(ctx_.chain().modulus(0));

    // 1. ModRaise: Dec becomes m + q0*k over the full chain.
    Ciphertext raised = eval_.modRaise(ct, l_top);

    // 2. CoeffToSlot, then split the packed real/imag coefficient
    //    halves with a conjugation.
    Ciphertext t =
        linearTransform(raised, coeffToSlot_, 0, params_.ltMode);
    Ciphertext tc = eval_.conjugate(t, galois_);
    Ciphertext u = eval_.add(t, tc);        // slots: 2*x1 (x = m+q0 k)
    Ciphertext vr = eval_.sub(t, tc);       // slots: 2i*x2
    Ciphertext v = mulConst(vr, Complex(0, -1)); // slots: 2*x2
    eval_.levelDrop(u, v.level());

    // Reinterpret scales so slots read as x/(K*q0) in [-1, 1].
    const double s_norm = 2.0 * params_.k * q0 * (t.scale / d_app);
    u.scale = s_norm;
    v.scale = s_norm;

    // 3. EvalMod on both halves: slots become ~ m/q0.
    Ciphertext eu = evalChebyshev(u);
    Ciphertext ev = evalChebyshev(v);

    // 4. Recombine w = eu + i*ev, then SlotToCoeff.
    Ciphertext evi = mulConst(ev, Complex(0, 1));
    alignPair(eu, evi);
    Ciphertext w = eval_.add(eu, evi);
    Ciphertext out = linearTransform(w, slotToCoeff_, 1, params_.ltMode);

    // Slots now hold z(m)/q0; re-declare the scale so they read as
    // z(m)/d_app, the original message.
    out.scale = out.scale * d_app / q0;
    depthUsed_ = l_top - out.level();
    return out;
}

} // namespace cl

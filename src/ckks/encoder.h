/**
 * @file
 * CKKS encoder: packs a vector of N/2 complex fixed-point values into
 * a ring element via the canonical embedding (Sec 2.2, "pack"), and
 * unpacks it back. Uses the special FFT over the 5^j orbit so that
 * ring automorphisms x -> x^(5^r) induce cyclic slot rotations.
 */

#ifndef CL_CKKS_ENCODER_H
#define CL_CKKS_ENCODER_H

#include <complex>
#include <vector>

#include "ckks/context.h"

namespace cl {

using Complex = std::complex<double>;

class CkksEncoder
{
  public:
    explicit CkksEncoder(const CkksContext &ctx);

    std::size_t slots() const { return slots_; }

    /**
     * Encode @p values (up to N/2 complex numbers; shorter vectors are
     * zero-padded) into a plaintext polynomial over the first
     * @p l_cur data moduli at the given scale.
     */
    RnsPoly encode(const std::vector<Complex> &values, double scale,
                   unsigned l_cur) const;

    /**
     * Encode over an explicit set of chain moduli instead of a data
     * prefix — used for plaintexts that multiply extended-basis
     * (Q_l ∪ P) keyswitch accumulators in the lazy-BSGS path. The
     * residues over any shared modulus match the l_cur overload
     * exactly (same rounding, same embedding).
     */
    RnsPoly encode(const std::vector<Complex> &values, double scale,
                   const std::vector<unsigned> &mod_idx) const;

    /** Decode a plaintext polynomial back to N/2 complex values. */
    std::vector<Complex> decode(const RnsPoly &plain, double scale) const;

    /** Forward special FFT (coefficient -> slot direction). */
    void fftSpecial(std::vector<Complex> &vals) const;

    /** Inverse special FFT (slot -> coefficient direction). */
    void fftSpecialInv(std::vector<Complex> &vals) const;

    /**
     * Encode raw (already real) polynomial coefficients: each value is
     * rounded and embedded mod every modulus. Used by tests and by
     * bootstrapping's coefficient-domain plaintexts.
     */
    RnsPoly encodeCoeffs(const std::vector<double> &coeffs, double scale,
                         unsigned l_cur) const;

    /** Inverse of encodeCoeffs. */
    std::vector<double> decodeCoeffs(const RnsPoly &plain,
                                     double scale) const;

  private:
    const CkksContext &ctx_;
    std::size_t slots_;
    std::size_t m_; // 2N, order of the root of unity
    std::vector<Complex> ksiPows_;        // e^{2 pi i j / m}, j in [0, m]
    std::vector<std::size_t> rotGroup_;   // 5^j mod m, j in [0, slots)
};

} // namespace cl

#endif // CL_CKKS_ENCODER_H

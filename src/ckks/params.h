/**
 * @file
 * CKKS parameter sets.
 *
 * Parameters follow the paper's conventions: ring degree N, a chain of
 * L data moduli ("multiplicative budget", Sec 2.3), and alpha special
 * moduli used by boosted keyswitching to extend the basis (Sec 3).
 * The number of keyswitching digits at level l is ceil(l / alpha);
 * alpha = L gives the paper's 1-digit variant (2x expansion), smaller
 * alpha gives the t-digit variants of Sec 3.1.
 */

#ifndef CL_CKKS_PARAMS_H
#define CL_CKKS_PARAMS_H

#include <cstdint>
#include <vector>

#include "rns/modarith.h"

namespace cl {

struct CkksParams
{
    unsigned logN = 12;          ///< Ring degree exponent.
    unsigned l = 4;              ///< Data moduli count (mult. budget L).
    unsigned alpha = 4;          ///< Special moduli count (digit size).
    unsigned firstModBits = 50;  ///< Width of q_0 (absorbs final scale).
    unsigned scaleBits = 40;     ///< Width of rescaling primes & scale.
    unsigned specialBits = 50;   ///< Width of special primes.
    std::uint64_t seed = 1;      ///< Master seed for key material.
    unsigned secretHamming = 0;  ///< 0 = dense ternary secret; else a
                                 ///  sparse secret with this Hamming
                                 ///  weight (keeps the mod-raise k
                                 ///  coefficient small for EvalMod).

    std::size_t n() const { return std::size_t{1} << logN; }
    std::size_t slots() const { return n() / 2; }
    double scale() const { return static_cast<double>(1ULL << scaleBits); }

    /** Number of keyswitch digits when l_cur towers are live. */
    unsigned
    digits(unsigned l_cur) const
    {
        return static_cast<unsigned>(ceilDiv(l_cur, alpha));
    }

    /**
     * Small test-friendly parameter set: N=2^12, L=4 levels.
     * Functional correctness at these parameters implies correctness
     * of the same code at N=64K (the math is size-generic).
     */
    static CkksParams
    testSmall()
    {
        CkksParams p;
        p.logN = 12;
        p.l = 4;
        p.alpha = 4;
        return p;
    }

    /** Deeper functional set used by bootstrapping tests. */
    static CkksParams
    testDeep(unsigned logn = 13, unsigned l = 16, unsigned alpha = 4)
    {
        CkksParams p;
        p.logN = logn;
        p.l = l;
        p.alpha = alpha;
        p.firstModBits = 60;
        p.scaleBits = 40;
        p.specialBits = 60;
        return p;
    }

    /**
     * Hardware-width parameter set: 28-bit moduli as in CraterLake's
     * datapath (Sec 5.5). Precision is limited (scale 2^27), so this
     * set is used for plumbing tests and cost models, not precision-
     * sensitive workloads.
     */
    static CkksParams
    hardwareWidth(unsigned logn = 12, unsigned l = 6, unsigned alpha = 6)
    {
        CkksParams p;
        p.logN = logn;
        p.l = l;
        p.alpha = alpha;
        p.firstModBits = 28;
        p.scaleBits = 27;
        p.specialBits = 28;
        return p;
    }
};

} // namespace cl

#endif // CL_CKKS_PARAMS_H

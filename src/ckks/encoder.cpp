#include "encoder.h"

#include <cmath>

#include "util/biguint.h"
#include "util/threadpool.h"

namespace cl {

namespace {

void
arrayBitReverse(std::vector<Complex> &vals)
{
    const std::size_t n = vals.size();
    for (std::size_t i = 1, j = 0; i < n; ++i) {
        std::size_t bit = n >> 1;
        for (; j >= bit; bit >>= 1)
            j -= bit;
        j += bit;
        if (i < j)
            std::swap(vals[i], vals[j]);
    }
}

/** Round a real to an integer and embed it mod q. */
u64
scaleToMod(double v, u64 q)
{
    const double r = std::nearbyint(v);
    if (std::abs(r) < 9.0e18) {
        // Fits a signed 64-bit word: reduce directly.
        auto s = static_cast<long long>(r);
        return reduceSigned(s, q);
    }
    // Coefficients at large scales (e.g. plaintexts encoded at a
    // post-multiply 2^80 scale) exceed the 64-bit range, but the
    // rounded double is still an *exact* integer m·2^e with a 53-bit
    // mantissa — reduce that product mod q exactly. The straight
    // long-long cast here used to overflow silently, mis-encoding
    // every wide-scale plaintext.
    int e = 0;
    const double m = std::frexp(std::abs(r), &e); // |r| = m·2^e
    const auto mant = static_cast<u64>(std::ldexp(m, 53));
    CL_ASSERT(e >= 53, "wide-scale encode: unexpected exponent ", e);
    u64 res = mulMod(mant % q,
                     powMod(2, static_cast<u64>(e - 53), q), q);
    if (r < 0)
        res = res == 0 ? 0 : q - res;
    return res;
}

} // namespace

CkksEncoder::CkksEncoder(const CkksContext &ctx)
    : ctx_(ctx), slots_(ctx.slots()), m_(2 * ctx.n())
{
    ksiPows_.resize(m_ + 1);
    for (std::size_t j = 0; j <= m_; ++j) {
        const double theta = 2.0 * M_PI * static_cast<double>(j) /
                             static_cast<double>(m_);
        ksiPows_[j] = Complex(std::cos(theta), std::sin(theta));
    }
    rotGroup_.resize(slots_);
    std::size_t power = 1;
    for (std::size_t j = 0; j < slots_; ++j) {
        rotGroup_[j] = power;
        power = (power * 5) % m_;
    }
}

void
CkksEncoder::fftSpecial(std::vector<Complex> &vals) const
{
    const std::size_t size = vals.size();
    CL_ASSERT(isPowerOfTwo(size) && size <= slots_);
    arrayBitReverse(vals);
    for (std::size_t len = 2; len <= size; len <<= 1) {
        const std::size_t lenh = len >> 1;
        const std::size_t lenq = len << 2;
        const std::size_t gap = m_ / lenq;
        for (std::size_t i = 0; i < size; i += len) {
            for (std::size_t j = 0; j < lenh; ++j) {
                const std::size_t idx = (rotGroup_[j] % lenq) * gap;
                const Complex u = vals[i + j];
                const Complex v = vals[i + j + lenh] * ksiPows_[idx];
                vals[i + j] = u + v;
                vals[i + j + lenh] = u - v;
            }
        }
    }
}

void
CkksEncoder::fftSpecialInv(std::vector<Complex> &vals) const
{
    const std::size_t size = vals.size();
    CL_ASSERT(isPowerOfTwo(size) && size <= slots_);
    for (std::size_t len = size; len >= 2; len >>= 1) {
        const std::size_t lenh = len >> 1;
        const std::size_t lenq = len << 2;
        const std::size_t gap = m_ / lenq;
        for (std::size_t i = 0; i < size; i += len) {
            for (std::size_t j = 0; j < lenh; ++j) {
                const std::size_t idx =
                    (lenq - (rotGroup_[j] % lenq)) * gap;
                const Complex u = vals[i + j] + vals[i + j + lenh];
                const Complex v =
                    (vals[i + j] - vals[i + j + lenh]) * ksiPows_[idx];
                vals[i + j] = u;
                vals[i + j + lenh] = v;
            }
        }
    }
    arrayBitReverse(vals);
    const double inv = 1.0 / static_cast<double>(size);
    for (auto &v : vals)
        v *= inv;
}

RnsPoly
CkksEncoder::encode(const std::vector<Complex> &values, double scale,
                    unsigned l_cur) const
{
    return encode(values, scale, ctx_.dataIdx(l_cur));
}

RnsPoly
CkksEncoder::encode(const std::vector<Complex> &values, double scale,
                    const std::vector<unsigned> &mod_idx) const
{
    CL_ASSERT(values.size() <= slots_, "too many values: ", values.size());
    // Pack into a power-of-two number of slots; partially packed
    // ciphertexts replicate across the ring with a coefficient gap.
    std::size_t used = 1;
    while (used < values.size())
        used <<= 1;
    std::vector<Complex> vals(used, Complex(0, 0));
    std::copy(values.begin(), values.end(), vals.begin());
    fftSpecialInv(vals);

    const std::size_t n = ctx_.n();
    const std::size_t nh = n / 2;
    const std::size_t gap = nh / used;
    RnsPoly out(ctx_.chain(), mod_idx, false);
    parallelFor(0, out.towers(), [&](std::size_t t) {
        const u64 q = out.modulus(t);
        u64 *c = out.residue(t).data();
        for (std::size_t i = 0, idx = 0; i < used; ++i, idx += gap) {
            c[idx] = scaleToMod(vals[i].real() * scale, q);
            c[idx + nh] = scaleToMod(vals[i].imag() * scale, q);
        }
    });
    return out;
}

std::vector<Complex>
CkksEncoder::decode(const RnsPoly &plain, double scale) const
{
    RnsPoly p = plain;
    p.toCoeff();
    const std::size_t n = ctx_.n();
    const std::size_t nh = n / 2;
    // Reconstruct signed coefficients by exact CRT over as many
    // towers as fit the double exponent range (the value itself only
    // needs ~53 significant bits; extra towers just widen the window
    // so large intermediate products are centered correctly).
    std::size_t use = p.towers();
    double bits = 0;
    for (std::size_t t = 0; t < p.towers(); ++t) {
        bits += std::log2(static_cast<double>(p.modulus(t)));
        if (bits > 900) {
            use = t + 1;
            break;
        }
    }
    std::vector<u64> mods(use);
    for (std::size_t t = 0; t < use; ++t)
        mods[t] = p.modulus(t);
    const BigUint q_prod = BigUint::product(mods);

    // Precompute CRT terms: qHat_t = Q/q_t and qHatInv_t mod q_t.
    std::vector<BigUint> qhat(use);
    std::vector<u64> qhat_inv(use);
    for (std::size_t t = 0; t < use; ++t) {
        std::vector<u64> others;
        u64 inv = 1;
        for (std::size_t m = 0; m < use; ++m) {
            if (m == t)
                continue;
            others.push_back(mods[m]);
            inv = mulMod(inv, mods[m] % mods[t], mods[t]);
        }
        qhat[t] = BigUint::product(others);
        qhat_inv[t] = invMod(inv, mods[t]);
    }

    std::vector<double> coeff(n);
    for (std::size_t i = 0; i < n; ++i) {
        BigUint x(0);
        for (std::size_t t = 0; t < use; ++t) {
            const u64 c = mulMod(p.residue(t)[i], qhat_inv[t], mods[t]);
            BigUint term = qhat[t];
            term.mulU64(c);
            x += term;
        }
        // Reduce mod Q (sum of `use` terms each below Q).
        while (x >= q_prod)
            x -= q_prod;
        BigUint twice = x;
        twice += x;
        if (twice >= q_prod) {
            BigUint neg = q_prod;
            neg -= x;
            coeff[i] = -neg.toDouble();
        } else {
            coeff[i] = x.toDouble();
        }
    }

    std::vector<Complex> vals(nh);
    for (std::size_t i = 0; i < nh; ++i)
        vals[i] = Complex(coeff[i] / scale, coeff[i + nh] / scale);
    fftSpecial(vals);
    return vals;
}

RnsPoly
CkksEncoder::encodeCoeffs(const std::vector<double> &coeffs, double scale,
                          unsigned l_cur) const
{
    const std::size_t n = ctx_.n();
    CL_ASSERT(coeffs.size() <= n);
    RnsPoly out(ctx_.chain(), ctx_.dataIdx(l_cur), false);
    parallelFor(0, out.towers(), [&](std::size_t t) {
        const u64 q = out.modulus(t);
        u64 *c = out.residue(t).data();
        for (std::size_t i = 0; i < coeffs.size(); ++i)
            c[i] = scaleToMod(coeffs[i] * scale, q);
    });
    return out;
}

std::vector<double>
CkksEncoder::decodeCoeffs(const RnsPoly &plain, double scale) const
{
    RnsPoly p = plain;
    p.toCoeff();
    const u64 q0 = p.modulus(0);
    std::vector<double> out(ctx_.n());
    for (std::size_t i = 0; i < ctx_.n(); ++i)
        out[i] = static_cast<double>(centered(p.residue(0)[i], q0)) / scale;
    return out;
}

} // namespace cl

#include "keys.h"

#include <algorithm>

#include "util/biguint.h"
#include "util/prng.h"

namespace cl {

namespace {

/** Digit ranges partitioning the L data moduli into chunks of alpha. */
std::vector<std::vector<unsigned>>
digitRanges(unsigned l, unsigned alpha)
{
    std::vector<std::vector<unsigned>> out;
    for (unsigned start = 0; start < l; start += alpha) {
        std::vector<unsigned> d;
        for (unsigned i = start; i < std::min(l, start + alpha); ++i)
            d.push_back(i);
        out.push_back(std::move(d));
    }
    return out;
}

} // namespace

KeyGenerator::KeyGenerator(const CkksContext &ctx)
    : ctx_(ctx), noiseRng_(ctx.params().seed * 0x9e3779b97f4a7c15ULL + 1),
      domainCounter_(1)
{
    // Ternary secret over the full chain; optionally sparse
    // (bootstrapping bounds the mod-raise overflow by ||s||_1).
    const std::size_t n = ctx_.n();
    std::vector<int> s_coeff(n, 0);
    const unsigned h = ctx_.params().secretHamming;
    if (h == 0) {
        for (auto &c : s_coeff)
            c = noiseRng_.nextTernary();
    } else {
        CL_ASSERT(h < n, "Hamming weight too large");
        unsigned placed = 0;
        while (placed < h) {
            const std::size_t pos = noiseRng_.nextBelow(n);
            if (s_coeff[pos] == 0) {
                s_coeff[pos] = noiseRng_.nextBelow(2) ? 1 : -1;
                ++placed;
            }
        }
    }

    std::vector<unsigned> full_idx;
    for (unsigned i = 0; i < ctx_.chain().size(); ++i)
        full_idx.push_back(i);
    sk_.s = RnsPoly(ctx_.chain(), full_idx, false);
    for (std::size_t t = 0; t < sk_.s.towers(); ++t) {
        const u64 q = sk_.s.modulus(t);
        for (std::size_t i = 0; i < n; ++i)
            sk_.s.residue(t)[i] = reduceSigned(s_coeff[i], q);
    }
    sk_.s.toNtt();
}

RnsPoly
KeyGenerator::sampleError(const std::vector<unsigned> &idx)
{
    const std::size_t n = ctx_.n();
    std::vector<int> e_coeff(n);
    for (auto &c : e_coeff)
        c = noiseRng_.nextCbd();
    RnsPoly e(ctx_.chain(), idx, false);
    for (std::size_t t = 0; t < e.towers(); ++t) {
        const u64 q = e.modulus(t);
        for (std::size_t i = 0; i < n; ++i)
            e.residue(t)[i] = reduceSigned(e_coeff[i], q);
    }
    e.toNtt();
    return e;
}

RnsPoly
KeyGenerator::sampleUniformSeeded(std::uint64_t seed, std::uint64_t domain,
                                  const std::vector<unsigned> &idx)
{
    // Expanded directly in the NTT domain (a uniform polynomial is
    // uniform in either domain), matching KSHGen's on-the-fly
    // generation of NTT-resident hint halves.
    RnsPoly a(ctx_.chain(), idx, true);
    for (std::size_t t = 0; t < a.towers(); ++t) {
        const u64 q = a.modulus(t);
        RejectionSampler sampler(seed, domain * 0x10000 + idx[t], q);
        sampler.fill(a.residue(t).data(), ctx_.n());
    }
    return a;
}

PublicKey
KeyGenerator::genPublicKey()
{
    const auto idx = ctx_.dataIdx(ctx_.l());
    PublicKey pk;
    pk.a = sampleUniformSeeded(ctx_.params().seed, domainCounter_++, idx);
    RnsPoly s_data = sk_.s;
    s_data.dropTowers(ctx_.alpha());
    pk.b = sampleError(idx);
    RnsPoly as = pk.a;
    as *= s_data;
    pk.b -= as;
    return pk;
}

SwitchKey
KeyGenerator::genSwitchKey(const RnsPoly &s_src, std::uint64_t domain,
                           unsigned alpha_ks)
{
    CL_ASSERT(s_src.isNtt() && s_src.towers() == ctx_.chain().size(),
              "source key must span the full chain in NTT form");
    const unsigned l = ctx_.l();
    const unsigned alpha = alpha_ks == 0 ? ctx_.alpha() : alpha_ks;
    CL_ASSERT(alpha <= ctx_.alpha(), "digit size ", alpha,
              " exceeds available special moduli ", ctx_.alpha());
    const auto digits = digitRanges(l, alpha);

    // Extended basis: all data moduli plus the first alpha special
    // moduli (a smaller digit size needs a smaller raising basis).
    std::vector<unsigned> ext_idx;
    for (unsigned i = 0; i < l; ++i)
        ext_idx.push_back(i);
    for (unsigned i = 0; i < alpha; ++i)
        ext_idx.push_back(ctx_.l() + i);

    RnsPoly s_ext = sk_.s.subset(ext_idx);
    RnsPoly s_src_ext = s_src.subset(ext_idx);

    // P = product of the special moduli used by this key (as
    // residues; the big product is only needed mod each modulus).
    std::vector<u64> p_primes;
    for (unsigned i = 0; i < alpha; ++i)
        p_primes.push_back(ctx_.chain().modulus(ctx_.l() + i));

    SwitchKey ksk;
    ksk.alphaKs = alpha;
    ksk.seed = ctx_.params().seed;
    ksk.domain = domain;

    for (std::size_t j = 0; j < digits.size(); ++j) {
        const auto &dj = digits[j];

        // v_j = [(Q/Q_j)^{-1} mod Q_j] as an exact integer, built by
        // CRT interpolation over the digit's primes.
        std::vector<u64> qj_primes;
        for (unsigned i : dj)
            qj_primes.push_back(ctx_.chain().modulus(i));
        const BigUint qj = BigUint::product(qj_primes);

        BigUint vj(0);
        for (unsigned i : dj) {
            const u64 qi = ctx_.chain().modulus(i);
            // (Q/Q_j) mod q_i: product of data primes outside the digit.
            u64 qhat_mod_qi = 1;
            for (unsigned m = 0; m < l; ++m) {
                if (std::find(dj.begin(), dj.end(), m) != dj.end())
                    continue;
                qhat_mod_qi =
                    mulMod(qhat_mod_qi, ctx_.chain().modulus(m) % qi, qi);
            }
            // (Q_j/q_i) mod q_i.
            u64 qj_hat_mod_qi = 1;
            for (unsigned m : dj) {
                if (m == i)
                    continue;
                qj_hat_mod_qi =
                    mulMod(qj_hat_mod_qi, ctx_.chain().modulus(m) % qi, qi);
            }
            const u64 ci = mulMod(invMod(qhat_mod_qi, qi),
                                  invMod(qj_hat_mod_qi, qi), qi);
            // vj += ci * (Q_j / q_i)
            std::vector<u64> others;
            for (unsigned m : dj) {
                if (m != i)
                    others.push_back(ctx_.chain().modulus(m));
            }
            BigUint term = BigUint::product(others);
            term.mulU64(ci);
            vj += term;
        }
        while (vj >= qj)
            vj -= qj;

        // W_j mod r = P * (Q/Q_j) * v_j mod r for every chain modulus.
        RnsPoly a_j = sampleUniformSeeded(
            ksk.seed, (domain << 8) + j, ext_idx);
        RnsPoly b_j = sampleError(ext_idx);

        RnsPoly as = a_j;
        as *= s_ext;
        b_j -= as;

        for (std::size_t t = 0; t < ext_idx.size(); ++t) {
            const u64 r = ctx_.chain().modulus(ext_idx[t]);
            u64 w = 1;
            for (u64 p : p_primes)
                w = mulMod(w, p % r, r);
            for (unsigned m = 0; m < l; ++m) {
                if (std::find(dj.begin(), dj.end(), m) != dj.end())
                    continue;
                w = mulMod(w, ctx_.chain().modulus(m) % r, r);
            }
            w = mulMod(w, vj.modU64(r), r);
            // b_j[t] += w * s_src[t]
            const u64 *src = s_src_ext.residue(t).data();
            u64 *dst = b_j.residue(t).data();
            const ShoupMul wm(w, r);
            for (std::size_t i = 0; i < ctx_.n(); ++i)
                dst[i] = addMod(dst[i], wm.mul(src[i], r), r);
        }

        ksk.a.push_back(std::move(a_j));
        ksk.b.push_back(std::move(b_j));
    }
    return ksk;
}

SwitchKey
KeyGenerator::genRelinKey(unsigned alpha_ks)
{
    RnsPoly s2 = sk_.s;
    s2 *= sk_.s;
    return genSwitchKey(s2, domainCounter_++, alpha_ks);
}

std::size_t
KeyGenerator::galoisFromSteps(int steps) const
{
    const std::size_t m = 2 * ctx_.n();
    const std::size_t slots = ctx_.slots();
    long r = steps % static_cast<long>(slots);
    if (r < 0)
        r += static_cast<long>(slots);
    std::size_t g = 1;
    for (long i = 0; i < r; ++i)
        g = (g * 5) % m;
    return g;
}

SwitchKey
KeyGenerator::genRotationKey(int steps, unsigned alpha_ks)
{
    const std::size_t g = galoisFromSteps(steps);
    RnsPoly s_rot = sk_.s.automorphism(g);
    return genSwitchKey(s_rot, domainCounter_++, alpha_ks);
}

SwitchKey
KeyGenerator::genConjugationKey(unsigned alpha_ks)
{
    const std::size_t g = 2 * ctx_.n() - 1;
    RnsPoly s_conj = sk_.s.automorphism(g);
    return genSwitchKey(s_conj, domainCounter_++, alpha_ks);
}

GaloisKeys
KeyGenerator::genRotationKeys(const std::vector<int> &steps, bool conjugate)
{
    GaloisKeys gk;
    for (int s : steps) {
        const std::size_t g = galoisFromSteps(s);
        if (!gk.has(g))
            gk.keys.emplace(g, genRotationKey(s));
    }
    if (conjugate)
        gk.keys.emplace(2 * ctx_.n() - 1, genConjugationKey());
    return gk;
}

} // namespace cl

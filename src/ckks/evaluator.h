/**
 * @file
 * Homomorphic evaluator for CKKS: add, multiply (+relinearize),
 * rescale, rotate, conjugate — all built on keyswitching (Sec 2.2),
 * plus the modulus-raise primitive bootstrapping starts from.
 *
 * The keyswitching core implements Listing 1 generalized to t digits
 * (Sec 3.1): the hint's digit size selects the variant, from the
 * standard per-prime algorithm (alphaKs = 1, what F1 targets) to the
 * fully boosted 1-digit algorithm (alphaKs = L).
 */

#ifndef CL_CKKS_EVALUATOR_H
#define CL_CKKS_EVALUATOR_H

#include "ckks/ciphertext.h"
#include "ckks/keys.h"

namespace cl {

class Evaluator
{
  public:
    explicit Evaluator(const CkksContext &ctx);

    // --- Linear operations ---
    Ciphertext add(const Ciphertext &a, const Ciphertext &b) const;
    Ciphertext sub(const Ciphertext &a, const Ciphertext &b) const;
    Ciphertext addPlain(const Ciphertext &a, const RnsPoly &plain) const;
    Ciphertext subPlain(const Ciphertext &a, const RnsPoly &plain) const;
    Ciphertext negate(const Ciphertext &a) const;

    /** Multiply by a plaintext polynomial (NTT form, matching basis
     *  prefix); scales multiply. */
    Ciphertext mulPlain(const Ciphertext &a, const RnsPoly &plain,
                        double plain_scale) const;

    /** Multiply by a real scalar encoded at the next prime's scale. */
    Ciphertext mulScalar(const Ciphertext &a, double scalar) const;

    // --- Multiplicative operations ---
    /** Full homomorphic multiply: tensor + relinearization. The
     *  result has scale a.scale * b.scale; rescale separately. */
    Ciphertext multiply(const Ciphertext &a, const Ciphertext &b,
                        const SwitchKey &relin) const;

    /** Square (saves one tensor product). */
    Ciphertext square(const Ciphertext &a, const SwitchKey &relin) const;

    /** Drop the last tower, dividing the scale by its modulus. */
    void rescale(Ciphertext &ct) const;

    /** Align @p ct to a lower level by dropping towers (no rescale). */
    void levelDrop(Ciphertext &ct, unsigned target_level) const;

    // --- Rotations ---
    Ciphertext rotate(const Ciphertext &a, int steps,
                      const GaloisKeys &gk) const;
    Ciphertext conjugate(const Ciphertext &a, const GaloisKeys &gk) const;

    /** Rotation by precomputed automorphism exponent. */
    Ciphertext rotateByGalois(const Ciphertext &a, std::size_t galois,
                              const SwitchKey &key) const;

    // --- Keyswitching (exposed for tests and cost accounting) ---
    /**
     * Switch @p d (over the data basis at its level, NTT form) from
     * the hint's source key to the canonical secret: returns (k0, k1)
     * with k0 + k1·s ≈ d·s_src.
     */
    std::pair<RnsPoly, RnsPoly> keySwitch(const RnsPoly &d,
                                          const SwitchKey &ksk) const;

    // --- Bootstrapping primitive ---
    /**
     * Raise an exhausted ciphertext (level >= 1) to @p target_level.
     * The decrypted value becomes m + e + k·q0 for a small integer
     * polynomial k; EvalMod removes the k·q0 term (Sec 8, packed
     * bootstrapping).
     */
    Ciphertext modRaise(const Ciphertext &ct, unsigned target_level) const;

    /** Galois exponent for a slot rotation (matches KeyGenerator). */
    std::size_t galoisFromSteps(int steps) const;

  private:
    void checkSameShape(const Ciphertext &a, const Ciphertext &b) const;

    const CkksContext &ctx_;
};

} // namespace cl

#endif // CL_CKKS_EVALUATOR_H

/**
 * @file
 * Homomorphic evaluator for CKKS: add, multiply (+relinearize),
 * rescale, rotate, conjugate — all built on keyswitching (Sec 2.2),
 * plus the modulus-raise primitive bootstrapping starts from.
 *
 * The keyswitching core implements Listing 1 generalized to t digits
 * (Sec 3.1): the hint's digit size selects the variant, from the
 * standard per-prime algorithm (alphaKs = 1, what F1 targets) to the
 * fully boosted 1-digit algorithm (alphaKs = L).
 */

#ifndef CL_CKKS_EVALUATOR_H
#define CL_CKKS_EVALUATOR_H

#include "ckks/ciphertext.h"
#include "ckks/keys.h"

namespace cl {

/**
 * The reusable first stage of keyswitching: the input polynomial's
 * digits, lifted to the extended basis Q_l ∪ P (Listing 1 lines 2-5),
 * in NTT form. Computing this once and reusing it across rotations is
 * the hoisting optimization: automorphisms act on the raised digits as
 * pure NTT-domain permutations, so each additional rotation costs only
 * the hint inner product and a mod-down — the digit lift and mod-up
 * NTTs are paid once per ciphertext instead of once per rotation.
 */
struct KeySwitchDigits
{
    std::vector<RnsPoly> u;       ///< dnum digit polys over Q_l ∪ P.
    std::vector<unsigned> extIdx; ///< Chain indices of the ext basis.
    unsigned level = 0;           ///< Towers of the source polynomial.
    unsigned alphaKs = 0;         ///< Digit size the lift used.

    bool valid() const { return !u.empty(); }
};

class Evaluator
{
  public:
    explicit Evaluator(const CkksContext &ctx);

    /**
     * Relative scale tolerance for operand alignment. Ciphertext and
     * ct/plain adds whose scales agree within this bound are
     * auto-aligned: the result takes the left operand's scale and the
     * relative discrepancy is absorbed into the message noise. A wider
     * mismatch asserts — the program must rescale or mulPlain-align
     * its operands first.
     */
    static constexpr double kScaleRelTol = 1e-6;

    // --- Linear operations ---
    Ciphertext add(const Ciphertext &a, const Ciphertext &b) const;
    Ciphertext sub(const Ciphertext &a, const Ciphertext &b) const;
    Ciphertext addPlain(const Ciphertext &a, const RnsPoly &plain) const;
    Ciphertext subPlain(const Ciphertext &a, const RnsPoly &plain) const;

    /** Scale-checked variants: assert the plaintext was encoded within
     *  kScaleRelTol of the ciphertext scale before adding. */
    Ciphertext addPlain(const Ciphertext &a, const RnsPoly &plain,
                        double plain_scale) const;
    Ciphertext subPlain(const Ciphertext &a, const RnsPoly &plain,
                        double plain_scale) const;

    Ciphertext negate(const Ciphertext &a) const;

    /** Multiply by a plaintext polynomial (NTT form, matching basis
     *  prefix); scales multiply. */
    Ciphertext mulPlain(const Ciphertext &a, const RnsPoly &plain,
                        double plain_scale) const;

    /** Multiply by a real scalar encoded at the next prime's scale. */
    Ciphertext mulScalar(const Ciphertext &a, double scalar) const;

    // --- Multiplicative operations ---
    /** Full homomorphic multiply: tensor + relinearization. The
     *  result has scale a.scale * b.scale; rescale separately. */
    Ciphertext multiply(const Ciphertext &a, const Ciphertext &b,
                        const SwitchKey &relin) const;

    /** Square (saves one tensor product). */
    Ciphertext square(const Ciphertext &a, const SwitchKey &relin) const;

    /** Drop the last tower, dividing the scale by its modulus. */
    void rescale(Ciphertext &ct) const;

    /** Align @p ct to a lower level by dropping towers (no rescale). */
    void levelDrop(Ciphertext &ct, unsigned target_level) const;

    // --- Rotations ---
    Ciphertext rotate(const Ciphertext &a, int steps,
                      const GaloisKeys &gk) const;
    Ciphertext conjugate(const Ciphertext &a, const GaloisKeys &gk) const;

    /** Rotation by precomputed automorphism exponent. */
    Ciphertext rotateByGalois(const Ciphertext &a, std::size_t galois,
                              const SwitchKey &key) const;

    // --- Keyswitching (exposed for tests and cost accounting) ---
    /**
     * Switch @p d (over the data basis at its level, NTT form) from
     * the hint's source key to the canonical secret: returns (k0, k1)
     * with k0 + k1·s ≈ d·s_src. Composed from the staged primitives
     * below: decompose + innerProduct + modDown.
     */
    std::pair<RnsPoly, RnsPoly> keySwitch(const RnsPoly &d,
                                          const SwitchKey &ksk) const;

    // --- Staged keyswitching (the hoisted API) ---
    /**
     * Stage 1: digit lift + mod-up of @p d (NTT form, data basis at
     * its level) with digit size @p alpha_ks. The dominant cost of a
     * keyswitch; reusable across every rotation of the same
     * ciphertext (and across any hint with the same digit size).
     */
    KeySwitchDigits decompose(const RnsPoly &d, unsigned alpha_ks) const;

    /**
     * Permute raised digits by the Galois automorphism x -> x^galois.
     * Exact in the raised basis: automorphism is a ring homomorphism,
     * so σ(digits of d) are valid digits of σ(d) — the digit constants
     * W_j are rational integers, invariant under σ. NTT-domain gather,
     * no sign corrections.
     */
    KeySwitchDigits automorphismDigits(const KeySwitchDigits &digits,
                                       std::size_t galois) const;

    /**
     * Stage 2: hint inner product sum_j u_j * (b_j, a_j) over the
     * extended basis. Results carry the P factor; modDown removes it.
     */
    std::pair<RnsPoly, RnsPoly>
    innerProduct(const KeySwitchDigits &digits, const SwitchKey &ksk) const;

    /**
     * Fused stage 2 with an optional digit automorphism: equivalent to
     * `innerProduct(automorphismDigits(digits, galois), ksk)` but tiled
     * tower-major — for each extended-basis tower, the permuted digit
     * residue is gathered into a cache-resident scratch block and
     * immediately MACed into both accumulators across all dnum digits,
     * so the rotated digits never materialize as full polynomials.
     * Bit-identical to the composed sequence (galois = 1 skips the
     * gather). Under CL_FUSE=0 this delegates to exactly that composed
     * sequence.
     */
    std::pair<RnsPoly, RnsPoly>
    innerProduct(const KeySwitchDigits &digits, const SwitchKey &ksk,
                 std::size_t galois) const;

    /**
     * Stage 3: divide an extended-basis accumulator by P and return it
     * on the data basis (Listing 1 lines 7-10). The special towers are
     * identified by chain index (>= l), so any ext-basis polynomial —
     * a single inner product or a lazy sum of many — mods down alike.
     */
    RnsPoly modDown(const RnsPoly &acc) const;

    /**
     * Hoisted rotation: apply automorphism @p galois to @p a reusing
     * the precomputed @p digits of a.c1. Skips the digit lift/mod-up;
     * bit-identical to rotateByGalois on the same inputs (which
     * computes the same digits freshly).
     */
    Ciphertext rotateByGaloisHoisted(const Ciphertext &a,
                                     std::size_t galois,
                                     const SwitchKey &key,
                                     const KeySwitchDigits &digits) const;

    // --- Bootstrapping primitive ---
    /**
     * Raise an exhausted ciphertext (level >= 1) to @p target_level.
     * The decrypted value becomes m + e + k·q0 for a small integer
     * polynomial k; EvalMod removes the k·q0 term (Sec 8, packed
     * bootstrapping).
     */
    Ciphertext modRaise(const Ciphertext &ct, unsigned target_level) const;

    /** Galois exponent for a slot rotation (matches KeyGenerator). */
    std::size_t galoisFromSteps(int steps) const;

  private:
    void checkSameShape(const Ciphertext &a, const Ciphertext &b) const;
    void checkPlainScale(const Ciphertext &a, double plain_scale) const;
    RnsPoly alignPlain(const RnsPoly &plain, std::size_t ct_towers) const;

    const CkksContext &ctx_;
};

} // namespace cl

#endif // CL_CKKS_EVALUATOR_H

/**
 * @file
 * Differential fuzzing across the three independent views of an FHE
 * program (DESIGN.md §7):
 *
 *  (a) the functional CKKS library — generate a random homomorphic
 *      program, execute it through Evaluator at small N, and check
 *      the decrypted outputs against a cleartext slot model;
 *  (b) the accounting layer — the OpCounter charges the Evaluator
 *      files must equal the ground-truth kernel instrumentation
 *      (util/instrument.h) exactly, and the compiler's tracked
 *      level/scale must equal the evaluator's actual level/scale;
 *  (c) the hardware stack — lower the same program, simulate the
 *      schedule, and run ScheduleVerifier over the recorded trace,
 *      asserting op-conservation invariants (keyswitch counts) on
 *      the way through.
 *
 * Programs come in two families. Functional-safe programs (no
 * ModRaise) run every leg. Structural programs place bootstrap-entry
 * ModRaise ops, after which decrypted values are m + k·q0 — the
 * cleartext model cannot predict them — so they run legs (b)/(c)
 * only; the counter cross-check still runs because it is value-blind.
 *
 * Every mismatch is a bug in one of the three views by construction:
 * the generator only emits programs that are legal under the scheme's
 * documented preconditions (level alignment, scale tolerance,
 * capacity headroom).
 */

#ifndef CL_FUZZ_FUZZER_H
#define CL_FUZZ_FUZZER_H

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "ckks/encryptor.h"
#include "ckks/evaluator.h"
#include "compiler/schedule.h"
#include "runtime/taskgraph.h"

namespace cl {

/** Operation kinds the generator emits. Every kind maps both to an
 *  Evaluator call and to a HomBuilder call (Sub lowers as Add — the
 *  instruction shape and cost are identical). */
enum class GenKind
{
    Input,    ///< Fresh encryption at a chosen level and scale.
    Add,      ///< ct + ct (levels equal, scales bit-identical).
    Sub,      ///< ct - ct (same preconditions as Add).
    AddPlain, ///< ct + pt encoded at the ct's exact scale.
    SubPlain, ///< ct - pt.
    MulPlain, ///< ct * pt at the context scale.
    Mul,      ///< ct * ct + relinearize (no rescale).
    Rescale,  ///< Drop the last tower, divide the scale.
    Rotate,   ///< Slot rotation from the environment's key set.
    Conjugate,///< Complex conjugation.
    LevelDrop,///< Drop one tower without rescaling.
    ModRaise, ///< Bootstrap entry: raise to the top of the chain.
    Output    ///< Decrypt-and-check sink.
};

const char *genKindName(GenKind k);

/** One generated op. Operand fields reference earlier ops by index.
 *  `valueSeed` makes Input/plaintext contents a function of the op
 *  itself, so a program replays identically from its op list alone
 *  (the minimizer depends on this). */
struct GenOp
{
    GenKind kind = GenKind::Input;
    int a = -1;                  ///< First ciphertext operand.
    int b = -1;                  ///< Second ciphertext operand.
    int level = 0;               ///< Input level / ModRaise target.
    int scaleOf = -1;            ///< Input: op whose scale to copy
                                 ///  (-1 = the context scale).
    int steps = 0;               ///< Rotate step count.
    std::uint64_t valueSeed = 0; ///< Seed for input/plain contents.
};

/** A generated program: replayable from the op list alone. */
struct GenProgram
{
    std::uint64_t seed = 0; ///< Generator seed (0 for hand-built).
    std::vector<GenOp> ops;

    bool hasModRaise() const;
    std::size_t countKind(GenKind k) const;
};

/** Knobs for the random generator. */
struct FuzzConfig
{
    unsigned maxOps = 24;        ///< Target op count (pre-Output).
    unsigned inputs = 3;         ///< Fresh inputs seeded up front.
    bool allowModRaise = false;  ///< Place bootstrap-entry ops.
    /** Op-mix weights, indexed by GenKind (Input..ModRaise); Output
     *  is implicit. A zero weight disables the kind. */
    std::vector<unsigned> weights = {0, 4, 2, 3, 2, 4, 4, 3, 3, 2, 1, 0};
};

/**
 * Shared fuzzing environment: context, key material, and the fixed
 * rotation-step set the generator draws from. Built once and reused
 * across seeds (key generation dominates single-run cost).
 */
class FuzzEnv
{
  public:
    explicit FuzzEnv(const CkksParams &params = CkksParams::testSmall());

    const CkksContext &ctx() const { return *ctx_; }
    const CkksEncoder &encoder() const { return *encoder_; }
    const Evaluator &evaluator() const { return *evaluator_; }
    const PublicKey &publicKey() const { return pk_; }
    const SecretKey &secretKey() const { return keygen_->secretKey(); }
    const SwitchKey &relinKey() const { return relin_; }
    const GaloisKeys &galoisKeys() const { return galois_; }
    const std::vector<int> &rotationSteps() const { return steps_; }

    unsigned lMax() const { return ctx_->l(); }
    double contextScale() const { return ctx_->params().scale(); }
    /** Modulus bits available at a level (capacity for scale·mag). */
    double capacityBits(unsigned level) const;
    /** The prime a rescale at @p level divides out of the scale. */
    double lastModulus(unsigned level) const;

  private:
    std::unique_ptr<CkksContext> ctx_;
    std::unique_ptr<CkksEncoder> encoder_;
    std::unique_ptr<KeyGenerator> keygen_;
    std::unique_ptr<Evaluator> evaluator_;
    PublicKey pk_;
    SwitchKey relin_;
    GaloisKeys galois_;
    std::vector<int> steps_;
};

/** Per-value static state the generator/legality checker tracks,
 *  mirroring the evaluator's own double arithmetic exactly. */
struct TrackedValue
{
    unsigned level = 0;
    double scale = 0;
    double mag = 0;        ///< Bound on |slot value|.
    bool poisoned = false; ///< Downstream of a ModRaise.
};

/** Generate a random legal program from @p seed. Deterministic:
 *  identical (env params, cfg, seed) gives a byte-identical program. */
GenProgram generateProgram(const FuzzEnv &env, const FuzzConfig &cfg,
                           std::uint64_t seed);

/**
 * Re-derive per-op static state for @p prog, checking every generator
 * invariant (operand liveness, level agreement, scale pairing,
 * capacity headroom). Returns std::nullopt and a message if illegal —
 * the minimizer uses this to reject broken shrink candidates.
 */
std::optional<std::vector<TrackedValue>>
checkLegal(const FuzzEnv &env, const GenProgram &prog,
           std::string *why = nullptr);

/** Outcome of one oracle run. */
struct OracleResult
{
    bool ok = true;
    std::string failure;    ///< First mismatch, human-readable.
    GenKind failKind = GenKind::Output; ///< Kind of the failing op.
    int failOp = -1;        ///< Index of the failing op, -1 if global.
    double maxError = 0;    ///< Worst decrypt error over outputs.
    bool functionalRan = false;
    std::uint64_t simCycles = 0;
};

/** Which legs to run and against which chip configurations. */
struct OracleOptions
{
    bool functional = true;  ///< Leg (a): execute + decrypt check.
    bool structural = true;  ///< Leg (c): lower/simulate/verify.
    std::vector<std::string> chipConfigs = {"craterlake"};

    /** Schedule modes the structural leg lowers under. Each mode is
     *  a separate lower/simulate/verify pass, so {None, List} runs
     *  the scheduler differentially against the emission order. */
    std::vector<ScheduleMode> scheduleModes = {ScheduleMode::None};

    /** Execution modes for the ciphertext leg. Each mode executes the
     *  whole program between counter snapshots; with more than one,
     *  every later mode's ciphertexts must be *byte-identical* to the
     *  first's and all counter totals must agree — {Serial, Graph}
     *  runs the task-graph runtime differentially against program
     *  order. Defaults to serial (the historical oracle behavior);
     *  tools/fuzz_hom --exec selects others. */
    std::vector<ExecMode> execModes = {ExecMode::Serial};

    /** Multiplier on the decrypt-error bound. 1.0 for real runs; tests
     *  shrink it to force synthetic failures (e.g. to exercise the
     *  minimizer on a program that otherwise passes). */
    double tolScale = 1.0;
};

/** Run the three-way oracle over @p prog. */
OracleResult runOracle(const FuzzEnv &env, const GenProgram &prog,
                       const OracleOptions &opts = {});

/**
 * Greedy shrink: repeatedly try (1) deleting an op together with its
 * transitive dependents and (2) replacing an op by its first
 * ciphertext operand, keeping a candidate only if it stays legal and
 * still fails the oracle. Runs to a fixed point; idempotent on
 * already-minimal programs.
 */
GenProgram minimizeProgram(const FuzzEnv &env, const GenProgram &prog,
                           const OracleOptions &opts = {});

/** Serialize to the corpus JSON format (seed + op list + failure). */
std::string toJson(const GenProgram &prog,
                   const std::string &failure = "");

/** Parse a corpus JSON file's contents back into a program. Fatal on
 *  malformed input (corpus files are repo-controlled). */
GenProgram fromJson(const std::string &json);

} // namespace cl

#endif // CL_FUZZ_FUZZER_H

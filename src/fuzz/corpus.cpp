/**
 * @file
 * Corpus serialization: a small, self-describing JSON format holding
 * the generator seed, the failure message that pinned the file, and
 * the explicit op list (so minimized programs — which no longer
 * correspond to any seed — replay exactly).
 *
 * The parser handles exactly the subset the writer emits; corpus
 * files are repo-controlled, so malformed input is fatal rather than
 * recoverable.
 */

#include "fuzz/fuzzer.h"

#include <cctype>
#include <sstream>

namespace cl {

namespace {

const char *
kindToken(GenKind k)
{
    return genKindName(k);
}

GenKind
kindFromToken(const std::string &s)
{
    for (int k = 0; k <= static_cast<int>(GenKind::Output); ++k) {
        if (s == genKindName(static_cast<GenKind>(k)))
            return static_cast<GenKind>(k);
    }
    CL_FATAL("unknown op kind in corpus file: ", s);
}

std::string
escape(const std::string &s)
{
    std::string out;
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        if (c == '\n') {
            out += "\\n";
            continue;
        }
        out += c;
    }
    return out;
}

/** Minimal pull parser over the writer's output. */
class Cursor
{
  public:
    explicit Cursor(const std::string &text) : text_(text) {}

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    bool
    tryConsume(char c)
    {
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    void
    expect(char c)
    {
        CL_ASSERT(tryConsume(c), "corpus parse error: expected '", c,
                  "' at offset ", pos_);
    }

    std::string
    string()
    {
        expect('"');
        std::string out;
        while (pos_ < text_.size() && text_[pos_] != '"') {
            char c = text_[pos_++];
            if (c == '\\' && pos_ < text_.size()) {
                char e = text_[pos_++];
                out += e == 'n' ? '\n' : e;
            } else {
                out += c;
            }
        }
        expect('"');
        return out;
    }

    std::int64_t
    integer()
    {
        skipWs();
        std::size_t end = pos_;
        if (end < text_.size() && text_[end] == '-')
            ++end;
        while (end < text_.size() &&
               std::isdigit(static_cast<unsigned char>(text_[end])))
            ++end;
        CL_ASSERT(end > pos_, "corpus parse error: expected integer at ",
                  pos_);
        const std::int64_t v = std::stoll(text_.substr(pos_, end - pos_));
        pos_ = end;
        return v;
    }

    std::uint64_t
    u64()
    {
        // Written as a decimal string to keep full 64-bit precision
        // out of JSON-number territory.
        const std::string s = string();
        return std::stoull(s);
    }

    bool
    atEnd()
    {
        skipWs();
        return pos_ >= text_.size();
    }

  private:
    const std::string &text_;
    std::size_t pos_ = 0;
};

} // namespace

std::string
toJson(const GenProgram &prog, const std::string &failure)
{
    std::ostringstream os;
    os << "{\n";
    os << "  \"seed\": \"" << prog.seed << "\",\n";
    if (!failure.empty())
        os << "  \"failure\": \"" << escape(failure) << "\",\n";
    os << "  \"ops\": [\n";
    for (std::size_t i = 0; i < prog.ops.size(); ++i) {
        const GenOp &op = prog.ops[i];
        os << "    {\"kind\": \"" << kindToken(op.kind) << "\", \"a\": "
           << op.a << ", \"b\": " << op.b << ", \"level\": " << op.level
           << ", \"scaleOf\": " << op.scaleOf << ", \"steps\": "
           << op.steps << ", \"valueSeed\": \"" << op.valueSeed << "\"}"
           << (i + 1 < prog.ops.size() ? "," : "") << "\n";
    }
    os << "  ]\n";
    os << "}\n";
    return os.str();
}

GenProgram
fromJson(const std::string &json)
{
    GenProgram prog;
    Cursor cur(json);
    cur.expect('{');
    bool first = true;
    while (!cur.tryConsume('}')) {
        if (!first)
            cur.expect(',');
        first = false;
        const std::string key = cur.string();
        cur.expect(':');
        if (key == "seed") {
            prog.seed = cur.u64();
        } else if (key == "failure") {
            cur.string(); // informational only
        } else if (key == "ops") {
            cur.expect('[');
            if (!cur.tryConsume(']')) {
                do {
                    cur.expect('{');
                    GenOp op;
                    bool ofirst = true;
                    while (!cur.tryConsume('}')) {
                        if (!ofirst)
                            cur.expect(',');
                        ofirst = false;
                        const std::string f = cur.string();
                        cur.expect(':');
                        if (f == "kind")
                            op.kind = kindFromToken(cur.string());
                        else if (f == "a")
                            op.a = static_cast<int>(cur.integer());
                        else if (f == "b")
                            op.b = static_cast<int>(cur.integer());
                        else if (f == "level")
                            op.level = static_cast<int>(cur.integer());
                        else if (f == "scaleOf")
                            op.scaleOf = static_cast<int>(cur.integer());
                        else if (f == "steps")
                            op.steps = static_cast<int>(cur.integer());
                        else if (f == "valueSeed")
                            op.valueSeed = cur.u64();
                        else
                            CL_FATAL("unknown op field: ", f);
                    }
                    prog.ops.push_back(op);
                } while (cur.tryConsume(','));
                cur.expect(']');
            }
        } else {
            CL_FATAL("unknown corpus field: ", key);
        }
    }
    return prog;
}

} // namespace cl

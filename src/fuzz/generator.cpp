/**
 * @file
 * Seeded random program generation plus the shared legality checker.
 *
 * The generator and checkLegal() agree on one static model: per value
 * it tracks (level, scale, magnitude bound, poisoned), where scale is
 * computed with the *identical* double arithmetic the Evaluator uses,
 * so the oracle can later demand exact (bit-level) scale agreement.
 */

#include "fuzz/fuzzer.h"

#include <cmath>

#include "util/prng.h"

namespace cl {

namespace {

/** Headroom (bits) kept between scale·mag and the modulus product. */
constexpr double kCapacityMarginBits = 12;
/** Minimum post-rescale scale (bits) so decrypt precision survives. */
constexpr double kMinScaleBits = 30;
/** Magnitude bound past which adds/muls stop being offered. */
constexpr double kMaxMag = 64;

bool
fitsCapacity(const FuzzEnv &env, unsigned level, double scale, double mag)
{
    const double used =
        std::log2(scale) + std::log2(std::max(mag, 1.0));
    return used + kCapacityMarginBits < env.capacityBits(level);
}

/** The static effect of one op; shared by generation and legality
 *  re-checking. Returns false (with a reason) if the op is illegal in
 *  the given state. */
bool
applyOp(const FuzzEnv &env, const GenOp &op,
        const std::vector<TrackedValue> &vals, TrackedValue &out,
        std::string *why)
{
    auto fail = [&](const std::string &msg) {
        if (why)
            *why = msg;
        return false;
    };
    auto operand = [&](int idx) -> const TrackedValue * {
        if (idx < 0 || static_cast<std::size_t>(idx) >= vals.size())
            return nullptr;
        return &vals[idx];
    };

    const TrackedValue *a = operand(op.a);
    const TrackedValue *b = operand(op.b);

    switch (op.kind) {
      case GenKind::Input: {
        if (op.level < 1 ||
            static_cast<unsigned>(op.level) > env.lMax())
            return fail("input level out of range");
        double scale = env.contextScale();
        if (op.scaleOf >= 0) {
            const TrackedValue *ref = operand(op.scaleOf);
            if (!ref)
                return fail("input scale reference out of range");
            scale = ref->scale;
        }
        if (!fitsCapacity(env, op.level, scale, 1.5))
            return fail("input scale exceeds level capacity");
        out = {static_cast<unsigned>(op.level), scale, 1.5, false};
        return true;
      }
      case GenKind::Add:
      case GenKind::Sub: {
        if (!a || !b)
            return fail("missing operand");
        if (a->level != b->level)
            return fail("add level mismatch");
        if (a->scale != b->scale)
            return fail("add scale mismatch");
        const double mag = a->mag + b->mag;
        if (mag > kMaxMag)
            return fail("magnitude bound exceeded");
        out = {a->level, a->scale, mag, a->poisoned || b->poisoned};
        return true;
      }
      case GenKind::AddPlain:
      case GenKind::SubPlain: {
        if (!a)
            return fail("missing operand");
        const double mag = a->mag + 1.5;
        if (mag > kMaxMag)
            return fail("magnitude bound exceeded");
        out = {a->level, a->scale, mag, a->poisoned};
        return true;
      }
      case GenKind::MulPlain: {
        if (!a)
            return fail("missing operand");
        // Mirrors Evaluator::mulPlain: scale multiplies.
        const double scale = a->scale * env.contextScale();
        const double mag = a->mag * 1.5;
        if (mag > kMaxMag)
            return fail("magnitude bound exceeded");
        if (!fitsCapacity(env, a->level, scale, mag))
            return fail("mulPlain scale exceeds capacity");
        out = {a->level, scale, mag, a->poisoned};
        return true;
      }
      case GenKind::Mul: {
        if (!a || !b)
            return fail("missing operand");
        if (a->level != b->level)
            return fail("mul level mismatch");
        if (a->level < 2)
            return fail("mul needs rescale budget");
        const double scale = a->scale * b->scale;
        const double mag = a->mag * b->mag;
        if (mag > kMaxMag)
            return fail("magnitude bound exceeded");
        if (!fitsCapacity(env, a->level, scale, mag))
            return fail("mul scale exceeds capacity");
        out = {a->level, scale, mag, a->poisoned || b->poisoned};
        return true;
      }
      case GenKind::Rescale: {
        if (!a)
            return fail("missing operand");
        if (a->level < 2)
            return fail("rescale needs two towers");
        // Mirrors Evaluator::rescale: divide by the last live prime.
        const double scale = a->scale / env.lastModulus(a->level);
        if (std::log2(scale) < kMinScaleBits)
            return fail("rescale would drop scale below precision floor");
        if (!fitsCapacity(env, a->level - 1, scale, a->mag))
            return fail("rescale would overflow reduced capacity");
        out = {a->level - 1, scale, a->mag, a->poisoned};
        return true;
      }
      case GenKind::Rotate: {
        if (!a)
            return fail("missing operand");
        bool known = false;
        for (int s : env.rotationSteps())
            known |= s == op.steps;
        if (!known || op.steps == 0)
            return fail("rotation step has no key");
        out = *a;
        return true;
      }
      case GenKind::Conjugate: {
        if (!a)
            return fail("missing operand");
        out = *a;
        return true;
      }
      case GenKind::LevelDrop: {
        if (!a)
            return fail("missing operand");
        if (a->level < 2)
            return fail("levelDrop needs two towers");
        // The scale is unchanged but the modulus product shrinks:
        // the message must still fit under the smaller capacity, or
        // the plaintext wraps mod Q and decrypts to garbage.
        if (!fitsCapacity(env, a->level - 1, a->scale, a->mag))
            return fail("levelDrop would overflow reduced capacity");
        out = {a->level - 1, a->scale, a->mag, a->poisoned};
        return true;
      }
      case GenKind::ModRaise: {
        if (!a)
            return fail("missing operand");
        if (static_cast<unsigned>(op.level) <= a->level ||
            static_cast<unsigned>(op.level) > env.lMax())
            return fail("modRaise target must exceed current level");
        // Decrypt becomes m + k·q0: value is unpredictable from the
        // slot model, so everything downstream is poisoned.
        out = {static_cast<unsigned>(op.level), a->scale, a->mag, true};
        return true;
      }
      case GenKind::Output: {
        if (!a)
            return fail("missing operand");
        out = *a;
        return true;
      }
    }
    return fail("unknown op kind");
}

} // namespace

const char *
genKindName(GenKind k)
{
    switch (k) {
      case GenKind::Input: return "input";
      case GenKind::Add: return "add";
      case GenKind::Sub: return "sub";
      case GenKind::AddPlain: return "addPlain";
      case GenKind::SubPlain: return "subPlain";
      case GenKind::MulPlain: return "mulPlain";
      case GenKind::Mul: return "mul";
      case GenKind::Rescale: return "rescale";
      case GenKind::Rotate: return "rotate";
      case GenKind::Conjugate: return "conjugate";
      case GenKind::LevelDrop: return "levelDrop";
      case GenKind::ModRaise: return "modRaise";
      case GenKind::Output: return "output";
    }
    return "?";
}

bool
GenProgram::hasModRaise() const
{
    return countKind(GenKind::ModRaise) > 0;
}

std::size_t
GenProgram::countKind(GenKind k) const
{
    std::size_t c = 0;
    for (const GenOp &op : ops)
        c += op.kind == k ? 1 : 0;
    return c;
}

FuzzEnv::FuzzEnv(const CkksParams &params)
    : steps_({1, 2, 3, 5, 8, -1, -4})
{
    ctx_ = std::make_unique<CkksContext>(params);
    encoder_ = std::make_unique<CkksEncoder>(*ctx_);
    keygen_ = std::make_unique<KeyGenerator>(*ctx_);
    evaluator_ = std::make_unique<Evaluator>(*ctx_);
    pk_ = keygen_->genPublicKey();
    relin_ = keygen_->genRelinKey();
    galois_ = keygen_->genRotationKeys(steps_, /*conjugate=*/true);
}

double
FuzzEnv::capacityBits(unsigned level) const
{
    double bits = 0;
    for (unsigned t = 0; t < level; ++t)
        bits += std::log2(static_cast<double>(ctx_->chain().modulus(t)));
    return bits;
}

double
FuzzEnv::lastModulus(unsigned level) const
{
    return static_cast<double>(ctx_->chain().modulus(level - 1));
}

std::optional<std::vector<TrackedValue>>
checkLegal(const FuzzEnv &env, const GenProgram &prog, std::string *why)
{
    std::vector<TrackedValue> vals;
    vals.reserve(prog.ops.size());
    for (std::size_t i = 0; i < prog.ops.size(); ++i) {
        const GenOp &op = prog.ops[i];
        if ((op.a >= 0 && static_cast<std::size_t>(op.a) >= i) ||
            (op.b >= 0 && static_cast<std::size_t>(op.b) >= i) ||
            (op.scaleOf >= 0 && static_cast<std::size_t>(op.scaleOf) >= i)) {
            if (why)
                *why = "op " + std::to_string(i) +
                       " references a later op";
            return std::nullopt;
        }
        TrackedValue out;
        std::string reason;
        if (!applyOp(env, op, vals, out, &reason)) {
            if (why)
                *why = "op " + std::to_string(i) + " (" +
                       genKindName(op.kind) + "): " + reason;
            return std::nullopt;
        }
        vals.push_back(out);
    }
    return vals;
}

GenProgram
generateProgram(const FuzzEnv &env, const FuzzConfig &cfg,
                std::uint64_t seed)
{
    CL_ASSERT(cfg.weights.size() ==
                  static_cast<std::size_t>(GenKind::Output),
              "weights must cover Input..ModRaise");
    FastRng rng(seed ^ 0x66757a7aULL); // "fuzz"

    GenProgram prog;
    prog.seed = seed;
    std::vector<TrackedValue> vals;

    auto push = [&](GenOp op) {
        TrackedValue out;
        const bool ok = applyOp(env, op, vals, out, nullptr);
        CL_ASSERT(ok, "generator produced an illegal op");
        prog.ops.push_back(op);
        vals.push_back(out);
        return static_cast<int>(prog.ops.size()) - 1;
    };

    // Seed inputs at the top level and context scale.
    const unsigned n_inputs = std::max(1u, cfg.inputs);
    for (unsigned i = 0; i < n_inputs; ++i) {
        GenOp op;
        op.kind = GenKind::Input;
        op.level = static_cast<int>(env.lMax());
        op.valueSeed = rng.next64();
        push(op);
    }

    // Live set: ops that may still be consumed. Everything stays
    // live (DAG reuse is allowed and desirable); "live" here only
    // means "a value exists for this index".
    auto pick_live = [&]() {
        return static_cast<int>(rng.nextBelow(vals.size()));
    };
    /** A partner for `a` with equal level and bit-identical scale, or
     *  -1 if none exists. */
    auto pick_partner = [&](int a) {
        std::vector<int> cands;
        for (std::size_t j = 0; j < vals.size(); ++j) {
            if (vals[j].level == vals[a].level &&
                vals[j].scale == vals[a].scale)
                cands.push_back(static_cast<int>(j));
        }
        if (cands.empty())
            return -1;
        return cands[rng.nextBelow(cands.size())];
    };

    std::uint64_t total_weight = 0;
    for (unsigned w : cfg.weights)
        total_weight += w;
    CL_ASSERT(total_weight > 0, "all op weights are zero");

    unsigned emitted = 0;
    unsigned attempts = 0;
    const unsigned max_attempts = cfg.maxOps * 20;
    while (emitted < cfg.maxOps && attempts < max_attempts) {
        ++attempts;
        // Weighted kind draw.
        std::uint64_t r = rng.nextBelow(total_weight);
        unsigned kind_idx = 0;
        while (r >= cfg.weights[kind_idx]) {
            r -= cfg.weights[kind_idx];
            ++kind_idx;
        }
        const GenKind kind = static_cast<GenKind>(kind_idx);
        if (kind == GenKind::ModRaise && !cfg.allowModRaise)
            continue;

        GenOp op;
        op.kind = kind;
        op.a = pick_live();
        switch (kind) {
          case GenKind::Add:
          case GenKind::Sub: {
            op.b = pick_partner(op.a);
            if (op.b < 0) {
                // No equal-scale partner: encrypt a fresh input at
                // the operand's exact level and scale so the pair is
                // legal by construction.
                GenOp in;
                in.kind = GenKind::Input;
                in.level = static_cast<int>(vals[op.a].level);
                in.scaleOf = op.a;
                in.valueSeed = rng.next64();
                TrackedValue probe;
                if (!applyOp(env, in, vals, probe, nullptr))
                    continue;
                op.b = push(in);
                ++emitted;
            }
            break;
          }
          case GenKind::Mul: {
            // Any same-level partner works; scales need not match.
            std::vector<int> cands;
            for (std::size_t j = 0; j < vals.size(); ++j)
                if (vals[j].level == vals[op.a].level)
                    cands.push_back(static_cast<int>(j));
            op.b = cands[rng.nextBelow(cands.size())];
            break;
          }
          case GenKind::AddPlain:
          case GenKind::SubPlain:
          case GenKind::MulPlain:
            op.valueSeed = rng.next64();
            break;
          case GenKind::Rotate: {
            const auto &steps = env.rotationSteps();
            op.steps = steps[rng.nextBelow(steps.size())];
            break;
          }
          case GenKind::ModRaise:
            op.level = static_cast<int>(env.lMax());
            break;
          default:
            break;
        }

        TrackedValue probe;
        if (!applyOp(env, op, vals, probe, nullptr))
            continue; // illegal in this state; redraw
        push(op);
        ++emitted;
    }

    // Sink every op that nothing consumed, so all dataflow reaches an
    // output and the lowering keeps it.
    std::vector<bool> consumed(prog.ops.size(), false);
    for (const GenOp &op : prog.ops) {
        if (op.a >= 0)
            consumed[op.a] = true;
        if (op.b >= 0)
            consumed[op.b] = true;
    }
    const std::size_t pre_output = prog.ops.size();
    for (std::size_t i = 0; i < pre_output; ++i) {
        if (consumed[i])
            continue;
        GenOp out;
        out.kind = GenKind::Output;
        out.a = static_cast<int>(i);
        push(out);
    }
    return prog;
}

} // namespace cl

/**
 * @file
 * The three-way differential oracle (see fuzzer.h for the contract).
 *
 * Counter discipline: all encode/encrypt work happens before the
 * counters are reset, so the OpCounter-vs-instrumentation comparison
 * covers exactly the Evaluator calls the program performs — a charge
 * missing from any Evaluator method, or real kernel work an Evaluator
 * method performs without charging, shows up as an exact-count diff.
 */

#include "fuzz/fuzzer.h"

#include <cmath>
#include <sstream>

#include "compiler/lower.h"
#include "util/instrument.h"
#include "verify/verifier.h"

namespace cl {

namespace {

/** Random complex slot values with |re|,|im| <= 1 (|z| <= sqrt(2),
 *  inside the generator's 1.5 magnitude bound). */
std::vector<Complex>
slotValues(std::uint64_t seed, std::size_t slots)
{
    FastRng rng(seed);
    std::vector<Complex> v(slots);
    for (auto &z : v)
        z = Complex(rng.nextDouble() * 2 - 1, rng.nextDouble() * 2 - 1);
    return v;
}

std::string
describeCounterDiff(const OpCounter &model, const KernelCounts &meas)
{
    std::ostringstream os;
    os << "OpCounter/instrumentation mismatch:"
       << " polyMults " << model.polyMults << " vs " << meas.mults
       << ", polyAdds " << model.polyAdds << " vs " << meas.adds
       << ", ntts " << model.ntts << " vs " << meas.ntts
       << ", automorphisms " << model.automorphisms << " vs "
       << meas.automorphisms;
    return os.str();
}

} // namespace

OracleResult
runOracle(const FuzzEnv &env, const GenProgram &prog,
          const OracleOptions &opts)
{
    OracleResult res;
    std::string why;
    const auto tracked = checkLegal(env, prog, &why);
    if (!tracked) {
        res.ok = false;
        res.failure = "illegal program: " + why;
        return res;
    }

    const CkksContext &ctx = env.ctx();
    const CkksEncoder &enc = env.encoder();
    const Evaluator &eval = env.evaluator();
    const std::size_t slots = ctx.slots();
    const bool mod_raise = prog.hasModRaise();

    // ---- Stage 0: pre-encode plaintexts and pre-encrypt inputs (all
    //      the work the counter cross-check must NOT see). ----
    Encryptor encryptor(ctx, env.publicKey(), prog.seed ^ 0x656e63ULL);
    Decryptor decryptor(ctx, env.secretKey());
    std::vector<Ciphertext> cts(prog.ops.size());
    std::vector<RnsPoly> plains;
    std::vector<int> plainOf(prog.ops.size(), -1);
    std::vector<std::vector<Complex>> clear(prog.ops.size());

    for (std::size_t i = 0; i < prog.ops.size(); ++i) {
        const GenOp &op = prog.ops[i];
        const TrackedValue &tv = (*tracked)[i];
        switch (op.kind) {
          case GenKind::Input: {
            clear[i] = slotValues(op.valueSeed, slots);
            RnsPoly pt = enc.encode(clear[i], tv.scale, tv.level);
            cts[i] = encryptor.encrypt(pt, tv.scale);
            break;
          }
          case GenKind::AddPlain:
          case GenKind::SubPlain: {
            // Encoded at the operand's exact level and scale so the
            // scale-checked addPlain overload accepts it.
            const TrackedValue &av = (*tracked)[op.a];
            plainOf[i] = static_cast<int>(plains.size());
            plains.push_back(enc.encode(slotValues(op.valueSeed, slots),
                                        av.scale, av.level));
            break;
          }
          case GenKind::MulPlain: {
            const TrackedValue &av = (*tracked)[op.a];
            plainOf[i] = static_cast<int>(plains.size());
            plains.push_back(enc.encode(slotValues(op.valueSeed, slots),
                                        env.contextScale(), av.level));
            break;
          }
          default:
            break;
        }
    }

    // ---- Stage 1: execute through the Evaluator between counter
    //      snapshots; cross-check level/scale after every op. ----
    ctx.ops().reset();
    kernelCounters().reset();

    auto fail_at = [&](std::size_t i, const std::string &msg) {
        res.ok = false;
        res.failOp = static_cast<int>(i);
        res.failKind = prog.ops[i].kind;
        res.failure = "op " + std::to_string(i) + " (" +
                      genKindName(prog.ops[i].kind) + "): " + msg;
    };

    for (std::size_t i = 0; i < prog.ops.size() && res.ok; ++i) {
        const GenOp &op = prog.ops[i];
        const TrackedValue &tv = (*tracked)[i];
        switch (op.kind) {
          case GenKind::Input:
            break; // pre-encrypted
          case GenKind::Add:
            cts[i] = eval.add(cts[op.a], cts[op.b]);
            for (std::size_t s = 0; s < slots; ++s)
                clear[i].push_back(clear[op.a][s] + clear[op.b][s]);
            break;
          case GenKind::Sub:
            cts[i] = eval.sub(cts[op.a], cts[op.b]);
            for (std::size_t s = 0; s < slots; ++s)
                clear[i].push_back(clear[op.a][s] - clear[op.b][s]);
            break;
          case GenKind::AddPlain: {
            const auto pv = slotValues(op.valueSeed, slots);
            cts[i] = eval.addPlain(cts[op.a], plains[plainOf[i]],
                                   (*tracked)[op.a].scale);
            for (std::size_t s = 0; s < slots; ++s)
                clear[i].push_back(clear[op.a][s] + pv[s]);
            break;
          }
          case GenKind::SubPlain: {
            const auto pv = slotValues(op.valueSeed, slots);
            cts[i] = eval.subPlain(cts[op.a], plains[plainOf[i]],
                                   (*tracked)[op.a].scale);
            for (std::size_t s = 0; s < slots; ++s)
                clear[i].push_back(clear[op.a][s] - pv[s]);
            break;
          }
          case GenKind::MulPlain: {
            const auto pv = slotValues(op.valueSeed, slots);
            cts[i] = eval.mulPlain(cts[op.a], plains[plainOf[i]],
                                   env.contextScale());
            for (std::size_t s = 0; s < slots; ++s)
                clear[i].push_back(clear[op.a][s] * pv[s]);
            break;
          }
          case GenKind::Mul:
            cts[i] = eval.multiply(cts[op.a], cts[op.b], env.relinKey());
            for (std::size_t s = 0; s < slots; ++s)
                clear[i].push_back(clear[op.a][s] * clear[op.b][s]);
            break;
          case GenKind::Rescale:
            cts[i] = cts[op.a];
            eval.rescale(cts[i]);
            clear[i] = clear[op.a];
            break;
          case GenKind::Rotate: {
            cts[i] = eval.rotate(cts[op.a], op.steps, env.galoisKeys());
            const long n = static_cast<long>(slots);
            for (long s = 0; s < n; ++s)
                clear[i].push_back(
                    clear[op.a][(s + n + op.steps) % n]);
            break;
          }
          case GenKind::Conjugate:
            cts[i] = eval.conjugate(cts[op.a], env.galoisKeys());
            for (std::size_t s = 0; s < slots; ++s)
                clear[i].push_back(std::conj(clear[op.a][s]));
            break;
          case GenKind::LevelDrop:
            cts[i] = cts[op.a];
            eval.levelDrop(cts[i], tv.level);
            clear[i] = clear[op.a];
            break;
          case GenKind::ModRaise:
            cts[i] = eval.modRaise(cts[op.a], tv.level);
            clear[i] = clear[op.a]; // poisoned; never value-checked
            break;
          case GenKind::Output:
            cts[i] = cts[op.a];
            clear[i] = clear[op.a];
            break;
        }
        if (op.kind == GenKind::Input || op.kind == GenKind::Output)
            continue;
        if (cts[i].level() != tv.level) {
            fail_at(i, "level tracking mismatch: evaluator " +
                           std::to_string(cts[i].level()) +
                           ", tracker " + std::to_string(tv.level));
        } else if (cts[i].scale != tv.scale) {
            std::ostringstream os;
            os.precision(17);
            os << "scale tracking mismatch: evaluator " << cts[i].scale
               << ", tracker " << tv.scale;
            fail_at(i, os.str());
        }
    }

    const OpCounter model = ctx.ops();
    const KernelCounts meas = kernelCounters().snapshot();
    if (res.ok && (model.polyMults != meas.mults ||
                   model.polyAdds != meas.adds ||
                   model.ntts != meas.ntts ||
                   model.automorphisms != meas.automorphisms)) {
        res.ok = false;
        res.failure = describeCounterDiff(model, meas);
    }

    // ---- Stage 2 (leg a): decrypt every output and bound the error
    //      against the cleartext slot model. ModRaise programs skip
    //      this (decrypt is m + k·q0 by design). ----
    if (res.ok && opts.functional && !mod_raise) {
        res.functionalRan = true;
        for (std::size_t i = 0; i < prog.ops.size() && res.ok; ++i) {
            if (prog.ops[i].kind != GenKind::Output)
                continue;
            const Ciphertext &ct = cts[i];
            const auto got =
                enc.decode(decryptor.decrypt(ct), ct.scale);
            double err = 0;
            for (std::size_t s = 0; s < slots; ++s)
                err = std::max(err, std::abs(got[s] - clear[i][s]));
            res.maxError = std::max(res.maxError, err);
            const double tol = opts.tolScale * 1e-2 *
                               std::max(1.0, (*tracked)[i].mag);
            if (err > tol) {
                std::ostringstream os;
                os << "decrypt error " << err << " exceeds bound "
                   << tol;
                fail_at(i, os.str());
            }
        }
    }

    // ---- Stage 3 (leg c): lower, simulate, verify. ----
    if (res.ok && opts.structural) {
        HomBuilder builder("fuzz", ctx.params().logN, env.lMax());
        std::vector<HomBuilder::Ct> hct(prog.ops.size());
        for (std::size_t i = 0; i < prog.ops.size() && res.ok; ++i) {
            const GenOp &op = prog.ops[i];
            const std::string pid = "p" + std::to_string(i);
            switch (op.kind) {
              case GenKind::Input:
                hct[i] = builder.input((*tracked)[i].level);
                break;
              case GenKind::Add:
              case GenKind::Sub:
                // Sub lowers as Add: one elementwise pass, identical
                // instruction shape and cost.
                hct[i] = builder.add(hct[op.a], hct[op.b]);
                break;
              case GenKind::AddPlain:
              case GenKind::SubPlain:
                hct[i] = builder.addPlain(hct[op.a], pid);
                break;
              case GenKind::MulPlain:
                hct[i] = builder.mulPlain(hct[op.a], pid, 0);
                break;
              case GenKind::Mul:
                hct[i] = builder.mul(hct[op.a], hct[op.b], 0);
                break;
              case GenKind::Rescale:
                hct[i] = builder.rescale(hct[op.a], 1);
                break;
              case GenKind::Rotate:
                hct[i] = builder.rotate(hct[op.a], op.steps);
                break;
              case GenKind::Conjugate:
                hct[i] = builder.conjugate(hct[op.a]);
                break;
              case GenKind::LevelDrop:
                hct[i] = builder.levelDrop(hct[op.a],
                                           (*tracked)[i].level);
                break;
              case GenKind::ModRaise:
                hct[i] = builder.modRaise(hct[op.a],
                                          (*tracked)[i].level);
                break;
              case GenKind::Output:
                builder.output(hct[op.a]);
                hct[i] = hct[op.a];
                break;
            }
            if (hct[i].level != (*tracked)[i].level) {
                fail_at(i, "compiler level mismatch: builder " +
                               std::to_string(hct[i].level) +
                               ", tracker " +
                               std::to_string((*tracked)[i].level));
            }
        }

        if (res.ok) {
            const HomProgram hp = builder.take();
            // Op conservation: every Mul/Rotate/Conjugate is exactly
            // one keyswitch, nothing else keyswitches.
            const std::uint64_t want_ksw =
                hp.countKind(HomOpKind::Mul) +
                hp.countKind(HomOpKind::Rotate) +
                hp.countKind(HomOpKind::Conjugate);
            for (const std::string &name : opts.chipConfigs) {
                const ChipConfig cfg = ChipConfig::byName(name);
                for (ScheduleMode mode : opts.scheduleModes) {
                    const std::string where =
                        name + "/" + scheduleModeName(mode);
                    Lowering lowering(cfg, mode);
                    const Program vp = lowering.lower(hp);
                    if (lowering.stats().keyswitches != want_ksw) {
                        res.ok = false;
                        res.failure =
                            "keyswitch conservation failed on " +
                            where + ": lowered " +
                            std::to_string(
                                lowering.stats().keyswitches) +
                            ", program has " +
                            std::to_string(want_ksw);
                        break;
                    }
                    SimStats stats;
                    const VerifyReport report =
                        verifySchedule(cfg, vp, &stats);
                    res.simCycles =
                        std::max(res.simCycles, stats.cycles);
                    if (!report.ok()) {
                        res.ok = false;
                        res.failure =
                            "schedule verification failed on " +
                            where + ": " + report.summary(4);
                        break;
                    }
                }
                if (!res.ok)
                    break;
            }
        }
    }

    return res;
}

} // namespace cl

/**
 * @file
 * The three-way differential oracle (see fuzzer.h for the contract).
 *
 * Counter discipline: all encode/encrypt work happens before the
 * counters are reset, so the OpCounter-vs-instrumentation comparison
 * covers exactly the Evaluator calls the program performs — a charge
 * missing from any Evaluator method, or real kernel work an Evaluator
 * method performs without charging, shows up as an exact-count diff.
 */

#include "fuzz/fuzzer.h"

#include <cmath>
#include <sstream>

#include "compiler/lower.h"
#include "util/instrument.h"
#include "verify/verifier.h"

namespace cl {

namespace {

/** Random complex slot values with |re|,|im| <= 1 (|z| <= sqrt(2),
 *  inside the generator's 1.5 magnitude bound). */
std::vector<Complex>
slotValues(std::uint64_t seed, std::size_t slots)
{
    FastRng rng(seed);
    std::vector<Complex> v(slots);
    for (auto &z : v)
        z = Complex(rng.nextDouble() * 2 - 1, rng.nextDouble() * 2 - 1);
    return v;
}

std::string
describeCounterDiff(const OpCounter &model, const KernelCounts &meas)
{
    std::ostringstream os;
    os << "OpCounter/instrumentation mismatch:"
       << " polyMults " << model.polyMults << " vs " << meas.mults
       << ", polyAdds " << model.polyAdds << " vs " << meas.adds
       << ", ntts " << model.ntts << " vs " << meas.ntts
       << ", automorphisms " << model.automorphisms << " vs "
       << meas.automorphisms;
    return os.str();
}

/** Relative task weight of one op (mirrors homOpWeight): heights
 *  steer the graph ready queue, they never change what runs. */
std::uint64_t
genOpWeight(GenKind k)
{
    switch (k) {
    case GenKind::Mul:
        return 12;
    case GenKind::Rotate:
    case GenKind::Conjugate:
        return 10;
    case GenKind::ModRaise:
        return 6;
    case GenKind::Rescale:
    case GenKind::MulPlain:
        return 3;
    default:
        return 1;
    }
}

bool
polyEqual(const RnsPoly &a, const RnsPoly &b)
{
    return a.towers() == b.towers() && a.modIdx() == b.modIdx() &&
           a.isNtt() == b.isNtt() && a.data() == b.data();
}

bool
ctEqual(const Ciphertext &a, const Ciphertext &b)
{
    return a.scale == b.scale && polyEqual(a.c0, b.c0) &&
           polyEqual(a.c1, b.c1);
}

} // namespace

OracleResult
runOracle(const FuzzEnv &env, const GenProgram &prog,
          const OracleOptions &opts)
{
    OracleResult res;
    std::string why;
    const auto tracked = checkLegal(env, prog, &why);
    if (!tracked) {
        res.ok = false;
        res.failure = "illegal program: " + why;
        return res;
    }

    const CkksContext &ctx = env.ctx();
    const CkksEncoder &enc = env.encoder();
    const Evaluator &eval = env.evaluator();
    const std::size_t slots = ctx.slots();
    const bool mod_raise = prog.hasModRaise();

    // ---- Stage 0: pre-encode plaintexts and pre-encrypt inputs (all
    //      the work the counter cross-check must NOT see). ----
    Encryptor encryptor(ctx, env.publicKey(), prog.seed ^ 0x656e63ULL);
    Decryptor decryptor(ctx, env.secretKey());
    std::vector<Ciphertext> cts(prog.ops.size());
    std::vector<RnsPoly> plains;
    std::vector<int> plainOf(prog.ops.size(), -1);
    std::vector<std::vector<Complex>> clear(prog.ops.size());

    for (std::size_t i = 0; i < prog.ops.size(); ++i) {
        const GenOp &op = prog.ops[i];
        const TrackedValue &tv = (*tracked)[i];
        switch (op.kind) {
          case GenKind::Input: {
            clear[i] = slotValues(op.valueSeed, slots);
            RnsPoly pt = enc.encode(clear[i], tv.scale, tv.level);
            cts[i] = encryptor.encrypt(pt, tv.scale);
            break;
          }
          case GenKind::AddPlain:
          case GenKind::SubPlain: {
            // Encoded at the operand's exact level and scale so the
            // scale-checked addPlain overload accepts it.
            const TrackedValue &av = (*tracked)[op.a];
            plainOf[i] = static_cast<int>(plains.size());
            plains.push_back(enc.encode(slotValues(op.valueSeed, slots),
                                        av.scale, av.level));
            break;
          }
          case GenKind::MulPlain: {
            const TrackedValue &av = (*tracked)[op.a];
            plainOf[i] = static_cast<int>(plains.size());
            plains.push_back(enc.encode(slotValues(op.valueSeed, slots),
                                        env.contextScale(), av.level));
            break;
          }
          default:
            break;
        }
    }

    // ---- Stage 1: execute through the Evaluator between counter
    //      snapshots; cross-check level/scale after every op. Every
    //      requested execution mode runs the whole program between its
    //      own snapshots; later modes must reproduce the first mode's
    //      ciphertext bits and counter totals exactly. ----
    auto fail_at = [&](std::size_t i, const std::string &msg) {
        res.ok = false;
        res.failOp = static_cast<int>(i);
        res.failKind = prog.ops[i].kind;
        res.failure = "op " + std::to_string(i) + " (" +
                      genKindName(prog.ops[i].kind) + "): " + msg;
    };

    // Ciphertext leg for one op, into an arbitrary result vector.
    // Safe to run concurrently for independent i: each call writes
    // only out[i] and reads retired operands (plains are read-only).
    auto execCipher = [&](std::vector<Ciphertext> &out, std::size_t i) {
        const GenOp &op = prog.ops[i];
        switch (op.kind) {
          case GenKind::Input:
            break; // pre-encrypted in stage 0
          case GenKind::Add:
            out[i] = eval.add(out[op.a], out[op.b]);
            break;
          case GenKind::Sub:
            out[i] = eval.sub(out[op.a], out[op.b]);
            break;
          case GenKind::AddPlain:
            out[i] = eval.addPlain(out[op.a], plains[plainOf[i]],
                                   (*tracked)[op.a].scale);
            break;
          case GenKind::SubPlain:
            out[i] = eval.subPlain(out[op.a], plains[plainOf[i]],
                                   (*tracked)[op.a].scale);
            break;
          case GenKind::MulPlain:
            out[i] = eval.mulPlain(out[op.a], plains[plainOf[i]],
                                   env.contextScale());
            break;
          case GenKind::Mul:
            out[i] = eval.multiply(out[op.a], out[op.b], env.relinKey());
            break;
          case GenKind::Rescale:
            out[i] = out[op.a];
            eval.rescale(out[i]);
            break;
          case GenKind::Rotate:
            out[i] = eval.rotate(out[op.a], op.steps, env.galoisKeys());
            break;
          case GenKind::Conjugate:
            out[i] = eval.conjugate(out[op.a], env.galoisKeys());
            break;
          case GenKind::LevelDrop:
            out[i] = out[op.a];
            eval.levelDrop(out[i], (*tracked)[i].level);
            break;
          case GenKind::ModRaise:
            out[i] = eval.modRaise(out[op.a], (*tracked)[i].level);
            break;
          case GenKind::Output:
            out[i] = out[op.a];
            break;
        }
    };

    // The cleartext slot model is execution-mode-independent: run it
    // once, serially (Input slots were filled in stage 0).
    for (std::size_t i = 0; i < prog.ops.size(); ++i) {
        const GenOp &op = prog.ops[i];
        switch (op.kind) {
          case GenKind::Input:
            break;
          case GenKind::Add:
            for (std::size_t s = 0; s < slots; ++s)
                clear[i].push_back(clear[op.a][s] + clear[op.b][s]);
            break;
          case GenKind::Sub:
            for (std::size_t s = 0; s < slots; ++s)
                clear[i].push_back(clear[op.a][s] - clear[op.b][s]);
            break;
          case GenKind::AddPlain: {
            const auto pv = slotValues(op.valueSeed, slots);
            for (std::size_t s = 0; s < slots; ++s)
                clear[i].push_back(clear[op.a][s] + pv[s]);
            break;
          }
          case GenKind::SubPlain: {
            const auto pv = slotValues(op.valueSeed, slots);
            for (std::size_t s = 0; s < slots; ++s)
                clear[i].push_back(clear[op.a][s] - pv[s]);
            break;
          }
          case GenKind::MulPlain: {
            const auto pv = slotValues(op.valueSeed, slots);
            for (std::size_t s = 0; s < slots; ++s)
                clear[i].push_back(clear[op.a][s] * pv[s]);
            break;
          }
          case GenKind::Mul:
            for (std::size_t s = 0; s < slots; ++s)
                clear[i].push_back(clear[op.a][s] * clear[op.b][s]);
            break;
          case GenKind::Rotate: {
            const long n = static_cast<long>(slots);
            for (long s = 0; s < n; ++s)
                clear[i].push_back(
                    clear[op.a][(s + n + op.steps) % n]);
            break;
          }
          case GenKind::Conjugate:
            for (std::size_t s = 0; s < slots; ++s)
                clear[i].push_back(std::conj(clear[op.a][s]));
            break;
          case GenKind::Rescale:
          case GenKind::LevelDrop:
          case GenKind::Output:
            clear[i] = clear[op.a];
            break;
          case GenKind::ModRaise:
            clear[i] = clear[op.a]; // poisoned; never value-checked
            break;
        }
    }

    OpCounter refModel; // first mode's totals, for cross-mode checks
    for (std::size_t m = 0; m < opts.execModes.size() && res.ok; ++m) {
        const ExecMode mode = opts.execModes[m];
        // First mode executes straight into cts (whose Input entries
        // stage 0 filled); later modes get a fresh vector seeded with
        // the same inputs and are diffed against cts afterwards.
        std::vector<Ciphertext> alt;
        if (m > 0) {
            alt.resize(prog.ops.size());
            for (std::size_t i = 0; i < prog.ops.size(); ++i)
                if (prog.ops[i].kind == GenKind::Input)
                    alt[i] = cts[i];
        }
        std::vector<Ciphertext> &out = m == 0 ? cts : alt;

        ctx.ops().reset();
        kernelCounters().reset();
        if (mode == ExecMode::Serial) {
            for (std::size_t i = 0; i < prog.ops.size(); ++i)
                execCipher(out, i);
        } else {
            TaskGraph g;
            for (std::size_t i = 0; i < prog.ops.size(); ++i) {
                const GenOp &op = prog.ops[i];
                std::vector<TaskGraph::TaskId> deps;
                if (op.a >= 0)
                    deps.push_back(static_cast<TaskGraph::TaskId>(op.a));
                if (op.b >= 0)
                    deps.push_back(static_cast<TaskGraph::TaskId>(op.b));
                g.add([&out, &execCipher, i] { execCipher(out, i); },
                      std::move(deps), genOpWeight(op.kind));
            }
            g.run(mode);
        }
        const OpCounter model = ctx.ops();
        const KernelCounts meas = kernelCounters().snapshot();

        // Post-hoc per-op checks (results are final once a task
        // retires, so checking after the run is equivalent to the old
        // inline checks and stays off the workers' hot path).
        for (std::size_t i = 0; i < prog.ops.size() && res.ok; ++i) {
            const GenOp &op = prog.ops[i];
            const TrackedValue &tv = (*tracked)[i];
            if (op.kind == GenKind::Input || op.kind == GenKind::Output)
                continue;
            if (out[i].level() != tv.level) {
                fail_at(i, "level tracking mismatch: evaluator " +
                               std::to_string(out[i].level()) +
                               ", tracker " + std::to_string(tv.level));
            } else if (out[i].scale != tv.scale) {
                std::ostringstream os;
                os.precision(17);
                os << "scale tracking mismatch: evaluator "
                   << out[i].scale << ", tracker " << tv.scale;
                fail_at(i, os.str());
            }
        }
        if (res.ok && (model.polyMults != meas.mults ||
                       model.polyAdds != meas.adds ||
                       model.ntts != meas.ntts ||
                       model.automorphisms != meas.automorphisms)) {
            res.ok = false;
            res.failure = describeCounterDiff(model, meas);
        }

        if (m == 0) {
            refModel = model;
            continue;
        }
        for (std::size_t i = 0; i < prog.ops.size() && res.ok; ++i) {
            if (!ctEqual(out[i], cts[i]))
                fail_at(i, std::string("exec divergence: ") +
                               execModeName(mode) +
                               " ciphertext differs from " +
                               execModeName(opts.execModes[0]));
        }
        if (res.ok &&
            (model.polyMults != refModel.polyMults ||
             model.polyAdds != refModel.polyAdds ||
             model.ntts != refModel.ntts ||
             model.automorphisms != refModel.automorphisms ||
             model.decomposes != refModel.decomposes ||
             model.innerProducts != refModel.innerProducts ||
             model.modDowns != refModel.modDowns)) {
            res.ok = false;
            res.failure =
                std::string("exec counter divergence: ") +
                execModeName(mode) + " charged different totals than " +
                execModeName(opts.execModes[0]);
        }
    }

    // ---- Stage 2 (leg a): decrypt every output and bound the error
    //      against the cleartext slot model. ModRaise programs skip
    //      this (decrypt is m + k·q0 by design). ----
    if (res.ok && opts.functional && !mod_raise) {
        res.functionalRan = true;
        for (std::size_t i = 0; i < prog.ops.size() && res.ok; ++i) {
            if (prog.ops[i].kind != GenKind::Output)
                continue;
            const Ciphertext &ct = cts[i];
            const auto got =
                enc.decode(decryptor.decrypt(ct), ct.scale);
            double err = 0;
            for (std::size_t s = 0; s < slots; ++s)
                err = std::max(err, std::abs(got[s] - clear[i][s]));
            res.maxError = std::max(res.maxError, err);
            const double tol = opts.tolScale * 1e-2 *
                               std::max(1.0, (*tracked)[i].mag);
            if (err > tol) {
                std::ostringstream os;
                os << "decrypt error " << err << " exceeds bound "
                   << tol;
                fail_at(i, os.str());
            }
        }
    }

    // ---- Stage 3 (leg c): lower, simulate, verify. ----
    if (res.ok && opts.structural) {
        HomBuilder builder("fuzz", ctx.params().logN, env.lMax());
        std::vector<HomBuilder::Ct> hct(prog.ops.size());
        for (std::size_t i = 0; i < prog.ops.size() && res.ok; ++i) {
            const GenOp &op = prog.ops[i];
            const std::string pid = "p" + std::to_string(i);
            switch (op.kind) {
              case GenKind::Input:
                hct[i] = builder.input((*tracked)[i].level);
                break;
              case GenKind::Add:
              case GenKind::Sub:
                // Sub lowers as Add: one elementwise pass, identical
                // instruction shape and cost.
                hct[i] = builder.add(hct[op.a], hct[op.b]);
                break;
              case GenKind::AddPlain:
              case GenKind::SubPlain:
                hct[i] = builder.addPlain(hct[op.a], pid);
                break;
              case GenKind::MulPlain:
                hct[i] = builder.mulPlain(hct[op.a], pid, 0);
                break;
              case GenKind::Mul:
                hct[i] = builder.mul(hct[op.a], hct[op.b], 0);
                break;
              case GenKind::Rescale:
                hct[i] = builder.rescale(hct[op.a], 1);
                break;
              case GenKind::Rotate:
                hct[i] = builder.rotate(hct[op.a], op.steps);
                break;
              case GenKind::Conjugate:
                hct[i] = builder.conjugate(hct[op.a]);
                break;
              case GenKind::LevelDrop:
                hct[i] = builder.levelDrop(hct[op.a],
                                           (*tracked)[i].level);
                break;
              case GenKind::ModRaise:
                hct[i] = builder.modRaise(hct[op.a],
                                          (*tracked)[i].level);
                break;
              case GenKind::Output:
                builder.output(hct[op.a]);
                hct[i] = hct[op.a];
                break;
            }
            if (hct[i].level != (*tracked)[i].level) {
                fail_at(i, "compiler level mismatch: builder " +
                               std::to_string(hct[i].level) +
                               ", tracker " +
                               std::to_string((*tracked)[i].level));
            }
        }

        if (res.ok) {
            const HomProgram hp = builder.take();
            // Op conservation: every Mul/Rotate/Conjugate is exactly
            // one keyswitch, nothing else keyswitches.
            const std::uint64_t want_ksw =
                hp.countKind(HomOpKind::Mul) +
                hp.countKind(HomOpKind::Rotate) +
                hp.countKind(HomOpKind::Conjugate);
            for (const std::string &name : opts.chipConfigs) {
                const ChipConfig cfg = ChipConfig::byName(name);
                for (ScheduleMode mode : opts.scheduleModes) {
                    const std::string where =
                        name + "/" + scheduleModeName(mode);
                    Lowering lowering(cfg, mode);
                    const Program vp = lowering.lower(hp);
                    if (lowering.stats().keyswitches != want_ksw) {
                        res.ok = false;
                        res.failure =
                            "keyswitch conservation failed on " +
                            where + ": lowered " +
                            std::to_string(
                                lowering.stats().keyswitches) +
                            ", program has " +
                            std::to_string(want_ksw);
                        break;
                    }
                    SimStats stats;
                    const VerifyReport report =
                        verifySchedule(cfg, vp, &stats);
                    res.simCycles =
                        std::max(res.simCycles, stats.cycles);
                    if (!report.ok()) {
                        res.ok = false;
                        res.failure =
                            "schedule verification failed on " +
                            where + ": " + report.summary(4);
                        break;
                    }
                }
                if (!res.ok)
                    break;
            }
        }
    }

    return res;
}

} // namespace cl

/**
 * @file
 * Greedy test-case shrinking. Two move classes, run to a fixed point:
 *
 *  1. drop-op: remove an op together with every transitive dependent;
 *  2. forward-op: replace a non-input op by its first ciphertext
 *     operand (rewiring consumers) and delete it.
 *
 * A candidate survives only if it is still a legal program AND still
 * fails the oracle. Both move classes strictly shrink the op list, so
 * the loop terminates; the scan order is deterministic, so the result
 * is a pure function of the input — minimizing an already-minimal
 * program returns it unchanged.
 */

#include "fuzz/fuzzer.h"

namespace cl {

namespace {

/** Remap operand indices after deletion; drops ops whose operands
 *  were deleted are the caller's responsibility. */
GenProgram
compact(const GenProgram &prog, const std::vector<bool> &keep)
{
    std::vector<int> remap(prog.ops.size(), -1);
    GenProgram out;
    out.seed = prog.seed;
    for (std::size_t i = 0; i < prog.ops.size(); ++i) {
        if (!keep[i])
            continue;
        GenOp op = prog.ops[i];
        if (op.a >= 0)
            op.a = remap[op.a];
        if (op.b >= 0)
            op.b = remap[op.b];
        if (op.scaleOf >= 0)
            op.scaleOf = remap[op.scaleOf];
        remap[i] = static_cast<int>(out.ops.size());
        out.ops.push_back(op);
    }
    return out;
}

/** Delete op @p victim and everything that (transitively) reads it. */
GenProgram
dropWithDependents(const GenProgram &prog, std::size_t victim)
{
    std::vector<bool> keep(prog.ops.size(), true);
    keep[victim] = false;
    for (std::size_t i = victim + 1; i < prog.ops.size(); ++i) {
        const GenOp &op = prog.ops[i];
        const bool dead =
            (op.a >= 0 && !keep[op.a]) || (op.b >= 0 && !keep[op.b]) ||
            (op.scaleOf >= 0 && !keep[op.scaleOf]);
        if (dead)
            keep[i] = false;
    }
    return compact(prog, keep);
}

/** Replace op @p victim by its first ciphertext operand. */
GenProgram
forwardToOperand(const GenProgram &prog, std::size_t victim)
{
    GenProgram out = prog;
    const int target = out.ops[victim].a;
    for (std::size_t i = victim + 1; i < out.ops.size(); ++i) {
        GenOp &op = out.ops[i];
        if (op.a == static_cast<int>(victim))
            op.a = target;
        if (op.b == static_cast<int>(victim))
            op.b = target;
        if (op.scaleOf == static_cast<int>(victim))
            op.scaleOf = target;
    }
    std::vector<bool> keep(out.ops.size(), true);
    keep[victim] = false;
    return compact(out, keep);
}

bool
stillFails(const FuzzEnv &env, const GenProgram &cand,
           const OracleOptions &opts)
{
    if (cand.ops.empty())
        return false;
    if (!checkLegal(env, cand))
        return false;
    return !runOracle(env, cand, opts).ok;
}

} // namespace

GenProgram
minimizeProgram(const FuzzEnv &env, const GenProgram &prog,
                const OracleOptions &opts)
{
    GenProgram cur = prog;
    if (runOracle(env, cur, opts).ok)
        return cur; // nothing to minimize

    bool changed = true;
    while (changed) {
        changed = false;
        // Drop from the back first: later ops have fewer dependents,
        // so more candidates survive and the front shrinks last.
        for (std::size_t i = cur.ops.size(); i-- > 0;) {
            GenProgram cand = dropWithDependents(cur, i);
            if (cand.ops.size() < cur.ops.size() &&
                stillFails(env, cand, opts)) {
                cur = std::move(cand);
                changed = true;
            }
        }
        for (std::size_t i = cur.ops.size(); i-- > 0;) {
            const GenOp &op = cur.ops[i];
            if (op.kind == GenKind::Input ||
                op.kind == GenKind::Output || op.a < 0)
                continue;
            GenProgram cand = forwardToOperand(cur, i);
            if (stillFails(env, cand, opts)) {
                cur = std::move(cand);
                changed = true;
            }
        }
    }
    return cur;
}

} // namespace cl

/**
 * @file
 * Host execution of HomPrograms over the task-graph runtime.
 *
 * The workload generators (src/workloads) emit HomPrograms sized for
 * the accelerator (N = 64K, L = 57); the host library runs the same
 * dataflow at any ring size because the math is size-generic. The
 * runner *projects* a program onto the host context — each op's level
 * is clamped to the context's chain (monotonically, so the builder's
 * level-agreement invariants survive; ops whose level motion clamps
 * away degrade to copies) — then executes every op through the
 * Evaluator, either serially in program order or as a task graph over
 * the dedup'd dependence graph from src/compiler/schedule, one task
 * per op, ready-ordered by critical-path height.
 *
 * Determinism contract (the byte-identity tests pin this): graph and
 * serial execution produce bit-identical ciphertexts at any
 * CL_THREADS / CL_SIMD setting. Each Input op encrypts through its
 * own per-op-seeded Encryptor (a per-task PRNG stream — no shared
 * draw order to race on), plaintexts are pre-encoded before tasks
 * launch, every op writes only its own slot, and scales are forced to
 * the context scale after every op so the projected program never
 * trips the evaluator's scale guards regardless of clamped depth.
 */

#ifndef CL_RUNTIME_HOSTRUN_H
#define CL_RUNTIME_HOSTRUN_H

#include "ckks/bootstrap.h"
#include "compiler/homprogram.h"
#include "runtime/taskgraph.h"

namespace cl {

struct HostRunOptions
{
    ExecMode mode = execModeFromEnv();
    unsigned threads = 0;     ///< Graph workers; 0 = CL_THREADS.
    std::uint64_t seed = 1;   ///< Input/plaintext value material.
};

struct HostRunResult
{
    /** Ciphertexts of the program's Output ops, in program order. */
    std::vector<Ciphertext> outputs;
    /** FNV-1a over every output's level, scale, basis and residue
     *  words — equal iff the outputs are byte-identical. */
    std::uint64_t digest = 0;
    TaskGraphStats stats;
};

/**
 * Executes HomPrograms against one host context. Construction
 * generates the key material the program needs (public, relin, and
 * the rotation/conjugation keys of its projected rotation set);
 * `run` may be called repeatedly and concurrently is *not* required —
 * each run parallelizes internally.
 */
class HostRunner
{
  public:
    HostRunner(const CkksContext &ctx, const CkksEncoder &enc,
               KeyGenerator &keygen, const HomProgram &prog);

    /** Execute @p prog (the one the runner was keyed for, or any
     *  program whose projected rotation set is a subset). */
    HostRunResult run(const HomProgram &prog,
                      const HostRunOptions &opts = {}) const;

  private:
    unsigned effLevel(unsigned level) const;

    const CkksContext &ctx_;
    const CkksEncoder &enc_;
    Evaluator eval_;
    PublicKey pk_;
    SwitchKey relin_;
    GaloisKeys galois_;
};

/** FNV-1a digest of a ciphertext's exact bytes (level, scale, basis
 *  indices, residue words of both components). */
std::uint64_t digestCiphertext(std::uint64_t h, const Ciphertext &ct);

} // namespace cl

#endif // CL_RUNTIME_HOSTRUN_H

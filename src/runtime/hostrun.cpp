#include "hostrun.h"

#include <algorithm>
#include <bit>
#include <set>
#include <unordered_map>

#include "compiler/schedule.h"

namespace cl {

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

std::uint64_t
fnvMix(std::uint64_t h, std::uint64_t x)
{
    h ^= x;
    h *= kFnvPrime;
    return h;
}

std::uint64_t
fnvString(const std::string &s)
{
    std::uint64_t h = kFnvOffset;
    for (char c : s)
        h = fnvMix(h, static_cast<unsigned char>(c));
    return h;
}

/** Deterministic per-op value seed (splitmix-style finalizer). */
std::uint64_t
mixSeed(std::uint64_t a, std::uint64_t b)
{
    std::uint64_t z = a + 0x9e3779b97f4a7c15ull * (b + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

std::vector<Complex>
slotValues(std::uint64_t seed, std::size_t slots)
{
    FastRng rng(seed);
    std::vector<Complex> v(slots);
    for (auto &z : v)
        z = Complex(rng.nextDouble() * 2 - 1, rng.nextDouble() * 2 - 1);
    return v;
}

std::uint64_t
digestPoly(std::uint64_t h, const RnsPoly &p)
{
    h = fnvMix(h, p.towers());
    for (unsigned idx : p.modIdx())
        h = fnvMix(h, idx);
    h = fnvMix(h, p.isNtt() ? 1 : 0);
    for (std::size_t t = 0; t < p.towers(); ++t)
        for (u64 w : p.residue(t))
            h = fnvMix(h, w);
    return h;
}

} // namespace

std::uint64_t
digestCiphertext(std::uint64_t h, const Ciphertext &ct)
{
    h = fnvMix(h, ct.level());
    h = fnvMix(h, std::bit_cast<std::uint64_t>(ct.scale));
    h = digestPoly(h, ct.c0);
    return digestPoly(h, ct.c1);
}

unsigned
HostRunner::effLevel(unsigned level) const
{
    return std::max(1u, std::min(level, ctx_.l()));
}

HostRunner::HostRunner(const CkksContext &ctx, const CkksEncoder &enc,
                       KeyGenerator &keygen, const HomProgram &prog)
    : ctx_(ctx), enc_(enc), eval_(ctx)
{
    const long slots = static_cast<long>(ctx.slots());
    std::set<int> steps;
    bool conjugate = false;
    for (const HomOp &op : prog.ops) {
        if (op.kind == HomOpKind::Rotate) {
            const int s = static_cast<int>(
                ((op.rotateBy % slots) + slots) % slots);
            if (s != 0)
                steps.insert(s);
        } else if (op.kind == HomOpKind::Conjugate) {
            conjugate = true;
        }
    }
    pk_ = keygen.genPublicKey();
    relin_ = keygen.genRelinKey();
    galois_ = keygen.genRotationKeys(
        std::vector<int>(steps.begin(), steps.end()), conjugate);
}

HostRunResult
HostRunner::run(const HomProgram &prog,
                const HostRunOptions &opts) const
{
    const std::size_t slots = ctx_.slots();
    const double scale = ctx_.params().scale();
    const long lslots = static_cast<long>(slots);

    // ---- Pre-encode plaintexts, shared by (plainId, level): the
    //      tasks only read them, so one serial pass suffices. ----
    std::unordered_map<std::string, RnsPoly> plains;
    auto plainKey = [&](const HomOp &op) {
        return op.plainId + "@" + std::to_string(effLevel(op.level));
    };
    for (const HomOp &op : prog.ops) {
        if (op.kind != HomOpKind::AddPlain &&
            op.kind != HomOpKind::MulPlain)
            continue;
        const std::string key = plainKey(op);
        if (plains.count(key))
            continue;
        const auto vals =
            slotValues(mixSeed(opts.seed, fnvString(op.plainId)), slots);
        plains.emplace(key,
                       enc_.encode(vals, scale, effLevel(op.level)));
    }

    // ---- One task per op over the dedup'd dependence graph. ----
    std::vector<Ciphertext> cts(prog.ops.size());

    auto dropTo = [&](Ciphertext &ct, unsigned target) {
        while (ct.level() > target)
            eval_.rescale(ct);
    };

    auto execOp = [&](std::uint32_t i) {
        const HomOp &op = prog.ops[i];
        const unsigned out_level = effLevel(op.outLevel);
        Ciphertext r;
        switch (op.kind) {
        case HomOpKind::Input: {
            // Per-task PRNG stream: each input draws from its own
            // seeded encryptor, so encryption order cannot matter.
            const std::uint64_t vseed = mixSeed(opts.seed, op.id);
            const RnsPoly pt = enc_.encode(slotValues(vseed, slots),
                                           scale, out_level);
            Encryptor encryptor(ctx_, pk_, vseed ^ 0x656e63ULL);
            r = encryptor.encrypt(pt, scale);
            break;
        }
        case HomOpKind::Add:
            r = eval_.add(cts[op.args[0]], cts[op.args[1]]);
            break;
        case HomOpKind::AddPlain:
            r = eval_.addPlain(cts[op.args[0]], plains.at(plainKey(op)));
            break;
        case HomOpKind::MulPlain:
            r = eval_.mulPlain(cts[op.args[0]], plains.at(plainKey(op)),
                               scale);
            dropTo(r, out_level);
            break;
        case HomOpKind::Mul:
            r = eval_.multiply(cts[op.args[0]], cts[op.args[1]], relin_);
            dropTo(r, out_level);
            break;
        case HomOpKind::Rotate:
            r = eval_.rotate(cts[op.args[0]],
                             static_cast<int>(op.rotateBy % lslots),
                             galois_);
            break;
        case HomOpKind::Conjugate:
            r = eval_.conjugate(cts[op.args[0]], galois_);
            break;
        case HomOpKind::Rescale:
            r = cts[op.args[0]];
            dropTo(r, out_level);
            break;
        case HomOpKind::LevelDrop:
            r = cts[op.args[0]];
            if (out_level < r.level())
                eval_.levelDrop(r, out_level);
            break;
        case HomOpKind::ModRaise:
            // Clamped chains may leave nothing to raise to: degrade
            // to a copy (the projection keeps dataflow, not depth).
            if (out_level > cts[op.args[0]].level())
                r = eval_.modRaise(cts[op.args[0]], out_level);
            else
                r = cts[op.args[0]];
            break;
        case HomOpKind::Output:
            r = cts[op.args[0]];
            break;
        }
        // Canonical scale: the projected program runs at clamped
        // depth, so real scale tracking is meaningless; forcing the
        // context scale keeps every add/multiply guard satisfied and
        // is itself deterministic.
        r.scale = scale;
        cts[i] = std::move(r);
    };

    HostRunResult res;
    const HomDepGraph g = buildHomDepGraph(prog);
    TaskGraph tg;
    for (std::uint32_t i = 0; i < prog.ops.size(); ++i) {
        std::vector<TaskGraph::TaskId> deps(prog.ops[i].args.begin(),
                                            prog.ops[i].args.end());
        tg.add([&execOp, i] { execOp(i); }, std::move(deps),
               homOpWeight(prog.ops[i]));
    }
    res.stats = tg.run(opts.mode, opts.threads);
    CL_ASSERT(res.stats.edges == g.edges,
              "task graph disagrees with the compiler dependence graph");

    res.digest = kFnvOffset;
    for (std::uint32_t i = 0; i < prog.ops.size(); ++i) {
        if (prog.ops[i].kind != HomOpKind::Output)
            continue;
        res.digest = digestCiphertext(res.digest, cts[i]);
        res.outputs.push_back(std::move(cts[i]));
    }
    return res;
}

} // namespace cl

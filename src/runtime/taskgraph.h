/**
 * @file
 * Work-stealing task-graph executor — the host-side analogue of
 * CraterLake keeping every functional unit busy across *independent*
 * homomorphic ops (Sec 6): the simulator and list scheduler already
 * exploit inter-op parallelism spatially; this executor exploits the
 * same dependence structure temporally on the CPU.
 *
 * Model: tasks are closures added in a topological order (every
 * dependency names an earlier task). A task becomes ready when its
 * last predecessor retires; ready tasks are ordered by critical-path
 * height (weight-inclusive longest path to a sink, the list
 * scheduler's priority) so workers drain the critical path first.
 * Each worker owns a priority queue; an idle worker steals from the
 * first non-empty victim. Workers register a
 * ThreadPool::WorkerScope, so tower-parallel kernels inside a task
 * run inline on the task's worker — inter-op parallelism *replaces*
 * intra-op parallelism instead of stacking pools on top of it.
 *
 * Determinism: execution order varies with timing, but tasks write
 * disjoint outputs and each task's own computation is deterministic,
 * so the bytes produced are identical to serial execution — the same
 * contract as the tower-parallel kernels (PR 1) and the SIMD backends
 * (PR 4). Anything order-sensitive (PRNG draws, shared accumulators)
 * must be made per-task (seeded streams) or commutative (relaxed
 * atomic counts); see DESIGN.md "Host runtime".
 *
 * `CL_EXEC=serial|graph` selects the default mode (graph unless
 * overridden); serial mode runs tasks in insertion order on the
 * calling thread and is the bit-identical fallback.
 */

#ifndef CL_RUNTIME_TASKGRAPH_H
#define CL_RUNTIME_TASKGRAPH_H

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace cl {

/** How a task graph (or a program handed to the host runner) runs. */
enum class ExecMode
{
    Serial, ///< Insertion order on the calling thread.
    Graph   ///< Work-stealing workers over the dependence graph.
};

const char *execModeName(ExecMode m);

/** Parse an --exec CLI value ("serial"/"graph"); fatal on anything
 *  else, listing the valid choices. */
ExecMode execModeByName(const std::string &name);

/** The CL_EXEC environment default: graph unless CL_EXEC=serial. */
ExecMode execModeFromEnv();

/** Statistics of one run, for tests and benchmarks. */
struct TaskGraphStats
{
    std::size_t tasks = 0;
    std::size_t edges = 0;          ///< Dedup'd dependence edges.
    std::uint64_t criticalPath = 0; ///< Weight-inclusive longest path.
    std::uint64_t steals = 0;       ///< Tasks taken from another worker.
    unsigned threads = 1;           ///< Workers the run used.
};

class TaskGraph
{
  public:
    using TaskId = std::uint32_t;

    /**
     * Add a task depending on earlier tasks @p deps (duplicates are
     * deduplicated). @p weight is the relative cost used for
     * critical-path heights; it never changes what runs.
     */
    TaskId add(std::function<void()> fn, std::vector<TaskId> deps = {},
               std::uint64_t weight = 1);

    std::size_t size() const { return tasks_.size(); }

    /**
     * Execute every task exactly once, respecting dependencies, and
     * block until all retire. Graph mode runs on @p threads workers
     * (0 = the global pool's size, i.e. CL_THREADS), the calling
     * thread included; serial mode ignores @p threads. A graph may be
     * run only once.
     */
    TaskGraphStats run(ExecMode mode = execModeFromEnv(),
                       unsigned threads = 0);

  private:
    struct Task
    {
        std::function<void()> fn;
        std::vector<TaskId> succs;
        std::uint32_t preds = 0;
        std::uint64_t weight = 1;
        std::uint64_t height = 0;
    };

    std::vector<Task> tasks_;
    std::size_t edges_ = 0;
    bool ran_ = false;
};

/**
 * Convenience for batches of independent jobs (e.g. bootstrapping
 * many ciphertexts for different sessions): run every closure under
 * @p mode. Equivalent to a TaskGraph with no edges.
 */
TaskGraphStats runTaskBatch(const std::vector<std::function<void()>> &fns,
                            ExecMode mode = execModeFromEnv(),
                            unsigned threads = 0);

} // namespace cl

#endif // CL_RUNTIME_TASKGRAPH_H

#include "taskgraph.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <mutex>
#include <thread>

#include "util/common.h"
#include "util/threadpool.h"

namespace cl {

const char *
execModeName(ExecMode m)
{
    switch (m) {
    case ExecMode::Serial:
        return "serial";
    case ExecMode::Graph:
        return "graph";
    }
    return "?";
}

ExecMode
execModeByName(const std::string &name)
{
    if (name == "serial")
        return ExecMode::Serial;
    if (name == "graph")
        return ExecMode::Graph;
    CL_FATAL("unknown exec mode '", name, "' (serial, graph)");
}

ExecMode
execModeFromEnv()
{
    if (const char *env = std::getenv("CL_EXEC")) {
        const std::string v(env);
        if (v == "serial")
            return ExecMode::Serial;
        if (v == "graph")
            return ExecMode::Graph;
        warn("ignoring malformed CL_EXEC='" + v + "'");
    }
    return ExecMode::Graph;
}

TaskGraph::TaskId
TaskGraph::add(std::function<void()> fn, std::vector<TaskId> deps,
               std::uint64_t weight)
{
    const TaskId id = static_cast<TaskId>(tasks_.size());
    Task t;
    t.fn = std::move(fn);
    t.weight = weight;

    std::sort(deps.begin(), deps.end());
    deps.erase(std::unique(deps.begin(), deps.end()), deps.end());
    for (TaskId d : deps) {
        CL_ASSERT(d < id, "task dependencies must be earlier tasks");
        tasks_[d].succs.push_back(id);
        ++t.preds;
        ++edges_;
    }
    tasks_.push_back(std::move(t));
    return id;
}

namespace {

/**
 * One worker's ready queue: a binary max-heap ordered by
 * (height desc, id asc). Pops under the owner's lock; thieves pop
 * under the same lock — tasks run for microseconds to milliseconds,
 * so one mutex per queue is far below the noise floor.
 */
struct ReadyQueue
{
    std::mutex m;
    std::vector<std::pair<std::uint64_t, TaskGraph::TaskId>> heap;

    static bool
    less(const std::pair<std::uint64_t, TaskGraph::TaskId> &a,
         const std::pair<std::uint64_t, TaskGraph::TaskId> &b)
    {
        // Max-heap on height; lower id wins ties (older ops first).
        if (a.first != b.first)
            return a.first < b.first;
        return a.second > b.second;
    }

    void
    push(std::uint64_t height, TaskGraph::TaskId id)
    {
        std::lock_guard<std::mutex> lk(m);
        heap.emplace_back(height, id);
        std::push_heap(heap.begin(), heap.end(), less);
    }

    bool
    pop(TaskGraph::TaskId &out)
    {
        std::lock_guard<std::mutex> lk(m);
        if (heap.empty())
            return false;
        std::pop_heap(heap.begin(), heap.end(), less);
        out = heap.back().second;
        heap.pop_back();
        return true;
    }
};

} // namespace

TaskGraphStats
TaskGraph::run(ExecMode mode, unsigned threads)
{
    CL_ASSERT(!ran_, "a TaskGraph may be run only once");
    ran_ = true;

    // Heights: weight-inclusive critical path to a sink (tasks are in
    // topological order by construction, so one backward pass does it).
    std::uint64_t critical = 0;
    for (std::size_t i = tasks_.size(); i-- > 0;) {
        std::uint64_t succ_max = 0;
        for (TaskId s : tasks_[i].succs)
            succ_max = std::max(succ_max, tasks_[s].height);
        tasks_[i].height = tasks_[i].weight + succ_max;
        critical = std::max(critical, tasks_[i].height);
    }

    TaskGraphStats stats;
    stats.tasks = tasks_.size();
    stats.edges = edges_;
    stats.criticalPath = critical;

    if (mode == ExecMode::Serial || tasks_.empty()) {
        for (Task &t : tasks_)
            t.fn();
        return stats;
    }

    const unsigned nthreads = std::max(
        1u, threads != 0 ? threads : ThreadPool::global().threads());
    stats.threads = nthreads;

    std::vector<std::atomic<std::uint32_t>> preds(tasks_.size());
    for (std::size_t i = 0; i < tasks_.size(); ++i)
        preds[i].store(tasks_[i].preds, std::memory_order_relaxed);

    std::vector<ReadyQueue> queues(nthreads);
    std::atomic<std::size_t> remaining{tasks_.size()};
    std::atomic<std::uint64_t> steals{0};
    std::mutex idleMutex;
    std::condition_variable idleCv;
    std::atomic<std::size_t> readyCount{0};

    // Seed the initial frontier round-robin in descending height
    // order, so every worker starts near the critical path.
    {
        std::vector<TaskId> roots;
        for (std::size_t i = 0; i < tasks_.size(); ++i) {
            if (tasks_[i].preds == 0)
                roots.push_back(static_cast<TaskId>(i));
        }
        std::sort(roots.begin(), roots.end(), [&](TaskId a, TaskId b) {
            if (tasks_[a].height != tasks_[b].height)
                return tasks_[a].height > tasks_[b].height;
            return a < b;
        });
        for (std::size_t r = 0; r < roots.size(); ++r)
            queues[r % nthreads].push(tasks_[roots[r]].height,
                                      roots[r]);
        readyCount.store(roots.size(), std::memory_order_relaxed);
    }

    auto worker = [&](unsigned self) {
        // Graph workers inline any nested parallelFor (see
        // threadpool.h WorkerScope): never deadlock on the pool's job
        // lock, never oversubscribe graph workers with pool workers.
        ThreadPool::WorkerScope scope;
        for (;;) {
            if (remaining.load(std::memory_order_acquire) == 0)
                return;
            TaskId id;
            bool got = queues[self].pop(id);
            if (!got) {
                for (unsigned v = 1; v < nthreads && !got; ++v) {
                    got = queues[(self + v) % nthreads].pop(id);
                    if (got)
                        steals.fetch_add(1, std::memory_order_relaxed);
                }
            }
            if (!got) {
                std::unique_lock<std::mutex> lk(idleMutex);
                idleCv.wait(lk, [&] {
                    return remaining.load(std::memory_order_acquire) ==
                               0 ||
                           readyCount.load(std::memory_order_acquire) >
                               0;
                });
                continue;
            }
            readyCount.fetch_sub(1, std::memory_order_acq_rel);

            tasks_[id].fn();

            std::size_t woken = 0;
            for (TaskId s : tasks_[id].succs) {
                if (preds[s].fetch_sub(1, std::memory_order_acq_rel) ==
                    1) {
                    queues[self].push(tasks_[s].height, s);
                    readyCount.fetch_add(1,
                                         std::memory_order_acq_rel);
                    ++woken;
                }
            }
            const std::size_t left =
                remaining.fetch_sub(1, std::memory_order_acq_rel) - 1;
            if (left == 0 || woken > 0) {
                std::lock_guard<std::mutex> lk(idleMutex);
                idleCv.notify_all();
            }
        }
    };

    std::vector<std::thread> extra;
    extra.reserve(nthreads - 1);
    for (unsigned w = 1; w < nthreads; ++w)
        extra.emplace_back(worker, w);
    worker(0); // the calling thread is worker #0
    for (std::thread &t : extra)
        t.join();

    stats.steals = steals.load(std::memory_order_relaxed);
    return stats;
}

TaskGraphStats
runTaskBatch(const std::vector<std::function<void()>> &fns,
             ExecMode mode, unsigned threads)
{
    TaskGraph g;
    for (const auto &fn : fns)
        g.add(fn);
    return g.run(mode, threads);
}

} // namespace cl

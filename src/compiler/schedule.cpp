#include "schedule.h"

#include <algorithm>
#include <limits>
#include <random>
#include <set>
#include <vector>

#include "sim/simulator.h"

namespace cl {

const char *
scheduleModeName(ScheduleMode m)
{
    switch (m) {
      case ScheduleMode::None:
        return "none";
      case ScheduleMode::List:
        return "list";
    }
    CL_PANIC("bad ScheduleMode");
}

ScheduleMode
scheduleModeByName(const std::string &name)
{
    if (name == "none")
        return ScheduleMode::None;
    if (name == "list")
        return ScheduleMode::List;
    CL_FATAL("unknown schedule mode '", name, "'; valid: none, list");
}

namespace {

constexpr std::uint32_t noUse = std::numeric_limits<std::uint32_t>::max();

/**
 * Dependence graph over value ids, built in one forward scan; every
 * edge points from a lower to a higher original instruction id.
 *   true:   last writer -> reader
 *   output: last writer -> next writer
 *   anti:   readers since last write -> next writer
 */
struct DepGraph
{
    std::vector<std::vector<std::uint32_t>> succs;
    std::vector<std::vector<std::uint32_t>> preds;
    std::vector<std::uint64_t> height; // critical path to any sink
    std::uint64_t critical = 0;
    std::size_t edges = 0;

    explicit DepGraph(const Program &prog)
    {
        const std::size_t n = prog.insts.size();
        succs.resize(n);
        preds.resize(n);

        constexpr std::int64_t none = -1;
        std::vector<std::int64_t> lastWriter(prog.values.size(), none);
        std::vector<std::vector<std::uint32_t>> readersSince(
            prog.values.size());

        std::vector<std::uint32_t> scratch;
        for (std::uint32_t i = 0; i < n; ++i) {
            const PolyInst &inst = prog.insts[i];
            scratch.clear();
            for (std::uint32_t r : inst.reads) {
                if (lastWriter[r] != none)
                    scratch.push_back(
                        static_cast<std::uint32_t>(lastWriter[r]));
            }
            for (std::uint32_t w : inst.writes) {
                if (lastWriter[w] != none &&
                    lastWriter[w] != static_cast<std::int64_t>(i))
                    scratch.push_back(
                        static_cast<std::uint32_t>(lastWriter[w]));
                for (std::uint32_t reader : readersSince[w]) {
                    if (reader != i)
                        scratch.push_back(reader);
                }
                readersSince[w].clear();
            }
            std::sort(scratch.begin(), scratch.end());
            scratch.erase(
                std::unique(scratch.begin(), scratch.end()),
                scratch.end());
            for (std::uint32_t p : scratch)
                succs[p].push_back(i);
            preds[i] = scratch;
            edges += scratch.size();
            // Register this instruction's accesses for later edges.
            for (std::uint32_t r : inst.reads)
                readersSince[r].push_back(i);
            for (std::uint32_t w : inst.writes)
                lastWriter[w] = i;
        }

        height.assign(n, 0);
        for (std::size_t i = n; i-- > 0;) {
            std::uint64_t h = 0;
            for (std::uint32_t s : succs[i])
                h = std::max(h, height[s]);
            height[i] = h + prog.insts[i].duration;
            critical = std::max(critical, height[i]);
        }
    }
};

/**
 * Rebuild a program with its instructions in `order`. Value ids are
 * untouched; producer/consumer links — the Belady manager's
 * future-use information — are reconstructed by addInst so they
 * reflect the new issue order.
 */
Program
reorderProgram(const Program &prog,
               const std::vector<std::uint32_t> &order)
{
    Program out;
    out.name = prog.name;
    out.n = prog.n;
    out.values = prog.values;
    for (Value &v : out.values) {
        v.producer = -1;
        v.consumers.clear();
    }
    for (std::uint32_t id : order) {
        PolyInst inst = prog.insts[id];
        inst.id = 0; // reassigned by addInst
        out.addInst(std::move(inst));
    }
    return out;
}

std::uint64_t
simulatedCycles(const Program &prog, const ChipConfig &cfg)
{
    Simulator sim(cfg);
    return sim.run(prog).cycles;
}

/**
 * Residency-affinity list scheduling pass.
 *
 * The workloads are memory-bound: the simulator's cycle count is
 * dominated by the serialized memory channel, and the register file
 * is run by a Belady MIN manager whose miss rate is a pure function
 * of the instruction order. The emitted order re-loads shared
 * keyswitch hints and plaintexts many times over, so the scheduler's
 * register-pressure lookahead is the primary priority, not a
 * modifier: it replays the Belady manager against the schedule being
 * built and prefers, inside a window anchored at the oldest
 * unscheduled instruction, a ready instruction that shrinks the live
 * set (last readers of dying intermediates) or that runs entirely
 * out of resident values. Hoists that would allocate are admitted
 * only while the replayed register file keeps a full value's worth
 * of headroom — an allocation hoisted into a full RF stretches its
 * own live range and evicts a far-use hint to make room, which is
 * exactly the traffic this pass exists to remove. Ties and fallbacks
 * follow the emission order, which keeps producer/consumer chains
 * fused and interleaves independent keyswitch pipelines only where
 * the residency model shows a benefit; with nothing to gain, the
 * emission order is preserved.
 */
std::vector<std::uint32_t>
residencyOrder(const Program &prog, const DepGraph &g,
               const ChipConfig &cfg, bool heightWhenUnpressured)
{
    constexpr std::uint32_t window = 32;
    const std::size_t n = prog.insts.size();
    const std::size_t nv = prog.values.size();
    const std::uint64_t capacity = cfg.rfWords();

    std::vector<std::uint32_t> predCount(n, 0);
    for (std::uint32_t i = 0; i < n; ++i)
        predCount[i] = static_cast<std::uint32_t>(g.preds[i].size());

    std::vector<char> scheduled(n, 0);
    std::uint32_t oldest = 0; // lowest-numbered unscheduled inst

    // Unique read operands per instruction.
    std::vector<std::vector<std::uint32_t>> ureads(n);
    for (std::uint32_t i = 0; i < n; ++i) {
        ureads[i] = prog.insts[i].reads;
        std::sort(ureads[i].begin(), ureads[i].end());
        ureads[i].erase(
            std::unique(ureads[i].begin(), ureads[i].end()),
            ureads[i].end());
    }

    // Unscheduled reader-instruction count per value (for spotting a
    // value's last reader, which dead-frees it).
    std::vector<std::uint32_t> consLeft(nv, 0);
    for (std::uint32_t i = 0; i < n; ++i) {
        for (std::uint32_t r : ureads[i])
            ++consLeft[r];
    }

    // Belady-replay state: resident set, per-value next unscheduled
    // consumer (the eviction key), and the ordered victim queue.
    std::vector<char> resident(nv, 0);
    std::vector<std::uint32_t> usePtr(nv, 0);
    std::vector<std::uint32_t> beladyKey(nv, noUse);
    std::uint64_t used = 0;
    std::set<std::pair<std::uint32_t, std::uint32_t>> byUse;

    auto nextUse = [&](std::uint32_t vid) -> std::uint32_t {
        const auto &cons = prog.values[vid].consumers;
        std::uint32_t &p = usePtr[vid];
        while (p < cons.size() && scheduled[cons[p]])
            ++p;
        return p < cons.size() ? cons[p] : noUse;
    };

    auto markResident = [&](std::uint32_t vid) {
        resident[vid] = 1;
        used += prog.values[vid].words;
        beladyKey[vid] = nextUse(vid);
        byUse.emplace(beladyKey[vid], vid);
    };

    auto evict = [&](std::uint32_t vid) {
        byUse.erase({beladyKey[vid], vid});
        resident[vid] = 0;
        used -= prog.values[vid].words;
    };

    auto makeRoom = [&](std::uint64_t need,
                        const std::vector<std::uint32_t> &pinned) {
        while (used + need > capacity) {
            auto it = byUse.rbegin();
            while (it != byUse.rend() &&
                   std::find(pinned.begin(), pinned.end(),
                             it->second) != pinned.end())
                ++it;
            if (it == byUse.rend())
                return false; // working set exceeds the RF: streams
            evict(it->second);
        }
        return true;
    };

    // The word-delta the register file would see from issuing an
    // instruction now: loads for non-resident operands, an allocation
    // for each fresh result, minus intermediates this instruction
    // reads for the last time (dead-freed on retire).
    auto liveDelta = [&](std::uint32_t i) -> std::int64_t {
        std::int64_t d = 0;
        for (std::uint32_t r : ureads[i]) {
            const Value &v = prog.values[r];
            if (!resident[r])
                d += static_cast<std::int64_t>(v.words);
            else if (consLeft[r] == 1 &&
                     v.kind == ValueKind::Intermediate)
                d -= static_cast<std::int64_t>(v.words);
        }
        for (std::uint32_t w : prog.insts[i].writes) {
            if (!resident[w])
                d += static_cast<std::int64_t>(prog.values[w].words);
        }
        return d;
    };

    auto loadCost = [&](std::uint32_t i) -> std::uint64_t {
        std::uint64_t c = 0;
        for (std::uint32_t r : ureads[i]) {
            if (!resident[r])
                c += prog.values[r].words;
        }
        return c;
    };

    std::set<std::uint32_t> ready;
    for (std::uint32_t i = 0; i < n; ++i) {
        if (predCount[i] == 0)
            ready.insert(i);
    }

    std::vector<std::uint32_t> order;
    order.reserve(n);
    std::vector<std::uint32_t> pinned;

    // Issue one instruction: replay the residency the simulator will
    // see (load misses, result allocation, dead-intermediate retire)
    // and release its dependence successors.
    auto commit = [&](std::uint32_t id) {
        scheduled[id] = 1;
        ready.erase(id);
        while (oldest < n && scheduled[oldest])
            ++oldest;
        const PolyInst &inst = prog.insts[id];

        pinned = ureads[id];
        pinned.insert(pinned.end(), inst.writes.begin(),
                      inst.writes.end());
        for (std::uint32_t r : ureads[id]) {
            if (!resident[r] && makeRoom(prog.values[r].words, pinned))
                markResident(r);
        }
        for (std::uint32_t w : inst.writes) {
            if (!resident[w] && makeRoom(prog.values[w].words, pinned))
                markResident(w);
        }
        for (std::uint32_t r : ureads[id]) {
            --consLeft[r];
            if (!resident[r])
                continue;
            byUse.erase({beladyKey[r], r});
            const std::uint32_t nk = nextUse(r);
            if (nk == noUse &&
                prog.values[r].kind == ValueKind::Intermediate) {
                // Dead: freed without writeback, as in the simulator.
                resident[r] = 0;
                used -= prog.values[r].words;
            } else {
                beladyKey[r] = nk;
                byUse.emplace(nk, r);
            }
        }

        for (std::uint32_t s : g.succs[id]) {
            if (--predCount[s] == 0)
                ready.insert(s);
        }
        order.push_back(id);
    };

    while (oldest < n) {
        const std::uint32_t fence =
            oldest > noUse - window ? noUse : oldest + window;

        // Pick the eligible instruction. While the register file is
        // mostly empty nothing can be saved by residency ordering, so
        // the dual-mode variant falls back to classic critical-path
        // (tallest-height) selection there, which compresses the
        // makespan of compute-bound stretches.
        std::uint32_t best = *ready.begin();
        if (heightWhenUnpressured && used * 2 <= capacity) {
            std::uint32_t pick = noUse;
            for (std::uint32_t cid : ready) {
                if (cid >= fence)
                    break;
                if (pick == noUse || g.height[cid] > g.height[pick])
                    pick = cid;
            }
            commit(pick == noUse ? oldest : pick);
            continue;
        }
        std::int64_t bestDelta = 0;
        std::uint64_t bestCost = 0;
        bool first = true;
        for (std::uint32_t cid : ready) {
            if (cid >= fence)
                break; // set is ordered; everything after is fenced
            const std::int64_t d = liveDelta(cid);
            const std::uint64_t c = loadCost(cid);
            bool better;
            if (first) {
                better = true;
            } else if (d != bestDelta) {
                better = d < bestDelta;
            } else if (c != bestCost) {
                better = c < bestCost;
            } else if (g.height[cid] != g.height[best]) {
                better = g.height[cid] > g.height[best];
            } else {
                better = false; // ids ascend: keep the earlier one
            }
            if (better) {
                best = cid;
                bestDelta = d;
                bestCost = c;
                first = false;
            }
        }
        // A candidate that grows the live set is hoisted only if it
        // loads nothing and its allocations fit without evicting;
        // otherwise continue the emission order (`oldest` is always
        // dependence-ready: every predecessor precedes it).
        const bool hoistOk =
            bestDelta <= 0 ||
            (bestCost == 0 &&
             used + static_cast<std::uint64_t>(bestDelta) <=
                 capacity);
        commit(hoistOk ? best : oldest);
    }
    CL_ASSERT(order.size() == n, "scheduler lost instructions: ",
              order.size(), " of ", n);
    return order;
}

/**
 * Makespan refinement for small programs. The residency pass above
 * targets memory traffic, but compact programs fit the register
 * file outright and are bound instead by dependence chains stalling
 * the in-order issue head against the serialized memory and network
 * timelines — effects no static priority captures faithfully. Since
 * such programs are cheap to simulate, refine by measurement: a
 * deterministic seeded local search that moves one instruction at a
 * time within its dependence slack and keeps a move only when the
 * simulator reports strictly fewer cycles. Every intermediate order
 * respects the dependence graph, so legality is invariant.
 */
std::vector<std::uint32_t>
refineOrder(const Program &prog, const DepGraph &g,
            const ChipConfig &cfg, std::vector<std::uint32_t> order,
            std::uint64_t &bestCycles)
{
    const std::size_t n = order.size();
    std::vector<std::uint32_t> pos(n);
    for (std::uint32_t p = 0; p < n; ++p)
        pos[order[p]] = p;

    // Fixed seed: the refinement is part of the compiler and must be
    // reproducible run-to-run and thread-count-independent.
    std::mt19937 rng(0x5ca1ab1e);
    const unsigned budget = 512;

    for (unsigned it = 0; it < budget; ++it) {
        const std::uint32_t x = static_cast<std::uint32_t>(rng() % n);
        // Feasible positions for x: after every predecessor, before
        // every successor (positions refer to the current order).
        std::uint32_t lo = 0;
        std::uint32_t hi = static_cast<std::uint32_t>(n - 1);
        for (std::uint32_t p : g.preds[x])
            lo = std::max(lo, pos[p] + 1);
        for (std::uint32_t s : g.succs[x])
            hi = std::min(hi, pos[s] - 1);
        if (lo >= hi)
            continue;
        const std::uint32_t target =
            lo + static_cast<std::uint32_t>(rng() % (hi - lo + 1));
        const std::uint32_t cur = pos[x];
        if (target == cur)
            continue;

        std::vector<std::uint32_t> cand = order;
        if (target < cur) {
            std::rotate(cand.begin() + target, cand.begin() + cur,
                        cand.begin() + cur + 1);
        } else {
            std::rotate(cand.begin() + cur, cand.begin() + cur + 1,
                        cand.begin() + target + 1);
        }
        const std::uint64_t cycles =
            simulatedCycles(reorderProgram(prog, cand), cfg);
        if (cycles < bestCycles) {
            bestCycles = cycles;
            order = std::move(cand);
            for (std::uint32_t p = 0; p < n; ++p)
                pos[order[p]] = p;
        }
    }
    return order;
}

} // namespace

Program
scheduleProgram(const Program &prog, const ChipConfig &cfg,
                ScheduleMode mode, ScheduleStats *stats)
{
    if (stats)
        *stats = ScheduleStats{};
    if (mode == ScheduleMode::None || prog.insts.size() <= 1)
        return prog;

    const std::size_t n = prog.insts.size();
    const DepGraph g(prog);

    // The scheduler never ships a slower program than the lowering
    // emitted: every candidate order is measured on the actual
    // simulator and the earliest candidate wins ties, with the
    // emission order first. This costs a few extra simulations per
    // compile and turns "must not regress" into an invariant.
    std::vector<std::uint32_t> order(n);
    for (std::uint32_t i = 0; i < n; ++i)
        order[i] = i;
    std::uint64_t cycles = simulatedCycles(prog, cfg);

    for (bool dual : {false, true}) {
        std::vector<std::uint32_t> cand =
            residencyOrder(prog, g, cfg, dual);
        const std::uint64_t c =
            simulatedCycles(reorderProgram(prog, cand), cfg);
        if (c < cycles) {
            cycles = c;
            order = std::move(cand);
        }
    }

    // Small programs additionally get measured local search.
    constexpr std::size_t refineLimit = 1536;
    if (n <= refineLimit)
        order = refineOrder(prog, g, cfg, std::move(order), cycles);

    std::size_t movedCount = 0;
    for (std::uint32_t p = 0; p < n; ++p) {
        if (order[p] != p)
            ++movedCount;
    }

    Program out = reorderProgram(prog, order);
    out.validate();

    if (stats) {
        stats->depEdges = g.edges;
        stats->moved = movedCount;
        stats->criticalPathCycles = g.critical;
    }
    return out;
}

std::uint64_t
homOpWeight(const HomOp &op)
{
    // Coarse host-cost model in "elementwise pass" units: keyswitching
    // ops pay the digit lift + inner product + mod-down, ct-ct multiply
    // adds the tensor product on top, plain ops are one or two passes.
    // Only the *relative* order matters — heights steer the ready
    // queue toward the critical path, they never change what runs.
    switch (op.kind) {
    case HomOpKind::Mul:
        return 12;
    case HomOpKind::Rotate:
    case HomOpKind::Conjugate:
        return 10;
    case HomOpKind::ModRaise:
        return 6;
    case HomOpKind::Rescale:
    case HomOpKind::MulPlain:
        return 3;
    case HomOpKind::Input:
        return 2; // encryption on the host path
    default:
        return 1; // Add/AddPlain/LevelDrop/Output
    }
}

HomDepGraph
buildHomDepGraph(const HomProgram &prog)
{
    const std::size_t n = prog.ops.size();
    HomDepGraph g;
    g.succs.resize(n);
    g.predCount.assign(n, 0);
    g.height.assign(n, 0);

    std::vector<std::uint32_t> scratch;
    for (std::uint32_t i = 0; i < n; ++i) {
        const HomOp &op = prog.ops[i];
        CL_ASSERT(op.id == i, "HomProgram ids must be dense");
        scratch.clear();
        for (std::uint32_t a : op.args) {
            CL_ASSERT(a < i, "HomProgram args must be earlier ops");
            scratch.push_back(a);
        }
        std::sort(scratch.begin(), scratch.end());
        scratch.erase(std::unique(scratch.begin(), scratch.end()),
                      scratch.end());
        for (std::uint32_t a : scratch) {
            g.succs[a].push_back(i);
            ++g.predCount[i];
            ++g.edges;
        }
    }

    for (std::size_t i = n; i-- > 0;) {
        std::uint64_t succ_max = 0;
        for (std::uint32_t s : g.succs[i])
            succ_max = std::max(succ_max, g.height[s]);
        g.height[i] = homOpWeight(prog.ops[i]) + succ_max;
        g.critical = std::max(g.critical, g.height[i]);
    }
    return g;
}

} // namespace cl

#include "homprogram.h"

#include <cmath>

namespace cl {

std::size_t
HomProgram::countKind(HomOpKind k) const
{
    std::size_t c = 0;
    for (const auto &op : ops)
        c += op.kind == k ? 1 : 0;
    return c;
}

DigitPolicy
digitPolicy80()
{
    return [](unsigned level) -> unsigned {
        return level > 52 ? 2 : 1;
    };
}

DigitPolicy
digitPolicy128()
{
    return [](unsigned level) -> unsigned {
        if (level >= 43)
            return 3;
        if (level >= 32)
            return 2;
        return 1;
    };
}

DigitPolicy
digitPolicy200()
{
    return [](unsigned level) -> unsigned {
        if (level >= 40)
            return 4;
        if (level >= 28)
            return 3;
        return 2;
    };
}

HomBuilder::HomBuilder(std::string name, unsigned logn, unsigned l_max,
                       DigitPolicy policy)
    : policy_(std::move(policy))
{
    prog_.name = std::move(name);
    prog_.logN = logn;
    prog_.lMax = l_max;
}

std::uint32_t
HomBuilder::push(HomOp op)
{
    op.id = static_cast<std::uint32_t>(prog_.ops.size());
    prog_.ops.push_back(std::move(op));
    return prog_.ops.back().id;
}

unsigned
HomBuilder::digitsAt(unsigned level) const
{
    return std::max(1u, policy_(level));
}

HomBuilder::Ct
HomBuilder::input(unsigned level)
{
    CL_ASSERT(level >= 1 && level <= prog_.lMax, "bad input level ",
              level);
    HomOp op;
    op.kind = HomOpKind::Input;
    op.level = op.outLevel = level;
    return {push(op), level};
}

HomBuilder::Ct
HomBuilder::add(Ct a, Ct b)
{
    CL_ASSERT(a.level == b.level, "add level mismatch: ", a.level, " vs ",
              b.level);
    HomOp op;
    op.kind = HomOpKind::Add;
    op.args = {a.op, b.op};
    op.level = op.outLevel = a.level;
    return {push(op), a.level};
}

HomBuilder::Ct
HomBuilder::addPlain(Ct a, const std::string &plain_id)
{
    HomOp op;
    op.kind = HomOpKind::AddPlain;
    op.args = {a.op};
    op.level = op.outLevel = a.level;
    op.plainId = plain_id;
    return {push(op), a.level};
}

HomBuilder::Ct
HomBuilder::mulPlain(Ct a, const std::string &plain_id, unsigned drop)
{
    CL_ASSERT(a.level > drop, "out of multiplicative budget at level ",
              a.level);
    HomOp op;
    op.kind = HomOpKind::MulPlain;
    op.args = {a.op};
    op.level = a.level;
    op.outLevel = a.level - drop;
    op.plainId = plain_id;
    return {push(op), op.outLevel};
}

HomBuilder::Ct
HomBuilder::mul(Ct a, Ct b, unsigned drop)
{
    CL_ASSERT(a.level == b.level, "mul level mismatch");
    CL_ASSERT(a.level > drop, "out of multiplicative budget at level ",
              a.level);
    HomOp op;
    op.kind = HomOpKind::Mul;
    op.args = {a.op, b.op};
    op.level = a.level;
    op.outLevel = a.level - drop;
    op.digits = digitsAt(a.level);
    op.keyId = "relin.t" + std::to_string(op.digits);
    return {push(op), op.outLevel};
}

HomBuilder::Ct
HomBuilder::rescale(Ct a, unsigned drop)
{
    CL_ASSERT(drop >= 1, "rescale must drop at least one tower");
    CL_ASSERT(a.level > drop, "out of multiplicative budget at level ",
              a.level);
    HomOp op;
    op.kind = HomOpKind::Rescale;
    op.args = {a.op};
    op.level = a.level;
    op.outLevel = a.level - drop;
    return {push(op), op.outLevel};
}

HomBuilder::Ct
HomBuilder::keyedOp(HomOpKind kind, Ct a, std::string key_id, int steps)
{
    HomOp op;
    op.kind = kind;
    op.args = {a.op};
    op.level = op.outLevel = a.level;
    op.rotateBy = steps;
    op.digits = digitsAt(a.level);
    op.keyId = std::move(key_id) + ".t" + std::to_string(op.digits);
    return {push(op), a.level};
}

HomBuilder::Ct
HomBuilder::rotate(Ct a, int steps)
{
    // Whole-ring rotations are the identity automorphism (the Galois
    // exponent is 5^(steps mod slots) = 1): no keyswitch, no op.
    if (steps % static_cast<long>(slots()) == 0)
        return a;
    return keyedOp(HomOpKind::Rotate, a, "rot." + std::to_string(steps),
                   steps);
}

HomBuilder::Ct
HomBuilder::conjugate(Ct a)
{
    return keyedOp(HomOpKind::Conjugate, a, "conj", 0);
}

HomBuilder::Ct
HomBuilder::levelDrop(Ct a, unsigned target)
{
    CL_ASSERT(target >= 1 && target <= a.level, "bad levelDrop target");
    if (target == a.level)
        return a;
    HomOp op;
    op.kind = HomOpKind::LevelDrop;
    op.args = {a.op};
    op.level = a.level;
    op.outLevel = target;
    return {push(op), target};
}

HomBuilder::Ct
HomBuilder::modRaise(Ct a, unsigned target)
{
    CL_ASSERT(target > a.level && target <= prog_.lMax, "bad modRaise");
    HomOp op;
    op.kind = HomOpKind::ModRaise;
    op.args = {a.op};
    op.level = a.level;
    op.outLevel = target;
    return {push(op), target};
}

void
HomBuilder::output(Ct a)
{
    HomOp op;
    op.kind = HomOpKind::Output;
    op.args = {a.op};
    op.level = op.outLevel = a.level;
    push(op);
}

HomBuilder::Ct
HomBuilder::linearTransform(Ct a, unsigned diags, const std::string &tag,
                            unsigned drop, bool bsgs)
{
    // Baby-step-giant-step evaluation of a linear transform with
    // `diags` nonzero diagonals: n1 baby rotations of the input, n2
    // giant-step accumulation (Sec 6; [31]).
    //
    // With bsgs=false, the transform instead streams the diagonals
    // with a sequential rotate-by-one chain: same rotation and
    // multiply counts, but a working set of two ciphertexts and a
    // single rotation hint. This is the shape the bootstrapping DFT
    // factors take after the compiler's reuse-maximizing
    // decomposition (Sec 6, "4x4 tile" partitions that fit on chip).
    if (!bsgs) {
        Ct cur = a;
        Ct acc = mulPlain(cur, tag + ".d0", drop);
        for (unsigned i = 1; i < diags; ++i) {
            cur = rotate(cur, 1);
            acc = add(acc, mulPlain(cur, tag + ".d" + std::to_string(i),
                                    drop));
        }
        return acc;
    }

    const unsigned n1 =
        std::max(1u, static_cast<unsigned>(std::sqrt(diags)));
    const unsigned n2 = (diags + n1 - 1) / n1;

    std::vector<Ct> baby(n1);
    baby[0] = a;
    for (unsigned i = 1; i < n1; ++i)
        baby[i] = rotate(a, static_cast<int>(i));

    Ct acc{0, 0};
    bool first = true;
    for (unsigned j = 0; j < n2; ++j) {
        Ct inner{0, 0};
        bool inner_first = true;
        for (unsigned i = 0; i < n1; ++i) {
            if (j * n1 + i >= diags)
                break;
            Ct term = mulPlain(
                baby[i], tag + ".d" + std::to_string(j * n1 + i), drop);
            inner = inner_first ? term : add(inner, term);
            inner_first = false;
        }
        if (j > 0)
            inner = rotate(inner, static_cast<int>(j * n1));
        acc = first ? inner : add(acc, inner);
        first = false;
    }
    return acc;
}

unsigned
HomBuilder::bootLevels() const
{
    // CtS and StC stages run at double scale (2 levels per stage);
    // EvalMod consumes its configured budget.
    return 2 * ctsStages + 2 * stcStages + evalModLevels;
}

HomBuilder::Ct
HomBuilder::bootstrap(Ct a, const std::string &tag)
{
    const unsigned l_top = prog_.lMax;
    CL_ASSERT(bootLevels() < l_top,
              "bootstrap depth exceeds the modulus chain");

    // 1. ModRaise to the top of the chain.
    Ct ct = modRaise(a, l_top);

    // 2. CoeffToSlot: ctsStages DFT factors, each a BSGS linear
    //    transform at double scale; conjugate to split real/imag.
    for (unsigned s = 0; s < ctsStages; ++s)
        ct = linearTransform(ct, diagsPerStage,
                             tag + ".cts" + std::to_string(s), 2,
                             /*bsgs=*/false);
    Ct conj = conjugate(ct);
    Ct real_part = add(ct, conj);

    // 3. EvalMod: Chebyshev sine approximation + double-angle. The
    //    multiplications alternate squarings (for the Chebyshev
    //    basis) and accumulations.
    Ct em = real_part;
    const unsigned per_mul =
        std::max(1u, evalModLevels / std::max(1u, evalModMuls));
    unsigned spent = 0;
    for (unsigned i = 0; i < evalModMuls; ++i) {
        const unsigned drop =
            std::min(per_mul, evalModLevels - spent);
        if (em.level <= drop + stcStages * 2 + 1)
            break;
        Ct other = (i % 3 == 2)
                       ? mulPlain(em, tag + ".em" + std::to_string(i), 0)
                       : em;
        em = mul(em, other, drop);
        spent += drop;
    }

    // 4. SlotToCoeff: stcStages DFT factors.
    for (unsigned s = 0; s < stcStages; ++s)
        em = linearTransform(em, diagsPerStage,
                             tag + ".stc" + std::to_string(s), 2,
                             /*bsgs=*/false);
    return em;
}

} // namespace cl

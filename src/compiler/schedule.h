/**
 * @file
 * Static instruction scheduling for lowered programs (Sec 6).
 *
 * The accelerator issues in order, so instruction order alone decides
 * how much the FU pools overlap, how long live ranges stay resident,
 * and how often the Belady manager spills. Lowering emits
 * instructions in naive HomProgram order, which serializes each
 * keyswitch chain on its own operand stalls while independent
 * pipelines sit idle behind it. The list scheduler here reorders a
 * lowered Program into any legal topological order of its dependence
 * graph, picking at every step the ready instruction that can issue
 * soonest on a resource model of the chip — which naturally
 * interleaves independent keyswitch pipelines across the NTT / MAC /
 * mod-down pools — with critical-path height as the tie-break and a
 * register-pressure lookahead that prefers live-range-shrinking
 * instructions once the modeled resident set nears capacity.
 *
 * Output is deterministic: every comparison bottoms out in the
 * instruction id, no timestamps or host state are consulted, and the
 * pass is single-threaded, so the scheduled program is byte-identical
 * across platforms and CL_THREADS settings.
 */

#ifndef CL_COMPILER_SCHEDULE_H
#define CL_COMPILER_SCHEDULE_H

#include "compiler/homprogram.h"
#include "hw/config.h"
#include "isa/program.h"

namespace cl {

/** Scheduling policy applied to a lowered Program. */
enum class ScheduleMode
{
    None, ///< Keep the lowering emission order.
    List  ///< Dependence-graph list scheduling (see file header).
};

const char *scheduleModeName(ScheduleMode m);

/** Parse a --schedule CLI value ("none"/"list"); fatal on anything
 *  else, listing the valid choices. */
ScheduleMode scheduleModeByName(const std::string &name);

/** Statistics of one scheduling run, for reports and tests. */
struct ScheduleStats
{
    std::size_t depEdges = 0; ///< Deduplicated dependence edges.
    std::size_t moved = 0;    ///< Instructions not at their old slot.
    /** Duration-weighted longest path through the dependence graph —
     *  a lower bound on any legal schedule's span. */
    std::uint64_t criticalPathCycles = 0;
};

/**
 * Reorder @p prog under @p mode. ScheduleMode::None returns the
 * program unchanged. The result contains the same values and the
 * same instructions (new ids in issue order); per-value
 * producer/consumer links — the Belady manager's future-use
 * information — are rebuilt to match the scheduled order.
 */
Program scheduleProgram(const Program &prog, const ChipConfig &cfg,
                        ScheduleMode mode,
                        ScheduleStats *stats = nullptr);

/**
 * Dedup'd dependence graph over a HomProgram's ops — the op-level
 * analogue of the instruction-level graph the list scheduler builds
 * (HomPrograms are SSA, so the graph falls straight out of the arg
 * lists; duplicate args like add(x, x) contribute one edge). The host
 * task-graph runtime (src/runtime) executes along this graph: an op
 * becomes ready when its predecessors retire, and the ready queue is
 * ordered by `height` — the same duration-weighted critical-path
 * priority the scheduler uses, with homOpWeight as the duration model.
 */
struct HomDepGraph
{
    std::vector<std::vector<std::uint32_t>> succs; ///< Dedup'd.
    std::vector<std::uint32_t> predCount;          ///< Dedup'd in-degree.
    /** Weight-inclusive critical path from op to any sink. */
    std::vector<std::uint64_t> height;
    std::uint64_t critical = 0; ///< max over height.
    std::size_t edges = 0;      ///< Dedup'd edge count.
};

/** Relative host cost of one op (keyswitching ops dominate). */
std::uint64_t homOpWeight(const HomOp &op);

HomDepGraph buildHomDepGraph(const HomProgram &prog);

} // namespace cl

#endif // CL_COMPILER_SCHEDULE_H

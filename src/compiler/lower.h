/**
 * @file
 * Lowering homomorphic operations to accelerator instructions
 * (Sec 6, step 3).
 *
 * Each keyswitch becomes up to three chained FU pipelines (mod-up,
 * hint MAC, mod-down — Fig 8 shows the MAC/mod-down chain); all other
 * polynomial computations become single-FU instructions. When the
 * configuration lacks the CRB or chaining (Table 4 ablations), the
 * change-RNS-base MACs are emitted as port-hungry multiply/add ops —
 * reproducing the register-file bottleneck that motivates the CRB.
 */

#ifndef CL_COMPILER_LOWER_H
#define CL_COMPILER_LOWER_H

#include "compiler/homprogram.h"
#include "compiler/schedule.h"
#include "hw/config.h"

namespace cl {

/** Lowering statistics for cross-checks against Table 1. */
struct LowerStats
{
    std::uint64_t keyswitches = 0;
    std::uint64_t nttVectors = 0;  ///< Residue-poly (I)NTT count.
    std::uint64_t mulVectors = 0;  ///< Element-wise multiply count.
    std::uint64_t addVectors = 0;
    std::uint64_t crbMacVectors = 0;
};

class Lowering
{
  public:
    explicit Lowering(ChipConfig cfg,
                      ScheduleMode schedule = ScheduleMode::None)
        : cfg_(std::move(cfg)), schedule_(schedule)
    {
    }

    /** Translate a homomorphic program into a vector program; under
     *  ScheduleMode::List the emitted order is then rewritten by the
     *  list scheduler (compiler/schedule.h). */
    Program lower(const HomProgram &hp);

    const LowerStats &stats() const { return stats_; }

    /** Filled by lower() when scheduling ran (zeros under None). */
    const ScheduleStats &scheduleStats() const { return schedStats_; }

  private:
    ChipConfig cfg_;
    ScheduleMode schedule_;
    LowerStats stats_;
    ScheduleStats schedStats_;
};

} // namespace cl

#endif // CL_COMPILER_LOWER_H

/**
 * @file
 * Lowering homomorphic operations to accelerator instructions
 * (Sec 6, step 3).
 *
 * Each keyswitch becomes up to three chained FU pipelines (mod-up,
 * hint MAC, mod-down — Fig 8 shows the MAC/mod-down chain); all other
 * polynomial computations become single-FU instructions. When the
 * configuration lacks the CRB or chaining (Table 4 ablations), the
 * change-RNS-base MACs are emitted as port-hungry multiply/add ops —
 * reproducing the register-file bottleneck that motivates the CRB.
 */

#ifndef CL_COMPILER_LOWER_H
#define CL_COMPILER_LOWER_H

#include "compiler/homprogram.h"
#include "hw/config.h"

namespace cl {

/** Lowering statistics for cross-checks against Table 1. */
struct LowerStats
{
    std::uint64_t keyswitches = 0;
    std::uint64_t nttVectors = 0;  ///< Residue-poly (I)NTT count.
    std::uint64_t mulVectors = 0;  ///< Element-wise multiply count.
    std::uint64_t addVectors = 0;
    std::uint64_t crbMacVectors = 0;
};

class Lowering
{
  public:
    explicit Lowering(ChipConfig cfg) : cfg_(std::move(cfg)) {}

    /** Translate a homomorphic program into a vector program. */
    Program lower(const HomProgram &hp);

    const LowerStats &stats() const { return stats_; }

  private:
    ChipConfig cfg_;
    LowerStats stats_;
};

} // namespace cl

#endif // CL_COMPILER_LOWER_H

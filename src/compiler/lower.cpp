#include "lower.h"

#include <algorithm>
#include <map>

namespace cl {

namespace {

/** Digit sizes partitioning l towers into t digits. */
std::vector<unsigned>
digitSizes(unsigned l, unsigned t)
{
    const unsigned a = static_cast<unsigned>(ceilDiv(l, t));
    std::vector<unsigned> sizes;
    unsigned left = l;
    while (left > 0) {
        const unsigned d = std::min(a, left);
        sizes.push_back(d);
        left -= d;
    }
    return sizes;
}

} // namespace

Program
Lowering::lower(const HomProgram &hp)
{
    Program prog;
    prog.name = hp.name;
    prog.n = hp.n();
    const std::size_t n = hp.n();
    const std::uint64_t vc = cfg_.vectorCycles(n);
    const unsigned logn = log2Exact(n);
    const std::uint64_t bflyPerVec =
        static_cast<std::uint64_t>(n) * logn / 2;

    // Map from hom-op id to the value holding its result ciphertext.
    std::vector<std::uint32_t> valueOf(hp.ops.size(),
                                       std::uint32_t(-1));
    // Reusable operands.
    std::map<std::string, std::uint32_t> kshCache;
    std::map<std::string, std::uint32_t> plainCache;

    // Hints are generated once per key at the highest level the key
    // is used at; lower-level keyswitches read a slice.
    std::map<std::string, unsigned> kshMaxLevel;
    for (const HomOp &op : hp.ops) {
        if (!op.keyId.empty()) {
            auto [it, fresh] = kshMaxLevel.emplace(op.keyId, op.level);
            if (!fresh)
                it->second = std::max(it->second, op.level);
        }
    }

    auto ct_words = [&](unsigned l) {
        return static_cast<std::uint64_t>(2) * l * n;
    };

    auto clamp_ports = [&](unsigned p) {
        return std::min(p, cfg_.rfPorts);
    };

    // Units of a class an instruction can actually use (bounded by
    // the work available).
    auto par = [&](unsigned units, std::uint64_t vecs) -> unsigned {
        return std::max<unsigned>(
            1, static_cast<unsigned>(
                   std::min<std::uint64_t>(units, vecs)));
    };

    auto get_ksh = [&](const std::string &key_id, unsigned l,
                       unsigned t) -> std::uint32_t {
        // One hint per key identity *and digit count*, generated at
        // the top of the chain; lower levels read a slice of it. This
        // is what lets the compiler's ordering reuse hints on chip
        // (Sec 6). Keyswitches under the same key but a different
        // digit count need differently shaped hints — caching on the
        // key alone would silently reuse the first call's size.
        const unsigned lk = kshMaxLevel.at(key_id);
        const unsigned tk = std::min(t, lk);
        const unsigned a = static_cast<unsigned>(ceilDiv(lk, tk));
        const unsigned ext = lk + a;
        const unsigned dnum =
            static_cast<unsigned>(digitSizes(lk, tk).size());
        const std::string cache_key =
            key_id + "#d" + std::to_string(dnum);
        auto it = kshCache.find(cache_key);
        if (it != kshCache.end())
            return it->second;
        // Full hint: dnum pairs over ext moduli. With KSHGen, only
        // the b-halves are stored/loaded (Sec 5.2).
        std::uint64_t words =
            static_cast<std::uint64_t>(2) * dnum * ext * n;
        if (cfg_.hasKshGen)
            words /= 2;
        const std::uint32_t vid =
            prog.addValue(ValueKind::KeySwitchHint, words, cache_key);
        prog.values[vid].seededHalf = cfg_.hasKshGen;
        kshCache.emplace(cache_key, vid);
        return vid;
    };

    auto get_plain = [&](const std::string &plain_id,
                         unsigned l) -> std::uint32_t {
        const std::string key = plain_id + "@l" + std::to_string(l);
        auto it = plainCache.find(key);
        if (it != plainCache.end())
            return it->second;
        const std::uint32_t vid = prog.addValue(
            ValueKind::Plaintext, static_cast<std::uint64_t>(l) * n, key);
        plainCache.emplace(key, vid);
        return vid;
    };

    // Parallelism the register file allows for unchained 3-port MACs.
    const unsigned sw_par = std::max(
        1u, std::min({cfg_.mulUnits, cfg_.addUnits, cfg_.rfPorts / 3u}));

    /**
     * Emit the keyswitch of a single polynomial (l towers) under the
     * given hint, fused with a final combine-add into the output
     * value. `extra_read` is the ciphertext part added in at the end
     * (tensor product or rotated c0). Returns nothing; the result is
     * written to `out_vid`.
     */
    auto emit_keyswitch = [&](std::uint32_t in_vid, unsigned l, unsigned t,
                              const std::string &key_id,
                              std::uint32_t extra_read,
                              std::uint32_t out_vid,
                              const std::string &tag) {
        ++stats_.keyswitches;
        const auto sizes = digitSizes(l, t);
        const unsigned dnum = static_cast<unsigned>(sizes.size());
        const unsigned a = static_cast<unsigned>(ceilDiv(l, t));
        const unsigned ext = l + a;
        const std::uint32_t ksh = get_ksh(key_id, l, t);

        // --- Mod-up: INTT l, change base per digit, NTT the raised
        //     residues (Listing 1, lines 2-4). ---
        std::uint64_t crb_macs = 0;
        for (unsigned dj : sizes) {
            // Single-prime digits lift by broadcast (no multiplies).
            if (dj > 1)
                crb_macs += static_cast<std::uint64_t>(dj) * (ext - dj);
        }
        const std::uint64_t ntt_mu =
            static_cast<std::uint64_t>(dnum) * ext; // INTT l + NTT rest
        stats_.nttVectors += ntt_mu;
        stats_.crbMacVectors += crb_macs;

        const std::uint32_t raised = prog.addValue(
            ValueKind::Intermediate,
            static_cast<std::uint64_t>(dnum) * ext * n, tag + ".raised");

        if (cfg_.hasCrb && cfg_.hasChaining) {
            PolyInst mu;
            mu.mnemonic = tag + ".ksw.modup";
            mu.n = n;
            const unsigned nu = par(cfg_.nttUnits, ntt_mu);
            mu.fus = {{FuType::Ntt, nu, ntt_mu * bflyPerVec},
                      {FuType::Crb, 1, crb_macs * n}};
            mu.reads = {in_vid};
            mu.writes = {raised};
            mu.duration =
                std::max(ceilDiv(ntt_mu, nu) * vc,
                         std::max<std::uint64_t>(l, dnum * ext - l) * vc);
            mu.networkWords = ntt_mu * n;
            mu.rfPorts = clamp_ports(2);
            mu.rfWords = (l + static_cast<std::uint64_t>(dnum) * ext) * n;
            prog.addInst(std::move(mu));
        } else {
            // Software change-RNS-base: the MACs flow through the
            // register file on the multiply/add units, throttled by
            // ports — the bottleneck the CRB removes (Sec 3, Sec 5.1).
            PolyInst intt;
            intt.mnemonic = tag + ".ksw.modup.intt";
            intt.n = n;
            const unsigned niu = par(cfg_.nttUnits, l);
            intt.fus = {{FuType::Ntt, niu,
                         static_cast<std::uint64_t>(l) * bflyPerVec}};
            intt.reads = {in_vid};
            intt.writes = {raised}; // staged in place
            intt.duration = ceilDiv(l, niu) * vc;
            intt.networkWords = static_cast<std::uint64_t>(l) * n;
            intt.rfPorts = clamp_ports(2);
            intt.rfWords = static_cast<std::uint64_t>(2) * l * n;
            prog.addInst(std::move(intt));

            if (crb_macs > 0) {
                // Standard keyswitching (single-prime digits) lifts
                // by broadcast and skips this stage entirely.
                PolyInst mac;
                mac.mnemonic = tag + ".ksw.modup.macs";
                mac.n = n;
                mac.fus = {{FuType::Multiply, sw_par, crb_macs * n},
                           {FuType::Add, sw_par, crb_macs * n}};
                mac.reads = {raised};
                mac.writes = {raised};
                mac.duration = ceilDiv(crb_macs, sw_par) * vc;
                mac.rfPorts = clamp_ports(3 * sw_par);
                mac.rfWords = 3 * crb_macs * n;
                prog.addInst(std::move(mac));
            }

            PolyInst ntt;
            ntt.mnemonic = tag + ".ksw.modup.ntt";
            ntt.n = n;
            const std::uint64_t ntt_out = ntt_mu - l;
            const unsigned nou = par(cfg_.nttUnits, ntt_out);
            ntt.fus = {{FuType::Ntt, nou, ntt_out * bflyPerVec}};
            ntt.reads = {raised};
            ntt.writes = {raised};
            ntt.duration = ceilDiv(ntt_out, nou) * vc;
            ntt.networkWords = ntt_out * n;
            ntt.rfPorts = clamp_ports(2);
            ntt.rfWords = 2 * ntt_out * n;
            prog.addInst(std::move(ntt));
        }

        // --- Hint MAC: raised x (b_j, a_j), accumulating into two
        //     ext-tower polynomials (Listing 1, line 6; Fig 8). ---
        const std::uint64_t mac_vecs =
            static_cast<std::uint64_t>(2) * dnum * ext;
        stats_.mulVectors += mac_vecs;
        stats_.addVectors += mac_vecs;

        const std::uint32_t acc = prog.addValue(
            ValueKind::Intermediate,
            static_cast<std::uint64_t>(2) * ext * n, tag + ".acc");

        {
            PolyInst mac;
            mac.mnemonic = tag + ".ksw.mac";
            mac.n = n;
            const bool chained = cfg_.hasChaining;
            const unsigned want =
                chained ? 2u
                        : std::max(1u, std::min(cfg_.mulUnits,
                                                cfg_.rfPorts / 3u));
            // Units actually acquired are bounded by the pools; the
            // modelled latency must divide by that, not by the wish
            // (on mulUnits < 2 configs the two differ).
            const unsigned mu =
                std::max(1u, std::min(want, cfg_.mulUnits));
            const unsigned au =
                std::max(1u, std::min(want, cfg_.addUnits));
            mac.fus = {{FuType::Multiply, mu, mac_vecs * n},
                       {FuType::Add, au, mac_vecs * n}};
            if (cfg_.hasKshGen) {
                mac.fus.push_back({FuType::KshGen, 1,
                                   static_cast<std::uint64_t>(dnum) * ext *
                                       n});
            }
            mac.reads = {raised, ksh};
            mac.writes = {acc};
            mac.duration = ceilDiv(mac_vecs, std::min(mu, au)) * vc;
            mac.rfPorts = clamp_ports(chained ? 4 : 3 * want);
            mac.rfWords =
                (mac_vecs + (cfg_.hasKshGen ? mac_vecs / 2 : mac_vecs)) * n;
            prog.addInst(std::move(mac));
        }

        // --- Mod-down + combine (Listing 1, lines 7-10). ---
        const std::uint64_t ntt_md = static_cast<std::uint64_t>(2) *
                                     (a + l);
        const std::uint64_t md_macs =
            static_cast<std::uint64_t>(2) * a * l;
        stats_.nttVectors += ntt_md;
        stats_.crbMacVectors += md_macs;
        stats_.mulVectors += 2ull * l;
        stats_.addVectors += 4ull * l; // subtract + combine

        {
            PolyInst md;
            md.mnemonic = tag + ".ksw.moddown";
            md.n = n;
            const unsigned nmu = par(cfg_.nttUnits, ntt_md);
            if (cfg_.hasCrb && cfg_.hasChaining) {
                // Clamp the scale/combine stages to the pools and let
                // the slowest stage of the chain set the occupancy:
                // the NTT round trips, 2l multiplies on one unit, or
                // 4l adds on the units actually acquired.
                const unsigned mda =
                    std::max(1u, std::min(2u, cfg_.addUnits));
                md.fus = {{FuType::Ntt, nmu, ntt_md * bflyPerVec},
                          {FuType::Crb, 1, md_macs * n},
                          {FuType::Multiply, 1, 2ull * l * n},
                          {FuType::Add, mda, 4ull * l * n}};
                md.duration =
                    std::max<std::uint64_t>({ceilDiv(ntt_md, nmu),
                                             2ull * l,
                                             ceilDiv(4ull * l, mda)}) *
                    vc;
                md.rfPorts = clamp_ports(4);
            } else {
                md.fus = {{FuType::Ntt, nmu, ntt_md * bflyPerVec},
                          {FuType::Multiply, std::min(sw_par,
                                                      cfg_.mulUnits),
                           (md_macs + 2ull * l) * n},
                          {FuType::Add, std::min(sw_par, cfg_.addUnits),
                           (md_macs + 4ull * l) * n}};
                md.duration =
                    std::max(ceilDiv(ntt_md, nmu),
                             ceilDiv(md_macs + 4 * l, sw_par)) * vc;
                md.rfPorts = clamp_ports(3 * sw_par);
            }
            md.reads = {acc};
            if (extra_read != std::uint32_t(-1))
                md.reads.push_back(extra_read);
            md.writes = {out_vid};
            md.networkWords = ntt_md * n;
            md.rfWords = (2ull * ext + 4ull * l) * n;
            prog.addInst(std::move(md));
        }
    };

    // ------------------------------------------------------------------
    for (const HomOp &op : hp.ops) {
        const unsigned l = op.level;
        const unsigned lo = op.outLevel;
        const std::string tag = "op" + std::to_string(op.id);

        switch (op.kind) {
          case HomOpKind::Input: {
            valueOf[op.id] =
                prog.addValue(ValueKind::Input, ct_words(l), tag + ".in");
            break;
          }
          case HomOpKind::Output: {
            const std::uint32_t src = valueOf[op.args[0]];
            // Copy into an output-class value so the store is
            // accounted (and the source may still be consumed).
            const std::uint32_t out = prog.addValue(
                ValueKind::Output, ct_words(l), tag + ".out");
            PolyInst cp;
            cp.mnemonic = tag + ".store";
            cp.n = n;
            cp.fus = {{FuType::Add, 1, ct_words(l)}};
            cp.reads = {src};
            cp.writes = {out};
            cp.duration = ceilDiv(2ull * l, 1) * vc;
            cp.rfPorts = clamp_ports(2);
            cp.rfWords = 2 * ct_words(l);
            prog.addInst(std::move(cp));
            valueOf[op.id] = out;
            break;
          }
          case HomOpKind::Add: {
            const std::uint32_t out = prog.addValue(
                ValueKind::Intermediate, ct_words(l), tag + ".sum");
            PolyInst inst;
            inst.mnemonic = tag + ".add";
            inst.n = n;
            const unsigned apu = par(cfg_.addUnits, 2ull * l);
            inst.fus = {{FuType::Add, apu, ct_words(l)}};
            inst.reads = {valueOf[op.args[0]], valueOf[op.args[1]]};
            inst.writes = {out};
            inst.duration = ceilDiv(2ull * l, apu) * vc;
            inst.rfPorts = clamp_ports(3);
            inst.rfWords = 3 * ct_words(l);
            stats_.addVectors += 2ull * l;
            prog.addInst(std::move(inst));
            valueOf[op.id] = out;
            break;
          }
          case HomOpKind::AddPlain: {
            const std::uint32_t out = prog.addValue(
                ValueKind::Intermediate, ct_words(l), tag + ".sum");
            PolyInst inst;
            inst.mnemonic = tag + ".addp";
            inst.n = n;
            inst.fus = {{FuType::Add, 1, static_cast<std::uint64_t>(l) *
                                             n}};
            inst.reads = {valueOf[op.args[0]],
                          get_plain(op.plainId, l)};
            inst.writes = {out};
            inst.duration = static_cast<std::uint64_t>(l) * vc;
            inst.rfPorts = clamp_ports(3);
            inst.rfWords = (3ull * l) * n;
            stats_.addVectors += l;
            prog.addInst(std::move(inst));
            valueOf[op.id] = out;
            break;
          }
          case HomOpKind::MulPlain: {
            const unsigned drop = l - lo;
            const std::uint32_t out = prog.addValue(
                ValueKind::Intermediate, ct_words(lo), tag + ".prod");
            PolyInst inst;
            inst.mnemonic = tag + ".mulp";
            inst.n = n;
            const std::uint64_t mul_vecs = 2ull * l;
            std::uint64_t ntt_vecs = 0;
            const unsigned mpu = par(cfg_.mulUnits, mul_vecs);
            unsigned npu = 1;
            inst.fus = {{FuType::Multiply, mpu, mul_vecs * n}};
            unsigned apu = 1;
            if (drop > 0) {
                // Fused rescale: INTT dropped towers, correct and NTT
                // back into the remaining ones.
                ntt_vecs = 2ull * drop + 2ull * lo;
                npu = par(cfg_.nttUnits, ntt_vecs);
                apu = par(cfg_.addUnits, 2ull * lo);
                inst.fus.push_back({FuType::Ntt, npu,
                                    ntt_vecs * bflyPerVec});
                inst.fus.push_back({FuType::Add, apu, 2ull * lo * n});
                inst.networkWords = ntt_vecs * n;
            }
            inst.reads = {valueOf[op.args[0]], get_plain(op.plainId, l)};
            inst.writes = {out};
            // Every stage's latency divides by the units it acquired;
            // the correction adds can bound the pass on few-adder
            // configs.
            inst.duration =
                std::max<std::uint64_t>(
                    {ceilDiv(mul_vecs, mpu), ceilDiv(ntt_vecs, npu),
                     drop > 0 ? ceilDiv(2ull * lo, apu) : 0ull}) *
                vc;
            inst.rfPorts = clamp_ports(4);
            inst.rfWords = (3ull * l + 2ull * lo) * n;
            stats_.mulVectors += mul_vecs;
            stats_.nttVectors += ntt_vecs;
            prog.addInst(std::move(inst));
            valueOf[op.id] = out;
            break;
          }
          case HomOpKind::Mul: {
            const unsigned drop = l - lo;
            const std::uint32_t va = valueOf[op.args[0]];
            const std::uint32_t vb = valueOf[op.args[1]];
            // Tensor product: t2 = a1*b1 switched; (t0, t1) combined.
            const std::uint32_t tensor = prog.addValue(
                ValueKind::Intermediate, 3ull * l * n, tag + ".tensor");
            PolyInst tp;
            tp.mnemonic = tag + ".tensor";
            tp.n = n;
            const std::uint64_t tmuls = 4ull * l;
            const unsigned tpu = par(cfg_.mulUnits, tmuls);
            const unsigned tau =
                par(cfg_.addUnits, static_cast<std::uint64_t>(l));
            tp.fus = {{FuType::Multiply, tpu, tmuls * n},
                      {FuType::Add, tau,
                       static_cast<std::uint64_t>(l) * n}};
            tp.reads = {va, vb};
            tp.writes = {tensor};
            // Bounded by either the 4l multiplies or the l combine
            // adds, each divided by the units actually acquired.
            tp.duration =
                std::max(ceilDiv(tmuls, tpu),
                         ceilDiv(static_cast<std::uint64_t>(l), tau)) *
                vc;
            tp.rfPorts = clamp_ports(cfg_.hasChaining ? 5 : 6);
            tp.rfWords = (4ull * l + 3ull * l) * n;
            stats_.mulVectors += tmuls;
            stats_.addVectors += l;
            prog.addInst(std::move(tp));

            // Relinearize t2 and fold the combine into mod-down.
            const std::uint32_t ks = prog.addValue(
                ValueKind::Intermediate, ct_words(l), tag + ".relin");
            emit_keyswitch(tensor, l, op.digits, op.keyId, tensor, ks,
                           tag);

            // A lazy multiply (drop == 0) keeps its level: there is no
            // tower to strip, so emitting the rescale instruction
            // anyway would charge 2*lo spurious NTT round trips plus
            // phantom mult/add vectors for work no backend performs.
            if (drop == 0) {
                valueOf[op.id] = ks;
                break;
            }

            // Rescale to the output level.
            const std::uint32_t out = prog.addValue(
                ValueKind::Intermediate, ct_words(lo), tag + ".out");
            PolyInst rs;
            rs.mnemonic = tag + ".rescale";
            rs.n = n;
            const std::uint64_t ntt_rs = 2ull * drop + 2ull * lo;
            const unsigned rsu = par(cfg_.nttUnits, ntt_rs);
            const unsigned rmu = par(cfg_.mulUnits, 2ull * lo);
            const unsigned rau = par(cfg_.addUnits, 2ull * lo);
            rs.fus = {{FuType::Ntt, rsu, ntt_rs * bflyPerVec},
                      {FuType::Multiply, rmu, 2ull * lo * n},
                      {FuType::Add, rau, 2ull * lo * n}};
            rs.reads = {ks};
            rs.writes = {out};
            // Slowest stage of the chain, each divided by the units it
            // actually acquired.
            rs.duration =
                std::max<std::uint64_t>({ceilDiv(ntt_rs, rsu),
                                         ceilDiv(2ull * lo, rmu),
                                         ceilDiv(2ull * lo, rau)}) *
                vc;
            rs.networkWords = ntt_rs * n;
            rs.rfPorts = clamp_ports(3);
            rs.rfWords = (2ull * l + 2ull * lo) * n;
            stats_.nttVectors += ntt_rs;
            stats_.mulVectors += 2ull * lo;
            stats_.addVectors += 2ull * lo;
            prog.addInst(std::move(rs));
            valueOf[op.id] = out;
            break;
          }
          case HomOpKind::Rotate:
          case HomOpKind::Conjugate: {
            const std::uint32_t src = valueOf[op.args[0]];
            const std::uint32_t rot = prog.addValue(
                ValueKind::Intermediate, ct_words(l), tag + ".rot");
            PolyInst au;
            au.mnemonic = tag + ".auto";
            au.n = n;
            au.fus = {{FuType::Automorphism, 1, ct_words(l)}};
            au.reads = {src};
            au.writes = {rot};
            au.duration = 2ull * l * vc;
            au.networkWords = 2ull * ct_words(l); // two transposes each
            au.rfPorts = clamp_ports(2);
            au.rfWords = 2 * ct_words(l);
            prog.addInst(std::move(au));

            const std::uint32_t out = prog.addValue(
                ValueKind::Intermediate, ct_words(l), tag + ".out");
            emit_keyswitch(rot, l, op.digits, op.keyId, rot, out, tag);
            valueOf[op.id] = out;
            break;
          }
          case HomOpKind::Rescale: {
            const unsigned drop = l - lo;
            const std::uint32_t out = prog.addValue(
                ValueKind::Intermediate, ct_words(lo), tag + ".out");
            PolyInst rs;
            rs.mnemonic = tag + ".rescale";
            rs.n = n;
            const std::uint64_t ntt_rs = 2ull * drop + 2ull * lo;
            const unsigned rsu = par(cfg_.nttUnits, ntt_rs);
            const unsigned rmu = par(cfg_.mulUnits, 2ull * lo);
            const unsigned rau = par(cfg_.addUnits, 2ull * lo);
            rs.fus = {{FuType::Ntt, rsu, ntt_rs * bflyPerVec},
                      {FuType::Multiply, rmu, 2ull * lo * n},
                      {FuType::Add, rau, 2ull * lo * n}};
            rs.reads = {valueOf[op.args[0]]};
            rs.writes = {out};
            // Same acquired-unit bounds as the keyswitch rescale.
            rs.duration =
                std::max<std::uint64_t>({ceilDiv(ntt_rs, rsu),
                                         ceilDiv(2ull * lo, rmu),
                                         ceilDiv(2ull * lo, rau)}) *
                vc;
            rs.networkWords = ntt_rs * n;
            rs.rfPorts = clamp_ports(3);
            rs.rfWords = (2ull * l + 2ull * lo) * n;
            prog.addInst(std::move(rs));
            valueOf[op.id] = out;
            break;
          }
          case HomOpKind::LevelDrop: {
            const std::uint32_t out = prog.addValue(
                ValueKind::Intermediate, ct_words(lo), tag + ".out");
            PolyInst cp;
            cp.mnemonic = tag + ".leveldrop";
            cp.n = n;
            cp.fus = {{FuType::Add, 1, ct_words(lo)}};
            cp.reads = {valueOf[op.args[0]]};
            cp.writes = {out};
            cp.duration = 2ull * lo * vc;
            cp.rfPorts = clamp_ports(2);
            cp.rfWords = 2 * ct_words(lo);
            prog.addInst(std::move(cp));
            valueOf[op.id] = out;
            break;
          }
          case HomOpKind::ModRaise: {
            // Raise both polynomials from l to lo (> l) towers:
            // INTT, change base, NTT everything back up.
            const std::uint32_t out = prog.addValue(
                ValueKind::Intermediate, ct_words(lo), tag + ".raised");
            PolyInst mr;
            mr.mnemonic = tag + ".modraise";
            mr.n = n;
            const std::uint64_t ntt_vecs =
                2ull * l + 2ull * lo; // INTT in + NTT out
            const std::uint64_t macs =
                2ull * l * (lo - l); // change-base MACs
            const unsigned mru = par(cfg_.nttUnits, ntt_vecs);
            if (cfg_.hasCrb) {
                mr.fus = {{FuType::Ntt, mru, ntt_vecs * bflyPerVec},
                          {FuType::Crb, 1, macs * n}};
                mr.duration = ceilDiv(ntt_vecs, mru) * vc;
                mr.rfPorts = clamp_ports(2);
            } else {
                mr.fus = {{FuType::Ntt, mru, ntt_vecs * bflyPerVec},
                          {FuType::Multiply, sw_par, macs * n},
                          {FuType::Add, sw_par, macs * n}};
                mr.duration = std::max(ceilDiv(ntt_vecs, mru),
                                       ceilDiv(macs, sw_par)) * vc;
                mr.rfPorts = clamp_ports(3 * sw_par);
            }
            mr.reads = {valueOf[op.args[0]]};
            mr.writes = {out};
            mr.networkWords = ntt_vecs * n;
            mr.rfWords = (2ull * l + 2ull * lo) * n;
            stats_.nttVectors += ntt_vecs;
            stats_.crbMacVectors += macs;
            prog.addInst(std::move(mr));
            valueOf[op.id] = out;
            break;
          }
        }
    }

    prog.validate();
    if (schedule_ != ScheduleMode::None)
        prog = scheduleProgram(prog, cfg_, schedule_, &schedStats_);
    return prog;
}

} // namespace cl

/**
 * @file
 * Homomorphic-operation dataflow graphs and the builder DSL (Sec 6,
 * step 1-2). FHE programs are static dataflow graphs of homomorphic
 * ops (Sec 2.1); workload generators build them with this API, the
 * lowering pass translates them to accelerator instructions.
 *
 * Levels are counted in 28-bit RNS primes (the hardware word width),
 * so a multiply at a 2^56 scale consumes two levels — this is why
 * bootstrapping consumes ~35 levels in the paper's benchmarks.
 */

#ifndef CL_COMPILER_HOMPROGRAM_H
#define CL_COMPILER_HOMPROGRAM_H

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "util/common.h"

namespace cl {

enum class HomOpKind
{
    Input,    ///< Fresh ciphertext from the host.
    Add,      ///< ct + ct.
    AddPlain, ///< ct + pt.
    MulPlain, ///< ct * pt (+ rescale).
    Mul,      ///< ct * ct (+ relinearize + rescale).
    Rotate,   ///< slot rotation (automorphism + keyswitch).
    Conjugate,
    Rescale,  ///< explicit rescale (usually folded into Mul*).
    LevelDrop,///< modulus alignment without rescale.
    ModRaise, ///< bootstrapping entry: raise exhausted ct.
    Output    ///< result streamed to the host.
};

struct HomOp
{
    std::uint32_t id = 0;
    HomOpKind kind = HomOpKind::Input;
    std::vector<std::uint32_t> args; ///< Producing op ids.
    unsigned level = 0;       ///< Towers at which the op executes.
    unsigned outLevel = 0;    ///< Towers of the result.
    int rotateBy = 0;         ///< For Rotate.
    std::string keyId;        ///< KSH identity (reuse across ops).
    std::string plainId;      ///< Plaintext identity (reuse).
    std::uint32_t digits = 1; ///< Keyswitch digit count t (Sec 3.1).
};

struct HomProgram
{
    std::string name;
    unsigned logN = 16;
    unsigned lMax = 60;       ///< Deepest level used.
    std::vector<HomOp> ops;

    std::size_t n() const { return std::size_t{1} << logN; }

    /** Count of ops by kind (for reporting). */
    std::size_t countKind(HomOpKind k) const;
};

/** Digit policy: keyswitch digit count as a function of level
 *  (Sec 3.1 / Sec 9.4 describe the per-security-level policies). */
using DigitPolicy = std::function<unsigned(unsigned level)>;

/** 80-bit security, N=64K: 2-digit for L > 52, 1-digit below. */
DigitPolicy digitPolicy80();
/** 128-bit security, N=64K: 1 digit for L<32, 2 for 32<=L<43, 3 above. */
DigitPolicy digitPolicy128();
/** 200-bit security, N=128K: higher-digit keyswitching throughout. */
DigitPolicy digitPolicy200();

/**
 * Convenience builder tracking ciphertext levels. Handles the
 * level/rescale bookkeeping so workload generators read like the
 * computations they model.
 */
class HomBuilder
{
  public:
    HomBuilder(std::string name, unsigned logn, unsigned l_max,
               DigitPolicy policy = digitPolicy80());

    /** Ciphertext handle: op id + current level. */
    struct Ct
    {
        std::uint32_t op;
        unsigned level;
    };

    Ct input(unsigned level);
    Ct add(Ct a, Ct b);
    Ct addPlain(Ct a, const std::string &plain_id);
    /** Multiply by plaintext, consuming @p drop levels (scale width
     *  in 28-bit primes). */
    Ct mulPlain(Ct a, const std::string &plain_id, unsigned drop = 1);
    Ct mul(Ct a, Ct b, unsigned drop = 1);
    /** Explicit rescale: strip @p drop towers, dividing the scale by
     *  their moduli (for programs that rescale lazily, apart from the
     *  rescale folded into mul/mulPlain). */
    Ct rescale(Ct a, unsigned drop = 1);
    Ct rotate(Ct a, int steps);
    Ct conjugate(Ct a);
    Ct levelDrop(Ct a, unsigned target);
    Ct modRaise(Ct a, unsigned target);
    void output(Ct a);

    /**
     * Packed CKKS bootstrapping (Sec 6 "optimized bootstrapping"):
     * ModRaise, CoeffToSlot (recursively decomposed DFT as BSGS
     * linear transforms), EvalMod (Chebyshev sine + double-angle),
     * SlotToCoeff. Consumes `bootLevels()` levels from lMax.
     *
     * @param a Exhausted ciphertext (any level >= 1).
     * @param tag Unique tag for this call's plaintext matrices (pass
     *        the same tag to share them across calls — they are the
     *        same DFT factors every time).
     */
    Ct bootstrap(Ct a, const std::string &tag = "boot");

    /** Levels the bootstrap pipeline consumes (from lMax down). */
    unsigned bootLevels() const;

    /**
     * BSGS linear transform with @p diags nonzero diagonals: the
     * workhorse of matrix-vector products, convolutions, and the
     * bootstrapping DFT factors. Consumes @p drop levels.
     */
    Ct linearTransform(Ct a, unsigned diags, const std::string &tag,
                       unsigned drop, bool bsgs = true);

    HomProgram take() { return std::move(prog_); }
    const HomProgram &program() const { return prog_; }

    unsigned lMax() const { return prog_.lMax; }
    std::size_t slots() const { return prog_.n() / 2; }

    // Bootstrapping structure parameters (defaults follow [11]/[53]:
    // 4-stage CoeffToSlot / 3-stage SlotToCoeff, degree-63 Chebyshev
    // with 2 double-angle steps).
    unsigned ctsStages = 4;
    unsigned stcStages = 3;
    unsigned diagsPerStage = 24;  ///< Matrix diagonals per DFT factor.
    unsigned evalModMuls = 30;    ///< ct-ct mults in EvalMod.
    unsigned evalModLevels = 21;  ///< Levels EvalMod consumes.

  private:
    Ct keyedOp(HomOpKind kind, Ct a, std::string key_id, int steps);
    std::uint32_t push(HomOp op);
    unsigned digitsAt(unsigned level) const;

    HomProgram prog_;
    DigitPolicy policy_;
};

} // namespace cl

#endif // CL_COMPILER_HOMPROGRAM_H

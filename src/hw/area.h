/**
 * @file
 * Analytic area model reproducing Table 2 (14/12 nm synthesis
 * results) and its scaling rules: CRB area scales with pipeline count
 * and buffer size, register file with capacity, interconnect with the
 * network style (fixed permutation vs 16x-larger crossbar, Sec 5.3).
 */

#ifndef CL_HW_AREA_H
#define CL_HW_AREA_H

#include <string>
#include <vector>

#include "hw/config.h"

namespace cl {

struct AreaBreakdown
{
    double crb = 0;
    double ntt = 0;
    double automorphism = 0;
    double kshGen = 0;
    double multiply = 0;
    double add = 0;
    double registerFile = 0;
    double interconnect = 0;
    double memPhy = 0;

    double
    totalFus() const
    {
        return crb + ntt + automorphism + kshGen + multiply + add;
    }

    double
    total() const
    {
        return totalFus() + registerFile + interconnect + memPhy;
    }
};

/** Area (mm^2) of a configuration in the paper's 14/12 nm process. */
AreaBreakdown areaModel(const ChipConfig &cfg);

/** Scaling factor to TSMC 5 nm (Sec 7: 472 -> 157 mm^2). */
constexpr double areaScale5nm = 157.0 / 472.3;

} // namespace cl

#endif // CL_HW_AREA_H

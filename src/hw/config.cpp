#include "config.h"

#include <cstdlib>

namespace cl {

ChipConfig
ChipConfig::craterLake()
{
    return ChipConfig{}; // defaults are the paper's configuration
}

ChipConfig
ChipConfig::craterLake128k()
{
    ChipConfig c;
    c.name = "craterlake-128k";
    c.nMax = 1ull << 17;
    // CRB buffers double and NTTs gain a butterfly stage (Sec 9.4);
    // timing-wise the wider vectors just take 2x the issue cycles.
    return c;
}

ChipConfig
ChipConfig::noKshGen()
{
    ChipConfig c;
    c.name = "craterlake-nokshgen";
    c.hasKshGen = false;
    return c;
}

ChipConfig
ChipConfig::noCrbNoChain()
{
    ChipConfig c;
    c.name = "craterlake-nocrb";
    c.hasCrb = false;
    c.hasChaining = false;
    return c;
}

ChipConfig
ChipConfig::crossbarNetwork()
{
    ChipConfig c;
    c.name = "craterlake-crossbar";
    c.network = NetworkType::Crossbar;
    return c;
}

ChipConfig
ChipConfig::f1plus()
{
    ChipConfig c;
    c.name = "f1plus";
    c.lanes = 256;       // per-cluster vector width
    c.laneGroups = 32;   // clusters
    c.nttUnits = 32;     // one per cluster
    c.autUnits = 32;
    c.mulUnits = 64;     // two per cluster
    c.addUnits = 64;
    c.hasCrb = false;
    c.hasKshGen = false;
    c.hasChaining = false;
    c.rfPorts = 32;      // ~1 effective port per cluster (the
                         // >100-port shortfall of Sec 2.5)
    c.network = NetworkType::Crossbar;
    c.netWordsPerCycleOverride = 16384; // 57 TB/s (Sec 4.3)
    return c;
}

ChipConfig
ChipConfig::byName(const std::string &name)
{
    if (name == "craterlake")
        return craterLake();
    if (name == "craterlake-128k" || name == "128k")
        return craterLake128k();
    if (name == "craterlake-nokshgen" || name == "no-kshgen")
        return noKshGen();
    if (name == "craterlake-nocrb" || name == "no-crb" ||
        name == "no-crb-no-chain")
        return noCrbNoChain();
    if (name == "craterlake-crossbar" || name == "crossbar")
        return crossbarNetwork();
    if (name == "f1plus")
        return f1plus();
    if (name.rfind("rf", 0) == 0 && name.size() > 2) {
        const unsigned mb =
            static_cast<unsigned>(std::strtoul(name.c_str() + 2,
                                               nullptr, 10));
        if (mb > 0)
            return withRfMB(mb);
    }
    CL_FATAL("unknown config '", name,
             "'; valid: craterlake, craterlake-128k, no-kshgen, "
             "no-crb, crossbar, f1plus, rf<MB>");
}

ChipConfig
ChipConfig::withRfMB(unsigned mb)
{
    ChipConfig c;
    c.name = "craterlake-rf" + std::to_string(mb);
    c.rfBytes = static_cast<std::uint64_t>(mb) << 20;
    return c;
}

} // namespace cl

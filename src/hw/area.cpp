#include "area.h"

namespace cl {

namespace {

// Per-unit areas from Table 2 (mm^2, 14/12 nm), at the reference
// configuration: E = 2048 lanes, N_max = 64K, L_max = 60.
constexpr double crbRefArea = 158.8; // 60 pipelines, 26.25 MB buffers
constexpr double nttUnitArea = 28.1; // per unit
constexpr double autUnitArea = 9.0;
constexpr double kshGenArea = 3.3;
constexpr double mulUnitArea = 2.2;  // per unit
constexpr double addUnitArea = 0.8;  // per unit
constexpr double rfAreaPerMB = 192.0 / 256;
constexpr double fixedNetworkArea = 10.0;
constexpr double crossbarNetworkArea = 160.0; // 16x (Sec 8)
constexpr double hbmPhyArea = 29.8 / 2;

} // namespace

AreaBreakdown
areaModel(const ChipConfig &cfg)
{
    AreaBreakdown a;
    const double lane_scale = static_cast<double>(cfg.lanes) / 2048.0;
    // Vectors longer than 64K add one butterfly stage per doubling
    // and double the CRB buffers (Sec 9.4: +27.4 mm^2 for 128K).
    const double nmax_scale =
        static_cast<double>(cfg.nMax) / static_cast<double>(1ull << 16);

    if (cfg.hasCrb) {
        // The 26.25 MB residue-poly buffers are ~13% of the CRB at
        // SRAM density; they scale with N_max (Sec 9.4), the MAC
        // array with pipelines and lanes.
        const double pipe_scale = cfg.crbPipelines / 60.0;
        a.crb = crbRefArea * lane_scale * pipe_scale *
                (0.87 + 0.13 * nmax_scale);
    }
    const double ntt_stage_scale =
        (16.0 + (nmax_scale > 1 ? 1.0 : 0.0)) / 16.0; // extra stage
    a.ntt = nttUnitArea * cfg.nttUnits * lane_scale * ntt_stage_scale;
    a.automorphism = autUnitArea * cfg.autUnits * lane_scale;
    if (cfg.hasKshGen)
        a.kshGen = kshGenArea * lane_scale;
    a.multiply = mulUnitArea * cfg.mulUnits * lane_scale;
    a.add = addUnitArea * cfg.addUnits * lane_scale;

    a.registerFile =
        rfAreaPerMB * static_cast<double>(cfg.rfBytes >> 20);
    a.interconnect = cfg.network == NetworkType::FixedPermutation
                         ? fixedNetworkArea
                         : crossbarNetworkArea;
    a.memPhy = hbmPhyArea * cfg.hbmPhys;
    return a;
}

} // namespace cl

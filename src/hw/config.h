/**
 * @file
 * Hardware configuration of the modeled accelerator (Sec 4, Sec 7).
 *
 * A single ChipConfig describes CraterLake, its ablations (Table 4),
 * and the parameters relevant to F1+-style organizations, so the same
 * simulator evaluates every design point.
 */

#ifndef CL_HW_CONFIG_H
#define CL_HW_CONFIG_H

#include <array>
#include <cstdint>
#include <string>

#include "isa/program.h"

namespace cl {

enum class NetworkType
{
    FixedPermutation, ///< CraterLake's switchless transpose network.
    Crossbar          ///< F1-style cluster crossbar (ablation).
};

struct ChipConfig
{
    std::string name = "craterlake";

    // --- Vector organization (Sec 4.1, 4.2) ---
    std::size_t lanes = 2048;     ///< E: vector lanes chip-wide.
    std::size_t laneGroups = 8;   ///< G: physically distinct groups.
    double freqGhz = 1.0;

    // --- Functional units (Fig 5) ---
    unsigned nttUnits = 2;
    unsigned autUnits = 1;
    unsigned mulUnits = 5;
    unsigned addUnits = 5;
    bool hasCrb = true;      ///< Change-RNS-base unit (Sec 5.1).
    unsigned crbPipelines = 60; ///< = L_max the CRB is sized for.
    bool hasKshGen = true;   ///< Keyswitch-hint generator (Sec 5.2).
    bool hasChaining = true; ///< Vector chaining (Sec 5.4).

    // --- Storage & memory (Sec 4.1, Sec 7) ---
    std::uint64_t rfBytes = 256ull << 20; ///< Register file capacity.
    unsigned rfPorts = 12;   ///< Effective R/W ports (banked, 2x pump).
    unsigned hbmPhys = 2;
    double hbmGBpsPerPhy = 512.0;

    // --- Datapath ---
    unsigned wordBits = 28;  ///< Sec 5.5.
    std::size_t nMax = 1ull << 16;
    unsigned lMax = 60;

    // --- Interconnect (Sec 5.3) ---
    NetworkType network = NetworkType::FixedPermutation;
    /** Override network bandwidth (words/cycle); 0 = 4x lanes. */
    double netWordsPerCycleOverride = 0;

    // Derived quantities -------------------------------------------------

    /** Bytes per hardware word as stored (packed 28-bit words). */
    double wordBytes() const { return wordBits / 8.0; }

    /** Memory bandwidth in words per cycle. */
    double
    memWordsPerCycle() const
    {
        const double bytes_per_cycle =
            hbmPhys * hbmGBpsPerPhy / freqGhz; // GB/s over Gcycle/s
        return bytes_per_cycle / wordBytes();
    }

    /** Register file capacity in words. */
    std::uint64_t
    rfWords() const
    {
        return static_cast<std::uint64_t>(rfBytes / wordBytes());
    }

    /** Issue cycles for one N-element vector op. */
    std::uint64_t
    vectorCycles(std::size_t n) const
    {
        return std::max<std::uint64_t>(1, n / lanes);
    }

    /** Count of FUs of a given type. */
    unsigned
    fuCount(FuType t) const
    {
        switch (t) {
          case FuType::Ntt:
            return nttUnits;
          case FuType::Automorphism:
            return autUnits;
          case FuType::Multiply:
            return mulUnits;
          case FuType::Add:
            return addUnits;
          case FuType::Crb:
            return hasCrb ? 1 : 0;
          case FuType::KshGen:
            return hasKshGen ? 1 : 0;
          case FuType::Transpose:
            return 1; // the inter-group network, modeled as one resource
          default:
            return 0;
        }
    }

    /** Network bandwidth in elements per cycle (Sec 4.2: 4E for the
     *  fixed permutation network; 29 TB/s at E=2048 and 1 GHz). */
    double
    networkWordsPerCycle() const
    {
        if (netWordsPerCycleOverride > 0)
            return netWordsPerCycleOverride;
        return 4.0 * static_cast<double>(lanes);
    }

    // Standard configurations --------------------------------------------

    /** The paper's CraterLake configuration (Sec 7). */
    static ChipConfig craterLake();

    /** CraterLake sized for N=128K (Sec 9.4, 200-bit security). */
    static ChipConfig craterLake128k();

    /** Ablation: no KSHGen (full hints from memory), Table 4. */
    static ChipConfig noKshGen();

    /** Ablation: no CRB and no chaining, Table 4. */
    static ChipConfig noCrbNoChain();

    /** Ablation: crossbar network + residue-polynomial tiling. */
    static ChipConfig crossbarNetwork();

    /** Register-file size sweep variant (Fig 11). */
    static ChipConfig withRfMB(unsigned mb);

    /**
     * Lookup of the standard configurations by name, for CLIs:
     * "craterlake", "craterlake-128k", "no-kshgen", "no-crb",
     * "crossbar", "f1plus", or "rf<MB>" (e.g. "rf64"); the factory
     * names above ("craterlake-nokshgen", ...) are also accepted.
     * Fatal on an unknown name (the message lists the valid ones).
     */
    static ChipConfig byName(const std::string &name);

    /**
     * F1+ (Sec 8): F1 scaled to 32 clusters x 256 lanes, 256 MB
     * scratchpad, crossbar interconnect. Each vector op runs on one
     * 256-lane cluster; parallelism comes from the 32 clusters'
     * worth of FUs. No CRB/KSHGen/chaining, so boosted keyswitching
     * is throttled by register-file ports — the paper's Sec 2.5
     * critique, reproduced structurally.
     */
    static ChipConfig f1plus();
};

} // namespace cl

#endif // CL_HW_CONFIG_H

#include "energy.h"

namespace cl {

double
fuEnergyPerLaneOp(const EnergyParams &p, FuType t)
{
    switch (t) {
      case FuType::Ntt:
        return p.nttButterfly;
      case FuType::Crb:
        return p.crbMac;
      case FuType::Multiply:
        return p.modMul;
      case FuType::Add:
        return p.modAdd;
      case FuType::Automorphism:
        return p.autoMove;
      case FuType::KshGen:
        return p.kshGenWord;
      case FuType::Transpose:
        return p.networkWord;
      default:
        CL_PANIC("bad FU type for energy");
    }
}

} // namespace cl

/**
 * @file
 * Activity-based energy model (Sec 8: "activity-level energies from
 * synthesized components"). Constants are calibrated so that the
 * CraterLake configuration reproduces the paper's power envelope
 * (Fig 10b: 81-317 W, FUs consuming 50-80%).
 */

#ifndef CL_HW_ENERGY_H
#define CL_HW_ENERGY_H

#include "hw/config.h"

namespace cl {

/** Energy per elementary event, picojoules (14/12 nm, 28-bit). */
struct EnergyParams
{
    double nttButterfly = 3.6;  ///< One butterfly: modmul + 2 modadd.
    double crbMac = 3.0;        ///< Multiply-accumulate in the CRB.
    double modMul = 2.8;        ///< Standalone modular multiply.
    double modAdd = 0.2;
    double autoMove = 0.25;     ///< Permutation move per element.
    double kshGenWord = 5.0;    ///< Keccak + rejection per word.
    double rfAccessWord = 1.1;  ///< Register-file read or write.
    double networkWord = 1.8;   ///< Inter-lane-group transfer.
    double hbmWord = 120.0;     ///< Off-chip transfer (~34 pJ/bit).
    double staticWatts = 35.0;  ///< Leakage + clock tree.
};

struct EnergyBreakdown
{
    double funcUnits = 0;   ///< Joules.
    double registerFile = 0;
    double network = 0;
    double hbm = 0;
    double staticEnergy = 0;

    double
    total() const
    {
        return funcUnits + registerFile + network + hbm + staticEnergy;
    }
};

/** Energy per lane-op for a given FU type. */
double fuEnergyPerLaneOp(const EnergyParams &p, FuType t);

} // namespace cl

#endif // CL_HW_ENERGY_H

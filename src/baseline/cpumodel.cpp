#include "cpumodel.h"

#include <chrono>

#include "rns/ntt.h"
#include "rns/primes.h"
#include "util/prng.h"

namespace cl {

namespace {

double
timeLoop(const std::function<void()> &body, unsigned iters)
{
    const auto start = std::chrono::steady_clock::now();
    for (unsigned i = 0; i < iters; ++i)
        body();
    const auto end = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(end - start).count();
}

} // namespace

CpuKernelRates
measureCpuKernels()
{
    CpuKernelRates r;
    const std::size_t n = 1 << 14;
    const u64 q = generateNttPrimes(28, n, 1)[0];

    // Standalone modular multiplies.
    {
        std::vector<u64> a(n), b(n);
        FastRng rng(1);
        for (std::size_t i = 0; i < n; ++i) {
            a[i] = rng.nextBelow(q);
            b[i] = rng.nextBelow(q);
        }
        const unsigned iters = 400;
        volatile u64 sink = 0;
        const double secs = timeLoop(
            [&] {
                u64 acc = 0;
                for (std::size_t i = 0; i < n; ++i)
                    acc ^= mulMod(a[i], b[i], q);
                sink = acc;
            },
            iters);
        r.modmulPerSec = iters * static_cast<double>(n) / secs;
    }

    // NTT butterflies.
    {
        NttTables tables(n, q);
        std::vector<u64> a(n);
        FastRng rng(2);
        for (auto &v : a)
            v = rng.nextBelow(q);
        const unsigned iters = 100;
        const double secs = timeLoop([&] { tables.forward(a.data()); },
                                     iters);
        const double bflys =
            static_cast<double>(iters) * n / 2 * log2Exact(n);
        r.nttButterflyPerSec = bflys / secs;
    }

    // changeRNSBase-style multiply-accumulate (the CRB inner loop).
    {
        std::vector<u64> x(n), acc(n, 0);
        FastRng rng(3);
        for (auto &v : x)
            v = rng.nextBelow(q);
        const ShoupMul c(12345, q);
        const unsigned iters = 400;
        const double secs = timeLoop(
            [&] {
                for (std::size_t i = 0; i < n; ++i)
                    acc[i] = addMod(acc[i], c.mul(x[i], q), q);
            },
            iters);
        r.macPerSec = iters * static_cast<double>(n) / secs;
    }
    return r;
}

KswOpCount
keyswitchCost(unsigned l, unsigned t, std::size_t n)
{
    KswOpCount c;
    const unsigned a = static_cast<unsigned>(ceilDiv(l, t));
    const unsigned ext = l + a;
    unsigned dnum = 0;
    unsigned left = l;
    while (left > 0) {
        const unsigned d = std::min(a, left);
        // Single-prime digits lift by broadcast reduction — no
        // change-RNS-base multiplies (the standard algorithm).
        if (d > 1)
            c.macVecs += static_cast<std::uint64_t>(d) * (ext - d);
        left -= d;
        ++dnum;
    }
    c.ntts = static_cast<std::uint64_t>(dnum) * ext // mod-up
             + 2ull * (a + l);                      // mod-down
    c.macVecs += 2ull * a * l;                      // mod-down
    c.mulVecs = 2ull * dnum * ext + 2ull * l;       // hint MAC, P^-1
    c.addVecs = 2ull * dnum * ext + 4ull * l;
    c.kshWords = 2ull * dnum * ext * n;
    return c;
}

double
CpuModel::scalarMultiplies(const HomProgram &hp)
{
    const double n = static_cast<double>(hp.n());
    const double logn = log2Exact(hp.n());
    double mults = 0;
    for (const HomOp &op : hp.ops) {
        const unsigned l = op.level;
        switch (op.kind) {
          case HomOpKind::Mul:
          case HomOpKind::Rotate:
          case HomOpKind::Conjugate: {
            const KswOpCount k = keyswitchCost(l, op.digits, hp.n());
            mults += (k.ntts * logn / 2 + k.macVecs + k.mulVecs) * n;
            if (op.kind == HomOpKind::Mul)
                mults += 4.0 * l * n; // tensor product
            break;
          }
          case HomOpKind::MulPlain:
            mults += 2.0 * l * n;
            break;
          case HomOpKind::ModRaise:
            mults += (2.0 * (op.level + op.outLevel) * logn / 2 +
                      2.0 * l * (op.outLevel - l)) * n;
            break;
          default:
            break;
        }
        // Rescale folded into Mul/MulPlain cost models.
        if (op.outLevel < op.level && op.kind != HomOpKind::ModRaise)
            mults += 2.0 * (op.outLevel + op.level) * logn / 2 * n;
    }
    return mults;
}

double
CpuModel::run(const HomProgram &hp) const
{
    const double n = static_cast<double>(hp.n());
    const double logn = log2Exact(hp.n());
    const double core_scale = params_.cores * params_.parallelEff;

    double compute = 0; // seconds
    double traffic = 0; // bytes
    const double bytes_per_word = 8; // CPU libraries use 64-bit words

    for (const HomOp &op : hp.ops) {
        const unsigned l = op.level;
        double ntts = 0, macs = 0, muls = 0;
        switch (op.kind) {
          case HomOpKind::Mul:
          case HomOpKind::Rotate:
          case HomOpKind::Conjugate: {
            const KswOpCount k = keyswitchCost(l, op.digits, hp.n());
            ntts += static_cast<double>(k.ntts);
            macs += static_cast<double>(k.macVecs);
            muls += static_cast<double>(k.mulVecs);
            traffic += k.kshWords * bytes_per_word; // hint streamed in
            if (op.kind == HomOpKind::Mul)
                muls += 4.0 * l;
            break;
          }
          case HomOpKind::MulPlain:
            muls += 2.0 * l;
            break;
          case HomOpKind::Add:
          case HomOpKind::AddPlain:
            muls += 0.25 * l; // adds are ~4x cheaper than muls
            break;
          case HomOpKind::ModRaise:
            ntts += 2.0 * (op.level + op.outLevel);
            macs += 2.0 * l * (op.outLevel - l);
            break;
          default:
            break;
        }
        if (op.outLevel < op.level && op.kind != HomOpKind::ModRaise)
            ntts += 2.0 * (op.outLevel + op.level);

        // Every op streams its ciphertext operands through the cache
        // hierarchy at least once (tens-of-MB ciphertexts do not fit).
        traffic += 2.0 * 2.0 * l * n * bytes_per_word;

        compute += ntts * (n / 2 * logn) / rates_.nttButterflyPerSec +
                   macs * n / rates_.macPerSec +
                   muls * n / rates_.modmulPerSec;
    }

    const double compute_time = compute / core_scale;
    const double mem_time = traffic / params_.memBandwidth;
    return std::max(compute_time, mem_time);
}

} // namespace cl

/**
 * @file
 * CPU baseline cost model (Sec 8: 32-core Threadripper PRO 3975WX
 * running state-of-the-art FHE libraries).
 *
 * The model counts the scalar modular operations and memory traffic
 * of each homomorphic operation (using the same keyswitching cost
 * formulas the paper tabulates in Table 1) and divides by kernel
 * throughputs *measured on this machine* with our own NTT and MAC
 * kernels, scaled to the paper's core count. The calibration is
 * reported alongside every result (see EXPERIMENTS.md).
 */

#ifndef CL_BASELINE_CPUMODEL_H
#define CL_BASELINE_CPUMODEL_H

#include "compiler/homprogram.h"

namespace cl {

/** Measured single-core kernel throughputs. */
struct CpuKernelRates
{
    double modmulPerSec = 0;      ///< Standalone Shoup modmuls/s.
    double nttButterflyPerSec = 0;///< NTT butterflies/s.
    double macPerSec = 0;         ///< changeRNSBase-style MACs/s.
};

/** Time our own kernels on the host (takes ~100 ms). */
CpuKernelRates measureCpuKernels();

struct CpuModelParams
{
    unsigned cores = 32;        ///< The paper's CPU baseline.
    double parallelEff = 0.45;  ///< Multicore scaling efficiency
                                ///  of FHE libraries (memory-bound).
    double memBandwidth = 1.6e11; ///< Bytes/s (8-ch DDR4-3200).
};

class CpuModel
{
  public:
    CpuModel(CpuKernelRates rates, CpuModelParams params = {})
        : rates_(rates), params_(params)
    {
    }

    /** Estimated execution time in seconds. */
    double run(const HomProgram &hp) const;

    /** Scalar 28/64-bit multiply count of the program (for Fig 3/4). */
    static double scalarMultiplies(const HomProgram &hp);

  private:
    CpuKernelRates rates_;
    CpuModelParams params_;
};

/**
 * Per-keyswitch operation counts (Table 1). `t` digits over `l`
 * towers; t == l reproduces the standard algorithm's costs.
 */
struct KswOpCount
{
    std::uint64_t ntts = 0;     ///< Residue-polynomial (I)NTTs.
    std::uint64_t macVecs = 0;  ///< changeRNSBase multiply-accumulates.
    std::uint64_t mulVecs = 0;  ///< Other element-wise multiplies.
    std::uint64_t addVecs = 0;
    std::uint64_t kshWords = 0; ///< Hint footprint in words.
};
KswOpCount keyswitchCost(unsigned l, unsigned t, std::size_t n);

} // namespace cl

#endif // CL_BASELINE_CPUMODEL_H

#include "benchmarks.h"

#include <cmath>

namespace cl {

SecurityConfig
SecurityConfig::bits80()
{
    return SecurityConfig{};
}

SecurityConfig
SecurityConfig::bits128()
{
    SecurityConfig s;
    s.name = "128-bit";
    s.lMax = 43;        // lower log Q for the same N
    s.usableLevels = 11; // bootstrap twice as often (Sec 9.4)
    s.policy = digitPolicy128();
    return s;
}

SecurityConfig
SecurityConfig::bits200()
{
    SecurityConfig s;
    s.name = "200-bit";
    s.logN = 17; // N = 128K (Sec 9.4)
    s.lMax = 57;
    s.usableLevels = 22;
    s.policy = digitPolicy200();
    return s;
}

namespace {

/** Configure the builder's bootstrap structure for a security level. */
void
configureBootstrap(HomBuilder &b, const SecurityConfig &sec)
{
    if (sec.usableLevels <= 11) {
        // Shallower chains use a cheaper (lower-precision) pipeline.
        b.ctsStages = 4;
        b.stcStages = 3;
        b.evalModLevels = sec.lMax - sec.usableLevels - 14;
    } else {
        b.ctsStages = 4;
        b.stcStages = 3;
        b.evalModLevels = sec.lMax - sec.usableLevels - 14;
    }
    CL_ASSERT(b.bootLevels() == sec.lMax - sec.usableLevels,
              "bootstrap depth mismatch: ", b.bootLevels(), " vs ",
              sec.lMax - sec.usableLevels);
}

/** Bootstrap when fewer than `need` levels remain. */
HomBuilder::Ct
ensureBudget(HomBuilder &b, HomBuilder::Ct ct, unsigned need,
             unsigned &bootstraps)
{
    if (ct.level <= need) {
        ct = b.bootstrap(ct);
        ++bootstraps;
    }
    CL_ASSERT(ct.level > need, "bootstrap left too few levels: ",
              ct.level, " <= ", need);
    return ct;
}

/** Degree-3 polynomial activation (LSTM sigma, HELR sigmoid):
 *  two ct-ct multiplies at double scale. */
HomBuilder::Ct
degree3Activation(HomBuilder &b, HomBuilder::Ct x)
{
    HomBuilder::Ct x2 = b.mul(x, x, 2);
    HomBuilder::Ct x_aligned = b.levelDrop(x, x2.level);
    HomBuilder::Ct x3 = b.mul(x2, x_aligned, 2);
    HomBuilder::Ct lin = b.levelDrop(x, x3.level);
    return b.add(x3, lin);
}

} // namespace

HomProgram
packedBootstrapping(const SecurityConfig &sec)
{
    HomBuilder b("packed-bootstrapping", sec.logN, sec.lMax, sec.policy);
    configureBootstrap(b, sec);
    auto ct = b.input(3); // exhausted ciphertext, L=3
    auto out = b.bootstrap(ct);
    b.output(out);
    return b.take();
}

HomProgram
unpackedBootstrapping()
{
    // Single-slot bootstrapping (the F1 benchmark): the linear
    // transforms degenerate to a handful of rotations, EvalMod stays.
    HomBuilder b("unpacked-bootstrapping", 16, 23, digitPolicy80());
    b.ctsStages = 1;
    b.stcStages = 1;
    b.diagsPerStage = 2;
    b.evalModMuls = 8;
    b.evalModLevels = 12;
    auto ct = b.input(2);
    auto out = b.bootstrap(ct);
    b.output(out);
    return b.take();
}

HomProgram
lstm(const SecurityConfig &sec, unsigned steps)
{
    HomBuilder b("lstm", sec.logN, sec.lMax, sec.policy);
    configureBootstrap(b, sec);
    // Per time step: two 128x128 matrix-vector products (3 levels at
    // the 84-bit working scale), a degree-7 activation (9 levels),
    // and the output projection (3) — the step consumes the whole
    // usable budget, so each of the `steps` tokens bootstraps once
    // (50 bootstrappings per inference, Sec 8).
    unsigned bootstraps = 0;

    auto h = b.input(sec.lMax - b.bootLevels());
    for (unsigned step = 0; step < steps; ++step) {
        // Each phase refreshes the budget it needs, so the same
        // program adapts to the shallower 128-bit chains (which
        // bootstrap twice as often, Sec 9.4).
        h = ensureBudget(b, h, 3, bootstraps);
        auto x = b.input(h.level);
        // The recurrent weights are the same every step — the hint
        // and weight reuse this enables is central to the benchmark.
        auto wh = b.linearTransform(h, 128, "W0", 3);
        auto wx = b.linearTransform(x, 128, "W1", 3);
        auto pre = b.add(wh, wx);
        // Degree-7 sigma: three squarings/mults at the working scale.
        auto y = pre;
        for (unsigned m = 0; m < 3; ++m) {
            y = ensureBudget(b, y, 3, bootstraps);
            y = b.mul(y, y, 3);
        }
        // Output projection.
        y = ensureBudget(b, y, 3, bootstraps);
        h = b.linearTransform(y, 128, "Wp", 3);
    }
    b.output(h);
    return b.take();
}

HomProgram
resnet20(const SecurityConfig &sec)
{
    HomBuilder b("resnet-20", sec.logN, sec.lMax, sec.policy);
    configureBootstrap(b, sec);
    unsigned bootstraps = 0;

    // Channel widths of the three ResNet-20 stages.
    const unsigned channels[3] = {16, 32, 64};

    auto act = b.input(sec.lMax - b.bootLevels());

    // Polynomial ReLU [47]: composite minimax polynomial (three
    // factors of degrees 15/15/27), ~12 double-scale multiplies.
    auto relu = [&](HomBuilder::Ct x, const std::string &tag) {
        auto y = x;
        for (unsigned i = 0; i < 14; ++i) {
            y = ensureBudget(b, y, 2, bootstraps);
            auto y2 = b.mul(y, y, 2);
            y = b.addPlain(y2, tag + ".c" + std::to_string(i));
        }
        return y;
    };

    unsigned layer = 0;
    auto conv = [&](HomBuilder::Ct x, unsigned ch) {
        // 3x3 convolution over a fully packed tensor: one BSGS
        // linear transform whose diagonal count grows with channel
        // mixing (9 taps x channel groups).
        const unsigned diags = 9 * std::max(1u, ch / 8);
        x = ensureBudget(b, x, 2 + 2, bootstraps);
        auto y = b.linearTransform(
            x, diags, "conv" + std::to_string(layer), 2);
        // Channel reduction: log2(ch) rotate-and-add steps (the
        // packed layout accumulates partial channel sums).
        for (unsigned r = 0; (1u << r) < ch; ++r)
            y = b.add(y, b.rotate(y, 1 << (r + 5)));
        // Batch norm folds into a plaintext multiply-add.
        y = b.mulPlain(y, "bn" + std::to_string(layer), 2);
        ++layer;
        return y;
    };

    // conv1 + 18 residual-block convs + shortcuts.
    act = conv(act, channels[0]);
    act = relu(act, "relu0");
    for (unsigned stage = 0; stage < 3; ++stage) {
        for (unsigned block = 0; block < 3; ++block) {
            auto in = act;
            act = conv(act, channels[stage]);
            act = relu(act, "r" + std::to_string(stage * 3 + block) + "a");
            act = conv(act, channels[stage]);
            // Shortcut add (align both paths to the lower level; a
            // mid-block bootstrap can leave `act` above `in`).
            const unsigned join = std::min(in.level, act.level);
            auto sc = b.levelDrop(in, join);
            act = b.levelDrop(act, join);
            act = b.add(act, sc);
            act = relu(act, "r" + std::to_string(stage * 3 + block) + "b");
        }
    }

    // Average pool (log-rotations) + final dense layer.
    act = ensureBudget(b, act, 4, bootstraps);
    for (unsigned i = 0; i < 6; ++i)
        act = b.add(act, b.rotate(act, 1 << i));
    act = b.mulPlain(act, "poolscale", 2);
    act = ensureBudget(b, act, 2, bootstraps);
    act = b.linearTransform(act, 64, "fc", 2);
    b.output(act);
    return b.take();
}

HomProgram
logisticRegression(const SecurityConfig &sec, unsigned iterations)
{
    HomBuilder b("logreg-helr", sec.logN, sec.lMax, sec.policy);
    configureBootstrap(b, sec);
    unsigned bootstraps = 0;

    // HELR: 256 features, 256 samples per batch; X encrypted.
    auto w = b.input(38); // paper: starts at computational depth L=38
    for (unsigned it = 0; it < iterations; ++it) {
        const unsigned need = 2 + 4 + 2; // Xw, sigmoid, gradient
        w = ensureBudget(b, w, need, bootstraps);
        auto x_batch = b.input(w.level);

        // Xw: inner products via rotate-and-accumulate over the
        // 256-feature dimension.
        auto xw = b.mul(x_batch, w, 2);
        for (unsigned r = 0; r < 8; ++r) {
            xw = b.add(xw, b.rotate(xw, 1 << r));
            xw = b.add(xw, b.rotate(xw, -(1 << r)));
        }

        auto sig = degree3Activation(b, xw);

        // Gradient: X^T sig, again rotate-and-accumulate, then a
        // learning-rate plaintext multiply and the weight update.
        auto x_aligned = b.levelDrop(x_batch, sig.level);
        auto grad = b.mul(sig, x_aligned, 2);
        for (unsigned r = 0; r < 8; ++r)
            grad = b.add(grad, b.rotate(grad, 256 << r));
        grad = b.mulPlain(grad, "lr" + std::to_string(it % 2), 0);
        w = b.levelDrop(w, grad.level);
        w = b.add(w, grad);
    }
    b.output(w);
    return b.take();
}

HomProgram
lolaMnist(bool encrypted_weights)
{
    // LoLa-MNIST: LeNet-style, N=16K, no bootstrapping, max L 4-8.
    HomBuilder b(encrypted_weights ? "lola-mnist-ew" : "lola-mnist-uw",
                 14, 8, [](unsigned) { return 1u; });
    auto x = b.input(8);

    // Shallow networks run at single-prime scale per multiply (the
    // LoLa models tolerate low precision).
    if (encrypted_weights) {
        // Conv as 25 ct-ct multiply-accumulates with rotations.
        auto acc = b.mul(x, b.input(8), 1);
        for (unsigned i = 1; i < 25; ++i) {
            auto t = b.mul(b.rotate(x, static_cast<int>(i)),
                           b.input(8), 1);
            acc = b.add(acc, t);
        }
        auto s1 = b.mul(acc, acc, 1); // square activation
        // Dense 100: rotate-accumulate inner products.
        auto d = b.mul(s1, b.input(s1.level), 1);
        for (unsigned r = 0; r < 7; ++r)
            d = b.add(d, b.rotate(d, 1 << r));
        b.output(d);
    } else {
        auto c1 = b.linearTransform(x, 25, "conv1", 1);
        auto s1 = b.mul(c1, c1, 1);
        auto d1 = b.linearTransform(s1, 64, "fc1", 1);
        auto s2 = b.mul(d1, d1, 1);
        auto d2 = b.linearTransform(s2, 10, "fc2", 1);
        b.output(d2);
    }
    return b.take();
}

HomProgram
lolaCifar()
{
    // LoLa-CIFAR (unencrypted weights): 6 layers, weight-heavy linear
    // transforms; the working set is dominated by plaintext weights
    // (Fig 10a: ~8 GB of traffic, mostly inputs/weights).
    HomBuilder b("lola-cifar-uw", 14, 8, [](unsigned) { return 1u; });
    const unsigned diags[6] = {5600, 5600, 4000, 2800, 1800, 800};
    auto x = b.input(8);
    for (unsigned layer = 0; layer < 6; ++layer) {
        x = b.linearTransform(x, diags[layer],
                              "w" + std::to_string(layer), 1);
        if (layer == 1)
            x = b.mul(x, x, 1); // square activation
    }
    b.output(x);
    return b.take();
}

HomProgram
multiplicationChain(unsigned l_max, unsigned depth)
{
    HomBuilder b("mult-chain-L" + std::to_string(l_max), 16, l_max,
                 digitPolicy80());
    CL_ASSERT(l_max > b.bootLevels() + 2, "chain too shallow to bootstrap");
    unsigned bootstraps = 0;
    auto ct = b.input(l_max - b.bootLevels());
    for (unsigned d = 0; d < depth; ++d) {
        ct = ensureBudget(b, ct, 2, bootstraps);
        ct = b.mul(ct, ct, 2);
    }
    b.output(ct);
    return b.take();
}

HomProgram
wideMultiplyGraph(unsigned l_max, unsigned depth, unsigned width)
{
    HomBuilder b("wide-graph-L" + std::to_string(l_max), 16, l_max,
                 digitPolicy80());
    CL_ASSERT(l_max > b.bootLevels() + 2, "graph too shallow to bootstrap");
    unsigned bootstraps = 0;
    auto ct = b.input(l_max - b.bootLevels());
    for (unsigned d = 0; d < depth; ++d) {
        ct = ensureBudget(b, ct, 2, bootstraps);
        // `width` multiplies at this level, converging to one output.
        auto acc = b.mul(ct, b.input(ct.level), 2);
        for (unsigned w = 1; w < width; ++w) {
            auto t = b.mul(ct, b.input(ct.level), 2);
            acc = b.add(acc, t);
        }
        ct = acc;
    }
    b.output(ct);
    return b.take();
}

std::vector<NamedProgram>
benchmarkSuite(const SecurityConfig &sec)
{
    std::vector<NamedProgram> suite;
    suite.push_back({"ResNet-20", resnet20(sec), true});
    suite.push_back({"Logistic Regression", logisticRegression(sec), true});
    suite.push_back({"LSTM", lstm(sec), true});
    suite.push_back({"Packed Bootstrapping", packedBootstrapping(sec),
                     true});
    suite.push_back({"Unpacked Bootstrapping", unpackedBootstrapping(),
                     false});
    suite.push_back({"CIFAR Unencryp. Wghts.", lolaCifar(), false});
    suite.push_back({"MNIST Unencryp. Wghts.", lolaMnist(false), false});
    suite.push_back({"MNIST Encryp. Wghts.", lolaMnist(true), false});
    return suite;
}

std::vector<std::string>
benchmarkNames()
{
    return {"resnet20",    "logreg",     "lstm",       "boot-packed",
            "boot-unpacked", "lola-cifar", "lola-mnist",
            "lola-mnist-ew"};
}

HomProgram
benchmarkByName(const std::string &name, const SecurityConfig &sec)
{
    if (name == "resnet20")
        return resnet20(sec);
    if (name == "logreg")
        return logisticRegression(sec);
    if (name == "lstm")
        return lstm(sec);
    if (name == "boot-packed")
        return packedBootstrapping(sec);
    if (name == "boot-unpacked")
        return unpackedBootstrapping();
    if (name == "lola-cifar")
        return lolaCifar();
    if (name == "lola-mnist")
        return lolaMnist(false);
    if (name == "lola-mnist-ew")
        return lolaMnist(true);
    std::string valid;
    for (const std::string &n : benchmarkNames())
        valid += (valid.empty() ? "" : ", ") + n;
    CL_FATAL("unknown benchmark '", name, "'; valid: ", valid);
}

} // namespace cl

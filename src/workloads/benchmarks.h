/**
 * @file
 * Generators for the paper's benchmark suite (Sec 8): four deep
 * programs (ResNet-20, LSTM, HELR logistic regression, fully-packed
 * bootstrapping) and four shallow ones (unpacked bootstrapping and
 * the three LoLa networks), plus the synthetic programs of Fig 3.
 *
 * The generators reconstruct each benchmark's homomorphic-operation
 * structure from the paper's description: packing strategy, matrix
 * sizes, activation depths, and bootstrap placement. Level counting
 * is in 28-bit primes (two per multiplication at a 2^56 scale).
 */

#ifndef CL_WORKLOADS_BENCHMARKS_H
#define CL_WORKLOADS_BENCHMARKS_H

#include "compiler/homprogram.h"

namespace cl {

/** Security presets matching Sec 8 / Sec 9.4. */
struct SecurityConfig
{
    std::string name = "80-bit";
    unsigned logN = 16;
    unsigned lMax = 57;        ///< Usable chain depth after bootstrap.
    unsigned usableLevels = 22;///< Levels left for the application.
    DigitPolicy policy = digitPolicy80();

    static SecurityConfig bits80();
    static SecurityConfig bits128();
    static SecurityConfig bits200();
};

/** Fully-packed bootstrapping: L=3 in, refresh to 57, usable 22. */
HomProgram packedBootstrapping(const SecurityConfig &sec =
                                   SecurityConfig::bits80());

/** Unpacked (single-slot) bootstrapping, L <= 23 (the F1 benchmark). */
HomProgram unpackedBootstrapping();

/**
 * LSTM NLP benchmark [57]: h_{i+1} = sigma(W0 h_i + W1 x_i) with
 * 128x128 matrix-vector multiplies and a degree-3 activation;
 * 50 bootstrappings per inference at the default 150 time steps.
 */
HomProgram lstm(const SecurityConfig &sec = SecurityConfig::bits80(),
                unsigned steps = 50);

/**
 * ResNet-20 inference on one encrypted image [48], modified per
 * Sec 8 to pack all channels into one ciphertext before
 * bootstrapping. Polynomial ReLU of multiplicative depth 12.
 */
HomProgram resnet20(const SecurityConfig &sec = SecurityConfig::bits80());

/**
 * HELR logistic-regression training [36]: 256 features, 256 samples
 * per batch, starting depth L=38, multiple iterations with
 * bootstrapping (unlike F1's single-iteration variant).
 */
HomProgram logisticRegression(const SecurityConfig &sec =
                                  SecurityConfig::bits80(),
                              unsigned iterations = 60);

/** LoLa-MNIST [13], unencrypted or encrypted weights; N=16K, L<=8. */
HomProgram lolaMnist(bool encrypted_weights);

/** LoLa-CIFAR with unencrypted weights [13]; 6 layers, N=16K, L=8. */
HomProgram lolaCifar();

/** Fig 3 synthetic: serial multiplication chain of given depth with
 *  bootstraps whenever the budget (lMax - bootLevels) runs out. */
HomProgram multiplicationChain(unsigned l_max, unsigned depth);

/** Fig 3 synthetic: `width` multiplies per level converging to one
 *  output after each level. */
HomProgram wideMultiplyGraph(unsigned l_max, unsigned depth,
                             unsigned width);

/** All eight Sec 8 benchmarks with their display names. */
struct NamedProgram
{
    std::string name;
    HomProgram prog;
    bool deep;
};
std::vector<NamedProgram> benchmarkSuite(
    const SecurityConfig &sec = SecurityConfig::bits80());

/** CLI slugs of the eight benchmarks ("resnet20", "lstm", ...). */
std::vector<std::string> benchmarkNames();

/** Generate one benchmark by slug (see benchmarkNames()); fatal on
 *  an unknown name, listing the valid ones. */
HomProgram benchmarkByName(const std::string &name,
                           const SecurityConfig &sec =
                               SecurityConfig::bits80());

} // namespace cl

#endif // CL_WORKLOADS_BENCHMARKS_H

#include "ntt.h"

#include "rns/primes.h"

namespace cl {

NttTables::NttTables(std::size_t n, u64 q) : n_(n), q_(q)
{
    CL_ASSERT(isPowerOfTwo(n), "N must be power of two, got ", n);
    CL_ASSERT((q - 1) % (2 * n) == 0, "q=", q, " not NTT-friendly for N=",
              n);
    logN_ = log2Exact(n);
    psi_ = findPrimitiveRoot(q, 2 * n);
    const u64 psi_inv = invMod(psi_, q);

    fwdTwiddles_.resize(n);
    invTwiddles_.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
        const u64 e = bitReverse(static_cast<std::uint32_t>(i), logN_);
        fwdTwiddles_[i] = ShoupMul(powMod(psi_, e, q), q);
        invTwiddles_[i] = ShoupMul(powMod(psi_inv, e, q), q);
    }
    nInv_ = ShoupMul(invMod(static_cast<u64>(n), q), q);
}

void
NttTables::forward(u64 *a) const
{
    // Merged negacyclic Cooley-Tukey: twiddle index walks the
    // bit-reversed psi powers, so no separate psi^i pre-scaling pass.
    const u64 q = q_;
    std::size_t t = n_;
    for (std::size_t m = 1; m < n_; m <<= 1) {
        t >>= 1;
        for (std::size_t i = 0; i < m; ++i) {
            const std::size_t j1 = 2 * i * t;
            const ShoupMul &w = fwdTwiddles_[m + i];
            for (std::size_t j = j1; j < j1 + t; ++j) {
                const u64 u = a[j];
                const u64 v = w.mul(a[j + t], q);
                a[j] = addMod(u, v, q);
                a[j + t] = subMod(u, v, q);
            }
        }
    }
}

void
NttTables::inverse(u64 *a) const
{
    const u64 q = q_;
    std::size_t t = 1;
    for (std::size_t m = n_; m > 1; m >>= 1) {
        const std::size_t h = m >> 1;
        std::size_t j1 = 0;
        for (std::size_t i = 0; i < h; ++i) {
            const ShoupMul &w = invTwiddles_[h + i];
            for (std::size_t j = j1; j < j1 + t; ++j) {
                const u64 u = a[j];
                const u64 v = a[j + t];
                a[j] = addMod(u, v, q);
                a[j + t] = w.mul(subMod(u, v, q), q);
            }
            j1 += 2 * t;
        }
        t <<= 1;
    }
    for (std::size_t i = 0; i < n_; ++i)
        a[i] = nInv_.mul(a[i], q);
}

} // namespace cl

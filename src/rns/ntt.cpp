#include "ntt.h"

#include "rns/primes.h"
#include "rns/simd/kernels.h"
#include "util/instrument.h"

namespace cl {

namespace {

/** Butterfly blocks shorter than this stay on the inline scalar loop:
 *  a function-pointer call per block only pays off once the block
 *  amortizes it over a vector's worth of lanes. The last log2(8)
 *  stages of an N-point transform run inline; they hold a small,
 *  fixed fraction of the work. */
constexpr std::size_t kNttVecMinBlock = 8;

} // namespace

NttTables::NttTables(std::size_t n, u64 q) : n_(n), q_(q)
{
    CL_ASSERT(isPowerOfTwo(n), "N must be power of two, got ", n);
    CL_ASSERT((q - 1) % (2 * n) == 0, "q=", q, " not NTT-friendly for N=",
              n);
    // Lazy (Harvey) butterflies hold operands in [0, 4q), so 4q must
    // fit a 64-bit word with headroom for one addition.
    CL_ASSERT(q < (u64{1} << 62), "modulus ", q, " too wide for lazy NTT");
    logN_ = log2Exact(n);
    psi_ = findPrimitiveRoot(q, 2 * n);
    const u64 psi_inv = invMod(psi_, q);

    fwdTwiddles_.resize(n);
    invTwiddles_.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
        const u64 e = bitReverse(static_cast<std::uint32_t>(i), logN_);
        fwdTwiddles_[i] = ShoupMul(powMod(psi_, e, q), q);
        invTwiddles_[i] = ShoupMul(powMod(psi_inv, e, q), q);
    }
    nInv_ = ShoupMul(invMod(static_cast<u64>(n), q), q);
}

void
NttTables::forwardLazy(u64 *a) const
{
    countNtts(1);
    countMemPass(logN_, u64{logN_} * 8 * n_);
    // Merged negacyclic Cooley-Tukey with Harvey lazy reduction:
    // operands ride in [0, 4q) between stages, each butterfly does one
    // conditional 2q-subtract plus one lazy Shoup multiply (no final
    // subtract). Same dataflow the hardware NTT FUs pipeline; the lazy
    // window is the software analogue of their redundant-digit
    // arithmetic. Long butterfly blocks go through the SIMD kernel
    // table; every backend computes the identical lazy formula, so
    // the intermediate representatives — not just the final values —
    // are bit-identical across backends.
    const KernelTable &K = kernels();
    const u64 q = q_;
    const u64 two_q = 2 * q;
    std::size_t t = n_;
    for (std::size_t m = 1; m < n_; m <<= 1) {
        t >>= 1;
        for (std::size_t i = 0; i < m; ++i) {
            const std::size_t j1 = 2 * i * t;
            const ShoupMul &w = fwdTwiddles_[m + i];
            if (t >= kNttVecMinBlock) {
                K.nttFwdButterflyVec(a + j1, a + j1 + t, t, w.w, w.wPrec,
                                     q);
                continue;
            }
            for (std::size_t j = j1; j < j1 + t; ++j) {
                u64 x = a[j]; // [0, 4q)
                x -= two_q * (x >= two_q); // -> [0, 2q), branchless
                const u64 v = w.mulLazy(a[j + t], q); // [0, 2q)
                a[j] = x + v;                         // [0, 4q)
                a[j + t] = x + two_q - v;             // (0, 4q)
            }
        }
    }
}

void
NttTables::forward(u64 *a) const
{
    // Stages leave operands in [0, 4q); a single correction pass
    // restores [0, q).
    forwardLazy(a);
    kernels().nttCorrectVec(a, n_, q_);
    countMemPass(1, u64{8} * n_);
}

void
NttTables::forwardRescale(u64 *a, const u64 *xl,
                          const RescaleConsts &rc) const
{
    countNtts(1);
    if (n_ == 1) { // degenerate transform: the correction is the op
        countMemPass(1, 24);
        a[0] = rescaleCorrectScalar(a[0], xl[0], rc, q_);
        return;
    }
    // Stage 1 reads xl alongside a; the remaining stages and the
    // correction pass match forward() exactly.
    countMemPass(logN_ + 1, u64{logN_ + 1} * 8 * n_ + u64{8} * n_);
    const KernelTable &K = kernels();
    const u64 q = q_;
    const u64 two_q = 2 * q;
    // Stage m=1: one block of t = N/2 with twiddle fwdTwiddles_[1],
    // with the rescale correction applied to both halves on load. The
    // corrected values are canonical, so the composed stage's 2q-fold
    // on the upper half is a no-op and the outputs match composed.
    std::size_t t = n_ >> 1;
    const ShoupMul &w1 = fwdTwiddles_[1];
    if (t >= kNttVecMinBlock) {
        K.rescaleNttFwdButterflyVec(a, a + t, xl, xl + t, t, &rc, w1.w,
                                    w1.wPrec, q);
    } else {
        for (std::size_t j = 0; j < t; ++j) {
            const u64 cx = rescaleCorrectScalar(a[j], xl[j], rc, q);
            const u64 cy = rescaleCorrectScalar(a[j + t], xl[j + t], rc,
                                                q);
            const u64 v = w1.mulLazy(cy, q); // [0, 2q)
            a[j] = cx + v;                   // [0, 3q)
            a[j + t] = cx + two_q - v;       // (0, 3q)
        }
    }
    // Stages m >= 2: identical to forward().
    for (std::size_t m = 2; m < n_; m <<= 1) {
        t >>= 1;
        for (std::size_t i = 0; i < m; ++i) {
            const std::size_t j1 = 2 * i * t;
            const ShoupMul &w = fwdTwiddles_[m + i];
            if (t >= kNttVecMinBlock) {
                K.nttFwdButterflyVec(a + j1, a + j1 + t, t, w.w, w.wPrec,
                                     q);
                continue;
            }
            for (std::size_t j = j1; j < j1 + t; ++j) {
                u64 x = a[j];
                x -= two_q * (x >= two_q);
                const u64 v = w.mulLazy(a[j + t], q);
                a[j] = x + v;
                a[j + t] = x + two_q - v;
            }
        }
    }
    K.nttCorrectVec(a, n_, q);
}

void
NttTables::inverseLazy(u64 *a) const
{
    countNtts(1);
    countMemPass(logN_, u64{logN_} * 8 * n_);
    // Gentleman-Sande with operands lazily held in [0, 2q); the N^-1
    // scaling (and with it the full reduction to [0, q)) is left to
    // the caller's epilogue.
    const KernelTable &K = kernels();
    const u64 q = q_;
    const u64 two_q = 2 * q;
    std::size_t t = 1;
    for (std::size_t m = n_; m > 1; m >>= 1) {
        const std::size_t h = m >> 1;
        std::size_t j1 = 0;
        for (std::size_t i = 0; i < h; ++i) {
            const ShoupMul &w = invTwiddles_[h + i];
            if (t >= kNttVecMinBlock) {
                K.nttInvButterflyVec(a + j1, a + j1 + t, t, w.w, w.wPrec,
                                     q);
                j1 += 2 * t;
                continue;
            }
            for (std::size_t j = j1; j < j1 + t; ++j) {
                const u64 x = a[j];     // [0, 2q)
                const u64 y = a[j + t]; // [0, 2q)
                u64 s = x + y;          // [0, 4q)
                s -= two_q * (s >= two_q);
                a[j] = s; // [0, 2q)
                a[j + t] = w.mulLazy(x + two_q - y, q); // [0, 2q)
            }
            j1 += 2 * t;
        }
        t <<= 1;
    }
}

void
NttTables::inverse(u64 *a) const
{
    const KernelTable &K = kernels();
    const u64 q = q_;
    const u64 two_q = 2 * q;
    const std::size_t half = n_ >> 1;
    if (fusionEnabled() && half >= kNttVecMinBlock) {
        // Fused path: run the GS stages down to m=4, then one kernel
        // computes the last stage (a single block of t = N/2 with
        // twiddle invTwiddles_[1]) together with the N^-1 scaling —
        // the composed sequence's final two passes in one.
        countNtts(1);
        countMemPass(logN_, u64{logN_} * 8 * n_);
        std::size_t t = 1;
        for (std::size_t m = n_; m > 2; m >>= 1) {
            const std::size_t h = m >> 1;
            std::size_t j1 = 0;
            for (std::size_t i = 0; i < h; ++i) {
                const ShoupMul &w = invTwiddles_[h + i];
                if (t >= kNttVecMinBlock) {
                    K.nttInvButterflyVec(a + j1, a + j1 + t, t, w.w,
                                         w.wPrec, q);
                    j1 += 2 * t;
                    continue;
                }
                for (std::size_t j = j1; j < j1 + t; ++j) {
                    const u64 x = a[j];
                    const u64 y = a[j + t];
                    u64 s = x + y;
                    s -= two_q * (s >= two_q);
                    a[j] = s;
                    a[j + t] = w.mulLazy(x + two_q - y, q);
                }
                j1 += 2 * t;
            }
            t <<= 1;
        }
        const ShoupMul &w = invTwiddles_[1];
        K.nttInvScaleButterflyVec(a, a + half, half, w.w, w.wPrec,
                                  nInv_.w, nInv_.wPrec, q);
        return;
    }
    inverseLazy(a);
    K.nttScaleInvVec(a, n_, nInv_.w, nInv_.wPrec, q);
    countMemPass(1, u64{8} * n_);
}

} // namespace cl

#include "ntt.h"

#include "rns/primes.h"
#include "rns/simd/kernels.h"
#include "util/instrument.h"

namespace cl {

namespace {

/** Butterfly blocks shorter than this stay on the inline scalar loop:
 *  a function-pointer call per block only pays off once the block
 *  amortizes it over a vector's worth of lanes. The last log2(8)
 *  stages of an N-point transform run inline; they hold a small,
 *  fixed fraction of the work. */
constexpr std::size_t kNttVecMinBlock = 8;

} // namespace

NttTables::NttTables(std::size_t n, u64 q) : n_(n), q_(q)
{
    CL_ASSERT(isPowerOfTwo(n), "N must be power of two, got ", n);
    CL_ASSERT((q - 1) % (2 * n) == 0, "q=", q, " not NTT-friendly for N=",
              n);
    // Lazy (Harvey) butterflies hold operands in [0, 4q), so 4q must
    // fit a 64-bit word with headroom for one addition.
    CL_ASSERT(q < (u64{1} << 62), "modulus ", q, " too wide for lazy NTT");
    logN_ = log2Exact(n);
    psi_ = findPrimitiveRoot(q, 2 * n);
    const u64 psi_inv = invMod(psi_, q);

    fwdTwiddles_.resize(n);
    invTwiddles_.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
        const u64 e = bitReverse(static_cast<std::uint32_t>(i), logN_);
        fwdTwiddles_[i] = ShoupMul(powMod(psi_, e, q), q);
        invTwiddles_[i] = ShoupMul(powMod(psi_inv, e, q), q);
    }
    nInv_ = ShoupMul(invMod(static_cast<u64>(n), q), q);
}

void
NttTables::forward(u64 *a) const
{
    countNtts(1);
    // Merged negacyclic Cooley-Tukey with Harvey lazy reduction:
    // operands ride in [0, 4q) between stages, each butterfly does one
    // conditional 2q-subtract plus one lazy Shoup multiply (no final
    // subtract), and a single correction pass at the end restores
    // [0, q). Same dataflow the hardware NTT FUs pipeline; the lazy
    // window is the software analogue of their redundant-digit
    // arithmetic. Long butterfly blocks go through the SIMD kernel
    // table; every backend computes the identical lazy formula, so
    // the intermediate representatives — not just the final values —
    // are bit-identical across backends.
    const KernelTable &K = kernels();
    const u64 q = q_;
    const u64 two_q = 2 * q;
    std::size_t t = n_;
    for (std::size_t m = 1; m < n_; m <<= 1) {
        t >>= 1;
        for (std::size_t i = 0; i < m; ++i) {
            const std::size_t j1 = 2 * i * t;
            const ShoupMul &w = fwdTwiddles_[m + i];
            if (t >= kNttVecMinBlock) {
                K.nttFwdButterflyVec(a + j1, a + j1 + t, t, w.w, w.wPrec,
                                     q);
                continue;
            }
            for (std::size_t j = j1; j < j1 + t; ++j) {
                u64 x = a[j]; // [0, 4q)
                x -= two_q * (x >= two_q); // -> [0, 2q), branchless
                const u64 v = w.mulLazy(a[j + t], q); // [0, 2q)
                a[j] = x + v;                         // [0, 4q)
                a[j + t] = x + two_q - v;             // (0, 4q)
            }
        }
    }
    K.nttCorrectVec(a, n_, q);
}

void
NttTables::inverse(u64 *a) const
{
    countNtts(1);
    // Gentleman-Sande with operands lazily held in [0, 2q); the final
    // N^-1 scaling pass performs the full reduction to [0, q).
    const KernelTable &K = kernels();
    const u64 q = q_;
    const u64 two_q = 2 * q;
    std::size_t t = 1;
    for (std::size_t m = n_; m > 1; m >>= 1) {
        const std::size_t h = m >> 1;
        std::size_t j1 = 0;
        for (std::size_t i = 0; i < h; ++i) {
            const ShoupMul &w = invTwiddles_[h + i];
            if (t >= kNttVecMinBlock) {
                K.nttInvButterflyVec(a + j1, a + j1 + t, t, w.w, w.wPrec,
                                     q);
                j1 += 2 * t;
                continue;
            }
            for (std::size_t j = j1; j < j1 + t; ++j) {
                const u64 x = a[j];     // [0, 2q)
                const u64 y = a[j + t]; // [0, 2q)
                u64 s = x + y;          // [0, 4q)
                s -= two_q * (s >= two_q);
                a[j] = s; // [0, 2q)
                a[j + t] = w.mulLazy(x + two_q - y, q); // [0, 2q)
            }
            j1 += 2 * t;
        }
        t <<= 1;
    }
    K.nttScaleInvVec(a, n_, nInv_.w, nInv_.wPrec, q);
}

} // namespace cl

/**
 * @file
 * Negacyclic number-theoretic transform (NTT) over Z_q[x]/(x^N + 1).
 *
 * The NTT is the workhorse of RLWE-based FHE: in the NTT domain,
 * polynomial multiplication becomes element-wise multiplication
 * (Sec 2.4). We implement the standard merged-twiddle negacyclic
 * forward (Cooley-Tukey, decimation in time) and inverse
 * (Gentleman-Sande) transforms with Shoup twiddle multiplication and
 * Harvey lazy reduction (operands kept in [0, 4q) / [0, 2q) between
 * stages, one correction pass at the end), matching the dataflow
 * CraterLake's NTT FUs pipeline in hardware. Inputs must be fully
 * reduced ([0, q)); outputs are fully reduced.
 */

#ifndef CL_RNS_NTT_H
#define CL_RNS_NTT_H

#include <cstdint>
#include <vector>

#include "rns/modarith.h"

namespace cl {

/**
 * Precomputed twiddle tables for one (N, q) pair. Immutable after
 * construction; shared by all polynomials over the same modulus.
 */
class NttTables
{
  public:
    /**
     * @param n Ring degree (power of two).
     * @param q NTT-friendly prime, q ≡ 1 (mod 2n).
     */
    NttTables(std::size_t n, u64 q);

    std::size_t n() const { return n_; }
    u64 q() const { return q_; }

    /** In-place forward negacyclic NTT (coeff order in, bit-rev out
     *  internally; output is in standard "NTT slot" order). */
    void forward(u64 *a) const;

    /** In-place inverse negacyclic NTT. */
    void inverse(u64 *a) const;

    /** psi = primitive 2N-th root of unity used by this table. */
    u64 psi() const { return psi_; }

  private:
    std::size_t n_;
    unsigned logN_;
    u64 q_;
    u64 psi_;
    std::vector<ShoupMul> fwdTwiddles_; // psi^brv(i), merged CT order
    std::vector<ShoupMul> invTwiddles_; // psi^-brv(i), merged GS order
    ShoupMul nInv_;                     // N^-1 mod q for the inverse
};

/** Bit-reverse the low @p bits bits of @p x. */
inline std::uint32_t
bitReverse(std::uint32_t x, unsigned bits)
{
    std::uint32_t r = 0;
    for (unsigned i = 0; i < bits; ++i) {
        r = (r << 1) | (x & 1);
        x >>= 1;
    }
    return r;
}

} // namespace cl

#endif // CL_RNS_NTT_H

/**
 * @file
 * Negacyclic number-theoretic transform (NTT) over Z_q[x]/(x^N + 1).
 *
 * The NTT is the workhorse of RLWE-based FHE: in the NTT domain,
 * polynomial multiplication becomes element-wise multiplication
 * (Sec 2.4). We implement the standard merged-twiddle negacyclic
 * forward (Cooley-Tukey, decimation in time) and inverse
 * (Gentleman-Sande) transforms with Shoup twiddle multiplication and
 * Harvey lazy reduction (operands kept in [0, 4q) / [0, 2q) between
 * stages, one correction pass at the end), matching the dataflow
 * CraterLake's NTT FUs pipeline in hardware. Inputs must be fully
 * reduced ([0, q)); outputs are fully reduced.
 */

#ifndef CL_RNS_NTT_H
#define CL_RNS_NTT_H

#include <cstdint>
#include <vector>

#include "rns/modarith.h"

namespace cl {

struct RescaleConsts;

/**
 * Precomputed twiddle tables for one (N, q) pair. Immutable after
 * construction; shared by all polynomials over the same modulus.
 */
class NttTables
{
  public:
    /**
     * @param n Ring degree (power of two).
     * @param q NTT-friendly prime, q ≡ 1 (mod 2n).
     */
    NttTables(std::size_t n, u64 q);

    std::size_t n() const { return n_; }
    u64 q() const { return q_; }

    /** In-place forward negacyclic NTT (coeff order in, bit-rev out
     *  internally; output is in standard "NTT slot" order). */
    void forward(u64 *a) const;

    /** In-place inverse negacyclic NTT. */
    void inverse(u64 *a) const;

    // ---- Fused-pipeline entry points (DESIGN.md §5e) --------------
    // The lazy variants run only the butterfly stages, leaving the
    // final correction/scaling to a fused epilogue kernel at the call
    // site; forwardRescale absorbs the rescale correction into the
    // first butterfly stage. Each counts as one NTT — the stage work
    // is identical, only the boundary passes move.

    /** Forward stages only: output in the lazy [0, 4q) window (the
     *  nttCorrectVec pass is the caller's, fused into its epilogue). */
    void forwardLazy(u64 *a) const;

    /** Inverse stages only: output in [0, 2q), not scaled by N^-1
     *  (the scaling pass is the caller's, fused into its epilogue). */
    void inverseLazy(u64 *a) const;

    /**
     * Forward NTT with the per-coefficient rescale correction
     * (`rescaleCorrectScalar(a[i], xl[i], rc, q)`) fused into the
     * first butterfly stage: single-pass replacement for the rescale
     * subtract/multiply passes plus `forward`'s first stage. @p xl is
     * the dropped tower's canonical residues (coefficient domain).
     */
    void forwardRescale(u64 *a, const u64 *xl,
                        const RescaleConsts &rc) const;

    /** Shoup pair for N^-1 mod q (fused iNTT epilogues). */
    const ShoupMul &nInv() const { return nInv_; }

    /** psi = primitive 2N-th root of unity used by this table. */
    u64 psi() const { return psi_; }

  private:
    std::size_t n_;
    unsigned logN_;
    u64 q_;
    u64 psi_;
    std::vector<ShoupMul> fwdTwiddles_; // psi^brv(i), merged CT order
    std::vector<ShoupMul> invTwiddles_; // psi^-brv(i), merged GS order
    ShoupMul nInv_;                     // N^-1 mod q for the inverse
};

/** Bit-reverse the low @p bits bits of @p x. */
inline std::uint32_t
bitReverse(std::uint32_t x, unsigned bits)
{
    std::uint32_t r = 0;
    for (unsigned i = 0; i < bits; ++i) {
        r = (r << 1) | (x & 1);
        x >>= 1;
    }
    return r;
}

} // namespace cl

#endif // CL_RNS_NTT_H

#include "baseconv.h"

#include <algorithm>

#include "rns/simd/kernels.h"
#include "util/instrument.h"
#include "util/threadpool.h"

namespace cl {

BaseConverter::BaseConverter(const RnsChain &chain,
                             std::vector<unsigned> src,
                             std::vector<unsigned> dst)
    : chain_(chain), src_(std::move(src)), dst_(std::move(dst))
{
    CL_ASSERT(!src_.empty() && !dst_.empty());

    const std::size_t ls = src_.size();
    const std::size_t ld = dst_.size();

    // qHatInv_i = (Q/q_i)^{-1} mod q_i, computed as the product of the
    // inverses of the other source moduli.
    qHatInv_.resize(ls);
    for (std::size_t i = 0; i < ls; ++i) {
        const u64 qi = chain_.modulus(src_[i]);
        u64 prod = 1;
        for (std::size_t m = 0; m < ls; ++m) {
            if (m == i)
                continue;
            prod = mulMod(prod, chain_.modulus(src_[m]) % qi, qi);
        }
        qHatInv_[i] = ShoupMul(invMod(prod, qi), qi);
    }

    // qHat[i][j] = (Q/q_i) mod p_j.
    qHat_.assign(ls, std::vector<u64>(ld));
    for (std::size_t i = 0; i < ls; ++i) {
        for (std::size_t j = 0; j < ld; ++j) {
            const u64 pj = chain_.modulus(dst_[j]);
            u64 prod = 1;
            for (std::size_t m = 0; m < ls; ++m) {
                if (m == i)
                    continue;
                prod = mulMod(prod, chain_.modulus(src_[m]) % pj, pj);
            }
            qHat_[i][j] = prod;
        }
    }

    // Transposed rows: the MAC kernel walks all source coefficients
    // for one destination tower, so give it a contiguous cs[] row.
    qHatT_.assign(ld, std::vector<u64>(ls));
    for (std::size_t j = 0; j < ld; ++j)
        for (std::size_t i = 0; i < ls; ++i)
            qHatT_[j][i] = qHat_[i][j];

    for (std::size_t i = 0; i < ls; ++i)
        srcMax_ = std::max(srcMax_, chain_.modulus(src_[i]));
}

void
BaseConverter::convert(const std::vector<ResidueView> &in,
                       std::vector<std::vector<u64>> &out) const
{
    if (!fusionEnabled()) {
        std::vector<std::vector<u64>> scaled;
        convertKeepScaled(in, scaled, out);
        return;
    }

    // Tiled pipeline (DESIGN.md §5e): process the coefficient axis in
    // blocks sized so the ls scaled source rows of one block fit in
    // cache, running the Shoup scale and every destination MAC row on
    // the block before moving on. The scaled residues never round-trip
    // DRAM — the tiled analog of the CRB unit holding running sums in
    // its residue-poly buffers. Per-coefficient results are the same
    // canonical values as the untiled path, so the output is
    // bit-identical.
    const std::size_t ls = src_.size();
    const std::size_t ld = dst_.size();
    const std::size_t n = chain_.n();
    CL_ASSERT(in.size() == ls, "base conversion: got ", in.size(),
              " source residues, expected ", ls);

    const KernelTable &K = kernels();
    countMults(ls + ls * ld);
    countAdds(ls * ld);
    // Each source row is read once and each destination row written
    // once; the scratch block is cache-resident and uncharged.
    countMemPass(ls + ld, u64{ls + ld} * 8 * n);

    // ls * block words of scratch per worker, capped near L2 size and
    // kept a vector multiple so block boundaries stay lane-aligned.
    constexpr std::size_t kTileWords = std::size_t{1} << 15;
    std::size_t block = std::max<std::size_t>(kTileWords / ls, 64);
    block &= ~std::size_t{7};
    block = std::min(block, n);
    const std::size_t n_blocks = (n + block - 1) / block;

    out.assign(ld, std::vector<u64>(n));
    parallelFor(0, n_blocks, [&](std::size_t b) {
        const std::size_t off = b * block;
        const std::size_t len = std::min(block, n - off);
        static thread_local std::vector<u64> scratch;
        static thread_local std::vector<const u64 *> xs;
        scratch.resize(ls * block);
        xs.resize(ls);
        for (std::size_t i = 0; i < ls; ++i) {
            const u64 qi = chain_.modulus(src_[i]);
            const ShoupMul &s = qHatInv_[i];
            K.mulModShoupVec(scratch.data() + i * block,
                             in[i].data() + off, len, s.w, s.wPrec, qi);
            xs[i] = scratch.data() + i * block;
        }
        for (std::size_t j = 0; j < ld; ++j) {
            const u64 pj = chain_.modulus(dst_[j]);
            K.baseconvMacVec(out[j].data() + off, xs.data(),
                             qHatT_[j].data(), ls, len, pj, srcMax_);
        }
    });
}

void
BaseConverter::convert(const std::vector<std::vector<u64>> &in,
                       std::vector<std::vector<u64>> &out) const
{
    std::vector<ResidueView> views(in.begin(), in.end());
    convert(views, out);
}

void
BaseConverter::convertKeepScaled(const std::vector<ResidueView> &in,
                                 std::vector<std::vector<u64>> &scaled,
                                 std::vector<std::vector<u64>> &out) const
{
    const std::size_t ls = src_.size();
    const std::size_t ld = dst_.size();
    const std::size_t n = chain_.n();
    CL_ASSERT(in.size() == ls, "base conversion: got ", in.size(),
              " source residues, expected ", ls);

    const KernelTable &K = kernels();

    // One Shoup multiply per source tower, then an ls-term MAC row per
    // destination tower (ls mults + ls accumulates each).
    countMults(ls + ls * ld);
    countAdds(ls * ld);
    countMemPass(ls + ld,
                 u64{ls} * 16 * n + u64{ld} * (ls + 1) * 8 * n);

    // Step 1: x'_i = x_i * (Q/q_i)^{-1} mod q_i, one worker per
    // source tower.
    scaled.assign(ls, std::vector<u64>(n));
    parallelFor(
        0, ls,
        [&](std::size_t i) {
            const u64 qi = chain_.modulus(src_[i]);
            const ShoupMul &s = qHatInv_[i];
            K.mulModShoupVec(scaled[i].data(), in[i].data(), n, s.w,
                             s.wPrec, qi);
        },
        parallelGrain(n));

    // Step 2: the Listing-1 MAC loop; this is what the CRB unit
    // spatially unrolls, and each destination tower is independent so
    // the loop fans out per tower. The kernel accumulates the whole
    // sum_i xs[i][k] * cs[i] inner product per coefficient (the
    // hardware keeps running sums in the CRB residue-poly buffers).
    std::vector<const u64 *> xs(ls);
    for (std::size_t i = 0; i < ls; ++i)
        xs[i] = scaled[i].data();

    out.assign(ld, std::vector<u64>(n));
    parallelFor(
        0, ld,
        [&](std::size_t j) {
            const u64 pj = chain_.modulus(dst_[j]);
            K.baseconvMacVec(out[j].data(), xs.data(), qHatT_[j].data(),
                             ls, n, pj, srcMax_);
        },
        parallelGrain(ls * n));
}

} // namespace cl

#include "baseconv.h"

#include "util/threadpool.h"

namespace cl {

BaseConverter::BaseConverter(const RnsChain &chain,
                             std::vector<unsigned> src,
                             std::vector<unsigned> dst)
    : chain_(chain), src_(std::move(src)), dst_(std::move(dst))
{
    CL_ASSERT(!src_.empty() && !dst_.empty());

    const std::size_t ls = src_.size();
    const std::size_t ld = dst_.size();

    // qHatInv_i = (Q/q_i)^{-1} mod q_i, computed as the product of the
    // inverses of the other source moduli.
    qHatInv_.resize(ls);
    for (std::size_t i = 0; i < ls; ++i) {
        const u64 qi = chain_.modulus(src_[i]);
        u64 prod = 1;
        for (std::size_t m = 0; m < ls; ++m) {
            if (m == i)
                continue;
            prod = mulMod(prod, chain_.modulus(src_[m]) % qi, qi);
        }
        qHatInv_[i] = ShoupMul(invMod(prod, qi), qi);
    }

    // qHat[i][j] = (Q/q_i) mod p_j.
    qHat_.assign(ls, std::vector<u64>(ld));
    for (std::size_t i = 0; i < ls; ++i) {
        for (std::size_t j = 0; j < ld; ++j) {
            const u64 pj = chain_.modulus(dst_[j]);
            u64 prod = 1;
            for (std::size_t m = 0; m < ls; ++m) {
                if (m == i)
                    continue;
                prod = mulMod(prod, chain_.modulus(src_[m]) % pj, pj);
            }
            qHat_[i][j] = prod;
        }
    }
}

void
BaseConverter::convert(const std::vector<ResidueView> &in,
                       std::vector<std::vector<u64>> &out) const
{
    std::vector<std::vector<u64>> scaled;
    convertKeepScaled(in, scaled, out);
}

void
BaseConverter::convert(const std::vector<std::vector<u64>> &in,
                       std::vector<std::vector<u64>> &out) const
{
    std::vector<ResidueView> views(in.begin(), in.end());
    convert(views, out);
}

void
BaseConverter::convertKeepScaled(const std::vector<ResidueView> &in,
                                 std::vector<std::vector<u64>> &scaled,
                                 std::vector<std::vector<u64>> &out) const
{
    const std::size_t ls = src_.size();
    const std::size_t ld = dst_.size();
    const std::size_t n = chain_.n();
    CL_ASSERT(in.size() == ls, "base conversion: got ", in.size(),
              " source residues, expected ", ls);

    // Step 1: x'_i = x_i * (Q/q_i)^{-1} mod q_i, one worker per
    // source tower.
    scaled.assign(ls, std::vector<u64>(n));
    parallelFor(0, ls, [&](std::size_t i) {
        const u64 qi = chain_.modulus(src_[i]);
        const ShoupMul &s = qHatInv_[i];
        const u64 *x = in[i].data();
        u64 *y = scaled[i].data();
        for (std::size_t c = 0; c < n; ++c)
            y[c] = s.mul(x[c], qi);
    });

    // Step 2: the Listing-1 MAC loop; this is what the CRB unit
    // spatially unrolls, and each destination tower is independent so
    // the loop fans out per tower. Accumulate in 128 bits and reduce
    // once per destination coefficient (the hardware keeps running
    // sums in the CRB residue-poly buffers).
    out.assign(ld, std::vector<u64>(n));
    parallelFor(0, ld, [&](std::size_t j) {
        const u64 pj = chain_.modulus(dst_[j]);
        // The 128-bit accumulator holds at most reduce_every products
        // of two values < pj before a reduction is forced, so it can
        // never wrap even for 62-bit moduli.
        const unsigned pj_bits = 64 - __builtin_clzll(pj);
        const std::size_t reduce_every =
            pj_bits >= 60 ? 8 : (std::size_t{1} << (126 - 2 * pj_bits));
        std::vector<u128> acc(n, 0);
        std::size_t since_reduce = 0;
        for (std::size_t i = 0; i < ls; ++i) {
            const u64 c = qHat_[i][j];
            const u64 *x = scaled[i].data();
            for (std::size_t k = 0; k < n; ++k)
                acc[k] += (u128)(x[k] % pj) * c;
            if (++since_reduce >= reduce_every && i + 1 < ls) {
                for (std::size_t k = 0; k < n; ++k)
                    acc[k] %= pj;
                since_reduce = 0;
            }
        }
        u64 *y = out[j].data();
        for (std::size_t k = 0; k < n; ++k)
            y[k] = static_cast<u64>(acc[k] % pj);
    });
}

} // namespace cl

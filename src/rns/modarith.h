/**
 * @file
 * Scalar modular arithmetic for word-sized NTT-friendly primes.
 *
 * CraterLake's datapath uses 28-bit moduli (Sec 5.5); the functional
 * library is generic over any modulus below 2^62 so tests can also use
 * wide (CKKS-precision) primes. Products are formed in 128-bit
 * arithmetic; hot paths use Shoup's precomputed-quotient multiply,
 * which is what a fixed-modulus hardware multiplier amortizes.
 */

#ifndef CL_RNS_MODARITH_H
#define CL_RNS_MODARITH_H

#include <cstdint>

#include "util/common.h"

namespace cl {

using u64 = std::uint64_t;
using u128 = unsigned __int128;

/** (a + b) mod q, requiring a, b < q. */
inline u64
addMod(u64 a, u64 b, u64 q)
{
    u64 s = a + b;
    return s >= q ? s - q : s;
}

/** (a - b) mod q, requiring a, b < q. */
inline u64
subMod(u64 a, u64 b, u64 q)
{
    return a >= b ? a - b : a + q - b;
}

/** (a * b) mod q via 128-bit product; requires q < 2^63. */
inline u64
mulMod(u64 a, u64 b, u64 q)
{
    return static_cast<u64>((u128)a * b % q);
}

/** a^e mod q by square-and-multiply. */
inline u64
powMod(u64 a, u64 e, u64 q)
{
    u64 r = 1 % q;
    a %= q;
    while (e) {
        if (e & 1)
            r = mulMod(r, a, q);
        a = mulMod(a, a, q);
        e >>= 1;
    }
    return r;
}

/** Modular inverse for prime q (Fermat). */
inline u64
invMod(u64 a, u64 q)
{
    CL_ASSERT(a % q != 0, "inverse of 0 mod ", q);
    return powMod(a, q - 2, q);
}

/** Centered (signed) representative of a mod q, in (-q/2, q/2]. */
inline std::int64_t
centered(u64 a, u64 q)
{
    return a > q / 2 ? static_cast<std::int64_t>(a) -
                           static_cast<std::int64_t>(q)
                     : static_cast<std::int64_t>(a);
}

/** Reduce a possibly negative value into [0, q). */
inline u64
reduceSigned(std::int64_t a, u64 q)
{
    std::int64_t m = a % static_cast<std::int64_t>(q);
    if (m < 0)
        m += static_cast<std::int64_t>(q);
    return static_cast<u64>(m);
}

/**
 * Shoup multiplication by a fixed operand w modulo q: the quotient
 * floor(w * 2^64 / q) is precomputed once, turning each modular
 * multiply into two integer multiplies and one conditional subtract.
 * This is the software analogue of CraterLake's fixed-twiddle NTT
 * multipliers.
 */
struct ShoupMul
{
    u64 w;     ///< Operand, reduced mod q.
    u64 wPrec; ///< floor(w << 64 / q).

    ShoupMul() : w(0), wPrec(0) {}

    ShoupMul(u64 w_in, u64 q) : w(w_in % q)
    {
        wPrec = static_cast<u64>(((u128)w << 64) / q);
    }

    /** (x * w) mod q, requiring x < q, q < 2^63. */
    u64
    mul(u64 x, u64 q) const
    {
        u64 hi = static_cast<u64>(((u128)x * wPrec) >> 64);
        u64 r = x * w - hi * q; // mod 2^64; result in [0, 2q)
        return r >= q ? r - q : r;
    }

    /**
     * Harvey lazy product: x * w congruent mod q, result in [0, 2q)
     * with the final conditional subtract elided. Valid for ANY
     * x < 2^64 (not just x < q), which is what lets the NTT keep
     * butterfly operands in [0, 4q) between stages. Requires q < 2^62.
     */
    u64
    mulLazy(u64 x, u64 q) const
    {
        u64 hi = static_cast<u64>(((u128)x * wPrec) >> 64);
        return x * w - hi * q; // mod 2^64; result in [0, 2q)
    }
};

} // namespace cl

#endif // CL_RNS_MODARITH_H

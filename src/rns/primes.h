/**
 * @file
 * Generation of NTT-friendly RNS primes: primes q with q ≡ 1 (mod 2N)
 * so that the negacyclic NTT of length N exists modulo q. CraterLake
 * needs up to 2·L_max = 120 such 28-bit primes (Sec 5.5); the paper
 * notes 28 bits is the narrowest width for which enough primes exist.
 */

#ifndef CL_RNS_PRIMES_H
#define CL_RNS_PRIMES_H

#include <cstdint>
#include <vector>

#include "rns/modarith.h"

namespace cl {

/** Deterministic Miller-Rabin primality test, exact for q < 2^64. */
bool isPrime(u64 q);

/**
 * Generate @p count NTT-friendly primes of exactly @p bits bits
 * (i.e., in [2^(bits-1), 2^bits)) congruent to 1 mod 2N, descending
 * from the top of the range.
 *
 * @param bits Prime width in bits (e.g., 28 for the hardware width).
 * @param n Ring degree N; primes satisfy q ≡ 1 (mod 2N).
 * @param count Number of primes requested.
 * @return The primes, largest first. Fatal if not enough exist.
 */
std::vector<u64> generateNttPrimes(unsigned bits, std::size_t n,
                                   std::size_t count);

/** Count all NTT-friendly primes of width @p bits for ring degree n. */
std::size_t countNttPrimes(unsigned bits, std::size_t n);

/** Find a primitive 2N-th root of unity modulo prime q (q ≡ 1 mod 2N). */
u64 findPrimitiveRoot(u64 q, std::size_t two_n);

} // namespace cl

#endif // CL_RNS_PRIMES_H

/**
 * @file
 * Runtime-dispatched SIMD kernel backend for the RNS elementwise hot
 * paths — the software stand-in for CraterLake's 2,048 fixed-modulus
 * vector lanes (Sec 5). Every elementwise kernel the functional
 * library runs (modular add/sub/mul, Shoup multiply, the
 * changeRNSBase MAC inner product, the Harvey lazy NTT butterflies,
 * and the automorphism slot gather) goes through one function-pointer
 * table, selected once at startup:
 *
 *  - `scalar`  — the reference loops (exactly the pre-SIMD code).
 *  - `avx2`    — 4 lanes of 64-bit residues, 32x32->64 multiplies.
 *  - `avx512`  — 8 lanes, same algorithms with mask registers.
 *
 * Selection is CPUID-driven (best supported backend wins) and can be
 * overridden with `CL_SIMD=scalar|avx2|avx512`, mirroring CL_THREADS:
 * threads partition towers, lanes partition coefficients, and the two
 * compose multiplicatively.
 *
 * ## Bit-identity contract
 *
 * Every backend produces bit-identical output for every kernel:
 *
 *  - Canonical kernels (add/sub/mul/negate/Shoup/MAC) return the
 *    unique representative in [0, q); any exact algorithm agrees, so
 *    the AVX paths may use Barrett reduction where the scalar path
 *    uses a 128-bit divide.
 *  - Lazy kernels (NTT butterflies, inverse scaling) compute the
 *    *same integer formula* as `ShoupMul::mulLazy` — quotient
 *    hi = floor(x * wPrec / 2^64), remainder x*w - hi*q mod 2^64 —
 *    so the lazy representatives in [0, 2q) / [0, 4q) match exactly,
 *    not just mod q. PR 1's Harvey bounds are unchanged.
 *
 * ## Modulus-width gating
 *
 * The multiply-class vector kernels engage only for moduli below
 * 2^30 (`kSimdNarrowModulusBound`): with q < 2^30 every lazy operand
 * stays below 4q < 2^32, so one 32x32->64 `vpmuludq` forms exact
 * products and the 64-bit Shoup/Barrett quotients split into two
 * 32-bit multiplies. This covers CraterLake's 28-bit datapath primes
 * (Sec 5.5). For wide (40-62-bit CKKS) primes the vector backends
 * delegate to the scalar reference — trivially bit-identical — and
 * add/sub/negate/gather, which need no multiplies, vectorize at any
 * width. A later backend (GPU, ISPC, AVX-512 IFMA) slots into the
 * same table.
 */

#ifndef CL_RNS_SIMD_KERNELS_H
#define CL_RNS_SIMD_KERNELS_H

#include <cstddef>
#include <cstdint>

#include "rns/modarith.h"

namespace cl {

/** Selectable kernel backends, in increasing preference order. */
enum class SimdBackend
{
    Scalar = 0,
    Avx2 = 1,
    Avx512 = 2,
};

/** Multiply-class vector kernels engage only for q below this bound
 *  (4q must fit 32 bits so vpmuludq products are exact). */
constexpr u64 kSimdNarrowModulusBound = u64{1} << 30;

/**
 * Precomputed constants for the fused rescale epilogue/prologue
 * kernels: the Shoup pair for N^-1 mod q (identity pair {1, 2^64/q}
 * on the coefficient-domain path, where no scale is pending), the
 * dropped modulus q_l with its centering offset half = q_l/2, and
 * the Shoup pair for q_l^-1 mod q. Passed by pointer through the
 * kernel table so the signatures stay plain-C friendly.
 */
struct RescaleConsts
{
    u64 nInvW;
    u64 nInvPrec;
    u64 ql;
    u64 half;
    u64 qlInvW;
    u64 qlInvPrec;
};

/**
 * The per-coefficient rescale correction, exactly as the composed
 * sequence computes it: fold the lazy iNTT representative to
 * canonical via mulLazy(a, nInv) + one conditional subtract, center
 * the last-tower residue x_l, reduce it mod q, subtract, and multiply
 * by q_l^-1 (canonical Shoup). Both the scalar backend and the vector
 * backends' tail loops call this, so every backend computes the same
 * integer formula — the bit-identity contract extends to the fused
 * kernels.
 */
inline u64
rescaleCorrectScalar(u64 a, u64 xlv, const RescaleConsts &rc, u64 q)
{
    const u64 hi = static_cast<u64>(
        (static_cast<unsigned __int128>(a) * rc.nInvPrec) >> 64);
    const u64 r = a * rc.nInvW - hi * q;
    const u64 v = r >= q ? r - q : r;
    const u64 xs = addMod(xlv, rc.half, rc.ql);
    const u64 xm = subMod(xs % q, rc.half % q, q);
    const u64 d = subMod(v, xm, q);
    const u64 h2 = static_cast<u64>(
        (static_cast<unsigned __int128>(d) * rc.qlInvPrec) >> 64);
    const u64 r2 = d * rc.qlInvW - h2 * q;
    return r2 >= q ? r2 - q : r2;
}

/**
 * The dispatch table. All pointers are non-null in every backend.
 * Unless noted, kernels accept unaligned pointers and any length
 * (vector bodies handle the tail with the scalar reference).
 */
struct KernelTable
{
    SimdBackend id;
    const char *name;

    /** a[i] = (a[i] + b[i]) mod q; inputs < q. */
    void (*addModVec)(u64 *a, const u64 *b, std::size_t n, u64 q);

    /** a[i] = (a[i] - b[i]) mod q; inputs < q. */
    void (*subModVec)(u64 *a, const u64 *b, std::size_t n, u64 q);

    /** a[i] = a[i] * b[i] mod q (canonical); inputs < q, q < 2^62. */
    void (*mulModVec)(u64 *a, const u64 *b, std::size_t n, u64 q);

    /** acc[i] = (acc[i] + a[i] * b[i]) mod q (canonical); the fused
     *  multiply-accumulate of the keyswitch hint inner product. All
     *  inputs < q; acc must not alias a or b. Equals mulModVec into a
     *  temporary followed by addModVec, fused into one pass. */
    void (*mulAddModVec)(u64 *acc, const u64 *a, const u64 *b,
                         std::size_t n, u64 q);

    /** a[i] = q - a[i] (0 stays 0); inputs < q. */
    void (*negateVec)(u64 *a, std::size_t n, u64 q);

    /** y[i] = x[i] * w mod q, Shoup precomputed quotient wPrec =
     *  floor(w << 64 / q); inputs < q. y may alias x. */
    void (*mulModShoupVec)(u64 *y, const u64 *x, std::size_t n, u64 w,
                           u64 wPrec, u64 q);

    /** dst[i] = (hi[i] - lo[i]) * w mod q (fused keyswitch mod-down);
     *  hi, lo < q; Shoup pair (w, wPrec). dst may alias hi or lo. */
    void (*subMulShoupVec)(u64 *dst, const u64 *hi, const u64 *lo,
                           std::size_t n, u64 w, u64 wPrec, u64 q);

    /**
     * changeRNSBase inner product for one destination tower:
     * y[k] = sum_i (xs[i][k] mod q) * cs[i]  mod q, with cs[i] < q.
     * @p x_bound is an exclusive upper bound on every xs value (the
     * largest source modulus); the vector path engages when both q
     * and x_bound are narrow.
     */
    void (*baseconvMacVec)(u64 *y, const u64 *const *xs, const u64 *cs,
                           std::size_t ls, std::size_t n, u64 q,
                           u64 x_bound);

    /** dst[j] = src[idx[j]] (automorphism slot gather). dst must not
     *  alias src. */
    void (*gatherVec)(u64 *dst, const u64 *src, const std::uint32_t *idx,
                      std::size_t n);

    /**
     * Harvey lazy Cooley-Tukey butterfly block (forward NTT):
     * for j in [0, t):  xx = x[j] - 2q*(x[j] >= 2q)   in [0, 2q)
     *                   v  = mulLazy(y[j], w)         in [0, 2q)
     *                   x[j] = xx + v;  y[j] = xx + 2q - v.
     * Inputs in [0, 4q); q < 2^62.
     */
    void (*nttFwdButterflyVec)(u64 *x, u64 *y, std::size_t t, u64 w,
                               u64 wPrec, u64 q);

    /**
     * Lazy Gentleman-Sande butterfly block (inverse NTT):
     * for j in [0, t):  s = x[j] + y[j] - 2q*(.. >= 2q)  in [0, 2q)
     *                   y[j] = mulLazy(x[j] + 2q - y[j], w)
     *                   x[j] = s.
     * Inputs in [0, 2q); q < 2^62.
     */
    void (*nttInvButterflyVec)(u64 *x, u64 *y, std::size_t t, u64 w,
                               u64 wPrec, u64 q);

    /** Final forward-NTT correction pass: a[i] in [0, 4q) -> [0, q). */
    void (*nttCorrectVec)(u64 *a, std::size_t n, u64 q);

    /** Final inverse-NTT scaling: a[i] = mulLazy(a[i], w) folded to
     *  [0, q); inputs in [0, 2q); (w, wPrec) is the Shoup pair for
     *  N^-1 mod q. */
    void (*nttScaleInvVec)(u64 *a, std::size_t n, u64 w, u64 wPrec,
                           u64 q);

    // ---- Fused pipeline kernels (CL_FUSE, DESIGN.md §5e) ----------
    // Each computes exactly the composed per-coefficient integer
    // formula of the two(+) kernels it replaces, including the Harvey
    // lazy representatives, in a single pass over the operands.

    /**
     * Last Gentleman-Sande butterfly stage fused with the N^-1
     * scaling epilogue (the iNTT's final two passes in one):
     * for j in [0, t):  s = x[j] + y[j] - 2q*(.. >= 2q)
     *                   m = mulLazy(x[j] + 2q - y[j], w)
     *                   x[j] = fold_q(mulLazy(s, nw))
     *                   y[j] = fold_q(mulLazy(m, nw)).
     * Inputs in [0, 2q); outputs canonical. (nw, nwPrec) is the Shoup
     * pair for N^-1 mod q; q < 2^62.
     */
    void (*nttInvScaleButterflyVec)(u64 *x, u64 *y, std::size_t t, u64 w,
                                    u64 wPrec, u64 nw, u64 nwPrec, u64 q);

    /**
     * Rescale epilogue: a[i] = rescaleCorrectScalar(a[i], xl[i], rc, q)
     * — iNTT scale fold, centered last-tower subtract, and q_l^-1
     * multiply in one pass. On the coefficient-domain path rc's nInv
     * pair is the exact identity {1, 2^64/q} (mulLazy(x, 1) == x for
     * x < q), so one kernel serves both domains bit-identically.
     * a in [0, 2q) (NTT path) or [0, q) (coeff path); xl < ql.
     */
    void (*rescaleEpilogueVec)(u64 *a, const u64 *xl, std::size_t n,
                               const RescaleConsts *rc, u64 q);

    /**
     * Rescale correction fused into the first forward-CT butterfly
     * stage (the rescale's subtract/multiply passes plus the NTT's
     * first pass in one): for j in [0, t):
     *   cx = rescaleCorrectScalar(x[j], xlx[j], rc, q)   (canonical)
     *   cy = rescaleCorrectScalar(y[j], xly[j], rc, q)
     *   v  = mulLazy(cy, w)
     *   x[j] = cx + v;  y[j] = cx + 2q - v.
     * The composed stage-1 fold of canonical cx is a no-op, so the
     * outputs match the composed sequence exactly. q < 2^62.
     */
    void (*rescaleNttFwdButterflyVec)(u64 *x, u64 *y, const u64 *xlx,
                                      const u64 *xly, std::size_t t,
                                      const RescaleConsts *rc, u64 w,
                                      u64 wPrec, u64 q);

    /**
     * modDown epilogue: fold x[i] from the forward NTT's lazy [0, 4q)
     * to canonical (two conditional subtracts, exactly nttCorrectVec),
     * then dst[i] = (acc[i] - x_c) * w mod q — the NTT correction pass
     * and subMulShoupVec in one. acc < q; dst must not alias x.
     */
    void (*nttCorrectSubMulShoupVec)(u64 *dst, const u64 *acc,
                                     const u64 *x, std::size_t n, u64 w,
                                     u64 wPrec, u64 q);
};

/**
 * The active kernel table. Resolved once on first use: the CL_SIMD
 * environment variable if set (falling back to scalar, with a
 * warning, when the requested backend is unavailable), else the best
 * backend both compiled in and supported by this CPU.
 */
const KernelTable &kernels();

/** Backend of the active table. */
SimdBackend activeSimdBackend();

/** Table for a specific backend, or nullptr when it is not compiled
 *  in or not supported by this CPU (tests/benchmarks). */
const KernelTable *kernelTableFor(SimdBackend backend);

/** Switch the active backend; returns false (and changes nothing)
 *  when the backend is unavailable. Must not race with in-flight
 *  kernels (tests/benchmarks sweeping backends). */
bool setSimdBackend(SimdBackend backend);

/** Human-readable backend name ("scalar", "avx2", "avx512"). */
const char *simdBackendName(SimdBackend backend);

/**
 * Whether the fused single-pass pipelines (rescale/modDown epilogues,
 * tower-tiled keyswitch inner product, tiled base conversion) are
 * engaged. Resolved once from CL_FUSE (default on; CL_FUSE=0 falls
 * back to the composed multi-pass sequences). Fused and composed
 * paths are bit-identical by construction; the escape hatch exists
 * for differential testing and perf comparison, not correctness.
 */
bool fusionEnabled();

/** Override the fusion gate (tests/benchmarks sweeping both paths).
 *  Must not race with in-flight evaluator calls. */
void setFusionEnabled(bool enabled);

/**
 * Working-set floor for the tower-tiled keyswitch inner product: the
 * tiled sweep engages only when one extended-basis digit image
 * (towers * N * 8 bytes) is at least this large. Below the floor the
 * whole inner product is already cache-resident and the composed
 * per-digit path is faster — tiling is a bandwidth optimization, not
 * an ALU one. Resolved once from CL_FUSE_TILE (bytes; default 1 MiB;
 * 0 forces tiling whenever fusion is on). Both paths are
 * bit-identical, so the floor only moves the crossover point.
 */
u64 fusionTileMinBytes();

/** Override the tile floor (tests forcing the tiled path at small N).
 *  Must not race with in-flight evaluator calls. */
void setFusionTileMinBytes(u64 bytes);

} // namespace cl

#endif // CL_RNS_SIMD_KERNELS_H

/**
 * AVX2 backend: 4 lanes of 64-bit residues per vector.
 *
 * AVX2 has no 64x64 multiply, so every product is built from the
 * 32x32->64 `vpmuludq`; that is exact only when the narrow-modulus
 * gate holds (q < 2^30, all lazy operands < 4q < 2^32 — see
 * kernels.h). Quotient synthesis:
 *
 *  - Shoup quotient, operand x < 2^32, 64-bit precomputed wPrec split
 *    as wpHi:wpLo:  floor(x*wPrec / 2^64)
 *      = (x*wpHi + ((x*wpLo) >> 32)) >> 32              (exact)
 *    The carry term x*wpHi is at most (2^32-1)^2, so the sum cannot
 *    wrap. This reproduces ShoupMul::mulLazy bit for bit.
 *
 *  - Barrett quotient for a 64-bit value v < min(2^62, q*2^32) with
 *    M = floor(2^64 / q) < 2^37 split as mHi:mLo and v as vHi:vLo:
 *      hi = vHi*mHi + ((vHi*mLo + vLo*mHi + ((vLo*mLo) >> 32)) >> 32)
 *    hi is the exact floor(v*M / 2^64), which undershoots the true
 *    quotient by at most 2, so v - hi*q lands in [0, 3q): two
 *    conditional subtracts give the canonical value. (Canonical
 *    kernels only — the result equals the scalar 128-bit divide.)
 *
 * Unsigned 64-bit compares use signed vpcmpgtq, valid because every
 * compared value stays below 2^63 (moduli are < 2^62).
 */

#include "rns/simd/kernels.h"
#include "rns/simd/ref_impl.h"

#if defined(__AVX2__)

#include <immintrin.h>

namespace cl {
namespace simd {
namespace {

inline __m256i
set1(u64 v)
{
    return _mm256_set1_epi64x(static_cast<long long>(v));
}

/** low32(a) * low32(b), full 64-bit product per lane. */
inline __m256i
mul32(__m256i a, __m256i b)
{
    return _mm256_mul_epu32(a, b);
}

/** r - q if r >= q (values < 2^63). qm1 = set1(q - 1). */
inline __m256i
csub(__m256i r, __m256i q, __m256i qm1)
{
    const __m256i m = _mm256_cmpgt_epi64(r, qm1);
    return _mm256_sub_epi64(r, _mm256_and_si256(q, m));
}

/** Shoup/Barrett constant split into 32-bit halves. */
struct Split32
{
    __m256i hi, lo;

    explicit Split32(u64 v)
        : hi(set1(v >> 32)), lo(set1(v & 0xffffffffu))
    {
    }
};

/** floor(x * w64 / 2^64) for x < 2^32 (w64 given split). */
inline __m256i
mulHi64Narrow(__m256i x, const Split32 &w64)
{
    const __m256i t = _mm256_add_epi64(
        mul32(x, w64.hi), _mm256_srli_epi64(mul32(x, w64.lo), 32));
    return _mm256_srli_epi64(t, 32);
}

/** ShoupMul::mulLazy for x < 2^32, w < q < 2^30: x*w - hi*q mod 2^64,
 *  result in [0, 2q). Bit-identical to the scalar formula. */
inline __m256i
shoupMulLazy(__m256i x, __m256i wv, const Split32 &wPrec, __m256i qv)
{
    const __m256i hi = mulHi64Narrow(x, wPrec);
    return _mm256_sub_epi64(mul32(x, wv), mul32(hi, qv));
}

/** Exact floor(v * M / 2^64) for v < 2^62, M < 2^37 (split). */
inline __m256i
barrettHi(__m256i v, const Split32 &m)
{
    const __m256i vHi = _mm256_srli_epi64(v, 32);
    const __m256i t = _mm256_add_epi64(
        _mm256_add_epi64(mul32(vHi, m.lo), mul32(v, m.hi)),
        _mm256_srli_epi64(mul32(v, m.lo), 32));
    return _mm256_add_epi64(mul32(vHi, m.hi), _mm256_srli_epi64(t, 32));
}

/** Canonical v mod q for v < min(2^62, q * 2^32). */
inline __m256i
barrettReduce(__m256i v, const Split32 &m, __m256i qv, __m256i qm1)
{
    const __m256i hi = barrettHi(v, m);
    __m256i r = _mm256_sub_epi64(v, mul32(hi, qv));
    r = csub(r, qv, qm1);
    return csub(r, qv, qm1);
}

inline bool
narrow(u64 q)
{
    return q < kSimdNarrowModulusBound;
}

// --- Kernels -----------------------------------------------------------

void
addModVec(u64 *a, const u64 *b, std::size_t n, u64 q)
{
    const __m256i qv = set1(q), qm1 = set1(q - 1);
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256i x =
            _mm256_loadu_si256(reinterpret_cast<const __m256i *>(a + i));
        const __m256i y =
            _mm256_loadu_si256(reinterpret_cast<const __m256i *>(b + i));
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(a + i),
                            csub(_mm256_add_epi64(x, y), qv, qm1));
    }
    ref::addModVec(a + i, b + i, n - i, q);
}

void
subModVec(u64 *a, const u64 *b, std::size_t n, u64 q)
{
    const __m256i qv = set1(q);
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256i x =
            _mm256_loadu_si256(reinterpret_cast<const __m256i *>(a + i));
        const __m256i y =
            _mm256_loadu_si256(reinterpret_cast<const __m256i *>(b + i));
        const __m256i borrow = _mm256_cmpgt_epi64(y, x);
        const __m256i r = _mm256_add_epi64(
            _mm256_sub_epi64(x, y), _mm256_and_si256(qv, borrow));
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(a + i), r);
    }
    ref::subModVec(a + i, b + i, n - i, q);
}

void
mulModVec(u64 *a, const u64 *b, std::size_t n, u64 q)
{
    if (!narrow(q))
        return ref::mulModVec(a, b, n, q);
    const Split32 m(static_cast<u64>((u128{1} << 64) / q));
    const __m256i qv = set1(q), qm1 = set1(q - 1);
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256i x =
            _mm256_loadu_si256(reinterpret_cast<const __m256i *>(a + i));
        const __m256i y =
            _mm256_loadu_si256(reinterpret_cast<const __m256i *>(b + i));
        const __m256i prod = mul32(x, y); // exact: x, y < q < 2^30
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(a + i),
                            barrettReduce(prod, m, qv, qm1));
    }
    ref::mulModVec(a + i, b + i, n - i, q);
}

void
mulAddModVec(u64 *acc, const u64 *a, const u64 *b, std::size_t n, u64 q)
{
    if (!narrow(q))
        return ref::mulAddModVec(acc, a, b, n, q);
    const Split32 m(static_cast<u64>((u128{1} << 64) / q));
    const __m256i qv = set1(q), qm1 = set1(q - 1);
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256i x =
            _mm256_loadu_si256(reinterpret_cast<const __m256i *>(a + i));
        const __m256i y =
            _mm256_loadu_si256(reinterpret_cast<const __m256i *>(b + i));
        const __m256i s = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(acc + i));
        const __m256i prod = mul32(x, y); // exact: x, y < q < 2^30
        const __m256i r = barrettReduce(prod, m, qv, qm1);
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(acc + i),
                            csub(_mm256_add_epi64(s, r), qv, qm1));
    }
    ref::mulAddModVec(acc + i, a + i, b + i, n - i, q);
}

void
negateVec(u64 *a, std::size_t n, u64 q)
{
    const __m256i qv = set1(q), zero = _mm256_setzero_si256();
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256i x =
            _mm256_loadu_si256(reinterpret_cast<const __m256i *>(a + i));
        __m256i r = _mm256_sub_epi64(qv, x);
        r = _mm256_andnot_si256(_mm256_cmpeq_epi64(x, zero), r);
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(a + i), r);
    }
    ref::negateVec(a + i, n - i, q);
}

void
mulModShoupVec(u64 *y, const u64 *x, std::size_t n, u64 w, u64 wPrec,
               u64 q)
{
    if (!narrow(q))
        return ref::mulModShoupVec(y, x, n, w, wPrec, q);
    const Split32 wp(wPrec);
    const __m256i wv = set1(w), qv = set1(q), qm1 = set1(q - 1);
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256i xv =
            _mm256_loadu_si256(reinterpret_cast<const __m256i *>(x + i));
        const __m256i r = shoupMulLazy(xv, wv, wp, qv);
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(y + i),
                            csub(r, qv, qm1));
    }
    ref::mulModShoupVec(y + i, x + i, n - i, w, wPrec, q);
}

void
subMulShoupVec(u64 *dst, const u64 *hi, const u64 *lo, std::size_t n,
               u64 w, u64 wPrec, u64 q)
{
    if (!narrow(q))
        return ref::subMulShoupVec(dst, hi, lo, n, w, wPrec, q);
    const Split32 wp(wPrec);
    const __m256i wv = set1(w), qv = set1(q), qm1 = set1(q - 1);
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256i h =
            _mm256_loadu_si256(reinterpret_cast<const __m256i *>(hi + i));
        const __m256i l =
            _mm256_loadu_si256(reinterpret_cast<const __m256i *>(lo + i));
        const __m256i borrow = _mm256_cmpgt_epi64(l, h);
        const __m256i d = _mm256_add_epi64(
            _mm256_sub_epi64(h, l), _mm256_and_si256(qv, borrow));
        const __m256i r = shoupMulLazy(d, wv, wp, qv);
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(dst + i),
                            csub(r, qv, qm1));
    }
    ref::subMulShoupVec(dst + i, hi + i, lo + i, n - i, w, wPrec, q);
}

void
baseconvMacVec(u64 *y, const u64 *const *xs, const u64 *cs,
               std::size_t ls, std::size_t n, u64 q, u64 x_bound)
{
    // Narrow gate: destination modulus < 2^30 AND every source value
    // < 2^32, so the pre-reduction x mod q uses the cheap two-product
    // Barrett (quotient off by at most 1 -> one conditional subtract)
    // and products fit 64-bit accumulators.
    if (!narrow(q) || x_bound > (u64{1} << 32) || n < 4)
        return ref::baseconvMacVec(y, xs, cs, ls, n, q, x_bound);

    const u64 M = static_cast<u64>((u128{1} << 64) / q);
    const Split32 m(M);
    const __m256i qv = set1(q), qm1 = set1(q - 1);
    // Accumulator flush period: chunk * q^2 <= q * 2^32 keeps the
    // running sum below the Barrett domain (and far below 2^64).
    const std::size_t chunk =
        static_cast<std::size_t>((u64{1} << 32) / q);

    std::size_t k = 0;
    for (; k + 4 <= n; k += 4) {
        __m256i acc = _mm256_setzero_si256();
        std::size_t since_flush = 0;
        for (std::size_t i = 0; i < ls; ++i) {
            const __m256i x = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(xs[i] + k));
            // t = x mod q, x < 2^32: quotient via two-product Barrett.
            const __m256i hi = mulHi64Narrow(x, m);
            __m256i t = _mm256_sub_epi64(x, mul32(hi, qv));
            t = csub(t, qv, qm1); // [0, q)
            acc = _mm256_add_epi64(acc, mul32(t, set1(cs[i])));
            if (++since_flush >= chunk && i + 1 < ls) {
                acc = barrettReduce(acc, m, qv, qm1);
                since_flush = 0;
            }
        }
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(y + k),
                            barrettReduce(acc, m, qv, qm1));
    }
    // Scalar tail (exact 128-bit accumulation; same value).
    for (; k < n; ++k) {
        u128 acc = 0;
        for (std::size_t i = 0; i < ls; ++i)
            acc += (u128)(xs[i][k] % q) * cs[i];
        y[k] = static_cast<u64>(acc % q);
    }
}

void
gatherVec(u64 *dst, const u64 *src, const std::uint32_t *idx,
          std::size_t n)
{
    std::size_t j = 0;
    for (; j + 4 <= n; j += 4) {
        const __m128i iv =
            _mm_loadu_si128(reinterpret_cast<const __m128i *>(idx + j));
        const __m256i g = _mm256_i32gather_epi64(
            reinterpret_cast<const long long *>(src), iv, 8);
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(dst + j), g);
    }
    ref::gatherVec(dst + j, src, idx + j, n - j);
}

void
nttFwdButterflyVec(u64 *x, u64 *y, std::size_t t, u64 w, u64 wPrec,
                   u64 q)
{
    if (!narrow(q))
        return ref::nttFwdButterflyVec(x, y, t, w, wPrec, q);
    const Split32 wp(wPrec);
    const __m256i wv = set1(w), qv = set1(q);
    const __m256i two_q = set1(2 * q), two_qm1 = set1(2 * q - 1);
    std::size_t j = 0;
    for (; j + 4 <= t; j += 4) {
        __m256i xv =
            _mm256_loadu_si256(reinterpret_cast<const __m256i *>(x + j));
        const __m256i yv =
            _mm256_loadu_si256(reinterpret_cast<const __m256i *>(y + j));
        xv = csub(xv, two_q, two_qm1);              // [0, 2q)
        const __m256i v = shoupMulLazy(yv, wv, wp, qv); // [0, 2q)
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(x + j),
                            _mm256_add_epi64(xv, v));
        _mm256_storeu_si256(
            reinterpret_cast<__m256i *>(y + j),
            _mm256_sub_epi64(_mm256_add_epi64(xv, two_q), v));
    }
    ref::nttFwdButterflyVec(x + j, y + j, t - j, w, wPrec, q);
}

void
nttInvButterflyVec(u64 *x, u64 *y, std::size_t t, u64 w, u64 wPrec,
                   u64 q)
{
    if (!narrow(q))
        return ref::nttInvButterflyVec(x, y, t, w, wPrec, q);
    const Split32 wp(wPrec);
    const __m256i wv = set1(w), qv = set1(q);
    const __m256i two_q = set1(2 * q), two_qm1 = set1(2 * q - 1);
    std::size_t j = 0;
    for (; j + 4 <= t; j += 4) {
        const __m256i xv =
            _mm256_loadu_si256(reinterpret_cast<const __m256i *>(x + j));
        const __m256i yv =
            _mm256_loadu_si256(reinterpret_cast<const __m256i *>(y + j));
        const __m256i s =
            csub(_mm256_add_epi64(xv, yv), two_q, two_qm1);
        const __m256i u =
            _mm256_sub_epi64(_mm256_add_epi64(xv, two_q), yv); // (0,4q)
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(x + j), s);
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(y + j),
                            shoupMulLazy(u, wv, wp, qv));
    }
    ref::nttInvButterflyVec(x + j, y + j, t - j, w, wPrec, q);
}

void
nttCorrectVec(u64 *a, std::size_t n, u64 q)
{
    if (!narrow(q))
        return ref::nttCorrectVec(a, n, q);
    const __m256i qv = set1(q), qm1 = set1(q - 1);
    const __m256i two_q = set1(2 * q), two_qm1 = set1(2 * q - 1);
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        __m256i x =
            _mm256_loadu_si256(reinterpret_cast<const __m256i *>(a + i));
        x = csub(x, two_q, two_qm1);
        x = csub(x, qv, qm1);
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(a + i), x);
    }
    ref::nttCorrectVec(a + i, n - i, q);
}

void
nttScaleInvVec(u64 *a, std::size_t n, u64 w, u64 wPrec, u64 q)
{
    if (!narrow(q))
        return ref::nttScaleInvVec(a, n, w, wPrec, q);
    const Split32 wp(wPrec);
    const __m256i wv = set1(w), qv = set1(q), qm1 = set1(q - 1);
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256i x =
            _mm256_loadu_si256(reinterpret_cast<const __m256i *>(a + i));
        const __m256i r = shoupMulLazy(x, wv, wp, qv);
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(a + i),
                            csub(r, qv, qm1));
    }
    ref::nttScaleInvVec(a + i, n - i, w, wPrec, q);
}

// --- Fused pipeline kernels (DESIGN.md §5e) ----------------------------

/** Vector-splatted RescaleConsts; built once per kernel call. Also
 *  requires narrow(ql) so xs = xl + half stays below 2^32. */
struct RescaleVec
{
    Split32 nInvPrec, qlInvPrec, mq;
    __m256i nInvW, qlInvW, qlv, qlm1, halfv, halfModQ, qv, qm1;

    RescaleVec(const RescaleConsts &rc, u64 q)
        : nInvPrec(rc.nInvPrec), qlInvPrec(rc.qlInvPrec),
          mq(static_cast<u64>((u128{1} << 64) / q)), nInvW(set1(rc.nInvW)),
          qlInvW(set1(rc.qlInvW)), qlv(set1(rc.ql)), qlm1(set1(rc.ql - 1)),
          halfv(set1(rc.half)), halfModQ(set1(rc.half % q)), qv(set1(q)),
          qm1(set1(q - 1))
    {
    }
};

/** rescaleCorrectScalar on 4 lanes; a < 2q, xl < ql, both narrow. */
inline __m256i
rescaleCorrect(__m256i a, __m256i xl, const RescaleVec &c)
{
    // v = fold_q(mulLazy(a, nInv)); exact: a < 2q < 2^31.
    const __m256i v =
        csub(shoupMulLazy(a, c.nInvW, c.nInvPrec, c.qv), c.qv, c.qm1);
    // xs = addMod(xl, half, ql).
    const __m256i xs = csub(_mm256_add_epi64(xl, c.halfv), c.qlv, c.qlm1);
    // xs mod q: two-product Barrett, quotient off by at most 1 for
    // xs < 2^32 -> one conditional subtract (as in baseconvMacVec).
    const __m256i hi = mulHi64Narrow(xs, c.mq);
    __m256i t = _mm256_sub_epi64(xs, mul32(hi, c.qv));
    t = csub(t, c.qv, c.qm1);
    // xm = subMod(xs mod q, half mod q, q).
    __m256i borrow = _mm256_cmpgt_epi64(c.halfModQ, t);
    const __m256i xm = _mm256_add_epi64(_mm256_sub_epi64(t, c.halfModQ),
                                        _mm256_and_si256(c.qv, borrow));
    // d = subMod(v, xm, q).
    borrow = _mm256_cmpgt_epi64(xm, v);
    const __m256i d = _mm256_add_epi64(_mm256_sub_epi64(v, xm),
                                       _mm256_and_si256(c.qv, borrow));
    // Canonical Shoup multiply by ql^-1.
    return csub(shoupMulLazy(d, c.qlInvW, c.qlInvPrec, c.qv), c.qv, c.qm1);
}

void
nttInvScaleButterflyVec(u64 *x, u64 *y, std::size_t t, u64 w, u64 wPrec,
                        u64 nw, u64 nwPrec, u64 q)
{
    if (!narrow(q))
        return ref::nttInvScaleButterflyVec(x, y, t, w, wPrec, nw,
                                            nwPrec, q);
    const Split32 wp(wPrec), nwp(nwPrec);
    const __m256i wv = set1(w), nwv = set1(nw), qv = set1(q);
    const __m256i qm1 = set1(q - 1);
    const __m256i two_q = set1(2 * q), two_qm1 = set1(2 * q - 1);
    std::size_t j = 0;
    for (; j + 4 <= t; j += 4) {
        const __m256i xv =
            _mm256_loadu_si256(reinterpret_cast<const __m256i *>(x + j));
        const __m256i yv =
            _mm256_loadu_si256(reinterpret_cast<const __m256i *>(y + j));
        const __m256i s =
            csub(_mm256_add_epi64(xv, yv), two_q, two_qm1);
        const __m256i u =
            _mm256_sub_epi64(_mm256_add_epi64(xv, two_q), yv); // (0,4q)
        const __m256i mv = shoupMulLazy(u, wv, wp, qv);        // [0,2q)
        _mm256_storeu_si256(
            reinterpret_cast<__m256i *>(x + j),
            csub(shoupMulLazy(s, nwv, nwp, qv), qv, qm1));
        _mm256_storeu_si256(
            reinterpret_cast<__m256i *>(y + j),
            csub(shoupMulLazy(mv, nwv, nwp, qv), qv, qm1));
    }
    ref::nttInvScaleButterflyVec(x + j, y + j, t - j, w, wPrec, nw,
                                 nwPrec, q);
}

void
rescaleEpilogueVec(u64 *a, const u64 *xl, std::size_t n,
                   const RescaleConsts *rc, u64 q)
{
    if (!narrow(q) || !narrow(rc->ql))
        return ref::rescaleEpilogueVec(a, xl, n, rc, q);
    const RescaleVec c(*rc, q);
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256i av =
            _mm256_loadu_si256(reinterpret_cast<const __m256i *>(a + i));
        const __m256i xv =
            _mm256_loadu_si256(reinterpret_cast<const __m256i *>(xl + i));
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(a + i),
                            rescaleCorrect(av, xv, c));
    }
    ref::rescaleEpilogueVec(a + i, xl + i, n - i, rc, q);
}

void
rescaleNttFwdButterflyVec(u64 *x, u64 *y, const u64 *xlx, const u64 *xly,
                          std::size_t t, const RescaleConsts *rc, u64 w,
                          u64 wPrec, u64 q)
{
    if (!narrow(q) || !narrow(rc->ql))
        return ref::rescaleNttFwdButterflyVec(x, y, xlx, xly, t, rc, w,
                                              wPrec, q);
    const RescaleVec c(*rc, q);
    const Split32 wp(wPrec);
    const __m256i wv = set1(w), qv = set1(q), two_q = set1(2 * q);
    std::size_t j = 0;
    for (; j + 4 <= t; j += 4) {
        const __m256i xv =
            _mm256_loadu_si256(reinterpret_cast<const __m256i *>(x + j));
        const __m256i yv =
            _mm256_loadu_si256(reinterpret_cast<const __m256i *>(y + j));
        const __m256i lx = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(xlx + j));
        const __m256i ly = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(xly + j));
        const __m256i cx = rescaleCorrect(xv, lx, c); // [0, q)
        const __m256i cy = rescaleCorrect(yv, ly, c); // [0, q)
        const __m256i v = shoupMulLazy(cy, wv, wp, qv); // [0, 2q)
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(x + j),
                            _mm256_add_epi64(cx, v));
        _mm256_storeu_si256(
            reinterpret_cast<__m256i *>(y + j),
            _mm256_sub_epi64(_mm256_add_epi64(cx, two_q), v));
    }
    ref::rescaleNttFwdButterflyVec(x + j, y + j, xlx + j, xly + j, t - j,
                                   rc, w, wPrec, q);
}

void
nttCorrectSubMulShoupVec(u64 *dst, const u64 *acc, const u64 *x,
                         std::size_t n, u64 w, u64 wPrec, u64 q)
{
    if (!narrow(q))
        return ref::nttCorrectSubMulShoupVec(dst, acc, x, n, w, wPrec, q);
    const Split32 wp(wPrec);
    const __m256i wv = set1(w), qv = set1(q), qm1 = set1(q - 1);
    const __m256i two_q = set1(2 * q), two_qm1 = set1(2 * q - 1);
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        __m256i c =
            _mm256_loadu_si256(reinterpret_cast<const __m256i *>(x + i));
        c = csub(c, two_q, two_qm1);
        c = csub(c, qv, qm1); // canonical
        const __m256i av = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(acc + i));
        const __m256i borrow = _mm256_cmpgt_epi64(c, av);
        const __m256i d = _mm256_add_epi64(
            _mm256_sub_epi64(av, c), _mm256_and_si256(qv, borrow));
        const __m256i r = shoupMulLazy(d, wv, wp, qv);
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(dst + i),
                            csub(r, qv, qm1));
    }
    ref::nttCorrectSubMulShoupVec(dst + i, acc + i, x + i, n - i, w,
                                  wPrec, q);
}

} // namespace

const KernelTable *
avx2Table()
{
    static const KernelTable table = {
        SimdBackend::Avx2,
        "avx2",
        &addModVec,
        &subModVec,
        &mulModVec,
        &mulAddModVec,
        &negateVec,
        &mulModShoupVec,
        &subMulShoupVec,
        &baseconvMacVec,
        &gatherVec,
        &nttFwdButterflyVec,
        &nttInvButterflyVec,
        &nttCorrectVec,
        &nttScaleInvVec,
        &nttInvScaleButterflyVec,
        &rescaleEpilogueVec,
        &rescaleNttFwdButterflyVec,
        &nttCorrectSubMulShoupVec,
    };
    return &table;
}

} // namespace simd
} // namespace cl

#else // !__AVX2__

namespace cl {
namespace simd {

const KernelTable *
avx2Table()
{
    return nullptr;
}

} // namespace simd
} // namespace cl

#endif

/** Scalar backend: the reference loops, verbatim. */

#include "rns/simd/kernels.h"
#include "rns/simd/ref_impl.h"

namespace cl {
namespace simd {

const KernelTable *
scalarTable()
{
    static const KernelTable table = {
        SimdBackend::Scalar,
        "scalar",
        &ref::addModVec,
        &ref::subModVec,
        &ref::mulModVec,
        &ref::mulAddModVec,
        &ref::negateVec,
        &ref::mulModShoupVec,
        &ref::subMulShoupVec,
        &ref::baseconvMacVec,
        &ref::gatherVec,
        &ref::nttFwdButterflyVec,
        &ref::nttInvButterflyVec,
        &ref::nttCorrectVec,
        &ref::nttScaleInvVec,
        &ref::nttInvScaleButterflyVec,
        &ref::rescaleEpilogueVec,
        &ref::rescaleNttFwdButterflyVec,
        &ref::nttCorrectSubMulShoupVec,
    };
    return &table;
}

} // namespace simd
} // namespace cl

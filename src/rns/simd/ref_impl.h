/**
 * @file
 * Scalar reference implementations of every kernel in the dispatch
 * table — exactly the loops the library ran before the SIMD backend
 * existed. The scalar table points straight at these; the vector
 * backends call them for wide moduli and loop tails, which is what
 * makes the bit-identity argument trivial off the narrow fast path.
 *
 * Internal header: only the backend translation units include it.
 */

#ifndef CL_RNS_SIMD_REF_IMPL_H
#define CL_RNS_SIMD_REF_IMPL_H

#include <vector>

#include "rns/modarith.h"

namespace cl {
namespace simd {
namespace ref {

inline void
addModVec(u64 *a, const u64 *b, std::size_t n, u64 q)
{
    for (std::size_t i = 0; i < n; ++i)
        a[i] = addMod(a[i], b[i], q);
}

inline void
subModVec(u64 *a, const u64 *b, std::size_t n, u64 q)
{
    for (std::size_t i = 0; i < n; ++i)
        a[i] = subMod(a[i], b[i], q);
}

inline void
mulModVec(u64 *a, const u64 *b, std::size_t n, u64 q)
{
    for (std::size_t i = 0; i < n; ++i)
        a[i] = mulMod(a[i], b[i], q);
}

inline void
mulAddModVec(u64 *acc, const u64 *a, const u64 *b, std::size_t n, u64 q)
{
    for (std::size_t i = 0; i < n; ++i)
        acc[i] = addMod(acc[i], mulMod(a[i], b[i], q), q);
}

inline void
negateVec(u64 *a, std::size_t n, u64 q)
{
    for (std::size_t i = 0; i < n; ++i)
        a[i] = a[i] == 0 ? 0 : q - a[i];
}

inline void
mulModShoupVec(u64 *y, const u64 *x, std::size_t n, u64 w, u64 wPrec,
               u64 q)
{
    for (std::size_t i = 0; i < n; ++i) {
        const u64 hi = static_cast<u64>(((u128)x[i] * wPrec) >> 64);
        const u64 r = x[i] * w - hi * q; // mod 2^64; in [0, 2q)
        y[i] = r >= q ? r - q : r;
    }
}

inline void
subMulShoupVec(u64 *dst, const u64 *hi, const u64 *lo, std::size_t n,
               u64 w, u64 wPrec, u64 q)
{
    for (std::size_t i = 0; i < n; ++i) {
        const u64 d = subMod(hi[i], lo[i], q);
        const u64 h = static_cast<u64>(((u128)d * wPrec) >> 64);
        const u64 r = d * w - h * q;
        dst[i] = r >= q ? r - q : r;
    }
}

inline void
baseconvMacVec(u64 *y, const u64 *const *xs, const u64 *cs,
               std::size_t ls, std::size_t n, u64 q, u64 /*x_bound*/)
{
    // The 128-bit accumulator holds at most reduce_every products of
    // two values < q before a reduction is forced, so it can never
    // wrap even for 62-bit moduli. Narrow moduli (q_bits <= 31) allow
    // 2^64 or more products — more than any term count — so the
    // mid-loop reduction never fires; the shift must be clamped there
    // (shifting by >= 64 is undefined, a latent bug in the pre-SIMD
    // version of this loop for sub-32-bit destination moduli).
    const unsigned q_bits = 64 - __builtin_clzll(q);
    const std::size_t reduce_every =
        q_bits >= 60   ? 8
        : q_bits <= 31 ? ~std::size_t{0}
                       : std::size_t{1} << (126 - 2 * q_bits);
    std::vector<u128> acc(n, 0);
    std::size_t since_reduce = 0;
    for (std::size_t i = 0; i < ls; ++i) {
        const u64 c = cs[i];
        const u64 *x = xs[i];
        for (std::size_t k = 0; k < n; ++k)
            acc[k] += (u128)(x[k] % q) * c;
        if (++since_reduce >= reduce_every && i + 1 < ls) {
            for (std::size_t k = 0; k < n; ++k)
                acc[k] %= q;
            since_reduce = 0;
        }
    }
    for (std::size_t k = 0; k < n; ++k)
        y[k] = static_cast<u64>(acc[k] % q);
}

inline void
gatherVec(u64 *dst, const u64 *src, const std::uint32_t *idx,
          std::size_t n)
{
    for (std::size_t j = 0; j < n; ++j)
        dst[j] = src[idx[j]];
}

inline void
nttFwdButterflyVec(u64 *x, u64 *y, std::size_t t, u64 w, u64 wPrec,
                   u64 q)
{
    const u64 two_q = 2 * q;
    for (std::size_t j = 0; j < t; ++j) {
        u64 xx = x[j];                       // [0, 4q)
        xx -= two_q * (xx >= two_q);         // -> [0, 2q), branchless
        const u64 hi = static_cast<u64>(((u128)y[j] * wPrec) >> 64);
        const u64 v = y[j] * w - hi * q;     // mulLazy: [0, 2q)
        x[j] = xx + v;                       // [0, 4q)
        y[j] = xx + two_q - v;               // (0, 4q)
    }
}

inline void
nttInvButterflyVec(u64 *x, u64 *y, std::size_t t, u64 w, u64 wPrec,
                   u64 q)
{
    const u64 two_q = 2 * q;
    for (std::size_t j = 0; j < t; ++j) {
        const u64 xx = x[j]; // [0, 2q)
        const u64 yy = y[j]; // [0, 2q)
        u64 s = xx + yy;     // [0, 4q)
        s -= two_q * (s >= two_q);
        x[j] = s; // [0, 2q)
        const u64 u = xx + two_q - yy; // (0, 4q)
        const u64 hi = static_cast<u64>(((u128)u * wPrec) >> 64);
        y[j] = u * w - hi * q; // mulLazy: [0, 2q)
    }
}

inline void
nttCorrectVec(u64 *a, std::size_t n, u64 q)
{
    const u64 two_q = 2 * q;
    for (std::size_t i = 0; i < n; ++i) {
        u64 x = a[i];
        x -= two_q * (x >= two_q);
        x -= q * (x >= q);
        a[i] = x;
    }
}

inline void
nttScaleInvVec(u64 *a, std::size_t n, u64 w, u64 wPrec, u64 q)
{
    for (std::size_t i = 0; i < n; ++i) {
        const u64 hi = static_cast<u64>(((u128)a[i] * wPrec) >> 64);
        const u64 r = a[i] * w - hi * q; // [0, 2q)
        a[i] = r >= q ? r - q : r;
    }
}

// ---- Fused pipeline kernels (DESIGN.md §5e) -----------------------
// Each loop is the literal composition of the per-coefficient
// formulas above, so the fused reference IS the composed sequence
// with the intermediate array store elided.

inline void
nttInvScaleButterflyVec(u64 *x, u64 *y, std::size_t t, u64 w, u64 wPrec,
                        u64 nw, u64 nwPrec, u64 q)
{
    const u64 two_q = 2 * q;
    for (std::size_t j = 0; j < t; ++j) {
        const u64 xx = x[j]; // [0, 2q)
        const u64 yy = y[j]; // [0, 2q)
        u64 s = xx + yy;     // [0, 4q)
        s -= two_q * (s >= two_q);
        const u64 u = xx + two_q - yy; // (0, 4q)
        const u64 hi = static_cast<u64>(((u128)u * wPrec) >> 64);
        const u64 m = u * w - hi * q; // mulLazy: [0, 2q)
        const u64 sh = static_cast<u64>(((u128)s * nwPrec) >> 64);
        const u64 sr = s * nw - sh * q;
        x[j] = sr >= q ? sr - q : sr;
        const u64 mh = static_cast<u64>(((u128)m * nwPrec) >> 64);
        const u64 mr = m * nw - mh * q;
        y[j] = mr >= q ? mr - q : mr;
    }
}

inline void
rescaleEpilogueVec(u64 *a, const u64 *xl, std::size_t n,
                   const RescaleConsts *rc, u64 q)
{
    for (std::size_t i = 0; i < n; ++i)
        a[i] = rescaleCorrectScalar(a[i], xl[i], *rc, q);
}

inline void
rescaleNttFwdButterflyVec(u64 *x, u64 *y, const u64 *xlx, const u64 *xly,
                          std::size_t t, const RescaleConsts *rc, u64 w,
                          u64 wPrec, u64 q)
{
    const u64 two_q = 2 * q;
    for (std::size_t j = 0; j < t; ++j) {
        const u64 cx = rescaleCorrectScalar(x[j], xlx[j], *rc, q);
        const u64 cy = rescaleCorrectScalar(y[j], xly[j], *rc, q);
        const u64 hi = static_cast<u64>(((u128)cy * wPrec) >> 64);
        const u64 v = cy * w - hi * q; // mulLazy: [0, 2q)
        x[j] = cx + v;                 // [0, 4q)
        y[j] = cx + two_q - v;         // (0, 4q)
    }
}

inline void
nttCorrectSubMulShoupVec(u64 *dst, const u64 *acc, const u64 *x,
                         std::size_t n, u64 w, u64 wPrec, u64 q)
{
    const u64 two_q = 2 * q;
    for (std::size_t i = 0; i < n; ++i) {
        u64 c = x[i]; // [0, 4q)
        c -= two_q * (c >= two_q);
        c -= q * (c >= q);
        const u64 d = subMod(acc[i], c, q);
        const u64 h = static_cast<u64>(((u128)d * wPrec) >> 64);
        const u64 r = d * w - h * q;
        dst[i] = r >= q ? r - q : r;
    }
}

} // namespace ref
} // namespace simd
} // namespace cl

#endif // CL_RNS_SIMD_REF_IMPL_H

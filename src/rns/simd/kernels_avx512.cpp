/**
 * AVX-512F backend: 8 lanes of 64-bit residues per vector.
 *
 * Same narrow-modulus algorithms as the AVX2 backend (32x32->64
 * `vpmuludq` products, split Shoup/Barrett quotients — see the
 * derivations in kernels_avx2.cpp), with two simplifications the
 * wider ISA affords: native unsigned 64-bit compares into mask
 * registers (no signed-compare trick) and masked subtracts for the
 * conditional corrections. Requires only AVX-512F at runtime.
 */

#include "rns/simd/kernels.h"
#include "rns/simd/ref_impl.h"

#if defined(__AVX512F__)

#include <immintrin.h>

namespace cl {
namespace simd {
namespace {

inline __m512i
set1(u64 v)
{
    return _mm512_set1_epi64(static_cast<long long>(v));
}

inline __m512i
mul32(__m512i a, __m512i b)
{
    return _mm512_mul_epu32(a, b);
}

/** r - q if r >= q (unsigned). */
inline __m512i
csub(__m512i r, __m512i q)
{
    const __mmask8 m = _mm512_cmpge_epu64_mask(r, q);
    return _mm512_mask_sub_epi64(r, m, r, q);
}

struct Split32
{
    __m512i hi, lo;

    explicit Split32(u64 v)
        : hi(set1(v >> 32)), lo(set1(v & 0xffffffffu))
    {
    }
};

/** floor(x * w64 / 2^64) for x < 2^32 (w64 given split). */
inline __m512i
mulHi64Narrow(__m512i x, const Split32 &w64)
{
    const __m512i t = _mm512_add_epi64(
        mul32(x, w64.hi), _mm512_srli_epi64(mul32(x, w64.lo), 32));
    return _mm512_srli_epi64(t, 32);
}

/** ShoupMul::mulLazy for x < 2^32, w < q < 2^30; result in [0, 2q). */
inline __m512i
shoupMulLazy(__m512i x, __m512i wv, const Split32 &wPrec, __m512i qv)
{
    const __m512i hi = mulHi64Narrow(x, wPrec);
    return _mm512_sub_epi64(mul32(x, wv), mul32(hi, qv));
}

/** Exact floor(v * M / 2^64) for v < 2^62, M < 2^37 (split). */
inline __m512i
barrettHi(__m512i v, const Split32 &m)
{
    const __m512i vHi = _mm512_srli_epi64(v, 32);
    const __m512i t = _mm512_add_epi64(
        _mm512_add_epi64(mul32(vHi, m.lo), mul32(v, m.hi)),
        _mm512_srli_epi64(mul32(v, m.lo), 32));
    return _mm512_add_epi64(mul32(vHi, m.hi), _mm512_srli_epi64(t, 32));
}

/** Canonical v mod q for v < min(2^62, q * 2^32). */
inline __m512i
barrettReduce(__m512i v, const Split32 &m, __m512i qv)
{
    const __m512i hi = barrettHi(v, m);
    __m512i r = _mm512_sub_epi64(v, mul32(hi, qv));
    r = csub(r, qv);
    return csub(r, qv);
}

inline bool
narrow(u64 q)
{
    return q < kSimdNarrowModulusBound;
}

// --- Kernels -----------------------------------------------------------

void
addModVec(u64 *a, const u64 *b, std::size_t n, u64 q)
{
    const __m512i qv = set1(q);
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m512i x = _mm512_loadu_si512(a + i);
        const __m512i y = _mm512_loadu_si512(b + i);
        _mm512_storeu_si512(a + i, csub(_mm512_add_epi64(x, y), qv));
    }
    ref::addModVec(a + i, b + i, n - i, q);
}

void
subModVec(u64 *a, const u64 *b, std::size_t n, u64 q)
{
    const __m512i qv = set1(q);
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m512i x = _mm512_loadu_si512(a + i);
        const __m512i y = _mm512_loadu_si512(b + i);
        const __mmask8 borrow = _mm512_cmplt_epu64_mask(x, y);
        __m512i r = _mm512_sub_epi64(x, y);
        r = _mm512_mask_add_epi64(r, borrow, r, qv);
        _mm512_storeu_si512(a + i, r);
    }
    ref::subModVec(a + i, b + i, n - i, q);
}

void
mulModVec(u64 *a, const u64 *b, std::size_t n, u64 q)
{
    if (!narrow(q))
        return ref::mulModVec(a, b, n, q);
    const Split32 m(static_cast<u64>((u128{1} << 64) / q));
    const __m512i qv = set1(q);
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m512i x = _mm512_loadu_si512(a + i);
        const __m512i y = _mm512_loadu_si512(b + i);
        _mm512_storeu_si512(a + i,
                            barrettReduce(mul32(x, y), m, qv));
    }
    ref::mulModVec(a + i, b + i, n - i, q);
}

void
mulAddModVec(u64 *acc, const u64 *a, const u64 *b, std::size_t n, u64 q)
{
    if (!narrow(q))
        return ref::mulAddModVec(acc, a, b, n, q);
    const Split32 m(static_cast<u64>((u128{1} << 64) / q));
    const __m512i qv = set1(q);
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m512i x = _mm512_loadu_si512(a + i);
        const __m512i y = _mm512_loadu_si512(b + i);
        const __m512i s = _mm512_loadu_si512(acc + i);
        const __m512i r = barrettReduce(mul32(x, y), m, qv);
        _mm512_storeu_si512(acc + i,
                            csub(_mm512_add_epi64(s, r), qv));
    }
    ref::mulAddModVec(acc + i, a + i, b + i, n - i, q);
}

void
negateVec(u64 *a, std::size_t n, u64 q)
{
    const __m512i qv = set1(q), zero = _mm512_setzero_si512();
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m512i x = _mm512_loadu_si512(a + i);
        const __mmask8 nz = _mm512_cmpneq_epu64_mask(x, zero);
        _mm512_storeu_si512(a + i,
                            _mm512_maskz_sub_epi64(nz, qv, x));
    }
    ref::negateVec(a + i, n - i, q);
}

void
mulModShoupVec(u64 *y, const u64 *x, std::size_t n, u64 w, u64 wPrec,
               u64 q)
{
    if (!narrow(q))
        return ref::mulModShoupVec(y, x, n, w, wPrec, q);
    const Split32 wp(wPrec);
    const __m512i wv = set1(w), qv = set1(q);
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m512i xv = _mm512_loadu_si512(x + i);
        _mm512_storeu_si512(y + i,
                            csub(shoupMulLazy(xv, wv, wp, qv), qv));
    }
    ref::mulModShoupVec(y + i, x + i, n - i, w, wPrec, q);
}

void
subMulShoupVec(u64 *dst, const u64 *hi, const u64 *lo, std::size_t n,
               u64 w, u64 wPrec, u64 q)
{
    if (!narrow(q))
        return ref::subMulShoupVec(dst, hi, lo, n, w, wPrec, q);
    const Split32 wp(wPrec);
    const __m512i wv = set1(w), qv = set1(q);
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m512i h = _mm512_loadu_si512(hi + i);
        const __m512i l = _mm512_loadu_si512(lo + i);
        const __mmask8 borrow = _mm512_cmplt_epu64_mask(h, l);
        __m512i d = _mm512_sub_epi64(h, l);
        d = _mm512_mask_add_epi64(d, borrow, d, qv);
        _mm512_storeu_si512(dst + i,
                            csub(shoupMulLazy(d, wv, wp, qv), qv));
    }
    ref::subMulShoupVec(dst + i, hi + i, lo + i, n - i, w, wPrec, q);
}

void
baseconvMacVec(u64 *y, const u64 *const *xs, const u64 *cs,
               std::size_t ls, std::size_t n, u64 q, u64 x_bound)
{
    if (!narrow(q) || x_bound > (u64{1} << 32) || n < 8)
        return ref::baseconvMacVec(y, xs, cs, ls, n, q, x_bound);

    const u64 M = static_cast<u64>((u128{1} << 64) / q);
    const Split32 m(M);
    const __m512i qv = set1(q);
    const std::size_t chunk =
        static_cast<std::size_t>((u64{1} << 32) / q);

    std::size_t k = 0;
    for (; k + 8 <= n; k += 8) {
        __m512i acc = _mm512_setzero_si512();
        std::size_t since_flush = 0;
        for (std::size_t i = 0; i < ls; ++i) {
            const __m512i x = _mm512_loadu_si512(xs[i] + k);
            const __m512i hi = mulHi64Narrow(x, m);
            __m512i t = _mm512_sub_epi64(x, mul32(hi, qv));
            t = csub(t, qv); // [0, q)
            acc = _mm512_add_epi64(acc, mul32(t, set1(cs[i])));
            if (++since_flush >= chunk && i + 1 < ls) {
                acc = barrettReduce(acc, m, qv);
                since_flush = 0;
            }
        }
        _mm512_storeu_si512(y + k, barrettReduce(acc, m, qv));
    }
    for (; k < n; ++k) {
        u128 acc = 0;
        for (std::size_t i = 0; i < ls; ++i)
            acc += (u128)(xs[i][k] % q) * cs[i];
        y[k] = static_cast<u64>(acc % q);
    }
}

void
gatherVec(u64 *dst, const u64 *src, const std::uint32_t *idx,
          std::size_t n)
{
    std::size_t j = 0;
    for (; j + 8 <= n; j += 8) {
        const __m256i iv =
            _mm256_loadu_si256(reinterpret_cast<const __m256i *>(idx + j));
        const __m512i g = _mm512_i32gather_epi64(iv, src, 8);
        _mm512_storeu_si512(dst + j, g);
    }
    ref::gatherVec(dst + j, src, idx + j, n - j);
}

void
nttFwdButterflyVec(u64 *x, u64 *y, std::size_t t, u64 w, u64 wPrec,
                   u64 q)
{
    if (!narrow(q))
        return ref::nttFwdButterflyVec(x, y, t, w, wPrec, q);
    const Split32 wp(wPrec);
    const __m512i wv = set1(w), qv = set1(q), two_q = set1(2 * q);
    std::size_t j = 0;
    for (; j + 8 <= t; j += 8) {
        __m512i xv = _mm512_loadu_si512(x + j);
        const __m512i yv = _mm512_loadu_si512(y + j);
        xv = csub(xv, two_q);                           // [0, 2q)
        const __m512i v = shoupMulLazy(yv, wv, wp, qv); // [0, 2q)
        _mm512_storeu_si512(x + j, _mm512_add_epi64(xv, v));
        _mm512_storeu_si512(
            y + j, _mm512_sub_epi64(_mm512_add_epi64(xv, two_q), v));
    }
    ref::nttFwdButterflyVec(x + j, y + j, t - j, w, wPrec, q);
}

void
nttInvButterflyVec(u64 *x, u64 *y, std::size_t t, u64 w, u64 wPrec,
                   u64 q)
{
    if (!narrow(q))
        return ref::nttInvButterflyVec(x, y, t, w, wPrec, q);
    const Split32 wp(wPrec);
    const __m512i wv = set1(w), qv = set1(q), two_q = set1(2 * q);
    std::size_t j = 0;
    for (; j + 8 <= t; j += 8) {
        const __m512i xv = _mm512_loadu_si512(x + j);
        const __m512i yv = _mm512_loadu_si512(y + j);
        const __m512i s = csub(_mm512_add_epi64(xv, yv), two_q);
        const __m512i u =
            _mm512_sub_epi64(_mm512_add_epi64(xv, two_q), yv);
        _mm512_storeu_si512(x + j, s);
        _mm512_storeu_si512(y + j, shoupMulLazy(u, wv, wp, qv));
    }
    ref::nttInvButterflyVec(x + j, y + j, t - j, w, wPrec, q);
}

void
nttCorrectVec(u64 *a, std::size_t n, u64 q)
{
    if (!narrow(q))
        return ref::nttCorrectVec(a, n, q);
    const __m512i qv = set1(q), two_q = set1(2 * q);
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        __m512i x = _mm512_loadu_si512(a + i);
        x = csub(x, two_q);
        x = csub(x, qv);
        _mm512_storeu_si512(a + i, x);
    }
    ref::nttCorrectVec(a + i, n - i, q);
}

void
nttScaleInvVec(u64 *a, std::size_t n, u64 w, u64 wPrec, u64 q)
{
    if (!narrow(q))
        return ref::nttScaleInvVec(a, n, w, wPrec, q);
    const Split32 wp(wPrec);
    const __m512i wv = set1(w), qv = set1(q);
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m512i x = _mm512_loadu_si512(a + i);
        _mm512_storeu_si512(a + i,
                            csub(shoupMulLazy(x, wv, wp, qv), qv));
    }
    ref::nttScaleInvVec(a + i, n - i, w, wPrec, q);
}

// --- Fused pipeline kernels (DESIGN.md §5e) ----------------------------

/** Vector-splatted RescaleConsts; built once per kernel call. Also
 *  requires narrow(ql) so xs = xl + half stays below 2^32. */
struct RescaleVec
{
    Split32 nInvPrec, qlInvPrec, mq;
    __m512i nInvW, qlInvW, qlv, halfv, halfModQ, qv;

    RescaleVec(const RescaleConsts &rc, u64 q)
        : nInvPrec(rc.nInvPrec), qlInvPrec(rc.qlInvPrec),
          mq(static_cast<u64>((u128{1} << 64) / q)), nInvW(set1(rc.nInvW)),
          qlInvW(set1(rc.qlInvW)), qlv(set1(rc.ql)), halfv(set1(rc.half)),
          halfModQ(set1(rc.half % q)), qv(set1(q))
    {
    }
};

/** rescaleCorrectScalar on 8 lanes; a < 2q, xl < ql, both narrow. */
inline __m512i
rescaleCorrect(__m512i a, __m512i xl, const RescaleVec &c)
{
    // v = fold_q(mulLazy(a, nInv)); exact: a < 2q < 2^31.
    const __m512i v = csub(shoupMulLazy(a, c.nInvW, c.nInvPrec, c.qv),
                           c.qv);
    // xs = addMod(xl, half, ql).
    const __m512i xs = csub(_mm512_add_epi64(xl, c.halfv), c.qlv);
    // xs mod q: two-product Barrett, quotient off by at most 1 for
    // xs < 2^32 -> one conditional subtract (as in baseconvMacVec).
    const __m512i hi = mulHi64Narrow(xs, c.mq);
    __m512i t = _mm512_sub_epi64(xs, mul32(hi, c.qv));
    t = csub(t, c.qv);
    // xm = subMod(xs mod q, half mod q, q).
    __mmask8 borrow = _mm512_cmplt_epu64_mask(t, c.halfModQ);
    __m512i xm = _mm512_sub_epi64(t, c.halfModQ);
    xm = _mm512_mask_add_epi64(xm, borrow, xm, c.qv);
    // d = subMod(v, xm, q).
    borrow = _mm512_cmplt_epu64_mask(v, xm);
    __m512i d = _mm512_sub_epi64(v, xm);
    d = _mm512_mask_add_epi64(d, borrow, d, c.qv);
    // Canonical Shoup multiply by ql^-1.
    return csub(shoupMulLazy(d, c.qlInvW, c.qlInvPrec, c.qv), c.qv);
}

void
nttInvScaleButterflyVec(u64 *x, u64 *y, std::size_t t, u64 w, u64 wPrec,
                        u64 nw, u64 nwPrec, u64 q)
{
    if (!narrow(q))
        return ref::nttInvScaleButterflyVec(x, y, t, w, wPrec, nw,
                                            nwPrec, q);
    const Split32 wp(wPrec), nwp(nwPrec);
    const __m512i wv = set1(w), nwv = set1(nw), qv = set1(q);
    const __m512i two_q = set1(2 * q);
    std::size_t j = 0;
    for (; j + 8 <= t; j += 8) {
        const __m512i xv = _mm512_loadu_si512(x + j);
        const __m512i yv = _mm512_loadu_si512(y + j);
        const __m512i s = csub(_mm512_add_epi64(xv, yv), two_q);
        const __m512i u =
            _mm512_sub_epi64(_mm512_add_epi64(xv, two_q), yv); // (0,4q)
        const __m512i mv = shoupMulLazy(u, wv, wp, qv);        // [0,2q)
        _mm512_storeu_si512(
            x + j, csub(shoupMulLazy(s, nwv, nwp, qv), qv));
        _mm512_storeu_si512(
            y + j, csub(shoupMulLazy(mv, nwv, nwp, qv), qv));
    }
    ref::nttInvScaleButterflyVec(x + j, y + j, t - j, w, wPrec, nw,
                                 nwPrec, q);
}

void
rescaleEpilogueVec(u64 *a, const u64 *xl, std::size_t n,
                   const RescaleConsts *rc, u64 q)
{
    if (!narrow(q) || !narrow(rc->ql))
        return ref::rescaleEpilogueVec(a, xl, n, rc, q);
    const RescaleVec c(*rc, q);
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m512i av = _mm512_loadu_si512(a + i);
        const __m512i xv = _mm512_loadu_si512(xl + i);
        _mm512_storeu_si512(a + i, rescaleCorrect(av, xv, c));
    }
    ref::rescaleEpilogueVec(a + i, xl + i, n - i, rc, q);
}

void
rescaleNttFwdButterflyVec(u64 *x, u64 *y, const u64 *xlx, const u64 *xly,
                          std::size_t t, const RescaleConsts *rc, u64 w,
                          u64 wPrec, u64 q)
{
    if (!narrow(q) || !narrow(rc->ql))
        return ref::rescaleNttFwdButterflyVec(x, y, xlx, xly, t, rc, w,
                                              wPrec, q);
    const RescaleVec c(*rc, q);
    const Split32 wp(wPrec);
    const __m512i wv = set1(w), qv = set1(q), two_q = set1(2 * q);
    std::size_t j = 0;
    for (; j + 8 <= t; j += 8) {
        const __m512i xv = _mm512_loadu_si512(x + j);
        const __m512i yv = _mm512_loadu_si512(y + j);
        const __m512i lx = _mm512_loadu_si512(xlx + j);
        const __m512i ly = _mm512_loadu_si512(xly + j);
        const __m512i cx = rescaleCorrect(xv, lx, c);   // [0, q)
        const __m512i cy = rescaleCorrect(yv, ly, c);   // [0, q)
        const __m512i v = shoupMulLazy(cy, wv, wp, qv); // [0, 2q)
        _mm512_storeu_si512(x + j, _mm512_add_epi64(cx, v));
        _mm512_storeu_si512(
            y + j, _mm512_sub_epi64(_mm512_add_epi64(cx, two_q), v));
    }
    ref::rescaleNttFwdButterflyVec(x + j, y + j, xlx + j, xly + j, t - j,
                                   rc, w, wPrec, q);
}

void
nttCorrectSubMulShoupVec(u64 *dst, const u64 *acc, const u64 *x,
                         std::size_t n, u64 w, u64 wPrec, u64 q)
{
    if (!narrow(q))
        return ref::nttCorrectSubMulShoupVec(dst, acc, x, n, w, wPrec, q);
    const Split32 wp(wPrec);
    const __m512i wv = set1(w), qv = set1(q), two_q = set1(2 * q);
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        __m512i c = _mm512_loadu_si512(x + i);
        c = csub(c, two_q);
        c = csub(c, qv); // canonical
        const __m512i av = _mm512_loadu_si512(acc + i);
        const __mmask8 borrow = _mm512_cmplt_epu64_mask(av, c);
        __m512i d = _mm512_sub_epi64(av, c);
        d = _mm512_mask_add_epi64(d, borrow, d, qv);
        _mm512_storeu_si512(dst + i,
                            csub(shoupMulLazy(d, wv, wp, qv), qv));
    }
    ref::nttCorrectSubMulShoupVec(dst + i, acc + i, x + i, n - i, w,
                                  wPrec, q);
}

} // namespace

const KernelTable *
avx512Table()
{
    static const KernelTable table = {
        SimdBackend::Avx512,
        "avx512",
        &addModVec,
        &subModVec,
        &mulModVec,
        &mulAddModVec,
        &negateVec,
        &mulModShoupVec,
        &subMulShoupVec,
        &baseconvMacVec,
        &gatherVec,
        &nttFwdButterflyVec,
        &nttInvButterflyVec,
        &nttCorrectVec,
        &nttScaleInvVec,
        &nttInvScaleButterflyVec,
        &rescaleEpilogueVec,
        &rescaleNttFwdButterflyVec,
        &nttCorrectSubMulShoupVec,
    };
    return &table;
}

} // namespace simd
} // namespace cl

#else // !__AVX512F__

namespace cl {
namespace simd {

const KernelTable *
avx512Table()
{
    return nullptr;
}

} // namespace simd
} // namespace cl

#endif

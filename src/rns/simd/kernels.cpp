/** Runtime backend selection: CPUID probe + CL_SIMD override. */

#include "rns/simd/kernels.h"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <mutex>

#include "util/common.h"

namespace cl {

namespace simd {

// One per backend translation unit; null when the backend was not
// compiled in (non-x86 host or compiler without the -m flags).
const KernelTable *scalarTable();
const KernelTable *avx2Table();
const KernelTable *avx512Table();

} // namespace simd

namespace {

bool
cpuSupports(SimdBackend b)
{
    switch (b) {
    case SimdBackend::Scalar:
        return true;
#if defined(__x86_64__) || defined(__i386__)
    case SimdBackend::Avx2:
        return __builtin_cpu_supports("avx2");
    case SimdBackend::Avx512:
        return __builtin_cpu_supports("avx512f");
#else
    case SimdBackend::Avx2:
    case SimdBackend::Avx512:
        return false;
#endif
    }
    return false;
}

const KernelTable *
compiledTable(SimdBackend b)
{
    switch (b) {
    case SimdBackend::Scalar:
        return simd::scalarTable();
    case SimdBackend::Avx2:
        return simd::avx2Table();
    case SimdBackend::Avx512:
        return simd::avx512Table();
    }
    return nullptr;
}

/** Parse CL_SIMD; returns true and sets @p out on a recognized name. */
bool
parseBackendName(const char *s, SimdBackend &out)
{
    if (std::strcmp(s, "scalar") == 0)
        out = SimdBackend::Scalar;
    else if (std::strcmp(s, "avx2") == 0)
        out = SimdBackend::Avx2;
    else if (std::strcmp(s, "avx512") == 0)
        out = SimdBackend::Avx512;
    else
        return false;
    return true;
}

const KernelTable *
resolveDefault()
{
    if (const char *env = std::getenv("CL_SIMD")) {
        SimdBackend req;
        if (!parseBackendName(env, req)) {
            warn(std::string("ignoring malformed CL_SIMD='") + env +
                 "' (want scalar|avx2|avx512)");
        } else if (const KernelTable *t = kernelTableFor(req)) {
            return t;
        } else {
            warn(std::string("CL_SIMD=") + env +
                 " unavailable on this host; using scalar kernels");
            return simd::scalarTable();
        }
    }
    for (SimdBackend b : {SimdBackend::Avx512, SimdBackend::Avx2}) {
        if (const KernelTable *t = kernelTableFor(b))
            return t;
    }
    return simd::scalarTable();
}

std::atomic<const KernelTable *> g_active{nullptr};

} // namespace

const KernelTable &
kernels()
{
    const KernelTable *t = g_active.load(std::memory_order_acquire);
    if (!t) {
        static std::once_flag once;
        std::call_once(once, [] {
            const KernelTable *expected = nullptr;
            // Keep a backend installed by an early setSimdBackend call.
            g_active.compare_exchange_strong(expected, resolveDefault(),
                                             std::memory_order_release,
                                             std::memory_order_relaxed);
        });
        t = g_active.load(std::memory_order_acquire);
    }
    return *t;
}

SimdBackend
activeSimdBackend()
{
    return kernels().id;
}

const KernelTable *
kernelTableFor(SimdBackend backend)
{
    if (!cpuSupports(backend))
        return nullptr;
    return compiledTable(backend);
}

bool
setSimdBackend(SimdBackend backend)
{
    const KernelTable *t = kernelTableFor(backend);
    if (!t)
        return false;
    g_active.store(t, std::memory_order_release);
    return true;
}

namespace {

// -1 = unresolved, 0 = composed, 1 = fused. Resolved lazily from
// CL_FUSE so tests that set the env before first library use see it.
std::atomic<int> g_fuse{-1};

} // namespace

bool
fusionEnabled()
{
    int v = g_fuse.load(std::memory_order_acquire);
    if (v < 0) {
        int resolved = 1;
        if (const char *env = std::getenv("CL_FUSE")) {
            if (std::strcmp(env, "0") == 0)
                resolved = 0;
            else if (std::strcmp(env, "1") != 0)
                warn(std::string("ignoring malformed CL_FUSE='") + env +
                     "' (want 0|1); fused pipelines stay on");
        }
        // Keep a value installed by an early setFusionEnabled call.
        g_fuse.compare_exchange_strong(v, resolved,
                                       std::memory_order_release,
                                       std::memory_order_acquire);
        if (v < 0)
            v = resolved;
    }
    return v != 0;
}

void
setFusionEnabled(bool enabled)
{
    g_fuse.store(enabled ? 1 : 0, std::memory_order_release);
}

namespace {

// ~0 = unresolved; resolved lazily from CL_FUSE_TILE (bytes).
std::atomic<u64> g_fuse_tile{~u64{0}};

} // namespace

u64
fusionTileMinBytes()
{
    u64 v = g_fuse_tile.load(std::memory_order_acquire);
    if (v == ~u64{0}) {
        u64 resolved = u64{1} << 20;
        if (const char *env = std::getenv("CL_FUSE_TILE")) {
            char *end = nullptr;
            const unsigned long long parsed =
                std::strtoull(env, &end, 10);
            if (end != env && *end == '\0' && parsed < ~u64{0})
                resolved = parsed;
            else
                warn(std::string("ignoring malformed CL_FUSE_TILE='") +
                     env + "' (want a byte count); floor stays " +
                     std::to_string(resolved));
        }
        // Keep a value installed by an early setFusionTileMinBytes.
        g_fuse_tile.compare_exchange_strong(v, resolved,
                                            std::memory_order_release,
                                            std::memory_order_acquire);
        if (v == ~u64{0})
            v = resolved;
    }
    return v;
}

void
setFusionTileMinBytes(u64 bytes)
{
    CL_ASSERT(bytes < ~u64{0}, "tile floor reserved sentinel");
    g_fuse_tile.store(bytes, std::memory_order_release);
}

const char *
simdBackendName(SimdBackend backend)
{
    switch (backend) {
    case SimdBackend::Scalar:
        return "scalar";
    case SimdBackend::Avx2:
        return "avx2";
    case SimdBackend::Avx512:
        return "avx512";
    }
    return "?";
}

} // namespace cl

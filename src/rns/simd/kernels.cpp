/** Runtime backend selection: CPUID probe + CL_SIMD override. */

#include "rns/simd/kernels.h"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <mutex>

#include "util/common.h"

namespace cl {

namespace simd {

// One per backend translation unit; null when the backend was not
// compiled in (non-x86 host or compiler without the -m flags).
const KernelTable *scalarTable();
const KernelTable *avx2Table();
const KernelTable *avx512Table();

} // namespace simd

namespace {

bool
cpuSupports(SimdBackend b)
{
    switch (b) {
    case SimdBackend::Scalar:
        return true;
#if defined(__x86_64__) || defined(__i386__)
    case SimdBackend::Avx2:
        return __builtin_cpu_supports("avx2");
    case SimdBackend::Avx512:
        return __builtin_cpu_supports("avx512f");
#else
    case SimdBackend::Avx2:
    case SimdBackend::Avx512:
        return false;
#endif
    }
    return false;
}

const KernelTable *
compiledTable(SimdBackend b)
{
    switch (b) {
    case SimdBackend::Scalar:
        return simd::scalarTable();
    case SimdBackend::Avx2:
        return simd::avx2Table();
    case SimdBackend::Avx512:
        return simd::avx512Table();
    }
    return nullptr;
}

/** Parse CL_SIMD; returns true and sets @p out on a recognized name. */
bool
parseBackendName(const char *s, SimdBackend &out)
{
    if (std::strcmp(s, "scalar") == 0)
        out = SimdBackend::Scalar;
    else if (std::strcmp(s, "avx2") == 0)
        out = SimdBackend::Avx2;
    else if (std::strcmp(s, "avx512") == 0)
        out = SimdBackend::Avx512;
    else
        return false;
    return true;
}

const KernelTable *
resolveDefault()
{
    if (const char *env = std::getenv("CL_SIMD")) {
        SimdBackend req;
        if (!parseBackendName(env, req)) {
            warn(std::string("ignoring malformed CL_SIMD='") + env +
                 "' (want scalar|avx2|avx512)");
        } else if (const KernelTable *t = kernelTableFor(req)) {
            return t;
        } else {
            warn(std::string("CL_SIMD=") + env +
                 " unavailable on this host; using scalar kernels");
            return simd::scalarTable();
        }
    }
    for (SimdBackend b : {SimdBackend::Avx512, SimdBackend::Avx2}) {
        if (const KernelTable *t = kernelTableFor(b))
            return t;
    }
    return simd::scalarTable();
}

std::atomic<const KernelTable *> g_active{nullptr};

} // namespace

const KernelTable &
kernels()
{
    const KernelTable *t = g_active.load(std::memory_order_acquire);
    if (!t) {
        static std::once_flag once;
        std::call_once(once, [] {
            const KernelTable *expected = nullptr;
            // Keep a backend installed by an early setSimdBackend call.
            g_active.compare_exchange_strong(expected, resolveDefault(),
                                             std::memory_order_release,
                                             std::memory_order_relaxed);
        });
        t = g_active.load(std::memory_order_acquire);
    }
    return *t;
}

SimdBackend
activeSimdBackend()
{
    return kernels().id;
}

const KernelTable *
kernelTableFor(SimdBackend backend)
{
    if (!cpuSupports(backend))
        return nullptr;
    return compiledTable(backend);
}

bool
setSimdBackend(SimdBackend backend)
{
    const KernelTable *t = kernelTableFor(backend);
    if (!t)
        return false;
    g_active.store(t, std::memory_order_release);
    return true;
}

const char *
simdBackendName(SimdBackend backend)
{
    switch (backend) {
    case SimdBackend::Scalar:
        return "scalar";
    case SimdBackend::Avx2:
        return "avx2";
    case SimdBackend::Avx512:
        return "avx512";
    }
    return "?";
}

} // namespace cl

#include "chain.h"

namespace cl {

RnsChain::RnsChain(std::size_t n, std::vector<u64> moduli)
    : n_(n), moduli_(std::move(moduli))
{
    CL_ASSERT(isPowerOfTwo(n_), "N must be a power of two");
    CL_ASSERT(!moduli_.empty(), "empty modulus chain");
    ntt_.reserve(moduli_.size());
    for (u64 q : moduli_) {
        CL_ASSERT((q - 1) % (2 * n_) == 0, "modulus ", q,
                  " not NTT-friendly for N=", n_);
        ntt_.push_back(std::make_unique<NttTables>(n_, q));
    }
}

const AutomorphismMap &
RnsChain::automorphism(std::size_t k) const
{
    std::lock_guard<std::mutex> lk(autosMutex_);
    auto it = autos_.find(k);
    if (it == autos_.end()) {
        it = autos_
                 .emplace(k, std::make_unique<AutomorphismMap>(n_, k,
                                                               *ntt_[0]))
                 .first;
    }
    return *it->second;
}

} // namespace cl

/**
 * @file
 * Fast RNS base conversion — changeRNSBase() of Listing 1, the
 * operation that dominates boosted keyswitching (Table 1) and that
 * CraterLake's CRB functional unit accelerates (Sec 5.1).
 *
 * Given x represented in a source basis {q_i}, the conversion
 * computes, for every destination modulus p_j:
 *
 *     y_j = sum_i [ x_i * (Q/q_i)^{-1} mod q_i ] * (Q/q_i)  mod p_j
 *
 * This is the standard "approximate" (HPS/BEHZ) conversion: the
 * result may differ from the exact CRT value by a small multiple of
 * Q (at most L·Q), which boosted keyswitching absorbs into the noise
 * budget. The inner loop is exactly the multiply-accumulate structure
 * of Listing 1's changeRNSBase.
 *
 * Both the per-source scaling pass and the per-destination MAC loops
 * are independent across towers and fan out over the ThreadPool, the
 * software counterpart of the CRB unit's spatial unrolling.
 */

#ifndef CL_RNS_BASECONV_H
#define CL_RNS_BASECONV_H

#include <cstdint>
#include <span>
#include <vector>

#include "rns/chain.h"

namespace cl {

/** Precomputed converter from one modulus-index set to another. */
class BaseConverter
{
  public:
    /** Read-only view of one residue polynomial (N coefficients). */
    using ResidueView = std::span<const u64>;

    /**
     * @param chain Shared modulus chain.
     * @param src Indices of the source basis within the chain.
     * @param dst Indices of the destination basis within the chain.
     */
    BaseConverter(const RnsChain &chain, std::vector<unsigned> src,
                  std::vector<unsigned> dst);

    const std::vector<unsigned> &src() const { return src_; }
    const std::vector<unsigned> &dst() const { return dst_; }

    /**
     * Convert @p in (|src| residue views of length N, coefficient
     * domain) into @p out (|dst| residue vectors of length N).
     */
    void convert(const std::vector<ResidueView> &in,
                 std::vector<std::vector<u64>> &out) const;

    /** Convenience overload for owned residue vectors. */
    void convert(const std::vector<std::vector<u64>> &in,
                 std::vector<std::vector<u64>> &out) const;

    /**
     * Convert and also return the scaled source residues
     * x_i * qHatInv_i mod q_i (needed when the output keeps the
     * source basis alongside the extension, as keyswitch mod-up does).
     */
    void convertKeepScaled(const std::vector<ResidueView> &in,
                           std::vector<std::vector<u64>> &scaled,
                           std::vector<std::vector<u64>> &out) const;

    /** Scalar multiply count per coefficient (for cost cross-checks):
     *  |src| scaling multiplies + |src|*|dst| MAC multiplies. */
    std::size_t multipliesPerCoeff() const
    {
        return src_.size() + src_.size() * dst_.size();
    }

  private:
    const RnsChain &chain_;
    std::vector<unsigned> src_;
    std::vector<unsigned> dst_;
    std::vector<ShoupMul> qHatInv_;       // per src, mod q_src
    std::vector<std::vector<u64>> qHat_;  // [src][dst]: Q/q_src mod p_dst
    std::vector<std::vector<u64>> qHatT_; // [dst][src]: transposed rows
                                          // for the MAC kernel
    u64 srcMax_ = 0; // exclusive bound on source residues (largest q_i)
};

} // namespace cl

#endif // CL_RNS_BASECONV_H

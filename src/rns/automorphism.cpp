#include "automorphism.h"

#include <unordered_map>

#include "rns/simd/kernels.h"
#include "util/instrument.h"

namespace cl {

std::vector<std::uint32_t>
nttSlotExponents(const NttTables &tables)
{
    const std::size_t n = tables.n();
    const u64 q = tables.q();
    const u64 psi = tables.psi();

    // Discrete-log table: psi^t -> t for t in [0, 2N).
    std::unordered_map<u64, std::uint32_t> dlog;
    dlog.reserve(2 * n);
    u64 acc = 1;
    for (std::size_t t = 0; t < 2 * n; ++t) {
        dlog.emplace(acc, static_cast<std::uint32_t>(t));
        acc = mulMod(acc, psi, q);
    }

    // NTT of the monomial x: slot j = psi^{e_j}.
    std::vector<u64> mono(n, 0);
    mono[1] = 1;
    tables.forward(mono.data());

    std::vector<std::uint32_t> exps(n);
    for (std::size_t j = 0; j < n; ++j) {
        auto it = dlog.find(mono[j]);
        CL_ASSERT(it != dlog.end(), "NTT slot value not a power of psi");
        exps[j] = it->second;
        CL_ASSERT(exps[j] % 2 == 1, "slot exponent must be odd");
    }
    return exps;
}

AutomorphismMap::AutomorphismMap(std::size_t n, std::size_t k,
                                 const NttTables &tables)
    : n_(n), k_(k)
{
    CL_ASSERT(k % 2 == 1 && k < 2 * n, "bad automorphism exponent k=", k);
    CL_ASSERT(tables.n() == n);

    // Coefficient domain: x^i -> x^{ik mod 2N}; exponents >= N wrap
    // with a sign flip because x^N = -1.
    coeffDst_.resize(n);
    coeffNeg_.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
        const std::size_t e = (i * k) % (2 * n);
        coeffDst_[i] = static_cast<std::uint32_t>(e % n);
        coeffNeg_[i] = e >= n ? 1 : 0;
    }

    // NTT domain: output slot j evaluates f(x^k) at psi^{e_j}, which
    // equals f evaluated at psi^{e_j * k}; find the slot holding that
    // evaluation point.
    const auto exps = nttSlotExponents(tables);
    std::unordered_map<std::uint32_t, std::uint32_t> slot_of_exp;
    slot_of_exp.reserve(n);
    for (std::size_t j = 0; j < n; ++j)
        slot_of_exp.emplace(exps[j], static_cast<std::uint32_t>(j));

    nttSrc_.resize(n);
    for (std::size_t j = 0; j < n; ++j) {
        const std::uint32_t e =
            static_cast<std::uint32_t>((static_cast<std::size_t>(exps[j]) *
                                        k) % (2 * n));
        auto it = slot_of_exp.find(e);
        CL_ASSERT(it != slot_of_exp.end(), "automorphism image not a slot");
        nttSrc_[j] = it->second;
    }
}

void
AutomorphismMap::applyCoeff(const u64 *in, u64 *out, u64 q) const
{
    countAutomorphisms(1);
    countMemPass(1, u64{16} * n_);
    for (std::size_t i = 0; i < n_; ++i) {
        const u64 v = in[i];
        out[coeffDst_[i]] = coeffNeg_[i] ? (v == 0 ? 0 : q - v) : v;
    }
}

void
AutomorphismMap::applyNtt(const u64 *in, u64 *out) const
{
    countAutomorphisms(1);
    countMemPass(1, u64{16} * n_);
    kernels().gatherVec(out, in, nttSrc_.data(), n_);
}

} // namespace cl

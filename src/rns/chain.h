/**
 * @file
 * RnsChain: the ordered list of RNS moduli for a parameter set, with
 * shared NTT tables and cached automorphism maps.
 *
 * A CKKS instance with multiplicative budget L and keyswitching digit
 * size alpha uses moduli [q_0 .. q_{L-1}, p_0 .. p_{alpha-1}]: the
 * data moduli followed by the special (extension) moduli used by
 * boosted keyswitching (Sec 3). Polynomials reference subsets of this
 * chain by index.
 */

#ifndef CL_RNS_CHAIN_H
#define CL_RNS_CHAIN_H

#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "rns/automorphism.h"
#include "rns/ntt.h"

namespace cl {

class RnsChain
{
  public:
    /**
     * @param n Ring degree.
     * @param moduli Full modulus list (data moduli then special
     *        moduli); all must be NTT-friendly for degree n.
     */
    RnsChain(std::size_t n, std::vector<u64> moduli);

    std::size_t n() const { return n_; }
    std::size_t size() const { return moduli_.size(); }
    u64 modulus(std::size_t i) const { return moduli_[i]; }
    const std::vector<u64> &moduli() const { return moduli_; }

    const NttTables &ntt(std::size_t i) const { return *ntt_[i]; }

    /** Cached automorphism map for exponent k (lazily built;
     *  thread-safe so evaluators may run on concurrent sessions). */
    const AutomorphismMap &automorphism(std::size_t k) const;

  private:
    std::size_t n_;
    std::vector<u64> moduli_;
    std::vector<std::unique_ptr<NttTables>> ntt_;
    mutable std::mutex autosMutex_;
    mutable std::map<std::size_t, std::unique_ptr<AutomorphismMap>> autos_;
};

} // namespace cl

#endif // CL_RNS_CHAIN_H

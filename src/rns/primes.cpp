#include "primes.h"

namespace cl {

bool
isPrime(u64 q)
{
    if (q < 2)
        return false;
    for (u64 p : {2ULL, 3ULL, 5ULL, 7ULL, 11ULL, 13ULL, 17ULL, 19ULL,
                  23ULL, 29ULL, 31ULL, 37ULL}) {
        if (q % p == 0)
            return q == p;
    }
    // Deterministic Miller-Rabin bases for q < 2^64.
    u64 d = q - 1;
    unsigned r = 0;
    while ((d & 1) == 0) {
        d >>= 1;
        ++r;
    }
    for (u64 a : {2ULL, 3ULL, 5ULL, 7ULL, 11ULL, 13ULL, 17ULL, 19ULL,
                  23ULL, 29ULL, 31ULL, 37ULL}) {
        u64 x = powMod(a % q, d, q);
        if (x == 1 || x == q - 1)
            continue;
        bool witness = true;
        for (unsigned i = 1; i < r; ++i) {
            x = mulMod(x, x, q);
            if (x == q - 1) {
                witness = false;
                break;
            }
        }
        if (witness)
            return false;
    }
    return true;
}

std::vector<u64>
generateNttPrimes(unsigned bits, std::size_t n, std::size_t count)
{
    CL_ASSERT(bits >= 10 && bits <= 62, "bits=", bits);
    CL_ASSERT(isPowerOfTwo(n), "N must be a power of two, got ", n);
    const u64 step = 2 * static_cast<u64>(n);
    const u64 hi = 1ULL << bits;
    const u64 lo = 1ULL << (bits - 1);

    std::vector<u64> primes;
    // Largest candidate ≡ 1 mod 2N below 2^bits.
    u64 q = ((hi - 2) / step) * step + 1;
    for (; q > lo && primes.size() < count; q -= step) {
        if (isPrime(q))
            primes.push_back(q);
    }
    if (primes.size() < count) {
        CL_FATAL("only ", primes.size(), " NTT-friendly ", bits,
                 "-bit primes exist for N=", n, ", need ", count);
    }
    return primes;
}

std::size_t
countNttPrimes(unsigned bits, std::size_t n)
{
    const u64 step = 2 * static_cast<u64>(n);
    const u64 hi = 1ULL << bits;
    const u64 lo = 1ULL << (bits - 1);
    std::size_t cnt = 0;
    u64 q = ((hi - 2) / step) * step + 1;
    for (; q > lo; q -= step) {
        if (isPrime(q))
            ++cnt;
    }
    return cnt;
}

u64
findPrimitiveRoot(u64 q, std::size_t two_n)
{
    CL_ASSERT((q - 1) % two_n == 0, "q=", q, " not 1 mod ", two_n);
    const u64 cofactor = (q - 1) / two_n;
    for (u64 g = 2; g < q; ++g) {
        u64 cand = powMod(g, cofactor, q);
        // cand has order dividing 2N; it is primitive iff cand^(N) != 1.
        if (powMod(cand, two_n / 2, q) != 1)
            return cand;
    }
    CL_PANIC("no primitive root found for q=", q);
}

} // namespace cl

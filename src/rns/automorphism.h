/**
 * @file
 * Automorphism index maps for the negacyclic ring Z_q[x]/(x^N + 1).
 *
 * A homomorphic rotation applies the ring automorphism x -> x^k
 * (k odd), which induces a cyclic rotation of the packed plaintext
 * slots (Sec 2.2). In the coefficient domain the automorphism is a
 * signed permutation; in the NTT domain it is a pure permutation of
 * slots. CraterLake's automorphism FU performs the permutation with
 * two transposes (Sec 5.3); the functional library just needs the
 * index maps, which this class precomputes.
 */

#ifndef CL_RNS_AUTOMORPHISM_H
#define CL_RNS_AUTOMORPHISM_H

#include <cstdint>
#include <vector>

#include "rns/ntt.h"

namespace cl {

/** Signed-permutation tables for one automorphism x -> x^k. */
class AutomorphismMap
{
  public:
    /**
     * @param n Ring degree.
     * @param k Odd automorphism exponent, 0 < k < 2n.
     * @param tables NTT tables used to derive the slot-order
     *        permutation (the slot ordering convention is shared by
     *        all moduli, so any modulus' tables work).
     */
    AutomorphismMap(std::size_t n, std::size_t k, const NttTables &tables);

    std::size_t k() const { return k_; }

    /** Apply in coefficient domain: out[dst] = ±in[src]. */
    void applyCoeff(const u64 *in, u64 *out, u64 q) const;

    /** Apply in NTT (slot) domain: out[j] = in[perm[j]]. */
    void applyNtt(const u64 *in, u64 *out) const;

  private:
    std::size_t n_;
    std::size_t k_;
    std::vector<std::uint32_t> coeffDst_; // i -> destination index
    std::vector<std::uint8_t> coeffNeg_;  // i -> 1 if negated
    std::vector<std::uint32_t> nttSrc_;   // j -> source slot
};

/**
 * Derive the slot-exponent table of an NTT ordering convention:
 * exponents e[j] (odd, mod 2N) such that forward-NTT output slot j
 * holds the evaluation of the input polynomial at psi^{e[j]}. This is
 * computed empirically (NTT of the monomial x plus discrete logs), so
 * it stays correct for any butterfly ordering.
 */
std::vector<std::uint32_t> nttSlotExponents(const NttTables &tables);

} // namespace cl

#endif // CL_RNS_AUTOMORPHISM_H

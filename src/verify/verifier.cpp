#include "verifier.h"

#include <algorithm>
#include <array>
#include <map>
#include <sstream>

#include "sim/simulator.h"

namespace cl {

const char *
violationKindName(ViolationKind k)
{
    switch (k) {
      case ViolationKind::StructureMismatch:
        return "structure-mismatch";
      case ViolationKind::DurationMismatch:
        return "duration-mismatch";
      case ViolationKind::IssueOrder:
        return "issue-order";
      case ViolationKind::DependencyOrder:
        return "dependency-order";
      case ViolationKind::ReloadBeforeStore:
        return "reload-before-store";
      case ViolationKind::FuOversubscribed:
        return "fu-oversubscribed";
      case ViolationKind::FuAbsent:
        return "fu-absent";
      case ViolationKind::RfPortsOversubscribed:
        return "rf-ports-oversubscribed";
      case ViolationKind::NetworkOverlap:
        return "network-overlap";
      case ViolationKind::NetworkBandwidth:
        return "network-bandwidth";
      case ViolationKind::MemChannelOverlap:
        return "mem-channel-overlap";
      case ViolationKind::MemBandwidth:
        return "mem-bandwidth";
      case ViolationKind::RfCapacityExceeded:
        return "rf-capacity-exceeded";
      case ViolationKind::ResidencyConservation:
        return "residency-conservation";
      case ViolationKind::ConsumerOrder:
        return "consumer-order";
      case ViolationKind::AccountingMismatch:
        return "accounting-mismatch";
      default:
        CL_PANIC("bad violation kind");
    }
}

std::size_t
VerifyReport::total() const
{
    std::size_t n = 0;
    for (std::size_t c : kindCounts)
        n += c;
    return n;
}

std::string
VerifyReport::summary(std::size_t max_messages) const
{
    std::ostringstream os;
    if (ok()) {
        os << "OK: " << instsChecked << " instructions, "
           << eventsChecked << " residency events, 0 violations";
        return os.str();
    }
    os << total() << " violation(s):";
    for (std::size_t k = 0; k < numViolationKinds; ++k) {
        if (kindCounts[k] > 0)
            os << " "
               << violationKindName(static_cast<ViolationKind>(k))
               << "=" << kindCounts[k];
    }
    os << "\n";
    for (std::size_t i = 0;
         i < violations.size() && i < max_messages; ++i) {
        const Violation &v = violations[i];
        os << "  [" << violationKindName(v.kind) << "]";
        if (v.instId >= 0)
            os << " inst " << v.instId;
        if (v.valueId >= 0)
            os << " value " << v.valueId;
        os << ": " << v.message << "\n";
    }
    if (total() > max_messages)
        os << "  ... " << (total() - max_messages)
           << " more\n";
    return os.str();
}

namespace {

/** Collects violations. Counts are exact per kind; stored messages
 *  are capped per kind so one prolific defect (say, a leaked word of
 *  capacity tripping every later admit) cannot drown the others out
 *  of the report — or mask them from has()/count(). */
class Collector
{
  public:
    explicit Collector(VerifyReport &report) : report_(report) {}

    template <typename... Args>
    void
    add(ViolationKind kind, std::int64_t inst, std::int64_t value,
        Args &&...args)
    {
        constexpr std::size_t per_kind_cap = 100;
        if (++report_.kindCounts[static_cast<std::size_t>(kind)] >
            per_kind_cap)
            return;
        std::ostringstream os;
        (os << ... << args);
        report_.violations.push_back({kind, inst, value, os.str()});
    }

  private:
    VerifyReport &report_;
};

/** Max simultaneous occupancy of half-open intervals [start, end). */
struct Sweep
{
    // (time, delta); releases sort before acquisitions at equal time,
    // matching the pools' semantics (a unit freed at T is usable by
    // an instruction starting at T).
    std::vector<std::pair<std::uint64_t, std::int64_t>> edges;

    void
    occupy(std::uint64_t start, std::uint64_t end, std::int64_t k)
    {
        if (end <= start || k <= 0)
            return;
        edges.emplace_back(start, k);
        edges.emplace_back(end, -k);
    }

    /** Runs the sweep; calls @p on_over(time, level) at the first
     *  point the running level exceeds @p limit. */
    template <typename Fn>
    void
    run(std::int64_t limit, Fn &&on_over)
    {
        std::sort(edges.begin(), edges.end(),
                  [](const auto &a, const auto &b) {
                      if (a.first != b.first)
                          return a.first < b.first;
                      return a.second < b.second;
                  });
        std::int64_t level = 0;
        for (const auto &[t, d] : edges) {
            level += d;
            if (d > 0 && level > limit) {
                on_over(t, level);
                return; // one report per resource, not per cycle
            }
        }
    }
};

} // namespace

VerifyReport
ScheduleVerifier::verify(const std::vector<InstTrace> &insts,
                         const std::vector<ResidencyEvent> &events,
                         const SimStats &stats) const
{
    VerifyReport report;
    Collector add(report);
    report.instsChecked = insts.size();
    report.eventsChecked = events.size();

    const double mem_bw = cfg_.memWordsPerCycle();
    const double net_bw = cfg_.networkWordsPerCycle();
    const double net_scale =
        cfg_.network == NetworkType::Crossbar ? 2.4 : 1.0;
    // Same expression as the simulator's: any divergence is a finding.
    auto mem_window = [&](std::uint64_t words) {
        return static_cast<std::uint64_t>(words / mem_bw) + 1;
    };

    // --- 0. Structure: the trace must cover the program 1:1. -------
    if (insts.size() != prog_.insts.size()) {
        add.add(ViolationKind::StructureMismatch, -1, -1, "trace has ",
                insts.size(), " instructions, program has ",
                prog_.insts.size());
        return report; // per-inst checks below would be misaligned
    }
    for (std::size_t i = 0; i < insts.size(); ++i) {
        const InstTrace &t = insts[i];
        const PolyInst &pi = prog_.insts[i];
        if (t.id != pi.id) {
            add.add(ViolationKind::StructureMismatch, pi.id, -1,
                    "trace record ", i, " carries inst id ", t.id);
        }
        if (t.finish != t.start + pi.duration) {
            add.add(ViolationKind::DurationMismatch, pi.id, -1,
                    "finish ", t.finish, " != start ", t.start,
                    " + duration ", pi.duration);
        }
        if (t.rfPorts != pi.rfPorts) {
            add.add(ViolationKind::StructureMismatch, pi.id, -1,
                    "trace rf ports ", t.rfPorts, " != program's ",
                    pi.rfPorts);
        }
        if (t.networkWords != pi.networkWords) {
            add.add(ViolationKind::StructureMismatch, pi.id, -1,
                    "trace network words ", t.networkWords,
                    " != program's ", pi.networkWords);
        }
        std::array<std::int64_t, numFuTypes> traced{}, wanted{};
        for (const FuUse &u : t.fus)
            traced[static_cast<unsigned>(u.type)] += u.units;
        for (const FuUse &u : pi.fus)
            wanted[static_cast<unsigned>(u.type)] += u.units;
        for (unsigned ty = 0; ty < numFuTypes; ++ty) {
            if (traced[ty] != wanted[ty]) {
                add.add(ViolationKind::StructureMismatch, pi.id, -1,
                        "acquired ", traced[ty], " ",
                        fuTypeName(static_cast<FuType>(ty)),
                        " units, program needs ", wanted[ty]);
            }
        }
    }

    // --- 1a. Issue order is monotone (in-order machine). -----------
    for (std::size_t i = 1; i < insts.size(); ++i) {
        if (insts[i].start < insts[i - 1].start) {
            add.add(ViolationKind::IssueOrder, insts[i].id, -1,
                    "start ", insts[i].start,
                    " precedes predecessor's start ",
                    insts[i - 1].start);
        }
    }

    // --- 1b. Dependency ordering via a last-writer replay. ---------
    // values[].producer only records the final writer, so in-place
    // rewrites need a positional replay to pair each read with the
    // writer actually visible at that point in the program.
    std::vector<std::int64_t> last_writer(prog_.values.size(), -1);
    for (std::size_t i = 0; i < insts.size(); ++i) {
        const PolyInst &pi = prog_.insts[i];
        for (std::uint32_t vid : pi.reads) {
            const std::int64_t p = last_writer[vid];
            if (p < 0)
                continue; // live-in (input / hint / plaintext)
            if (insts[i].start < insts[p].finish) {
                add.add(ViolationKind::DependencyOrder, pi.id, vid,
                        "starts at ", insts[i].start,
                        " before producer inst ", p, " finishes at ",
                        insts[p].finish);
            }
        }
        for (std::uint32_t vid : pi.writes)
            last_writer[vid] = static_cast<std::int64_t>(i);
    }

    // --- 1c. Value links must match the instruction stream. --------
    // The simulator's Belady RF manager walks values[].consumers as
    // its future-use oracle, trusting that the list is sorted in
    // issue order with one entry per read occurrence, and that
    // values[].producer names the last writer. Rebuild both from the
    // instructions and flag any drift (a scheduler that reorders
    // without rebuilding the links leaves the oracle lying).
    {
        std::vector<std::vector<std::uint32_t>> want_cons(
            prog_.values.size());
        std::vector<std::int64_t> want_prod(prog_.values.size(), -1);
        for (const PolyInst &pi : prog_.insts) {
            for (std::uint32_t vid : pi.reads)
                want_cons[vid].push_back(pi.id);
            for (std::uint32_t vid : pi.writes)
                want_prod[vid] = pi.id;
        }
        for (std::size_t vid = 0; vid < prog_.values.size(); ++vid) {
            const Value &v = prog_.values[vid];
            if (v.consumers != want_cons[vid]) {
                add.add(ViolationKind::ConsumerOrder, -1,
                        static_cast<std::int64_t>(vid),
                        "consumer list (", v.consumers.size(),
                        " entries) does not match the ",
                        want_cons[vid].size(),
                        " reads in instruction order");
            }
            if (v.producer != want_prod[vid]) {
                add.add(ViolationKind::ConsumerOrder, -1,
                        static_cast<std::int64_t>(vid), "producer ",
                        v.producer, " is not the last writer ",
                        want_prod[vid]);
            }
        }
    }

    // --- 2a. FU pools and register-file ports (interval sweeps). ---
    std::array<Sweep, numFuTypes> fu_sweep;
    Sweep port_sweep;
    for (std::size_t i = 0; i < insts.size(); ++i) {
        const InstTrace &t = insts[i];
        std::array<std::int64_t, numFuTypes> need{};
        for (const FuUse &u : t.fus) {
            const unsigned ty = static_cast<unsigned>(u.type);
            if (cfg_.fuCount(u.type) == 0) {
                add.add(ViolationKind::FuAbsent, t.id, -1, "uses ",
                        fuTypeName(u.type),
                        " which this configuration lacks");
            }
            need[ty] += u.units;
        }
        for (unsigned ty = 0; ty < numFuTypes; ++ty)
            fu_sweep[ty].occupy(t.start, t.finish, need[ty]);
        port_sweep.occupy(t.start, t.finish, t.rfPorts);
    }
    for (unsigned ty = 0; ty < numFuTypes; ++ty) {
        const FuType ft = static_cast<FuType>(ty);
        fu_sweep[ty].run(cfg_.fuCount(ft), [&](std::uint64_t at,
                                               std::int64_t level) {
            add.add(ViolationKind::FuOversubscribed, -1, -1, level,
                    " ", fuTypeName(ft), " units in flight at cycle ",
                    at, ", pool has ", cfg_.fuCount(ft));
        });
    }
    port_sweep.run(cfg_.rfPorts,
                   [&](std::uint64_t at, std::int64_t level) {
                       add.add(ViolationKind::RfPortsOversubscribed, -1,
                               -1, level, " RF ports in flight at cycle ",
                               at, ", budget is ", cfg_.rfPorts);
                   });

    // --- 2b. Network: serialized, bandwidth-sized windows. ---------
    std::uint64_t net_words_total = 0;
    const InstTrace *prev_net = nullptr;
    for (std::size_t i = 0; i < insts.size(); ++i) {
        const InstTrace &t = insts[i];
        if (t.networkWords == 0)
            continue;
        net_words_total += static_cast<std::uint64_t>(
            t.networkWords * net_scale);
        const std::uint64_t net_cycles =
            static_cast<std::uint64_t>(t.networkWords * net_scale /
                                       net_bw) + 1;
        const std::uint64_t expect =
            t.start + std::max(net_cycles, prog_.insts[i].duration);
        if (t.netBusyUntil != expect) {
            add.add(ViolationKind::NetworkBandwidth, t.id, -1,
                    "network window ends at ", t.netBusyUntil,
                    ", bandwidth/duration require ", expect);
        }
        if (prev_net && t.start < prev_net->netBusyUntil) {
            add.add(ViolationKind::NetworkOverlap, t.id, -1,
                    "transfer starts at ", t.start, " while inst ",
                    prev_net->id, "'s transfer runs until ",
                    prev_net->netBusyUntil);
        }
        prev_net = &t;
    }

    // --- 2c. Memory channel + register-file resident-set replay. ---
    const std::uint64_t capacity = cfg_.rfWords();
    std::vector<char> resident(prog_.values.size(), 0);
    std::vector<char> stored(prog_.values.size(), 0);
    std::uint64_t used = 0, mem_busy = 0, prev_mem_end = 0;
    std::uint64_t ksh_w = 0, input_w = 0, plain_w = 0, iload_w = 0,
                  istore_w = 0, out_w = 0;
    auto admit = [&](const ResidencyEvent &e, const char *what) {
        if (resident[e.valueId]) {
            add.add(ViolationKind::ResidencyConservation, e.instId,
                    e.valueId, what, " of a value already resident");
            return;
        }
        resident[e.valueId] = 1;
        used += e.words;
        if (used > capacity) {
            add.add(ViolationKind::RfCapacityExceeded, e.instId,
                    e.valueId, "resident set reaches ", used,
                    " words, capacity is ", capacity);
        }
    };
    auto release = [&](const ResidencyEvent &e, const char *what) {
        if (!resident[e.valueId]) {
            add.add(ViolationKind::ResidencyConservation, e.instId,
                    e.valueId, what, " of a value not resident");
            return;
        }
        resident[e.valueId] = 0;
        used -= e.words;
    };
    for (const ResidencyEvent &e : events) {
        if (e.valueId >= prog_.values.size()) {
            add.add(ViolationKind::StructureMismatch, e.instId,
                    e.valueId, "event names a value the program lacks");
            continue;
        }
        const Value &v = prog_.values[e.valueId];
        if (e.words != v.words) {
            add.add(ViolationKind::ResidencyConservation, e.instId,
                    e.valueId, "event moves ", e.words,
                    " words, the value is ", v.words);
        }
        const bool transfer = e.action == ResidencyAction::Load ||
                              e.action == ResidencyAction::Stream ||
                              e.action == ResidencyAction::Spill ||
                              e.action == ResidencyAction::StreamStore ||
                              e.action == ResidencyAction::StoreOut;
        if (transfer) {
            if (e.memStart < prev_mem_end) {
                add.add(ViolationKind::MemChannelOverlap, e.instId,
                        e.valueId, residencyActionName(e.action),
                        " transfer starts at ", e.memStart,
                        " before the previous one ends at ",
                        prev_mem_end);
            }
            const std::uint64_t want = mem_window(e.words);
            if (e.memEnd - e.memStart != want) {
                add.add(ViolationKind::MemBandwidth, e.instId,
                        e.valueId, "transfer window of ",
                        e.memEnd - e.memStart, " cycles for ", e.words,
                        " words, bandwidth requires ", want);
            }
            prev_mem_end = std::max(prev_mem_end, e.memEnd);
            mem_busy += e.memEnd - e.memStart;
        } else if (e.memEnd != e.memStart) {
            add.add(ViolationKind::MemBandwidth, e.instId, e.valueId,
                    residencyActionName(e.action),
                    " is bookkeeping-only but occupies the channel");
        }
        switch (e.action) {
          case ResidencyAction::Load:
          case ResidencyAction::Stream:
            // A value produced on-chip exists off-chip only after a
            // writeback; loading it earlier reads garbage.
            if (v.kind == ValueKind::Intermediate &&
                !stored[e.valueId]) {
                add.add(ViolationKind::ReloadBeforeStore, e.instId,
                        e.valueId,
                        "reloaded with no prior spill/stream-store");
            }
            if (e.action == ResidencyAction::Load) {
                admit(e, "load");
            } else if (resident[e.valueId]) {
                add.add(ViolationKind::ResidencyConservation, e.instId,
                        e.valueId, "streamed while resident");
            }
            switch (v.kind) {
              case ValueKind::KeySwitchHint:
                ksh_w += e.words;
                break;
              case ValueKind::Input:
                input_w += e.words;
                break;
              case ValueKind::Plaintext:
                plain_w += e.words;
                break;
              default:
                iload_w += e.words;
                break;
            }
            break;
          case ResidencyAction::Alloc:
            admit(e, "alloc");
            break;
          case ResidencyAction::Spill:
            release(e, "spill");
            stored[e.valueId] = 1;
            istore_w += e.words;
            break;
          case ResidencyAction::StreamStore:
            if (resident[e.valueId]) {
                add.add(ViolationKind::ResidencyConservation, e.instId,
                        e.valueId, "stream-stored while resident");
            }
            stored[e.valueId] = 1;
            istore_w += e.words;
            break;
          case ResidencyAction::StoreOut:
            if (v.kind != ValueKind::Output) {
                add.add(ViolationKind::ResidencyConservation, e.instId,
                        e.valueId, "host store of a non-output value");
            }
            out_w += e.words;
            break;
          case ResidencyAction::Evict:
            release(e, "evict");
            break;
          case ResidencyAction::DeadFree:
            release(e, "dead-free");
            break;
        }
    }

    // --- 3. Conservation against every SimStats counter. -----------
    auto expect_eq = [&](std::uint64_t got, std::uint64_t want,
                         const char *what) {
        if (got != want) {
            add.add(ViolationKind::AccountingMismatch, -1, -1, what,
                    ": stats say ", got, ", the schedule sums to ",
                    want);
        }
    };
    expect_eq(stats.kshLoadWords, ksh_w, "kshLoadWords");
    expect_eq(stats.inputLoadWords, input_w, "inputLoadWords");
    expect_eq(stats.plainLoadWords, plain_w, "plainLoadWords");
    expect_eq(stats.intermLoadWords, iload_w, "intermLoadWords");
    expect_eq(stats.intermStoreWords, istore_w, "intermStoreWords");
    expect_eq(stats.outputStoreWords, out_w, "outputStoreWords");
    expect_eq(stats.memBusyCycles, mem_busy, "memBusyCycles");
    expect_eq(stats.networkWords, net_words_total, "networkWords");

    std::array<std::uint64_t, numFuTypes> busy{}, lane_ops{};
    std::uint64_t rf_words = 0, last = 0;
    for (std::size_t i = 0; i < insts.size(); ++i) {
        for (const FuUse &u : insts[i].fus) {
            busy[static_cast<unsigned>(u.type)] +=
                u.units * (insts[i].finish - insts[i].start);
            lane_ops[static_cast<unsigned>(u.type)] += u.laneOps;
        }
        rf_words += prog_.insts[i].rfWords;
        last = std::max(last, insts[i].finish);
    }
    for (const ResidencyEvent &e : events)
        last = std::max(last, e.memEnd);
    for (unsigned ty = 0; ty < numFuTypes; ++ty) {
        expect_eq(stats.fuBusy[ty], busy[ty],
                  (std::string("fuBusy[") +
                   fuTypeName(static_cast<FuType>(ty)) + "]")
                      .c_str());
        expect_eq(stats.fuLaneOps[ty], lane_ops[ty],
                  (std::string("fuLaneOps[") +
                   fuTypeName(static_cast<FuType>(ty)) + "]")
                      .c_str());
    }
    expect_eq(stats.rfAccessWords, rf_words, "rfAccessWords");
    expect_eq(stats.cycles, last, "cycles");

    return report;
}

VerifyReport
verifySchedule(const ChipConfig &cfg, const Program &prog,
               SimStats *stats_out)
{
    Simulator sim(cfg);
    TraceRecorder rec;
    const SimStats stats = sim.run(prog, &rec);
    if (stats_out)
        *stats_out = stats;
    ScheduleVerifier verifier(cfg, prog);
    return verifier.verify(rec.insts(), rec.residency(), stats);
}

} // namespace cl

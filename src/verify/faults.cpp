#include "faults.h"

#include <algorithm>

namespace cl {

const char *
faultClassName(FaultClass f)
{
    switch (f) {
      case FaultClass::SwapDependency:
        return "swap-dependency";
      case FaultClass::InflateDuration:
        return "inflate-duration";
      case FaultClass::DropSpill:
        return "drop-spill";
      case FaultClass::OversubscribePool:
        return "oversubscribe-pool";
      case FaultClass::OversubscribePorts:
        return "oversubscribe-ports";
      case FaultClass::OverlapNetwork:
        return "overlap-network";
      case FaultClass::DropEviction:
        return "drop-eviction";
      default:
        CL_PANIC("bad fault class");
    }
}

ViolationKind
expectedViolation(FaultClass f)
{
    switch (f) {
      case FaultClass::SwapDependency:
        return ViolationKind::DependencyOrder;
      case FaultClass::InflateDuration:
        return ViolationKind::DurationMismatch;
      case FaultClass::DropSpill:
        return ViolationKind::AccountingMismatch;
      case FaultClass::OversubscribePool:
        return ViolationKind::FuOversubscribed;
      case FaultClass::OversubscribePorts:
        return ViolationKind::RfPortsOversubscribed;
      case FaultClass::OverlapNetwork:
        return ViolationKind::NetworkOverlap;
      case FaultClass::DropEviction:
        return ViolationKind::ResidencyConservation;
      default:
        CL_PANIC("bad fault class");
    }
}

bool
injectFault(FaultClass f, const Program &prog, const ChipConfig &cfg,
            std::vector<InstTrace> &insts,
            std::vector<ResidencyEvent> &events, SimStats &stats)
{
    (void)stats; // mutations perturb the schedule, never the stats:
                 // the divergence is exactly what conservation checks.
    switch (f) {
      case FaultClass::SwapDependency: {
        // Hoist the first dependent consumer to one cycle before its
        // producer's finish.
        std::vector<std::int64_t> last_writer(prog.values.size(), -1);
        for (std::size_t i = 0; i < prog.insts.size(); ++i) {
            for (std::uint32_t vid : prog.insts[i].reads) {
                const std::int64_t p = last_writer[vid];
                if (p >= 0 && insts[p].finish >= 1) {
                    insts[i].start = insts[p].finish - 1;
                    insts[i].finish =
                        insts[i].start + prog.insts[i].duration;
                    return true;
                }
            }
            for (std::uint32_t vid : prog.insts[i].writes)
                last_writer[vid] = static_cast<std::int64_t>(i);
        }
        return false;
      }
      case FaultClass::InflateDuration: {
        if (insts.empty())
            return false;
        insts.front().finish += 997;
        return true;
      }
      case FaultClass::DropSpill: {
        for (auto it = events.begin(); it != events.end(); ++it) {
            if (it->action == ResidencyAction::Spill) {
                events.erase(it);
                return true;
            }
        }
        return false;
      }
      case FaultClass::OversubscribePool: {
        for (InstTrace &t : insts) {
            for (FuUse &u : t.fus) {
                if (cfg.fuCount(u.type) > 0) {
                    u.units = cfg.fuCount(u.type) + 1;
                    return true;
                }
            }
        }
        return false;
      }
      case FaultClass::OversubscribePorts: {
        if (insts.empty())
            return false;
        insts.front().rfPorts = cfg.rfPorts + 1;
        return true;
      }
      case FaultClass::OverlapNetwork: {
        // Stretch one transfer into the next one's window.
        InstTrace *prev = nullptr;
        for (InstTrace &t : insts) {
            if (t.networkWords == 0)
                continue;
            if (prev) {
                prev->netBusyUntil =
                    std::max(prev->netBusyUntil, t.start + 1);
                return true;
            }
            prev = &t;
        }
        return false;
      }
      case FaultClass::DropEviction: {
        // Delete an eviction whose value is later reloaded, so the
        // replayed resident set sees a second copy admitted.
        for (auto it = events.begin(); it != events.end(); ++it) {
            if (it->action != ResidencyAction::Evict)
                continue;
            const std::uint32_t vid = it->valueId;
            const bool reloaded = std::any_of(
                it + 1, events.end(), [&](const ResidencyEvent &e) {
                    return e.valueId == vid &&
                           (e.action == ResidencyAction::Load ||
                            e.action == ResidencyAction::Stream);
                });
            if (reloaded) {
                events.erase(it);
                return true;
            }
        }
        return false;
      }
    }
    return false;
}

} // namespace cl

/**
 * @file
 * Static schedule verification (DESIGN.md §7's "schedule legality").
 *
 * The cycle simulator both *assigns* times to a statically scheduled
 * Program and *accounts* for the resources those assignments consume.
 * Every result in the evaluation (Tables 3/4/5, Figs 9-11) rests on
 * those assignments being legal. ScheduleVerifier is an independent
 * pass that replays an emitted schedule — the instruction trace plus
 * the residency-event stream — against the Program and ChipConfig,
 * with its own bookkeeping (interval sweeps, a resident-set replay,
 * per-category traffic sums), and reports every violation of:
 *
 *  1. **Dependency ordering** — no instruction starts before the last
 *     writer of any operand has finished, including operands that
 *     were spilled or stream-stored and later reloaded; issue order
 *     is monotone; reloads of on-chip-produced values are preceded by
 *     a writeback.
 *  2. **Resource legality** — at every cycle: per-class FU occupancy
 *     within the configured pool size, register-file ports within the
 *     port budget, the inter-group network serialized with windows no
 *     shorter than its bandwidth allows, memory-channel transfers
 *     serialized and sized exactly to the HBM bandwidth, and the
 *     replayed register-file resident set within capacity with every
 *     load/alloc/spill/evict/free conserving it.
 *  3. **Future-use coherence** — the per-value producer/consumer
 *     links (the information the Belady register-file manager keys
 *     its eviction decisions on) must match the instruction stream
 *     exactly, in issue order: a scheduler that reorders
 *     instructions without rebuilding the links would silently feed
 *     the RF manager stale futures.
 *  4. **Traffic conservation** — per-value transfer words summed from
 *     the event stream must equal every SimStats counter (the six
 *     Fig 10a categories, memory busy cycles, per-FU busy unit-cycles
 *     and lane-ops, network words, RF access words, and the final
 *     cycle count).
 *
 * None of the simulator's state is reused: the verifier sees only the
 * Program, the ChipConfig, and the recorded schedule, so a
 * bookkeeping bug in the simulator cannot hide itself.
 */

#ifndef CL_VERIFY_VERIFIER_H
#define CL_VERIFY_VERIFIER_H

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/trace.h"

namespace cl {

/** Defect classes a schedule can exhibit. */
enum class ViolationKind
{
    StructureMismatch,    ///< Trace does not cover the program 1:1.
    DurationMismatch,     ///< finish != start + the program's duration.
    IssueOrder,           ///< Start times regress vs program order.
    DependencyOrder,      ///< Consumer starts before its producer ends.
    ReloadBeforeStore,    ///< On-chip value reloaded with no writeback.
    FuOversubscribed,     ///< Per-cycle FU units exceed the pool.
    FuAbsent,             ///< FU class the configuration lacks.
    RfPortsOversubscribed,///< Per-cycle RF ports exceed the budget.
    NetworkOverlap,       ///< Serialized network windows overlap.
    NetworkBandwidth,     ///< Network window off its bandwidth size.
    MemChannelOverlap,    ///< Memory-channel transfers overlap.
    MemBandwidth,         ///< Transfer window off its bandwidth size.
    RfCapacityExceeded,   ///< Replayed resident set exceeds capacity.
    ResidencyConservation,///< Load/spill/free inconsistent with state.
    ConsumerOrder,        ///< Value links disagree with inst order.
    AccountingMismatch,   ///< A SimStats counter != the event sum.
};

inline constexpr std::size_t numViolationKinds =
    static_cast<std::size_t>(ViolationKind::AccountingMismatch) + 1;

const char *violationKindName(ViolationKind k);

struct Violation
{
    ViolationKind kind;
    std::int64_t instId = -1;  ///< Offending instruction, -1 if n/a.
    std::int64_t valueId = -1; ///< Offending value, -1 if n/a.
    std::string message;
};

struct VerifyReport
{
    /** Stored messages, capped per kind; counts below stay exact. */
    std::vector<Violation> violations;
    std::array<std::size_t, numViolationKinds> kindCounts{};
    std::size_t instsChecked = 0;
    std::size_t eventsChecked = 0;

    std::size_t total() const;
    bool ok() const { return total() == 0; }
    bool has(ViolationKind k) const { return count(k) > 0; }
    std::size_t count(ViolationKind k) const
    {
        return kindCounts[static_cast<std::size_t>(k)];
    }

    /** Per-kind counts plus the first few messages, for CLIs/tests. */
    std::string summary(std::size_t max_messages = 8) const;
};

class ScheduleVerifier
{
  public:
    ScheduleVerifier(ChipConfig cfg, const Program &prog)
        : cfg_(std::move(cfg)), prog_(prog)
    {
    }

    /** Verify a recorded schedule against the program and config. */
    VerifyReport verify(const std::vector<InstTrace> &insts,
                        const std::vector<ResidencyEvent> &events,
                        const SimStats &stats) const;

  private:
    ChipConfig cfg_;
    const Program &prog_;
};

/**
 * Convenience wrapper: simulate @p prog under @p cfg with a
 * TraceRecorder and verify the recorded schedule. When @p stats_out
 * is non-null the run's SimStats are copied there.
 */
VerifyReport verifySchedule(const ChipConfig &cfg, const Program &prog,
                            SimStats *stats_out = nullptr);

} // namespace cl

#endif // CL_VERIFY_VERIFIER_H

/**
 * @file
 * Schedule fault injection: mutate a recorded schedule so that it
 * exhibits exactly one known defect class, then prove the verifier
 * catches it with the right diagnostic.
 *
 * This is the verifier's own test harness (a verifier that never
 * fires is indistinguishable from one that checks nothing), and it
 * documents, executably, which simulator bugs each check would have
 * caught — e.g. SwapDependency is the streamed producer→consumer
 * hazard the simulator shipped with, and OversubscribePool is its
 * same-type FuUse composition bug.
 */

#ifndef CL_VERIFY_FAULTS_H
#define CL_VERIFY_FAULTS_H

#include <array>

#include "verify/verifier.h"

namespace cl {

/** Mutation classes, each mapped to the diagnostic that must fire. */
enum class FaultClass
{
    SwapDependency,    ///< Hoist a consumer before its producer ends.
    InflateDuration,   ///< Stretch a finish past start + duration.
    DropSpill,         ///< Delete a spill writeback from the record.
    OversubscribePool, ///< Claim more FU units than the pool holds.
    OversubscribePorts,///< Claim more RF ports than the budget.
    OverlapNetwork,    ///< Stretch a transfer into its successor's.
    DropEviction,      ///< Delete an eviction: the value stays put.
};

constexpr std::array<FaultClass, 7> allFaultClasses = {
    FaultClass::SwapDependency,    FaultClass::InflateDuration,
    FaultClass::DropSpill,         FaultClass::OversubscribePool,
    FaultClass::OversubscribePorts, FaultClass::OverlapNetwork,
    FaultClass::DropEviction,
};

const char *faultClassName(FaultClass f);

/** The diagnostic the verifier must raise for each fault class. */
ViolationKind expectedViolation(FaultClass f);

/**
 * Mutate a recorded schedule in place to exhibit @p f. Returns false
 * when the schedule offers no injection site for this class (e.g. no
 * spill ever happened); the schedule is then left untouched.
 */
bool injectFault(FaultClass f, const Program &prog,
                 const ChipConfig &cfg, std::vector<InstTrace> &insts,
                 std::vector<ResidencyEvent> &events, SimStats &stats);

} // namespace cl

#endif // CL_VERIFY_FAULTS_H

/**
 * @file
 * The accelerator's instruction set and program representation.
 *
 * CraterLake executes statically scheduled vector instructions on
 * residue polynomials (Sec 4.1). The compiler lowers homomorphic
 * operations to two instruction classes:
 *
 *  - simple ops: one FU, operands in the register file;
 *  - pipeline ops: chains of FUs (vector chaining, Sec 5.4) that
 *    implement a keyswitching phase end-to-end, touching the register
 *    file only at the chain's ends (Fig 8).
 *
 * Data is tracked as Values: polynomials (or groups of polynomials)
 * with a word footprint, a storage class (input, keyswitch hint,
 * plaintext, intermediate), and producer/consumer links that the
 * memory scheduler uses for Belady eviction.
 */

#ifndef CL_ISA_PROGRAM_H
#define CL_ISA_PROGRAM_H

#include <cstdint>
#include <string>
#include <vector>

#include "util/common.h"

namespace cl {

/** Storage classes drive the traffic breakdown of Fig 10a. */
enum class ValueKind
{
    Input,        ///< Program input ciphertext (streamed from host).
    KeySwitchHint,///< KSH; the seeded half can come from KSHGen.
    Plaintext,    ///< Encoded weights/constants.
    Intermediate, ///< Produced and consumed on-chip (spills possible).
    Output        ///< Program result (streamed to host).
};

const char *valueKindName(ValueKind k);

struct Value
{
    std::uint32_t id = 0;
    ValueKind kind = ValueKind::Intermediate;
    std::uint64_t words = 0;    ///< Footprint in hardware words.
    std::int64_t producer = -1; ///< Instruction producing it (-1: live-in).
    std::vector<std::uint32_t> consumers; ///< Instruction ids, in order.
    std::string label;

    /** For KSHs: fraction resident when KSHGen regenerates the
     *  pseudo-random half on the fly (Sec 5.2). */
    bool seededHalf = false;
};

/** Functional-unit classes (Table 2). */
enum class FuType : unsigned
{
    Ntt = 0,
    Automorphism,
    Multiply,
    Add,
    Crb,
    KshGen,
    Transpose, // bookkeeping for network occupancy
    NumTypes
};

constexpr unsigned numFuTypes = static_cast<unsigned>(FuType::NumTypes);

const char *fuTypeName(FuType t);

/** Occupancy of one FU class by an instruction. */
struct FuUse
{
    FuType type;
    unsigned units = 1;        ///< FU instances held for the duration.
    std::uint64_t laneOps = 0; ///< Scalar datapath ops (for energy).
};

/**
 * One vector (macro-)instruction. The compiler computes the issue
 * occupancy `duration` from the number of residue polynomials
 * streamed and the parallelism the configuration allows; a pipeline
 * op lists every FU class it occupies (vector chaining, Fig 8).
 */
struct PolyInst
{
    std::uint32_t id = 0;
    std::string mnemonic;

    std::vector<FuUse> fus;

    std::vector<std::uint32_t> reads;  ///< Value ids read.
    std::vector<std::uint32_t> writes; ///< Value ids written.

    std::uint64_t duration = 1; ///< Issue-slot occupancy in cycles.
    std::size_t n = 0;          ///< Ring degree (vector length).

    /** Network words moved between lane groups (NTT/automorphism
     *  transposes, Sec 5.3): one transpose = N words. */
    std::uint64_t networkWords = 0;

    /** Register-file port-units occupied for the duration (reads +
     *  writes that actually touch the RF; chained intermediates
     *  don't, which is the point of Sec 5.4). */
    unsigned rfPorts = 2;

    /** Total RF words transferred (for RF energy accounting). */
    std::uint64_t rfWords = 0;
};

/** A straight-line accelerator program (FHE has no data-dependent
 *  control flow, Sec 2.1). */
struct Program
{
    std::string name;
    std::size_t n = 0; ///< Max ring degree used.
    std::vector<Value> values;
    std::vector<PolyInst> insts;

    std::uint32_t
    addValue(ValueKind kind, std::uint64_t words, std::string label = {})
    {
        Value v;
        v.id = static_cast<std::uint32_t>(values.size());
        v.kind = kind;
        v.words = words;
        v.label = std::move(label);
        values.push_back(std::move(v));
        return values.back().id;
    }

    std::uint32_t
    addInst(PolyInst inst)
    {
        inst.id = static_cast<std::uint32_t>(insts.size());
        for (auto r : inst.reads) {
            CL_ASSERT(r < values.size(), "bad read value id");
            values[r].consumers.push_back(inst.id);
        }
        for (auto w : inst.writes) {
            CL_ASSERT(w < values.size(), "bad write value id");
            values[w].producer = inst.id;
        }
        insts.push_back(std::move(inst));
        return insts.back().id;
    }

    /** Total instruction count. */
    std::size_t size() const { return insts.size(); }

    /** Sanity-check the SSA-ish structure (each value written once,
     *  reads follow the producing instruction). */
    void validate() const;
};

} // namespace cl

#endif // CL_ISA_PROGRAM_H

#include "program.h"

namespace cl {

const char *
valueKindName(ValueKind k)
{
    switch (k) {
      case ValueKind::Input:
        return "input";
      case ValueKind::KeySwitchHint:
        return "ksh";
      case ValueKind::Plaintext:
        return "plaintext";
      case ValueKind::Intermediate:
        return "intermediate";
      case ValueKind::Output:
        return "output";
      default:
        CL_PANIC("bad value kind");
    }
}

const char *
fuTypeName(FuType t)
{
    switch (t) {
      case FuType::Ntt:
        return "NTT";
      case FuType::Automorphism:
        return "Aut";
      case FuType::Multiply:
        return "Mul";
      case FuType::Add:
        return "Add";
      case FuType::Crb:
        return "CRB";
      case FuType::KshGen:
        return "KSHGen";
      case FuType::Transpose:
        return "Transpose";
      default:
        CL_PANIC("bad FU type");
    }
}

void
Program::validate() const
{
    std::vector<bool> produced(values.size(), false);
    for (const auto &v : values) {
        // Inputs, hints, and plaintexts are live-in; intermediates
        // must be produced by an instruction before use.
        if (v.producer < 0 && v.kind != ValueKind::Intermediate)
            produced[v.id] = true;
    }
    for (const auto &inst : insts) {
        for (auto r : inst.reads) {
            CL_ASSERT(produced[r], "inst ", inst.id, " (", inst.mnemonic,
                      ") reads value ", r, " before production");
        }
        for (auto w : inst.writes) {
            CL_ASSERT(!produced[w] ||
                          values[w].kind == ValueKind::Intermediate,
                      "value ", w, " written twice");
            produced[w] = true;
        }
        CL_ASSERT(inst.duration > 0, "empty instruction ", inst.id);
        CL_ASSERT(inst.n > 0 && isPowerOfTwo(inst.n), "bad N in inst ",
                  inst.id);
    }
}

} // namespace cl

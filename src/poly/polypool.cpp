#include "polypool.h"

#include <atomic>
#include <cstdlib>
#include <new>
#include <unordered_map>
#include <vector>

#include "util/common.h"

#if defined(__SANITIZE_ADDRESS__)
#define CL_POOL_UNDER_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define CL_POOL_UNDER_ASAN 1
#endif
#endif
#ifndef CL_POOL_UNDER_ASAN
#define CL_POOL_UNDER_ASAN 0
#endif

namespace cl {

namespace {

/** Blocks below this size are not worth a free-list lookup. */
constexpr std::size_t kMinPooledBytes = 1024;

std::atomic<std::uint64_t> g_allocs{0};
std::atomic<std::uint64_t> g_hits{0};
std::atomic<std::uint64_t> g_misses{0};
std::atomic<std::uint64_t> g_frees{0};
std::atomic<std::uint64_t> g_parked{0};
std::atomic<std::uint64_t> g_liveBytes{0};
std::atomic<std::uint64_t> g_cachedBytes{0};

/** -1 = read CL_POOL on first use. */
std::atomic<int> g_enabled{-1};

int
envEnabled()
{
    if (const char *env = std::getenv("CL_POOL")) {
        const std::string v(env);
        if (v == "0" || v == "off" || v == "false")
            return 0;
        if (v == "1" || v == "on" || v == "true")
            return 1;
        warn("ignoring malformed CL_POOL='" + v + "'");
    }
    return CL_POOL_UNDER_ASAN ? 0 : 1;
}

std::size_t
threadCapBytes()
{
    static const std::size_t cap = [] {
        std::size_t mb = 256;
        if (const char *env = std::getenv("CL_POOL_MB")) {
            char *end = nullptr;
            const long v = std::strtol(env, &end, 10);
            if (end != env && v >= 0)
                mb = static_cast<std::size_t>(v);
            else
                warn(std::string("ignoring malformed CL_POOL_MB='") +
                     env + "'");
        }
        return mb << 20;
    }();
    return cap;
}

/**
 * Per-thread free lists, keyed by exact byte size (PolyData buffers
 * are allocated at exact towers*N sizes, so exact keying recycles
 * every same-shape slab). Destroyed at thread exit, releasing parked
 * blocks; `t_cacheDead` keeps later frees on the same thread (static
 * destruction order) from touching the destroyed map.
 */
struct Cache
{
    std::unordered_map<std::size_t, std::vector<void *>> bins;
    std::size_t bytes = 0;

    ~Cache();
};

thread_local bool t_cacheDead = false;

Cache &
cache()
{
    thread_local Cache c;
    return c;
}

Cache::~Cache()
{
    for (auto &[size, blocks] : bins) {
        for (void *p : blocks) {
            ::operator delete(p);
            g_cachedBytes.fetch_sub(size, std::memory_order_relaxed);
        }
    }
    bins.clear();
    bytes = 0;
    t_cacheDead = true;
}

} // namespace

bool
polyPoolEnabled()
{
    int e = g_enabled.load(std::memory_order_relaxed);
    if (e < 0) {
        e = envEnabled();
        g_enabled.store(e, std::memory_order_relaxed);
    }
    return e != 0;
}

void
polyPoolSetEnabled(bool on)
{
    g_enabled.store(on ? 1 : 0, std::memory_order_relaxed);
}

PolyPoolStats
polyPoolStats()
{
    PolyPoolStats s;
    s.allocs = g_allocs.load(std::memory_order_relaxed);
    s.hits = g_hits.load(std::memory_order_relaxed);
    s.misses = g_misses.load(std::memory_order_relaxed);
    s.frees = g_frees.load(std::memory_order_relaxed);
    s.parked = g_parked.load(std::memory_order_relaxed);
    s.liveBytes = g_liveBytes.load(std::memory_order_relaxed);
    s.cachedBytes = g_cachedBytes.load(std::memory_order_relaxed);
    return s;
}

void
polyPoolResetStats()
{
    g_allocs.store(0, std::memory_order_relaxed);
    g_hits.store(0, std::memory_order_relaxed);
    g_misses.store(0, std::memory_order_relaxed);
    g_frees.store(0, std::memory_order_relaxed);
    g_parked.store(0, std::memory_order_relaxed);
    // liveBytes/cachedBytes track real state; never reset.
}

void
polyPoolTrim()
{
    if (t_cacheDead)
        return;
    Cache &c = cache();
    for (auto &[size, blocks] : c.bins) {
        for (void *p : blocks) {
            ::operator delete(p);
            g_cachedBytes.fetch_sub(size, std::memory_order_relaxed);
        }
    }
    c.bins.clear();
    c.bytes = 0;
}

void *
polyPoolAllocate(std::size_t bytes)
{
    g_allocs.fetch_add(1, std::memory_order_relaxed);
    g_liveBytes.fetch_add(bytes, std::memory_order_relaxed);
    if (polyPoolEnabled() && bytes >= kMinPooledBytes && !t_cacheDead) {
        Cache &c = cache();
        auto it = c.bins.find(bytes);
        if (it != c.bins.end() && !it->second.empty()) {
            void *p = it->second.back();
            it->second.pop_back();
            c.bytes -= bytes;
            g_hits.fetch_add(1, std::memory_order_relaxed);
            g_cachedBytes.fetch_sub(bytes, std::memory_order_relaxed);
            return p;
        }
    }
    g_misses.fetch_add(1, std::memory_order_relaxed);
    return ::operator new(bytes);
}

void
polyPoolDeallocate(void *p, std::size_t bytes) noexcept
{
    if (p == nullptr)
        return;
    g_frees.fetch_add(1, std::memory_order_relaxed);
    g_liveBytes.fetch_sub(bytes, std::memory_order_relaxed);
    if (polyPoolEnabled() && bytes >= kMinPooledBytes && !t_cacheDead &&
        cache().bytes + bytes <= threadCapBytes()) {
        Cache &c = cache();
        c.bins[bytes].push_back(p);
        c.bytes += bytes;
        g_parked.fetch_add(1, std::memory_order_relaxed);
        g_cachedBytes.fetch_add(bytes, std::memory_order_relaxed);
        return;
    }
    ::operator delete(p);
}

} // namespace cl

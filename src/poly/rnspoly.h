/**
 * @file
 * RnsPolynomial: a ciphertext polynomial in double-CRT form — a set
 * of residue polynomials (vectors of N coefficients), each modulo one
 * small prime of the chain, in either coefficient or NTT domain.
 *
 * This is the data type every CraterLake vector instruction operates
 * on: one residue polynomial is one hardware vector (Sec 4.1).
 *
 * Storage is a single flat `towers x N` allocation in tower-major
 * order (one cache-friendly slab per polynomial instead of one heap
 * block per tower); `residue(t)` hands out stride views. Tower-level
 * operations fan out across the global ThreadPool — residues are
 * independent across moduli, the same parallelism CraterLake exploits
 * spatially — and are bit-identical at any worker count.
 */

#ifndef CL_POLY_RNSPOLY_H
#define CL_POLY_RNSPOLY_H

#include <algorithm>
#include <memory>
#include <span>
#include <vector>

#include "poly/polypool.h"
#include "rns/baseconv.h"
#include "rns/chain.h"

namespace cl {

/**
 * std::allocator that default-initializes (i.e. leaves uninitialized)
 * on resize, so freshly allocated polynomials that are immediately
 * overwritten (automorphism targets, base-conversion outputs, residue
 * copies) skip the zero-fill pass over towers*N words. Storage comes
 * from the per-thread polynomial pool (polypool.h): vectors allocate
 * exact towers*N sizes, so freed slabs are recycled by shape instead
 * of round-tripping malloc on every Evaluator temporary.
 */
template <typename T>
struct UninitAllocator : std::allocator<T>
{
    template <typename U> struct rebind
    {
        using other = UninitAllocator<U>;
    };

    T *
    allocate(std::size_t n)
    {
        return static_cast<T *>(polyPoolAllocate(n * sizeof(T)));
    }

    void
    deallocate(T *p, std::size_t n) noexcept
    {
        polyPoolDeallocate(p, n * sizeof(T));
    }

    template <typename U>
    void
    construct(U *p) noexcept(
        std::is_nothrow_default_constructible_v<U>)
    {
        ::new (static_cast<void *>(p)) U;
    }

    template <typename U, typename... Args>
    void
    construct(U *p, Args &&...args)
    {
        ::new (static_cast<void *>(p)) U(std::forward<Args>(args)...);
    }
};

/** Flat coefficient buffer: towers * N words, tower-major. */
using PolyData = std::vector<u64, UninitAllocator<u64>>;

class RnsPoly
{
  public:
    /** Tag selecting the uninitialized-storage constructor. */
    struct Uninit
    {
    };

    RnsPoly() : chain_(nullptr), n_(0), ntt_(false) {}

    /** Zero polynomial over chain moduli with indices @p mod_idx. */
    RnsPoly(const RnsChain &chain, std::vector<unsigned> mod_idx,
            bool ntt_form = false);

    /** Like above but with *uninitialized* coefficients — for callers
     *  that overwrite every residue before reading. */
    RnsPoly(Uninit, const RnsChain &chain, std::vector<unsigned> mod_idx,
            bool ntt_form);

    bool valid() const { return chain_ != nullptr; }
    const RnsChain &chain() const { return *chain_; }
    std::size_t n() const { return n_; }
    std::size_t towers() const { return modIdx_.size(); }
    bool isNtt() const { return ntt_; }

    const std::vector<unsigned> &modIdx() const { return modIdx_; }
    u64 modulus(std::size_t t) const { return chain_->modulus(modIdx_[t]); }

    /** View of tower @p t (N coefficients). */
    std::span<u64>
    residue(std::size_t t)
    {
        return {data_.data() + t * n_, n_};
    }
    std::span<const u64>
    residue(std::size_t t) const
    {
        return {data_.data() + t * n_, n_};
    }

    /** Overwrite tower @p t with @p src (N coefficients). */
    void
    setResidue(std::size_t t, std::span<const u64> src)
    {
        CL_ASSERT(src.size() == n_, "residue length mismatch");
        std::copy(src.begin(), src.end(), data_.data() + t * n_);
    }

    /** The flat tower-major coefficient slab (towers * N words). */
    PolyData &data() { return data_; }
    const PolyData &data() const { return data_; }

    /** Per-tower read views, in tower order (for base conversion). */
    std::vector<std::span<const u64>> residueViews() const;

    /** Bytes this polynomial would occupy at the hardware word width. */
    std::size_t footprintWords() const { return towers() * n(); }

    // --- Domain conversion ---
    void toNtt();
    void toCoeff();

    // --- Element-wise arithmetic (same basis, same domain) ---
    RnsPoly &operator+=(const RnsPoly &other);
    RnsPoly &operator-=(const RnsPoly &other);
    /** Element-wise multiply; both operands must be in NTT form. */
    RnsPoly &operator*=(const RnsPoly &other);

    /**
     * Fused multiply-accumulate: this += a * b, element-wise, all in
     * NTT form. @p b must share this polynomial's basis exactly;
     * @p a may span a *superset* basis (a keyswitch hint over the full
     * Q ∪ P serves every level) — the matching towers are selected by
     * chain index, with no subset copy. Canonically reduced, so the
     * result is bit-identical to `t = a.subset(...); t *= b;
     * *this += t`.
     */
    RnsPoly &addMulAssign(const RnsPoly &a, const RnsPoly &b);

    void negate();

    /** Multiply every residue by a scalar (reduced per modulus). */
    void mulScalar(u64 s);

    /** Multiply residue t by a scalar specific to that modulus. */
    void mulScalarTower(std::size_t t, u64 s);

    /** Apply automorphism x -> x^k (domain-aware). */
    RnsPoly automorphism(std::size_t k) const;

    /**
     * Drop the last tower and rescale: divide by its modulus q_last,
     * rounding. Implements CKKS rescaling (Sec 2.3). Works in either
     * domain (switches internally as needed); preserves the domain.
     */
    void rescaleLastTower();

    /** Remove trailing towers without rescaling (modulus switch for
     *  plaintexts already scaled appropriately). */
    void dropTowers(std::size_t count);

    /**
     * Extract the towers whose chain indices appear in @p chain_idx
     * (all must be present, without duplicates). Preserves the domain.
     */
    RnsPoly subset(const std::vector<unsigned> &chain_idx) const;

    /** Friends produce new values. */
    friend RnsPoly operator+(RnsPoly a, const RnsPoly &b)
    {
        a += b;
        return a;
    }
    friend RnsPoly operator-(RnsPoly a, const RnsPoly &b)
    {
        a -= b;
        return a;
    }
    friend RnsPoly operator*(RnsPoly a, const RnsPoly &b)
    {
        a *= b;
        return a;
    }

  private:
    void checkCompatible(const RnsPoly &other) const;

    const RnsChain *chain_;
    std::vector<unsigned> modIdx_;
    PolyData data_; // flat towers x N, tower-major
    std::size_t n_;
    bool ntt_;
};

} // namespace cl

#endif // CL_POLY_RNSPOLY_H

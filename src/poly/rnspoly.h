/**
 * @file
 * RnsPolynomial: a ciphertext polynomial in double-CRT form — a set
 * of residue polynomials (vectors of N coefficients), each modulo one
 * small prime of the chain, in either coefficient or NTT domain.
 *
 * This is the data type every CraterLake vector instruction operates
 * on: one residue polynomial is one hardware vector (Sec 4.1).
 */

#ifndef CL_POLY_RNSPOLY_H
#define CL_POLY_RNSPOLY_H

#include <vector>

#include "rns/baseconv.h"
#include "rns/chain.h"

namespace cl {

class RnsPoly
{
  public:
    RnsPoly() : chain_(nullptr), ntt_(false) {}

    /** Zero polynomial over chain moduli with indices @p mod_idx. */
    RnsPoly(const RnsChain &chain, std::vector<unsigned> mod_idx,
            bool ntt_form = false);

    bool valid() const { return chain_ != nullptr; }
    const RnsChain &chain() const { return *chain_; }
    std::size_t n() const { return chain_->n(); }
    std::size_t towers() const { return modIdx_.size(); }
    bool isNtt() const { return ntt_; }

    const std::vector<unsigned> &modIdx() const { return modIdx_; }
    u64 modulus(std::size_t t) const { return chain_->modulus(modIdx_[t]); }

    std::vector<u64> &residue(std::size_t t) { return rns_[t]; }
    const std::vector<u64> &residue(std::size_t t) const { return rns_[t]; }

    std::vector<std::vector<u64>> &data() { return rns_; }
    const std::vector<std::vector<u64>> &data() const { return rns_; }

    /** Bytes this polynomial would occupy at the hardware word width. */
    std::size_t footprintWords() const { return towers() * n(); }

    // --- Domain conversion ---
    void toNtt();
    void toCoeff();

    // --- Element-wise arithmetic (same basis, same domain) ---
    RnsPoly &operator+=(const RnsPoly &other);
    RnsPoly &operator-=(const RnsPoly &other);
    /** Element-wise multiply; both operands must be in NTT form. */
    RnsPoly &operator*=(const RnsPoly &other);

    void negate();

    /** Multiply every residue by a scalar (reduced per modulus). */
    void mulScalar(u64 s);

    /** Multiply residue t by a scalar specific to that modulus. */
    void mulScalarTower(std::size_t t, u64 s);

    /** Apply automorphism x -> x^k (domain-aware). */
    RnsPoly automorphism(std::size_t k) const;

    /**
     * Drop the last tower and rescale: divide by its modulus q_last,
     * rounding. Implements CKKS rescaling (Sec 2.3). Works in either
     * domain (switches internally as needed); preserves the domain.
     */
    void rescaleLastTower();

    /** Remove trailing towers without rescaling (modulus switch for
     *  plaintexts already scaled appropriately). */
    void dropTowers(std::size_t count);

    /**
     * Extract the towers whose chain indices appear in @p chain_idx
     * (all must be present). Preserves the domain.
     */
    RnsPoly subset(const std::vector<unsigned> &chain_idx) const;

    /** Friends produce new values. */
    friend RnsPoly operator+(RnsPoly a, const RnsPoly &b)
    {
        a += b;
        return a;
    }
    friend RnsPoly operator-(RnsPoly a, const RnsPoly &b)
    {
        a -= b;
        return a;
    }
    friend RnsPoly operator*(RnsPoly a, const RnsPoly &b)
    {
        a *= b;
        return a;
    }

  private:
    void checkCompatible(const RnsPoly &other) const;

    const RnsChain *chain_;
    std::vector<unsigned> modIdx_;
    std::vector<std::vector<u64>> rns_;
    bool ntt_;
};

} // namespace cl

#endif // CL_POLY_RNSPOLY_H

#include "rnspoly.h"

#include "rns/simd/kernels.h"
#include "util/instrument.h"
#include "util/threadpool.h"

namespace cl {

RnsPoly::RnsPoly(const RnsChain &chain, std::vector<unsigned> mod_idx,
                 bool ntt_form)
    : chain_(&chain), modIdx_(std::move(mod_idx)), n_(chain.n()),
      ntt_(ntt_form)
{
    CL_ASSERT(!modIdx_.empty(), "polynomial needs at least one tower");
    data_.assign(modIdx_.size() * n_, 0);
}

RnsPoly::RnsPoly(Uninit, const RnsChain &chain,
                 std::vector<unsigned> mod_idx, bool ntt_form)
    : chain_(&chain), modIdx_(std::move(mod_idx)), n_(chain.n()),
      ntt_(ntt_form)
{
    CL_ASSERT(!modIdx_.empty(), "polynomial needs at least one tower");
    data_.resize(modIdx_.size() * n_); // left uninitialized
}

std::vector<std::span<const u64>>
RnsPoly::residueViews() const
{
    std::vector<std::span<const u64>> views;
    views.reserve(towers());
    for (std::size_t t = 0; t < towers(); ++t)
        views.push_back(residue(t));
    return views;
}

void
RnsPoly::checkCompatible(const RnsPoly &other) const
{
    CL_ASSERT(chain_ == other.chain_, "mixing RNS chains");
    CL_ASSERT(modIdx_ == other.modIdx_, "operand bases differ: ",
              towers(), " vs ", other.towers(), " towers");
    CL_ASSERT(ntt_ == other.ntt_, "operand domains differ");
}

void
RnsPoly::toNtt()
{
    if (ntt_)
        return;
    parallelFor(0, towers(), [&](std::size_t t) {
        chain_->ntt(modIdx_[t]).forward(data_.data() + t * n_);
    });
    ntt_ = true;
}

void
RnsPoly::toCoeff()
{
    if (!ntt_)
        return;
    parallelFor(0, towers(), [&](std::size_t t) {
        chain_->ntt(modIdx_[t]).inverse(data_.data() + t * n_);
    });
    ntt_ = false;
}

RnsPoly &
RnsPoly::operator+=(const RnsPoly &other)
{
    checkCompatible(other);
    countAdds(towers());
    countMemPass(towers(), u64{towers()} * 16 * n_);
    const KernelTable &K = kernels();
    parallelFor(
        0, towers(),
        [&](std::size_t t) {
            K.addModVec(data_.data() + t * n_,
                        other.data_.data() + t * n_, n_, modulus(t));
        },
        parallelGrain(n_));
    return *this;
}

RnsPoly &
RnsPoly::operator-=(const RnsPoly &other)
{
    checkCompatible(other);
    countAdds(towers());
    countMemPass(towers(), u64{towers()} * 16 * n_);
    const KernelTable &K = kernels();
    parallelFor(
        0, towers(),
        [&](std::size_t t) {
            K.subModVec(data_.data() + t * n_,
                        other.data_.data() + t * n_, n_, modulus(t));
        },
        parallelGrain(n_));
    return *this;
}

RnsPoly &
RnsPoly::operator*=(const RnsPoly &other)
{
    checkCompatible(other);
    CL_ASSERT(ntt_, "element-wise multiply requires NTT form");
    countMults(towers());
    countMemPass(towers(), u64{towers()} * 16 * n_);
    const KernelTable &K = kernels();
    parallelFor(
        0, towers(),
        [&](std::size_t t) {
            K.mulModVec(data_.data() + t * n_,
                        other.data_.data() + t * n_, n_, modulus(t));
        },
        parallelGrain(n_));
    return *this;
}

RnsPoly &
RnsPoly::addMulAssign(const RnsPoly &a, const RnsPoly &b)
{
    checkCompatible(b);
    CL_ASSERT(ntt_ && a.ntt_, "fused MAC requires NTT form");
    CL_ASSERT(chain_ == a.chain_, "mixing RNS chains");
    countMults(towers());
    countAdds(towers());
    countMemPass(towers(), u64{towers()} * 24 * n_);

    // Position map from our chain indices into a's towers (a may span
    // a superset basis; see subset() for the same idiom).
    constexpr std::size_t kNone = ~std::size_t{0};
    std::size_t max_idx = 0;
    for (unsigned i : a.modIdx_)
        max_idx = std::max<std::size_t>(max_idx, i);
    std::vector<std::size_t> pos(max_idx + 1, kNone);
    for (std::size_t s = 0; s < a.modIdx_.size(); ++s)
        pos[a.modIdx_[s]] = s;

    const KernelTable &K = kernels();
    parallelFor(
        0, towers(),
        [&](std::size_t t) {
            const unsigned ci = modIdx_[t];
            CL_ASSERT(ci <= max_idx && pos[ci] != kNone,
                      "addMulAssign: chain index ", ci,
                      " missing from multiplier");
            K.mulAddModVec(data_.data() + t * n_,
                           a.data_.data() + pos[ci] * n_,
                           b.data_.data() + t * n_, n_, modulus(t));
        },
        parallelGrain(n_));
    return *this;
}

void
RnsPoly::negate()
{
    countAdds(towers());
    countMemPass(towers(), u64{towers()} * 8 * n_);
    const KernelTable &K = kernels();
    parallelFor(
        0, towers(),
        [&](std::size_t t) {
            K.negateVec(data_.data() + t * n_, n_, modulus(t));
        },
        parallelGrain(n_));
}

void
RnsPoly::mulScalar(u64 s)
{
    parallelFor(
        0, towers(), [&](std::size_t t) { mulScalarTower(t, s); },
        parallelGrain(n_));
}

void
RnsPoly::mulScalarTower(std::size_t t, u64 s)
{
    countMults(1);
    countMemPass(1, u64{8} * n_);
    const u64 q = modulus(t);
    const ShoupMul m(s % q, q);
    u64 *a = data_.data() + t * n_;
    kernels().mulModShoupVec(a, a, n_, m.w, m.wPrec, q);
}

RnsPoly
RnsPoly::automorphism(std::size_t k) const
{
    RnsPoly out(Uninit{}, *chain_, modIdx_, ntt_);
    const AutomorphismMap &map = chain_->automorphism(k);
    parallelFor(
        0, towers(),
        [&](std::size_t t) {
            const u64 *src = data_.data() + t * n_;
            u64 *dst = out.data_.data() + t * n_;
            if (ntt_)
                map.applyNtt(src, dst);
            else
                map.applyCoeff(src, dst, modulus(t));
        },
        parallelGrain(n_));
    return out;
}

void
RnsPoly::rescaleLastTower()
{
    CL_ASSERT(towers() >= 2, "cannot rescale a single-tower polynomial");
    const bool was_ntt = ntt_;
    const std::size_t last = towers() - 1;
    const u64 ql = modulus(last);
    const u64 half = ql / 2;

    if (fusionEnabled()) {
        // Single-pass-per-tower pipeline (DESIGN.md §5e). One
        // correction per kept tower — a centered subtract plus a Shoup
        // multiply by q_last^-1 — exactly as the composed path, but
        // fused into the NTT boundary passes so each tower is swept
        // once per stage instead of round-tripping through separate
        // iNTT-scale / subtract / multiply / NTT-stage-1 sweeps.
        countMults(last);
        countAdds(last);
        if (was_ntt) {
            // Only the dropped tower leaves the NTT domain (canonical
            // residues for the correction); each kept tower runs
            // inverseLazy -> correction fused into the first forward
            // stage -> remaining forward stages, staying cache-resident
            // between the inverse and forward halves.
            chain_->ntt(modIdx_[last]).inverse(data_.data() + last * n_);
            const u64 *xl = data_.data() + last * n_;
            parallelFor(0, last, [&](std::size_t t) {
                const u64 qt = modulus(t);
                const ShoupMul ql_inv(invMod(ql % qt, qt), qt);
                const NttTables &ntt = chain_->ntt(modIdx_[t]);
                const RescaleConsts rc{ntt.nInv().w, ntt.nInv().wPrec,
                                       ql,           half,
                                       ql_inv.w,     ql_inv.wPrec};
                u64 *a = data_.data() + t * n_;
                ntt.inverseLazy(a);
                ntt.forwardRescale(a, xl, rc);
            });
        } else {
            const u64 *xl = data_.data() + last * n_;
            const KernelTable &K = kernels();
            countMemPass(last, u64{last} * 16 * n_);
            parallelFor(
                0, last,
                [&](std::size_t t) {
                    const u64 qt = modulus(t);
                    const ShoupMul ql_inv(invMod(ql % qt, qt), qt);
                    // Identity N^-1 pair: mulLazy(x, 1) == x for x < q,
                    // so the shared epilogue kernel applies the
                    // correction without a pending iNTT scale.
                    const ShoupMul ident(1, qt);
                    const RescaleConsts rc{ident.w, ident.wPrec,
                                           ql,      half,
                                           ql_inv.w, ql_inv.wPrec};
                    K.rescaleEpilogueVec(data_.data() + t * n_, xl, n_,
                                         &rc, qt);
                },
                parallelGrain(n_));
        }
        data_.resize(last * n_);
        modIdx_.pop_back();
        return;
    }

    toCoeff();
    const u64 *xl = data_.data() + last * n_;
    // One correction pass per kept tower: a centered subtract plus a
    // Shoup multiply by q_last^-1 (the same mult+add the lowering
    // models per remaining residue).
    countMults(last);
    countAdds(last);
    countMemPass(last, u64{last} * 16 * n_);

    parallelFor(
        0, last,
        [&](std::size_t t) {
            const u64 qt = modulus(t);
            const ShoupMul ql_inv(invMod(ql % qt, qt), qt);
            u64 *a = data_.data() + t * n_;
            for (std::size_t i = 0; i < n_; ++i) {
                // Rounded division: subtract the centered last residue,
                // then divide by q_last. Adding half before centering
                // implements round-to-nearest.
                const u64 xl_shift = addMod(xl[i], half, ql);
                const u64 xl_mod_qt = subMod(xl_shift % qt, half % qt, qt);
                a[i] = ql_inv.mul(subMod(a[i], xl_mod_qt, qt), qt);
            }
        },
        parallelGrain(n_));
    data_.resize(last * n_);
    modIdx_.pop_back();
    if (was_ntt)
        toNtt();
}

RnsPoly
RnsPoly::subset(const std::vector<unsigned> &chain_idx) const
{
    // One-pass position map over our towers (chain indices are dense
    // and small), instead of a linear rescan per requested tower.
    constexpr std::size_t kNone = ~std::size_t{0};
    std::size_t max_idx = 0;
    for (unsigned i : modIdx_)
        max_idx = std::max<std::size_t>(max_idx, i);
    std::vector<std::size_t> pos(max_idx + 1, kNone);
    for (std::size_t s = 0; s < modIdx_.size(); ++s) {
        CL_ASSERT(pos[modIdx_[s]] == kNone, "duplicate chain index ",
                  modIdx_[s], " in polynomial basis");
        pos[modIdx_[s]] = s;
    }

    RnsPoly out(Uninit{}, *chain_, chain_idx, ntt_);
    for (std::size_t t = 0; t < chain_idx.size(); ++t) {
        const unsigned ci = chain_idx[t];
        CL_ASSERT(ci <= max_idx && pos[ci] != kNone,
                  "subset: chain index ", ci, " not present");
        out.setResidue(t, residue(pos[ci]));
    }
    return out;
}

void
RnsPoly::dropTowers(std::size_t count)
{
    CL_ASSERT(count < towers(), "cannot drop all towers");
    modIdx_.resize(modIdx_.size() - count);
    data_.resize(modIdx_.size() * n_);
}

} // namespace cl

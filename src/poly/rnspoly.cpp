#include "rnspoly.h"

namespace cl {

RnsPoly::RnsPoly(const RnsChain &chain, std::vector<unsigned> mod_idx,
                 bool ntt_form)
    : chain_(&chain), modIdx_(std::move(mod_idx)), ntt_(ntt_form)
{
    CL_ASSERT(!modIdx_.empty(), "polynomial needs at least one tower");
    rns_.assign(modIdx_.size(), std::vector<u64>(chain.n(), 0));
}

void
RnsPoly::checkCompatible(const RnsPoly &other) const
{
    CL_ASSERT(chain_ == other.chain_, "mixing RNS chains");
    CL_ASSERT(modIdx_ == other.modIdx_, "operand bases differ: ",
              towers(), " vs ", other.towers(), " towers");
    CL_ASSERT(ntt_ == other.ntt_, "operand domains differ");
}

void
RnsPoly::toNtt()
{
    if (ntt_)
        return;
    for (std::size_t t = 0; t < towers(); ++t)
        chain_->ntt(modIdx_[t]).forward(rns_[t].data());
    ntt_ = true;
}

void
RnsPoly::toCoeff()
{
    if (!ntt_)
        return;
    for (std::size_t t = 0; t < towers(); ++t)
        chain_->ntt(modIdx_[t]).inverse(rns_[t].data());
    ntt_ = false;
}

RnsPoly &
RnsPoly::operator+=(const RnsPoly &other)
{
    checkCompatible(other);
    for (std::size_t t = 0; t < towers(); ++t) {
        const u64 q = modulus(t);
        u64 *a = rns_[t].data();
        const u64 *b = other.rns_[t].data();
        for (std::size_t i = 0; i < n(); ++i)
            a[i] = addMod(a[i], b[i], q);
    }
    return *this;
}

RnsPoly &
RnsPoly::operator-=(const RnsPoly &other)
{
    checkCompatible(other);
    for (std::size_t t = 0; t < towers(); ++t) {
        const u64 q = modulus(t);
        u64 *a = rns_[t].data();
        const u64 *b = other.rns_[t].data();
        for (std::size_t i = 0; i < n(); ++i)
            a[i] = subMod(a[i], b[i], q);
    }
    return *this;
}

RnsPoly &
RnsPoly::operator*=(const RnsPoly &other)
{
    checkCompatible(other);
    CL_ASSERT(ntt_, "element-wise multiply requires NTT form");
    for (std::size_t t = 0; t < towers(); ++t) {
        const u64 q = modulus(t);
        u64 *a = rns_[t].data();
        const u64 *b = other.rns_[t].data();
        for (std::size_t i = 0; i < n(); ++i)
            a[i] = mulMod(a[i], b[i], q);
    }
    return *this;
}

void
RnsPoly::negate()
{
    for (std::size_t t = 0; t < towers(); ++t) {
        const u64 q = modulus(t);
        for (u64 &v : rns_[t])
            v = v == 0 ? 0 : q - v;
    }
}

void
RnsPoly::mulScalar(u64 s)
{
    for (std::size_t t = 0; t < towers(); ++t)
        mulScalarTower(t, s);
}

void
RnsPoly::mulScalarTower(std::size_t t, u64 s)
{
    const u64 q = modulus(t);
    const ShoupMul m(s % q, q);
    for (u64 &v : rns_[t])
        v = m.mul(v, q);
}

RnsPoly
RnsPoly::automorphism(std::size_t k) const
{
    RnsPoly out(*chain_, modIdx_, ntt_);
    const AutomorphismMap &map = chain_->automorphism(k);
    for (std::size_t t = 0; t < towers(); ++t) {
        if (ntt_)
            map.applyNtt(rns_[t].data(), out.rns_[t].data());
        else
            map.applyCoeff(rns_[t].data(), out.rns_[t].data(), modulus(t));
    }
    return out;
}

void
RnsPoly::rescaleLastTower()
{
    CL_ASSERT(towers() >= 2, "cannot rescale a single-tower polynomial");
    const bool was_ntt = ntt_;
    toCoeff();

    const std::size_t last = towers() - 1;
    const u64 ql = modulus(last);
    const std::vector<u64> &xl = rns_[last];
    const u64 half = ql / 2;

    for (std::size_t t = 0; t < last; ++t) {
        const u64 qt = modulus(t);
        const ShoupMul ql_inv(invMod(ql % qt, qt), qt);
        u64 *a = rns_[t].data();
        for (std::size_t i = 0; i < n(); ++i) {
            // Rounded division: subtract the centered last residue,
            // then divide by q_last. Adding half before centering
            // implements round-to-nearest.
            const u64 xl_shift = addMod(xl[i], half, ql);
            const u64 xl_mod_qt = subMod(xl_shift % qt, half % qt, qt);
            a[i] = ql_inv.mul(subMod(a[i], xl_mod_qt, qt), qt);
        }
    }
    rns_.pop_back();
    modIdx_.pop_back();
    if (was_ntt)
        toNtt();
}

RnsPoly
RnsPoly::subset(const std::vector<unsigned> &chain_idx) const
{
    RnsPoly out(*chain_, chain_idx, ntt_);
    for (std::size_t t = 0; t < chain_idx.size(); ++t) {
        bool found = false;
        for (std::size_t s = 0; s < modIdx_.size(); ++s) {
            if (modIdx_[s] == chain_idx[t]) {
                out.rns_[t] = rns_[s];
                found = true;
                break;
            }
        }
        CL_ASSERT(found, "subset: chain index ", chain_idx[t],
                  " not present");
    }
    return out;
}

void
RnsPoly::dropTowers(std::size_t count)
{
    CL_ASSERT(count < towers(), "cannot drop all towers");
    rns_.resize(towers() - count);
    modIdx_.resize(modIdx_.size() - count);
}

} // namespace cl

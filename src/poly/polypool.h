/**
 * @file
 * Pooled allocation for RnsPoly coefficient slabs.
 *
 * The homomorphic hot path allocates and frees polynomial buffers at a
 * furious rate — every Evaluator op materializes result polynomials,
 * every keyswitch builds digit/accumulator scratch, every BSGS
 * transform encodes diagonal temporaries — and the set of sizes is
 * tiny: a handful of tower-count × N shapes per context. Under the
 * task-graph runtime many worker threads hit the allocator at once,
 * so round-tripping each slab through malloc serializes on the heap's
 * locks. This pool keeps per-thread free lists keyed by exact byte
 * size: a freed slab parks on the freeing thread's list and the next
 * same-shape allocation on that thread reuses it with no atomics and
 * no lock. Blocks always come from (and eventually return to)
 * `operator new`/`operator delete`, so enabling or disabling the pool
 * mid-run is safe — it only changes whether a free parks the block or
 * releases it.
 *
 * Determinism: the pool changes *where* buffers live, never what is
 * computed — ciphertext bytes are identical with the pool on or off.
 *
 * Knobs:
 *  - `CL_POOL=0|off` disables pooling (every call passes through to
 *    the system allocator); default on, except under AddressSanitizer
 *    where pooling would mask use-after-free of recycled slabs.
 *  - `CL_POOL_MB=<n>` caps each thread's parked bytes (default 256);
 *    frees beyond the cap release to the system allocator.
 *
 * Thread exit releases that thread's parked blocks, so the pool holds
 * no memory after its users are gone (leak-checker clean).
 */

#ifndef CL_POLY_POLYPOOL_H
#define CL_POLY_POLYPOOL_H

#include <cstddef>
#include <cstdint>

namespace cl {

/** Process-wide pool counters (relaxed atomics; exact once the
 *  threads touching the pool have joined). */
struct PolyPoolStats
{
    std::uint64_t allocs = 0;     ///< Allocation requests seen.
    std::uint64_t hits = 0;       ///< Served from a free list.
    std::uint64_t misses = 0;     ///< Fell through to operator new.
    std::uint64_t frees = 0;      ///< Deallocation requests seen.
    std::uint64_t parked = 0;     ///< Frees that parked on a list.
    std::uint64_t liveBytes = 0;  ///< Bytes currently held by callers.
    std::uint64_t cachedBytes = 0;///< Bytes currently parked.
};

/** Whether frees park blocks for reuse (CL_POOL, see file header). */
bool polyPoolEnabled();

/** Override the enable flag (tests/benchmarks comparing pooled vs
 *  pass-through allocation in one process). Safe mid-run. */
void polyPoolSetEnabled(bool on);

PolyPoolStats polyPoolStats();
void polyPoolResetStats();

/** Release every block parked by the *calling* thread. */
void polyPoolTrim();

/** Allocate @p bytes (operator-new alignment). Never returns null. */
void *polyPoolAllocate(std::size_t bytes);

/** Return a block obtained from polyPoolAllocate with the same byte
 *  count. */
void polyPoolDeallocate(void *p, std::size_t bytes) noexcept;

} // namespace cl

#endif // CL_POLY_POLYPOOL_H

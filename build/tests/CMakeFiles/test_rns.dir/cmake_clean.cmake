file(REMOVE_RECURSE
  "CMakeFiles/test_rns.dir/rns/test_automorphism.cpp.o"
  "CMakeFiles/test_rns.dir/rns/test_automorphism.cpp.o.d"
  "CMakeFiles/test_rns.dir/rns/test_baseconv.cpp.o"
  "CMakeFiles/test_rns.dir/rns/test_baseconv.cpp.o.d"
  "CMakeFiles/test_rns.dir/rns/test_modarith.cpp.o"
  "CMakeFiles/test_rns.dir/rns/test_modarith.cpp.o.d"
  "CMakeFiles/test_rns.dir/rns/test_ntt.cpp.o"
  "CMakeFiles/test_rns.dir/rns/test_ntt.cpp.o.d"
  "CMakeFiles/test_rns.dir/rns/test_primes.cpp.o"
  "CMakeFiles/test_rns.dir/rns/test_primes.cpp.o.d"
  "test_rns"
  "test_rns.pdb"
  "test_rns[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

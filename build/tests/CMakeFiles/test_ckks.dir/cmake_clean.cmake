file(REMOVE_RECURSE
  "CMakeFiles/test_ckks.dir/ckks/test_bootstrap.cpp.o"
  "CMakeFiles/test_ckks.dir/ckks/test_bootstrap.cpp.o.d"
  "CMakeFiles/test_ckks.dir/ckks/test_encoder.cpp.o"
  "CMakeFiles/test_ckks.dir/ckks/test_encoder.cpp.o.d"
  "CMakeFiles/test_ckks.dir/ckks/test_keyswitch.cpp.o"
  "CMakeFiles/test_ckks.dir/ckks/test_keyswitch.cpp.o.d"
  "CMakeFiles/test_ckks.dir/ckks/test_scheme.cpp.o"
  "CMakeFiles/test_ckks.dir/ckks/test_scheme.cpp.o.d"
  "test_ckks"
  "test_ckks.pdb"
  "test_ckks[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ckks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

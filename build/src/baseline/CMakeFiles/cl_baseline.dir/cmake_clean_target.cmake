file(REMOVE_RECURSE
  "libcl_baseline.a"
)

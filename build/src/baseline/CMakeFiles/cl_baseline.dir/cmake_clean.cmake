file(REMOVE_RECURSE
  "CMakeFiles/cl_baseline.dir/cpumodel.cpp.o"
  "CMakeFiles/cl_baseline.dir/cpumodel.cpp.o.d"
  "libcl_baseline.a"
  "libcl_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cl_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

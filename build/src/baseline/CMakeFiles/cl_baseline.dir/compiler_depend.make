# Empty compiler generated dependencies file for cl_baseline.
# This may be replaced when dependencies are built.

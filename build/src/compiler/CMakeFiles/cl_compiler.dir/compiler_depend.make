# Empty compiler generated dependencies file for cl_compiler.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libcl_compiler.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/cl_compiler.dir/homprogram.cpp.o"
  "CMakeFiles/cl_compiler.dir/homprogram.cpp.o.d"
  "CMakeFiles/cl_compiler.dir/lower.cpp.o"
  "CMakeFiles/cl_compiler.dir/lower.cpp.o.d"
  "libcl_compiler.a"
  "libcl_compiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cl_compiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libcl_workloads.a"
)

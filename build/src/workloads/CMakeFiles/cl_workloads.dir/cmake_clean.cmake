file(REMOVE_RECURSE
  "CMakeFiles/cl_workloads.dir/benchmarks.cpp.o"
  "CMakeFiles/cl_workloads.dir/benchmarks.cpp.o.d"
  "libcl_workloads.a"
  "libcl_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cl_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

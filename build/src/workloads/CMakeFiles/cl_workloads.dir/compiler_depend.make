# Empty compiler generated dependencies file for cl_workloads.
# This may be replaced when dependencies are built.

# Empty dependencies file for cl_rns.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/cl_rns.dir/automorphism.cpp.o"
  "CMakeFiles/cl_rns.dir/automorphism.cpp.o.d"
  "CMakeFiles/cl_rns.dir/baseconv.cpp.o"
  "CMakeFiles/cl_rns.dir/baseconv.cpp.o.d"
  "CMakeFiles/cl_rns.dir/chain.cpp.o"
  "CMakeFiles/cl_rns.dir/chain.cpp.o.d"
  "CMakeFiles/cl_rns.dir/ntt.cpp.o"
  "CMakeFiles/cl_rns.dir/ntt.cpp.o.d"
  "CMakeFiles/cl_rns.dir/primes.cpp.o"
  "CMakeFiles/cl_rns.dir/primes.cpp.o.d"
  "libcl_rns.a"
  "libcl_rns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cl_rns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

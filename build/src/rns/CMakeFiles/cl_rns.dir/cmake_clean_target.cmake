file(REMOVE_RECURSE
  "libcl_rns.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rns/automorphism.cpp" "src/rns/CMakeFiles/cl_rns.dir/automorphism.cpp.o" "gcc" "src/rns/CMakeFiles/cl_rns.dir/automorphism.cpp.o.d"
  "/root/repo/src/rns/baseconv.cpp" "src/rns/CMakeFiles/cl_rns.dir/baseconv.cpp.o" "gcc" "src/rns/CMakeFiles/cl_rns.dir/baseconv.cpp.o.d"
  "/root/repo/src/rns/chain.cpp" "src/rns/CMakeFiles/cl_rns.dir/chain.cpp.o" "gcc" "src/rns/CMakeFiles/cl_rns.dir/chain.cpp.o.d"
  "/root/repo/src/rns/ntt.cpp" "src/rns/CMakeFiles/cl_rns.dir/ntt.cpp.o" "gcc" "src/rns/CMakeFiles/cl_rns.dir/ntt.cpp.o.d"
  "/root/repo/src/rns/primes.cpp" "src/rns/CMakeFiles/cl_rns.dir/primes.cpp.o" "gcc" "src/rns/CMakeFiles/cl_rns.dir/primes.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/cl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

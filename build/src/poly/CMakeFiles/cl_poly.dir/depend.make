# Empty dependencies file for cl_poly.
# This may be replaced when dependencies are built.

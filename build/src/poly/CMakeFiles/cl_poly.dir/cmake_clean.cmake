file(REMOVE_RECURSE
  "CMakeFiles/cl_poly.dir/rnspoly.cpp.o"
  "CMakeFiles/cl_poly.dir/rnspoly.cpp.o.d"
  "libcl_poly.a"
  "libcl_poly.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cl_poly.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

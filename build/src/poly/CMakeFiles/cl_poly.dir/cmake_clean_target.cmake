file(REMOVE_RECURSE
  "libcl_poly.a"
)

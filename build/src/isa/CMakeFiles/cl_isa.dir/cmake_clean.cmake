file(REMOVE_RECURSE
  "CMakeFiles/cl_isa.dir/program.cpp.o"
  "CMakeFiles/cl_isa.dir/program.cpp.o.d"
  "libcl_isa.a"
  "libcl_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cl_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libcl_isa.a"
)

# Empty dependencies file for cl_isa.
# This may be replaced when dependencies are built.

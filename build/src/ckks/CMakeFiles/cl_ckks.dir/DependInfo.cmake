
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ckks/bootstrap.cpp" "src/ckks/CMakeFiles/cl_ckks.dir/bootstrap.cpp.o" "gcc" "src/ckks/CMakeFiles/cl_ckks.dir/bootstrap.cpp.o.d"
  "/root/repo/src/ckks/context.cpp" "src/ckks/CMakeFiles/cl_ckks.dir/context.cpp.o" "gcc" "src/ckks/CMakeFiles/cl_ckks.dir/context.cpp.o.d"
  "/root/repo/src/ckks/encoder.cpp" "src/ckks/CMakeFiles/cl_ckks.dir/encoder.cpp.o" "gcc" "src/ckks/CMakeFiles/cl_ckks.dir/encoder.cpp.o.d"
  "/root/repo/src/ckks/encryptor.cpp" "src/ckks/CMakeFiles/cl_ckks.dir/encryptor.cpp.o" "gcc" "src/ckks/CMakeFiles/cl_ckks.dir/encryptor.cpp.o.d"
  "/root/repo/src/ckks/evaluator.cpp" "src/ckks/CMakeFiles/cl_ckks.dir/evaluator.cpp.o" "gcc" "src/ckks/CMakeFiles/cl_ckks.dir/evaluator.cpp.o.d"
  "/root/repo/src/ckks/keygen.cpp" "src/ckks/CMakeFiles/cl_ckks.dir/keygen.cpp.o" "gcc" "src/ckks/CMakeFiles/cl_ckks.dir/keygen.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/poly/CMakeFiles/cl_poly.dir/DependInfo.cmake"
  "/root/repo/build/src/rns/CMakeFiles/cl_rns.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

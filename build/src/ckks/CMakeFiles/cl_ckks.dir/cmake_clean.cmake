file(REMOVE_RECURSE
  "CMakeFiles/cl_ckks.dir/bootstrap.cpp.o"
  "CMakeFiles/cl_ckks.dir/bootstrap.cpp.o.d"
  "CMakeFiles/cl_ckks.dir/context.cpp.o"
  "CMakeFiles/cl_ckks.dir/context.cpp.o.d"
  "CMakeFiles/cl_ckks.dir/encoder.cpp.o"
  "CMakeFiles/cl_ckks.dir/encoder.cpp.o.d"
  "CMakeFiles/cl_ckks.dir/encryptor.cpp.o"
  "CMakeFiles/cl_ckks.dir/encryptor.cpp.o.d"
  "CMakeFiles/cl_ckks.dir/evaluator.cpp.o"
  "CMakeFiles/cl_ckks.dir/evaluator.cpp.o.d"
  "CMakeFiles/cl_ckks.dir/keygen.cpp.o"
  "CMakeFiles/cl_ckks.dir/keygen.cpp.o.d"
  "libcl_ckks.a"
  "libcl_ckks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cl_ckks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

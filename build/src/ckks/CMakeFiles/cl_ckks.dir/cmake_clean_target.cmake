file(REMOVE_RECURSE
  "libcl_ckks.a"
)

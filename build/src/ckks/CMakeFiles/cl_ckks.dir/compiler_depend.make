# Empty compiler generated dependencies file for cl_ckks.
# This may be replaced when dependencies are built.

# Empty dependencies file for cl_util.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/cl_util.dir/biguint.cpp.o"
  "CMakeFiles/cl_util.dir/biguint.cpp.o.d"
  "CMakeFiles/cl_util.dir/prng.cpp.o"
  "CMakeFiles/cl_util.dir/prng.cpp.o.d"
  "CMakeFiles/cl_util.dir/table.cpp.o"
  "CMakeFiles/cl_util.dir/table.cpp.o.d"
  "libcl_util.a"
  "libcl_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cl_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for cl_sim.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/cl_sim.dir/simulator.cpp.o"
  "CMakeFiles/cl_sim.dir/simulator.cpp.o.d"
  "libcl_sim.a"
  "libcl_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cl_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

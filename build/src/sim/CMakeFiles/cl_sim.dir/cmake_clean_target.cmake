file(REMOVE_RECURSE
  "libcl_sim.a"
)

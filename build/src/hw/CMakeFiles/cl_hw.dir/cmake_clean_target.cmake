file(REMOVE_RECURSE
  "libcl_hw.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/cl_hw.dir/area.cpp.o"
  "CMakeFiles/cl_hw.dir/area.cpp.o.d"
  "CMakeFiles/cl_hw.dir/config.cpp.o"
  "CMakeFiles/cl_hw.dir/config.cpp.o.d"
  "CMakeFiles/cl_hw.dir/energy.cpp.o"
  "CMakeFiles/cl_hw.dir/energy.cpp.o.d"
  "libcl_hw.a"
  "libcl_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cl_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

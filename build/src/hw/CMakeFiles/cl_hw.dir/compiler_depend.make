# Empty compiler generated dependencies file for cl_hw.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/bootstrap_demo.cpp" "examples_build/CMakeFiles/bootstrap_demo.dir/bootstrap_demo.cpp.o" "gcc" "examples_build/CMakeFiles/bootstrap_demo.dir/bootstrap_demo.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/cl_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/cl_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/cl_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/compiler/CMakeFiles/cl_compiler.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/cl_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/cl_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/ckks/CMakeFiles/cl_ckks.dir/DependInfo.cmake"
  "/root/repo/build/src/poly/CMakeFiles/cl_poly.dir/DependInfo.cmake"
  "/root/repo/build/src/rns/CMakeFiles/cl_rns.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "../examples/bootstrap_demo"
  "../examples/bootstrap_demo.pdb"
  "CMakeFiles/bootstrap_demo.dir/bootstrap_demo.cpp.o"
  "CMakeFiles/bootstrap_demo.dir/bootstrap_demo.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bootstrap_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

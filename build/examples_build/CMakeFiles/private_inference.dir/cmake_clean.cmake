file(REMOVE_RECURSE
  "../examples/private_inference"
  "../examples/private_inference.pdb"
  "CMakeFiles/private_inference.dir/private_inference.cpp.o"
  "CMakeFiles/private_inference.dir/private_inference.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/private_inference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

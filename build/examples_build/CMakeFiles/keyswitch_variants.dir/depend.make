# Empty dependencies file for keyswitch_variants.
# This may be replaced when dependencies are built.

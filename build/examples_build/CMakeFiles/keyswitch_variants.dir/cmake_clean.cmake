file(REMOVE_RECURSE
  "../examples/keyswitch_variants"
  "../examples/keyswitch_variants.pdb"
  "CMakeFiles/keyswitch_variants.dir/keyswitch_variants.cpp.o"
  "CMakeFiles/keyswitch_variants.dir/keyswitch_variants.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/keyswitch_variants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

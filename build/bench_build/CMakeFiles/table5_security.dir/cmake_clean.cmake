file(REMOVE_RECURSE
  "../bench/table5_security"
  "../bench/table5_security.pdb"
  "CMakeFiles/table5_security.dir/table5_security.cpp.o"
  "CMakeFiles/table5_security.dir/table5_security.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_security.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for table5_security.
# This may be replaced when dependencies are built.

# Empty dependencies file for fig4_keyswitch_scaling.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "../bench/fig4_keyswitch_scaling"
  "../bench/fig4_keyswitch_scaling.pdb"
  "CMakeFiles/fig4_keyswitch_scaling.dir/fig4_keyswitch_scaling.cpp.o"
  "CMakeFiles/fig4_keyswitch_scaling.dir/fig4_keyswitch_scaling.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_keyswitch_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

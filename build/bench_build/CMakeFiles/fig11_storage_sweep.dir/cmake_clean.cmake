file(REMOVE_RECURSE
  "../bench/fig11_storage_sweep"
  "../bench/fig11_storage_sweep.pdb"
  "CMakeFiles/fig11_storage_sweep.dir/fig11_storage_sweep.cpp.o"
  "CMakeFiles/fig11_storage_sweep.dir/fig11_storage_sweep.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_storage_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

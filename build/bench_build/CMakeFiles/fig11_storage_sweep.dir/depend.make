# Empty dependencies file for fig11_storage_sweep.
# This may be replaced when dependencies are built.

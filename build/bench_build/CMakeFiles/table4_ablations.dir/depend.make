# Empty dependencies file for table4_ablations.
# This may be replaced when dependencies are built.

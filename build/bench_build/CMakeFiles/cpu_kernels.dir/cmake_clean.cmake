file(REMOVE_RECURSE
  "../bench/cpu_kernels"
  "../bench/cpu_kernels.pdb"
  "CMakeFiles/cpu_kernels.dir/cpu_kernels.cpp.o"
  "CMakeFiles/cpu_kernels.dir/cpu_kernels.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpu_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for fig3_ciphertext_size.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "../bench/table3_performance"
  "../bench/table3_performance.pdb"
  "CMakeFiles/table3_performance.dir/table3_performance.cpp.o"
  "CMakeFiles/table3_performance.dir/table3_performance.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_performance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

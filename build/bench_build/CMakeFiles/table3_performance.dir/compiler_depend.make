# Empty compiler generated dependencies file for table3_performance.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "../bench/table2_area"
  "../bench/table2_area.pdb"
  "CMakeFiles/table2_area.dir/table2_area.cpp.o"
  "CMakeFiles/table2_area.dir/table2_area.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_area.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

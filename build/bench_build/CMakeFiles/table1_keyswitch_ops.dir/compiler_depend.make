# Empty compiler generated dependencies file for table1_keyswitch_ops.
# This may be replaced when dependencies are built.

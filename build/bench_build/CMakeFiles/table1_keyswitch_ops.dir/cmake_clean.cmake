file(REMOVE_RECURSE
  "../bench/table1_keyswitch_ops"
  "../bench/table1_keyswitch_ops.pdb"
  "CMakeFiles/table1_keyswitch_ops.dir/table1_keyswitch_ops.cpp.o"
  "CMakeFiles/table1_keyswitch_ops.dir/table1_keyswitch_ops.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_keyswitch_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

/**
 * @file
 * Google-benchmark microbenchmarks of the scalar/vector kernels that
 * calibrate the CPU baseline (Sec 8): modular multiplication, NTTs
 * across sizes, changeRNSBase MACs, and the KSHGen expansion
 * (Keccak + rejection sampling).
 */

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <numeric>
#include <string>
#include <vector>

#include "poly/rnspoly.h"
#include "rns/baseconv.h"
#include "rns/ntt.h"
#include "rns/primes.h"
#include "rns/simd/kernels.h"
#include "util/prng.h"
#include "util/threadpool.h"

namespace {

using namespace cl;

/** Selects the backend named by the benchmark arg for the duration of
 *  one benchmark run, restoring the previous backend on exit. */
class BackendArg
{
  public:
    explicit BackendArg(benchmark::State &state, int arg_index = 0)
        : prev_(activeSimdBackend()),
          backend_(static_cast<SimdBackend>(state.range(arg_index)))
    {
        ok_ = setSimdBackend(backend_);
        if (!ok_)
            state.SkipWithError("backend unavailable on this host");
        else
            state.SetLabel(simdBackendName(backend_));
    }
    ~BackendArg() { setSimdBackend(prev_); }

    bool ok() const { return ok_; }
    SimdBackend backend() const { return backend_; }

  private:
    SimdBackend prev_;
    SimdBackend backend_;
    bool ok_;
};

constexpr int kScalar = static_cast<int>(SimdBackend::Scalar);
constexpr int kAvx2 = static_cast<int>(SimdBackend::Avx2);
constexpr int kAvx512 = static_cast<int>(SimdBackend::Avx512);

void
BM_ModMul(benchmark::State &state)
{
    const std::size_t n = 1 << 14;
    const u64 q = generateNttPrimes(28, n, 1)[0];
    std::vector<u64> a(n), b(n);
    FastRng rng(1);
    for (std::size_t i = 0; i < n; ++i) {
        a[i] = rng.nextBelow(q);
        b[i] = rng.nextBelow(q);
    }
    for (auto _ : state) {
        u64 acc = 0;
        for (std::size_t i = 0; i < n; ++i)
            acc ^= mulMod(a[i], b[i], q);
        benchmark::DoNotOptimize(acc);
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ModMul);

void
BM_ShoupMac(benchmark::State &state)
{
    const std::size_t n = 1 << 14;
    const u64 q = generateNttPrimes(28, n, 1)[0];
    std::vector<u64> x(n), acc(n, 0);
    FastRng rng(2);
    for (auto &v : x)
        v = rng.nextBelow(q);
    const ShoupMul c(987654321 % q, q);
    for (auto _ : state) {
        for (std::size_t i = 0; i < n; ++i)
            acc[i] = addMod(acc[i], c.mul(x[i], q), q);
        benchmark::DoNotOptimize(acc.data());
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ShoupMac);

void
BM_AddModVec(benchmark::State &state)
{
    BackendArg backend(state);
    if (!backend.ok())
        return;
    const std::size_t n = 1 << 14;
    const u64 q = generateNttPrimes(28, n, 1)[0];
    std::vector<u64> a(n), b(n);
    FastRng rng(11);
    for (std::size_t i = 0; i < n; ++i) {
        a[i] = rng.nextBelow(q);
        b[i] = rng.nextBelow(q);
    }
    for (auto _ : state) {
        kernels().addModVec(a.data(), b.data(), n, q);
        benchmark::DoNotOptimize(a.data());
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_AddModVec)->Arg(kScalar)->Arg(kAvx2)->Arg(kAvx512);

void
BM_MulModVec(benchmark::State &state)
{
    // BM_ModMul through the kernel table: elementwise canonical
    // multiply at the 28-bit datapath width.
    BackendArg backend(state);
    if (!backend.ok())
        return;
    const std::size_t n = 1 << 14;
    const u64 q = generateNttPrimes(28, n, 1)[0];
    std::vector<u64> a(n), b(n);
    FastRng rng(12);
    for (std::size_t i = 0; i < n; ++i) {
        a[i] = rng.nextBelow(q);
        b[i] = rng.nextBelow(q);
    }
    for (auto _ : state) {
        kernels().mulModVec(a.data(), b.data(), n, q);
        benchmark::DoNotOptimize(a.data());
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_MulModVec)->Arg(kScalar)->Arg(kAvx2)->Arg(kAvx512);

void
BM_MulModShoupVec(benchmark::State &state)
{
    BackendArg backend(state);
    if (!backend.ok())
        return;
    const std::size_t n = 1 << 14;
    const u64 q = generateNttPrimes(28, n, 1)[0];
    std::vector<u64> x(n), y(n);
    FastRng rng(13);
    for (auto &v : x)
        v = rng.nextBelow(q);
    const ShoupMul w(987654321 % q, q);
    for (auto _ : state) {
        kernels().mulModShoupVec(y.data(), x.data(), n, w.w, w.wPrec, q);
        benchmark::DoNotOptimize(y.data());
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_MulModShoupVec)->Arg(kScalar)->Arg(kAvx2)->Arg(kAvx512);

void
BM_BaseConvMac(benchmark::State &state)
{
    // The changeRNSBase inner product alone (one destination tower,
    // 8 narrow source towers), isolating the fused MAC kernel.
    BackendArg backend(state);
    if (!backend.ok())
        return;
    const std::size_t n = 1 << 14;
    const std::size_t ls = 8;
    auto primes = generateNttPrimes(28, n, ls + 1);
    const u64 q = primes[ls];
    const u64 x_bound = *std::max_element(primes.begin(),
                                          primes.begin() + ls);
    std::vector<std::vector<u64>> x(ls);
    std::vector<const u64 *> xs(ls);
    std::vector<u64> cs(ls), y(n);
    FastRng rng(14);
    for (std::size_t i = 0; i < ls; ++i) {
        x[i].resize(n);
        for (auto &v : x[i])
            v = rng.nextBelow(primes[i]);
        xs[i] = x[i].data();
        cs[i] = rng.nextBelow(q);
    }
    for (auto _ : state) {
        kernels().baseconvMacVec(y.data(), xs.data(), cs.data(), ls, n,
                                 q, x_bound);
        benchmark::DoNotOptimize(y.data());
    }
    state.SetItemsProcessed(state.iterations() * n * ls); // MACs
}
BENCHMARK(BM_BaseConvMac)->Arg(kScalar)->Arg(kAvx2)->Arg(kAvx512);

void
BM_AutomorphismGather(benchmark::State &state)
{
    BackendArg backend(state);
    if (!backend.ok())
        return;
    const std::size_t n = 1 << 14;
    std::vector<u64> src(n), dst(n);
    std::vector<std::uint32_t> idx(n);
    FastRng rng(15);
    for (auto &v : src)
        v = rng.next64();
    std::iota(idx.begin(), idx.end(), 0u);
    for (std::size_t i = n; i > 1; --i)
        std::swap(idx[i - 1], idx[rng.nextBelow(i)]);
    for (auto _ : state) {
        kernels().gatherVec(dst.data(), src.data(), idx.data(), n);
        benchmark::DoNotOptimize(dst.data());
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_AutomorphismGather)->Arg(kScalar)->Arg(kAvx2)->Arg(kAvx512);

void
BM_Ntt(benchmark::State &state)
{
    const std::size_t n = std::size_t{1} << state.range(0);
    const u64 q = generateNttPrimes(28, n, 1)[0];
    NttTables tables(n, q);
    std::vector<u64> a(n);
    FastRng rng(3);
    for (auto &v : a)
        v = rng.nextBelow(q);
    for (auto _ : state) {
        tables.forward(a.data());
        benchmark::DoNotOptimize(a.data());
    }
    state.SetItemsProcessed(state.iterations() * n / 2 *
                            log2Exact(n)); // butterflies
}
BENCHMARK(BM_Ntt)->Arg(12)->Arg(14)->Arg(16);

void
BM_Intt(benchmark::State &state)
{
    const std::size_t n = std::size_t{1} << state.range(0);
    const u64 q = generateNttPrimes(28, n, 1)[0];
    NttTables tables(n, q);
    std::vector<u64> a(n);
    FastRng rng(4);
    for (auto &v : a)
        v = rng.nextBelow(q);
    for (auto _ : state) {
        tables.inverse(a.data());
        benchmark::DoNotOptimize(a.data());
    }
    state.SetItemsProcessed(state.iterations() * n / 2 * log2Exact(n));
}
BENCHMARK(BM_Intt)->Arg(12)->Arg(16);

void
BM_NttBatch(benchmark::State &state)
{
    // The tier-1 hot loop: forward NTT over a full RNS polynomial
    // (16 towers of N=2^16), swept across worker counts and kernel
    // backends. Towers are independent across moduli, so this is the
    // tower-parallelism the execution layer (and CraterLake's lanes)
    // exploit; backends multiply it by lane-parallelism within a
    // tower.
    BackendArg backend(state, 1);
    if (!backend.ok())
        return;
    const unsigned nthreads = static_cast<unsigned>(state.range(0));
    const std::size_t n = std::size_t{1} << 16;
    const std::size_t towers = 16;
    ThreadPool::setGlobalThreads(nthreads);

    auto primes = generateNttPrimes(28, n, towers);
    RnsChain chain(n, primes);
    std::vector<unsigned> idx;
    for (unsigned i = 0; i < towers; ++i)
        idx.push_back(i);
    RnsPoly p(chain, idx, false);
    FastRng rng(6);
    for (std::size_t t = 0; t < towers; ++t) {
        for (auto &v : p.residue(t))
            v = rng.nextBelow(p.modulus(t));
    }

    for (auto _ : state) {
        // One forward+inverse round trip per iteration keeps the
        // input valid without a copy inside the timed region.
        p.toNtt();
        p.toCoeff();
        benchmark::DoNotOptimize(p.data().data());
    }
    state.SetItemsProcessed(state.iterations() * towers * n *
                            log2Exact(n)); // butterflies, fwd+inv
    state.counters["workers"] = nthreads;
    ThreadPool::setGlobalThreads(1);
}
BENCHMARK(BM_NttBatch)
    ->Args({1, kScalar})->Args({2, kScalar})->Args({4, kScalar})
    ->Args({8, kScalar})
    ->Args({1, kAvx2})->Args({2, kAvx2})->Args({4, kAvx2})
    ->Args({8, kAvx2})
    ->Args({1, kAvx512})->Args({8, kAvx512})
    ->Unit(benchmark::kMillisecond);

void
BM_KeySwitchInnerParallel(benchmark::State &state)
{
    // changeRNSBase at keyswitch shape (8 -> 8 towers) across worker
    // counts; the MAC loops fan out per destination tower.
    const unsigned nthreads = static_cast<unsigned>(state.range(0));
    const std::size_t n = 1 << 14;
    const unsigned ls = 8;
    ThreadPool::setGlobalThreads(nthreads);
    auto primes = generateNttPrimes(28, n, 2 * ls);
    RnsChain chain(n, primes);
    std::vector<unsigned> src, dst;
    for (unsigned i = 0; i < ls; ++i) {
        src.push_back(i);
        dst.push_back(ls + i);
    }
    BaseConverter conv(chain, src, dst);
    std::vector<std::vector<u64>> in(ls, std::vector<u64>(n));
    FastRng rng(7);
    for (auto &res : in) {
        for (auto &v : res)
            v = rng.nextBelow(primes[0]);
    }
    std::vector<std::vector<u64>> out;
    for (auto _ : state) {
        conv.convert(in, out);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(state.iterations() * n * ls * ls);
    state.counters["workers"] = nthreads;
    ThreadPool::setGlobalThreads(1);
}
BENCHMARK(BM_KeySwitchInnerParallel)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void
BM_ChangeRnsBase(benchmark::State &state)
{
    const std::size_t n = 1 << 12;
    const unsigned ls = static_cast<unsigned>(state.range(0));
    auto primes = generateNttPrimes(28, n, 2 * ls);
    RnsChain chain(n, primes);
    std::vector<unsigned> src, dst;
    for (unsigned i = 0; i < ls; ++i) {
        src.push_back(i);
        dst.push_back(ls + i);
    }
    BaseConverter conv(chain, src, dst);
    std::vector<std::vector<u64>> in(ls, std::vector<u64>(n));
    FastRng rng(5);
    for (auto &res : in) {
        for (auto &v : res)
            v = rng.nextBelow(primes[0]);
    }
    std::vector<std::vector<u64>> out;
    for (auto _ : state) {
        conv.convert(in, out);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(state.iterations() * n * ls * ls); // MACs
}
BENCHMARK(BM_ChangeRnsBase)->Arg(4)->Arg(8)->Arg(16);

/** Selects fused/composed for one run per the benchmark arg,
 *  restoring the previous gate on exit. */
class FusionArg
{
  public:
    FusionArg(benchmark::State &state, int arg_index)
        : prev_(fusionEnabled()),
          fused_(state.range(arg_index) != 0)
    {
        setFusionEnabled(fused_);
    }
    ~FusionArg() { setFusionEnabled(prev_); }

    bool fused() const { return fused_; }

  private:
    bool prev_;
    bool fused_;
};

void
BM_InvNttScaleStage(benchmark::State &state)
{
    // The iNTT's final two passes — last Gentleman-Sande stage and the
    // N^-1 scale — composed (three sweeps over the halves) vs the
    // fused single-sweep kernel. Args: {backend, fused}.
    BackendArg backend(state);
    if (!backend.ok())
        return;
    FusionArg fuse(state, 1);
    state.SetLabel(std::string(simdBackendName(backend.backend())) +
                   (fuse.fused() ? "/fused" : "/composed"));
    const std::size_t t = 1 << 13; // half of an N=2^14 tower
    const u64 q = generateNttPrimes(28, 2 * t, 1)[0];
    const ShoupMul w(q - 2, q);
    const ShoupMul n_inv(invMod(2 * t % q, q), q);
    std::vector<u64> x(t), y(t);
    FastRng rng(21);
    for (std::size_t i = 0; i < t; ++i) {
        x[i] = rng.nextBelow(2 * q);
        y[i] = rng.nextBelow(2 * q);
    }
    // Outputs are canonical (< q ⊂ [0, 2q)), so repeated application
    // stays within the kernel's input domain.
    for (auto _ : state) {
        if (fuse.fused()) {
            kernels().nttInvScaleButterflyVec(x.data(), y.data(), t,
                                              w.w, w.wPrec, n_inv.w,
                                              n_inv.wPrec, q);
        } else {
            kernels().nttInvButterflyVec(x.data(), y.data(), t, w.w,
                                         w.wPrec, q);
            kernels().nttScaleInvVec(x.data(), t, n_inv.w, n_inv.wPrec,
                                     q);
            kernels().nttScaleInvVec(y.data(), t, n_inv.w, n_inv.wPrec,
                                     q);
        }
        benchmark::DoNotOptimize(x.data());
        benchmark::DoNotOptimize(y.data());
    }
    state.SetItemsProcessed(state.iterations() * t);
}
BENCHMARK(BM_InvNttScaleStage)
    ->Args({kScalar, 0})->Args({kScalar, 1})
    ->Args({kAvx2, 0})->Args({kAvx2, 1})
    ->Args({kAvx512, 0})->Args({kAvx512, 1});

void
BM_RescaleEpilogue(benchmark::State &state)
{
    // The coefficient-domain rescale correction for one kept tower:
    // the composed per-coefficient loop (centered subtract + Shoup
    // multiply, exactly the CL_FUSE=0 path) vs the fused epilogue
    // kernel with the identity N^-1 pair. Args: {backend, fused}.
    BackendArg backend(state);
    if (!backend.ok())
        return;
    FusionArg fuse(state, 1);
    state.SetLabel(std::string(simdBackendName(backend.backend())) +
                   (fuse.fused() ? "/fused" : "/composed"));
    const std::size_t n = 1 << 14;
    auto primes = generateNttPrimes(28, n, 2);
    const u64 q = primes[0], ql = primes[1];
    const u64 half = ql / 2;
    const ShoupMul ql_inv(invMod(ql % q, q), q);
    const ShoupMul ident(1, q);
    const RescaleConsts rc{ident.w, ident.wPrec, ql,
                           half,    ql_inv.w,    ql_inv.wPrec};
    std::vector<u64> a(n), xl(n);
    FastRng rng(22);
    for (std::size_t i = 0; i < n; ++i) {
        a[i] = rng.nextBelow(q);
        xl[i] = rng.nextBelow(ql);
    }
    for (auto _ : state) {
        if (fuse.fused()) {
            kernels().rescaleEpilogueVec(a.data(), xl.data(), n, &rc, q);
        } else {
            for (std::size_t i = 0; i < n; ++i) {
                const u64 xl_shift = addMod(xl[i], half, ql);
                const u64 xl_mod_q = subMod(xl_shift % q, half % q, q);
                a[i] = ql_inv.mul(subMod(a[i], xl_mod_q, q), q);
            }
        }
        benchmark::DoNotOptimize(a.data());
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_RescaleEpilogue)
    ->Args({kScalar, 0})->Args({kScalar, 1})
    ->Args({kAvx2, 0})->Args({kAvx2, 1})
    ->Args({kAvx512, 0})->Args({kAvx512, 1});

void
BM_ModDownEpilogue(benchmark::State &state)
{
    // The keyswitch mod-down boundary: forward-NTT lazy correction
    // plus the (acc - x) * P^-1 Shoup pass, composed (two sweeps) vs
    // fused (one). Args: {backend, fused}.
    BackendArg backend(state);
    if (!backend.ok())
        return;
    FusionArg fuse(state, 1);
    state.SetLabel(std::string(simdBackendName(backend.backend())) +
                   (fuse.fused() ? "/fused" : "/composed"));
    const std::size_t n = 1 << 14;
    const u64 q = generateNttPrimes(28, n, 1)[0];
    const ShoupMul w(q - 7, q);
    std::vector<u64> x(n), acc(n), dst(n);
    FastRng rng(23);
    for (std::size_t i = 0; i < n; ++i) {
        x[i] = rng.nextBelow(4 * q);
        acc[i] = rng.nextBelow(q);
    }
    for (auto _ : state) {
        if (fuse.fused()) {
            kernels().nttCorrectSubMulShoupVec(dst.data(), acc.data(),
                                               x.data(), n, w.w,
                                               w.wPrec, q);
        } else {
            kernels().nttCorrectVec(x.data(), n, q);
            kernels().subMulShoupVec(dst.data(), acc.data(), x.data(),
                                     n, w.w, w.wPrec, q);
        }
        benchmark::DoNotOptimize(dst.data());
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ModDownEpilogue)
    ->Args({kScalar, 0})->Args({kScalar, 1})
    ->Args({kAvx2, 0})->Args({kAvx2, 1})
    ->Args({kAvx512, 0})->Args({kAvx512, 1});

void
BM_KeySwitchInnerTiled(benchmark::State &state)
{
    // changeRNSBase at keyswitch shape (16 -> 16 towers): the tiled
    // cache-resident pipeline (CL_FUSE default) vs the untiled
    // scale-then-MAC sequence that round-trips the scaled residues
    // through memory. Arg: fused.
    FusionArg fuse(state, 0);
    state.SetLabel(fuse.fused() ? "fused" : "composed");
    const std::size_t n = 1 << 14;
    const unsigned ls = 16;
    auto primes = generateNttPrimes(28, n, 2 * ls);
    RnsChain chain(n, primes);
    std::vector<unsigned> src, dst;
    for (unsigned i = 0; i < ls; ++i) {
        src.push_back(i);
        dst.push_back(ls + i);
    }
    BaseConverter conv(chain, src, dst);
    std::vector<std::vector<u64>> in(ls, std::vector<u64>(n));
    FastRng rng(24);
    for (auto &res : in) {
        for (auto &v : res)
            v = rng.nextBelow(primes[0]);
    }
    std::vector<std::vector<u64>> out;
    for (auto _ : state) {
        conv.convert(in, out);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(state.iterations() * n * ls * ls); // MACs
}
BENCHMARK(BM_KeySwitchInnerTiled)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond);

void
BM_RescaleTower(benchmark::State &state)
{
    // Whole-poly rescale in the NTT domain (the evaluator's hot path
    // after every multiply): fused per-tower iNTT/correction/NTT
    // pipeline vs the composed toCoeff / correct / toNtt round trip.
    // Arg: fused.
    FusionArg fuse(state, 0);
    state.SetLabel(fuse.fused() ? "fused" : "composed");
    const std::size_t n = 1 << 14;
    const unsigned towers = 8;
    auto primes = generateNttPrimes(28, n, towers);
    RnsChain chain(n, primes);
    std::vector<unsigned> idx;
    for (unsigned i = 0; i < towers; ++i)
        idx.push_back(i);
    RnsPoly base(chain, idx, false);
    FastRng rng(25);
    for (std::size_t t = 0; t < towers; ++t) {
        for (auto &v : base.residue(t))
            v = rng.nextBelow(base.modulus(t));
    }
    base.toNtt();
    for (auto _ : state) {
        state.PauseTiming();
        RnsPoly p = base;
        state.ResumeTiming();
        p.rescaleLastTower();
        benchmark::DoNotOptimize(p.data().data());
    }
    state.SetItemsProcessed(state.iterations() * (towers - 1) * n);
}
BENCHMARK(BM_RescaleTower)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond);

void
BM_KshGenExpansion(benchmark::State &state)
{
    // Seeded expansion of one residue polynomial, as the KSHGen unit
    // does on the fly (Sec 5.2).
    const std::size_t n = 1 << 14;
    const u64 q = generateNttPrimes(28, n, 1)[0];
    std::vector<u64> out(n);
    std::uint64_t domain = 0;
    for (auto _ : state) {
        RejectionSampler sampler(42, ++domain, q);
        sampler.fill(out.data(), n);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_KshGenExpansion);

void
BM_KeccakF1600(benchmark::State &state)
{
    std::array<std::uint64_t, 25> st{};
    st[0] = 1;
    for (auto _ : state) {
        keccakF1600(st);
        benchmark::DoNotOptimize(st.data());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_KeccakF1600);

} // namespace

#include "bench_main.h"

int
main(int argc, char **argv)
{
    return cl::bench::clBenchMain("cpu_kernels", argc, argv);
}

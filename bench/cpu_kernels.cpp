/**
 * @file
 * Google-benchmark microbenchmarks of the scalar/vector kernels that
 * calibrate the CPU baseline (Sec 8): modular multiplication, NTTs
 * across sizes, changeRNSBase MACs, and the KSHGen expansion
 * (Keccak + rejection sampling).
 */

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <numeric>
#include <string>
#include <vector>

#include "poly/rnspoly.h"
#include "rns/baseconv.h"
#include "rns/ntt.h"
#include "rns/primes.h"
#include "rns/simd/kernels.h"
#include "util/prng.h"
#include "util/threadpool.h"

namespace {

using namespace cl;

/** Selects the backend named by the benchmark arg for the duration of
 *  one benchmark run, restoring the previous backend on exit. */
class BackendArg
{
  public:
    explicit BackendArg(benchmark::State &state, int arg_index = 0)
        : prev_(activeSimdBackend()),
          backend_(static_cast<SimdBackend>(state.range(arg_index)))
    {
        ok_ = setSimdBackend(backend_);
        if (!ok_)
            state.SkipWithError("backend unavailable on this host");
        else
            state.SetLabel(simdBackendName(backend_));
    }
    ~BackendArg() { setSimdBackend(prev_); }

    bool ok() const { return ok_; }
    SimdBackend backend() const { return backend_; }

  private:
    SimdBackend prev_;
    SimdBackend backend_;
    bool ok_;
};

constexpr int kScalar = static_cast<int>(SimdBackend::Scalar);
constexpr int kAvx2 = static_cast<int>(SimdBackend::Avx2);
constexpr int kAvx512 = static_cast<int>(SimdBackend::Avx512);

void
BM_ModMul(benchmark::State &state)
{
    const std::size_t n = 1 << 14;
    const u64 q = generateNttPrimes(28, n, 1)[0];
    std::vector<u64> a(n), b(n);
    FastRng rng(1);
    for (std::size_t i = 0; i < n; ++i) {
        a[i] = rng.nextBelow(q);
        b[i] = rng.nextBelow(q);
    }
    for (auto _ : state) {
        u64 acc = 0;
        for (std::size_t i = 0; i < n; ++i)
            acc ^= mulMod(a[i], b[i], q);
        benchmark::DoNotOptimize(acc);
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ModMul);

void
BM_ShoupMac(benchmark::State &state)
{
    const std::size_t n = 1 << 14;
    const u64 q = generateNttPrimes(28, n, 1)[0];
    std::vector<u64> x(n), acc(n, 0);
    FastRng rng(2);
    for (auto &v : x)
        v = rng.nextBelow(q);
    const ShoupMul c(987654321 % q, q);
    for (auto _ : state) {
        for (std::size_t i = 0; i < n; ++i)
            acc[i] = addMod(acc[i], c.mul(x[i], q), q);
        benchmark::DoNotOptimize(acc.data());
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ShoupMac);

void
BM_AddModVec(benchmark::State &state)
{
    BackendArg backend(state);
    if (!backend.ok())
        return;
    const std::size_t n = 1 << 14;
    const u64 q = generateNttPrimes(28, n, 1)[0];
    std::vector<u64> a(n), b(n);
    FastRng rng(11);
    for (std::size_t i = 0; i < n; ++i) {
        a[i] = rng.nextBelow(q);
        b[i] = rng.nextBelow(q);
    }
    for (auto _ : state) {
        kernels().addModVec(a.data(), b.data(), n, q);
        benchmark::DoNotOptimize(a.data());
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_AddModVec)->Arg(kScalar)->Arg(kAvx2)->Arg(kAvx512);

void
BM_MulModVec(benchmark::State &state)
{
    // BM_ModMul through the kernel table: elementwise canonical
    // multiply at the 28-bit datapath width.
    BackendArg backend(state);
    if (!backend.ok())
        return;
    const std::size_t n = 1 << 14;
    const u64 q = generateNttPrimes(28, n, 1)[0];
    std::vector<u64> a(n), b(n);
    FastRng rng(12);
    for (std::size_t i = 0; i < n; ++i) {
        a[i] = rng.nextBelow(q);
        b[i] = rng.nextBelow(q);
    }
    for (auto _ : state) {
        kernels().mulModVec(a.data(), b.data(), n, q);
        benchmark::DoNotOptimize(a.data());
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_MulModVec)->Arg(kScalar)->Arg(kAvx2)->Arg(kAvx512);

void
BM_MulModShoupVec(benchmark::State &state)
{
    BackendArg backend(state);
    if (!backend.ok())
        return;
    const std::size_t n = 1 << 14;
    const u64 q = generateNttPrimes(28, n, 1)[0];
    std::vector<u64> x(n), y(n);
    FastRng rng(13);
    for (auto &v : x)
        v = rng.nextBelow(q);
    const ShoupMul w(987654321 % q, q);
    for (auto _ : state) {
        kernels().mulModShoupVec(y.data(), x.data(), n, w.w, w.wPrec, q);
        benchmark::DoNotOptimize(y.data());
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_MulModShoupVec)->Arg(kScalar)->Arg(kAvx2)->Arg(kAvx512);

void
BM_BaseConvMac(benchmark::State &state)
{
    // The changeRNSBase inner product alone (one destination tower,
    // 8 narrow source towers), isolating the fused MAC kernel.
    BackendArg backend(state);
    if (!backend.ok())
        return;
    const std::size_t n = 1 << 14;
    const std::size_t ls = 8;
    auto primes = generateNttPrimes(28, n, ls + 1);
    const u64 q = primes[ls];
    const u64 x_bound = *std::max_element(primes.begin(),
                                          primes.begin() + ls);
    std::vector<std::vector<u64>> x(ls);
    std::vector<const u64 *> xs(ls);
    std::vector<u64> cs(ls), y(n);
    FastRng rng(14);
    for (std::size_t i = 0; i < ls; ++i) {
        x[i].resize(n);
        for (auto &v : x[i])
            v = rng.nextBelow(primes[i]);
        xs[i] = x[i].data();
        cs[i] = rng.nextBelow(q);
    }
    for (auto _ : state) {
        kernels().baseconvMacVec(y.data(), xs.data(), cs.data(), ls, n,
                                 q, x_bound);
        benchmark::DoNotOptimize(y.data());
    }
    state.SetItemsProcessed(state.iterations() * n * ls); // MACs
}
BENCHMARK(BM_BaseConvMac)->Arg(kScalar)->Arg(kAvx2)->Arg(kAvx512);

void
BM_AutomorphismGather(benchmark::State &state)
{
    BackendArg backend(state);
    if (!backend.ok())
        return;
    const std::size_t n = 1 << 14;
    std::vector<u64> src(n), dst(n);
    std::vector<std::uint32_t> idx(n);
    FastRng rng(15);
    for (auto &v : src)
        v = rng.next64();
    std::iota(idx.begin(), idx.end(), 0u);
    for (std::size_t i = n; i > 1; --i)
        std::swap(idx[i - 1], idx[rng.nextBelow(i)]);
    for (auto _ : state) {
        kernels().gatherVec(dst.data(), src.data(), idx.data(), n);
        benchmark::DoNotOptimize(dst.data());
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_AutomorphismGather)->Arg(kScalar)->Arg(kAvx2)->Arg(kAvx512);

void
BM_Ntt(benchmark::State &state)
{
    const std::size_t n = std::size_t{1} << state.range(0);
    const u64 q = generateNttPrimes(28, n, 1)[0];
    NttTables tables(n, q);
    std::vector<u64> a(n);
    FastRng rng(3);
    for (auto &v : a)
        v = rng.nextBelow(q);
    for (auto _ : state) {
        tables.forward(a.data());
        benchmark::DoNotOptimize(a.data());
    }
    state.SetItemsProcessed(state.iterations() * n / 2 *
                            log2Exact(n)); // butterflies
}
BENCHMARK(BM_Ntt)->Arg(12)->Arg(14)->Arg(16);

void
BM_Intt(benchmark::State &state)
{
    const std::size_t n = std::size_t{1} << state.range(0);
    const u64 q = generateNttPrimes(28, n, 1)[0];
    NttTables tables(n, q);
    std::vector<u64> a(n);
    FastRng rng(4);
    for (auto &v : a)
        v = rng.nextBelow(q);
    for (auto _ : state) {
        tables.inverse(a.data());
        benchmark::DoNotOptimize(a.data());
    }
    state.SetItemsProcessed(state.iterations() * n / 2 * log2Exact(n));
}
BENCHMARK(BM_Intt)->Arg(12)->Arg(16);

void
BM_NttBatch(benchmark::State &state)
{
    // The tier-1 hot loop: forward NTT over a full RNS polynomial
    // (16 towers of N=2^16), swept across worker counts and kernel
    // backends. Towers are independent across moduli, so this is the
    // tower-parallelism the execution layer (and CraterLake's lanes)
    // exploit; backends multiply it by lane-parallelism within a
    // tower.
    BackendArg backend(state, 1);
    if (!backend.ok())
        return;
    const unsigned nthreads = static_cast<unsigned>(state.range(0));
    const std::size_t n = std::size_t{1} << 16;
    const std::size_t towers = 16;
    ThreadPool::setGlobalThreads(nthreads);

    auto primes = generateNttPrimes(28, n, towers);
    RnsChain chain(n, primes);
    std::vector<unsigned> idx;
    for (unsigned i = 0; i < towers; ++i)
        idx.push_back(i);
    RnsPoly p(chain, idx, false);
    FastRng rng(6);
    for (std::size_t t = 0; t < towers; ++t) {
        for (auto &v : p.residue(t))
            v = rng.nextBelow(p.modulus(t));
    }

    for (auto _ : state) {
        // One forward+inverse round trip per iteration keeps the
        // input valid without a copy inside the timed region.
        p.toNtt();
        p.toCoeff();
        benchmark::DoNotOptimize(p.data().data());
    }
    state.SetItemsProcessed(state.iterations() * towers * n *
                            log2Exact(n)); // butterflies, fwd+inv
    state.counters["workers"] = nthreads;
    ThreadPool::setGlobalThreads(1);
}
BENCHMARK(BM_NttBatch)
    ->Args({1, kScalar})->Args({2, kScalar})->Args({4, kScalar})
    ->Args({8, kScalar})
    ->Args({1, kAvx2})->Args({2, kAvx2})->Args({4, kAvx2})
    ->Args({8, kAvx2})
    ->Args({1, kAvx512})->Args({8, kAvx512})
    ->Unit(benchmark::kMillisecond);

void
BM_KeySwitchInnerParallel(benchmark::State &state)
{
    // changeRNSBase at keyswitch shape (8 -> 8 towers) across worker
    // counts; the MAC loops fan out per destination tower.
    const unsigned nthreads = static_cast<unsigned>(state.range(0));
    const std::size_t n = 1 << 14;
    const unsigned ls = 8;
    ThreadPool::setGlobalThreads(nthreads);
    auto primes = generateNttPrimes(28, n, 2 * ls);
    RnsChain chain(n, primes);
    std::vector<unsigned> src, dst;
    for (unsigned i = 0; i < ls; ++i) {
        src.push_back(i);
        dst.push_back(ls + i);
    }
    BaseConverter conv(chain, src, dst);
    std::vector<std::vector<u64>> in(ls, std::vector<u64>(n));
    FastRng rng(7);
    for (auto &res : in) {
        for (auto &v : res)
            v = rng.nextBelow(primes[0]);
    }
    std::vector<std::vector<u64>> out;
    for (auto _ : state) {
        conv.convert(in, out);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(state.iterations() * n * ls * ls);
    state.counters["workers"] = nthreads;
    ThreadPool::setGlobalThreads(1);
}
BENCHMARK(BM_KeySwitchInnerParallel)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void
BM_ChangeRnsBase(benchmark::State &state)
{
    const std::size_t n = 1 << 12;
    const unsigned ls = static_cast<unsigned>(state.range(0));
    auto primes = generateNttPrimes(28, n, 2 * ls);
    RnsChain chain(n, primes);
    std::vector<unsigned> src, dst;
    for (unsigned i = 0; i < ls; ++i) {
        src.push_back(i);
        dst.push_back(ls + i);
    }
    BaseConverter conv(chain, src, dst);
    std::vector<std::vector<u64>> in(ls, std::vector<u64>(n));
    FastRng rng(5);
    for (auto &res : in) {
        for (auto &v : res)
            v = rng.nextBelow(primes[0]);
    }
    std::vector<std::vector<u64>> out;
    for (auto _ : state) {
        conv.convert(in, out);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(state.iterations() * n * ls * ls); // MACs
}
BENCHMARK(BM_ChangeRnsBase)->Arg(4)->Arg(8)->Arg(16);

void
BM_KshGenExpansion(benchmark::State &state)
{
    // Seeded expansion of one residue polynomial, as the KSHGen unit
    // does on the fly (Sec 5.2).
    const std::size_t n = 1 << 14;
    const u64 q = generateNttPrimes(28, n, 1)[0];
    std::vector<u64> out(n);
    std::uint64_t domain = 0;
    for (auto _ : state) {
        RejectionSampler sampler(42, ++domain, q);
        sampler.fill(out.data(), n);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_KshGenExpansion);

void
BM_KeccakF1600(benchmark::State &state)
{
    std::array<std::uint64_t, 25> st{};
    st[0] = 1;
    for (auto _ : state) {
        keccakF1600(st);
        benchmark::DoNotOptimize(st.data());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_KeccakF1600);

} // namespace

#ifndef CL_BENCH_BUILD_TYPE
#define CL_BENCH_BUILD_TYPE "unknown"
#endif

/**
 * Custom main: refuse to write checked-in benchmark tables
 * (BENCH_*.json) from a non-Release build. Debug/RelWithDebInfo
 * numbers silently poison before/after comparisons; `--force`
 * overrides for local experiments. The build type and active kernel
 * backend are stamped into the JSON context either way.
 */
int
main(int argc, char **argv)
{
    bool force = false;
    std::string out_path;
    std::vector<char *> args;
    args.reserve(static_cast<std::size_t>(argc) + 1);
    for (int i = 0; i < argc; ++i) {
        if (std::strcmp(argv[i], "--force") == 0) {
            force = true;
            continue;
        }
        constexpr const char kOut[] = "--benchmark_out=";
        if (std::strncmp(argv[i], kOut, sizeof(kOut) - 1) == 0)
            out_path = argv[i] + sizeof(kOut) - 1;
        args.push_back(argv[i]);
    }
    args.push_back(nullptr);

    const auto slash = out_path.find_last_of('/');
    const std::string base =
        slash == std::string::npos ? out_path : out_path.substr(slash + 1);
    const bool is_bench_table =
        base.rfind("BENCH_", 0) == 0 && base.size() > 5 &&
        base.compare(base.size() - 5, 5, ".json") == 0;
    const bool release = std::strcmp(CL_BENCH_BUILD_TYPE, "Release") == 0;
    if (is_bench_table && !release) {
        if (!force) {
            std::fprintf(stderr,
                         "cpu_kernels: refusing to write %s from a %s "
                         "build; checked-in BENCH_*.json tables must "
                         "come from -DCMAKE_BUILD_TYPE=Release "
                         "(pass --force to override)\n",
                         base.c_str(), CL_BENCH_BUILD_TYPE);
            return 1;
        }
        std::fprintf(stderr,
                     "cpu_kernels: WARNING: writing %s from a %s build "
                     "(--force)\n",
                     base.c_str(), CL_BENCH_BUILD_TYPE);
    }

    benchmark::AddCustomContext("cl_build_type", CL_BENCH_BUILD_TYPE);
    benchmark::AddCustomContext(
        "cl_simd_default",
        cl::simdBackendName(cl::activeSimdBackend()));

    int bench_argc = static_cast<int>(args.size()) - 1;
    benchmark::Initialize(&bench_argc, args.data());
    if (benchmark::ReportUnrecognizedArguments(bench_argc, args.data()))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}

/**
 * @file
 * Google-benchmark microbenchmarks of the scalar/vector kernels that
 * calibrate the CPU baseline (Sec 8): modular multiplication, NTTs
 * across sizes, changeRNSBase MACs, and the KSHGen expansion
 * (Keccak + rejection sampling).
 */

#include <benchmark/benchmark.h>

#include "poly/rnspoly.h"
#include "rns/baseconv.h"
#include "rns/ntt.h"
#include "rns/primes.h"
#include "util/prng.h"
#include "util/threadpool.h"

namespace {

using namespace cl;

void
BM_ModMul(benchmark::State &state)
{
    const std::size_t n = 1 << 14;
    const u64 q = generateNttPrimes(28, n, 1)[0];
    std::vector<u64> a(n), b(n);
    FastRng rng(1);
    for (std::size_t i = 0; i < n; ++i) {
        a[i] = rng.nextBelow(q);
        b[i] = rng.nextBelow(q);
    }
    for (auto _ : state) {
        u64 acc = 0;
        for (std::size_t i = 0; i < n; ++i)
            acc ^= mulMod(a[i], b[i], q);
        benchmark::DoNotOptimize(acc);
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ModMul);

void
BM_ShoupMac(benchmark::State &state)
{
    const std::size_t n = 1 << 14;
    const u64 q = generateNttPrimes(28, n, 1)[0];
    std::vector<u64> x(n), acc(n, 0);
    FastRng rng(2);
    for (auto &v : x)
        v = rng.nextBelow(q);
    const ShoupMul c(987654321 % q, q);
    for (auto _ : state) {
        for (std::size_t i = 0; i < n; ++i)
            acc[i] = addMod(acc[i], c.mul(x[i], q), q);
        benchmark::DoNotOptimize(acc.data());
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ShoupMac);

void
BM_Ntt(benchmark::State &state)
{
    const std::size_t n = std::size_t{1} << state.range(0);
    const u64 q = generateNttPrimes(28, n, 1)[0];
    NttTables tables(n, q);
    std::vector<u64> a(n);
    FastRng rng(3);
    for (auto &v : a)
        v = rng.nextBelow(q);
    for (auto _ : state) {
        tables.forward(a.data());
        benchmark::DoNotOptimize(a.data());
    }
    state.SetItemsProcessed(state.iterations() * n / 2 *
                            log2Exact(n)); // butterflies
}
BENCHMARK(BM_Ntt)->Arg(12)->Arg(14)->Arg(16);

void
BM_Intt(benchmark::State &state)
{
    const std::size_t n = std::size_t{1} << state.range(0);
    const u64 q = generateNttPrimes(28, n, 1)[0];
    NttTables tables(n, q);
    std::vector<u64> a(n);
    FastRng rng(4);
    for (auto &v : a)
        v = rng.nextBelow(q);
    for (auto _ : state) {
        tables.inverse(a.data());
        benchmark::DoNotOptimize(a.data());
    }
    state.SetItemsProcessed(state.iterations() * n / 2 * log2Exact(n));
}
BENCHMARK(BM_Intt)->Arg(12)->Arg(16);

void
BM_NttBatch(benchmark::State &state)
{
    // The tier-1 hot loop: forward NTT over a full RNS polynomial
    // (16 towers of N=2^16), swept across worker counts. Towers are
    // independent across moduli, so this is the tower-parallelism the
    // execution layer (and CraterLake's lanes) exploit.
    const unsigned nthreads = static_cast<unsigned>(state.range(0));
    const std::size_t n = std::size_t{1} << 16;
    const std::size_t towers = 16;
    ThreadPool::setGlobalThreads(nthreads);

    auto primes = generateNttPrimes(28, n, towers);
    RnsChain chain(n, primes);
    std::vector<unsigned> idx;
    for (unsigned i = 0; i < towers; ++i)
        idx.push_back(i);
    RnsPoly p(chain, idx, false);
    FastRng rng(6);
    for (std::size_t t = 0; t < towers; ++t) {
        for (auto &v : p.residue(t))
            v = rng.nextBelow(p.modulus(t));
    }

    for (auto _ : state) {
        // One forward+inverse round trip per iteration keeps the
        // input valid without a copy inside the timed region.
        p.toNtt();
        p.toCoeff();
        benchmark::DoNotOptimize(p.data().data());
    }
    state.SetItemsProcessed(state.iterations() * towers * n *
                            log2Exact(n)); // butterflies, fwd+inv
    state.counters["workers"] = nthreads;
    ThreadPool::setGlobalThreads(1);
}
BENCHMARK(BM_NttBatch)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void
BM_KeySwitchInnerParallel(benchmark::State &state)
{
    // changeRNSBase at keyswitch shape (8 -> 8 towers) across worker
    // counts; the MAC loops fan out per destination tower.
    const unsigned nthreads = static_cast<unsigned>(state.range(0));
    const std::size_t n = 1 << 14;
    const unsigned ls = 8;
    ThreadPool::setGlobalThreads(nthreads);
    auto primes = generateNttPrimes(28, n, 2 * ls);
    RnsChain chain(n, primes);
    std::vector<unsigned> src, dst;
    for (unsigned i = 0; i < ls; ++i) {
        src.push_back(i);
        dst.push_back(ls + i);
    }
    BaseConverter conv(chain, src, dst);
    std::vector<std::vector<u64>> in(ls, std::vector<u64>(n));
    FastRng rng(7);
    for (auto &res : in) {
        for (auto &v : res)
            v = rng.nextBelow(primes[0]);
    }
    std::vector<std::vector<u64>> out;
    for (auto _ : state) {
        conv.convert(in, out);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(state.iterations() * n * ls * ls);
    state.counters["workers"] = nthreads;
    ThreadPool::setGlobalThreads(1);
}
BENCHMARK(BM_KeySwitchInnerParallel)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void
BM_ChangeRnsBase(benchmark::State &state)
{
    const std::size_t n = 1 << 12;
    const unsigned ls = static_cast<unsigned>(state.range(0));
    auto primes = generateNttPrimes(28, n, 2 * ls);
    RnsChain chain(n, primes);
    std::vector<unsigned> src, dst;
    for (unsigned i = 0; i < ls; ++i) {
        src.push_back(i);
        dst.push_back(ls + i);
    }
    BaseConverter conv(chain, src, dst);
    std::vector<std::vector<u64>> in(ls, std::vector<u64>(n));
    FastRng rng(5);
    for (auto &res : in) {
        for (auto &v : res)
            v = rng.nextBelow(primes[0]);
    }
    std::vector<std::vector<u64>> out;
    for (auto _ : state) {
        conv.convert(in, out);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(state.iterations() * n * ls * ls); // MACs
}
BENCHMARK(BM_ChangeRnsBase)->Arg(4)->Arg(8)->Arg(16);

void
BM_KshGenExpansion(benchmark::State &state)
{
    // Seeded expansion of one residue polynomial, as the KSHGen unit
    // does on the fly (Sec 5.2).
    const std::size_t n = 1 << 14;
    const u64 q = generateNttPrimes(28, n, 1)[0];
    std::vector<u64> out(n);
    std::uint64_t domain = 0;
    for (auto _ : state) {
        RejectionSampler sampler(42, ++domain, q);
        sampler.fill(out.data(), n);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_KshGenExpansion);

void
BM_KeccakF1600(benchmark::State &state)
{
    std::array<std::uint64_t, 25> st{};
    st[0] = 1;
    for (auto _ : state) {
        keccakF1600(st);
        benchmark::DoNotOptimize(st.data());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_KeccakF1600);

} // namespace

BENCHMARK_MAIN();

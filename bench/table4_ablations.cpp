/**
 * @file
 * Reproduces Table 4: speedups of CraterLake over configurations
 * without the KSHGen, without the CRB + vector chaining, and with the
 * crossbar network / residue-polynomial tiling instead of the fixed
 * permutation network.
 */

#include <cmath>
#include <cstdio>

#include "core/craterlake.h"
#include "util/table.h"
#include "workloads/benchmarks.h"

namespace {

struct PaperRow
{
    double kshgen, crb, network;
};

const PaperRow paperRows[8] = {
    {2.0, 20.0, 1.7},  // ResNet-20
    {1.3, 8.8, 1.2},   // LogReg
    {2.5, 34.5, 1.3},  // LSTM
    {2.0, 27.4, 1.3},  // Packed bootstrapping
    {1.9, 3.7, 1.0},   // Unpacked bootstrapping
    {1.0, 3.7, 2.0},   // CIFAR
    {1.1, 1.3, 1.5},   // MNIST UW
    {1.1, 1.0, 1.3},   // MNIST EW
};

} // namespace

int
main()
{
    using namespace cl;

    std::printf("=== Table 4: speedups over ablated configurations ===\n");

    Accelerator base(ChipConfig::craterLake());
    Accelerator no_kshgen(ChipConfig::noKshGen());
    Accelerator no_crb(ChipConfig::noCrbNoChain());
    Accelerator xbar(ChipConfig::crossbarNetwork());

    auto suite = benchmarkSuite(SecurityConfig::bits80());

    TextTable t({"Benchmark", "-KSHGen", "paper", "-CRB/chain", "paper",
                 "Crossbar net", "paper"});
    double gm[3][2] = {{1, 1}, {1, 1}, {1, 1}};
    int counts[2] = {0, 0};

    for (std::size_t i = 0; i < suite.size(); ++i) {
        const auto &bench = suite[i];
        const double t_base = base.execute(bench.prog).seconds();
        const double s_ksh =
            no_kshgen.execute(bench.prog).seconds() / t_base;
        const double s_crb = no_crb.execute(bench.prog).seconds() / t_base;
        const double s_net = xbar.execute(bench.prog).seconds() / t_base;

        const int cls = bench.deep ? 0 : 1;
        gm[0][cls] *= s_ksh;
        gm[1][cls] *= s_crb;
        gm[2][cls] *= s_net;
        ++counts[cls];

        t.addRow({bench.name, TextTable::speedup(s_ksh),
                  TextTable::speedup(paperRows[i].kshgen),
                  TextTable::speedup(s_crb),
                  TextTable::speedup(paperRows[i].crb),
                  TextTable::speedup(s_net),
                  TextTable::speedup(paperRows[i].network)});
        if (i == 3)
            t.addSeparator();
    }

    t.addSeparator();
    t.addRow({"deep gmean",
              TextTable::speedup(std::pow(gm[0][0], 1.0 / counts[0])),
              "1.9x",
              TextTable::speedup(std::pow(gm[1][0], 1.0 / counts[0])),
              "20.2x",
              TextTable::speedup(std::pow(gm[2][0], 1.0 / counts[0])),
              "1.3x"});
    t.addRow({"shallow gmean",
              TextTable::speedup(std::pow(gm[0][1], 1.0 / counts[1])),
              "1.2x",
              TextTable::speedup(std::pow(gm[1][1], 1.0 / counts[1])),
              "2.0x",
              TextTable::speedup(std::pow(gm[2][1], 1.0 / counts[1])),
              "1.4x"});
    t.print();
    std::printf("\nThe CRB + chaining ablation should dominate on deep "
                "benchmarks (the register-file port bottleneck of "
                "Sec 2.5/3).\n");
    return 0;
}

/**
 * @file
 * Shared entry point for the google-benchmark tools (cpu_kernels,
 * host_bootstrap, host_runtime): one guard implementation instead of
 * three drifting copies.
 *
 * The guard refuses to write checked-in benchmark tables
 * (BENCH_*.json) when either
 *   - this binary was compiled without -DCMAKE_BUILD_TYPE=Release
 *     (CL_BENCH_BUILD_TYPE, baked in per target), or
 *   - the google-benchmark *library* itself is a debug build. Distro
 *     packages (e.g. Debian's libbenchmark-dev) ship the library with
 *     NDEBUG unset; its per-iteration bookkeeping then runs assertion
 *     paths and the numbers silently poison before/after comparisons
 *     even when the application code is fully optimized. Build a
 *     Release copy via -DCL_BENCHMARK_SOURCE_DIR (CMakeLists.txt) to
 *     close the hole.
 *
 * `--force` overrides both checks for local experiments; the JSON
 * context is stamped either way (cl_build_type,
 * cl_library_build_type, cl_simd_default, cl_forced) so a forced
 * table is distinguishable after the fact.
 *
 * Internal header: only the bench tool translation units include it.
 */

#ifndef CL_BENCH_BENCH_MAIN_H
#define CL_BENCH_BENCH_MAIN_H

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "rns/simd/kernels.h"

#ifndef CL_BENCH_BUILD_TYPE
#define CL_BENCH_BUILD_TYPE "unknown"
#endif

namespace cl {
namespace bench {

/**
 * The build type the google-benchmark library reports about itself
 * ("release" or "debug"), recovered at runtime: render an empty
 * reporter context through JSONReporter into a string and parse the
 * "library_build_type" key the library stamps into every JSON header.
 * There is no API that exposes this directly, and a compile-time
 * check can't see how the library binary was built.
 */
inline std::string
libBuildType()
{
    std::ostringstream os;
    benchmark::JSONReporter rep;
    rep.SetOutputStream(&os);
    rep.SetErrorStream(&os);
    benchmark::BenchmarkReporter::Context ctx;
    rep.ReportContext(ctx);
    rep.Finalize();
    const std::string s = os.str();
    static const char kKey[] = "\"library_build_type\": \"";
    const auto pos = s.find(kKey);
    if (pos == std::string::npos)
        return "unknown";
    const auto start = pos + sizeof(kKey) - 1;
    const auto end = s.find('"', start);
    if (end == std::string::npos)
        return "unknown";
    return s.substr(start, end - start);
}

inline int
clBenchMain(const char *tool, int argc, char **argv)
{
    bool force = false;
    std::string out_path;
    std::vector<char *> args;
    args.reserve(static_cast<std::size_t>(argc) + 1);
    for (int i = 0; i < argc; ++i) {
        if (std::strcmp(argv[i], "--force") == 0) {
            force = true;
            continue;
        }
        constexpr const char kOut[] = "--benchmark_out=";
        if (std::strncmp(argv[i], kOut, sizeof(kOut) - 1) == 0)
            out_path = argv[i] + sizeof(kOut) - 1;
        args.push_back(argv[i]);
    }
    args.push_back(nullptr);

    const auto slash = out_path.find_last_of('/');
    const std::string base =
        slash == std::string::npos ? out_path : out_path.substr(slash + 1);
    const bool is_bench_table =
        base.rfind("BENCH_", 0) == 0 && base.size() > 5 &&
        base.compare(base.size() - 5, 5, ".json") == 0;
    const bool release = std::strcmp(CL_BENCH_BUILD_TYPE, "Release") == 0;
    const std::string lib_type = libBuildType();
    const bool lib_release = lib_type == "release";

    if (is_bench_table && !(release && lib_release)) {
        const char *what;
        const char *detail;
        if (!release) {
            what = "a non-Release build";
            detail = CL_BENCH_BUILD_TYPE;
        } else {
            what = "a debug google-benchmark library";
            detail = lib_type.c_str();
        }
        if (!force) {
            std::fprintf(
                stderr,
                "%s: refusing to write %s from %s (%s); checked-in "
                "BENCH_*.json tables must come from "
                "-DCMAKE_BUILD_TYPE=Release with a release benchmark "
                "library (see -DCL_BENCHMARK_SOURCE_DIR); pass --force "
                "to override\n",
                tool, base.c_str(), what, detail);
            return 1;
        }
        std::fprintf(stderr,
                     "%s: WARNING: writing %s from %s (%s) (--force)\n",
                     tool, base.c_str(), what, detail);
    }

    benchmark::AddCustomContext("cl_build_type", CL_BENCH_BUILD_TYPE);
    benchmark::AddCustomContext("cl_library_build_type", lib_type);
    benchmark::AddCustomContext(
        "cl_simd_default", cl::simdBackendName(cl::activeSimdBackend()));
    if (force)
        benchmark::AddCustomContext("cl_forced", "true");

    int bench_argc = static_cast<int>(args.size()) - 1;
    benchmark::Initialize(&bench_argc, args.data());
    if (benchmark::ReportUnrecognizedArguments(bench_argc, args.data()))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}

} // namespace bench
} // namespace cl

#endif // CL_BENCH_BENCH_MAIN_H

/**
 * @file
 * Reproduces Fig 11: performance of the deep benchmarks as the
 * register file grows from 100 MB to 350 MB, normalized to the
 * default 256 MB. Shallow benchmarks are insensitive; deep ones
 * suffer from small register files (up to 5.5x in the paper).
 */

#include <cstdio>
#include <vector>

#include "core/craterlake.h"
#include "util/table.h"
#include "workloads/benchmarks.h"

int
main()
{
    using namespace cl;

    std::printf("=== Fig 11: speedup vs on-chip storage ===\n\n");

    const std::vector<unsigned> sizes = {100, 150, 200, 256, 300, 350};

    std::vector<NamedProgram> progs;
    const SecurityConfig sec = SecurityConfig::bits80();
    progs.push_back({"ResNet-20", resnet20(sec), true});
    progs.push_back({"LogReg", logisticRegression(sec), true});
    progs.push_back({"LSTM", lstm(sec), true});
    progs.push_back({"P Bstrap", packedBootstrapping(sec), true});
    progs.push_back({"Shallow (CIFAR)", lolaCifar(), false});

    std::vector<std::string> header = {"RF size (MB)"};
    for (const auto &p : progs)
        header.push_back(p.name);
    TextTable t(header);

    // Baseline times at 256 MB.
    std::vector<double> base;
    for (const auto &p : progs) {
        Accelerator a(ChipConfig::withRfMB(256));
        base.push_back(a.execute(p.prog).seconds());
    }

    for (unsigned mb : sizes) {
        Accelerator a(ChipConfig::withRfMB(mb));
        std::vector<std::string> row = {std::to_string(mb)};
        for (std::size_t i = 0; i < progs.size(); ++i) {
            const double s = a.execute(progs[i].prog).seconds();
            row.push_back(TextTable::speedup(base[i] / s));
        }
        t.addRow(row);
    }
    t.print();
    std::printf("\nValues are speedups relative to the default 256 MB "
                "register file. Paper: deep benchmarks slow down by up "
                "to 5.5x below 256 MB; only packed bootstrapping gains "
                "past 256 MB (up to 1.5x at 300 MB); shallow benchmarks "
                "are insensitive.\n");
    return 0;
}

/**
 * @file
 * Host runtime benchmarks: inter-op parallelism (the task-graph
 * executor) and pooled allocation, serial vs graph execution across a
 * worker-count sweep —
 *
 *   BootstrapBatch:   a batch of independent bootstraps through
 *                     runTaskBatch (the multi-session refresh case);
 *   CoeffToSlotBatch: a batch of BSGS linear transforms, the
 *                     dominant non-EvalMod bootstrap stage;
 *   HostProgram:      two compiled Sec 8 workloads (LoLa-MNIST with
 *                     encrypted weights, packed bootstrapping)
 *                     executed end-to-end by HostRunner;
 *   PoolChurn:        the same HostRunner workload with the RnsPoly
 *                     pool on vs off, reporting per-run allocation
 *                     counts (hits/misses) alongside the time.
 *
 * The checked-in BENCH_runtime.json records these on the committing
 * host; the `cl_host_cpus` context field says how many cores that
 * host actually had — graph-over-serial speedups only materialize
 * when threads map to real cores (see EXPERIMENTS.md "Thread
 * scaling").
 */

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "ckks/bootstrap.h"
#include "poly/polypool.h"
#include "rns/simd/kernels.h"
#include "runtime/hostrun.h"
#include "workloads/benchmarks.h"

namespace {

using namespace cl;

/** Bootstrap-capable context (the demo's parameters) plus a small
 *  program context for HostRunner, built once. */
struct Host
{
    // logN=9 / L=20: bootstrapping.
    std::unique_ptr<CkksContext> bctx;
    std::unique_ptr<CkksEncoder> benc;
    std::unique_ptr<KeyGenerator> bkeygen;
    PublicKey bpk;
    std::unique_ptr<Bootstrapper> boot;
    std::vector<Ciphertext> exhausted; // level-1 inputs for the batch

    // logN=8 / L=4: compiled-workload projection.
    std::unique_ptr<CkksContext> pctx;
    std::unique_ptr<CkksEncoder> penc;
    std::unique_ptr<KeyGenerator> pkeygen;
    HomProgram mnist;
    HomProgram packed;
    std::unique_ptr<HostRunner> mnistRunner;
    std::unique_ptr<HostRunner> packedRunner;

    Host()
    {
        CkksParams bp;
        bp.logN = 9;
        bp.l = 20;
        bp.alpha = 20;
        bp.firstModBits = 50;
        bp.scaleBits = 55;
        bp.specialBits = 55;
        bp.secretHamming = 16;
        bctx = std::make_unique<CkksContext>(bp);
        benc = std::make_unique<CkksEncoder>(*bctx);
        bkeygen = std::make_unique<KeyGenerator>(*bctx);
        bpk = bkeygen->genPublicKey();
        boot = std::make_unique<Bootstrapper>(*bctx, *benc, *bkeygen);

        const double app_scale = 1099511627776.0; // 2^40
        for (std::size_t i = 0; i < 4; ++i) {
            FastRng rng(10 + i);
            std::vector<Complex> v(bctx->slots());
            for (auto &z : v)
                z = Complex(rng.nextDouble() - 0.5, 0);
            Encryptor enc(*bctx, bpk, 100 + i);
            exhausted.push_back(
                enc.encrypt(benc->encode(v, app_scale, 1), app_scale));
        }

        CkksParams pp;
        pp.logN = 8;
        pp.l = 4;
        pp.alpha = 4;
        pctx = std::make_unique<CkksContext>(pp);
        penc = std::make_unique<CkksEncoder>(*pctx);
        pkeygen = std::make_unique<KeyGenerator>(*pctx);
        mnist = lolaMnist(true);
        packed = packedBootstrapping();
        mnistRunner = std::make_unique<HostRunner>(*pctx, *penc,
                                                   *pkeygen, mnist);
        packedRunner = std::make_unique<HostRunner>(*pctx, *penc,
                                                    *pkeygen, packed);
    }
};

Host &
host()
{
    static Host h;
    return h;
}

/** Sweep label: range(0) = 0 serial / 1 graph, range(1) = workers. */
void
setModeLabel(benchmark::State &state)
{
    if (state.range(0) == 0)
        state.SetLabel("serial");
    else
        state.SetLabel("graph_t" + std::to_string(state.range(1)));
}

ExecMode
modeOf(benchmark::State &state)
{
    return state.range(0) == 0 ? ExecMode::Serial : ExecMode::Graph;
}

void
BM_BootstrapBatch(benchmark::State &state)
{
    Host &h = host();
    setModeLabel(state);
    const ExecMode mode = modeOf(state);
    const unsigned threads = static_cast<unsigned>(state.range(1));
    std::vector<Ciphertext> out(h.exhausted.size());
    // Prime the diagonal caches outside the timed region.
    benchmark::DoNotOptimize(h.boot->bootstrap(h.exhausted[0]));
    for (auto _ : state) {
        std::vector<std::function<void()>> jobs;
        for (std::size_t i = 0; i < h.exhausted.size(); ++i)
            jobs.push_back([&, i] {
                out[i] = h.boot->bootstrap(h.exhausted[i]);
            });
        runTaskBatch(jobs, mode, threads);
        benchmark::DoNotOptimize(out[0].c0.data().data());
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<long>(h.exhausted.size()));
}
BENCHMARK(BM_BootstrapBatch)
    ->Args({0, 1})->Args({1, 1})->Args({1, 2})->Args({1, 4})->Args({1, 8})
    ->Unit(benchmark::kMillisecond);

void
BM_CoeffToSlotBatch(benchmark::State &state)
{
    Host &h = host();
    setModeLabel(state);
    const ExecMode mode = modeOf(state);
    const unsigned threads = static_cast<unsigned>(state.range(1));
    // Transform inputs live at the top of the chain.
    std::vector<Ciphertext> in;
    for (std::size_t i = 0; i < 4; ++i) {
        FastRng rng(20 + i);
        std::vector<Complex> v(h.bctx->slots());
        for (auto &z : v)
            z = Complex(rng.nextDouble() - 0.5, rng.nextDouble() - 0.5);
        Encryptor enc(*h.bctx, h.bpk, 200 + i);
        in.push_back(enc.encryptValues(*h.benc, v,
                                       h.bctx->params().scale(),
                                       h.bctx->l()));
    }
    const LinearTransformMode lt = LinearTransformMode::HoistedLazy;
    std::vector<Ciphertext> out(in.size());
    benchmark::DoNotOptimize(h.boot->applyCoeffToSlot(in[0], lt));
    for (auto _ : state) {
        std::vector<std::function<void()>> jobs;
        for (std::size_t i = 0; i < in.size(); ++i)
            jobs.push_back([&, i] {
                out[i] = h.boot->applyCoeffToSlot(in[i], lt);
            });
        runTaskBatch(jobs, mode, threads);
        benchmark::DoNotOptimize(out[0].c0.data().data());
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<long>(in.size()));
}
BENCHMARK(BM_CoeffToSlotBatch)
    ->Args({0, 1})->Args({1, 1})->Args({1, 2})->Args({1, 4})->Args({1, 8})
    ->Unit(benchmark::kMillisecond);

/** range(2) picks the workload: 0 = LoLa-MNIST (enc), 1 = packed
 *  bootstrapping. */
void
BM_HostProgram(benchmark::State &state)
{
    Host &h = host();
    const bool packed = state.range(2) != 0;
    const HomProgram &prog = packed ? h.packed : h.mnist;
    const HostRunner &runner =
        packed ? *h.packedRunner : *h.mnistRunner;
    HostRunOptions opts;
    opts.mode = modeOf(state);
    opts.threads = static_cast<unsigned>(state.range(1));
    const std::string sweep =
        state.range(0) == 0
            ? "serial"
            : "graph_t" + std::to_string(state.range(1));
    state.SetLabel(std::string(packed ? "packed_boot/" : "lola_mnist/") +
                   sweep);
    std::uint64_t digest = 0;
    for (auto _ : state) {
        digest = runner.run(prog, opts).digest;
        benchmark::DoNotOptimize(digest);
    }
    state.counters["ops"] = static_cast<double>(prog.ops.size());
}
BENCHMARK(BM_HostProgram)
    ->Args({0, 1, 0})->Args({1, 1, 0})->Args({1, 2, 0})->Args({1, 4, 0})
    ->Args({1, 8, 0})
    ->Args({0, 1, 1})->Args({1, 1, 1})->Args({1, 2, 1})->Args({1, 4, 1})
    ->Args({1, 8, 1})
    ->Unit(benchmark::kMillisecond);

/** Pool on/off churn: same graph-mode workload, allocation counters
 *  from the pool's own stats (per run of the program). */
void
BM_PoolChurn(benchmark::State &state)
{
    Host &h = host();
    const bool pooled = state.range(0) != 0;
    state.SetLabel(pooled ? "pool_on" : "pool_off");
    const bool saved = polyPoolEnabled();
    polyPoolSetEnabled(pooled);
    HostRunOptions opts;
    opts.mode = ExecMode::Graph;
    opts.threads = 4;
    polyPoolResetStats();
    std::uint64_t digest = 0;
    for (auto _ : state) {
        digest = h.packedRunner->run(h.packed, opts).digest;
        benchmark::DoNotOptimize(digest);
    }
    const PolyPoolStats s = polyPoolStats();
    const double runs = static_cast<double>(state.iterations());
    state.counters["allocs_per_run"] =
        static_cast<double>(s.allocs) / runs;
    state.counters["pool_hits_per_run"] =
        static_cast<double>(s.hits) / runs;
    state.counters["heap_allocs_per_run"] =
        static_cast<double>(s.misses) / runs;
    polyPoolSetEnabled(saved);
    polyPoolTrim();
}
BENCHMARK(BM_PoolChurn)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

} // namespace

#include "bench_main.h"

int
main(int argc, char **argv)
{
    benchmark::AddCustomContext(
        "cl_host_cpus",
        std::to_string(std::thread::hardware_concurrency()));
    return cl::bench::clBenchMain("host_runtime", argc, argv);
}

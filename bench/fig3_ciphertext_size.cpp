/**
 * @file
 * Reproduces Fig 3: computation cost per homomorphic multiply as a
 * function of the maximum ciphertext size, for a serial
 * multiplication chain (worst case for bootstrapping amortization)
 * and a 100-wide multiply graph (best case). The paper's claim: the
 * optimum lies in a narrow 20-26 MB band for both extremes.
 */

#include <cstdio>
#include <vector>

#include "baseline/cpumodel.h"
#include "util/table.h"
#include "workloads/benchmarks.h"

namespace {

double
ciphertextMB(unsigned l_max)
{
    return 2.0 * l_max * 65536 * 3.5 / 1e6;
}

} // namespace

int
main()
{
    using namespace cl;

    std::printf("=== Fig 3: cost vs maximum ciphertext size ===\n\n");

    const std::vector<unsigned> lmaxes = {38, 42, 46, 50, 54, 58, 64,
                                          72, 80};

    struct Point
    {
        double mb;
        double cost;
    };

    auto sweep = [&](bool wide) {
        std::vector<Point> pts;
        for (unsigned lm : lmaxes) {
            const unsigned depth = 30;
            const unsigned width = wide ? 100 : 1;
            HomProgram p = wide ? wideMultiplyGraph(lm, depth, width)
                                : multiplicationChain(lm, depth);
            const double mults = CpuModel::scalarMultiplies(p);
            const double hom_mults =
                static_cast<double>(depth) * width;
            pts.push_back({ciphertextMB(lm), mults / hom_mults});
        }
        return pts;
    };

    for (bool wide : {false, true}) {
        auto pts = sweep(wide);
        std::size_t best = 0;
        for (std::size_t i = 1; i < pts.size(); ++i) {
            if (pts[i].cost < pts[best].cost)
                best = i;
        }
        std::printf("%s:\n", wide ? "Wide multiply-add graph "
                                    "(100 muls/level)"
                                  : "Multiplication chain (serial)");
        TextTable t({"Max ct size (MB)", "Scalar mults / hom-mult",
                     "optimum"});
        for (std::size_t i = 0; i < pts.size(); ++i) {
            char buf[32];
            std::snprintf(buf, sizeof(buf), "%.2e", pts[i].cost);
            t.addRow({TextTable::num(pts[i].mb, 1), buf,
                      i == best ? "  <== optimal" : ""});
        }
        t.print();
        std::printf("Optimum at %.1f MB (paper: %s)\n\n", pts[best].mb,
                    wide ? "~20 MB" : "~26 MB");
    }

    std::printf("Paper claim: both optima fall in the 20-26 MB band — "
                "the sweet spot CraterLake sizes its hardware for, and "
                "beyond what prior accelerators (~2 MB) support.\n");
    return 0;
}

/**
 * @file
 * Reproduces Table 1: operation breakdown of boosted vs standard
 * keyswitching, as formulas in L and evaluated at L=60, cross-checked
 * against the operation counts measured from our functional CKKS
 * implementation's OpCounter.
 */

#include <cstdio>

#include "baseline/cpumodel.h"
#include "util/table.h"

int
main()
{
    using namespace cl;

    std::printf("=== Table 1: boosted vs standard keyswitching ===\n\n");

    const unsigned l = 60;
    const std::size_t n = 1; // per-coefficient counts

    const KswOpCount boosted = keyswitchCost(l, 1, n);
    const KswOpCount standard = keyswitchCost(l, l, n);

    TextTable t({"Op", "Boosted (CRB + other)", "Paper",
                 "Standard", "Paper"});
    auto fmt = [](std::uint64_t crb, std::uint64_t other) {
        return std::to_string(crb) + " + " + std::to_string(other);
    };
    t.addRow({"Mult", fmt(boosted.macVecs, boosted.mulVecs),
              "10800 + 240",
              std::to_string(standard.macVecs + standard.mulVecs),
              "7200"});
    t.addRow({"Add", fmt(boosted.macVecs, boosted.addVecs),
              "10800 + 120",
              std::to_string(standard.macVecs + standard.addVecs),
              "7200"});
    t.addRow({"NTT", std::to_string(boosted.ntts), "360",
              std::to_string(standard.ntts), "3600"});
    t.print();

    std::printf("\nFormulas (residue-polynomial counts at level L, "
                "1-digit):\n");
    std::printf("  boosted: mult = 3L^2 + O(L), add = 3L^2 + O(L), "
                "NTT = 6L\n");
    std::printf("  standard: mult ~ 2L^2, add ~ 2L^2, NTT ~ L^2\n");

    // Cross-check against a small-L exact evaluation and the paper's
    // asymptotic claims.
    bool ok = true;
    for (unsigned lv : {8u, 16u, 32u, 60u}) {
        const KswOpCount b = keyswitchCost(lv, 1, 1);
        const KswOpCount s = keyswitchCost(lv, lv, 1);
        const double b_ntt_expect = 6.0 * lv;
        const double s_ntt_expect = static_cast<double>(lv) * lv;
        ok &= std::abs((double)b.ntts - b_ntt_expect) <= 2.0 * lv;
        ok &= s.ntts >= s_ntt_expect; // L^2 + mod-down overhead
        ok &= b.macVecs == 3ull * lv * lv;
    }
    std::printf("\nFormula cross-check at L in {8,16,32,60}: %s\n",
                ok ? "PASS" : "FAIL");
    return ok ? 0 : 1;
}

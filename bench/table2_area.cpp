/**
 * @file
 * Reproduces Table 2: area breakdown of CraterLake by component
 * (14/12 nm), plus the F1+ comparison point (Sec 8: 636 mm^2, 16x
 * larger network) and the 5 nm scaling note (Sec 7).
 */

#include <cstdio>

#include "hw/area.h"
#include "util/table.h"

int
main()
{
    using namespace cl;

    std::printf("=== Table 2: CraterLake area breakdown (14/12 nm) ===\n");

    const ChipConfig cfg = ChipConfig::craterLake();
    const AreaBreakdown a = areaModel(cfg);

    TextTable t({"Component", "Area [mm^2]", "Paper"});
    t.addRow({"CRB FU", TextTable::num(a.crb, 1), "158.8"});
    t.addRow({"NTT FU (x2)", TextTable::num(a.ntt, 1), "28.1"});
    t.addRow({"Automorphism FU", TextTable::num(a.automorphism, 1),
              "9.0"});
    t.addRow({"KSHGen FU", TextTable::num(a.kshGen, 1), "3.3"});
    t.addRow({"Multiply FU (x5)", TextTable::num(a.multiply, 1), "2.2"});
    t.addRow({"Add FU (x5)", TextTable::num(a.add, 1), "0.8"});
    t.addSeparator();
    t.addRow({"Total FUs", TextTable::num(a.totalFus(), 1), "240.5"});
    t.addRow({"Register file (256MB)", TextTable::num(a.registerFile, 1),
              "192.0"});
    t.addRow({"On-chip interconnect", TextTable::num(a.interconnect, 1),
              "10.0"});
    t.addRow({"Mem PHYs (2x HBM2E)", TextTable::num(a.memPhy, 1),
              "29.8"});
    t.addSeparator();
    t.addRow({"Total CraterLake", TextTable::num(a.total(), 1), "472.3"});
    t.print();

    // F1+ comparison (Sec 8).
    const ChipConfig f1 = ChipConfig::f1plus();
    const AreaBreakdown af = areaModel(f1);
    std::printf("\nF1+ network area: %.1f mm^2 (%.1fx CraterLake's fixed "
                "permutation network; paper: 160 mm^2, 16x)\n",
                af.interconnect, af.interconnect / a.interconnect);

    // 128K variant (Sec 9.4): ~27 mm^2 extra.
    const AreaBreakdown a128 = areaModel(ChipConfig::craterLake128k());
    std::printf("N=128K variant adds %.1f mm^2 (paper: 27.4 mm^2, <6%% "
                "of chip)\n",
                a128.total() - a.total());

    std::printf("5 nm projection: %.0f mm^2 (paper: 157 mm^2)\n",
                a.total() * areaScale5nm);

    const bool ok = a.total() > 420 && a.total() < 520;
    std::printf("\nTotal within 10%% of paper: %s\n", ok ? "PASS" : "FAIL");
    return ok ? 0 : 1;
}

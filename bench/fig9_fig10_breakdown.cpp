/**
 * @file
 * Reproduces Fig 9 (FU and memory-bandwidth utilization), Fig 10a
 * (off-chip traffic breakdown) and Fig 10b (power breakdown) for all
 * eight benchmarks on the CraterLake configuration.
 */

#include <cstdio>

#include "core/craterlake.h"
#include "util/table.h"
#include "workloads/benchmarks.h"

namespace {

struct PaperRef
{
    double trafficGB; // Fig 10a totals
    double powerW;    // Fig 10b totals
};

const PaperRef paperRefs[8] = {
    {73, 279},    // ResNet-20
    {69, 212},    // LogReg
    {62, 317},    // LSTM
    {2, 248},     // Packed bootstrapping
    {0.060, 122}, // Unpacked bootstrapping
    {8, 218},     // CIFAR
    {0.055, 81},  // MNIST UW
    {0.122, 98},  // MNIST EW
};

} // namespace

int
main()
{
    using namespace cl;

    std::printf("=== Fig 9 / Fig 10: utilization, traffic and power ===\n");
    Accelerator accel(ChipConfig::craterLake());
    const EnergyParams ep;
    auto suite = benchmarkSuite(SecurityConfig::bits80());

    TextTable t({"Benchmark", "FU util", "BW util", "Traffic", "paper",
                 "KSH%", "In%", "LdInt%", "StInt%", "Power(W)", "paper"});
    for (std::size_t i = 0; i < suite.size(); ++i) {
        const auto &bench = suite[i];
        const RunResult r = accel.execute(bench.prog);
        const SimStats &s = r.stats;
        const double total =
            static_cast<double>(std::max<std::uint64_t>(
                1, s.totalTrafficWords()));
        const double gb =
            total * r.config.wordBytes() / 1e9;
        auto pct = [&](std::uint64_t w) {
            return TextTable::num(100.0 * w / total, 0) + "%";
        };
        t.addRow({bench.name,
                  TextTable::num(100 * s.fuUtilization(r.config), 0) + "%",
                  TextTable::num(100 * s.memUtilization(), 0) + "%",
                  TextTable::num(gb, gb < 1 ? 3 : 1) + "GB",
                  TextTable::num(paperRefs[i].trafficGB,
                                 paperRefs[i].trafficGB < 1 ? 3 : 0) + "GB",
                  pct(s.kshLoadWords),
                  pct(s.inputLoadWords + s.plainLoadWords),
                  pct(s.intermLoadWords), pct(s.intermStoreWords),
                  TextTable::num(s.avgPowerWatts(r.config, ep), 0),
                  TextTable::num(paperRefs[i].powerW, 0)});
    }
    t.print();

    // Fig 10b: power composition for the deep benchmarks.
    std::printf("\nPower breakdown (Fig 10b):\n");
    TextTable p({"Benchmark", "FUs", "RegFile", "NoC", "HBM", "Static"});
    for (std::size_t i = 0; i < suite.size(); ++i) {
        const RunResult r = accel.execute(suite[i].prog);
        const EnergyBreakdown e = r.stats.energy(r.config, ep);
        const double total = e.total();
        auto pct = [&](double j) {
            return TextTable::num(100.0 * j / total, 0) + "%";
        };
        p.addRow({suite[i].name, pct(e.funcUnits), pct(e.registerFile),
                  pct(e.network), pct(e.hbm), pct(e.staticEnergy)});
    }
    p.print();
    std::printf("\nPaper: FUs dominate power (50-80%%); power within a "
                "320 W envelope; deep benchmarks have higher traffic.\n");
    return 0;
}

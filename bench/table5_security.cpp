/**
 * @file
 * Reproduces Table 5: performance of the four deep benchmarks at
 * 128-bit security (N=64K, more frequent bootstrapping, higher-digit
 * keyswitching) and 200-bit security (N=128K, normalized per
 * plaintext element).
 */

#include <cmath>
#include <cstdio>

#include "core/craterlake.h"
#include "util/table.h"
#include "workloads/benchmarks.h"

namespace {

struct PaperRow
{
    const char *name;
    double ms128, slow128, ms200, slow200;
};

const PaperRow paperRows[4] = {
    {"ResNet-20", 321.26, 1.29, 588.70, 2.36},
    {"Logistic Regression", 121.91, 1.02, 123.10, 1.03},
    {"LSTM", 223.56, 1.62, 596.16, 4.32},
    {"Packed Bootstrapping", 6.33, 1.62, 17.01, 4.35},
};

} // namespace

int
main()
{
    using namespace cl;

    std::printf("=== Table 5: performance vs target security level ===\n");

    Accelerator accel64(ChipConfig::craterLake());
    Accelerator accel128k(ChipConfig::craterLake128k());

    auto deep = [](const SecurityConfig &sec) {
        std::vector<NamedProgram> v;
        v.push_back({"ResNet-20", resnet20(sec), true});
        v.push_back({"Logistic Regression", logisticRegression(sec),
                     true});
        v.push_back({"LSTM", lstm(sec), true});
        v.push_back({"Packed Bootstrapping", packedBootstrapping(sec),
                     true});
        return v;
    };

    auto s80 = deep(SecurityConfig::bits80());
    auto s128 = deep(SecurityConfig::bits128());
    auto s200 = deep(SecurityConfig::bits200());

    TextTable t({"Benchmark", "128-bit (ms)", "paper", "vs 80-bit",
                 "paper", "200-bit (ms)", "paper", "vs 80-bit", "paper"});
    double gm128 = 1, gm200 = 1;
    for (std::size_t i = 0; i < s80.size(); ++i) {
        const double t80 = accel64.execute(s80[i].prog).milliseconds();
        const double t128 = accel64.execute(s128[i].prog).milliseconds();
        // N=128K doubles the slots, so performance is normalized per
        // element (Sec 9.4): halve the measured time.
        const double t200 =
            accel128k.execute(s200[i].prog).milliseconds() / 2.0;

        const double sl128 = t128 / t80;
        const double sl200 = t200 / t80;
        gm128 *= sl128;
        gm200 *= sl200;

        t.addRow({paperRows[i].name, TextTable::num(t128, 2),
                  TextTable::num(paperRows[i].ms128, 2),
                  TextTable::speedup(sl128),
                  TextTable::speedup(paperRows[i].slow128),
                  TextTable::num(t200, 2),
                  TextTable::num(paperRows[i].ms200, 2),
                  TextTable::speedup(sl200),
                  TextTable::speedup(paperRows[i].slow200)});
    }
    t.addSeparator();
    t.addRow({"gmean slowdown", "", "", TextTable::speedup(
                  std::pow(gm128, 0.25)), "1.36x", "", "",
              TextTable::speedup(std::pow(gm200, 0.25)), "2.60x"});
    t.print();
    std::printf("\nHigher security costs more (frequent bootstrapping, "
                "multi-digit hints, doubled N), but stays within small "
                "multiples of the 80-bit times.\n");
    return 0;
}

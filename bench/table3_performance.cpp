/**
 * @file
 * Reproduces Table 3: execution time of CraterLake, F1+, and a
 * 32-core CPU on the four deep and four shallow benchmarks, with the
 * paper's reported numbers side by side.
 */

#include <cmath>
#include <cstdio>
#include <vector>

#include "baseline/cpumodel.h"
#include "core/craterlake.h"
#include "util/table.h"
#include "workloads/benchmarks.h"

namespace {

struct PaperRow
{
    const char *name;
    double clMs;
    double f1Ms;
    double cpuMs;
};

// Table 3 of the paper.
const std::vector<PaperRow> paperRows = {
    {"ResNet-20", 249.45, 2693, 23.0 * 60e3},
    {"Logistic Regression", 119.52, 639, 356e3},
    {"LSTM", 138.00, 2573, 859e3},
    {"Packed Bootstrapping", 3.91, 58.3, 17.2e3},
    {"Unpacked Bootstrapping", 0.10, 0.21, 877},
    {"CIFAR Unencryp. Wghts.", 50.50, 94.1, 187e3},
    {"MNIST Unencryp. Wghts.", 0.14, 0.13, 561},
    {"MNIST Encryp. Wghts.", 0.24, 0.22, 1369},
};

} // namespace

int
main()
{
    using namespace cl;

    std::printf("=== Table 3: CraterLake vs F1+ vs CPU ===\n");
    std::printf("Calibrating CPU model on this host...\n");
    const CpuKernelRates rates = measureCpuKernels();
    std::printf("  modmul: %.2e/s  ntt-bfly: %.2e/s  mac: %.2e/s "
                "(single core)\n\n",
                rates.modmulPerSec, rates.nttButterflyPerSec,
                rates.macPerSec);
    const CpuModel cpu(rates);

    const SecurityConfig sec = SecurityConfig::bits80();
    Accelerator craterlake(ChipConfig::craterLake());
    Accelerator f1plus(ChipConfig::f1plus());

    TextTable t({"Benchmark", "CL (ms)", "paper", "F1+ (ms)", "paper",
                 "CPU (ms)", "paper", "vs F1+", "paper", "vs CPU",
                 "paper"});

    auto suite = benchmarkSuite(sec);
    // F1+ uses its own keyswitching algorithm selection.
    SecurityConfig sec_f1 = sec;
    sec_f1.policy = f1plusPolicy(sec.policy);
    auto suite_f1 = benchmarkSuite(sec_f1);

    double gm_deep_f1 = 1, gm_deep_cpu = 1;
    double gm_shallow_f1 = 1, gm_shallow_cpu = 1;
    int n_deep = 0, n_shallow = 0;

    for (std::size_t i = 0; i < suite.size(); ++i) {
        const auto &bench = suite[i];
        const auto &paper = paperRows[i];

        const RunResult cl_res = craterlake.execute(bench.prog);
        const RunResult f1_res = f1plus.execute(suite_f1[i].prog);
        const double cpu_s = cpu.run(bench.prog);

        const double cl_ms = cl_res.milliseconds();
        const double f1_ms = f1_res.milliseconds();
        const double cpu_ms = cpu_s * 1e3;
        const double vs_f1 = f1_ms / cl_ms;
        const double vs_cpu = cpu_ms / cl_ms;

        if (bench.deep) {
            gm_deep_f1 *= vs_f1;
            gm_deep_cpu *= vs_cpu;
            ++n_deep;
        } else {
            gm_shallow_f1 *= vs_f1;
            gm_shallow_cpu *= vs_cpu;
            ++n_shallow;
        }

        t.addRow({bench.name, TextTable::num(cl_ms, cl_ms < 1 ? 3 : 2),
                  TextTable::num(paper.clMs, paper.clMs < 1 ? 3 : 2),
                  TextTable::num(f1_ms, f1_ms < 1 ? 3 : 1),
                  TextTable::num(paper.f1Ms, paper.f1Ms < 1 ? 3 : 1),
                  TextTable::num(cpu_ms, 0), TextTable::num(paper.cpuMs, 0),
                  TextTable::speedup(vs_f1),
                  TextTable::speedup(paper.f1Ms / paper.clMs),
                  TextTable::speedup(vs_cpu),
                  TextTable::speedup(paper.cpuMs / paper.clMs)});
        if (i == 3)
            t.addSeparator();
    }

    t.addSeparator();
    t.addRow({"deep gmean", "", "", "", "", "", "",
              TextTable::speedup(std::pow(gm_deep_f1, 1.0 / n_deep)),
              "11.2x",
              TextTable::speedup(std::pow(gm_deep_cpu, 1.0 / n_deep)),
              "4611x"});
    t.addRow({"shallow gmean", "", "", "", "", "", "",
              TextTable::speedup(std::pow(gm_shallow_f1, 1.0 / n_shallow)),
              "1.34x",
              TextTable::speedup(std::pow(gm_shallow_cpu,
                                          1.0 / n_shallow)),
              "5220x"});
    t.print();
    std::printf("\n'paper' columns are Table 3 of the CraterLake paper; "
                "shapes (who wins, by what order) should match.\n");
    return 0;
}

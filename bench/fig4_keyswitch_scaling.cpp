/**
 * @file
 * Reproduces Fig 4: keyswitch-hint footprint and 28-bit multiply
 * count for standard vs boosted keyswitching, as a function of the
 * multiplicative budget L (N = 64K).
 */

#include <cstdio>

#include "baseline/cpumodel.h"
#include "util/table.h"

int
main()
{
    using namespace cl;

    std::printf("=== Fig 4: standard vs boosted keyswitching scaling "
                "===\n\n");

    const std::size_t n = 1ull << 16;
    const double word_bytes = 3.5;
    const double logn = 16;

    TextTable t({"L", "std footprint", "boosted", "std mults (1e9)",
                 "boosted"});
    double std60 = 0, boost60 = 0;
    for (unsigned l = 4; l <= 60; l += 8) {
        const unsigned lv = l == 60 ? 60 : l;
        const KswOpCount s = keyswitchCost(lv, lv, n); // standard
        const KswOpCount b = keyswitchCost(lv, 1, n);  // boosted 1-digit
        const double s_gb = s.kshWords * word_bytes / 1e9;
        const double b_gb = b.kshWords * word_bytes / 1e9;
        const double s_mults =
            (s.ntts * n * logn / 2 + (s.macVecs + s.mulVecs) * n) / 1e9;
        const double b_mults =
            (b.ntts * n * logn / 2 + (b.macVecs + b.mulVecs) * n) / 1e9;
        if (lv == 60) {
            std60 = s_gb;
            boost60 = b_gb;
        }
        t.addRow({std::to_string(lv),
                  s_gb >= 0.1 ? TextTable::num(s_gb, 2) + " GB"
                              : TextTable::num(s_gb * 1e3, 1) + " MB",
                  TextTable::num(b_gb * 1e3, 1) + " MB",
                  TextTable::num(s_mults, 2), TextTable::num(b_mults, 2)});
    }
    // Make sure L=60 is present.
    {
        const KswOpCount s = keyswitchCost(60, 60, n);
        const KswOpCount b = keyswitchCost(60, 1, n);
        std60 = s.kshWords * word_bytes / 1e9;
        boost60 = b.kshWords * word_bytes / 1e9;
    }
    t.print();

    std::printf("\nAt L=60: standard hint = %.2f GB (paper: 1.7 GB), "
                "boosted = %.1f MB (paper: 52.5 MB)\n",
                std60, boost60 * 1e3);
    const bool ok = std60 > 1.4 && std60 < 2.0 && boost60 * 1e3 > 45 &&
                    boost60 * 1e3 < 60;
    std::printf("Footprint check: %s\n", ok ? "PASS" : "FAIL");
    std::printf("\nBoth curves grow with L, but standard keyswitching's "
                "footprint and multiply count grow quadratically — the "
                "reason prior accelerators cannot scale to deep FHE "
                "(Sec 3).\n");
    return ok ? 0 : 1;
}

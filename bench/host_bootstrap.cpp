/**
 * @file
 * Host CKKS pipeline benchmarks: the BSGS linear transform (the
 * dominant non-EvalMod cost of bootstrapping) under five execution
 * strategies —
 *
 *   naive_fresh:  per-rotation keyswitch at the square 16x16 split,
 *                 diagonals re-encoded every call (the historical
 *                 baseline behavior);
 *   naive_cached: as above with cached diagonal plaintexts;
 *   hoisted:      one shared digit decompose for all baby rotations
 *                 (square split — eager mod-downs gain nothing from a
 *                 wider one);
 *   lazy_square:  shared decompose + extended-basis accumulation with
 *                 one mod-down per giant step, still at 16x16;
 *   lazy:         the default configuration — lazy accumulation at
 *                 the auto-widened 64x4 split, where deferred
 *                 mod-downs and hoisted babies pay off;
 *
 * plus the full bootstrap pipeline naive vs lazy. The checked-in
 * BENCH_host.json table must show >= 1.5x naive_fresh -> lazy on the
 * CoeffToSlot transform.
 */

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "ckks/bootstrap.h"
#include "rns/simd/kernels.h"

namespace {

using namespace cl;

/** Shared context/keys/bootstrappers: built once, reused by every
 *  benchmark (key generation dominates setup, not measurement). */
struct Host
{
    std::unique_ptr<CkksContext> ctx;
    std::unique_ptr<CkksEncoder> enc;
    std::unique_ptr<KeyGenerator> keygen;
    PublicKey pk;
    std::unique_ptr<Encryptor> encryptor;
    std::unique_ptr<Bootstrapper> cached;   // square split, cached
    std::unique_ptr<Bootstrapper> uncached; // square split, no cache
    std::unique_ptr<Bootstrapper> wide;     // default (auto) split
    Ciphertext top;    // fresh ciphertext at the top of the chain
    Ciphertext bottom; // exhausted ciphertext at level 1

    Host()
    {
        CkksParams p;
        p.logN = 9;
        p.l = 20;
        p.alpha = 20;
        p.firstModBits = 50;
        p.scaleBits = 55;
        p.specialBits = 55;
        p.secretHamming = 16;
        ctx = std::make_unique<CkksContext>(p);
        enc = std::make_unique<CkksEncoder>(*ctx);
        keygen = std::make_unique<KeyGenerator>(*ctx);
        pk = keygen->genPublicKey();
        encryptor = std::make_unique<Encryptor>(*ctx, pk);

        BootstrapParams bp;
        bp.ltBabySteps = 16; // historical square split
        bp.cacheDiagonals = true;
        cached = std::make_unique<Bootstrapper>(*ctx, *enc, *keygen, bp);
        bp.cacheDiagonals = false;
        uncached =
            std::make_unique<Bootstrapper>(*ctx, *enc, *keygen, bp);
        wide = std::make_unique<Bootstrapper>(*ctx, *enc, *keygen);

        FastRng rng(1);
        std::vector<Complex> v(ctx->slots());
        for (auto &z : v)
            z = Complex(rng.nextDouble() - 0.5, rng.nextDouble() - 0.5);
        const double app_scale = 1099511627776.0; // 2^40
        top = encryptor->encryptValues(*enc, v, ctx->params().scale(),
                                       ctx->l());
        bottom =
            encryptor->encrypt(enc->encode(v, app_scale, 1), app_scale);
    }
};

Host &
host()
{
    static Host h;
    return h;
}

/** Selects fused/composed pipelines for one run per the benchmark
 *  arg, restoring the previous gate on exit. */
class FusionArg
{
  public:
    FusionArg(benchmark::State &state, int arg_index)
        : prev_(fusionEnabled()),
          fused_(state.range(arg_index) != 0)
    {
        setFusionEnabled(fused_);
    }
    ~FusionArg() { setFusionEnabled(prev_); }

    bool fused() const { return fused_; }

  private:
    bool prev_;
    bool fused_;
};

/** Arg 0: 0 = naive_fresh, 1 = naive_cached, 2 = hoisted,
 *  3 = lazy_square, 4 = lazy (default wide split).
 *  Arg 1: fused kernel pipelines (CL_FUSE) on/off; the composed leg
 *  is benchmarked only for the headline lazy variant. */
void
BM_CoeffToSlot(benchmark::State &state)
{
    Host &h = host();
    const int variant = static_cast<int>(state.range(0));
    FusionArg fuse(state, 1);
    const Bootstrapper &boot = variant == 0   ? *h.uncached
                               : variant == 4 ? *h.wide
                                              : *h.cached;
    const LinearTransformMode mode =
        variant <= 1 ? LinearTransformMode::Naive
        : variant == 2 ? LinearTransformMode::HoistedEager
                       : LinearTransformMode::HoistedLazy;
    static const char *const kNames[] = {"naive_fresh", "naive_cached",
                                         "hoisted", "lazy_square",
                                         "lazy"};
    state.SetLabel(std::string(kNames[variant]) +
                   (fuse.fused() ? "" : "/composed"));

    // Prime the diagonal cache outside the timed region.
    benchmark::DoNotOptimize(boot.applyCoeffToSlot(h.top, mode));
    for (auto _ : state) {
        Ciphertext out = boot.applyCoeffToSlot(h.top, mode);
        benchmark::DoNotOptimize(out.c0.data().data());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CoeffToSlot)
    ->Args({0, 1})->Args({1, 1})->Args({2, 1})->Args({3, 1})
    ->Args({4, 1})->Args({4, 0})
    ->Unit(benchmark::kMillisecond);

/** Arg 0: naive vs lazy pipeline; arg 1: fused kernel pipelines
 *  on/off (composed leg only for the lazy pipeline). */
void
BM_Bootstrap(benchmark::State &state)
{
    Host &h = host();
    const bool lazy = state.range(0) != 0;
    FusionArg fuse(state, 1);
    BootstrapParams bp;
    bp.ltMode = lazy ? LinearTransformMode::HoistedLazy
                     : LinearTransformMode::Naive;
    bp.cacheDiagonals = lazy; // naive leg models the historical cost
    if (!lazy)
        bp.ltBabySteps = 16; // historical square split
    state.SetLabel(std::string(lazy ? "lazy_cached" : "naive_fresh") +
                   (fuse.fused() ? "" : "/composed"));
    Bootstrapper boot(*h.ctx, *h.enc, *h.keygen, bp);
    // Prime the diagonal caches (including the wide ext-basis
    // plaintexts) outside the timed region.
    benchmark::DoNotOptimize(boot.bootstrap(h.bottom));
    for (auto _ : state) {
        Ciphertext fresh = boot.bootstrap(h.bottom);
        benchmark::DoNotOptimize(fresh.c0.data().data());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Bootstrap)
    ->Args({0, 1})->Args({1, 1})->Args({1, 0})
    ->Unit(benchmark::kMillisecond);

/** Tower-tiled keyswitch inner product at a bandwidth-bound shape:
 *  logN = 13, dnum = 4 digits over a 20-tower extended basis, so one
 *  digit image is ~1.3 MB — past the CL_FUSE_TILE floor where the
 *  tiled sweep engages (the logN = 9 benchmarks above sit below it
 *  and adaptively fall back). Includes the rotation gather. Arg:
 *  fused (tiled) vs composed (materialized rotated digits). */
void
BM_KeySwitchInnerProduct(benchmark::State &state)
{
    struct Ip
    {
        std::unique_ptr<CkksContext> ctx;
        std::unique_ptr<CkksEncoder> enc;
        std::unique_ptr<KeyGenerator> keygen;
        std::unique_ptr<Evaluator> eval;
        GaloisKeys galois;
        std::size_t gal = 0;
        KeySwitchDigits digits;

        Ip()
        {
            CkksParams p;
            p.logN = 13;
            p.l = 16;
            p.alpha = 4;
            p.firstModBits = 50;
            p.scaleBits = 40;
            p.specialBits = 50;
            ctx = std::make_unique<CkksContext>(p);
            enc = std::make_unique<CkksEncoder>(*ctx);
            keygen = std::make_unique<KeyGenerator>(*ctx);
            eval = std::make_unique<Evaluator>(*ctx);
            galois = keygen->genRotationKeys({1}, /*conjugate=*/false);
            gal = eval->galoisFromSteps(1);
            const PublicKey pk = keygen->genPublicKey();
            Encryptor encryptor(*ctx, pk, 7);
            FastRng rng(31);
            std::vector<Complex> v(ctx->slots());
            for (auto &z : v)
                z = Complex(rng.nextDouble() - 0.5, 0);
            const Ciphertext ct = encryptor.encryptValues(
                *enc, v, ctx->params().scale(), ctx->l());
            digits = eval->decompose(ct.c1, ctx->alpha());
        }
    };
    static Ip ip;
    FusionArg fuse(state, 0);
    state.SetLabel(fuse.fused() ? "tiled" : "composed");
    for (auto _ : state) {
        auto acc = ip.eval->innerProduct(ip.digits,
                                         ip.galois.at(ip.gal), ip.gal);
        benchmark::DoNotOptimize(acc.first.data().data());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_KeySwitchInnerProduct)->Arg(1)->Arg(0)
    ->Unit(benchmark::kMillisecond);

} // namespace

#include "bench_main.h"

int
main(int argc, char **argv)
{
    return cl::bench::clBenchMain("host_bootstrap", argc, argv);
}
